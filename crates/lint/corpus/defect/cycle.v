// Seeded defect: g2 → g5 → g2 is unregistered feedback → TCL0101.
// The file parses (each net has exactly one driver); only levelization
// and the lint cycle pass can see the loop.
module small (clk, a, b, y, q);
  input clk;
  input a;
  input b;
  output y;
  output q;
  wire n1;
  wire n2;
  wire d1;
  wire q1;

  NAND2_X1_SVT g1 (.A(a), .B(b), .Y(n1));
  NAND2_X1_SVT g2 (.A(n1), .B(n2), .Y(d1));
  INV_X1_SVT g5 (.A(d1), .Y(n2));
  DFF_X1_SVT r1 (.D(d1), .CK(clk), .Y(q1));
  BUF_X1_SVT g3 (.A(q1), .Y(q));
  NOR2_X1_SVT g4 (.A(q1), .B(a), .Y(y));
endmodule
