//! Aging-aware signoff with adaptive voltage scaling — the §3.3
//! chicken-egg loop, end to end: pick a signoff aging corner, size the
//! design, then live the product's 10-year life under the AVS controller
//! and see what the choice cost.
//!
//! ```sh
//! cargo run --release --example aging_aware_signoff
//! ```

use tc_core::units::{Celsius, Volt};
use timing_closure::aging::avs::{simulate_lifetime, AvsSystem};
use timing_closure::aging::bti::BtiModel;
use timing_closure::aging::monitor::RingOscMonitor;
use timing_closure::aging::signoff::{aging_signoff_sweep, fig9_corners, PowerProfile};
use timing_closure::device::{Technology, VtClass};

fn main() {
    let sys = AvsSystem::nominal_28nm();
    let bti = BtiModel::nominal_28nm();

    // 1. How much does the device age?
    println!("BTI ΔVt at 0.9 V / 105 °C:");
    for years in [0.1, 1.0, 5.0, 10.0] {
        println!(
            "  {years:>5.1} y → {:.1} mV",
            1e3 * bti.delta_vt(years, Volt::new(0.9), Celsius::new(105.0))
        );
    }

    // 2. What does the AVS controller do about it over a lifetime?
    let trace = simulate_lifetime(&sys, 0.97, 10.0, 40);
    println!(
        "\nAVS lifetime (design 3% faster than target): V starts {:.3} V, ends {:.3} V, avg {:.3} V",
        trace.voltages[0].value(),
        trace.final_voltage().value(),
        trace.average_voltage()
    );
    println!("target always met: {}", trace.always_met);

    // 3. The signoff decision: sweep the assumed aging corner.
    println!("\nsignoff-corner sweep (dynamic share 60%):");
    let outcomes = aging_signoff_sweep(
        &sys,
        PowerProfile { dynamic_share: 0.6 },
        &fig9_corners(),
        10.0,
    );
    for (i, o) in outcomes.iter().enumerate() {
        println!(
            "  corner {} (assume {:>4.1} y): area {:>6.1}% | lifetime power {:>6.1}%",
            i + 1,
            o.assumed_years,
            o.area_pct,
            o.power_pct
        );
    }

    // 4. The monitor that closes the loop — and the guardband its
    //    tracking error forces.
    let tech = Technology::planar_28nm();
    let path = RingOscMonitor::matched(vec![(VtClass::Hvt, 0.7), (VtClass::Svt, 0.3)], 0.1);
    let plain = RingOscMonitor::plain();
    let matched = RingOscMonitor::matched(vec![(VtClass::Hvt, 0.6), (VtClass::Svt, 0.4)], 0.05);
    let sweep: Vec<f64> = (0..10).map(|i| 0.72 + 0.036 * i as f64).collect();
    let e_plain = plain.tracking_error(
        &path,
        &tech,
        Volt::new(0.9),
        0.03,
        Celsius::new(105.0),
        &sweep,
    );
    let e_matched = matched.tracking_error(
        &path,
        &tech,
        Volt::new(0.9),
        0.03,
        Celsius::new(105.0),
        &sweep,
    );
    println!(
        "\nmonitor tracking error vs an HVT-heavy critical path: plain RO {:.2}% | design-dependent RO {:.2}%",
        100.0 * e_plain,
        100.0 * e_matched
    );
    println!("→ the DDRO (ref [3]) shrinks the AVS guardband");
}
