//! Fuzz targets: one `check` entry per ingest surface, plus the shared
//! environment (library, BEOL stack, base netlist, seed corpora).

use std::panic::{catch_unwind, AssertUnwindSafe};

use tc_interconnect::beol::BeolStack;
use tc_interconnect::estimate::{NdrClass, WireModel};
use tc_interconnect::spef::{parse_spef_from, write_spef, NetParasitics};
use tc_liberty::libfile::{parse_liberty, write_liberty};
use tc_liberty::{LibConfig, Library, PvtCorner};
use tc_lint::{decode_waivers, render_waivers, Waiver};
use tc_netlist::gen::{generate, BenchProfile};
use tc_netlist::{
    decode_journal, parse_verilog_from, render_cmds, replay_journal, write_journal, write_verilog,
    Netlist,
};
use tc_obs::{JsonValue, RunArtifact};

/// The eight ingest surfaces the harness drives.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum TargetKind {
    /// Sensitivity-SPEF parasitics (`parse_spef_from`).
    Spef,
    /// Structural Verilog (`parse_verilog_from`).
    Verilog,
    /// Liberty subset (`parse_liberty`).
    Liberty,
    /// JSON documents (`JsonValue::parse`).
    Json,
    /// ECO journal text (`decode_journal` + transactional replay).
    Journal,
    /// tcdiff sidecar loading (`JsonValue::parse` + `diff` + `check_trace`).
    Tcdiff,
    /// Lint waiver/baseline files (`decode_waivers` + `render_waivers`).
    Waiver,
    /// `PROF_*.json` span-profile sidecars (`Profile::parse`).
    Prof,
}

impl TargetKind {
    /// Every target, in canonical order.
    pub const ALL: [TargetKind; 8] = [
        TargetKind::Spef,
        TargetKind::Verilog,
        TargetKind::Liberty,
        TargetKind::Json,
        TargetKind::Journal,
        TargetKind::Tcdiff,
        TargetKind::Waiver,
        TargetKind::Prof,
    ];

    /// CLI/corpus-directory name.
    pub fn name(self) -> &'static str {
        match self {
            TargetKind::Spef => "spef",
            TargetKind::Verilog => "verilog",
            TargetKind::Liberty => "liberty",
            TargetKind::Json => "json",
            TargetKind::Journal => "journal",
            TargetKind::Tcdiff => "tcdiff",
            TargetKind::Waiver => "waiver",
            TargetKind::Prof => "prof",
        }
    }

    /// Parses a CLI/corpus-directory name.
    pub fn from_name(s: &str) -> Option<TargetKind> {
        TargetKind::ALL.into_iter().find(|t| t.name() == s)
    }
}

/// An invariant breach found by [`Env::check`].
#[derive(Clone, Debug)]
pub enum Violation {
    /// The parser panicked; payload message attached.
    Panic(String),
    /// The parser returned an `Err` with no line/byte/entry position.
    ContextFreeError(String),
    /// An accepted input failed the emit→reparse fixpoint (or a replay
    /// left the netlist inconsistent).
    RoundtripMismatch(String),
}

impl Violation {
    /// Short kind tag for dedup keys and filenames.
    pub fn kind(&self) -> &'static str {
        match self {
            Violation::Panic(_) => "panic",
            Violation::ContextFreeError(_) => "context-free-error",
            Violation::RoundtripMismatch(_) => "roundtrip-mismatch",
        }
    }

    /// The attached message.
    pub fn message(&self) -> &str {
        match self {
            Violation::Panic(m)
            | Violation::ContextFreeError(m)
            | Violation::RoundtripMismatch(m) => m,
        }
    }
}

/// Outcome of driving one input through one target.
#[derive(Clone, Debug)]
pub enum Verdict {
    /// Parsed successfully and every invariant held.
    Accepted,
    /// Rejected with a properly positioned error.
    Rejected,
    /// An invariant broke.
    Violation(Violation),
}

/// `true` when an error message carries a usable position: a `line`,
/// `byte`, `event`, `entry`, or `tid` keyword immediately followed by a
/// number.
pub fn has_position(msg: &str) -> bool {
    for key in ["line ", "byte ", "event ", "entry ", "tid "] {
        let mut rest = msg;
        while let Some(p) = rest.find(key) {
            let after = &rest[p + key.len()..];
            if after.bytes().next().is_some_and(|b| b.is_ascii_digit()) {
                return true;
            }
            rest = after;
        }
    }
    false
}

/// Document-level errors that legitimately have no offset: they describe
/// the whole input, not a location in it.
const DOC_LEVEL_OK: [&str; 4] = [
    "trace document is not an object",
    "no traceEvents array",
    // check_trace's ring-overflow hard finding describes the document.
    "dropped event(s)",
    // tc-prof envelope errors all open with this prefix.
    "profile document",
];

fn err_verdict(msg: String) -> Verdict {
    if has_position(&msg) || DOC_LEVEL_OK.iter().any(|d| msg.contains(d)) {
        Verdict::Rejected
    } else {
        Verdict::Violation(Violation::ContextFreeError(msg))
    }
}

fn panic_message(e: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = e.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = e.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Shared fuzzing environment: the library and stack every parser is
/// bound to, the base netlist journals replay onto, and the seed corpora
/// produced by the repo's own writers.
pub struct Env {
    /// Full default library (Verilog/journal targets).
    pub lib: Library,
    /// BEOL stack for SPEF.
    pub stack: BeolStack,
    /// Base design journals replay onto.
    pub base: Netlist,
    base_doc: String,
}

impl Env {
    /// Builds the environment (deterministic: fixed seeds throughout).
    pub fn new() -> Env {
        let lib = Library::generate(&LibConfig::default(), &PvtCorner::typical());
        let stack = BeolStack::n20();
        let base = generate(&lib, BenchProfile::tiny(), 7).expect("tiny bench generates");
        let base_doc = RunArtifact::new("fuzz_base")
            .knob("seed", 7)
            .knob("profile", "tiny")
            .wall_ms(12.5)
            .extra("wns_ps", JsonValue::from(-42.25))
            .render();
        Env {
            lib,
            stack,
            base,
            base_doc,
        }
    }

    /// Seed corpus for `kind`, generated from the workspace's own
    /// writers so every entry starts out *valid*.
    pub fn corpus(&self, kind: TargetKind) -> Vec<Vec<u8>> {
        match kind {
            TargetKind::Spef => {
                let nets: Vec<NetParasitics> = [
                    (20.0, NdrClass::Default),
                    (150.0, NdrClass::DoubleWidth),
                    (400.0, NdrClass::DoubleWidthSpacing),
                ]
                .iter()
                .enumerate()
                .map(|(i, &(len, ndr))| {
                    let wm = WireModel::from_length(len).with_ndr(ndr);
                    NetParasitics::extract(format!("n{i}"), &wm, &self.stack)
                })
                .collect();
                vec![
                    write_spef(&nets, &self.stack).into_bytes(),
                    b"*D_NET n R 1 C 1 LAYER 1\n*END\n".to_vec(),
                ]
            }
            TargetKind::Verilog => vec![
                write_verilog(&self.base, &self.lib).into_bytes(),
                b"module m (a, q);\n  input a;\n  output q;\n  INV_X1_SVT u1 (.A(a), .Y(q));\nendmodule\n"
                    .to_vec(),
            ],
            TargetKind::Liberty => {
                let small = Library::generate(
                    &LibConfig {
                        comb_drives: vec![1.0],
                        flop_drives: vec![1.0],
                        ..Default::default()
                    },
                    &PvtCorner::typical(),
                );
                vec![write_liberty(&small).into_bytes()]
            }
            TargetKind::Json => vec![
                self.base_doc.clone().into_bytes(),
                JsonValue::obj([
                    ("a", JsonValue::from(1.5)),
                    (
                        "b",
                        JsonValue::Arr(vec![
                            JsonValue::Bool(true),
                            JsonValue::Null,
                            JsonValue::str("x\ny"),
                        ]),
                    ),
                    ("c", JsonValue::obj([("d", JsonValue::from(-7i64))])),
                ])
                .render()
                .into_bytes(),
                b"[0,1,2,3]".to_vec(),
            ],
            TargetKind::Journal => {
                let mut nl = self.base.clone();
                let cp = nl.journal_len();
                self.apply_sample_edits(&mut nl);
                vec![
                    write_journal(&nl, &self.lib, cp).into_bytes(),
                    b"*TCJ 1\nWIRELEN net 0 um 5\nROUTE net 0 class 2\n".to_vec(),
                ]
            }
            TargetKind::Tcdiff => vec![
                self.base_doc.clone().into_bytes(),
                trace_doc().render().into_bytes(),
            ],
            TargetKind::Prof => vec![
                prof_doc().render_json().into_bytes(),
                br#"{"schema_version":1,"kind":"tc.profile","workload":"","wall_ns":0,"attributed_ns":0,"dropped_events":0,"unmatched_ends":0,"open_spans":0,"spans":[],"lanes":[],"critical_chain":[],"critical_chain_ns":0}"#
                    .to_vec(),
            ],
            TargetKind::Waiver => vec![
                render_waivers(&[
                    Waiver {
                        code: "TCL0104".into(),
                        subject: "probe_q7".into(),
                        reason: "scan probe net, unloaded by design".into(),
                    },
                    Waiver {
                        code: "TCL0302".into(),
                        subject: "*".into(),
                        reason: String::new(),
                    },
                ])
                .into_bytes(),
                b"# baseline for bringup\n\n*TCW 1\nWAIVE TCL0201 small no clocks yet in bringup\n"
                    .to_vec(),
            ],
        }
    }

    /// Applies one of each ECO edit kind to `nl` (for journal corpus).
    fn apply_sample_edits(&self, nl: &mut Netlist) {
        use tc_core::ids::NetId;
        // Swap the first cell that has a same-pin-count alternative.
        'swap: for cell in 0..nl.cell_count() {
            let id = tc_core::ids::CellId::new(cell);
            let pins = nl.cell_inputs(id).len();
            let cur = nl.cell(id).master;
            for alt in self.lib.cells().iter() {
                if alt.input_pins().len() == pins && self.lib.id_of(&alt.name) != Some(cur) {
                    let alt_id = self.lib.id_of(&alt.name).expect("listed cell resolves");
                    if nl.swap_master(&self.lib, id, alt_id).is_ok() {
                        break 'swap;
                    }
                }
            }
        }
        nl.set_wire_length(NetId::new(3), 41.25);
        nl.set_route_class(NetId::new(3), 2);
        let buf = self
            .lib
            .cells()
            .iter()
            .find(|c| c.input_pins().len() == 1 && c.is_buffer_like())
            .map(|c| self.lib.id_of(&c.name).expect("listed cell resolves"));
        if let Some(buf) = buf {
            let victim = NetId::new(3);
            if let Some(&sink) = nl.net(victim).sinks.first() {
                let _ = nl.insert_buffer(&self.lib, victim, &[sink], buf);
            }
        }
    }

    /// Drives `input` through target `kind`, checking all three
    /// invariants. Never panics itself: parser panics are caught and
    /// reported as [`Violation::Panic`].
    pub fn check(&self, kind: TargetKind, input: &[u8]) -> Verdict {
        let result = catch_unwind(AssertUnwindSafe(|| self.check_inner(kind, input)));
        match result {
            Ok(v) => v,
            Err(e) => Verdict::Violation(Violation::Panic(panic_message(e))),
        }
    }

    fn check_inner(&self, kind: TargetKind, input: &[u8]) -> Verdict {
        match kind {
            TargetKind::Spef => self.check_spef(input),
            TargetKind::Verilog => self.check_verilog(input),
            TargetKind::Liberty => self.check_liberty(input),
            TargetKind::Json => check_json(input),
            TargetKind::Journal => self.check_journal(input),
            TargetKind::Tcdiff => self.check_tcdiff(input),
            TargetKind::Waiver => check_waiver(input),
            TargetKind::Prof => check_prof(input),
        }
    }

    fn check_spef(&self, input: &[u8]) -> Verdict {
        // A deliberately tiny buffer forces refills mid-record, the same
        // streaming path a multi-gigabyte SPEF would take.
        let reader = std::io::BufReader::with_capacity(23, input);
        match parse_spef_from(reader, &self.stack) {
            Err(e) => err_verdict(e.to_string()),
            Ok(nets) => {
                let t2 = write_spef(&nets, &self.stack);
                match parse_spef_from(t2.as_bytes(), &self.stack) {
                    Err(e) => Verdict::Violation(Violation::RoundtripMismatch(format!(
                        "emitted SPEF does not reparse: {e}"
                    ))),
                    Ok(nets2) => {
                        let t3 = write_spef(&nets2, &self.stack);
                        if t3 != t2 {
                            Verdict::Violation(Violation::RoundtripMismatch(
                                "SPEF emit is not a fixpoint".to_string(),
                            ))
                        } else {
                            Verdict::Accepted
                        }
                    }
                }
            }
        }
    }

    fn check_verilog(&self, input: &[u8]) -> Verdict {
        let reader = std::io::BufReader::with_capacity(17, input);
        match tc_netlist::parse_verilog_from(reader, &self.lib) {
            Err(e) => err_verdict(e.to_string()),
            Ok(nl) => {
                if let Err(e) = nl.validate(&self.lib) {
                    return Verdict::Violation(Violation::RoundtripMismatch(format!(
                        "parsed netlist fails validate: {e}"
                    )));
                }
                let t2 = write_verilog(&nl, &self.lib);
                match parse_verilog_from(t2.as_bytes(), &self.lib) {
                    Err(e) => Verdict::Violation(Violation::RoundtripMismatch(format!(
                        "emitted Verilog does not reparse: {e}"
                    ))),
                    Ok(nl2) => {
                        let t3 = write_verilog(&nl2, &self.lib);
                        if t3 != t2 {
                            Verdict::Violation(Violation::RoundtripMismatch(
                                "Verilog emit is not a fixpoint".to_string(),
                            ))
                        } else {
                            Verdict::Accepted
                        }
                    }
                }
            }
        }
    }

    fn check_liberty(&self, input: &[u8]) -> Verdict {
        // No emitter exists for ParsedLibrary, so liberty checks the
        // panic and positioned-error invariants only.
        let text = String::from_utf8_lossy(input);
        match parse_liberty(&text) {
            Err(e) => err_verdict(e.to_string()),
            Ok(_) => Verdict::Accepted,
        }
    }

    fn check_journal(&self, input: &[u8]) -> Verdict {
        let text = String::from_utf8_lossy(input);
        match decode_journal(&text) {
            Err(e) => err_verdict(e.to_string()),
            Ok(cmds) => {
                let t2 = render_cmds(&cmds);
                match decode_journal(&t2) {
                    Err(e) => {
                        return Verdict::Violation(Violation::RoundtripMismatch(format!(
                            "rendered journal does not re-decode: {e}"
                        )))
                    }
                    Ok(cmds2) => {
                        if cmds2 != cmds {
                            return Verdict::Violation(Violation::RoundtripMismatch(
                                "journal decode∘render is not the identity".to_string(),
                            ));
                        }
                    }
                }
                let mut nl = self.base.clone();
                let cp = nl.journal_len();
                match replay_journal(&mut nl, &self.lib, &cmds) {
                    Ok(_) => {
                        if let Err(e) = nl.validate(&self.lib) {
                            Verdict::Violation(Violation::RoundtripMismatch(format!(
                                "replayed netlist fails validate: {e}"
                            )))
                        } else {
                            Verdict::Accepted
                        }
                    }
                    Err(e) => {
                        if nl.journal_len() != cp {
                            return Verdict::Violation(Violation::RoundtripMismatch(format!(
                                "failed replay left {} edits applied",
                                nl.journal_len() - cp
                            )));
                        }
                        err_verdict(e.to_string())
                    }
                }
            }
        }
    }

    fn check_tcdiff(&self, input: &[u8]) -> Verdict {
        let text = String::from_utf8_lossy(input);
        let doc = match JsonValue::parse(&text) {
            Err(e) => return err_verdict(e),
            Ok(doc) => doc,
        };
        let base = JsonValue::parse(&self.base_doc).expect("base artifact parses");
        let opts = tcdiff::DiffOptions::default();
        // The diff engine itself must digest any parsed document without
        // panicking, and a self-diff must always be clean.
        let report = tcdiff::diff(&base, &doc, &opts);
        let _ = report.render(true);
        let self_diff = tcdiff::diff(&doc, &doc, &opts);
        if !self_diff.ok() {
            return Verdict::Violation(Violation::RoundtripMismatch(format!(
                "self-diff not clean: {}",
                self_diff.render(false)
            )));
        }
        // Trace validation applies only to trace-shaped documents (an
        // artifact sidecar has no traceEvents and is already fully
        // checked above); errors must be positioned or document-level.
        let is_trace =
            matches!(&doc, JsonValue::Obj(pairs) if pairs.iter().any(|(k, _)| k == "traceEvents"));
        if is_trace {
            match tcdiff::check_trace(&text, 0) {
                Ok(_) => Verdict::Accepted,
                Err(e) => err_verdict(e),
            }
        } else {
            Verdict::Accepted
        }
    }
}

impl Default for Env {
    fn default() -> Self {
        Env::new()
    }
}

fn check_waiver(input: &[u8]) -> Verdict {
    let text = String::from_utf8_lossy(input);
    match decode_waivers(&text) {
        Err(e) => err_verdict(e.to_string()),
        Ok(ws) => {
            let t2 = render_waivers(&ws);
            match decode_waivers(&t2) {
                Err(e) => Verdict::Violation(Violation::RoundtripMismatch(format!(
                    "rendered waivers do not re-decode: {e}"
                ))),
                Ok(ws2) => {
                    if ws2 != ws {
                        Verdict::Violation(Violation::RoundtripMismatch(
                            "waiver decode∘render is not the identity".to_string(),
                        ))
                    } else if render_waivers(&ws2) != t2 {
                        Verdict::Violation(Violation::RoundtripMismatch(
                            "waiver render is not a fixpoint".to_string(),
                        ))
                    } else {
                        Verdict::Accepted
                    }
                }
            }
        }
    }
}

fn check_json(input: &[u8]) -> Verdict {
    let text = String::from_utf8_lossy(input);
    match JsonValue::parse(&text) {
        Err(e) => err_verdict(e),
        Ok(v) => {
            let r1 = v.render();
            match JsonValue::parse(&r1) {
                Err(e) => Verdict::Violation(Violation::RoundtripMismatch(format!(
                    "rendered JSON does not reparse: {e}"
                ))),
                Ok(v2) => {
                    if v2.render() != r1 {
                        Verdict::Violation(Violation::RoundtripMismatch(
                            "JSON render is not a fixpoint".to_string(),
                        ))
                    } else {
                        Verdict::Accepted
                    }
                }
            }
        }
    }
}

fn check_prof(input: &[u8]) -> Verdict {
    let text = String::from_utf8_lossy(input);
    match tc_prof::Profile::parse(&text) {
        Err(e) => err_verdict(e),
        Ok(p) => {
            let r1 = p.render_json();
            match tc_prof::Profile::parse(&r1) {
                Err(e) => Verdict::Violation(Violation::RoundtripMismatch(format!(
                    "rendered profile does not reparse: {e}"
                ))),
                Ok(p2) => {
                    if p2.render_json() != r1 {
                        Verdict::Violation(Violation::RoundtripMismatch(
                            "profile render is not a fixpoint".to_string(),
                        ))
                    } else {
                        Verdict::Accepted
                    }
                }
            }
        }
    }
}

/// A small, valid span profile for the prof corpus, reduced from a
/// synthetic trace so the seed exercises the builder's invariants.
fn prof_doc() -> tc_prof::Profile {
    use tc_obs::trace::{TraceEvent, TraceEventKind};
    let ev = |kind: TraceEventKind, name: &str, tid: u64, ts_ns: u64, delta: u64| TraceEvent {
        kind,
        name: std::sync::Arc::from(name),
        tid,
        ts_ns,
        delta,
    };
    let snap = tc_obs::TraceSnapshot {
        events: vec![
            ev(TraceEventKind::Begin, "sta", 0, 0, 0),
            ev(TraceEventKind::Gauge, "mem.live_bytes", 0, 10, 4096),
            ev(TraceEventKind::Begin, "propagate", 0, 100, 0),
            ev(TraceEventKind::End, "propagate", 0, 900, 0),
            ev(TraceEventKind::End, "sta", 0, 1_000, 0),
            ev(TraceEventKind::Gauge, "mem.live_bytes", 0, 1_010, 8192),
            ev(TraceEventKind::Begin, "par.task", 1, 200, 0),
            ev(TraceEventKind::End, "par.task", 1, 600, 0),
        ],
        dropped: 0,
        thread_names: vec![(0, "main".to_string()), (1, "tc-par-0".to_string())],
    };
    tc_prof::Profile::from_trace(&snap).workload("fuzz seed")
}

/// A small, valid Chrome-trace document for the tcdiff corpus.
fn trace_doc() -> JsonValue {
    let ev = |ph: &str, ts: f64, tid: u64, name: &str| {
        JsonValue::obj([
            ("ph", JsonValue::str(ph)),
            ("ts", JsonValue::from(ts)),
            ("tid", JsonValue::from(tid)),
            ("name", JsonValue::str(name)),
        ])
    };
    JsonValue::obj([
        (
            "traceEvents",
            JsonValue::Arr(vec![
                ev("B", 0.0, 1, "sta"),
                ev("B", 1.0, 1, "propagate"),
                ev("E", 5.0, 1, "propagate"),
                ev("E", 6.0, 1, "sta"),
                ev("C", 7.0, 2, "heap"),
            ]),
        ),
        (
            "otherData",
            JsonValue::obj([("dropped_events", JsonValue::from(0u64))]),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seed_corpora_are_accepted() {
        let env = Env::new();
        for kind in TargetKind::ALL {
            for (i, entry) in env.corpus(kind).iter().enumerate() {
                match env.check(kind, entry) {
                    Verdict::Accepted => {}
                    other => panic!("{} corpus[{i}]: {other:?}", kind.name()),
                }
            }
        }
    }

    #[test]
    fn position_detector_matches_error_styles() {
        assert!(has_position("line 3: bad D_NET record"));
        assert!(has_position("number `1e999` overflows f64 at byte 0"));
        assert!(has_position("event 4: missing ph"));
        assert!(has_position("journal entry 2: cell 99"));
        assert!(has_position("tid 3: 1 unbalanced B event(s)"));
        assert!(!has_position("bad record"));
        assert!(!has_position("line ends early"));
    }
}
