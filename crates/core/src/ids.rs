//! Typed index newtypes shared by the netlist and timing graphs.
//!
//! Graph-heavy EDA code indexes into dense `Vec`s; using distinct index
//! types for cells, nets, pins and timing nodes prevents a cell index from
//! being used to subscript a net table (C-NEWTYPE).
//!
//! # Examples
//!
//! ```
//! use tc_core::ids::CellId;
//!
//! let id = CellId::new(3);
//! assert_eq!(id.index(), 3);
//! ```

use std::fmt;

/// Declares a dense-index newtype with `new`/`index` accessors.
macro_rules! index_id {
    ($(#[$doc:meta])* $name:ident, $tag:expr) => {
        $(#[$doc])*
        #[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub struct $name(u32);

        impl $name {
            /// Wraps a dense index.
            #[inline]
            pub const fn new(index: usize) -> Self {
                $name(index as u32)
            }

            /// Returns the dense index for subscripting.
            #[inline]
            pub const fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{}{}", $tag, self.0)
            }
        }

        impl From<usize> for $name {
            fn from(i: usize) -> Self {
                $name::new(i)
            }
        }
    };
}

index_id!(
    /// Index of a cell *instance* in a netlist.
    CellId,
    "c"
);
index_id!(
    /// Index of a net in a netlist.
    NetId,
    "n"
);
index_id!(
    /// Index of a pin in a netlist.
    PinId,
    "p"
);
index_id!(
    /// Index of a library cell (a "master") in a cell library.
    LibCellId,
    "L"
);
index_id!(
    /// Index of a node in a timing graph.
    TimingNodeId,
    "t"
);
index_id!(
    /// Index of a clock definition.
    ClockId,
    "clk"
);
index_id!(
    /// Index of an analysis scenario (mode × corner).
    ScenarioId,
    "s"
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_ordering() {
        let a = CellId::new(0);
        let b = CellId::new(7);
        assert_eq!(b.index(), 7);
        assert!(a < b);
        assert_eq!(CellId::from(7usize), b);
    }

    #[test]
    fn display_tags() {
        assert_eq!(NetId::new(4).to_string(), "n4");
        assert_eq!(ClockId::new(1).to_string(), "clk1");
    }

    #[test]
    fn usable_as_map_keys() {
        use std::collections::HashMap;
        let mut m = HashMap::new();
        m.insert(PinId::new(2), "d");
        assert_eq!(m[&PinId::new(2)], "d");
    }
}
