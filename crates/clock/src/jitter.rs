//! Jitter margining: the flat rug vs cycle-to-cycle decomposition.
//!
//! The paper notes (§1.3 footnote 5, §3.4) that production flows sweep
//! PLL jitter, CTS jitter, foundry-dictated jitter margin and dynamic IR
//! margin "under a single jitter margin rug" — a flat uncertainty — and
//! that a cycle-to-cycle jitter model recovers pessimism because two
//! consecutive short clock edges are unlikely.

use tc_core::units::Ps;

/// Which timing check the margin applies to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CheckKind {
    /// Max-delay (launch edge to next capture edge).
    Setup,
    /// Min-delay (same-edge race).
    Hold,
}

/// A decomposed jitter budget.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct JitterModel {
    /// PLL period jitter, 1σ, ps.
    pub pll_sigma: Ps,
    /// CTS-induced jitter (supply-noise modulation of the tree), ps.
    pub cts: Ps,
    /// Dynamic IR-drop margin folded into "jitter", ps.
    pub ir_margin: Ps,
    /// Foundry-dictated flat adder, ps.
    pub foundry_flat: Ps,
}

impl JitterModel {
    /// A typical 28 nm-class budget.
    pub fn typical() -> Self {
        JitterModel {
            pll_sigma: Ps::new(4.0),
            cts: Ps::new(6.0),
            ir_margin: Ps::new(8.0),
            foundry_flat: Ps::new(5.0),
        }
    }

    /// The classic flat margin: everything added linearly at 3σ — the
    /// "single rug".
    pub fn flat_margin(&self) -> Ps {
        Ps::new(
            3.0 * self.pll_sigma.value()
                + self.cts.value()
                + self.ir_margin.value()
                + self.foundry_flat.value(),
        )
    }

    /// Decomposed margin: independent components RSS'd, and for setup the
    /// *cycle-to-cycle* PLL term (σ_c2c = √2·σ_period, but affecting the
    /// check only once rather than being double-counted with the IR rug).
    pub fn decomposed_margin(&self, check: CheckKind) -> Ps {
        let pll = match check {
            // Setup sees the difference of two edges: √2·σ at 3σ.
            CheckKind::Setup => 3.0 * self.pll_sigma.value() * std::f64::consts::SQRT_2,
            // Hold is a same-edge race: PLL period jitter largely cancels.
            CheckKind::Hold => 0.5 * self.pll_sigma.value(),
        };
        let rss = (pll * pll + self.cts.value().powi(2) + self.ir_margin.value().powi(2)).sqrt();
        Ps::new(rss + self.foundry_flat.value())
    }

    /// Margin recovered by decomposition relative to the flat rug.
    pub fn recovered(&self, check: CheckKind) -> Ps {
        self.flat_margin() - self.decomposed_margin(check)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decomposition_recovers_hold_margin() {
        let j = JitterModel::typical();
        let rec = j.recovered(CheckKind::Hold);
        assert!(
            rec.value() > 5.0,
            "hold decomposition should recover real margin, got {rec}"
        );
    }

    #[test]
    fn setup_recovery_is_smaller_but_nonnegative() {
        let j = JitterModel::typical();
        let setup = j.recovered(CheckKind::Setup);
        let hold = j.recovered(CheckKind::Hold);
        assert!(setup.value() >= 0.0);
        assert!(hold > setup, "hold recovers more than setup");
    }

    #[test]
    fn flat_margin_is_the_sum_of_the_rug() {
        let j = JitterModel {
            pll_sigma: Ps::new(2.0),
            cts: Ps::new(3.0),
            ir_margin: Ps::new(4.0),
            foundry_flat: Ps::new(1.0),
        };
        assert_eq!(j.flat_margin(), Ps::new(6.0 + 3.0 + 4.0 + 1.0));
    }
}
