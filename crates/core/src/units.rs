//! Newtype wrappers for the physical quantities used throughout the
//! workspace.
//!
//! All quantities are stored as `f64` in a single canonical unit each:
//! time in **picoseconds**, capacitance in **femtofarads**, resistance in
//! **kilohms**, voltage in **volts**, temperature in **degrees Celsius**,
//! and distance in **microns**. The canonical units are chosen so that the
//! most common derived products are identities: `1 kΩ × 1 fF = 1 ps`.
//!
//! # Examples
//!
//! ```
//! use tc_core::units::{Ff, Kohm, Ps};
//!
//! let r = Kohm::new(0.5);
//! let c = Ff::new(10.0);
//! assert_eq!(r * c, Ps::new(5.0));
//! assert!(Ps::new(3.0) < Ps::new(4.0));
//! ```

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// Implements the standard arithmetic/compare/display surface for a scalar
/// newtype over `f64`.
macro_rules! scalar_unit {
    ($(#[$doc:meta])* $name:ident, $suffix:expr) => {
        $(#[$doc])*
        #[derive(Clone, Copy, Debug, Default, PartialEq, PartialOrd)]
        pub struct $name(f64);

        impl $name {
            /// Zero of this quantity.
            pub const ZERO: $name = $name(0.0);

            /// Wraps a raw value expressed in this type's canonical unit.
            #[inline]
            pub const fn new(value: f64) -> Self {
                $name(value)
            }

            /// Returns the raw value in this type's canonical unit.
            #[inline]
            pub const fn value(self) -> f64 {
                self.0
            }

            /// Absolute value.
            #[inline]
            pub fn abs(self) -> Self {
                $name(self.0.abs())
            }

            /// Element-wise minimum.
            #[inline]
            pub fn min(self, other: Self) -> Self {
                $name(self.0.min(other.0))
            }

            /// Element-wise maximum.
            #[inline]
            pub fn max(self, other: Self) -> Self {
                $name(self.0.max(other.0))
            }

            /// Clamps to the inclusive range `[lo, hi]`.
            ///
            /// # Panics
            ///
            /// Panics if `lo > hi`.
            #[inline]
            pub fn clamp(self, lo: Self, hi: Self) -> Self {
                $name(self.0.clamp(lo.0, hi.0))
            }

            /// `true` if the underlying value is finite.
            #[inline]
            pub fn is_finite(self) -> bool {
                self.0.is_finite()
            }
        }

        impl Add for $name {
            type Output = $name;
            #[inline]
            fn add(self, rhs: $name) -> $name {
                $name(self.0 + rhs.0)
            }
        }

        impl Sub for $name {
            type Output = $name;
            #[inline]
            fn sub(self, rhs: $name) -> $name {
                $name(self.0 - rhs.0)
            }
        }

        impl AddAssign for $name {
            #[inline]
            fn add_assign(&mut self, rhs: $name) {
                self.0 += rhs.0;
            }
        }

        impl SubAssign for $name {
            #[inline]
            fn sub_assign(&mut self, rhs: $name) {
                self.0 -= rhs.0;
            }
        }

        impl Neg for $name {
            type Output = $name;
            #[inline]
            fn neg(self) -> $name {
                $name(-self.0)
            }
        }

        impl Mul<f64> for $name {
            type Output = $name;
            #[inline]
            fn mul(self, rhs: f64) -> $name {
                $name(self.0 * rhs)
            }
        }

        impl Mul<$name> for f64 {
            type Output = $name;
            #[inline]
            fn mul(self, rhs: $name) -> $name {
                $name(self * rhs.0)
            }
        }

        impl Div<f64> for $name {
            type Output = $name;
            #[inline]
            fn div(self, rhs: f64) -> $name {
                $name(self.0 / rhs)
            }
        }

        impl Div<$name> for $name {
            type Output = f64;
            #[inline]
            fn div(self, rhs: $name) -> f64 {
                self.0 / rhs.0
            }
        }

        impl Sum for $name {
            fn sum<I: Iterator<Item = $name>>(iter: I) -> $name {
                $name(iter.map(|v| v.0).sum())
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                if let Some(prec) = f.precision() {
                    write!(f, "{:.*} {}", prec, self.0, $suffix)
                } else {
                    write!(f, "{:.3} {}", self.0, $suffix)
                }
            }
        }

        impl From<f64> for $name {
            fn from(v: f64) -> Self {
                $name(v)
            }
        }
    };
}

scalar_unit!(
    /// A time quantity in picoseconds.
    Ps,
    "ps"
);
scalar_unit!(
    /// A capacitance in femtofarads.
    Ff,
    "fF"
);
scalar_unit!(
    /// A resistance in kilohms.
    Kohm,
    "kΩ"
);
scalar_unit!(
    /// A voltage in volts.
    Volt,
    "V"
);
scalar_unit!(
    /// A temperature in degrees Celsius.
    Celsius,
    "°C"
);
scalar_unit!(
    /// A distance in microns.
    Um,
    "µm"
);

impl Ps {
    /// Converts to nanoseconds.
    #[inline]
    pub fn as_ns(self) -> f64 {
        self.0 / 1_000.0
    }

    /// Constructs from a value in nanoseconds.
    #[inline]
    pub fn from_ns(ns: f64) -> Self {
        Ps(ns * 1_000.0)
    }
}

impl Ff {
    /// Converts to picofarads.
    #[inline]
    pub fn as_pf(self) -> f64 {
        self.0 / 1_000.0
    }

    /// Constructs from a value in picofarads.
    #[inline]
    pub fn from_pf(pf: f64) -> Self {
        Ff(pf * 1_000.0)
    }
}

impl Celsius {
    /// Converts to Kelvin.
    #[inline]
    pub fn as_kelvin(self) -> f64 {
        self.0 + 273.15
    }
}

/// `kΩ × fF = ps` — the canonical-unit identity that motivates the choice
/// of kilohms and femtofarads.
impl Mul<Ff> for Kohm {
    type Output = Ps;
    #[inline]
    fn mul(self, rhs: Ff) -> Ps {
        Ps::new(self.value() * rhs.value())
    }
}

/// `fF × kΩ = ps` (commuted form).
impl Mul<Kohm> for Ff {
    type Output = Ps;
    #[inline]
    fn mul(self, rhs: Kohm) -> Ps {
        rhs * self
    }
}

/// `ps / fF = kΩ` — back out an effective drive resistance.
impl Div<Ff> for Ps {
    type Output = Kohm;
    #[inline]
    fn div(self, rhs: Ff) -> Kohm {
        Kohm::new(self.value() / rhs.value())
    }
}

/// `ps / kΩ = fF` — back out an effective load.
impl Div<Kohm> for Ps {
    type Output = Ff;
    #[inline]
    fn div(self, rhs: Kohm) -> Ff {
        Ff::new(self.value() / rhs.value())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rc_product_is_time() {
        assert_eq!(Kohm::new(2.0) * Ff::new(3.0), Ps::new(6.0));
        assert_eq!(Ff::new(3.0) * Kohm::new(2.0), Ps::new(6.0));
    }

    #[test]
    fn time_division_recovers_r_and_c() {
        let t = Ps::new(10.0);
        assert_eq!(t / Ff::new(2.0), Kohm::new(5.0));
        assert_eq!(t / Kohm::new(2.0), Ff::new(5.0));
    }

    #[test]
    fn arithmetic_and_ordering() {
        let a = Ps::new(1.5);
        let b = Ps::new(2.5);
        assert_eq!(a + b, Ps::new(4.0));
        assert_eq!(b - a, Ps::new(1.0));
        assert_eq!(-a, Ps::new(-1.5));
        assert_eq!(a * 2.0, Ps::new(3.0));
        assert_eq!(2.0 * a, Ps::new(3.0));
        assert_eq!(b / 2.0, Ps::new(1.25));
        assert!((b / a - 5.0 / 3.0).abs() < 1e-12);
        assert!(a < b);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
    }

    #[test]
    fn add_assign_and_sum() {
        let mut t = Ps::ZERO;
        t += Ps::new(1.0);
        t += Ps::new(2.0);
        assert_eq!(t, Ps::new(3.0));
        let total: Ps = [Ps::new(1.0), Ps::new(2.0), Ps::new(3.0)].into_iter().sum();
        assert_eq!(total, Ps::new(6.0));
    }

    #[test]
    fn unit_conversions() {
        assert_eq!(Ps::from_ns(1.0), Ps::new(1000.0));
        assert!((Ps::new(1500.0).as_ns() - 1.5).abs() < 1e-12);
        assert_eq!(Ff::from_pf(0.5), Ff::new(500.0));
        assert!((Celsius::new(25.0).as_kelvin() - 298.15).abs() < 1e-12);
    }

    #[test]
    fn display_formats_with_suffix() {
        assert_eq!(format!("{}", Ps::new(1.2345)), "1.234 ps");
        assert_eq!(format!("{:.1}", Volt::new(0.75)), "0.8 V");
    }

    #[test]
    fn clamp_and_abs() {
        assert_eq!(Ps::new(5.0).clamp(Ps::ZERO, Ps::new(3.0)), Ps::new(3.0));
        assert_eq!(Ps::new(-2.0).abs(), Ps::new(2.0));
    }
}
