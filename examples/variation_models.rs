//! The §3.1 variation-modeling ladder in action: characterize a path's
//! Monte Carlo truth, then watch flat OCV, AOCV, POCV and LVF predict it
//! — and see where each one leaves margin (or risk) on the table.
//!
//! ```sh
//! cargo run --release --example variation_models
//! ```

use tc_core::stats::tail_sigmas;
use timing_closure::liberty::{AocvTable, PocvSigma};
use timing_closure::variation::mc::PathModel;
use timing_closure::variation::models::model_accuracy;

fn main() {
    let aocv = AocvTable::from_stage_sigma(0.05);
    let pocv = PocvSigma::standard();

    println!("A 16-stage, low-voltage (skewed-variation) path:\n");
    let path = PathModel::uniform(16, 20.0, 0.06, 4.0);
    let row = model_accuracy(&path, &aocv, &pocv, 80_000, 1);
    println!("nominal delay:        {:>8.1} ps", row.nominal);
    println!("MC truth, late  +3σ:  {:>8.1} ps", row.mc_late);
    println!("MC truth, early −3σ:  {:>8.1} ps", row.mc_early);
    println!();
    let (e_flat, e_aocv, e_pocv, e_lvf) = row.errors_pct();
    println!(
        "flat OCV predicts:    {:>8.1} ps  ({e_flat:+.2}%)",
        row.flat
    );
    println!(
        "AOCV predicts:        {:>8.1} ps  ({e_aocv:+.2}%)",
        row.aocv
    );
    println!(
        "POCV predicts:        {:>8.1} ps  ({e_pocv:+.2}%)",
        row.pocv
    );
    println!(
        "LVF predicts:         {:>8.1} ps  ({e_lvf:+.2}%)",
        row.lvf_late
    );
    println!(
        "LVF early side:       {:>8.1} ps  (MC {:.1} ps)",
        row.lvf_early, row.mc_early
    );

    // Why stage count matters: the statistical averaging AOCV indexes on.
    println!("\nrelative 3σ vs path depth (σ/µ shrinks like 1/√n):");
    for n in [2usize, 4, 8, 16, 32, 64] {
        let p = PathModel::uniform(n, 20.0, 0.05, 0.0);
        let t = tail_sigmas(&p.monte_carlo(30_000, 7));
        println!(
            "  {n:>3} stages: 3σ/median = {:.2}%  (AOCV late derate: {:.4})",
            100.0 * 3.0 * t.late / t.median,
            aocv.late_derate(n, 0.0)
        );
    }
    println!("\n→ a flat derate sized for short paths wildly overmargins deep ones;");
    println!("  LVF carries per-arc, per-(slew,load), split late/early sigmas instead.");
}
