// `deny` rather than `forbid`: the counting global allocator
// ([`alloc`]) is the crate's one sanctioned unsafe surface.
#![deny(unsafe_code)]
#![warn(missing_docs)]

//! # tc-obs — zero-dependency tracing and metrics
//!
//! The measurement substrate for the timing-closure workspace: Kahng's
//! Fig 1 loop is schedule-bound ("five three-day repair and signoff
//! analysis iterations"), and making our reproduction "fast as the
//! hardware allows" starts with knowing where each iteration's
//! wall-clock and ECO budget actually go. This crate provides:
//!
//! * **Spans** — hierarchical wall-clock timing via RAII guards
//!   ([`span`]). Nesting is tracked per thread and aggregated by path
//!   (`closure.iteration/sta.gba`), so memory stays bounded.
//! * **Counters and histograms** — [`counter`] / [`histogram`] handles
//!   backed by atomics in a global registry: Newton iterations per
//!   transient step, arcs evaluated per STA propagation, edits per fix
//!   pass, corners per signoff run.
//! * **Exporters** — a flame-style text report and JSON / JSONL
//!   ([`Snapshot::render_text`], [`Snapshot::to_json`],
//!   [`Snapshot::to_jsonl`]), plus the tiny [`json`] builder (and
//!   parser, [`JsonValue::parse`]) the figure harnesses and `tcdiff`
//!   use for their sidecar files.
//! * **The flight recorder** ([`trace`]) — opt-in per-event tracing on
//!   bounded per-thread rings ([`enable_trace`]): every span open/close
//!   and counter add becomes a timestamped [`TraceEvent`], exportable
//!   as Chrome `trace_event` JSON ([`TraceSnapshot::to_chrome_trace`],
//!   loads in `chrome://tracing` / Perfetto) or folded flamegraph text
//!   ([`TraceSnapshot::to_folded`]).
//! * **Run artifacts** ([`RunArtifact`]) — one schema-versioned JSON
//!   document per harness/closure run (workload, knobs, metrics,
//!   per-iteration records, wall clock, heap/RSS) that the `tcdiff`
//!   binary diffs to gate performance regressions.
//! * **Memory telemetry** ([`alloc`]) — a counting `#[global_allocator]`
//!   wrapper ([`enable_memory`]) tracking allocations/frees, live bytes
//!   and a monotonic peak, with per-span heap attribution (net bytes and
//!   peak growth recorded on span exit, next to duration) and kernel
//!   `VmHWM`/`VmRSS` sampling ([`vm_hwm_bytes`]) behind a portable
//!   fallback. Capacity — the second killer in the paper's §1.3 — gets
//!   the same treatment as wall clock.
//!
//! Everything is std-only (`Instant`, `Mutex`, atomics) so offline
//! builds keep working, and the whole layer is **off by default**:
//! until [`enable`] is called a span is a no-op guard and a counter add
//! is one relaxed atomic load plus an untaken branch. The flight
//! recorder adds a second gate: even with the base layer on, trace
//! emission costs one more relaxed load until [`enable_trace`] turns
//! it on.
//!
//! # Span / counter taxonomy
//!
//! | Name | Kind | Meaning |
//! |---|---|---|
//! | `closure.run` | span | one full [`ClosureFlow::run`] |
//! | `closure.iteration` | span | one repair + analysis iteration |
//! | `closure.fix.*` | span | one fix pass (`VtSwap`, `Sizing`, …) |
//! | `closure.sta` | span | a verify/summary STA inside the loop |
//! | `closure.edits` | counter | accepted ECO edits |
//! | `closure.preflight` | span | the pre-STA lint gate inside `ClosureFlow::run` |
//! | `lint.run` | span | one full lint registry sweep (`tc_lint::run_lint`) |
//! | `lint.rule.*` | span | one rule pass (a root span when run on pool worker threads) |
//! | `lint.findings` / `lint.errors` / `lint.warnings` | counter | findings per sweep, split by severity |
//! | `sta.gba` | span | one graph-based analysis ([`Sta::run`]) |
//! | `sta.pba` | span | one path-based re-analysis pass |
//! | `sta.arcs_evaluated` | counter | timing arcs evaluated in GBA |
//! | `sta.nets_propagated` | counter | nets levelized + propagated |
//! | `sta.pba.paths` / `sta.pba.stages` | counter | PBA path/stage volume |
//! | `sta.incremental` | span | one [`Timer::update`] dirty-cone pass |
//! | `sta.dirty_cone_size` | histogram | cells re-evaluated per update |
//! | `sta.arcs_recomputed` | counter | arcs inside dirty cones |
//! | `sta.arcs_reused` | counter | cached arcs an update skipped |
//! | `signoff.corners` | span | one multi-corner signoff run |
//! | `signoff.corners/corner.*` | span | one corner's STA |
//! | `mcmm.empty_reports` | counter | corners merged with zero endpoints |
//! | `mcmm.nonfinite_slacks` | counter | endpoint checks skipped (NaN slack) |
//! | `par.tasks` | counter | work items executed on `tc-par` pools |
//! | `par.steal_idle_ms` | counter | summed worker idle ms per pool scope |
//! | `sim.transient` | span | one transient circuit simulation |
//! | `sim.newton.steps` | counter | accepted backward-Euler steps |
//! | `sim.newton.iters` | counter | Newton iterations across steps |
//! | `sim.newton.iters_per_step` | histogram | convergence profile |
//! | `par.task` | trace scope | one pool work item (timeline only, no span path) |
//! | `obs.trace.dropped` | counter | trace events lost to full rings |
//! | `mem.allocs` / `mem.frees` | counter | allocator events since [`enable_memory`] |
//! | `mem.live_bytes` | counter | tracked live heap bytes at snapshot time |
//! | `mem.peak_heap_bytes` | counter | monotonic peak of tracked live bytes |
//! | `mem.vm_hwm_bytes` | counter | kernel peak RSS (Linux; absent elsewhere) |
//!
//! The `mem.*` counters appear in snapshots only while memory counting
//! is enabled; they are process-cumulative gauges sampled at snapshot
//! time, not resettable event counts.
//!
//! [`ClosureFlow::run`]: ../tc_closure/flow/struct.ClosureFlow.html
//! [`Sta::run`]: ../tc_sta/struct.Sta.html
//! [`Timer::update`]: ../tc_sta/timer/struct.Timer.html
//!
//! # Examples
//!
//! ```
//! tc_obs::enable();
//! {
//!     let _outer = tc_obs::span("outer");
//!     let _inner = tc_obs::span("inner");
//!     tc_obs::counter("events").add(3);
//! }
//! let snap = tc_obs::snapshot();
//! assert_eq!(snap.counter("events"), 3);
//! assert!(snap.span("outer/inner").is_some());
//! println!("{}", snap.render_text());
//! ```

pub mod alloc;
pub mod artifact;
pub mod export;
pub mod json;
pub mod metrics;
pub mod registry;
pub mod span;
pub mod trace;

pub use alloc::{
    disable_memory, enable_memory, heap_mark, memory_enabled, memory_stats, vm_hwm_bytes,
    vm_rss_bytes, CountingAlloc, HeapDelta, HeapMark, MemStats,
};
pub use artifact::{RunArtifact, RUN_ARTIFACT_KIND, RUN_ARTIFACT_SCHEMA_VERSION};
pub use export::{fmt_bytes, HistogramSnapshot, Snapshot, SpanSnapshot};
pub use json::JsonValue;
pub use metrics::{Counter, Histogram};
pub use registry::{counter, disable, enable, histogram, is_enabled, reset, snapshot};
pub use span::{current_span_path, span, span_parent, SpanGuard, SpanParentGuard};
pub use trace::{
    clear_trace, disable_trace, enable_trace, trace_enabled, trace_scope, trace_snapshot,
    TraceBuffer, TraceEvent, TraceEventKind, TraceScope, TraceSnapshot, DEFAULT_TRACE_CAPACITY,
};

#[cfg(test)]
mod tests {
    //! Every test uses names unique to itself: the registry is global
    //! and `cargo test` runs threads concurrently.

    use super::*;

    #[test]
    fn spans_nest_and_aggregate_by_path() {
        enable();
        for _ in 0..3 {
            let _a = span("t_nest.outer");
            for _ in 0..2 {
                let _b = span("t_nest.inner");
            }
        }
        let snap = snapshot();
        let outer = snap.span("t_nest.outer").expect("outer recorded");
        let inner = snap
            .span("t_nest.outer/t_nest.inner")
            .expect("inner nested under outer");
        assert_eq!(outer.count, 3);
        assert_eq!(inner.count, 6);
        assert_eq!(inner.depth(), 1);
        assert_eq!(inner.name(), "t_nest.inner");
        assert_eq!(inner.parent(), Some("t_nest.outer"));
        assert!(outer.min_ns <= outer.max_ns);
        // Only the nested path exists; the bare inner name does not.
        assert!(snap.span("t_nest.inner").is_none());
        assert!(snap.spans_named("t_nest.inner").count() == 1);
    }

    #[test]
    fn sibling_spans_share_a_parent_but_not_a_path() {
        enable();
        {
            let _p = span("t_sib.parent");
            let _a = span("t_sib.a");
            drop(_a);
            let _b = span("t_sib.b");
        }
        let snap = snapshot();
        assert!(snap.span("t_sib.parent/t_sib.a").is_some());
        assert!(snap.span("t_sib.parent/t_sib.b").is_some());
        assert!(snap.span("t_sib.parent/t_sib.a/t_sib.b").is_none());
    }

    #[test]
    fn disabled_spans_and_counters_record_nothing() {
        // This test must not enable(); it relies on its unique names
        // never being recorded by anyone else.
        let was_enabled = is_enabled();
        disable();
        {
            let guard = span("t_disabled.span");
            assert!(guard.path().is_none());
            counter("t_disabled.count").incr();
            histogram("t_disabled.hist").record(1.0);
        }
        if was_enabled {
            enable();
        }
        let snap = snapshot();
        assert!(snap.span("t_disabled.span").is_none());
        assert_eq!(snap.counter("t_disabled.count"), 0);
    }

    #[test]
    fn counters_aggregate_and_delta() {
        enable();
        let c = counter("t_delta.count");
        c.add(5);
        let before = snapshot();
        c.add(7);
        counter("t_delta.other").incr();
        let after = snapshot();
        assert_eq!(
            after.counter("t_delta.count"),
            before.counter("t_delta.count") + 7
        );
        let deltas = after.counter_deltas(&before);
        assert!(deltas.contains(&("t_delta.count".to_string(), 7)));
        assert!(deltas.contains(&("t_delta.other".to_string(), 1)));
    }

    #[test]
    fn histogram_buckets_cover_all_samples() {
        enable();
        let h = histogram("t_hist.h");
        for v in [0.0, 0.5, 1.0, 3.0, 10.0, 100.0, 1e6] {
            h.record(v);
        }
        let snap = snapshot();
        let hs = snap
            .histograms
            .iter()
            .find(|h| h.name == "t_hist.h")
            .expect("histogram exported");
        assert_eq!(hs.count, 7);
        let bucketed: u64 = hs.buckets.iter().map(|&(_, _, n)| n).sum();
        assert_eq!(bucketed, 7, "every sample lands in a bucket");
        assert_eq!(hs.min, 0.0);
        assert_eq!(hs.max, 1e6);
        assert!((hs.mean() - hs.sum / 7.0).abs() < 1e-12);
    }

    #[test]
    fn json_escaping_round_trips_control_chars() {
        assert_eq!(json::escape("plain"), "plain");
        assert_eq!(json::escape("a\"b"), "a\\\"b");
        assert_eq!(json::escape("back\\slash"), "back\\\\slash");
        assert_eq!(json::escape("line\nbreak\ttab"), "line\\nbreak\\ttab");
        assert_eq!(json::escape("\u{1}"), "\\u0001");
        // Unicode above control range passes through unescaped.
        assert_eq!(json::escape("σ±µ"), "σ±µ");
    }

    #[test]
    fn json_parse_bounds_nesting_depth() {
        let ok = format!(
            "{}1{}",
            "[".repeat(json::MAX_DEPTH),
            "]".repeat(json::MAX_DEPTH)
        );
        assert!(JsonValue::parse(&ok).is_ok(), "MAX_DEPTH levels parse");
        let too_deep = format!(
            "{}1{}",
            "[".repeat(json::MAX_DEPTH + 1),
            "]".repeat(json::MAX_DEPTH + 1)
        );
        let err = JsonValue::parse(&too_deep).expect_err("over-nested input rejected");
        assert!(
            err.contains("nesting deeper than") && err.contains("128") && err.contains("byte"),
            "error carries the limit and the offset: {err}"
        );
        // Objects hit the same guard.
        let deep_obj = "{\"k\":".repeat(json::MAX_DEPTH + 1);
        let err = JsonValue::parse(&deep_obj).expect_err("over-nested object rejected");
        assert!(err.contains("nesting deeper than"), "object guard: {err}");
    }

    #[test]
    fn json_value_renders_compact_documents() {
        let v = JsonValue::obj([
            ("name", JsonValue::str("wns \"worst\"")),
            ("n", JsonValue::from(42u64)),
            ("x", JsonValue::from(1.5)),
            ("nan", JsonValue::Num(f64::NAN)),
            ("ok", JsonValue::from(true)),
            (
                "arr",
                JsonValue::Arr(vec![JsonValue::Null, JsonValue::from(-3i64)]),
            ),
        ]);
        assert_eq!(
            v.render(),
            r#"{"name":"wns \"worst\"","n":42,"x":1.5,"nan":null,"ok":true,"arr":[null,-3]}"#
        );
    }

    #[test]
    fn exporters_emit_text_json_and_jsonl() {
        enable();
        {
            let _s = span("t_export.phase");
            counter("t_export.count").add(2);
            histogram("t_export.hist").record(4.0);
        }
        let snap = snapshot();
        let text = snap.render_text();
        assert!(text.contains("t_export.phase"));
        assert!(text.contains("t_export.count"));
        let json = snap.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains(r#""path":"t_export.phase""#));
        let jsonl = snap.to_jsonl();
        assert!(jsonl
            .lines()
            .any(|l| l.contains(r#""type":"span""#) && l.contains("t_export.phase")));
        assert!(jsonl
            .lines()
            .any(|l| l.contains(r#""type":"counter""#) && l.contains("t_export.count")));
        assert!(jsonl
            .lines()
            .any(|l| l.contains(r#""type":"histogram""#) && l.contains("t_export.hist")));
    }

    #[test]
    fn concurrent_recording_is_consistent() {
        enable();
        let threads: Vec<_> = (0..8)
            .map(|t| {
                std::thread::spawn(move || {
                    let c = counter("t_conc.count");
                    let h = histogram("t_conc.hist");
                    for i in 0..1_000 {
                        let _s = span("t_conc.span");
                        c.incr();
                        if i % 100 == 0 {
                            h.record(t as f64);
                        }
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().expect("worker");
        }
        let snap = snapshot();
        assert_eq!(snap.counter("t_conc.count"), 8_000);
        let s = snap.span("t_conc.span").expect("span recorded");
        assert_eq!(s.count, 8_000);
        let hs = snap
            .histograms
            .iter()
            .find(|h| h.name == "t_conc.hist")
            .expect("histogram");
        assert_eq!(hs.count, 80);
    }
}
