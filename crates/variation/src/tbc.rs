//! Tightened BEOL Corners (TBC) — the paper's **Fig 8** and §3.2
//! (Chan, Dobre, Kahng, ICCD 2014).
//!
//! Homogeneous "conventional BEOL corners" (CBCs) push *every* layer to
//! its extreme simultaneously, but per-layer variations are independent,
//! so the statistical 3σ delay of a real path is usually far inside the
//! corner's prediction. The pessimism metric
//!
//! ```text
//! α_j = 3σ_j / Δd_j(Y_CBC),    Δd_j(Y) = d_j(Y) − d_j(Y_typ)
//! ```
//!
//! quantifies this per path: small α ⇒ the corner is very pessimistic;
//! α > 1 ⇒ the corner *under*-covers (and another corner must dominate).
//! Paths with small Δd at both Cw and RCw can be signed off at tightened
//! corners instead.

use tc_core::rng::Rng;
use tc_core::stats::quantile;
use tc_interconnect::beol::{BeolCorner, BeolStack};

/// A path reduced to its BEOL sensitivity: fixed gate delay, a
/// *driver-loading* term (gate delay attributable to charging wire
/// capacitance — scales with C only), and a wire-RC term per layer
/// (scales with R·C).
///
/// The two wire terms are why Cw and RCw dominate different paths
/// (Fig 8(a)): gate-dominated paths with short, capacitive wires are
/// stressed hardest by C-worst (through the driver), while
/// resistance-dominated long-wire paths are stressed by RC-worst.
#[derive(Clone, Debug, PartialEq)]
pub struct PathBeolProfile {
    /// Gate (FEOL) delay, unaffected by BEOL corners, ps.
    pub gate_ps: f64,
    /// Driver delay from charging each layer's wire capacitance, ps at
    /// the typical corner (scales with the layer's C factor only).
    pub cap_load_ps_by_layer: Vec<f64>,
    /// Distributed wire-RC delay on each layer, ps at typical (scales
    /// with the layer's R·C factors).
    pub wire_ps_by_layer: Vec<f64>,
}

impl PathBeolProfile {
    fn c_mix(cg: f64, cc: f64, f: tc_interconnect::beol::CornerFactors) -> f64 {
        (cg * f.cg + cc * f.cc) / (cg + cc)
    }

    /// Path delay at a homogeneous corner.
    pub fn delay_at(&self, stack: &BeolStack, corner: BeolCorner) -> f64 {
        let mut total = self.gate_ps;
        for l in 0..stack.layer_count() {
            let layer = stack.layer(l);
            let f = corner.factors(layer.multi_patterned);
            let c_mix = Self::c_mix(layer.cg_per_um, layer.cc_per_um, f);
            total += self.cap_load_ps_by_layer.get(l).copied().unwrap_or(0.0) * c_mix;
            total += self.wire_ps_by_layer.get(l).copied().unwrap_or(0.0) * f.r * c_mix;
        }
        total
    }

    /// One Monte Carlo path delay with independent per-layer factors.
    pub fn sample_delay(&self, stack: &BeolStack, rng: &mut Rng) -> f64 {
        let s = stack.sample(rng);
        let mut total = self.gate_ps;
        for l in 0..stack.layer_count() {
            total += self.cap_load_ps_by_layer.get(l).copied().unwrap_or(0.0) * s.c[l];
            total += self.wire_ps_by_layer.get(l).copied().unwrap_or(0.0) * s.r[l] * s.c[l];
        }
        total
    }

    /// Fraction of the typical-corner delay spent in wire RC.
    pub fn wire_fraction(&self) -> f64 {
        let wire: f64 = self.wire_ps_by_layer.iter().sum();
        let load: f64 = self.cap_load_ps_by_layer.iter().sum();
        wire / (wire + load + self.gate_ps)
    }
}

/// α and Δd of one path at one corner.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AlphaPoint {
    /// Pessimism metric α = 3σ / Δd.
    pub alpha: f64,
    /// Corner delay increment over typical, normalized: Δd / d_typ.
    pub delta_rel: f64,
}

/// Computes a path's α at a corner, with MC ground truth for the 3σ.
pub fn alpha_for_path(
    path: &PathBeolProfile,
    stack: &BeolStack,
    corner: BeolCorner,
    samples: usize,
    seed: u64,
) -> AlphaPoint {
    let d_typ = path.delay_at(stack, BeolCorner::Typical);
    let d_corner = path.delay_at(stack, corner);
    let mut rng = Rng::seed_from(seed);
    let mc: Vec<f64> = (0..samples)
        .map(|_| path.sample_delay(stack, &mut rng))
        .collect();
    let three_sigma = quantile(&mc, 0.99865) - quantile(&mc, 0.5);
    let delta = d_corner - d_typ;
    AlphaPoint {
        alpha: if delta.abs() < 1e-9 {
            f64::INFINITY
        } else {
            three_sigma / delta
        },
        delta_rel: delta / d_typ,
    }
}

/// The Fig 8 study: a path population analyzed at Cw and RCw.
#[derive(Clone, Debug)]
pub struct TbcStudy {
    /// Per-path α/Δd at the C-worst corner.
    pub at_cw: Vec<AlphaPoint>,
    /// Per-path α/Δd at the RC-worst corner.
    pub at_rcw: Vec<AlphaPoint>,
    /// The analyzed paths.
    pub paths: Vec<PathBeolProfile>,
}

impl TbcStudy {
    /// Generates a seeded path population spanning gate- and
    /// wire-dominated mixes on random layer subsets, then computes α at
    /// both corners.
    pub fn generate(stack: &BeolStack, n_paths: usize, mc_samples: usize, seed: u64) -> Self {
        let mut rng = Rng::seed_from(seed);
        let mut paths = Vec::with_capacity(n_paths);
        for _ in 0..n_paths {
            let gate = rng.uniform_in(120.0, 500.0);
            // Total BEOL-sensitive delay, split between driver-loading
            // (C-sensitive) and distributed wire RC (RC-sensitive). Gate-
            // dominated paths have mostly loading; wire-dominated paths
            // mostly RC — the two populations of Fig 8(a).
            let beol_fraction = rng.uniform_in(0.10, 0.55);
            let beol_total = gate * beol_fraction / (1.0 - beol_fraction);
            let rc_share = rng.uniform_in(0.1, 0.9);
            let mut rc_by_layer = vec![0.0; stack.layer_count()];
            let mut load_by_layer = vec![0.0; stack.layer_count()];
            let n_layers = 1 + rng.below(4);
            for _ in 0..n_layers {
                let l = rng.below(stack.layer_count());
                rc_by_layer[l] += beol_total * rc_share / n_layers as f64;
                load_by_layer[l] += beol_total * (1.0 - rc_share) / n_layers as f64;
            }
            paths.push(PathBeolProfile {
                gate_ps: gate,
                cap_load_ps_by_layer: load_by_layer,
                wire_ps_by_layer: rc_by_layer,
            });
        }
        let at_cw: Vec<AlphaPoint> = paths
            .iter()
            .enumerate()
            .map(|(i, p)| {
                alpha_for_path(p, stack, BeolCorner::CWorst, mc_samples, seed ^ (i as u64))
            })
            .collect();
        let at_rcw: Vec<AlphaPoint> = paths
            .iter()
            .enumerate()
            .map(|(i, p)| {
                alpha_for_path(p, stack, BeolCorner::RcWorst, mc_samples, seed ^ (i as u64))
            })
            .collect();
        TbcStudy {
            at_cw,
            at_rcw,
            paths,
        }
    }

    /// Indices of paths eligible for tightened-corner signoff: Δd below
    /// both thresholds (the blue-shaded region of Fig 8(b)).
    pub fn tbc_eligible(&self, a_cw: f64, a_rcw: f64) -> Vec<usize> {
        (0..self.paths.len())
            .filter(|&i| self.at_cw[i].delta_rel < a_cw && self.at_rcw[i].delta_rel < a_rcw)
            .collect()
    }

    /// Paths whose α exceeds 1 at Cw (the corner *under*-covers them):
    /// they must be covered by RCw instead — the both-corners-required
    /// observation of Fig 8(a).
    pub fn cw_undercovered(&self) -> Vec<usize> {
        (0..self.paths.len())
            .filter(|&i| self.at_cw[i].alpha > 1.0)
            .collect()
    }

    /// Mean α of eligible paths at a corner — the recovered-pessimism
    /// headline.
    pub fn mean_alpha_cw(&self) -> f64 {
        let finite: Vec<f64> = self
            .at_cw
            .iter()
            .map(|a| a.alpha)
            .filter(|a| a.is_finite())
            .collect();
        finite.iter().sum::<f64>() / finite.len() as f64
    }

    /// Median over paths of `min(α_Cw, α_RCw)` — how well the *dominating*
    /// corner covers each path. Values below 1 mean the two-corner
    /// signoff is pessimistic for the typical path; values modestly above
    /// 1 for some paths are why *both* corners must be run (Fig 8(a)).
    pub fn median_min_alpha(&self) -> f64 {
        let mins: Vec<f64> = self
            .at_cw
            .iter()
            .zip(&self.at_rcw)
            .map(|(c, r)| c.alpha.min(r.alpha))
            .filter(|a| a.is_finite())
            .collect();
        quantile(&mins, 0.5)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stack() -> BeolStack {
        BeolStack::n20()
    }

    #[test]
    fn corner_delay_exceeds_typical() {
        let s = stack();
        let p = PathBeolProfile {
            gate_ps: 200.0,
            cap_load_ps_by_layer: vec![0.0, 20.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0],
            wire_ps_by_layer: vec![0.0, 40.0, 0.0, 30.0, 0.0, 0.0, 0.0, 0.0, 0.0],
        };
        assert!(p.delay_at(&s, BeolCorner::CWorst) > p.delay_at(&s, BeolCorner::Typical));
        assert!(p.delay_at(&s, BeolCorner::RcWorst) > p.delay_at(&s, BeolCorner::Typical));
    }

    #[test]
    fn homogeneous_corners_are_pessimistic_for_multilayer_paths() {
        // A path spread over many independent layers has small 3σ
        // relative to the all-layers-worst corner increment: α < 1.
        let s = stack();
        let p = PathBeolProfile {
            gate_ps: 100.0,
            cap_load_ps_by_layer: vec![5.0; 9],
            wire_ps_by_layer: vec![20.0; 9],
        };
        let a = alpha_for_path(&p, &s, BeolCorner::RcWorst, 4_000, 5);
        assert!(
            a.alpha < 1.0,
            "independent layers ⇒ corner pessimistic, α = {}",
            a.alpha
        );
    }

    #[test]
    fn study_reproduces_fig8_structure() {
        let s = stack();
        let study = TbcStudy::generate(&s, 60, 2_000, 11);
        // Some paths have α > 1 at Cw (RCw must cover them)…
        let under = study.cw_undercovered();
        assert!(!under.is_empty(), "some paths exceed Cw coverage");
        // …and those paths are covered (α < 1) at RCw.
        let covered = under
            .iter()
            .filter(|&&i| study.at_rcw[i].alpha <= 1.0)
            .count();
        assert!(
            covered * 10 >= under.len() * 7,
            "{covered}/{} Cw-undercovered paths covered by RCw",
            under.len()
        );
        // The dominating corner covers the typical path with pessimism to
        // spare: median min-α below 1.
        assert!(
            study.median_min_alpha() < 1.0,
            "median min-α {}",
            study.median_min_alpha()
        );
    }

    #[test]
    fn tbc_thresholds_select_low_delta_paths() {
        let s = stack();
        let study = TbcStudy::generate(&s, 60, 1_000, 12);
        let eligible = study.tbc_eligible(0.04, 0.05);
        assert!(!eligible.is_empty());
        for &i in &eligible {
            assert!(study.at_cw[i].delta_rel < 0.04);
            assert!(study.at_rcw[i].delta_rel < 0.05);
        }
        // Tightening thresholds shrinks eligibility monotonically.
        let tighter = study.tbc_eligible(0.02, 0.025);
        assert!(tighter.len() <= eligible.len());
    }

    #[test]
    fn wire_fraction_reported() {
        let p = PathBeolProfile {
            gate_ps: 80.0,
            cap_load_ps_by_layer: vec![0.0; 9],
            wire_ps_by_layer: vec![10.0, 10.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0],
        };
        assert!((p.wire_fraction() - 0.2).abs() < 1e-12);
    }
}
