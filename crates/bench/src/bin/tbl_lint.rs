//! **Lint-over-scale-ladder harness** — admission control must stay
//! O(graph): tc-lint is the gate every design passes *before* any STA,
//! so its cost has to track the netlist, not dominate it (the paper's
//! §1.3 scale regime, ROADMAP item 3's resident-engine admission path).
//!
//! Streams seeded `scale_*` netlists, synthesizes full per-net
//! parasitics, and runs the whole rule registry (graph, constraint,
//! SPEF cross-check) through the tc-par pool. Generated designs are
//! tied off first (dangling driven nets become primary outputs, the
//! same normalization the defect suite uses), so the ladder also
//! asserts **zero false positives** at every rung. Each phase records
//! wall clock and heap (counting-allocator net/peak deltas plus
//! allocator-call counts — the O(graph) scratch canary).
//!
//! Profiles come from `TC_LINT_PROFILES` (comma-separated, default
//! `50k,200k`). Outputs (directory `$TC_BENCH_OUT`, default
//! `artifacts/`):
//! * `BENCH_lint.json` — per-profile wall/heap documents (not CI-gated;
//!   EXPERIMENTS.md records representative numbers).
//! * `PROF_lint.json` — span profile over the whole ladder, with
//!   per-worker lane utilization for the pooled registry sweep.
//! * `RUN_lint.json` — run artifact with the `lint.*` span/counter
//!   taxonomy and the memory section.

use std::time::Instant;

use tc_bench::{
    fmt, print_table, standard_env, write_json_sidecar, write_prof_sidecar, write_run_artifact,
};
use tc_core::ids::NetId;
use tc_interconnect::estimate::WireModel;
use tc_interconnect::spef::NetParasitics;
use tc_lint::{run_lint, LintContext};
use tc_netlist::Netlist;
use tc_obs::JsonValue;
use tc_sta::Constraints;

/// Fixed clock period, ps (value is irrelevant to lint; only the clock
/// *name* has to resolve).
const PERIOD_PS: f64 = 1_500.0;

/// One phase's wall + heap measurement.
struct Phase {
    wall_ms: f64,
    net_bytes: i64,
    peak_growth_bytes: u64,
}

fn measured<R>(span: &str, f: impl FnOnce() -> R) -> (Phase, R) {
    let mark = tc_obs::heap_mark();
    let t0 = Instant::now();
    let out = {
        let _span = tc_obs::span(span);
        f()
    };
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    let d = mark.delta();
    (
        Phase {
            wall_ms,
            net_bytes: d.net_bytes,
            peak_growth_bytes: d.peak_bytes,
        },
        out,
    )
}

fn phase_json(p: &Phase) -> JsonValue {
    JsonValue::obj([
        ("wall_ms", JsonValue::from(p.wall_ms)),
        ("net_bytes", JsonValue::from(p.net_bytes)),
        ("peak_growth_bytes", JsonValue::from(p.peak_growth_bytes)),
    ])
}

/// Marks every dangling driven net as a primary output — generated
/// benchmarks leave fanout-free gates behind by construction, and a
/// clean-corpus rung must not count those as findings.
fn tie_off(nl: &mut Netlist) {
    let dangling: Vec<NetId> = nl
        .nets()
        .enumerate()
        .filter(|(_, n)| n.driver.is_some() && n.sinks.is_empty() && !n.is_output)
        .map(|(i, _)| NetId::new(i))
        .collect();
    for id in dangling {
        nl.mark_output(id);
    }
}

fn profile_names() -> Vec<String> {
    let raw = std::env::var("TC_LINT_PROFILES").unwrap_or_else(|_| "50k,200k".to_string());
    raw.split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(|tok| match tok.trim_start_matches("scale_") {
            "50k" => "scale_50k".to_string(),
            "200k" => "scale_200k".to_string(),
            "1m" => "scale_1m".to_string(),
            other => panic!("unknown scale profile `{other}` (want 50k, 200k or 1m)"),
        })
        .collect()
}

fn main() {
    let run_start = Instant::now();
    tc_obs::enable();
    tc_obs::enable_memory();
    tc_obs::enable_trace(tc_obs::DEFAULT_TRACE_CAPACITY);
    let (lib, _stack) = standard_env();
    let cons = Constraints::single_clock(PERIOD_PS);
    let pool = tc_par::Pool::from_env();

    let profiles = profile_names();
    println!(
        "lint ladder: {} ({} worker(s))",
        profiles.join(", "),
        pool.workers()
    );

    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut profile_docs: Vec<JsonValue> = Vec::new();
    for name in &profiles {
        let (gen_phase, nl) = measured("lint.bench.generate", || {
            let mut nl = tc_bench::bench_netlist(&lib, name, 2015);
            tie_off(&mut nl);
            nl
        });
        let cells = nl.cell_count();
        let nets = nl.net_count();

        // Full per-net annotation, so the SPEF cross-check pass walks
        // the same O(nets) surface it would on a signoff handoff.
        let (spef_phase, spef) = measured("lint.bench.annotate", || {
            nl.nets()
                .map(|n| {
                    let wm = WireModel::from_length(n.wire_length_um.max(1.0));
                    NetParasitics::extract(n.name.to_string(), &wm, &_stack)
                })
                .collect::<Vec<NetParasitics>>()
        });

        let allocs_before = tc_obs::memory_stats().allocs;
        let (lint_phase, findings) = measured("lint.bench.run", || {
            let mut ctx = LintContext::new(&nl, &lib);
            ctx.constraints = Some(&cons);
            ctx.spef = Some(&spef);
            run_lint(&pool, &ctx)
        });
        let allocs_per_lint = tc_obs::memory_stats().allocs - allocs_before;
        assert!(
            findings.is_empty(),
            "{name}: clean generated rung produced {} finding(s), first: {}",
            findings.len(),
            findings[0].render()
        );

        rows.push(vec![
            name.clone(),
            cells.to_string(),
            nets.to_string(),
            fmt(gen_phase.wall_ms, 0),
            fmt(spef_phase.wall_ms, 0),
            fmt(lint_phase.wall_ms, 1),
            tc_obs::fmt_bytes(lint_phase.peak_growth_bytes as i64),
            allocs_per_lint.to_string(),
        ]);

        profile_docs.push(JsonValue::obj([
            ("profile", JsonValue::str(name.as_str())),
            ("cells", JsonValue::from(cells)),
            ("nets", JsonValue::from(nets)),
            ("findings", JsonValue::from(findings.len())),
            ("generate", phase_json(&gen_phase)),
            ("annotate", phase_json(&spef_phase)),
            ("lint", phase_json(&lint_phase)),
            // Allocator calls for one full registry sweep: the bounded-
            // scratch canary — must scale with the graph, not blow up.
            ("allocs_per_lint", JsonValue::from(allocs_per_lint)),
            (
                "lint_us_per_cell",
                JsonValue::from(lint_phase.wall_ms * 1e3 / cells as f64),
            ),
        ]));
        // nl/spef drop here so the next rung starts from the live floor.
    }

    print_table(
        "lint ladder: full registry sweep vs design size",
        &[
            "profile",
            "cells",
            "nets",
            "gen ms",
            "annot ms",
            "lint ms",
            "lint peak",
            "allocs",
        ],
        &rows,
    );
    println!("\nall rungs lint clean: zero findings on tied-off generated designs");

    let doc = JsonValue::obj([
        ("table", JsonValue::str("lint")),
        ("profiles", JsonValue::Arr(profile_docs)),
    ]);
    match write_json_sidecar("BENCH_lint", &doc.render()) {
        Ok(path) => println!("sidecar: {}", path.display()),
        Err(e) => eprintln!("sidecar write failed: {e}"),
    }

    let artifact = tc_obs::RunArtifact::new("tbl_lint ladder")
        .knob("profiles", profiles.join(","))
        .knob("workers", pool.workers())
        .wall_ms(run_start.elapsed().as_secs_f64() * 1e3)
        .metrics(tc_obs::snapshot())
        .capture_memory();
    match write_run_artifact("lint", &artifact) {
        Ok(path) => println!("run artifact: {}", path.display()),
        Err(e) => eprintln!("run artifact write failed: {e}"),
    }
    match write_prof_sidecar("lint", "tbl_lint ladder") {
        Ok(Some(path)) => println!("profile: {}", path.display()),
        Ok(None) => {}
        Err(e) => eprintln!("profile write failed: {e}"),
    }
}
