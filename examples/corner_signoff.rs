//! MCMM corner signoff: run a design through a realistic corner set,
//! merge per-endpoint worst slacks, and prune never-dominant corners —
//! the §2.3 "corner super-explosion" workflow.
//!
//! ```sh
//! cargo run --release --example corner_signoff
//! ```

use timing_closure::interconnect::beol::{BeolCorner, BeolStack};
use timing_closure::liberty::{LibConfig, Library, PvtCorner};
use timing_closure::netlist::gen::{generate, BenchProfile};
use timing_closure::signoff::corners::{prune_by_dominance, CornerSpace};
use timing_closure::sta::mcmm::{run_and_merge, Scenario};
use timing_closure::sta::Constraints;

fn main() -> Result<(), tc_core::Error> {
    // The abstract corner space a 16 nm SoC faces…
    let space = CornerSpace::n16_soc();
    println!(
        "full 16 nm corner space: {} analysis views (vs {} at 65 nm)",
        space.count(),
        CornerSpace::n65_classic().count()
    );

    // …and a concrete eight-scenario subset actually run here.
    let cfg = LibConfig::default();
    let lib_typ = Library::generate(&cfg, &PvtCorner::typical());
    let nl = generate(&lib_typ, BenchProfile::c5315(), 11)?;
    let stack = BeolStack::n20();

    // Period chosen from a probe at the worst expected corner (signing
    // off a typical-corner Fmax would violate everywhere slow).
    let lib_slow = Library::generate(&cfg, &PvtCorner::slow_hot());
    let probe = Constraints::single_clock(8_000.0);
    let base = timing_closure::sta::Sta::new(&nl, &lib_slow, &stack, &probe)
        .with_beol_corner(BeolCorner::RcWorst)
        .run()?;
    let period = 8_000.0 - base.wns().value() + 120.0;
    println!(
        "design {} cells | signoff period {period:.0} ps",
        nl.cell_count()
    );

    let mk = |name: &str, pvt: PvtCorner, beol: BeolCorner| Scenario {
        name: name.to_string(),
        lib: Library::generate(&cfg, &pvt),
        beol,
        constraints: Constraints::single_clock(period),
    };
    let scenarios = vec![
        mk("ssg_cold_RCw", PvtCorner::slow_cold(), BeolCorner::RcWorst),
        mk("ssg_cold_Cw", PvtCorner::slow_cold(), BeolCorner::CWorst),
        mk("ssg_hot_RCw", PvtCorner::slow_hot(), BeolCorner::RcWorst),
        mk("ssg_hot_Cw", PvtCorner::slow_hot(), BeolCorner::CWorst),
        mk("tt_typ", PvtCorner::typical(), BeolCorner::Typical),
        mk("ffg_cold_Cb", PvtCorner::fast_cold(), BeolCorner::CBest),
        mk("ffg_cold_Ccw", PvtCorner::fast_cold(), BeolCorner::CcWorst),
        mk("ffg_cold_RCb", PvtCorner::fast_cold(), BeolCorner::RcBest),
    ];

    let merged = run_and_merge(&nl, &stack, &scenarios)?;
    println!(
        "\nmerged signoff: WNS {:.1} ps | hold WNS {:.1} ps | violating endpoints {}",
        merged.wns().value(),
        merged.hold_wns().value(),
        merged.violations()
    );

    println!("\ncorner dominance (endpoints for which each corner is worst-setup):");
    let mut dom: Vec<_> = merged.dominance().into_iter().collect();
    dom.sort_by_key(|&(_, n)| std::cmp::Reverse(n));
    for (name, n) in &dom {
        println!("  {name:<16} {n}");
    }

    let kept = prune_by_dominance(&merged, 5);
    println!(
        "\nafter dominance pruning (≥5 endpoints): keep {} of {} scenarios: {:?}",
        kept.len(),
        scenarios.len(),
        kept
    );
    println!("→ the pruned corners can be dropped from nightly signoff runs");
    Ok(())
}
