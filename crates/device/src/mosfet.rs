//! Alpha-power-law MOSFET model (Sakurai–Newton) with temperature and
//! aging dependence.
//!
//! Unit system: voltages in **V**, widths in **µm**, currents in **mA**,
//! capacitances in **fF**, time in **ps**. These are mutually consistent:
//! `1 fF · 1 V / 1 ps = 1 mA`, so the transient simulator in `tc-sim` can
//! integrate charge without conversion factors, and `V / mA = kΩ` so
//! effective drive resistances land directly in `tc-core`'s canonical
//! resistance unit.

use tc_core::units::{Celsius, Ff, Kohm, Volt};

use crate::vt::VtClass;

/// Which channel type a device is.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum MosKind {
    /// N-channel (pull-down).
    Nmos,
    /// P-channel (pull-up).
    Pmos,
}

/// Process-level model parameters shared by all devices of a technology.
///
/// Two calibrations are provided: [`Technology::planar_28nm`] (used for the
/// paper's 28 nm FDSOI MIS study, Fig 4) and [`Technology::finfet_16nm`]
/// (used for the wide-voltage-range corner studies).
#[derive(Clone, Debug, PartialEq)]
pub struct Technology {
    /// Human-readable name ("planar28", "finfet16").
    pub name: &'static str,
    /// Nominal supply voltage in volts.
    pub vdd_nominal: Volt,
    /// Zero-bias SVT threshold magnitude at 25 °C, NMOS, in volts.
    pub vt0_n: f64,
    /// Zero-bias SVT threshold magnitude at 25 °C, PMOS, in volts.
    pub vt0_p: f64,
    /// Velocity-saturation exponent α (≈2 long-channel, ≈1.2–1.4 scaled).
    pub alpha: f64,
    /// NMOS transconductance: mA per µm of width at 1 V of overdrive, 25 °C.
    pub k_n: f64,
    /// PMOS transconductance (weaker than NMOS).
    pub k_p: f64,
    /// Threshold temperature coefficient in V/°C (Vt falls when hot).
    pub vt_temp_coeff: f64,
    /// Mobility temperature exponent m in µ(T) ∝ (T/T₀)^−m.
    pub mobility_temp_exp: f64,
    /// Gate capacitance per µm of width, in fF.
    pub cgate_per_um: f64,
    /// Drain-diffusion capacitance per µm of width, in fF.
    pub cdiff_per_um: f64,
    /// SVT off-current per µm at 25 °C, nominal VDD, in mA (tiny).
    pub ioff_per_um: f64,
    /// Subthreshold swing factor n (I ∝ exp(Vgst/(n·vT))).
    pub subthreshold_n: f64,
}

impl Technology {
    /// A 28 nm planar/FDSOI-flavoured calibration (VDD 0.9 V). Matches the
    /// setting of the paper's Fig 4 MIS/SIS study.
    pub fn planar_28nm() -> Self {
        Technology {
            name: "planar28",
            vdd_nominal: Volt::new(0.9),
            vt0_n: 0.35,
            vt0_p: 0.33,
            alpha: 1.35,
            k_n: 0.55,
            k_p: 0.28,
            vt_temp_coeff: 1.2e-3,
            mobility_temp_exp: 1.25,
            cgate_per_um: 1.0,
            cdiff_per_um: 0.55,
            ioff_per_um: 4.0e-6,
            subthreshold_n: 1.45,
        }
    }

    /// A 16/14 nm FinFET-flavoured calibration (VDD 0.8 V, steeper
    /// subthreshold, stronger drive, larger relative gate cap). Supports
    /// the wide supply range (0.46–1.25 V) discussed in §1.2.
    pub fn finfet_16nm() -> Self {
        Technology {
            name: "finfet16",
            vdd_nominal: Volt::new(0.8),
            vt0_n: 0.32,
            vt0_p: 0.31,
            alpha: 1.2,
            k_n: 0.9,
            k_p: 0.6,
            vt_temp_coeff: 1.0e-3,
            mobility_temp_exp: 1.35,
            cgate_per_um: 1.6,
            cdiff_per_um: 0.7,
            ioff_per_um: 1.2e-6,
            subthreshold_n: 1.15,
        }
    }

    /// Thermal voltage kT/q in volts at temperature `t`.
    pub fn thermal_voltage(t: Celsius) -> f64 {
        8.617e-5 * t.as_kelvin()
    }

    /// Mobility degradation factor relative to 25 °C.
    pub fn mobility_factor(&self, t: Celsius) -> f64 {
        (t.as_kelvin() / Celsius::new(25.0).as_kelvin()).powf(-self.mobility_temp_exp)
    }
}

/// A single transistor: channel type, threshold flavour, width, and an
/// aging-induced threshold shift.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MosDevice {
    /// Channel type.
    pub kind: MosKind,
    /// Threshold flavour.
    pub vt_class: VtClass,
    /// Channel width in µm.
    pub width_um: f64,
    /// BTI-induced threshold magnitude increase in volts (≥ 0);
    /// populated by `tc-aging`.
    pub delta_vt: f64,
}

impl MosDevice {
    /// Creates a fresh (un-aged) device.
    pub fn new(kind: MosKind, vt_class: VtClass, width_um: f64) -> Self {
        MosDevice {
            kind,
            vt_class,
            width_um,
            delta_vt: 0.0,
        }
    }

    /// Returns a copy with the given BTI threshold shift applied.
    pub fn aged(mut self, delta_vt: f64) -> Self {
        self.delta_vt = delta_vt;
        self
    }

    /// Effective threshold magnitude at temperature `t`, including the Vt
    /// class offset and any aging shift.
    pub fn vt_eff(&self, tech: &Technology, t: Celsius) -> f64 {
        let vt0 = match self.kind {
            MosKind::Nmos => tech.vt0_n,
            MosKind::Pmos => tech.vt0_p,
        };
        vt0 + self.vt_class.vt_offset() - tech.vt_temp_coeff * (t.value() - 25.0) + self.delta_vt
    }

    /// Drain-current *magnitude* in mA for gate-drive magnitude `vgs` and
    /// drain-source magnitude `vds` (both ≥ 0; the caller resolves PMOS
    /// polarity). Smoothly blends subthreshold and alpha-power saturation
    /// so the Newton iterations in `tc-sim` converge.
    pub fn drain_current(&self, tech: &Technology, vgs: Volt, vds: Volt, t: Celsius) -> f64 {
        let vgs = vgs.value().max(0.0);
        let vds = vds.value();
        if vds <= 0.0 {
            return 0.0;
        }
        let k = match self.kind {
            MosKind::Nmos => tech.k_n,
            MosKind::Pmos => tech.k_p,
        };
        let vt = self.vt_eff(tech, t);
        let mob = tech.mobility_factor(t);
        let n_vt = tech.subthreshold_n * Technology::thermal_voltage(t);
        let vgst = vgs - vt;

        // Smooth effective overdrive: ≈ n·vT·ln(1+exp(vgst/n·vT)) tends to
        // vgst when on and to a decaying exponential when off.
        let x = vgst / n_vt;
        let ov_eff = if x > 40.0 {
            vgst
        } else {
            n_vt * (1.0 + x.exp()).ln()
        };
        let idsat = k * self.width_um * mob * ov_eff.powf(tech.alpha);

        // Smooth triode→saturation transition.
        let vdsat = (0.35 * ov_eff).max(0.05);
        idsat * (vds / vdsat).tanh()
    }

    /// Saturation current magnitude at full gate drive `vdd`.
    pub fn idsat(&self, tech: &Technology, vdd: Volt, t: Celsius) -> f64 {
        self.drain_current(tech, vdd, vdd, t)
    }

    /// Effective switching resistance for RC delay estimation:
    /// `R ≈ VDD / (2·Idsat)` (the factor 2 approximates averaging over the
    /// output transition).
    pub fn eff_resistance(&self, tech: &Technology, vdd: Volt, t: Celsius) -> Kohm {
        let id = self.idsat(tech, vdd, t);
        Kohm::new(vdd.value() / (2.0 * id.max(1e-12)))
    }

    /// Gate capacitance in fF.
    pub fn gate_cap(&self, tech: &Technology) -> Ff {
        Ff::new(tech.cgate_per_um * self.width_um)
    }

    /// Drain-diffusion capacitance in fF.
    pub fn diff_cap(&self, tech: &Technology) -> Ff {
        Ff::new(tech.cdiff_per_um * self.width_um)
    }

    /// Subthreshold leakage magnitude in mA at the given supply and
    /// temperature (gate off).
    pub fn leakage(&self, tech: &Technology, _vdd: Volt, t: Celsius) -> f64 {
        let n_vt = tech.subthreshold_n * Technology::thermal_voltage(t);
        let n_vt25 = tech.subthreshold_n * Technology::thermal_voltage(Celsius::new(25.0));
        let vt25 = {
            let vt0 = match self.kind {
                MosKind::Nmos => tech.vt0_n,
                MosKind::Pmos => tech.vt0_p,
            };
            vt0 + self.vt_class.vt_offset() + self.delta_vt
        };
        let vt_t = self.vt_eff(tech, t);
        // Reference Ioff is quoted for SVT at 25 °C; rescale for the class
        // Vt and temperature through the subthreshold exponential.
        let vt0_svt = match self.kind {
            MosKind::Nmos => tech.vt0_n,
            MosKind::Pmos => tech.vt0_p,
        };
        let base = tech.ioff_per_um * self.width_um;
        base * ((vt0_svt - vt25) / n_vt25).exp() * ((vt25 - vt_t) / n_vt).exp()
    }
}

/// The supply voltage at which a device's delay-vs-temperature slope
/// reverses (the *temperature reversal point* `Vtr` of paper Fig 6b),
/// found by bisection on the delay ratio between `hot` and `cold`.
///
/// Returns `None` if no reversal occurs inside `[v_lo, v_hi]`.
pub fn temperature_reversal_point(
    tech: &Technology,
    device: &MosDevice,
    cold: Celsius,
    hot: Celsius,
    v_lo: Volt,
    v_hi: Volt,
) -> Option<Volt> {
    // Delay ∝ C·V/Idsat; the capacitance cancels in the hot/cold ratio.
    let ratio = |v: Volt| -> f64 {
        let d_hot = v.value() / device.idsat(tech, v, hot);
        let d_cold = v.value() / device.idsat(tech, v, cold);
        d_hot - d_cold // > 0 ⇒ slower hot (high-V regime)
    };
    let (mut lo, mut hi) = (v_lo.value(), v_hi.value());
    let f_lo = ratio(Volt::new(lo));
    let f_hi = ratio(Volt::new(hi));
    if f_lo.signum() == f_hi.signum() {
        return None;
    }
    for _ in 0..60 {
        let mid = 0.5 * (lo + hi);
        if ratio(Volt::new(mid)).signum() == f_lo.signum() {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    Some(Volt::new(0.5 * (lo + hi)))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn svt_n() -> MosDevice {
        MosDevice::new(MosKind::Nmos, VtClass::Svt, 1.0)
    }

    #[test]
    fn current_monotone_in_gate_drive_and_width() {
        let tech = Technology::planar_28nm();
        let t = Celsius::new(25.0);
        let d = svt_n();
        let mut last = 0.0;
        for vg in [0.4, 0.5, 0.6, 0.7, 0.8, 0.9] {
            let i = d.drain_current(&tech, Volt::new(vg), Volt::new(0.9), t);
            assert!(i > last, "Id must rise with Vgs");
            last = i;
        }
        let wide = MosDevice::new(MosKind::Nmos, VtClass::Svt, 2.0);
        assert!(wide.idsat(&tech, Volt::new(0.9), t) > 1.9 * d.idsat(&tech, Volt::new(0.9), t));
    }

    #[test]
    fn current_monotone_in_vds_and_saturates() {
        let tech = Technology::planar_28nm();
        let t = Celsius::new(25.0);
        let d = svt_n();
        let i_lin = d.drain_current(&tech, Volt::new(0.9), Volt::new(0.05), t);
        let i_mid = d.drain_current(&tech, Volt::new(0.9), Volt::new(0.3), t);
        let i_sat = d.drain_current(&tech, Volt::new(0.9), Volt::new(0.9), t);
        assert!(i_lin < i_mid && i_mid < i_sat);
        // Deep saturation is flat.
        let i_sat2 = d.drain_current(&tech, Volt::new(0.9), Volt::new(0.8), t);
        assert!((i_sat - i_sat2) / i_sat < 0.02);
    }

    #[test]
    fn faster_vt_class_drives_more_current() {
        let tech = Technology::planar_28nm();
        let t = Celsius::new(25.0);
        let vdd = Volt::new(0.9);
        let ids: Vec<f64> = VtClass::ALL
            .iter()
            .map(|&v| MosDevice::new(MosKind::Nmos, v, 1.0).idsat(&tech, vdd, t))
            .collect();
        for w in ids.windows(2) {
            assert!(w[0] > w[1], "idsat must fall as Vt rises: {ids:?}");
        }
    }

    #[test]
    fn temperature_inversion_exists() {
        let tech = Technology::planar_28nm();
        let d = svt_n();
        let cold = Celsius::new(-30.0);
        let hot = Celsius::new(125.0);
        // Low VDD: faster hot (delay_hot < delay_cold).
        let v = Volt::new(0.55);
        let del = |t: Celsius| v.value() / d.idsat(&tech, v, t);
        assert!(del(hot) < del(cold), "low-V regime must be slower cold");
        // High VDD: slower hot.
        let v = Volt::new(1.1);
        let del = |t: Celsius| v.value() / d.idsat(&tech, v, t);
        assert!(del(hot) > del(cold), "high-V regime must be slower hot");
    }

    #[test]
    fn reversal_point_is_in_plausible_range() {
        let tech = Technology::planar_28nm();
        let vtr = temperature_reversal_point(
            &tech,
            &svt_n(),
            Celsius::new(-30.0),
            Celsius::new(125.0),
            Volt::new(0.45),
            Volt::new(1.2),
        )
        .expect("reversal must exist in range");
        assert!(
            (0.55..0.95).contains(&vtr.value()),
            "Vtr = {} V outside plausible window",
            vtr.value()
        );
    }

    #[test]
    fn aging_slows_device() {
        let tech = Technology::planar_28nm();
        let t = Celsius::new(25.0);
        let fresh = svt_n();
        let aged = svt_n().aged(0.04);
        assert!(aged.idsat(&tech, Volt::new(0.8), t) < fresh.idsat(&tech, Volt::new(0.8), t));
        assert!(aged.leakage(&tech, Volt::new(0.8), t) < fresh.leakage(&tech, Volt::new(0.8), t));
    }

    #[test]
    fn leakage_rises_with_temperature_and_lower_vt() {
        let tech = Technology::planar_28nm();
        let vdd = Volt::new(0.9);
        let d = svt_n();
        assert!(
            d.leakage(&tech, vdd, Celsius::new(125.0))
                > 5.0 * d.leakage(&tech, vdd, Celsius::new(25.0))
        );
        let lvt = MosDevice::new(MosKind::Nmos, VtClass::Lvt, 1.0);
        assert!(
            lvt.leakage(&tech, vdd, Celsius::new(25.0)) > d.leakage(&tech, vdd, Celsius::new(25.0))
        );
    }

    #[test]
    fn eff_resistance_falls_with_vdd() {
        let tech = Technology::finfet_16nm();
        let t = Celsius::new(25.0);
        let d = svt_n();
        let r_low = d.eff_resistance(&tech, Volt::new(0.5), t);
        let r_nom = d.eff_resistance(&tech, Volt::new(0.8), t);
        let r_high = d.eff_resistance(&tech, Volt::new(1.1), t);
        assert!(r_low > r_nom && r_nom > r_high);
    }

    #[test]
    fn pmos_is_weaker_than_nmos() {
        let tech = Technology::planar_28nm();
        let t = Celsius::new(25.0);
        let n = svt_n();
        let p = MosDevice::new(MosKind::Pmos, VtClass::Svt, 1.0);
        assert!(p.idsat(&tech, Volt::new(0.9), t) < n.idsat(&tech, Volt::new(0.9), t));
    }

    #[test]
    fn caps_scale_with_width() {
        let tech = Technology::planar_28nm();
        let d = MosDevice::new(MosKind::Nmos, VtClass::Svt, 3.0);
        assert_eq!(d.gate_cap(&tech), Ff::new(3.0));
        assert!((d.diff_cap(&tech).value() - 1.65).abs() < 1e-12);
    }
}
