//! Dynamic IR-drop awareness in timing signoff.
//!
//! §1.3 notes that one component of the flat "jitter margin rug" is
//! dynamic IR drop, and Comment 1 that signoff tools now offer
//! `-dynamic` analysis options. The difference is locality: a flat
//! margin charges *every* path the chip-worst droop, while a dynamic
//! analysis charges each cell its own region's droop.
//!
//! This module builds a coarse power-grid droop map from placement and
//! switching activity, converts droop to a delay penalty through the
//! device model, and quantifies the pessimism the flat margin carries.

use tc_core::units::Volt;
use tc_device::{MosDevice, MosKind, Technology, VtClass};
use tc_liberty::Library;
use tc_netlist::Netlist;
use tc_placement::rows::{Placement, ROW_UM, SITE_UM};

/// A coarse rectangular droop map over the die.
#[derive(Clone, Debug)]
pub struct IrGrid {
    cols: usize,
    rows: usize,
    tile_um: f64,
    /// Droop per tile, volts.
    droop: Vec<f64>,
}

/// Power-grid model parameters.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GridModel {
    /// Effective grid resistance per tile, kΩ (current in mA ⇒ droop in V).
    pub r_tile: f64,
    /// Switching activity (average fraction of cells toggling per cycle).
    pub activity: f64,
    /// Clock frequency, GHz.
    pub freq_ghz: f64,
    /// Tile edge, µm.
    pub tile_um: f64,
}

impl Default for GridModel {
    fn default() -> Self {
        GridModel {
            // Effective loop impedance seen by a tile on these small
            // test dies (straps shared over few tiles).
            r_tile: 3.0,
            activity: 0.15,
            freq_ghz: 1.0,
            tile_um: 10.0,
        }
    }
}

impl IrGrid {
    /// Builds the droop map: per-tile switching current (from each
    /// cell's dynamic energy × activity × frequency) times the tile's
    /// grid resistance, smoothed over the 4-neighbourhood to mimic grid
    /// sharing.
    pub fn build(nl: &Netlist, lib: &Library, pl: &Placement, model: &GridModel) -> IrGrid {
        // Die extent from the placement.
        let mut max_x: f64 = 1.0;
        let max_y = pl.row_count() as f64 * ROW_UM;
        for r in 0..pl.row_count() {
            for p in pl.row(r) {
                max_x = max_x.max((p.x_site + p.width_sites) as f64 * SITE_UM);
            }
        }
        let cols = (max_x / model.tile_um).ceil().max(1.0) as usize;
        let rows = (max_y / model.tile_um).ceil().max(1.0) as usize;
        let mut current = vec![0.0; cols * rows];

        for r in 0..pl.row_count() {
            for p in pl.row(r) {
                let x = p.x_site as f64 * SITE_UM;
                let y = r as f64 * ROW_UM;
                let cx = ((x / model.tile_um) as usize).min(cols - 1);
                let cy = ((y / model.tile_um) as usize).min(rows - 1);
                let cell = lib.cell(nl.cell(p.cell).master);
                // Average switching current in mA: fJ × GHz = µW; /V ≈ µA;
                // ×1e-3 = mA.
                let p_uw = cell.switch_energy(4.0) * model.activity * model.freq_ghz;
                current[cy * cols + cx] += p_uw / 0.9 * 1e-3;
            }
        }

        // One Jacobi smoothing pass: neighbouring tiles share the grid.
        let mut droop = vec![0.0; cols * rows];
        for y in 0..rows {
            for x in 0..cols {
                let mut acc = current[y * cols + x];
                let mut n = 1.0;
                if x > 0 {
                    acc += 0.5 * current[y * cols + x - 1];
                    n += 0.5;
                }
                if x + 1 < cols {
                    acc += 0.5 * current[y * cols + x + 1];
                    n += 0.5;
                }
                if y > 0 {
                    acc += 0.5 * current[(y - 1) * cols + x];
                    n += 0.5;
                }
                if y + 1 < rows {
                    acc += 0.5 * current[(y + 1) * cols + x];
                    n += 0.5;
                }
                droop[y * cols + x] = acc / n * model.r_tile; // mA·kΩ = V
            }
        }
        IrGrid {
            cols,
            rows,
            tile_um: model.tile_um,
            droop,
        }
    }

    /// Droop at a die coordinate, volts.
    pub fn droop_at(&self, x_um: f64, y_um: f64) -> f64 {
        let cx = ((x_um / self.tile_um) as usize).min(self.cols - 1);
        let cy = ((y_um / self.tile_um) as usize).min(self.rows - 1);
        self.droop[cy * self.cols + cx]
    }

    /// Chip-worst droop — what the flat margin must assume.
    pub fn worst(&self) -> f64 {
        self.droop.iter().copied().fold(0.0, f64::max)
    }

    /// Mean droop — what a typical path actually sees.
    pub fn mean(&self) -> f64 {
        self.droop.iter().sum::<f64>() / self.droop.len() as f64
    }
}

/// Delay penalty factor of operating a cell at `vdd − droop` instead of
/// `vdd` (≥ 1), from the device model.
pub fn droop_delay_factor(tech: &Technology, vdd: Volt, droop: f64) -> f64 {
    let dev = MosDevice::new(MosKind::Nmos, VtClass::Svt, 1.0);
    let t = tc_core::units::Celsius::new(85.0);
    let d = |v: Volt| v.value() / dev.idsat(tech, v, t);
    d(Volt::new((vdd.value() - droop).max(0.3))) / d(vdd)
}

/// The flat-vs-dynamic comparison: the delay margin (percent) a flat IR
/// margin charges every path, vs the mean-droop penalty a `-dynamic`
/// analysis would charge — the recovered pessimism in percentage points.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct IrComparison {
    /// Chip-worst droop, V.
    pub worst_droop: f64,
    /// Mean droop, V.
    pub mean_droop: f64,
    /// Flat-margin delay penalty, percent.
    pub flat_penalty_pct: f64,
    /// Dynamic (mean) penalty, percent.
    pub dynamic_penalty_pct: f64,
}

impl IrComparison {
    /// Margin recovered by dynamic analysis, percentage points of delay.
    pub fn recovered_pct(&self) -> f64 {
        self.flat_penalty_pct - self.dynamic_penalty_pct
    }
}

/// Runs the comparison for a placed design.
pub fn compare_flat_vs_dynamic(
    nl: &Netlist,
    lib: &Library,
    pl: &Placement,
    model: &GridModel,
) -> IrComparison {
    let grid = IrGrid::build(nl, lib, pl, model);
    let vdd = lib.corner.voltage;
    let flat = droop_delay_factor(&lib.tech, vdd, grid.worst());
    let dynamic = droop_delay_factor(&lib.tech, vdd, grid.mean());
    IrComparison {
        worst_droop: grid.worst(),
        mean_droop: grid.mean(),
        flat_penalty_pct: 100.0 * (flat - 1.0),
        dynamic_penalty_pct: 100.0 * (dynamic - 1.0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tc_liberty::{LibConfig, PvtCorner};
    use tc_netlist::gen::{generate, BenchProfile};

    fn setup() -> (Library, Netlist, Placement) {
        let lib = Library::generate(&LibConfig::default(), &PvtCorner::typical());
        let nl = generate(&lib, BenchProfile::c5315(), 17).unwrap();
        let pl = Placement::row_fill(&nl, &lib, 400, 2);
        (lib, nl, pl)
    }

    #[test]
    fn droop_map_is_positive_and_bounded() {
        let (lib, nl, pl) = setup();
        let grid = IrGrid::build(&nl, &lib, &pl, &GridModel::default());
        assert!(grid.worst() > 0.0);
        assert!(grid.worst() < 0.2, "droop {} V implausible", grid.worst());
        assert!(grid.mean() <= grid.worst());
        assert!(grid.droop_at(0.0, 0.0) >= 0.0);
    }

    #[test]
    fn higher_activity_more_droop() {
        let (lib, nl, pl) = setup();
        let low = IrGrid::build(
            &nl,
            &lib,
            &pl,
            &GridModel {
                activity: 0.05,
                ..Default::default()
            },
        );
        let high = IrGrid::build(
            &nl,
            &lib,
            &pl,
            &GridModel {
                activity: 0.30,
                ..Default::default()
            },
        );
        assert!(high.worst() > 2.0 * low.worst());
    }

    #[test]
    fn droop_slows_delay_monotonically() {
        let tech = Technology::planar_28nm();
        let vdd = Volt::new(0.9);
        let f0 = droop_delay_factor(&tech, vdd, 0.0);
        let f50 = droop_delay_factor(&tech, vdd, 0.05);
        let f100 = droop_delay_factor(&tech, vdd, 0.10);
        assert!((f0 - 1.0).abs() < 1e-12);
        assert!(f50 > 1.0 && f100 > f50);
    }

    #[test]
    fn dynamic_analysis_recovers_margin() {
        let (lib, nl, pl) = setup();
        let cmp = compare_flat_vs_dynamic(&nl, &lib, &pl, &GridModel::default());
        assert!(
            cmp.recovered_pct() > 0.0,
            "flat must be more pessimistic: {cmp:?}"
        );
        assert!(cmp.flat_penalty_pct > cmp.dynamic_penalty_pct);
    }
}
