//! Live flight-recorder integration: profiles built from the real
//! global rings. Recorder state is global, so this is its own test
//! binary and every test serializes on a lock (the same discipline as
//! `tc-obs`'s trace tests).

use std::sync::Mutex;

use tc_prof::{diff, DiffOptions, Profile};

static TRACE_LOCK: Mutex<()> = Mutex::new(());

fn spin(iters: u64) -> u64 {
    let mut acc = 0u64;
    for i in 0..iters {
        acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i);
    }
    std::hint::black_box(acc)
}

#[test]
fn span_open_across_a_reset_epoch_becomes_an_unmatched_end() {
    let _guard = TRACE_LOCK.lock().unwrap();
    tc_obs::enable();
    tc_obs::clear_trace();
    tc_obs::enable_trace(tc_obs::DEFAULT_TRACE_CAPACITY);

    let stale = tc_obs::span("prof.epoch_straddler");
    tc_obs::reset(); // drains the rings: the Begin above is gone
    {
        let _s = tc_obs::span("prof.fresh");
        spin(1_000);
    }
    drop(stale); // End lands in the fresh epoch with no matching Begin

    let p = Profile::from_rings();
    assert!(
        p.unmatched_ends >= 1,
        "the straddler's End must be counted, not crash: {p:?}"
    );
    assert!(p.span("prof.epoch_straddler").is_none());
    assert_eq!(p.span("prof.fresh").map(|s| s.count), Some(1));

    tc_obs::disable_trace();
    tc_obs::clear_trace();
}

#[test]
fn ring_overflow_marks_the_profile_truncated_and_ungateable() {
    let _guard = TRACE_LOCK.lock().unwrap();
    tc_obs::enable();
    tc_obs::clear_trace();
    tc_obs::enable_trace(8); // tiny ring: most events must drop

    for _ in 0..500 {
        let _s = tc_obs::span("prof.overflow");
        spin(10);
    }

    let p = Profile::from_rings();
    assert!(p.dropped_events > 0, "drops must surface in the profile");
    assert!(p.render_text(10).contains("WARNING"));
    let report = diff(&p, &p.clone(), &DiffOptions::default());
    assert!(
        !report.is_clean(),
        "a truncated profile must never gate clean"
    );

    tc_obs::disable_trace();
    tc_obs::clear_trace();
}

#[test]
fn worker_count_changes_lanes_but_not_span_structure() {
    let _guard = TRACE_LOCK.lock().unwrap();
    tc_obs::enable();

    let run = |workers: usize| {
        tc_obs::clear_trace();
        tc_obs::enable_trace(tc_obs::DEFAULT_TRACE_CAPACITY);
        let pool = tc_par::Pool::new(workers);
        let items: Vec<u64> = (0..16).collect();
        let _sweep = tc_obs::span("prof.sweep");
        let sums = pool.scope_map(&items, |_, &i| {
            let _s = tc_obs::span("prof.task");
            spin(5_000 + i)
        });
        assert_eq!(sums.len(), 16);
        drop(_sweep);
        let p = Profile::from_rings();
        tc_obs::disable_trace();
        tc_obs::clear_trace();
        p
    };

    // The user-visible span structure is worker-count-invariant even
    // across tc_par's inline fast path (1 worker runs on the caller, so
    // only the pool's own `par.task` scope comes and goes).
    let p1 = run(1);
    let p4 = run(4);
    for p in [&p1, &p4] {
        assert_eq!(p.dropped_events, 0);
        assert_eq!(p.span("prof.task").map(|s| s.count), Some(16));
        assert_eq!(p.span("prof.sweep").map(|s| s.count), Some(1));
    }
    assert!(
        p4.lanes.len() >= p1.lanes.len(),
        "more workers, at least as many lanes: {} vs {}",
        p4.lanes.len(),
        p1.lanes.len()
    );

    // Between two pooled widths the whole profile — every span name
    // and count, tc_par internals included — is structurally identical,
    // so the differential gate passes with counts compared exactly.
    let p2 = run(2);
    let names = |p: &Profile| -> Vec<(String, u64)> {
        let mut v: Vec<(String, u64)> = p.spans.iter().map(|s| (s.name.clone(), s.count)).collect();
        v.sort();
        v
    };
    assert_eq!(names(&p2), names(&p4));
    let report = diff(
        &p2,
        &p4,
        &DiffOptions {
            tol: 100.0,
            ..Default::default()
        },
    );
    assert!(report.is_clean(), "regressions: {:?}", report.regressions);
}
