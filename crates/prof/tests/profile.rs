//! Profile-construction edge cases on hand-built timelines: recursion,
//! imbalance, forced closes, heap bracketing, and the diff gate. These
//! build [`TraceSnapshot`]s directly, so no global recorder state is
//! involved and the expected numbers can be checked exactly.

use std::sync::Arc;

use tc_obs::trace::{TraceEvent, TraceEventKind};
use tc_obs::TraceSnapshot;
use tc_prof::{diff, DiffOptions, Profile};

fn ev(kind: TraceEventKind, name: &str, tid: u64, ts_ns: u64, delta: u64) -> TraceEvent {
    TraceEvent {
        kind,
        name: Arc::from(name),
        tid,
        ts_ns,
        delta,
    }
}

fn snap(mut events: Vec<TraceEvent>) -> TraceSnapshot {
    events.sort_by_key(|e| (e.tid, e.ts_ns));
    TraceSnapshot {
        events,
        dropped: 0,
        thread_names: vec![(0, "main".to_string())],
    }
}

#[test]
fn recursive_spans_double_count_total_but_not_self() {
    use TraceEventKind::{Begin, End};
    // `a` three frames deep: [0,500] ⊃ [100,400] ⊃ [200,300].
    let p = Profile::from_trace(&snap(vec![
        ev(Begin, "a", 0, 0, 0),
        ev(Begin, "a", 0, 100, 0),
        ev(Begin, "a", 0, 200, 0),
        ev(End, "a", 0, 300, 0),
        ev(End, "a", 0, 400, 0),
        ev(End, "a", 0, 500, 0),
    ]));
    assert_eq!(p.wall_ns, 500);
    let a = p.span("a").expect("span a");
    assert_eq!(a.count, 3);
    // Inclusive time per *name* exceeds wall under recursion (by
    // design); exclusive time still partitions the wall exactly.
    assert_eq!(a.total_ns, 100 + 300 + 500);
    assert_eq!(a.self_ns, 500);
    assert_eq!(a.child_ns, 400);
    assert_eq!((a.min_ns, a.max_ns), (100, 500));
    assert_eq!((a.p50_ns, a.p99_ns), (300, 500));
    // One lane, fully busy: the root frame covers the whole window.
    assert_eq!(p.attributed_ns, 500);
    assert!((p.coverage() - 1.0).abs() < 1e-12);
    // The chain walks the recursion: three `a` links, per-path self.
    let chain: Vec<(&str, u64)> = p
        .critical_chain
        .iter()
        .map(|l| (l.name.as_str(), l.self_ns))
        .collect();
    assert_eq!(chain, vec![("a", 200), ("a", 200), ("a", 100)]);
    assert_eq!(p.critical_chain_ns, 500);
}

#[test]
fn unmatched_end_is_counted_and_skipped() {
    use TraceEventKind::{Begin, End};
    // The `E lost` has no open frame (its `B` fell off a ring, or the
    // span was opened before a reset epoch) — it must not close `x`.
    let p = Profile::from_trace(&snap(vec![
        ev(End, "lost", 0, 50, 0),
        ev(Begin, "x", 0, 100, 0),
        ev(End, "lost", 0, 150, 0),
        ev(End, "x", 0, 200, 0),
    ]));
    assert_eq!(p.unmatched_ends, 2);
    assert_eq!(p.open_spans, 0);
    assert!(p.span("lost").is_none());
    let x = p.span("x").expect("span x");
    assert_eq!((x.count, x.total_ns), (1, 100));
}

#[test]
fn still_open_frames_close_at_the_last_timestamp() {
    use TraceEventKind::{Begin, Counter};
    let p = Profile::from_trace(&snap(vec![
        ev(Begin, "outer", 0, 0, 0),
        ev(Begin, "inner", 0, 10, 0),
        ev(Counter, "ticks", 0, 100, 1),
    ]));
    assert_eq!(p.open_spans, 2);
    assert_eq!(p.span("outer").unwrap().total_ns, 100);
    assert_eq!(p.span("inner").unwrap().total_ns, 90);
    assert_eq!(p.span("outer").unwrap().self_ns, 10);
}

#[test]
fn heap_gauges_bracket_nested_spans() {
    use TraceEventKind::{Begin, End, Gauge};
    let p = Profile::from_trace(&snap(vec![
        ev(Begin, "outer", 0, 0, 0),
        ev(Gauge, "mem.live_bytes", 0, 1, 1_000),
        ev(Begin, "inner", 0, 10, 0),
        ev(Gauge, "mem.live_bytes", 0, 11, 2_000),
        ev(End, "inner", 0, 20, 0),
        ev(Gauge, "mem.live_bytes", 0, 21, 5_000),
        ev(End, "outer", 0, 30, 0),
        ev(Gauge, "mem.live_bytes", 0, 31, 6_000),
    ]));
    assert_eq!(p.span("inner").unwrap().net_bytes, 3_000);
    assert_eq!(p.span("outer").unwrap().net_bytes, 5_000);
    // Freed-heavy spans go negative, they do not saturate at zero.
    let q = Profile::from_trace(&snap(vec![
        ev(Begin, "free", 0, 0, 0),
        ev(Gauge, "mem.live_bytes", 0, 1, 9_000),
        ev(End, "free", 0, 10, 0),
        ev(Gauge, "mem.live_bytes", 0, 11, 4_000),
    ]));
    assert_eq!(q.span("free").unwrap().net_bytes, -5_000);
}

#[test]
fn multi_lane_profile_reports_utilization_and_parallelism() {
    use TraceEventKind::{Begin, End};
    let mut s = snap(vec![
        ev(Begin, "drive", 0, 0, 0),
        ev(End, "drive", 0, 1_000, 0),
        ev(Begin, "task", 1, 200, 0),
        ev(End, "task", 1, 700, 0),
    ]);
    s.thread_names.push((1, "tc-par-0".to_string()));
    let p = Profile::from_trace(&s);
    assert_eq!(p.lanes.len(), 2);
    assert_eq!((p.lanes[0].busy_ns, p.lanes[0].idle_ns), (1_000, 0));
    assert_eq!((p.lanes[1].busy_ns, p.lanes[1].idle_ns), (500, 500));
    assert_eq!(p.lanes[1].name, "tc-par-0");
    assert_eq!(p.attributed_ns, 1_000);
    assert!((p.parallelism() - 1.5).abs() < 1e-12);
}

fn one_span_profile(name: &str, end_ns: u64) -> Profile {
    use TraceEventKind::{Begin, End};
    Profile::from_trace(&snap(vec![
        ev(Begin, name, 0, 0, 0),
        ev(End, name, 0, end_ns, 0),
    ]))
    .workload("diff fixture")
}

#[test]
fn diff_is_clean_against_itself_and_catches_a_slowed_span() {
    let base = one_span_profile("hot", 1_000);
    let same = diff(&base, &base.clone(), &DiffOptions::default());
    assert!(same.is_clean(), "regressions: {:?}", same.regressions);

    let slowed = one_span_profile("hot", 3_000);
    let report = diff(&base, &slowed, &DiffOptions::default());
    assert_eq!(report.regressions.len(), 1, "{:?}", report.regressions);
    assert!(report.regressions[0].contains("span hot"));
    assert!(report.regressions[0].contains("+200.0%"));

    // Improvements are notes, never gates.
    let improved = diff(&slowed, &base, &DiffOptions::default());
    assert!(improved.is_clean());
    assert!(improved.notes.iter().any(|n| n.contains("improved")));
}

#[test]
fn diff_gates_structure_and_respects_count_demotion() {
    use TraceEventKind::{Begin, End};
    let base = one_span_profile("hot", 1_000);
    let renamed = one_span_profile("warm", 1_000);
    let report = diff(&base, &renamed, &DiffOptions::default());
    assert!(report.regressions.iter().any(|r| r.contains("missing")));
    assert!(report.regressions.iter().any(|r| r.contains("new in")));

    let twice = Profile::from_trace(&snap(vec![
        ev(Begin, "hot", 0, 0, 0),
        ev(End, "hot", 0, 400, 0),
        ev(Begin, "hot", 0, 500, 0),
        ev(End, "hot", 0, 1_000, 0),
    ]))
    .workload("diff fixture");
    let strict = diff(&base, &twice, &DiffOptions::default());
    assert!(strict.regressions.iter().any(|r| r.contains("count")));
    let lax = DiffOptions {
        counts_informational: true,
        ..Default::default()
    };
    let demoted = diff(&base, &twice, &lax);
    assert!(demoted.is_clean(), "{:?}", demoted.regressions);
    assert!(demoted.notes.iter().any(|n| n.contains("count")));
}

#[test]
fn dropped_events_make_a_profile_ungateable() {
    let mut s = snap(vec![
        ev(TraceEventKind::Begin, "hot", 0, 0, 0),
        ev(TraceEventKind::End, "hot", 0, 1_000, 0),
    ]);
    s.dropped = 7;
    let p = Profile::from_trace(&s);
    assert_eq!(p.dropped_events, 7);
    assert!(p.render_text(10).contains("WARNING"));
    let report = diff(&p, &p.clone(), &DiffOptions::default());
    assert_eq!(report.regressions.len(), 2, "both sides are truncated");
    assert!(report.regressions[0].contains("dropped"));
}

#[test]
fn json_roundtrip_preserves_the_profile_exactly() {
    use TraceEventKind::{Begin, End, Gauge};
    let mut s = snap(vec![
        ev(Begin, "sta", 0, 0, 0),
        ev(Gauge, "mem.live_bytes", 0, 1, 4_096),
        ev(Begin, "propagate", 0, 100, 0),
        ev(End, "propagate", 0, 900, 0),
        ev(End, "sta", 0, 1_000, 0),
        ev(Gauge, "mem.live_bytes", 0, 1_001, 8_192),
        ev(Begin, "par.task", 1, 200, 0),
        ev(End, "par.task", 1, 600, 0),
    ]);
    s.thread_names.push((1, "tc-par-0".to_string()));
    let p = Profile::from_trace(&s).workload("roundtrip fixture");
    let parsed = Profile::parse(&p.render_json()).expect("own output parses");
    assert_eq!(parsed, p);
}
