//! Quickstart: run the full signoff flow on a generated block.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! Generates a small SoC block, places it, builds a clock tree, runs the
//! Fig 1 closure loop against a deliberately aggressive period, and then
//! recovers leakage — printing what a physical-design engineer would
//! watch at each step.

use timing_closure::closure::flow::ClosureConfig;
use timing_closure::sta::{Constraints, Sta};
use timing_closure::SignoffFlow;

fn main() -> Result<(), tc_core::Error> {
    // Build the flow ingredients explicitly so each step is visible.
    let mut flow = SignoffFlow::demo_block(7);
    println!(
        "design `{}`: {} cells, {} nets, {} flops",
        flow.netlist.name,
        flow.netlist.cell_count(),
        flow.netlist.net_count(),
        flow.netlist.flops(&flow.lib).count()
    );

    // Probe the block's natural speed with an unconstrained-ish run.
    let probe = Constraints::single_clock(5_000.0);
    let report = Sta::new(&flow.netlist, &flow.lib, &flow.stack, &probe).run()?;
    let fmax_period = 5_000.0 - report.wns().value();
    println!(
        "probe @ 5 ns: {}\n→ natural critical path ≈ {:.0} ps",
        report.summary(),
        fmax_period
    );

    // Ask for 40 ps more than the block can naturally do.
    let target = fmax_period - 40.0;
    println!("\nrunning closure at {target:.0} ps (40 ps overconstrained)…");
    flow.config = ClosureConfig::default();
    let outcome = flow.run(target)?;

    println!(
        "closed: {} in {} iteration(s) | final: {}",
        outcome.closed,
        outcome.iterations,
        outcome.final_report.summary()
    );
    println!(
        "post-closure leakage recovery saved {:.1}% of static power",
        100.0 * outcome.leakage_saving
    );
    Ok(())
}
