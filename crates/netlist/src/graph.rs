//! The netlist graph and its ECO edit operations.
//!
//! # Data layout
//!
//! The netlist is stored in struct-of-arrays (SoA) form: every cell and
//! net attribute lives in its own dense vector indexed by raw
//! [`CellId`] / [`NetId`], so the timing hot loops touch exactly the
//! columns they read and nothing else (no inline `String` names, no
//! per-cell `Vec` headers between consecutive masters).
//!
//! * Cell input pins are a CSR adjacency: `cell_input_nets` holds every
//!   input net back to back, `cell_input_offsets[i]..cell_input_offsets
//!   [i + 1]` is cell `i`'s slice. Input *counts* never change after
//!   `add_cell` (ECOs rewire pins in place, buffer insertion appends a
//!   new cell), so the offsets stay valid under every journaled edit.
//! * Net sink lists are spans into a shared `sink_pool`. Sinks *do*
//!   move between nets (buffering, rewires), so each span carries a
//!   capacity and relocates to the end of the pool with doubled
//!   capacity when full — O(1) amortized push, and the abandoned slots
//!   are bounded geometrically. [`Netlist::compact`] rebuilds the pool
//!   tight; the generators call it once construction settles.
//! * Names are evicted into interned [`NameTable`]s (one byte buffer +
//!   `(start, len)` spans) owned by the netlist and touched only by
//!   reporting, lookup and the Verilog writer. Cell-name lookup goes
//!   through a chained FNV-1a index (`NameIndex`) instead of a
//!   `HashMap<String, CellId>`.
//!
//! Accessors hand out [`CellRef`] / [`NetRef`] view structs that borrow
//! the columns, so downstream code reads `cell.inputs` / `net.sinks`
//! exactly as it did against the old array-of-structs layout.

use tc_core::error::{Error, Result};
use tc_core::ids::{CellId, LibCellId, NetId};
use tc_liberty::{CellKind, Library};

use crate::journal::NetlistEdit;

/// A (cell, input-pin-index) sink reference.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct PinRef {
    /// The sink cell.
    pub cell: CellId,
    /// Index into the cell's input pin list.
    pub pin: usize,
}

/// A borrowed view of one cell instance (the SoA columns re-assembled).
#[derive(Clone, Copy, Debug)]
pub struct CellRef<'a> {
    /// Instance name.
    pub name: &'a str,
    /// The library master this instance is bound to.
    pub master: LibCellId,
    /// Input nets, in the master's pin order (`D`, `CK` for flops).
    pub inputs: &'a [NetId],
    /// The output net.
    pub output: NetId,
}

/// A borrowed view of one net.
#[derive(Clone, Copy, Debug)]
pub struct NetRef<'a> {
    /// Net name.
    pub name: &'a str,
    /// Driving cell; `None` for primary inputs.
    pub driver: Option<CellId>,
    /// Sink pins.
    pub sinks: &'a [PinRef],
    /// `true` if the net is a primary output.
    pub is_output: bool,
    /// Estimated routed wirelength in µm (annotated by placement).
    pub wire_length_um: f64,
    /// Routing-rule class: 0 = default, 1 = double-width NDR,
    /// 2 = double-width/double-spacing NDR (set by closure fixes and
    /// interpreted by `tc-interconnect`).
    pub route_class: u8,
}

/// Interned names: one byte buffer plus `(start, len)` spans per id.
/// Append-only except [`NameTable::pop_last`], which exactly inverts
/// the most recent push (what buffer-insertion undo needs).
#[derive(Clone, Debug, Default)]
struct NameTable {
    bytes: String,
    spans: Vec<(u32, u32)>,
}

impl NameTable {
    fn len(&self) -> usize {
        self.spans.len()
    }

    fn get(&self, i: usize) -> &str {
        let (start, len) = self.spans[i];
        &self.bytes[start as usize..(start + len) as usize]
    }

    fn push(&mut self, name: &str) -> usize {
        let start = self.bytes.len() as u32;
        self.bytes.push_str(name);
        self.spans.push((start, name.len() as u32));
        self.spans.len() - 1
    }

    /// Removes the most recently pushed name, reclaiming its bytes.
    fn pop_last(&mut self) {
        let (start, _) = self.spans.pop().expect("name table not empty");
        self.bytes.truncate(start as usize);
    }
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Chained-bucket FNV-1a index over a [`NameTable`]: the flat-layout
/// replacement for `HashMap<String, CellId>`. `buckets` holds head
/// indices + 1 (0 = empty), `next` the per-entry chain links. Deletion
/// is only ever of the *last* entry (buffer undo), so a chain unlink
/// suffices — no tombstones.
#[derive(Clone, Debug, Default)]
struct NameIndex {
    buckets: Vec<u32>,
    next: Vec<u32>,
}

impl NameIndex {
    fn lookup(&self, names: &NameTable, name: &str) -> Option<usize> {
        if self.buckets.is_empty() {
            return None;
        }
        let mask = self.buckets.len() as u64 - 1;
        let mut at = self.buckets[(fnv1a(name.as_bytes()) & mask) as usize];
        while at != 0 {
            let i = (at - 1) as usize;
            if names.get(i) == name {
                return Some(i);
            }
            at = self.next[i];
        }
        None
    }

    /// Indexes the last-pushed name (index `names.len() - 1`).
    fn insert_last(&mut self, names: &NameTable) {
        let i = names.len() - 1;
        debug_assert_eq!(self.next.len(), i, "insert must follow the table");
        if names.len() > self.buckets.len() {
            self.grow(names);
        }
        let mask = self.buckets.len() as u64 - 1;
        let b = (fnv1a(names.get(i).as_bytes()) & mask) as usize;
        self.next.push(self.buckets[b]);
        self.buckets[b] = i as u32 + 1;
    }

    /// Unlinks the last entry, mirroring [`NameTable::pop_last`]. Call
    /// *before* popping the table (the name is still needed to hash).
    fn remove_last(&mut self, names: &NameTable) {
        let i = names.len() - 1;
        let mask = self.buckets.len() as u64 - 1;
        let b = (fnv1a(names.get(i).as_bytes()) & mask) as usize;
        let target = i as u32 + 1;
        if self.buckets[b] == target {
            self.buckets[b] = self.next[i];
        } else {
            let mut at = self.buckets[b];
            loop {
                let j = (at - 1) as usize;
                if self.next[j] == target {
                    self.next[j] = self.next[i];
                    break;
                }
                at = self.next[j];
                assert!(at != 0, "name index chain corrupt");
            }
        }
        self.next.pop();
    }

    fn grow(&mut self, names: &NameTable) {
        let want = (names.len().max(8)).next_power_of_two() * 2;
        self.buckets.clear();
        self.buckets.resize(want, 0);
        self.next.clear();
        self.next.resize(names.len() - 1, 0);
        let mask = want as u64 - 1;
        for i in 0..names.len() - 1 {
            let b = (fnv1a(names.get(i).as_bytes()) & mask) as usize;
            self.next[i] = self.buckets[b];
            self.buckets[b] = i as u32 + 1;
        }
    }
}

/// One net's sink list: a span into the shared pool with headroom.
#[derive(Clone, Copy, Debug, Default)]
struct SinkSpan {
    start: u32,
    len: u32,
    cap: u32,
}

const PLACEHOLDER_SINK: PinRef = PinRef {
    cell: CellId::new(0),
    pin: 0,
};

/// A gate-level netlist bound to a [`Library`]'s master ids.
///
/// Invariants (checked by [`Netlist::validate`]):
/// * every net has exactly one driver (a cell or a primary input);
/// * every cell's input count matches its master's pin count;
/// * flop `CK` pins connect to a clock net.
#[derive(Clone, Debug)]
pub struct Netlist {
    /// Design name.
    pub name: String,
    // Cell columns (dense by CellId).
    cell_master: Vec<LibCellId>,
    cell_output: Vec<NetId>,
    /// CSR offsets into `cell_input_nets`; length `cell_count() + 1`.
    cell_input_offsets: Vec<u32>,
    cell_input_nets: Vec<NetId>,
    // Net columns (dense by NetId).
    net_driver: Vec<Option<CellId>>,
    net_is_output: Vec<bool>,
    net_wire_length: Vec<f64>,
    net_route_class: Vec<u8>,
    net_sinks: Vec<SinkSpan>,
    sink_pool: Vec<PinRef>,
    // Name side tables: reporting/lookup only, never on the hot path.
    cell_names: NameTable,
    net_names: NameTable,
    cell_name_index: NameIndex,
    inputs: Vec<NetId>,
    journal: Vec<NetlistEdit>,
}

impl Default for Netlist {
    fn default() -> Self {
        Netlist::new("")
    }
}

impl Netlist {
    /// Creates an empty netlist.
    pub fn new(name: impl Into<String>) -> Self {
        Netlist {
            name: name.into(),
            cell_master: Vec::new(),
            cell_output: Vec::new(),
            cell_input_offsets: vec![0],
            cell_input_nets: Vec::new(),
            net_driver: Vec::new(),
            net_is_output: Vec::new(),
            net_wire_length: Vec::new(),
            net_route_class: Vec::new(),
            net_sinks: Vec::new(),
            sink_pool: Vec::new(),
            cell_names: NameTable::default(),
            net_names: NameTable::default(),
            cell_name_index: NameIndex::default(),
            inputs: Vec::new(),
            journal: Vec::new(),
        }
    }

    fn push_net(&mut self, name: &str, driver: Option<CellId>) -> NetId {
        let id = NetId::new(self.net_driver.len());
        self.net_names.push(name);
        self.net_driver.push(driver);
        self.net_is_output.push(false);
        self.net_wire_length.push(0.0);
        self.net_route_class.push(0);
        self.net_sinks.push(SinkSpan::default());
        id
    }

    /// Adds a primary input and returns its net.
    pub fn add_input(&mut self, name: impl Into<String>) -> NetId {
        let name = name.into();
        let id = self.push_net(&name, None);
        self.inputs.push(id);
        id
    }

    /// Adds a cell instance driving a fresh net; returns `(cell, output)`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidInput`] if the input count does not match
    /// the master's pin count, or the instance name is already taken.
    pub fn add_cell(
        &mut self,
        name: impl Into<String>,
        lib: &Library,
        master: LibCellId,
        inputs: &[NetId],
    ) -> Result<(CellId, NetId)> {
        let name = name.into();
        let want = lib.cell(master).input_pins().len();
        if inputs.len() != want {
            return Err(Error::invalid_input(format!(
                "cell {name}: master {} wants {want} inputs, got {}",
                lib.cell(master).name,
                inputs.len()
            )));
        }
        if self
            .cell_name_index
            .lookup(&self.cell_names, &name)
            .is_some()
        {
            return Err(Error::invalid_input(format!(
                "duplicate instance name {name}"
            )));
        }
        let cell_id = CellId::new(self.cell_master.len());
        let out_name = format!("{name}_out");
        let out = self.push_net(&out_name, Some(cell_id));
        for (pin, &net) in inputs.iter().enumerate() {
            self.sink_push(net, PinRef { cell: cell_id, pin });
        }
        self.cell_names.push(&name);
        self.cell_name_index.insert_last(&self.cell_names);
        self.cell_master.push(master);
        self.cell_output.push(out);
        self.cell_input_nets.extend_from_slice(inputs);
        self.cell_input_offsets
            .push(self.cell_input_nets.len() as u32);
        Ok((cell_id, out))
    }

    /// Marks a net as a primary output.
    pub fn mark_output(&mut self, net: NetId) {
        self.net_is_output[net.index()] = true;
    }

    /// Number of cell instances.
    pub fn cell_count(&self) -> usize {
        self.cell_master.len()
    }

    /// Number of nets.
    pub fn net_count(&self) -> usize {
        self.net_driver.len()
    }

    /// Iterates all cells in [`CellId`] order.
    pub fn cells(&self) -> impl Iterator<Item = CellRef<'_>> + '_ {
        (0..self.cell_count()).map(|i| self.cell(CellId::new(i)))
    }

    /// Iterates all nets in [`NetId`] order.
    pub fn nets(&self) -> impl Iterator<Item = NetRef<'_>> + '_ {
        (0..self.net_count()).map(|i| self.net(NetId::new(i)))
    }

    /// One cell.
    pub fn cell(&self, id: CellId) -> CellRef<'_> {
        let i = id.index();
        CellRef {
            name: self.cell_names.get(i),
            master: self.cell_master[i],
            inputs: self.cell_inputs(id),
            output: self.cell_output[i],
        }
    }

    /// One net.
    pub fn net(&self, id: NetId) -> NetRef<'_> {
        let i = id.index();
        let span = self.net_sinks[i];
        NetRef {
            name: self.net_names.get(i),
            driver: self.net_driver[i],
            sinks: &self.sink_pool[span.start as usize..(span.start + span.len) as usize],
            is_output: self.net_is_output[i],
            wire_length_um: self.net_wire_length[i],
            route_class: self.net_route_class[i],
        }
    }

    /// A cell's input nets (the CSR slice), without the name lookup.
    #[inline]
    pub fn cell_inputs(&self, id: CellId) -> &[NetId] {
        let i = id.index();
        let start = self.cell_input_offsets[i] as usize;
        let end = self.cell_input_offsets[i + 1] as usize;
        &self.cell_input_nets[start..end]
    }

    /// The global index of cell `id`'s pin 0 in the flat input-pin
    /// numbering (`pin_base(id) + pin` addresses one input pin). Dense
    /// structures in `tc-sta` index by this instead of hashing
    /// `(CellId, pin)` keys.
    #[inline]
    pub fn pin_base(&self, id: CellId) -> usize {
        self.cell_input_offsets[id.index()] as usize
    }

    /// Total input-pin count across all cells (the length of the flat
    /// pin numbering).
    #[inline]
    pub fn total_input_pins(&self) -> usize {
        self.cell_input_nets.len()
    }

    /// Primary input nets.
    pub fn primary_inputs(&self) -> &[NetId] {
        &self.inputs
    }

    /// Primary output nets.
    pub fn primary_outputs(&self) -> impl Iterator<Item = NetId> + '_ {
        self.net_is_output
            .iter()
            .enumerate()
            .filter(|(_, &o)| o)
            .map(|(i, _)| NetId::new(i))
    }

    /// Looks up a cell by instance name.
    pub fn cell_named(&self, name: &str) -> Option<CellId> {
        self.cell_name_index
            .lookup(&self.cell_names, name)
            .map(CellId::new)
    }

    /// Ids of all flop instances.
    pub fn flops<'a>(&'a self, lib: &'a Library) -> impl Iterator<Item = CellId> + 'a {
        self.cell_master
            .iter()
            .enumerate()
            .filter(move |(_, &m)| lib.cell(m).kind == CellKind::Flop)
            .map(|(i, _)| CellId::new(i))
    }

    // --- sink-span pool operations -----------------------------------

    fn sink_slice(&self, net: NetId) -> &[PinRef] {
        let s = self.net_sinks[net.index()];
        &self.sink_pool[s.start as usize..(s.start + s.len) as usize]
    }

    /// Relocates `net`'s span to the end of the pool with at least
    /// `min_cap` capacity (doubling policy).
    fn sink_grow(&mut self, net: NetId, min_cap: u32) {
        let mut s = self.net_sinks[net.index()];
        let new_cap = (s.cap * 2).max(min_cap).max(2);
        let new_start = self.sink_pool.len() as u32;
        self.sink_pool.reserve(new_cap as usize);
        for k in 0..s.len {
            let v = self.sink_pool[(s.start + k) as usize];
            self.sink_pool.push(v);
        }
        for _ in s.len..new_cap {
            self.sink_pool.push(PLACEHOLDER_SINK);
        }
        s.start = new_start;
        s.cap = new_cap;
        self.net_sinks[net.index()] = s;
    }

    fn sink_push(&mut self, net: NetId, pr: PinRef) {
        if self.net_sinks[net.index()].len == self.net_sinks[net.index()].cap {
            self.sink_grow(net, 2);
        }
        let s = &mut self.net_sinks[net.index()];
        self.sink_pool[(s.start + s.len) as usize] = pr;
        s.len += 1;
    }

    /// Keeps only sinks matching `pred`, preserving order.
    fn sink_retain(&mut self, net: NetId, mut pred: impl FnMut(&PinRef) -> bool) {
        let s = self.net_sinks[net.index()];
        let (start, len) = (s.start as usize, s.len as usize);
        let mut kept = 0usize;
        for k in 0..len {
            let v = self.sink_pool[start + k];
            if pred(&v) {
                self.sink_pool[start + kept] = v;
                kept += 1;
            }
        }
        self.net_sinks[net.index()].len = kept as u32;
    }

    /// Inserts a sink at `index`, shifting later sinks right.
    fn sink_insert(&mut self, net: NetId, index: usize, pr: PinRef) {
        if self.net_sinks[net.index()].len == self.net_sinks[net.index()].cap {
            self.sink_grow(net, 2);
        }
        let s = self.net_sinks[net.index()];
        let (start, len) = (s.start as usize, s.len as usize);
        assert!(index <= len, "sink insert index out of range");
        let mut k = len;
        while k > index {
            self.sink_pool[start + k] = self.sink_pool[start + k - 1];
            k -= 1;
        }
        self.sink_pool[start + index] = pr;
        self.net_sinks[net.index()].len = len as u32 + 1;
    }

    /// Rebuilds the sink pool tight (capacity == length, no abandoned
    /// slots). The generators call this once after construction: bulk
    /// building doubles spans many times, and the reclaimed slack is
    /// pure peak-heap win. ECOs after a compact simply start a fresh
    /// doubling ladder at the pool tail.
    pub fn compact(&mut self) {
        let mut pool =
            Vec::with_capacity(self.net_sinks.iter().map(|s| s.len as usize).sum::<usize>());
        for s in &mut self.net_sinks {
            let new_start = pool.len() as u32;
            pool.extend_from_slice(&self.sink_pool[s.start as usize..(s.start + s.len) as usize]);
            s.start = new_start;
            s.cap = s.len;
        }
        self.sink_pool = pool;
    }

    // --- journaled ECO mutators --------------------------------------

    /// Annotates a net's estimated wirelength (journaled: closure fixes
    /// re-annotate split nets, and the incremental timer must see it).
    pub fn set_wire_length(&mut self, net: NetId, um: f64) {
        let old_um = self.net_wire_length[net.index()];
        self.net_wire_length[net.index()] = um;
        self.journal.push(NetlistEdit::SetWireLength {
            net,
            old_um,
            new_um: um,
        });
    }

    /// **ECO: routing rule.** Sets a net's route class (NDR application).
    pub fn set_route_class(&mut self, net: NetId, class: u8) {
        let old_class = self.net_route_class[net.index()];
        self.net_route_class[net.index()] = class;
        self.journal.push(NetlistEdit::SetRouteClass {
            net,
            old_class,
            new_class: class,
        });
    }

    /// **ECO: master swap.** Rebinds a cell to a different master with the
    /// same pin interface (Vt-swap or resize).
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidInput`] if the new master's pin count
    /// differs.
    pub fn swap_master(
        &mut self,
        lib: &Library,
        cell: CellId,
        new_master: LibCellId,
    ) -> Result<()> {
        let want = self.cell_inputs(cell).len();
        let got = lib.cell(new_master).input_pins().len();
        if want != got {
            return Err(Error::invalid_input(format!(
                "swap on {}: pin count {got} != {want}",
                self.cell_names.get(cell.index())
            )));
        }
        let old_master = self.cell_master[cell.index()];
        self.cell_master[cell.index()] = new_master;
        self.journal.push(NetlistEdit::SwapMaster {
            cell,
            old_master,
            new_master,
        });
        Ok(())
    }

    /// **ECO: buffer insertion.** Splits `net`, inserting a buffer that
    /// drives the given subset of its sinks (the classic long-net /
    /// weak-driver fix of Fig 1). Returns the new buffer's cell id.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidInput`] if any requested sink is not on the
    /// net, or the buffer master is not single-input.
    pub fn insert_buffer(
        &mut self,
        lib: &Library,
        net: NetId,
        moved_sinks: &[PinRef],
        buf_master: LibCellId,
    ) -> Result<CellId> {
        if lib.cell(buf_master).input_pins().len() != 1 {
            return Err(Error::invalid_input("buffer master must be single-input"));
        }
        for s in moved_sinks {
            if !self.sink_slice(net).contains(s) {
                return Err(Error::invalid_input(format!(
                    "sink {:?} not on net {}",
                    s,
                    self.net_names.get(net.index())
                )));
            }
        }
        let buf_name = format!("eco_buf_{}", self.cell_count());
        let (buf_id, buf_out) = self.add_cell(buf_name, lib, buf_master, &[net])?;
        // Record each moved sink's original position so undo can restore
        // the exact sink order (per-sink wire delays align with it).
        let moved_with_index: Vec<(PinRef, usize)> = self
            .sink_slice(net)
            .iter()
            .enumerate()
            .filter(|(_, s)| moved_sinks.contains(s))
            .map(|(i, &s)| (s, i))
            .collect();
        // Detach the moved sinks from the original net and re-home them.
        self.sink_retain(net, |s| !moved_sinks.contains(s));
        for &s in moved_sinks {
            self.set_cell_input(s, buf_out);
            self.sink_push(buf_out, s);
        }
        self.journal.push(NetlistEdit::InsertBuffer {
            buffer: buf_id,
            buffer_out: buf_out,
            src_net: net,
            moved_sinks: moved_with_index,
        });
        Ok(buf_id)
    }

    fn set_cell_input(&mut self, sink: PinRef, net: NetId) {
        let base = self.cell_input_offsets[sink.cell.index()] as usize;
        self.cell_input_nets[base + sink.pin] = net;
    }

    /// **ECO: rewire.** Moves one input pin of a cell onto a different
    /// net, maintaining both nets' sink lists.
    pub fn rewire_input(&mut self, sink: PinRef, new_net: NetId) {
        let old = self.cell_inputs(sink.cell)[sink.pin];
        let old_index = self
            .sink_slice(old)
            .iter()
            .position(|s| *s == sink)
            .expect("sink must be on its recorded net");
        self.sink_retain(old, |s| *s != sink);
        self.set_cell_input(sink, new_net);
        self.sink_push(new_net, sink);
        self.journal.push(NetlistEdit::RewireInput {
            sink,
            old_net: old,
            new_net,
            old_index,
        });
    }

    /// The full edit journal (construction edits excluded — see
    /// [`NetlistEdit`]).
    pub fn journal(&self) -> &[NetlistEdit] {
        &self.journal
    }

    /// The current journal length — the checkpoint token for
    /// [`Netlist::undo_to`] and the incremental timer's cursor.
    pub fn journal_len(&self) -> usize {
        self.journal.len()
    }

    /// Rolls the netlist back to a checkpoint taken with
    /// [`Netlist::journal_len`], applying the inverse of every journaled
    /// edit since, newest first, and truncating the journal. Cost is
    /// O(edits undone), not O(design).
    ///
    /// Identifiers remain stable: undoing a buffer insertion removes the
    /// *last* cell and net, so every id allocated before the checkpoint
    /// still names the same object.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidInput`] if `checkpoint` is beyond the
    /// journal, and [`Error::Internal`] if un-journaled structural
    /// mutations (direct `add_cell` calls) interleaved with the edits
    /// being undone.
    pub fn undo_to(&mut self, checkpoint: usize) -> Result<()> {
        if checkpoint > self.journal.len() {
            return Err(Error::invalid_input(format!(
                "undo checkpoint {checkpoint} beyond journal length {}",
                self.journal.len()
            )));
        }
        while self.journal.len() > checkpoint {
            let edit = self.journal.pop().expect("length checked");
            match edit {
                NetlistEdit::SwapMaster {
                    cell, old_master, ..
                } => {
                    self.cell_master[cell.index()] = old_master;
                }
                NetlistEdit::SetWireLength { net, old_um, .. } => {
                    self.net_wire_length[net.index()] = old_um;
                }
                NetlistEdit::SetRouteClass { net, old_class, .. } => {
                    self.net_route_class[net.index()] = old_class;
                }
                NetlistEdit::RewireInput {
                    sink,
                    old_net,
                    new_net,
                    old_index,
                } => {
                    self.sink_retain(new_net, |s| *s != sink);
                    self.set_cell_input(sink, old_net);
                    self.sink_insert(old_net, old_index, sink);
                }
                NetlistEdit::InsertBuffer {
                    buffer,
                    buffer_out,
                    src_net,
                    moved_sinks,
                } => {
                    if buffer.index() + 1 != self.cell_count()
                        || buffer_out.index() + 1 != self.net_count()
                    {
                        return Err(Error::internal(
                            "undo of buffer insertion: cells/nets were added \
                             outside the journal since the edit",
                        ));
                    }
                    // Detach the buffer from the split net, restore the
                    // moved sinks at their original positions (ascending
                    // order keeps later indices valid), and drop the
                    // appended cell + net.
                    let tap = PinRef {
                        cell: buffer,
                        pin: 0,
                    };
                    self.sink_retain(src_net, |s| *s != tap);
                    for &(s, i) in &moved_sinks {
                        self.set_cell_input(s, src_net);
                        self.sink_insert(src_net, i, s);
                    }
                    self.cell_name_index.remove_last(&self.cell_names);
                    self.cell_names.pop_last();
                    self.cell_master.pop();
                    self.cell_output.pop();
                    let base = self.cell_input_offsets[self.cell_count()] as usize;
                    self.cell_input_nets.truncate(base);
                    self.cell_input_offsets.pop();
                    self.net_names.pop_last();
                    self.net_driver.pop();
                    self.net_is_output.pop();
                    self.net_wire_length.pop();
                    self.net_route_class.pop();
                    self.net_sinks.pop();
                }
            }
        }
        Ok(())
    }

    /// Total placement-site area of the design.
    pub fn total_area(&self, lib: &Library) -> f64 {
        self.cell_master
            .iter()
            .map(|&m| lib.cell(m).area_sites)
            .sum()
    }

    /// Total leakage power in µW at the library's corner.
    pub fn total_leakage_uw(&self, lib: &Library) -> f64 {
        self.cell_master
            .iter()
            .map(|&m| lib.cell(m).leakage_uw)
            .sum()
    }

    /// Checks the structural invariants.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Internal`] describing the first violation found.
    pub fn validate(&self, lib: &Library) -> Result<()> {
        for i in 0..self.net_count() {
            let id = NetId::new(i);
            let is_pi = self.inputs.contains(&id);
            if self.net_driver[i].is_none() && !is_pi {
                return Err(Error::internal(format!(
                    "net {} undriven",
                    self.net_names.get(i)
                )));
            }
            if self.net_driver[i].is_some() && is_pi {
                return Err(Error::internal(format!(
                    "net {} both driven and a primary input",
                    self.net_names.get(i)
                )));
            }
            for s in self.sink_slice(id) {
                if self.cell_inputs(s.cell)[s.pin] != id {
                    return Err(Error::internal(format!(
                        "net {}: sink {:?} does not point back",
                        self.net_names.get(i),
                        s
                    )));
                }
            }
        }
        for i in 0..self.cell_count() {
            let id = CellId::new(i);
            if self.cell_inputs(id).len() != lib.cell(self.cell_master[i]).input_pins().len() {
                return Err(Error::internal(format!(
                    "cell {} pin mismatch",
                    self.cell_names.get(i)
                )));
            }
            let out = self.cell_output[i];
            if self.net_driver[out.index()] != Some(id) {
                return Err(Error::internal(format!(
                    "cell {} output net driver mismatch",
                    self.cell_names.get(i)
                )));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tc_device::VtClass;
    use tc_liberty::{LibConfig, PvtCorner};

    fn lib() -> Library {
        Library::generate(&LibConfig::default(), &PvtCorner::typical())
    }

    fn tiny(lib: &Library) -> Netlist {
        // a, b → NAND2 → INV → out
        let mut nl = Netlist::new("tiny");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let nand = lib.variant("NAND2", VtClass::Svt, 1.0).unwrap();
        let inv = lib.variant("INV", VtClass::Svt, 1.0).unwrap();
        let (_, n1) = nl.add_cell("u1", lib, nand, &[a, b]).unwrap();
        let (_, n2) = nl.add_cell("u2", lib, inv, &[n1]).unwrap();
        nl.mark_output(n2);
        nl
    }

    #[test]
    fn build_and_validate() {
        let lib = lib();
        let nl = tiny(&lib);
        assert_eq!(nl.cell_count(), 2);
        assert_eq!(nl.net_count(), 4);
        nl.validate(&lib).unwrap();
        assert_eq!(nl.primary_outputs().count(), 1);
        assert!(nl.cell_named("u1").is_some());
    }

    #[test]
    fn rejects_pin_mismatch_and_duplicates() {
        let lib = lib();
        let mut nl = Netlist::new("bad");
        let a = nl.add_input("a");
        let nand = lib.variant("NAND2", VtClass::Svt, 1.0).unwrap();
        assert!(nl.add_cell("u1", &lib, nand, &[a]).is_err());
        let inv = lib.variant("INV", VtClass::Svt, 1.0).unwrap();
        nl.add_cell("u1", &lib, inv, &[a]).unwrap();
        assert!(nl.add_cell("u1", &lib, inv, &[a]).is_err());
    }

    #[test]
    fn swap_master_eco() {
        let lib = lib();
        let mut nl = tiny(&lib);
        let u1 = nl.cell_named("u1").unwrap();
        let lvt = lib.variant("NAND2", VtClass::Lvt, 1.0).unwrap();
        nl.swap_master(&lib, u1, lvt).unwrap();
        assert_eq!(nl.cell(u1).master, lvt);
        nl.validate(&lib).unwrap();
        // Swapping to a mismatched-arity master fails.
        let inv = lib.variant("INV", VtClass::Svt, 1.0).unwrap();
        assert!(nl.swap_master(&lib, u1, inv).is_err());
    }

    #[test]
    fn buffer_insertion_eco() {
        let lib = lib();
        let mut nl = tiny(&lib);
        let u2 = nl.cell_named("u2").unwrap();
        let n1 = nl.cell(nl.cell_named("u1").unwrap()).output;
        let sink = PinRef { cell: u2, pin: 0 };
        let buf = lib.variant("BUF", VtClass::Svt, 2.0).unwrap();
        let buf_id = nl.insert_buffer(&lib, n1, &[sink], buf).unwrap();
        nl.validate(&lib).unwrap();
        // Original net now drives only the buffer.
        assert_eq!(nl.net(n1).sinks.len(), 1);
        assert_eq!(nl.net(n1).sinks[0].cell, buf_id);
        // u2 is fed by the buffer's output.
        assert_eq!(nl.cell(u2).inputs[0], nl.cell(buf_id).output);
    }

    #[test]
    fn area_and_leakage_aggregate() {
        let lib = lib();
        let nl = tiny(&lib);
        assert!(nl.total_area(&lib) > 0.0);
        assert!(nl.total_leakage_uw(&lib) > 0.0);
    }

    #[test]
    fn compact_preserves_structure() {
        let lib = lib();
        let mut nl = tiny(&lib);
        let before: Vec<Vec<PinRef>> = nl.nets().map(|n| n.sinks.to_vec()).collect();
        nl.compact();
        let after: Vec<Vec<PinRef>> = nl.nets().map(|n| n.sinks.to_vec()).collect();
        assert_eq!(before, after);
        nl.validate(&lib).unwrap();
        // Pool is tight: capacity equals total sink count.
        assert_eq!(
            nl.sink_pool.len(),
            nl.nets().map(|n| n.sinks.len()).sum::<usize>()
        );
        // ECOs still work after a compact.
        let u2 = nl.cell_named("u2").unwrap();
        let n1 = nl.cell(nl.cell_named("u1").unwrap()).output;
        let buf = lib.variant("BUF", VtClass::Svt, 2.0).unwrap();
        nl.insert_buffer(&lib, n1, &[PinRef { cell: u2, pin: 0 }], buf)
            .unwrap();
        nl.validate(&lib).unwrap();
    }

    /// Structural snapshot for undo round-trip checks: everything an
    /// undo must restore bit-identically, gathered through the views.
    type NetRow = (String, Option<CellId>, Vec<PinRef>, bool, f64, u8);

    #[derive(Debug, PartialEq)]
    struct Snapshot {
        cells: Vec<(String, LibCellId, Vec<NetId>, NetId)>,
        nets: Vec<NetRow>,
        journal_len: usize,
    }

    fn snapshot(nl: &Netlist) -> Snapshot {
        Snapshot {
            cells: nl
                .cells()
                .map(|c| (c.name.to_string(), c.master, c.inputs.to_vec(), c.output))
                .collect(),
            nets: nl
                .nets()
                .map(|n| {
                    (
                        n.name.to_string(),
                        n.driver,
                        n.sinks.to_vec(),
                        n.is_output,
                        n.wire_length_um,
                        n.route_class,
                    )
                })
                .collect(),
            journal_len: nl.journal_len(),
        }
    }

    #[test]
    fn journal_records_eco_edits() {
        let lib = lib();
        let mut nl = tiny(&lib);
        assert_eq!(nl.journal_len(), 0, "construction is not journaled");
        let u1 = nl.cell_named("u1").unwrap();
        let n1 = nl.cell(u1).output;
        let lvt = lib.variant("NAND2", VtClass::Lvt, 1.0).unwrap();
        nl.swap_master(&lib, u1, lvt).unwrap();
        nl.set_wire_length(n1, 33.0);
        nl.set_route_class(n1, 2);
        assert_eq!(nl.journal_len(), 3);
        assert!(matches!(
            nl.journal()[0],
            NetlistEdit::SwapMaster { cell, .. } if cell == u1
        ));
        assert!(!nl.journal()[1].is_structural());
        // Failed edits are not journaled.
        let inv = lib.variant("INV", VtClass::Svt, 1.0).unwrap();
        assert!(nl.swap_master(&lib, u1, inv).is_err());
        assert_eq!(nl.journal_len(), 3);
    }

    #[test]
    fn undo_restores_value_edits() {
        let lib = lib();
        let mut nl = tiny(&lib);
        let u1 = nl.cell_named("u1").unwrap();
        let n1 = nl.cell(u1).output;
        let before = snapshot(&nl);
        let lvt = lib.variant("NAND2", VtClass::Lvt, 1.0).unwrap();
        nl.swap_master(&lib, u1, lvt).unwrap();
        nl.set_wire_length(n1, 33.0);
        nl.set_route_class(n1, 2);
        nl.undo_to(before.journal_len).unwrap();
        assert_eq!(snapshot(&nl), before);
        nl.validate(&lib).unwrap();
    }

    #[test]
    fn undo_restores_buffer_insertion() {
        let lib = lib();
        let mut nl = tiny(&lib);
        let u2 = nl.cell_named("u2").unwrap();
        let n1 = nl.cell(nl.cell_named("u1").unwrap()).output;
        let before = snapshot(&nl);
        let buf = lib.variant("BUF", VtClass::Svt, 2.0).unwrap();
        nl.insert_buffer(&lib, n1, &[PinRef { cell: u2, pin: 0 }], buf)
            .unwrap();
        assert_eq!(nl.journal_len(), 1);
        assert!(nl.journal()[0].is_structural());
        nl.undo_to(before.journal_len).unwrap();
        assert_eq!(snapshot(&nl), before);
        assert!(nl.cell_named("u2").is_some());
        nl.validate(&lib).unwrap();
        // The buffer's name is free again.
        let redo = nl.insert_buffer(&lib, n1, &[PinRef { cell: u2, pin: 0 }], buf);
        assert!(redo.is_ok());
    }

    #[test]
    fn undo_restores_rewire_and_sink_order() {
        let lib = lib();
        // a → INV u1; a → INV u2; b → NAND(u1.out, u2.out) — then rewire
        // u2's input from a to b and undo.
        let mut nl = Netlist::new("rewire");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let inv = lib.variant("INV", VtClass::Svt, 1.0).unwrap();
        let nand = lib.variant("NAND2", VtClass::Svt, 1.0).unwrap();
        let (u1, o1) = nl.add_cell("u1", &lib, inv, &[a]).unwrap();
        let (u2, o2) = nl.add_cell("u2", &lib, inv, &[a]).unwrap();
        let (_, o3) = nl.add_cell("u3", &lib, nand, &[o1, o2]).unwrap();
        nl.mark_output(o3);
        let _ = u1;
        let before = snapshot(&nl);
        nl.rewire_input(PinRef { cell: u2, pin: 0 }, b);
        assert_eq!(nl.cell(u2).inputs[0], b);
        nl.undo_to(before.journal_len).unwrap();
        assert_eq!(snapshot(&nl), before);
        nl.validate(&lib).unwrap();
    }

    #[test]
    fn undo_interleaved_sequence_lifo() {
        let lib = lib();
        let mut nl = tiny(&lib);
        let u1 = nl.cell_named("u1").unwrap();
        let u2 = nl.cell_named("u2").unwrap();
        let n1 = nl.cell(u1).output;
        let before = snapshot(&nl);
        let lvt = lib.variant("NAND2", VtClass::Lvt, 1.0).unwrap();
        let buf = lib.variant("BUF", VtClass::Svt, 2.0).unwrap();
        nl.swap_master(&lib, u1, lvt).unwrap();
        nl.insert_buffer(&lib, n1, &[PinRef { cell: u2, pin: 0 }], buf)
            .unwrap();
        nl.set_wire_length(n1, 12.5);
        let mid = nl.journal_len();
        let mid_snap = snapshot(&nl);
        nl.insert_buffer(
            &lib,
            n1,
            &[nl.net(n1).sinks[0]],
            lib.variant("BUF", VtClass::Svt, 1.0).unwrap(),
        )
        .unwrap();
        nl.set_route_class(n1, 3);
        // Partial undo back to the mid checkpoint…
        nl.undo_to(mid).unwrap();
        assert_eq!(snapshot(&nl), mid_snap);
        // …then all the way back to time zero.
        nl.undo_to(before.journal_len).unwrap();
        assert_eq!(snapshot(&nl), before);
        nl.validate(&lib).unwrap();
    }

    #[test]
    fn undo_rejects_bad_checkpoint() {
        let lib = lib();
        let mut nl = tiny(&lib);
        assert!(nl.undo_to(5).is_err());
        assert!(nl.undo_to(0).is_ok());
    }

    #[test]
    fn name_index_survives_growth_and_removal() {
        let lib = lib();
        let mut nl = Netlist::new("names");
        let a = nl.add_input("a");
        let inv = lib.variant("INV", VtClass::Svt, 1.0).unwrap();
        // Enough cells to force several index growths.
        let mut prev = a;
        for i in 0..200 {
            let (_, out) = nl
                .add_cell(format!("cell_{i}"), &lib, inv, &[prev])
                .unwrap();
            prev = out;
        }
        for i in 0..200 {
            let id = nl.cell_named(&format!("cell_{i}")).unwrap();
            assert_eq!(id.index(), i);
        }
        assert!(nl.cell_named("cell_200").is_none());
        // Buffer insert + undo exercises remove_last through a chain.
        let before = nl.journal_len();
        let n0 = nl.cell(CellId::new(0)).output;
        let sink = nl.net(n0).sinks[0];
        let buf = lib.variant("BUF", VtClass::Svt, 2.0).unwrap();
        nl.insert_buffer(&lib, n0, &[sink], buf).unwrap();
        assert!(nl.cell_named("eco_buf_200").is_some());
        nl.undo_to(before).unwrap();
        assert!(nl.cell_named("eco_buf_200").is_none());
        for i in 0..200 {
            assert!(nl.cell_named(&format!("cell_{i}")).is_some());
        }
    }
}
