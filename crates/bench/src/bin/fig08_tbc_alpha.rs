//! **Fig 8** — tightened BEOL corners (Chan–Dobre–Kahng, ref \[2\]):
//! the pessimism metric α = 3σ/Δd per path at the Cw and RCw corners,
//! the corner-dominance split, and threshold-based TBC eligibility.

use tc_bench::{fmt, print_table};
use tc_interconnect::beol::BeolStack;
use tc_variation::tbc::TbcStudy;

fn main() {
    let stack = BeolStack::n20();
    let study = TbcStudy::generate(&stack, 200, 3_000, 2015);

    // Fig 8(a): the α scatter, summarized by wire-fraction bands.
    let mut rows = Vec::new();
    for (lo, hi) in [(0.0, 0.15), (0.15, 0.30), (0.30, 0.45), (0.45, 1.0)] {
        let idx: Vec<usize> = (0..study.paths.len())
            .filter(|&i| {
                let wf = study.paths[i].wire_fraction();
                wf >= lo && wf < hi
            })
            .collect();
        if idx.is_empty() {
            continue;
        }
        let mean =
            |v: &dyn Fn(usize) -> f64| idx.iter().map(|&i| v(i)).sum::<f64>() / idx.len() as f64;
        rows.push(vec![
            format!("{lo:.2}-{hi:.2}"),
            idx.len().to_string(),
            fmt(mean(&|i| study.at_cw[i].alpha.min(5.0)), 2),
            fmt(mean(&|i| study.at_rcw[i].alpha.min(5.0)), 2),
            fmt(mean(&|i| 100.0 * study.at_cw[i].delta_rel), 2) + "%",
            fmt(mean(&|i| 100.0 * study.at_rcw[i].delta_rel), 2) + "%",
        ]);
    }
    print_table(
        "Fig 8(a): mean α and Δd by wire fraction (200 paths, per-layer MC)",
        &[
            "wire frac",
            "paths",
            "α @ Cw",
            "α @ RCw",
            "Δd/d @ Cw",
            "Δd/d @ RCw",
        ],
        &rows,
    );

    let under = study.cw_undercovered();
    let covered = under
        .iter()
        .filter(|&&i| study.at_rcw[i].alpha <= 1.0)
        .count();
    println!(
        "\npaths with α > 1 at Cw (Cw under-covers): {} of {}; of those, {} are covered by RCw",
        under.len(),
        study.paths.len(),
        covered
    );
    println!("→ both corners must be signed off (the paper's Fig 8(a) point)");
    println!(
        "median min(α_Cw, α_RCw) = {:.2} (pessimism of the dominating corner)",
        study.median_min_alpha()
    );

    // Fig 8(b): TBC eligibility vs thresholds.
    let mut rows = Vec::new();
    for &(a_cw, a_rcw) in &[(0.02, 0.025), (0.04, 0.05), (0.06, 0.08), (0.10, 0.12)] {
        let eligible = study.tbc_eligible(a_cw, a_rcw);
        rows.push(vec![
            format!("{:.0}% / {:.0}%", 100.0 * a_cw, 100.0 * a_rcw),
            eligible.len().to_string(),
            fmt(100.0 * eligible.len() as f64 / study.paths.len() as f64, 1) + "%",
        ]);
    }
    print_table(
        "Fig 8(b): paths eligible for tightened-corner signoff",
        &["thresholds Acw/Arcw", "eligible paths", "share"],
        &rows,
    );
}
