//! §4 Comment 3 — flat vs ETM-based hierarchical analysis: extract
//! boundary models from two closed blocks, budget their interface at the
//! top level, and show the pessimism the single-number boundary carries.

use tc_bench::{fmt, print_table, standard_env};
use tc_core::units::Ps;
use tc_sta::etm::{interface_slack, Etm};
use tc_sta::{Constraints, Endpoint, Sta};

fn main() {
    let (lib, stack) = standard_env();
    let nl_a = tc_bench::bench_netlist(&lib, "tiny", 101);
    let nl_b = tc_bench::bench_netlist(&lib, "tiny", 102);
    let cons = Constraints::single_clock(3_000.0);

    let sta_a = Sta::new(&nl_a, &lib, &stack, &cons);
    let sta_b = Sta::new(&nl_b, &lib, &stack, &cons);
    let etm_a = Etm::extract(&sta_a, "block_a").expect("etm a");
    let etm_b = Etm::extract(&sta_b, "block_b").expect("etm b");

    println!(
        "block_a: {} inputs, {} outputs | worst c2out {:.1} ps",
        etm_a.inputs.len(),
        etm_a.outputs.len(),
        etm_a.worst_output_delay().unwrap().value()
    );
    println!(
        "block_b: worst input requirement {:.1} ps before the edge",
        etm_b.worst_input_requirement().unwrap().value()
    );

    // Top-level interface budget across a sweep of wire lengths.
    let a_out = nl_a.primary_outputs().next().unwrap();
    let b_in = nl_b.primary_inputs()[1];
    let mut rows = Vec::new();
    for wire_ps in [10.0, 50.0, 100.0, 200.0, 400.0] {
        let s = interface_slack(&etm_a, a_out, Ps::new(wire_ps), &etm_b, b_in).unwrap();
        rows.push(vec![fmt(wire_ps, 0), fmt(s.value(), 1)]);
    }
    print_table(
        "Top-level interface slack vs wire delay (ETM budgeting)",
        &["wire (ps)", "interface slack (ps)"],
        &rows,
    );

    // Pessimism: the ETM publishes one worst requirement per input; the
    // flat view knows per-endpoint slack. Compare the spread.
    let flat = sta_b.run().expect("sta");
    let flop_slacks: Vec<f64> = flat
        .endpoints
        .iter()
        .filter(|e| matches!(e.endpoint, Endpoint::FlopD(_)))
        .map(|e| e.setup_slack.value())
        .collect();
    let worst = flop_slacks.iter().cloned().fold(f64::INFINITY, f64::min);
    let median = tc_core::stats::quantile(&flop_slacks, 0.5);
    println!(
        "\nblock_b flat endpoint slacks: worst {worst:.1} ps, median {median:.1} ps\n→ the ETM charges every top-level path the worst ({:.1} ps of hidden margin on the median path) — the cost of hierarchy.",
        median - worst
    );
}
