//! Seeded-defect acceptance suite: every rule class must fire on a
//! design broken one way at a time — and *only* the expected code may
//! fire — while the committed clean corpus and the generated benchmark
//! designs lint to zero findings.

use tc_core::ids::{CellId, NetId};
use tc_core::units::Ps;
use tc_interconnect::spef::NetParasitics;
use tc_interconnect::{parse_spef, BeolStack, WireModel};
use tc_liberty::{LibConfig, Library, PvtCorner};
use tc_lint::{decode_waivers, lint_liberty_source, lint_verilog_source, run_lint, LintContext};
use tc_netlist::gen::{generate, generate_streamed, BenchProfile};
use tc_netlist::{decode_journal, parse_verilog, Netlist, PinRef};
use tc_par::Pool;
use tc_sta::constraints::{Clock, Constraints};

fn lib() -> Library {
    Library::generate(&LibConfig::default(), &PvtCorner::typical())
}

fn corpus(rel: &str) -> String {
    let path = format!("{}/corpus/{rel}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{path}: {e}"))
}

/// Generated designs legitimately leave some gate outputs unloaded;
/// mark them as observed so "clean" means clean.
fn tie_off(nl: &mut Netlist) {
    let dangling: Vec<NetId> = nl
        .nets()
        .enumerate()
        .filter(|(_, n)| n.driver.is_some() && n.sinks.is_empty() && !n.is_output)
        .map(|(i, _)| NetId::new(i))
        .collect();
    for n in dangling {
        nl.mark_output(n);
    }
}

/// Full parasitics for every net, extracted from the annotated lengths.
fn full_spef(nl: &Netlist) -> Vec<NetParasitics> {
    let stack = BeolStack::n20();
    nl.nets()
        .map(|n| {
            let wm = WireModel::from_length(n.wire_length_um.max(1.0));
            NetParasitics::extract(n.name, &wm, &stack)
        })
        .collect()
}

/// Asserts `diags` is exactly one finding of `code`; returns its subject.
fn exactly_one(diags: &[tc_lint::Diagnostic], code: &str) -> String {
    assert_eq!(diags.len(), 1, "want exactly one {code}, got {diags:?}");
    assert_eq!(diags[0].code, code, "{diags:?}");
    diags[0].subject.clone()
}

// ---------------------------------------------------------------- clean

#[test]
fn committed_clean_corpus_lints_zero_findings() {
    let lib = lib();
    let vtext = corpus("clean/small.v");
    let nl = parse_verilog(&vtext, &lib).unwrap();
    let spef = parse_spef(&corpus("clean/small.spef"), &BeolStack::n20()).unwrap();
    let journal = decode_journal(&corpus("clean/small.tcj")).unwrap();
    let cons = Constraints::single_clock(500.0);
    let libtext = tc_liberty::write_liberty(&lib);

    let mut ctx = LintContext::new(&nl, &lib);
    ctx.verilog = Some((&vtext, "small.v"));
    ctx.constraints = Some(&cons);
    ctx.spef = Some(&spef);
    ctx.liberty = Some((&libtext, "lib.lib"));
    ctx.journal = Some(&journal);

    let diags = run_lint(&Pool::sequential(), &ctx);
    assert!(diags.is_empty(), "{diags:?}");

    // The committed waiver file decodes and is entirely stale here.
    let waivers = decode_waivers(&corpus("clean/small.tcw")).unwrap();
    let outcome = tc_lint::apply_waivers(diags, &waivers);
    assert!(outcome.active.is_empty());
    assert_eq!(outcome.unused, vec![0]);
}

#[test]
fn generated_benchmarks_lint_zero_findings() {
    let lib = lib();
    for profile in [BenchProfile::c5315(), BenchProfile::scale_50k()] {
        let name = profile.name;
        let mut nl = if name == "c5315" {
            generate(&lib, profile, 7).unwrap()
        } else {
            generate_streamed(&lib, profile, 7).unwrap()
        };
        tie_off(&mut nl);
        let spef = full_spef(&nl);
        let cons = Constraints::single_clock(500.0);
        let mut ctx = LintContext::new(&nl, &lib);
        ctx.constraints = Some(&cons);
        ctx.spef = Some(&spef);
        let diags = run_lint(&Pool::from_env(), &ctx);
        assert!(diags.is_empty(), "{name}: {diags:?}");
    }
}

// -------------------------------------------------------------- defects

#[test]
fn seeded_cycle_fires_tcl0101_naming_the_cells() {
    let lib = lib();
    let vtext = corpus("defect/cycle.v");
    let nl = parse_verilog(&vtext, &lib).unwrap();
    let cons = Constraints::single_clock(500.0);
    let mut ctx = LintContext::new(&nl, &lib);
    ctx.verilog = Some((&vtext, "cycle.v"));
    ctx.constraints = Some(&cons);
    let diags = run_lint(&Pool::sequential(), &ctx);
    exactly_one(&diags, "TCL0101");
    assert!(diags[0].message.contains("g2"), "{}", diags[0].message);
    assert!(diags[0].message.contains("g5"), "{}", diags[0].message);
}

#[test]
fn seeded_multidriver_fires_tcl0102_only() {
    let diags = lint_verilog_source(&corpus("defect/multidriver.v"), "multidriver.v");
    let subject = exactly_one(&diags, "TCL0102");
    assert_eq!(subject, "n1");
    assert!(diags[0].message.contains("g1.Y"), "{}", diags[0].message);
    assert!(diags[0].message.contains("g5.Y"), "{}", diags[0].message);
}

#[test]
fn seeded_undriven_fires_tcl0103_only() {
    let diags = lint_verilog_source(&corpus("defect/undriven.v"), "undriven.v");
    let subject = exactly_one(&diags, "TCL0103");
    assert_eq!(subject, "n1");
}

#[test]
fn seeded_dangling_net_fires_tcl0104_only() {
    let lib = lib();
    let mut nl = generate(&lib, BenchProfile::c5315(), 7).unwrap();
    tie_off(&mut nl);
    // A new inverter hanging off net 1 whose output nothing reads.
    let inv = lib.id_of("INV_X1_SVT").unwrap();
    nl.add_cell("u_dangle", &lib, inv, &[NetId::new(1)])
        .unwrap();
    let cons = Constraints::single_clock(500.0);
    let mut ctx = LintContext::new(&nl, &lib);
    ctx.constraints = Some(&cons);
    let diags = run_lint(&Pool::sequential(), &ctx);
    exactly_one(&diags, "TCL0104");
}

#[test]
fn seeded_no_clocks_fires_tcl0201_only() {
    let lib = lib();
    let mut nl = generate(&lib, BenchProfile::c5315(), 7).unwrap();
    tie_off(&mut nl);
    let mut cons = Constraints::single_clock(500.0);
    cons.clocks.clear();
    let mut ctx = LintContext::new(&nl, &lib);
    ctx.constraints = Some(&cons);
    let diags = run_lint(&Pool::sequential(), &ctx);
    exactly_one(&diags, "TCL0201");
}

#[test]
fn seeded_ghost_clock_fires_tcl0202_only() {
    let lib = lib();
    let mut nl = generate(&lib, BenchProfile::c5315(), 7).unwrap();
    tie_off(&mut nl);
    let mut cons = Constraints::single_clock(500.0);
    cons.clocks = vec![Clock::new("clk_missing", Ps::new(500.0))];
    let mut ctx = LintContext::new(&nl, &lib);
    ctx.constraints = Some(&cons);
    let diags = run_lint(&Pool::sequential(), &ctx);
    let subject = exactly_one(&diags, "TCL0202");
    assert_eq!(subject, "clk_missing");
}

#[test]
fn seeded_unclocked_register_fires_tcl0203_only() {
    let lib = lib();
    let mut nl = generate(&lib, BenchProfile::c5315(), 7).unwrap();
    tie_off(&mut nl);
    // Re-home one flop's CK pin (pin 1: D, CK) onto a net no clock
    // reaches: a fresh primary input.
    let aux = nl.add_input("aux_not_a_clock");
    let flop = nl
        .cells()
        .enumerate()
        .find(|(_, c)| lib.cell(c.master).kind == tc_liberty::CellKind::Flop)
        .map(|(i, _)| CellId::new(i))
        .unwrap();
    nl.rewire_input(PinRef { cell: flop, pin: 1 }, aux);
    let cons = Constraints::single_clock(500.0);
    let mut ctx = LintContext::new(&nl, &lib);
    ctx.constraints = Some(&cons);
    let diags = run_lint(&Pool::sequential(), &ctx);
    let subject = exactly_one(&diags, "TCL0203");
    assert_eq!(subject, nl.cell(flop).name);
}

#[test]
fn seeded_dead_exception_fires_tcl0204_only() {
    let lib = lib();
    let mut nl = generate(&lib, BenchProfile::c5315(), 7).unwrap();
    tie_off(&mut nl);
    let mut cons = Constraints::single_clock(500.0);
    // A comb cell is not a valid endpoint; a beyond-range id is dead.
    let comb = nl
        .cells()
        .enumerate()
        .find(|(_, c)| lib.cell(c.master).kind == tc_liberty::CellKind::Comb)
        .map(|(i, _)| CellId::new(i))
        .unwrap();
    cons.exceptions.false_path_endpoints.insert(comb);
    cons.exceptions
        .multicycle_endpoints
        .insert(CellId::new(nl.cell_count() + 5), 2);
    let mut ctx = LintContext::new(&nl, &lib);
    ctx.constraints = Some(&cons);
    let diags = run_lint(&Pool::sequential(), &ctx);
    assert_eq!(diags.len(), 2, "{diags:?}");
    assert!(diags.iter().all(|d| d.code == "TCL0204"), "{diags:?}");
}

#[test]
fn seeded_stale_spef_fires_tcl0301_only() {
    let lib = lib();
    let vtext = corpus("clean/small.v");
    let nl = parse_verilog(&vtext, &lib).unwrap();
    let mut spef = parse_spef(&corpus("clean/small.spef"), &BeolStack::n20()).unwrap();
    spef.extend(parse_spef(&corpus("defect/stale.spef"), &BeolStack::n20()).unwrap());
    let cons = Constraints::single_clock(500.0);
    let mut ctx = LintContext::new(&nl, &lib);
    ctx.constraints = Some(&cons);
    ctx.spef = Some(&spef);
    let diags = run_lint(&Pool::sequential(), &ctx);
    let subject = exactly_one(&diags, "TCL0301");
    assert_eq!(subject, "ghost_net");
}

#[test]
fn seeded_missing_annotation_fires_tcl0302_only() {
    let lib = lib();
    let vtext = corpus("clean/small.v");
    let nl = parse_verilog(&vtext, &lib).unwrap();
    let mut spef = parse_spef(&corpus("clean/small.spef"), &BeolStack::n20()).unwrap();
    let dropped = spef.iter().position(|p| p.name == "r1_out").unwrap();
    spef.remove(dropped);
    let cons = Constraints::single_clock(500.0);
    let mut ctx = LintContext::new(&nl, &lib);
    ctx.constraints = Some(&cons);
    ctx.spef = Some(&spef);
    let diags = run_lint(&Pool::sequential(), &ctx);
    let subject = exactly_one(&diags, "TCL0302");
    assert_eq!(subject, "r1_out");
}

#[test]
fn seeded_bad_axis_fires_tcl0401_only() {
    let diags = lint_liberty_source(&corpus("defect/badaxis.lib"), "badaxis.lib");
    let subject = exactly_one(&diags, "TCL0401");
    assert_eq!(subject, "INV_X1_SVT:A:cell_rise");
}

#[test]
fn seeded_nonmonotone_table_fires_tcl0402_only() {
    let diags = lint_liberty_source(&corpus("defect/nonmono.lib"), "nonmono.lib");
    let subject = exactly_one(&diags, "TCL0402");
    assert_eq!(subject, "INV_X1_SVT:A:cell_rise");
}

#[test]
fn seeded_dead_journal_ref_fires_tcl0501_only() {
    let lib = lib();
    let vtext = corpus("clean/small.v");
    let nl = parse_verilog(&vtext, &lib).unwrap();
    let journal = decode_journal(&corpus("defect/deadref.tcj")).unwrap();
    let cons = Constraints::single_clock(500.0);
    let mut ctx = LintContext::new(&nl, &lib);
    ctx.constraints = Some(&cons);
    ctx.journal = Some(&journal);
    let diags = run_lint(&Pool::sequential(), &ctx);
    exactly_one(&diags, "TCL0501");
    assert!(diags[0].message.contains("999999"), "{}", diags[0].message);
}

// ------------------------------------------------------ scale telemetry

#[test]
fn scale_50k_lints_in_one_streaming_sweep_with_telemetry() {
    tc_obs::enable();
    let lib = lib();
    let mut nl = generate_streamed(&lib, BenchProfile::scale_50k(), 7).unwrap();
    tie_off(&mut nl);
    let spef = full_spef(&nl);
    let cons = Constraints::single_clock(500.0);
    let mut ctx = LintContext::new(&nl, &lib);
    ctx.constraints = Some(&cons);
    ctx.spef = Some(&spef);
    let diags = run_lint(&Pool::from_env(), &ctx);
    assert!(diags.is_empty(), "{diags:?}");
    let snap = tc_obs::snapshot();
    assert!(snap.span("lint.run").is_some());
}
