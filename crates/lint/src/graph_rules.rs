//! Graph passes over the built netlist: cycles, dangling nets, clock
//! and constraint coverage, SPEF cross-checks, journal liveness.
//!
//! Every pass is O(cells + nets + sinks) with dense id-indexed scratch —
//! no hash containers on the walk, no per-object strings except on an
//! actual finding — so the 50k/200k scale rungs lint in one streaming
//! sweep with bounded overhead.

use tc_interconnect::spef::NetParasitics;
use tc_liberty::{CellKind, Library};
use tc_netlist::{combinational_sccs, describe_scc, JournalCmd, Netlist};
use tc_sta::constraints::Constraints;

use tc_core::ids::{CellId, NetId};

use crate::diag::{finding, Diagnostic};

/// Source label graph findings carry (there is no text position; the
/// subject names the object).
const NETLIST_SRC: &str = "netlist";

/// `TCL0101`: one finding per combinational SCC, naming its cells.
/// Shares [`combinational_sccs`] with `levelize`'s failure path, so the
/// lint report and the levelization error always agree.
pub fn check_cycles(nl: &Netlist, lib: &Library) -> Vec<Diagnostic> {
    combinational_sccs(nl, lib)
        .iter()
        .map(|comp| {
            finding(
                "TCL0101",
                nl.cell(comp[0]).name,
                format!("combinational cycle through {}", describe_scc(nl, comp)),
                NETLIST_SRC,
                None,
            )
        })
        .collect()
}

/// `TCL0104`: driven nets with no sinks that are not primary outputs.
/// Unused primary inputs are deliberately exempt — spare pins are
/// legitimate; a cell burning area and leakage into nothing is not.
pub fn check_dangling(nl: &Netlist) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for net in nl.nets() {
        if net.driver.is_some() && net.sinks.is_empty() && !net.is_output {
            out.push(finding(
                "TCL0104",
                net.name,
                "driven net has no sinks and is not a primary output",
                NETLIST_SRC,
                None,
            ));
        }
    }
    out
}

/// `TCL0201`/`TCL0202`/`TCL0203`/`TCL0204`: constraint coverage.
///
/// * no clocks at all → one `TCL0201` for the design (every register
///   and output endpoint is unconstrained);
/// * a clock whose name matches no primary-input net → `TCL0202`;
/// * with at least one resolved clock: every flop whose CK net is not
///   forward-reachable from a clock source through combinational cells
///   → `TCL0203`;
/// * timing exceptions referencing out-of-range or non-register cells
///   → `TCL0204`.
pub fn check_constraints(nl: &Netlist, lib: &Library, cons: &Constraints) -> Vec<Diagnostic> {
    let mut out = Vec::new();

    let flop_count = nl
        .cells()
        .filter(|c| lib.cell(c.master).kind == CellKind::Flop)
        .count();

    if cons.clocks.is_empty() {
        let endpoints = flop_count + nl.primary_outputs().count();
        out.push(finding(
            "TCL0201",
            nl.name.as_str(),
            format!("no clocks defined: all {endpoints} endpoints are unconstrained"),
            "constraints",
            None,
        ));
        return out;
    }

    // Clock roots: primary-input nets whose name matches a clock.
    let mut roots: Vec<NetId> = Vec::new();
    for clock in &cons.clocks {
        match nl
            .primary_inputs()
            .iter()
            .find(|&&n| nl.net(n).name == clock.name)
        {
            Some(&n) => roots.push(n),
            None => out.push(finding(
                "TCL0202",
                clock.name.as_str(),
                "clock has no matching primary-input net in the design",
                "constraints",
                None,
            )),
        }
    }

    // Forward reachability from the clock roots: combinational cells
    // propagate the clock (buffers/inverters of a clock tree); flops
    // consume it. Dense mark vector + explicit worklist.
    if !roots.is_empty() {
        let mut reach = vec![false; nl.net_count()];
        let mut work: Vec<NetId> = Vec::new();
        for &r in &roots {
            if !reach[r.index()] {
                reach[r.index()] = true;
                work.push(r);
            }
        }
        while let Some(n) = work.pop() {
            for sink in nl.net(n).sinks {
                let cell = nl.cell(sink.cell);
                if lib.cell(cell.master).kind == CellKind::Flop {
                    continue;
                }
                let o = cell.output;
                if !reach[o.index()] {
                    reach[o.index()] = true;
                    work.push(o);
                }
            }
        }
        for cell in nl.cells() {
            let master = lib.cell(cell.master);
            if master.kind != CellKind::Flop {
                continue;
            }
            let Some(ck_pin) = master.input_pins().iter().position(|&p| p == "CK") else {
                continue;
            };
            let ck_net = cell.inputs[ck_pin];
            if !reach[ck_net.index()] {
                out.push(finding(
                    "TCL0203",
                    cell.name,
                    format!(
                        "register clock pin is driven by {}, which no defined clock reaches",
                        nl.net(ck_net).name
                    ),
                    NETLIST_SRC,
                    None,
                ));
            }
        }
    }

    // Exception liveness. HashSet/HashMap iteration order is not
    // deterministic; collect ids and sort before reporting.
    let mut refs: Vec<(CellId, &'static str)> = Vec::new();
    for &c in &cons.exceptions.false_path_endpoints {
        refs.push((c, "false_path"));
    }
    for &c in cons.exceptions.multicycle_endpoints.keys() {
        refs.push((c, "multicycle"));
    }
    refs.sort_by_key(|&(c, _)| c.index());
    for (c, what) in refs {
        let dead = if c.index() >= nl.cell_count() {
            Some(format!(
                "{what} exception references cell #{} of {}",
                c.index(),
                nl.cell_count()
            ))
        } else if lib.cell(nl.cell(c).master).kind != CellKind::Flop {
            Some(format!(
                "{what} exception endpoint {} is not a register",
                nl.cell(c).name
            ))
        } else {
            None
        };
        if let Some(message) = dead {
            let subject = if c.index() < nl.cell_count() {
                nl.cell(c).name.to_string()
            } else {
                format!("cell#{}", c.index())
            };
            out.push(finding("TCL0204", subject, message, "constraints", None));
        }
    }
    out
}

/// `TCL0301`/`TCL0302`: SPEF ↔ netlist connectivity cross-check.
///
/// Every annotated net must exist in the netlist (`TCL0301`, error: the
/// parasitics belong to a different design revision) and every netlist
/// net should be annotated (`TCL0302`, warning: incomplete extraction —
/// those nets silently fall back to estimated parasitics). Name lookup
/// is a sorted-slice binary search: O((N+S)·log N) with no hash tables.
pub fn check_spef(nl: &Netlist, spef: &[NetParasitics]) -> Vec<Diagnostic> {
    let mut names: Vec<(&str, usize)> = nl.nets().enumerate().map(|(i, n)| (n.name, i)).collect();
    names.sort_unstable();

    let mut covered = vec![false; nl.net_count()];
    let mut out = Vec::new();
    for p in spef {
        match names.binary_search_by(|&(n, _)| n.cmp(p.name.as_str())) {
            Ok(pos) => covered[names[pos].1] = true,
            Err(_) => out.push(finding(
                "TCL0301",
                p.name.as_str(),
                "SPEF annotates a net that does not exist in the netlist",
                "spef",
                None,
            )),
        }
    }
    for (i, net) in nl.nets().enumerate() {
        if !covered[i] {
            out.push(finding(
                "TCL0302",
                net.name,
                "net has no SPEF annotation (falls back to estimated parasitics)",
                "spef",
                None,
            ));
        }
    }
    out
}

/// `TCL0501`: ECO-journal reference liveness, checked *without*
/// replaying the journal. Positions use the journal entry index (the
/// `entry N` convention the journal decoder itself reports).
pub fn check_journal(nl: &Netlist, lib: &Library, cmds: &[JournalCmd]) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let mut bad = |entry: usize, message: String| {
        out.push(finding(
            "TCL0501",
            format!("entry {entry}"),
            message,
            "journal",
            Some(entry),
        ));
    };
    let cell_ok = |c: usize| c < nl.cell_count();
    let net_ok = |n: usize| n < nl.net_count();
    for (i, cmd) in cmds.iter().enumerate() {
        match cmd {
            JournalCmd::Swap { cell, new_master } => {
                if !cell_ok(*cell) {
                    bad(i, format!("SWAP references dead cell #{cell}"));
                } else if lib.id_of(new_master).is_none() {
                    bad(i, format!("SWAP references unknown master {new_master}"));
                }
            }
            JournalCmd::SetWireLength { net, .. } => {
                if !net_ok(*net) {
                    bad(i, format!("WIRELEN references dead net #{net}"));
                }
            }
            JournalCmd::SetRouteClass { net, .. } => {
                if !net_ok(*net) {
                    bad(i, format!("ROUTE references dead net #{net}"));
                }
            }
            JournalCmd::InsertBuffer {
                src_net,
                master,
                sinks,
            } => {
                if !net_ok(*src_net) {
                    bad(i, format!("BUF references dead net #{src_net}"));
                } else if lib.id_of(master).is_none() {
                    bad(i, format!("BUF references unknown master {master}"));
                } else {
                    for &(c, p) in sinks {
                        if !cell_ok(c) {
                            bad(i, format!("BUF sink references dead cell #{c}"));
                        } else if p >= nl.cell(CellId::new(c)).inputs.len() {
                            bad(i, format!("BUF sink pin {p} out of range for cell #{c}"));
                        }
                    }
                }
            }
            JournalCmd::Rewire { cell, pin, net } => {
                if !cell_ok(*cell) {
                    bad(i, format!("REWIRE references dead cell #{cell}"));
                } else if !net_ok(*net) {
                    bad(i, format!("REWIRE references dead net #{net}"));
                } else if *pin >= nl.cell(CellId::new(*cell)).inputs.len() {
                    bad(i, format!("REWIRE pin {pin} out of range"));
                }
            }
        }
    }
    out
}
