//! Site/row placement model.

use tc_core::ids::CellId;
use tc_core::rng::Rng;
use tc_core::units::Um;
use tc_liberty::Library;
use tc_netlist::Netlist;

/// Width of one placement site, µm.
pub const SITE_UM: f64 = 0.2;
/// Row height, µm.
pub const ROW_UM: f64 = 1.2;

/// One placed cell.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PlacedCell {
    /// The netlist instance.
    pub cell: CellId,
    /// Left edge, in sites from the row origin.
    pub x_site: usize,
    /// Width in sites.
    pub width_sites: usize,
}

/// A row-based placement of a netlist.
#[derive(Clone, Debug, PartialEq)]
pub struct Placement {
    rows: Vec<Vec<PlacedCell>>,
    /// Row index of each cell.
    row_of: Vec<usize>,
}

impl Placement {
    /// Fills rows of `row_sites` capacity with the netlist's cells in a
    /// seeded random order, abutting cells left to right (100% island
    /// adjacency — the worst case for MinIA).
    pub fn row_fill(nl: &Netlist, lib: &Library, row_sites: usize, seed: u64) -> Placement {
        let mut order: Vec<usize> = (0..nl.cell_count()).collect();
        let mut rng = Rng::seed_from(seed ^ 0x70_6c61_6365);
        rng.shuffle(&mut order);

        let mut rows: Vec<Vec<PlacedCell>> = vec![Vec::new()];
        let mut row_of = vec![0usize; nl.cell_count()];
        let mut x = 0usize;
        for idx in order {
            let cell = CellId::new(idx);
            let w = lib.cell(nl.cell(cell).master).area_sites.ceil().max(1.0) as usize;
            if x + w > row_sites && x > 0 {
                rows.push(Vec::new());
                x = 0;
            }
            let row = rows.len() - 1;
            rows.last_mut().expect("at least one row").push(PlacedCell {
                cell,
                x_site: x,
                width_sites: w,
            });
            row_of[idx] = row;
            x += w;
        }
        Placement { rows, row_of }
    }

    /// Number of rows.
    pub fn row_count(&self) -> usize {
        self.rows.len()
    }

    /// Cells of one row, left to right.
    pub fn row(&self, r: usize) -> &[PlacedCell] {
        &self.rows[r]
    }

    /// `(x, y)` position of a cell's left edge in µm.
    pub fn position(&self, cell: CellId) -> (Um, Um) {
        let r = self.row_of[cell.index()];
        let p = self.rows[r]
            .iter()
            .find(|p| p.cell == cell)
            .expect("cell is placed");
        (
            Um::new(p.x_site as f64 * SITE_UM),
            Um::new(r as f64 * ROW_UM),
        )
    }

    /// Half-perimeter of the bounding box of a set of cells, µm — the
    /// standard wirelength estimate.
    pub fn hpwl(&self, cells: &[CellId]) -> Um {
        if cells.is_empty() {
            return Um::ZERO;
        }
        let mut min_x = f64::INFINITY;
        let mut max_x = f64::NEG_INFINITY;
        let mut min_y = f64::INFINITY;
        let mut max_y = f64::NEG_INFINITY;
        for &c in cells {
            let (x, y) = self.position(c);
            min_x = min_x.min(x.value());
            max_x = max_x.max(x.value());
            min_y = min_y.min(y.value());
            max_y = max_y.max(y.value());
        }
        Um::new((max_x - min_x) + (max_y - min_y))
    }

    /// Swaps two same-row cells' slots (used by the MinIA fixer); both
    /// keep their widths, positions are exchanged and the row re-sorted.
    /// Returns `false` if the widths differ (swap would overlap).
    pub(crate) fn swap_in_row(&mut self, row: usize, i: usize, j: usize) -> bool {
        if self.rows[row][i].width_sites != self.rows[row][j].width_sites {
            return false;
        }
        let (ci, cj) = (self.rows[row][i].cell, self.rows[row][j].cell);
        self.rows[row][i].cell = cj;
        self.rows[row][j].cell = ci;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tc_liberty::{LibConfig, PvtCorner};
    use tc_netlist::gen::{generate, BenchProfile};

    fn setup() -> (Library, Netlist) {
        let lib = Library::generate(&LibConfig::default(), &PvtCorner::typical());
        let nl = generate(&lib, BenchProfile::tiny(), 3).unwrap();
        (lib, nl)
    }

    #[test]
    fn all_cells_are_placed_without_overlap() {
        let (lib, nl) = setup();
        let pl = Placement::row_fill(&nl, &lib, 64, 1);
        let total: usize = (0..pl.row_count()).map(|r| pl.row(r).len()).sum();
        assert_eq!(total, nl.cell_count());
        for r in 0..pl.row_count() {
            let row = pl.row(r);
            for w in row.windows(2) {
                assert!(
                    w[0].x_site + w[0].width_sites <= w[1].x_site,
                    "overlap in row {r}"
                );
            }
        }
    }

    #[test]
    fn placement_is_deterministic_per_seed() {
        let (lib, nl) = setup();
        let a = Placement::row_fill(&nl, &lib, 64, 1);
        let b = Placement::row_fill(&nl, &lib, 64, 1);
        assert_eq!(a, b);
        let c = Placement::row_fill(&nl, &lib, 64, 2);
        assert_ne!(a, c);
    }

    #[test]
    fn positions_and_hpwl() {
        let (lib, nl) = setup();
        let pl = Placement::row_fill(&nl, &lib, 64, 1);
        let c0 = CellId::new(0);
        let c1 = CellId::new(1);
        let (x, y) = pl.position(c0);
        assert!(x.value() >= 0.0 && y.value() >= 0.0);
        let w = pl.hpwl(&[c0, c1]);
        assert!(w.value() >= 0.0);
        assert_eq!(pl.hpwl(&[c0]), Um::ZERO);
    }

    #[test]
    fn same_width_swap_works() {
        let (lib, nl) = setup();
        let mut pl = Placement::row_fill(&nl, &lib, 64, 1);
        // Find a row with two same-width cells.
        'outer: for r in 0..pl.row_count() {
            let row = pl.row(r).to_vec();
            for i in 0..row.len() {
                for j in i + 1..row.len() {
                    if row[i].width_sites == row[j].width_sites {
                        let (a, b) = (row[i].cell, row[j].cell);
                        assert!(pl.swap_in_row(r, i, j));
                        assert_eq!(pl.row(r)[i].cell, b);
                        assert_eq!(pl.row(r)[j].cell, a);
                        break 'outer;
                    }
                }
            }
        }
    }
}
