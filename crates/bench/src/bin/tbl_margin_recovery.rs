//! §3.4 / ref \[23\] — margin recovery with flexible flip-flop timing:
//! sequential optimization over the setup–hold–c2q surface on a
//! population of flop boundaries. The paper reports worst-slack gains up
//! to ~130 ps at 65 nm.

use tc_bench::{fmt, print_table};
use tc_core::rng::Rng;
use tc_core::units::Ps;
use tc_liberty::InterdepModel;
use tc_signoff::margin_recovery::{recover_margin, FlopBoundary};

fn main() {
    let mut rng = Rng::seed_from(2015);
    // A population of boundaries: incoming slacks with a violating tail,
    // outgoing slacks mostly comfortable (the unbalance recovery needs).
    let boundaries: Vec<FlopBoundary> = (0..200)
        .map(|i| {
            let slack_in = rng.normal(40.0, 60.0) - 30.0;
            let slack_out = rng.normal(120.0, 80.0).max(-40.0);
            let mut interdep = InterdepModel::typical_65nm();
            interdep.tau_s = rng.uniform_in(10.0, 30.0);
            FlopBoundary {
                name: format!("ff{i}"),
                slack_in: Ps::new(slack_in),
                slack_out: Ps::new(slack_out),
                interdep,
                char_pushout: 1.10,
            }
        })
        .collect();

    let result = recover_margin(&boundaries);
    println!(
        "boundaries: {} | WNS before: {:.1} ps | WNS after: {:.1} ps | gain: {:.1} ps",
        boundaries.len(),
        result.wns_before.value(),
        result.wns_after.value(),
        result.gain().value()
    );

    // Top recoveries.
    let mut idx: Vec<usize> = (0..result.boundaries.len()).collect();
    idx.sort_by(|&a, &b| {
        let ga = result.boundaries[a].after - result.boundaries[a].before;
        let gb = result.boundaries[b].after - result.boundaries[b].before;
        gb.value().total_cmp(&ga.value())
    });
    let rows: Vec<Vec<String>> = idx
        .iter()
        .take(10)
        .map(|&i| {
            let b = &result.boundaries[i];
            vec![
                boundaries[i].name.clone(),
                fmt(b.before.value(), 1),
                fmt(b.after.value(), 1),
                fmt(b.setup_credit.value(), 1),
                fmt(b.c2q_cost.value(), 1),
            ]
        })
        .collect();
    print_table(
        "Top boundary recoveries",
        &[
            "flop",
            "min slack before",
            "after",
            "setup credit",
            "c2q cost",
        ],
        &rows,
    );

    let improved = result
        .boundaries
        .iter()
        .filter(|b| b.after > b.before)
        .count();
    println!("\nboundaries improved: {improved}/{}", boundaries.len());
    println!("(paper scale: up to ~130 ps worst-slack gain at 65 nm)");
}
