//! Closed-form NLDM table generation.
//!
//! Cell delay is modeled in logical-effort style on top of the
//! `tc-device` drive model:
//!
//! ```text
//! delay(slew, load) = ln2 · R(corner, vt) / drive · (load + C_par)
//!                     + k_slew · slew + d0
//! ```
//!
//! where `R` is the effective switching resistance of a unit device at the
//! corner's (process, V, T) — so voltage scaling, temperature inversion
//! and process corners all flow through one model — and the logical-effort
//! parameters (`g`, `p`) capture gate topology. Output slew is modeled as
//! `2.2·R/drive·(load + C_par)/0.8 · k + k2·slew`.

use tc_core::error::{Error, Result};
use tc_core::lut::Lut2;
use tc_core::units::{Ff, Kohm};
use tc_device::{MosDevice, MosKind, Technology, VtClass};

use crate::corner::PvtCorner;

/// Default NLDM slew axis (ps).
pub const SLEW_AXIS: [f64; 7] = [5.0, 10.0, 20.0, 40.0, 80.0, 160.0, 320.0];
/// Default NLDM load axis (fF).
pub const LOAD_AXIS: [f64; 7] = [0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0];

/// Logical-effort style template parameters for one cell topology.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CellTemplate {
    /// Template name ("INV", "NAND2", …).
    pub name: &'static str,
    /// Logical effort g: input capacitance multiplier relative to an
    /// inverter of equal drive.
    pub logical_effort: f64,
    /// Parasitic delay multiplier p (self-loading).
    pub parasitic: f64,
    /// Number of inputs.
    pub inputs: usize,
    /// Area of the X1 variant in placement sites.
    pub area_sites: f64,
    /// Total device width of the X1 variant in µm (leakage/power basis).
    pub unit_width_um: f64,
}

impl CellTemplate {
    /// The combinational templates of the synthetic library.
    pub const COMB: [CellTemplate; 6] = [
        CellTemplate {
            name: "INV",
            logical_effort: 1.0,
            parasitic: 1.0,
            inputs: 1,
            area_sites: 2.0,
            unit_width_um: 2.8,
        },
        CellTemplate {
            name: "BUF",
            logical_effort: 1.0,
            parasitic: 2.0,
            inputs: 1,
            area_sites: 3.0,
            unit_width_um: 4.2,
        },
        CellTemplate {
            name: "NAND2",
            logical_effort: 4.0 / 3.0,
            parasitic: 2.0,
            inputs: 2,
            area_sites: 3.0,
            unit_width_um: 5.2,
        },
        CellTemplate {
            name: "NOR2",
            logical_effort: 5.0 / 3.0,
            parasitic: 2.0,
            inputs: 2,
            area_sites: 3.0,
            unit_width_um: 6.4,
        },
        CellTemplate {
            name: "AOI21",
            logical_effort: 1.7,
            parasitic: 2.6,
            inputs: 3,
            area_sites: 4.0,
            unit_width_um: 7.6,
        },
        CellTemplate {
            name: "XOR2",
            logical_effort: 2.0,
            parasitic: 3.0,
            inputs: 2,
            area_sites: 6.0,
            unit_width_um: 9.5,
        },
    ];

    /// The flip-flop template.
    pub const DFF: CellTemplate = CellTemplate {
        name: "DFF",
        logical_effort: 1.4,
        parasitic: 3.0,
        inputs: 2, // D and CK
        area_sites: 8.0,
        unit_width_um: 14.0,
    };

    /// Looks a template up by name.
    pub fn by_name(name: &str) -> Option<&'static CellTemplate> {
        if name == "DFF" {
            return Some(&CellTemplate::DFF);
        }
        CellTemplate::COMB.iter().find(|t| t.name == name)
    }
}

/// The per-(corner, vt, drive) delay coefficients.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DriveModel {
    /// Effective switching resistance, kΩ.
    pub resistance: Kohm,
    /// Output parasitic capacitance, fF.
    pub c_par: Ff,
    /// Input capacitance per input pin, fF.
    pub c_in: Ff,
    /// Intrinsic (zero-load, zero-slew) delay, ps.
    pub intrinsic: f64,
    /// Sensitivity of delay to input slew (ps per ps).
    pub slew_coeff: f64,
}

/// Builds the drive model for one cell variant at one corner.
pub fn drive_model(
    tech: &Technology,
    template: &CellTemplate,
    vt: VtClass,
    drive: f64,
    corner: &PvtCorner,
) -> DriveModel {
    let dev = MosDevice::new(MosKind::Nmos, vt, 1.0);
    let r_unit = dev.eff_resistance(tech, corner.voltage, corner.temperature);
    let r = Kohm::new(r_unit.value() * corner.process.drive_factor() / drive);
    // Unit inverter input cap ≈ (wn + wp)·cg = 2.8·cg; scale by g & drive.
    let cin_unit = 2.8 * tech.cgate_per_um;
    let c_in = Ff::new(cin_unit * template.logical_effort * drive);
    let c_par = Ff::new(
        0.5 * cin_unit * template.parasitic * drive * tech.cdiff_per_um / tech.cgate_per_um,
    );
    DriveModel {
        resistance: r,
        c_par,
        c_in,
        // Intrinsic delay and slew sensitivity track the drive resistance
        // so process/V/T corners scale the whole arc, not just its
        // load-dependent part.
        intrinsic: 0.4 + 0.3 * template.parasitic * r.value(),
        slew_coeff: 0.055 * r.value(),
    }
}

impl DriveModel {
    /// Closed-form arc delay at one (slew, load) point, ps.
    pub fn delay_at(&self, slew_ps: f64, load_ff: f64) -> f64 {
        let rc = self.resistance.value() * (load_ff + self.c_par.value());
        self.intrinsic + std::f64::consts::LN_2 * rc + self.slew_coeff * slew_ps
    }

    /// Closed-form output slew at one (slew, load) point, ps.
    pub fn slew_at(&self, slew_ps: f64, load_ff: f64) -> f64 {
        let rc = self.resistance.value() * (load_ff + self.c_par.value());
        2.2 * rc / 0.8 * 0.9 + 0.10 * slew_ps + 2.0
    }

    /// Samples the delay model onto the default NLDM grid.
    ///
    /// # Errors
    ///
    /// Propagates table-construction failures (invalid axes) with the
    /// grid named — callers characterizing thousands of arcs need to
    /// know *which* table was rejected, not a panic.
    pub fn delay_table(&self) -> Result<Lut2> {
        Lut2::from_fn(SLEW_AXIS.to_vec(), LOAD_AXIS.to_vec(), |s, l| {
            self.delay_at(s, l)
        })
        .map_err(|e| Error::internal(format!("NLDM delay grid: {e}")))
    }

    /// Samples the output-slew model onto the default NLDM grid.
    ///
    /// # Errors
    ///
    /// Propagates table-construction failures (invalid axes) with the
    /// grid named.
    pub fn slew_table(&self) -> Result<Lut2> {
        Lut2::from_fn(SLEW_AXIS.to_vec(), LOAD_AXIS.to_vec(), |s, l| {
            self.slew_at(s, l)
        })
        .map_err(|e| Error::internal(format!("NLDM slew grid: {e}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model(vt: VtClass, drive: f64, corner: &PvtCorner) -> DriveModel {
        let tech = Technology::planar_28nm();
        drive_model(&tech, &CellTemplate::COMB[0], vt, drive, corner)
    }

    #[test]
    fn delay_scales_down_with_drive() {
        let c = PvtCorner::typical();
        let x1 = model(VtClass::Svt, 1.0, &c);
        let x4 = model(VtClass::Svt, 4.0, &c);
        // At a fixed external load the X4 is faster…
        assert!(x4.delay_at(20.0, 8.0) < x1.delay_at(20.0, 8.0));
        // …but presents 4× the input cap.
        assert!((x4.c_in.value() / x1.c_in.value() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn vt_ladder_orders_delay() {
        let c = PvtCorner::typical();
        let d_ulvt = model(VtClass::Ulvt, 1.0, &c).delay_at(20.0, 4.0);
        let d_svt = model(VtClass::Svt, 1.0, &c).delay_at(20.0, 4.0);
        let d_hvt = model(VtClass::Hvt, 1.0, &c).delay_at(20.0, 4.0);
        assert!(d_ulvt < d_svt && d_svt < d_hvt);
    }

    #[test]
    fn slow_corner_slows_tables() {
        let typ = model(VtClass::Svt, 1.0, &PvtCorner::typical());
        let slow = model(VtClass::Svt, 1.0, &PvtCorner::slow_cold());
        assert!(slow.delay_at(20.0, 4.0) > 1.2 * typ.delay_at(20.0, 4.0));
    }

    #[test]
    fn nand_has_higher_input_cap_than_inv() {
        let tech = Technology::planar_28nm();
        let c = PvtCorner::typical();
        let inv = drive_model(
            &tech,
            CellTemplate::by_name("INV").unwrap(),
            VtClass::Svt,
            1.0,
            &c,
        );
        let nand = drive_model(
            &tech,
            CellTemplate::by_name("NAND2").unwrap(),
            VtClass::Svt,
            1.0,
            &c,
        );
        assert!(nand.c_in > inv.c_in);
    }

    #[test]
    fn tables_are_monotone() {
        let m = model(VtClass::Svt, 2.0, &PvtCorner::typical());
        let d = m.delay_table().unwrap();
        assert!(d.eval(20.0, 16.0) > d.eval(20.0, 1.0));
        assert!(d.eval(160.0, 4.0) > d.eval(10.0, 4.0));
        let s = m.slew_table().unwrap();
        assert!(s.eval(20.0, 16.0) > s.eval(20.0, 1.0));
    }

    #[test]
    fn template_lookup() {
        assert_eq!(CellTemplate::by_name("NOR2").unwrap().inputs, 2);
        assert_eq!(CellTemplate::by_name("DFF").unwrap().name, "DFF");
        assert!(CellTemplate::by_name("MUX8").is_none());
    }
}

#[cfg(test)]
mod proptests {
    //! Randomized invariants (formerly proptest; now driven by the
    //! in-tree deterministic RNG so offline builds need no external
    //! dependencies).

    use super::*;
    use crate::corner::ProcessCorner;
    use tc_core::rng::Rng;
    use tc_core::units::{Celsius, Volt};

    #[test]
    fn delay_monotone_in_load_and_slew_everywhere() {
        let tech = Technology::planar_28nm();
        let mut rng = Rng::seed_from(0x11d1);
        for _ in 0..64 {
            let corner = PvtCorner {
                process: ProcessCorner::Tt,
                voltage: Volt::new(rng.uniform_in(0.6, 1.2)),
                temperature: Celsius::new(rng.uniform_in(-40.0, 125.0)),
            };
            let m = drive_model(
                &tech,
                &CellTemplate::COMB[rng.below(6)],
                VtClass::ALL[rng.below(4)],
                rng.uniform_in(1.0, 8.0),
                &corner,
            );
            let slew = rng.uniform_in(5.0, 300.0);
            let load = rng.uniform_in(0.5, 30.0);
            assert!(m.delay_at(slew, load) > 0.0);
            assert!(m.delay_at(slew, load + 1.0) > m.delay_at(slew, load));
            assert!(m.delay_at(slew + 10.0, load) > m.delay_at(slew, load));
            assert!(m.slew_at(slew, load + 1.0) > m.slew_at(slew, load));
        }
    }

    #[test]
    fn upsizing_never_slows_a_cell() {
        let tech = Technology::planar_28nm();
        let corner = PvtCorner::typical();
        let tmpl = &CellTemplate::COMB[0];
        let mut rng = Rng::seed_from(0x512e);
        for _ in 0..64 {
            let vt = VtClass::ALL[rng.below(4)];
            let drive = rng.uniform_in(1.0, 4.0);
            let slew = rng.uniform_in(5.0, 200.0);
            let load = rng.uniform_in(1.0, 30.0);
            let small = drive_model(&tech, tmpl, vt, drive, &corner);
            let big = drive_model(&tech, tmpl, vt, drive * 2.0, &corner);
            assert!(big.delay_at(slew, load) < small.delay_at(slew, load));
        }
    }
}
