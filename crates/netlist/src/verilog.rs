//! Structural-Verilog export and import.
//!
//! The gate-level netlist is the handoff artifact between synthesis and
//! physical design; this module writes a netlist as a flat structural
//! Verilog module (instances of library masters with named port
//! connections) and parses that subset back, so designs can be stored,
//! diffed, or exchanged with other tools.
//!
//! Subset: one `module` with `input`/`output`/`wire` declarations and
//! instantiations of the form `MASTER name (.A(net), .B(net), .Y(net));`.
//!
//! Import is streaming: [`parse_verilog_from`] consumes any [`BufRead`]
//! one statement at a time, so a million-cell netlist file is never
//! materialized in memory — only the netlist being built grows with the
//! design. [`parse_verilog`] wraps it for in-memory strings.

use std::collections::HashMap;
use std::fmt::Write as _;
use std::io::BufRead;

use tc_core::error::{Error, Result};
use tc_core::ids::{CellId, NetId};
use tc_liberty::Library;

use crate::graph::Netlist;

/// Sanitizes a net name into a Verilog identifier.
fn ident(name: &str) -> String {
    let mut s: String = name
        .chars()
        .map(|c| {
            if c.is_alphanumeric() || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect();
    if s.is_empty() || s.chars().next().unwrap().is_ascii_digit() {
        s.insert(0, 'n');
    }
    s
}

/// Serializes a netlist to structural Verilog.
pub fn write_verilog(nl: &Netlist, lib: &Library) -> String {
    let mut out = String::new();
    let net_name = |id: NetId| ident(nl.net(id).name);

    let inputs: Vec<String> = nl.primary_inputs().iter().map(|&n| net_name(n)).collect();
    let outputs: Vec<String> = nl.primary_outputs().map(net_name).collect();
    let mut ports = inputs.clone();
    ports.extend(outputs.iter().cloned());

    let _ = writeln!(out, "module {} ({});", ident(&nl.name), ports.join(", "));
    for i in &inputs {
        let _ = writeln!(out, "  input {i};");
    }
    for o in &outputs {
        let _ = writeln!(out, "  output {o};");
    }
    // Internal wires: every net that is neither a PI nor a PO.
    for (i, net) in nl.nets().enumerate() {
        let id = NetId::new(i);
        if nl.primary_inputs().contains(&id) || net.is_output {
            continue;
        }
        let _ = writeln!(out, "  wire {};", net_name(id));
    }
    let _ = writeln!(out);

    for cell in nl.cells() {
        let master = lib.cell(cell.master);
        let mut conns: Vec<String> = master
            .input_pins()
            .iter()
            .zip(cell.inputs)
            .map(|(pin, &net)| format!(".{pin}({})", net_name(net)))
            .collect();
        conns.push(format!(".Y({})", net_name(cell.output)));
        let _ = writeln!(
            out,
            "  {} {} ({});",
            master.name,
            ident(cell.name),
            conns.join(", ")
        );
    }
    let _ = writeln!(out, "endmodule");
    out
}

/// Streaming parser state: instances are created as their statements
/// arrive (placeholder inputs, since a pin may name a net declared
/// later); the recorded rewires resolve once the whole file has gone by.
struct Parser<'a> {
    lib: &'a Library,
    nl: Netlist,
    nets: HashMap<String, NetId>,
    outputs: Vec<String>,
    scratch: Option<NetId>,
    pending: Vec<(CellId, usize, String)>,
}

impl<'a> Parser<'a> {
    fn new(lib: &'a Library) -> Self {
        Parser {
            lib,
            nl: Netlist::new("parsed"),
            nets: HashMap::new(),
            outputs: Vec::new(),
            scratch: None,
            pending: Vec::new(),
        }
    }

    fn statement(&mut self, stmt: &str) -> Result<()> {
        let stmt = stmt.trim();
        if stmt.is_empty() || stmt == "endmodule" {
            return Ok(());
        }
        if let Some(rest) = stmt.strip_prefix("module ") {
            let name = rest.split('(').next().unwrap_or("parsed").trim();
            self.nl.name = name.to_string();
        } else if let Some(rest) = stmt.strip_prefix("input ") {
            for n in rest.split(',') {
                let n = n.trim();
                if !n.is_empty() {
                    let id = self.nl.add_input(n);
                    self.nets.insert(n.to_string(), id);
                }
            }
        } else if let Some(rest) = stmt.strip_prefix("output ") {
            for n in rest.split(',') {
                self.outputs.push(n.trim().to_string());
            }
        } else if stmt.strip_prefix("wire ").is_some() {
            // Wires are implied by driver outputs; nothing to pre-create.
        } else {
            self.instance(stmt)?;
        }
        Ok(())
    }

    /// Instance: `MASTER name (.PIN(net), ...)`. Created immediately
    /// with placeholder inputs; real wiring is deferred to `finish`.
    fn instance(&mut self, stmt: &str) -> Result<()> {
        let open = stmt
            .find('(')
            .ok_or_else(|| Error::invalid_input(format!("bad statement: {stmt}")))?;
        let head: Vec<&str> = stmt[..open].split_whitespace().collect();
        if head.len() != 2 {
            return Err(Error::invalid_input(format!("bad instance head: {stmt}")));
        }
        let (master_name, inst_name) = (head[0], head[1]);
        let master = self
            .lib
            .id_of(master_name)
            .ok_or_else(|| Error::not_found(format!("master {master_name}")))?;
        let pins = self.lib.cell(master).input_pins();

        let conns_str = &stmt[open + 1..stmt.rfind(')').unwrap_or(stmt.len())];
        let mut conns: Vec<(&str, &str)> = Vec::with_capacity(pins.len() + 1);
        for c in conns_str.split(',') {
            let c = c.trim().trim_start_matches('.');
            let (pin, net) = c
                .split_once('(')
                .ok_or_else(|| Error::invalid_input(format!("bad connection: {c}")))?;
            conns.push((pin.trim(), net.trim_end_matches(')').trim()));
        }

        let scratch = match self.scratch {
            Some(s) => s,
            None => {
                let s = self
                    .nl
                    .primary_inputs()
                    .first()
                    .copied()
                    .unwrap_or_else(|| self.nl.add_input("__scratch__"));
                self.scratch = Some(s);
                s
            }
        };
        let placeholder = vec![scratch; pins.len()];
        let (cid, out_net) =
            self.nl
                .add_cell(inst_name.to_string(), self.lib, master, &placeholder)?;
        // The instance's Y connection names its output net.
        let y = conns
            .iter()
            .find(|(p, _)| *p == "Y")
            .ok_or_else(|| Error::invalid_input(format!("{inst_name}: no Y connection")))?;
        self.nets.insert(y.1.to_string(), out_net);
        for (idx, pin) in pins.iter().enumerate() {
            let conn = conns
                .iter()
                .find(|(p, _)| p == pin)
                .ok_or_else(|| Error::invalid_input(format!("{inst_name}: missing pin {pin}")))?;
            self.pending.push((cid, idx, conn.1.to_string()));
        }
        Ok(())
    }

    fn finish(mut self) -> Result<Netlist> {
        for (cid, pin, net_name) in std::mem::take(&mut self.pending) {
            let net = *self
                .nets
                .get(&net_name)
                .ok_or_else(|| Error::not_found(format!("net {net_name}")))?;
            self.nl
                .rewire_input(crate::graph::PinRef { cell: cid, pin }, net);
        }
        for o in std::mem::take(&mut self.outputs) {
            let net = *self
                .nets
                .get(&o)
                .ok_or_else(|| Error::not_found(format!("output net {o}")))?;
            self.nl.mark_output(net);
        }
        self.nl.compact();
        Ok(self.nl)
    }
}

/// Parses the structural subset produced by [`write_verilog`] from any
/// buffered reader, one `;`-terminated statement at a time — the file is
/// never held in memory as a whole.
///
/// # Errors
///
/// Returns [`Error::InvalidInput`] for unknown masters, undeclared nets,
/// missing pins, or syntax outside the supported subset; I/O errors are
/// wrapped as [`Error::InvalidInput`].
pub fn parse_verilog_from<R: BufRead>(mut reader: R, lib: &Library) -> Result<Netlist> {
    let mut parser = Parser::new(lib);
    let mut line = String::new();
    let mut buf = String::new();
    loop {
        line.clear();
        let n = reader
            .read_line(&mut line)
            .map_err(|e| Error::invalid_input(format!("read: {e}")))?;
        if n == 0 {
            break;
        }
        // Strip line comments, join continuation lines with a space.
        let code = line.split("//").next().unwrap_or("").trim_end();
        if !buf.is_empty() {
            buf.push(' ');
        }
        buf.push_str(code);
        while let Some(pos) = buf.find(';') {
            parser.statement(&buf[..pos])?;
            buf.drain(..=pos);
        }
    }
    parser.statement(&buf)?;
    parser.finish()
}

/// Parses the structural subset produced by [`write_verilog`] back into
/// a [`Netlist`] bound to `lib` (in-memory convenience wrapper around
/// [`parse_verilog_from`]).
///
/// # Errors
///
/// Returns [`Error::InvalidInput`] for unknown masters, undeclared nets,
/// missing pins, or syntax outside the supported subset.
pub fn parse_verilog(text: &str, lib: &Library) -> Result<Netlist> {
    parse_verilog_from(text.as_bytes(), lib)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{generate, BenchProfile};
    use tc_liberty::{LibConfig, PvtCorner};

    fn lib() -> Library {
        Library::generate(&LibConfig::default(), &PvtCorner::typical())
    }

    #[test]
    fn roundtrip_preserves_structure() {
        let lib = lib();
        let orig = generate(&lib, BenchProfile::tiny(), 55).unwrap();
        let text = write_verilog(&orig, &lib);
        assert!(text.contains("module tiny"));
        assert!(text.contains("endmodule"));

        let parsed = parse_verilog(&text, &lib).unwrap();
        parsed.validate(&lib).unwrap();
        assert_eq!(parsed.cell_count(), orig.cell_count());
        assert_eq!(
            parsed.primary_outputs().count(),
            orig.primary_outputs().count()
        );

        // Per-instance master binding survives.
        for cell in orig.cells() {
            let pc = parsed
                .cell_named(cell.name)
                .expect("instance name preserved");
            assert_eq!(parsed.cell(pc).master, cell.master, "cell {}", cell.name);
        }

        // Connectivity: same driver-master for every input pin.
        for cell in orig.cells() {
            let pid = parsed.cell_named(cell.name).unwrap();
            for (i, &net) in cell.inputs.iter().enumerate() {
                let want_driver = orig.net(net).driver.map(|d| orig.cell(d).name.to_string());
                let pnet = parsed.cell(pid).inputs[i];
                let got_driver = parsed
                    .net(pnet)
                    .driver
                    .map(|d| parsed.cell(d).name.to_string());
                assert_eq!(want_driver, got_driver, "cell {} pin {i}", cell.name);
            }
        }
    }

    #[test]
    fn streaming_parse_matches_in_memory_parse() {
        let lib = lib();
        let orig = generate(&lib, BenchProfile::tiny(), 55).unwrap();
        let text = write_verilog(&orig, &lib);
        // A deliberately tiny buffer forces many refills mid-statement.
        let reader = std::io::BufReader::with_capacity(17, text.as_bytes());
        let streamed = parse_verilog_from(reader, &lib).unwrap();
        let direct = parse_verilog(&text, &lib).unwrap();
        assert_eq!(write_verilog(&streamed, &lib), write_verilog(&direct, &lib));
    }

    #[test]
    fn parse_rejects_unknown_master() {
        let lib = lib();
        let bad = "module m (a); input a; FOO_X1 u1 (.A(a), .Y(b)); endmodule";
        assert!(parse_verilog(bad, &lib).is_err());
    }

    #[test]
    fn parse_rejects_missing_pin() {
        let lib = lib();
        let bad = "module m (a); input a; NAND2_X1_SVT u1 (.A(a), .Y(b)); endmodule";
        assert!(parse_verilog(bad, &lib).is_err());
    }

    #[test]
    fn identifiers_are_sanitized() {
        assert_eq!(ident("a.b-c"), "a_b_c");
        assert_eq!(ident("3x"), "n3x");
    }
}
