//! Reproduction checks for the paper's headline quantitative claims.
//!
//! These are the "shape" assertions of EXPERIMENTS.md, run as tests so a
//! regression that breaks a figure's story fails CI — each test names
//! the paper section it guards.

use tc_core::units::{Celsius, Volt};
use timing_closure::aging::avs::AvsSystem;
use timing_closure::aging::signoff::{aging_signoff_sweep, fig9_corners, PowerProfile};
use timing_closure::device::mosfet::temperature_reversal_point;
use timing_closure::device::{MosDevice, MosKind, Technology, VtClass};
use timing_closure::interconnect::beol::BeolStack;
use timing_closure::interconnect::sadp::{PatterningSolution, SadpProcess};
use timing_closure::liberty::{AocvTable, PocvSigma};
use timing_closure::signoff::corners::CornerSpace;
use timing_closure::variation::mc::PathModel;
use timing_closure::variation::models::model_accuracy;
use timing_closure::variation::tbc::TbcStudy;

/// §2.1 / Fig 4: MIS rise arc well under SIS; MIS fall arc >10% over.
/// (The full simulated version lives in the fig04 harness; here we keep
/// the cheap 3-offset check.)
#[test]
fn fig4_mis_ratios() {
    use timing_closure::sim::mis::{run_mis_study, InputDir, MisStudy};
    let tech = Technology::planar_28nm();
    let mut study = MisStudy::paper_default(Volt::new(0.9));
    study.offsets = vec![-5.0, 0.0, 5.0];
    let fall = run_mis_study(&tech, &study, InputDir::Falling).unwrap();
    assert!(
        fall.ratio() < 0.75,
        "MIS rise arc must be far below SIS: {}",
        fall.ratio()
    );
    let rise = run_mis_study(&tech, &study, InputDir::Rising).unwrap();
    assert!(
        rise.ratio() > 1.10,
        "MIS fall arc must be >10% over SIS: {}",
        rise.ratio()
    );
}

/// §2.3 / Fig 6b: a temperature-reversal point exists in the usable
/// supply range, so low-voltage signoff needs both temperature corners.
#[test]
fn fig6b_temperature_reversal_in_range() {
    let tech = Technology::planar_28nm();
    let dev = MosDevice::new(MosKind::Nmos, VtClass::Svt, 1.0);
    let vtr = temperature_reversal_point(
        &tech,
        &dev,
        Celsius::new(-30.0),
        Celsius::new(125.0),
        Volt::new(0.45),
        Volt::new(1.2),
    )
    .expect("reversal point exists");
    assert!((0.55..0.95).contains(&vtr.value()), "Vtr = {}", vtr.value());
}

/// §2.2 / Fig 5: the block-mask patterning solutions carry strictly more
/// CD variance than the mandrel-defined one, in the paper's order.
#[test]
fn fig5_sadp_variance_ordering() {
    let p = SadpProcess::n10();
    let mm = PatterningSolution::MandrelMandrel.cd_variance(&p);
    let ss = PatterningSolution::SpacerSpacer.cd_variance(&p);
    let mb = PatterningSolution::MandrelBlock.cd_variance(&p);
    let sb = PatterningSolution::SpacerBlock.cd_variance(&p);
    assert!(mm < ss, "spacer adds 2σs²");
    assert!(mb < sb, "the spacer-block case adds σs² to mandrel-block");
    assert!(sb > mm, "block-mask edges are the noisiest");
}

/// §3.1 / Fig 7: the Monte Carlo path-delay distribution is
/// right-skewed; the LVF split captures both tails within ~2%.
#[test]
fn fig7_setup_long_tail_and_lvf_accuracy() {
    let path = PathModel::uniform(12, 20.0, 0.06, 4.0);
    let t = tc_core::stats::tail_sigmas(&path.monte_carlo(60_000, 99));
    assert!(t.late > 1.1 * t.early, "late σ must exceed early σ");

    let row = model_accuracy(
        &path,
        &AocvTable::from_stage_sigma(0.05),
        &PocvSigma::standard(),
        60_000,
        99,
    );
    let (e_flat, _, _, e_lvf) = row.errors_pct();
    assert!(e_lvf.abs() < 2.0, "LVF within 2% of MC: {e_lvf}%");
    assert!(e_lvf.abs() < e_flat.abs(), "LVF beats flat OCV");
}

/// §3.2 / Fig 8: homogeneous corners are pessimistic for the typical
/// path (median dominating-corner α < 1), yet some paths exceed Cw
/// coverage and need RCw — both corners stay in the signoff.
#[test]
fn fig8_tbc_structure() {
    let stack = BeolStack::n20();
    let study = TbcStudy::generate(&stack, 80, 1_500, 31);
    assert!(study.median_min_alpha() < 1.0);
    let under = study.cw_undercovered();
    assert!(!under.is_empty(), "some paths must exceed Cw coverage");
    let covered = under
        .iter()
        .filter(|&&i| study.at_rcw[i].alpha <= 1.05)
        .count();
    assert!(covered * 10 >= under.len() * 6);
    // TBC eligibility grows with looser thresholds.
    assert!(study.tbc_eligible(0.06, 0.08).len() >= study.tbc_eligible(0.03, 0.04).len());
}

/// §3.3 / Fig 9: underestimating the aging corner costs lifetime power;
/// overestimating costs area; the truth corner is the 100%/100% anchor.
#[test]
fn fig9_aging_tradeoff_shape() {
    let outcomes = aging_signoff_sweep(
        &AvsSystem::nominal_28nm(),
        PowerProfile { dynamic_share: 0.6 },
        &fig9_corners(),
        10.0,
    );
    let first = &outcomes[0];
    let last = outcomes.last().unwrap();
    let truth = outcomes.iter().find(|o| o.assumed_years == 10.0).unwrap();
    assert!(first.power_pct > truth.power_pct);
    assert!(first.area_pct < truth.area_pct);
    assert!(last.area_pct > truth.area_pct);
    for w in outcomes.windows(2) {
        assert!(w[1].area_pct >= w[0].area_pct, "area monotone in corner");
    }
}

/// §2.3: the 16 nm corner space is more than an order of magnitude
/// larger than the 65 nm one.
#[test]
fn corner_super_explosion_ratio() {
    let ratio = CornerSpace::n16_soc().count() as f64 / CornerSpace::n65_classic().count() as f64;
    assert!(ratio > 10.0, "explosion ratio {ratio}");
}

/// §2.3: gate delay collapses with VDD while wire delay is flat, so the
/// gate share of a mixed path falls with voltage (corner dominance
/// flips between Cw and RCw).
#[test]
fn gate_wire_balance_shifts_with_voltage() {
    let tech = Technology::finfet_16nm();
    let dev = MosDevice::new(MosKind::Nmos, VtClass::Svt, 1.0);
    let t = Celsius::new(25.0);
    let gate = |v: f64| dev.eff_resistance(&tech, Volt::new(v), t).value() * 6.0;
    let g_lo = gate(0.7);
    let g_hi = gate(1.2);
    assert!(
        g_hi < 0.70 * g_lo,
        "gate delay must drop ≥30% from 0.7→1.2 V: {g_lo} → {g_hi}"
    );
    // Wire delay is voltage-independent by construction, so the gate
    // share strictly falls.
    let wire = 10.0;
    assert!(g_hi / (g_hi + wire) < g_lo / (g_lo + wire));
}
