#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! # tc-liberty — cell-library modeling (NLDM, corners, AOCV/POCV/LVF)
//!
//! This crate plays the role of the foundry Liberty deliverable in the
//! paper's ecosystem. It provides:
//!
//! * [`corner`] — PVT corner definitions ([`PvtCorner`]): process corners
//!   (SS/SSG/TT/FFG/FF plus cross-corners FS/SF), voltage and temperature,
//!   with delay scaling factors derived from the `tc-device` models so
//!   temperature inversion (§2.3) falls out naturally.
//! * [`nldm`] — closed-form NLDM table generation: per-arc
//!   delay(slew, load) and output-slew tables built on a logical-effort
//!   style cell model calibrated against `tc-sim` characterization.
//! * [`cell`] — library cells ([`LibCell`]) with pins, arcs, area,
//!   leakage and dynamic power; multi-Vt, multi-drive variants.
//! * [`flop`] — sequential timing: setup/hold constraint tables, c2q
//!   arcs, and the *interdependent* setup–hold–c2q surface of the paper's
//!   Fig 10 ([`flop::InterdepModel`]) used for margin recovery (§3.4).
//! * [`variation`] — the variation-modeling standards ladder of §3.1:
//!   flat OCV derates, stage-count AOCV tables ([`variation::AocvTable`]),
//!   per-cell POCV sigma, and per-(slew, load) LVF sigma tables
//!   ([`variation::LvfTable`]) with separate late/early sigmas.
//! * [`library`] — the [`Library`] container and the synthetic library
//!   generator used throughout the workspace (our substitute for a
//!   foundry 16 nm kit).
//!
//! # Examples
//!
//! ```
//! use tc_liberty::{Library, LibConfig, PvtCorner};
//!
//! let lib = Library::generate(&LibConfig::default(), &PvtCorner::typical());
//! let nand = lib.cell_named("NAND2_X2_SVT").expect("cell exists");
//! let arc = &nand.arcs[0];
//! // Delay grows with load.
//! assert!(arc.delay.eval(20.0, 10.0) > arc.delay.eval(20.0, 2.0));
//! ```

pub mod cell;
pub mod corner;
pub mod flop;
pub mod libfile;
pub mod library;
pub mod nldm;
pub mod variation;

pub use cell::{CellKind, LibCell, TimingArc};
pub use corner::{ProcessCorner, PvtCorner};
pub use flop::{FlopTiming, InterdepModel};
pub use libfile::{parse_liberty, write_liberty, ParsedLibrary};
pub use library::{LibConfig, Library};
pub use variation::{AocvTable, DerateModel, LvfTable, PocvSigma};
