//! Text codec for ECO-journal interchange and validated replay.
//!
//! A closure run's edit sequence (the delta the fix engine applied) can
//! be exported as a line-oriented journal file, shipped next to the
//! netlist, and replayed onto another copy of the same design — the ECO
//! handoff of the paper's Fig 1, where the "fix" tool and the signoff
//! timer are separate processes exchanging edit scripts.
//!
//! The format is deliberately tiny: a `*TCJ 1` header line, then one
//! command per line. Identifiers are the dense [`CellId`]/[`NetId`]
//! indices (stable across ECO edits by construction — see
//! [`crate::journal`]); masters travel by name so the journal survives
//! library regeneration.
//!
//! ```text
//! *TCJ 1
//! SWAP cell 3 master NAND2_X1_LVT
//! WIRELEN net 5 um 25.5
//! ROUTE net 5 class 2
//! BUF net 3 master BUF_X2_SVT sinks 4:0,7:1
//! REWIRE cell 2 pin 1 net 6
//! ```
//!
//! [`replay_journal`] is *transactional*: every command is validated
//! against the target netlist (indices in range, masters known, pins
//! present) before it is applied, and any failure rolls the netlist back
//! to its pre-replay state via [`Netlist::undo_to`] — a half-applied
//! journal never leaks out, so an incremental `Timer` pointed at the
//! netlist stays consistent.

use std::collections::HashSet;
use std::fmt::Write as _;

use tc_core::error::{Error, Result};
use tc_core::ids::{CellId, NetId};
use tc_liberty::Library;

use crate::graph::{Netlist, PinRef};
use crate::journal::NetlistEdit;

/// One replayable journal command (the external mirror of
/// [`NetlistEdit`], minus the undo bookkeeping the target netlist will
/// re-derive when it applies the edit).
#[derive(Clone, Debug, PartialEq)]
pub enum JournalCmd {
    /// Rebind `cell` to the master named `new_master`.
    Swap {
        /// Target cell index.
        cell: usize,
        /// Replacement master, by name.
        new_master: String,
    },
    /// Set `net`'s estimated routed length.
    SetWireLength {
        /// Target net index.
        net: usize,
        /// New length, µm (finite, non-negative).
        um: f64,
    },
    /// Set `net`'s non-default-rule class.
    SetRouteClass {
        /// Target net index.
        net: usize,
        /// New route class.
        class: u8,
    },
    /// Insert a buffer on `src_net`, re-homing `sinks` onto its output.
    InsertBuffer {
        /// The split net's index.
        src_net: usize,
        /// Buffer master, by name.
        master: String,
        /// Moved sinks as `(cell, pin)` pairs.
        sinks: Vec<(usize, usize)>,
    },
    /// Move one sink pin onto a different net.
    Rewire {
        /// Sink cell index.
        cell: usize,
        /// Sink pin index.
        pin: usize,
        /// Net the pin now loads.
        net: usize,
    },
}

/// Renders commands in the canonical journal text form (header line
/// included). [`decode_journal`] ∘ [`render_cmds`] is the identity, and
/// re-rendering a decoded journal reproduces the text byte-for-byte.
pub fn render_cmds(cmds: &[JournalCmd]) -> String {
    let mut out = String::from("*TCJ 1\n");
    for cmd in cmds {
        match cmd {
            JournalCmd::Swap { cell, new_master } => {
                let _ = writeln!(out, "SWAP cell {cell} master {new_master}");
            }
            JournalCmd::SetWireLength { net, um } => {
                let _ = writeln!(out, "WIRELEN net {net} um {um}");
            }
            JournalCmd::SetRouteClass { net, class } => {
                let _ = writeln!(out, "ROUTE net {net} class {class}");
            }
            JournalCmd::InsertBuffer {
                src_net,
                master,
                sinks,
            } => {
                let s = if sinks.is_empty() {
                    "-".to_string()
                } else {
                    sinks
                        .iter()
                        .map(|(c, p)| format!("{c}:{p}"))
                        .collect::<Vec<_>>()
                        .join(",")
                };
                let _ = writeln!(out, "BUF net {src_net} master {master} sinks {s}");
            }
            JournalCmd::Rewire { cell, pin, net } => {
                let _ = writeln!(out, "REWIRE cell {cell} pin {pin} net {net}");
            }
        }
    }
    out
}

/// Exports the journal suffix `nl.journal()[from..]` as replayable text —
/// `from` is a checkpoint taken with [`Netlist::journal_len`] before the
/// edit sequence of interest.
pub fn write_journal(nl: &Netlist, lib: &Library, from: usize) -> String {
    let cmds: Vec<JournalCmd> = nl.journal()[from..]
        .iter()
        .map(|edit| match edit {
            NetlistEdit::SwapMaster {
                cell, new_master, ..
            } => JournalCmd::Swap {
                cell: cell.index(),
                new_master: lib.cell(*new_master).name.clone(),
            },
            NetlistEdit::SetWireLength { net, new_um, .. } => JournalCmd::SetWireLength {
                net: net.index(),
                um: *new_um,
            },
            NetlistEdit::SetRouteClass { net, new_class, .. } => JournalCmd::SetRouteClass {
                net: net.index(),
                class: *new_class,
            },
            NetlistEdit::InsertBuffer {
                buffer,
                src_net,
                moved_sinks,
                ..
            } => JournalCmd::InsertBuffer {
                src_net: src_net.index(),
                master: lib.cell(nl.cell(*buffer).master).name.clone(),
                sinks: moved_sinks
                    .iter()
                    .map(|(s, _)| (s.cell.index(), s.pin))
                    .collect(),
            },
            NetlistEdit::RewireInput { sink, new_net, .. } => JournalCmd::Rewire {
                cell: sink.cell.index(),
                pin: sink.pin,
                net: new_net.index(),
            },
        })
        .collect();
    render_cmds(&cmds)
}

/// Parses journal text back into commands.
///
/// # Errors
///
/// Returns [`Error::InvalidInput`] for a missing/mismatched header,
/// unknown verbs, malformed fields, or non-finite/negative wire lengths;
/// every message names the offending line.
pub fn decode_journal(text: &str) -> Result<Vec<JournalCmd>> {
    let mut cmds = Vec::new();
    let mut saw_header = false;
    for (i, raw) in text.lines().enumerate() {
        let lineno = i + 1;
        let line = raw.trim();
        if line.is_empty() {
            continue;
        }
        if !saw_header {
            if line != "*TCJ 1" {
                return Err(Error::invalid_input(format!(
                    "line {lineno}: expected `*TCJ 1` header, got `{line}`"
                )));
            }
            saw_header = true;
            continue;
        }
        let tok: Vec<&str> = line.split_whitespace().collect();
        let index = |what: &str, s: &str| -> Result<usize> {
            s.parse::<usize>()
                .map_err(|_| Error::invalid_input(format!("line {lineno}: bad {what} index `{s}`")))
        };
        let cmd = match tok.as_slice() {
            ["SWAP", "cell", c, "master", m] => JournalCmd::Swap {
                cell: index("cell", c)?,
                new_master: m.to_string(),
            },
            ["WIRELEN", "net", n, "um", um] => {
                let v = um.parse::<f64>().map_err(|_| {
                    Error::invalid_input(format!("line {lineno}: bad length `{um}`"))
                })?;
                if !v.is_finite() || v < 0.0 {
                    return Err(Error::invalid_input(format!(
                        "line {lineno}: length must be finite and non-negative, got {um}"
                    )));
                }
                JournalCmd::SetWireLength {
                    net: index("net", n)?,
                    um: v,
                }
            }
            ["ROUTE", "net", n, "class", c] => JournalCmd::SetRouteClass {
                net: index("net", n)?,
                class: c.parse::<u8>().map_err(|_| {
                    Error::invalid_input(format!("line {lineno}: bad route class `{c}`"))
                })?,
            },
            ["BUF", "net", n, "master", m, "sinks", s] => {
                let sinks = if *s == "-" {
                    Vec::new()
                } else {
                    s.split(',')
                        .map(|pair| {
                            let (c, p) = pair.split_once(':').ok_or_else(|| {
                                Error::invalid_input(format!(
                                    "line {lineno}: bad sink `{pair}` (want cell:pin)"
                                ))
                            })?;
                            Ok((index("sink cell", c)?, index("sink pin", p)?))
                        })
                        .collect::<Result<Vec<_>>>()?
                };
                JournalCmd::InsertBuffer {
                    src_net: index("net", n)?,
                    master: m.to_string(),
                    sinks,
                }
            }
            ["REWIRE", "cell", c, "pin", p, "net", n] => JournalCmd::Rewire {
                cell: index("cell", c)?,
                pin: index("pin", p)?,
                net: index("net", n)?,
            },
            _ => {
                return Err(Error::invalid_input(format!(
                    "line {lineno}: unrecognized journal command `{line}`"
                )))
            }
        };
        cmds.push(cmd);
    }
    if !saw_header {
        return Err(Error::invalid_input(
            "line 1: empty journal (missing `*TCJ 1` header)",
        ));
    }
    Ok(cmds)
}

/// Replays decoded commands onto `nl`, transactionally.
///
/// Every command is validated before it is applied; on the first failure
/// the netlist is rolled back to its state at entry and the error is
/// returned. On success, returns the number of commands applied (the
/// journal grows by at least that much — `insert_buffer` also journals
/// the sink moves it performs).
///
/// # Errors
///
/// Returns [`Error::NotFound`] for out-of-range cell/net/pin indices and
/// unknown master names, [`Error::InvalidInput`] for commands the
/// netlist rejects (pin-count mismatches, sinks not on the named net,
/// duplicate sinks); every message names the failing journal entry.
pub fn replay_journal(nl: &mut Netlist, lib: &Library, cmds: &[JournalCmd]) -> Result<usize> {
    let cp = nl.journal_len();
    let result = apply_cmds(nl, lib, cmds);
    if result.is_err() {
        // A failed entry must not leave earlier entries applied: the
        // caller's Timer checkpoint still describes the pre-replay
        // netlist, and `undo_to` restores exactly that.
        nl.undo_to(cp)
            .map_err(|e| Error::internal(format!("rollback after failed replay: {e}")))?;
    }
    result
}

fn apply_cmds(nl: &mut Netlist, lib: &Library, cmds: &[JournalCmd]) -> Result<usize> {
    for (i, cmd) in cmds.iter().enumerate() {
        let cell_id = |idx: usize| -> Result<CellId> {
            if idx >= nl.cell_count() {
                return Err(Error::not_found(format!(
                    "journal entry {i}: cell {idx} (netlist has {})",
                    nl.cell_count()
                )));
            }
            Ok(CellId::new(idx))
        };
        let net_id = |idx: usize| -> Result<NetId> {
            if idx >= nl.net_count() {
                return Err(Error::not_found(format!(
                    "journal entry {i}: net {idx} (netlist has {})",
                    nl.net_count()
                )));
            }
            Ok(NetId::new(idx))
        };
        let master_id = |name: &str| {
            lib.id_of(name)
                .ok_or_else(|| Error::not_found(format!("journal entry {i}: master {name}")))
        };
        match cmd {
            JournalCmd::Swap { cell, new_master } => {
                let cell = cell_id(*cell)?;
                let master = master_id(new_master)?;
                nl.swap_master(lib, cell, master)
                    .map_err(|e| Error::invalid_input(format!("journal entry {i}: {e}")))?;
            }
            JournalCmd::SetWireLength { net, um } => {
                // Decode already rejects these, but commands can also be
                // built programmatically.
                if !um.is_finite() || *um < 0.0 {
                    return Err(Error::invalid_input(format!(
                        "journal entry {i}: length must be finite and non-negative, got {um}"
                    )));
                }
                nl.set_wire_length(net_id(*net)?, *um);
            }
            JournalCmd::SetRouteClass { net, class } => {
                nl.set_route_class(net_id(*net)?, *class);
            }
            JournalCmd::InsertBuffer {
                src_net,
                master,
                sinks,
            } => {
                let net = net_id(*src_net)?;
                let master = master_id(master)?;
                let mut seen = HashSet::new();
                let mut moved = Vec::with_capacity(sinks.len());
                for &(c, p) in sinks {
                    let cell = cell_id(c)?;
                    if p >= nl.cell_inputs(cell).len() {
                        return Err(Error::not_found(format!(
                            "journal entry {i}: pin {p} on cell {c} ({} inputs)",
                            nl.cell_inputs(cell).len()
                        )));
                    }
                    if !seen.insert((c, p)) {
                        return Err(Error::invalid_input(format!(
                            "journal entry {i}: duplicate sink {c}:{p}"
                        )));
                    }
                    moved.push(PinRef { cell, pin: p });
                }
                nl.insert_buffer(lib, net, &moved, master)
                    .map_err(|e| Error::invalid_input(format!("journal entry {i}: {e}")))?;
            }
            JournalCmd::Rewire { cell, pin, net } => {
                let cell = cell_id(*cell)?;
                let net = net_id(*net)?;
                if *pin >= nl.cell_inputs(cell).len() {
                    return Err(Error::not_found(format!(
                        "journal entry {i}: pin {pin} on cell {} ({} inputs)",
                        cell.index(),
                        nl.cell_inputs(cell).len()
                    )));
                }
                nl.rewire_input(PinRef { cell, pin: *pin }, net);
            }
        }
    }
    Ok(cmds.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{generate, BenchProfile};
    use tc_liberty::{LibConfig, Library, PvtCorner};

    fn lib() -> Library {
        Library::generate(&LibConfig::default(), &PvtCorner::typical())
    }

    fn swap_target(nl: &Netlist, lib: &Library) -> (CellId, String) {
        // Find a cell with a same-pin-count alternative master.
        for cell in nl.cells() {
            let pins = cell.inputs.len();
            let cur = lib.cell(cell.master).name.clone();
            if let Some(alt) = lib
                .cells()
                .iter()
                .find(|c| c.input_pins().len() == pins && c.name != cur)
            {
                return (nl.cell_named(cell.name).unwrap(), alt.name.clone());
            }
        }
        panic!("no swappable cell");
    }

    #[test]
    fn roundtrip_through_text_and_replay() {
        let lib = lib();
        let mut nl = generate(&lib, BenchProfile::tiny(), 7).unwrap();
        let mut copy = nl.clone();
        let cp = nl.journal_len();

        let (cell, alt) = swap_target(&nl, &lib);
        let alt_id = lib.id_of(&alt).unwrap();
        nl.swap_master(&lib, cell, alt_id).unwrap();
        nl.set_wire_length(NetId::new(3), 41.25);
        nl.set_route_class(NetId::new(3), 2);
        let buf = lib
            .cells()
            .iter()
            .find(|c| c.input_pins().len() == 1 && c.is_buffer_like())
            .unwrap();
        let victim = NetId::new(3);
        let sink = nl.net(victim).sinks.first().copied();
        if let Some(s) = sink {
            nl.insert_buffer(&lib, victim, &[s], lib.id_of(&buf.name).unwrap())
                .unwrap();
        }

        let text = write_journal(&nl, &lib, cp);
        let cmds = decode_journal(&text).unwrap();
        // Canonical text is a fixpoint of decode∘render.
        assert_eq!(render_cmds(&cmds), text);

        let applied = replay_journal(&mut copy, &lib, &cmds).unwrap();
        assert_eq!(applied, cmds.len());
        copy.validate(&lib).unwrap();
        assert_eq!(copy.cell_count(), nl.cell_count());
        assert_eq!(copy.net_count(), nl.net_count());
        assert_eq!(copy.cell(cell).master, alt_id);
        assert!((copy.net(NetId::new(3)).wire_length_um - 41.25).abs() < 1e-12);
    }

    #[test]
    fn decode_errors_carry_line_numbers() {
        for (text, want) in [
            ("SWAP cell 0 master X\n", "line 1"),
            ("*TCJ 1\nSWAP cell zero master X\n", "line 2"),
            ("*TCJ 1\nWIRELEN net 0 um NaN\n", "line 2"),
            ("*TCJ 1\nWIRELEN net 0 um -5\n", "line 2"),
            ("*TCJ 1\nFROB net 0\n", "line 2"),
            ("*TCJ 1\nBUF net 0 master B sinks 1;2\n", "line 2"),
            ("", "line 1"),
        ] {
            let err = decode_journal(text).unwrap_err().to_string();
            assert!(err.contains(want), "`{err}` lacks `{want}` for {text:?}");
        }
    }

    #[test]
    fn replay_failure_rolls_back_everything() {
        let lib = lib();
        let mut nl = generate(&lib, BenchProfile::tiny(), 7).unwrap();
        let before = nl.clone();
        let cp = nl.journal_len();

        let (cell, alt) = swap_target(&nl, &lib);
        let cmds = vec![
            JournalCmd::Swap {
                cell: cell.index(),
                new_master: alt,
            },
            JournalCmd::SetWireLength { net: 2, um: 99.0 },
            // Out-of-range cell: must fail *and* unwind the two edits
            // above.
            JournalCmd::Swap {
                cell: 999_999,
                new_master: "INV_X1_SVT".to_string(),
            },
        ];
        let err = replay_journal(&mut nl, &lib, &cmds).unwrap_err();
        assert!(err.to_string().contains("entry 2"), "{err}");
        assert_eq!(nl.journal_len(), cp);
        assert_eq!(nl.cell(cell).master, before.cell(cell).master);
        assert!(
            (nl.net(NetId::new(2)).wire_length_um - before.net(NetId::new(2)).wire_length_um).abs()
                < 1e-12
        );
    }

    #[test]
    fn replay_rejects_bad_references_without_panicking() {
        let lib = lib();
        let mut nl = generate(&lib, BenchProfile::tiny(), 7).unwrap();
        for cmd in [
            JournalCmd::SetWireLength {
                net: usize::MAX,
                um: 1.0,
            },
            JournalCmd::SetRouteClass {
                net: 1 << 40,
                class: 2,
            },
            JournalCmd::Swap {
                cell: 0,
                new_master: "NO_SUCH_CELL".to_string(),
            },
            JournalCmd::Rewire {
                cell: 0,
                pin: 99,
                net: 0,
            },
            JournalCmd::InsertBuffer {
                src_net: 0,
                master: "BUF_X2_SVT".to_string(),
                sinks: vec![(0, 0), (0, 0)],
            },
        ] {
            let cp = nl.journal_len();
            let err = replay_journal(&mut nl, &lib, std::slice::from_ref(&cmd)).unwrap_err();
            assert!(err.to_string().contains("entry 0"), "{cmd:?}: {err}");
            assert_eq!(nl.journal_len(), cp, "{cmd:?} left edits applied");
        }
    }
}
