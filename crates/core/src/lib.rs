#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! # tc-core — shared foundation for the `timing-closure` workspace
//!
//! This crate holds the domain-neutral building blocks used by every other
//! crate in the workspace:
//!
//! * [`units`] — newtype wrappers for physical quantities ([`Ps`], [`Ff`],
//!   [`Kohm`], [`Volt`], [`Celsius`], [`Um`]) with dimensional arithmetic,
//!   so a picosecond can never silently mix with a nanosecond
//!   (C-NEWTYPE).
//! * [`lut`] — 1-D and 2-D interpolated lookup tables, the data structure
//!   behind Liberty NLDM/LVF delay tables.
//! * [`stats`] — summary statistics (mean, sigma, skewness, quantiles) and
//!   histograms used by the Monte Carlo engines.
//! * [`rng`] — a small, fully deterministic xoshiro256** PRNG with
//!   Box–Muller normal and Azzalini skew-normal samplers. Every stochastic
//!   experiment in the workspace takes an explicit `u64` seed so results
//!   are reproducible bit-for-bit across runs and platforms.
//! * [`ids`] — typed index newtypes shared by the netlist/STA graphs.
//!
//! # Examples
//!
//! ```
//! use tc_core::units::{Ff, Kohm, Ps};
//!
//! // An RC product is a time: 2 kΩ × 3 fF = 6 ps.
//! let delay: Ps = Kohm::new(2.0) * Ff::new(3.0);
//! assert_eq!(delay, Ps::new(6.0));
//! ```

pub mod error;
pub mod ids;
pub mod lut;
pub mod rng;
pub mod stats;
pub mod units;

pub use error::{Error, Result};
pub use lut::{Lut1, Lut2};
pub use rng::Rng;
pub use stats::Summary;
pub use units::{Celsius, Ff, Kohm, Ps, Um, Volt};
