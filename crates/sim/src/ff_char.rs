//! Flip-flop timing characterization — the paper's **Figure 10** (§3.4).
//!
//! Conventional signoff treats a flip-flop's setup time, hold time and
//! clock-to-q delay as three *fixed* numbers, characterized with a
//! pushout criterion (c2q allowed to degrade by 10%). In reality the
//! three quantities trade off against each other: squeezing the data
//! arrival against the clock edge pushes c2q out smoothly. This module
//! measures those interdependent surfaces from the transistor-level DFF
//! of [`crate::cells::dff`]:
//!
//! * [`c2q_vs_setup`] — c2q delay as the data-to-clock gap shrinks;
//! * [`c2q_vs_hold`] — c2q delay as the data pulse ends sooner after the
//!   clock edge;
//! * [`setup_hold_contour`] — for each setup value, the minimum hold that
//!   still meets the c2q pushout limit (the paper's third panel);
//! * [`characterize_ff`] — the fixed (setup, hold, c2q) triple a
//!   conventional Liberty model would record at a given pushout.

use tc_core::error::{Error, Result};
use tc_core::units::{Celsius, Ff, Ps, Volt};
use tc_device::{Technology, VtClass};

use crate::cells::dff;
use crate::circuit::{Circuit, Pwl};
use crate::measure::Edge;
use crate::solver::{transient, TranOptions};

/// Testbench configuration for FF characterization.
#[derive(Clone, Debug)]
pub struct FfBench {
    /// Supply voltage.
    pub vdd: Volt,
    /// Die temperature.
    pub temp: Celsius,
    /// Input transition time, ps.
    pub slew: f64,
    /// Output load on Q, fF.
    pub load: Ff,
    /// Threshold flavour of the flop's devices.
    pub vt: VtClass,
}

impl FfBench {
    /// A 65 nm-flavoured default matching the paper's DFQDX study
    /// (nominal planar supply, modest load).
    pub fn paper_default() -> Self {
        FfBench {
            vdd: Volt::new(0.9),
            temp: Celsius::new(25.0),
            slew: 20.0,
            load: Ff::new(2.0),
            vt: VtClass::Svt,
        }
    }
}

/// Clock edge time inside the testbench window (ps).
const T_CK: f64 = 300.0;
const T_STOP: f64 = 800.0;

/// Simulates one (setup, hold) point and returns the c2q delay, or `None`
/// if the flop failed to capture (Q never rose, or lost the value).
///
/// # Errors
///
/// Propagates simulator convergence failures.
pub fn c2q_at(bench: &FfBench, tech: &Technology, setup: Ps, hold: Ps) -> Result<Option<Ps>> {
    let mut ckt = Circuit::new();
    let vdd = ckt.rail("vdd", bench.vdd);
    let ff = dff(&mut ckt, vdd, bench.vt);
    ckt.cap_to_ground(ff.q, bench.load);

    // D rises `setup` before the clock edge and falls `hold` after it;
    // overlapping edges degrade into a runt triangle (see [`Pwl::pulse`]).
    let d_rise = T_CK - setup.value();
    let d_fall = T_CK + hold.value();
    ckt.source(
        ff.d,
        Pwl::pulse(d_rise, d_fall, bench.slew, Volt::ZERO, bench.vdd),
    );
    ckt.source(ff.ck, Pwl::ramp(T_CK, bench.slew, Volt::ZERO, bench.vdd));

    let opts = TranOptions {
        t_stop: T_STOP,
        dt: 0.5,
        temp: bench.temp,
        ..Default::default()
    };
    let res = transient(&ckt, tech, &opts)?;
    let q = res.waveform(ff.q);
    let ck = res.waveform(ff.ck);
    let vdd_v = bench.vdd.value();

    let t_ck50 = ck
        .crossing(0.5 * vdd_v, Edge::Rise, 0.0)
        .ok_or_else(|| Error::internal("clock edge missing"))?;
    let t_q = match q.crossing(0.5 * vdd_v, Edge::Rise, t_ck50) {
        Some(t) => t,
        None => return Ok(None),
    };
    // Q must also *stay* captured (a metastable wiggle that collapses back
    // low is a failure).
    if q.last() < 0.8 * vdd_v {
        return Ok(None);
    }
    Ok(Some(Ps::new(t_q - t_ck50)))
}

/// One sampled point of a c2q tradeoff curve.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct C2qPoint {
    /// The swept constraint value (setup or hold), ps.
    pub constraint: Ps,
    /// Measured c2q delay; `None` = capture failure.
    pub c2q: Option<Ps>,
}

/// Sweeps c2q against setup time with the hold side held safe.
///
/// # Errors
///
/// Propagates simulator failures.
pub fn c2q_vs_setup(bench: &FfBench, tech: &Technology, setups: &[f64]) -> Result<Vec<C2qPoint>> {
    setups
        .iter()
        .map(|&s| {
            Ok(C2qPoint {
                constraint: Ps::new(s),
                c2q: c2q_at(bench, tech, Ps::new(s), Ps::new(300.0))?,
            })
        })
        .collect()
}

/// Sweeps c2q against hold time with the setup side held safe.
///
/// # Errors
///
/// Propagates simulator failures.
pub fn c2q_vs_hold(bench: &FfBench, tech: &Technology, holds: &[f64]) -> Result<Vec<C2qPoint>> {
    holds
        .iter()
        .map(|&h| {
            Ok(C2qPoint {
                constraint: Ps::new(h),
                c2q: c2q_at(bench, tech, Ps::new(150.0), Ps::new(h))?,
            })
        })
        .collect()
}

/// The conventional Liberty-style characterization triple.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FfTiming {
    /// Minimum setup meeting the pushout criterion.
    pub setup: Ps,
    /// Minimum hold meeting the pushout criterion.
    pub hold: Ps,
    /// Nominal (unconstrained) c2q delay.
    pub c2q_nominal: Ps,
}

fn bisect_min_constraint(
    mut check: impl FnMut(f64) -> Result<bool>,
    mut lo: f64,
    mut hi: f64,
    iters: usize,
) -> Result<f64> {
    // `lo` fails, `hi` passes.
    if !check(hi)? {
        return Err(Error::convergence("constraint never passes in window"));
    }
    for _ in 0..iters {
        let mid = 0.5 * (lo + hi);
        if check(mid)? {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    Ok(hi)
}

/// Characterizes the fixed (setup, hold, c2q) triple at the given pushout
/// factor (1.10 = the classic "10% pushout" the paper cites).
///
/// # Errors
///
/// Returns [`Error::Convergence`] if the flop cannot capture anywhere in
/// the search window, or propagates simulator failures.
pub fn characterize_ff(bench: &FfBench, tech: &Technology, pushout: f64) -> Result<FfTiming> {
    let c2q_nominal = c2q_at(bench, tech, Ps::new(200.0), Ps::new(300.0))?
        .ok_or_else(|| Error::convergence("flop fails even with generous margins"))?;
    let limit = c2q_nominal * pushout;

    let setup = bisect_min_constraint(
        |s| Ok(c2q_at(bench, tech, Ps::new(s), Ps::new(300.0))?.is_some_and(|d| d <= limit)),
        -20.0,
        200.0,
        14,
    )?;
    let hold = bisect_min_constraint(
        |h| Ok(c2q_at(bench, tech, Ps::new(150.0), Ps::new(h))?.is_some_and(|d| d <= limit)),
        -20.0,
        300.0,
        14,
    )?;
    Ok(FfTiming {
        setup: Ps::new(setup),
        hold: Ps::new(hold),
        c2q_nominal,
    })
}

/// For each setup value, the minimum hold still meeting the pushout — the
/// interdependency contour of Fig 10's third panel. Returns
/// `(setup, min_hold)` pairs; setups at which no hold works are skipped.
///
/// # Errors
///
/// Propagates simulator failures.
pub fn setup_hold_contour(
    bench: &FfBench,
    tech: &Technology,
    pushout: f64,
    setups: &[f64],
) -> Result<Vec<(Ps, Ps)>> {
    let c2q_nominal = c2q_at(bench, tech, Ps::new(200.0), Ps::new(300.0))?
        .ok_or_else(|| Error::convergence("flop fails even with generous margins"))?;
    let limit = c2q_nominal * pushout;
    let mut out = Vec::new();
    for &s in setups {
        let r = bisect_min_constraint(
            |h| Ok(c2q_at(bench, tech, Ps::new(s), Ps::new(h))?.is_some_and(|d| d <= limit)),
            -20.0,
            300.0,
            12,
        );
        if let Ok(h) = r {
            out.push((Ps::new(s), Ps::new(h)));
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bench() -> (FfBench, Technology) {
        (FfBench::paper_default(), Technology::planar_28nm())
    }

    #[test]
    fn generous_margins_capture_cleanly() {
        let (b, tech) = bench();
        let c2q = c2q_at(&b, &tech, Ps::new(150.0), Ps::new(300.0))
            .unwrap()
            .expect("capture");
        assert!(c2q.value() > 5.0 && c2q.value() < 200.0, "c2q {c2q}");
    }

    #[test]
    fn violated_setup_fails_or_pushes_out() {
        let (b, tech) = bench();
        let nominal = c2q_at(&b, &tech, Ps::new(150.0), Ps::new(300.0))
            .unwrap()
            .unwrap();
        // D arriving 30 ps *after* the clock edge must fail or push far out.
        match c2q_at(&b, &tech, Ps::new(-30.0), Ps::new(300.0)).unwrap() {
            None => {}
            Some(d) => assert!(d > nominal * 1.3, "late D: {d} vs nominal {nominal}"),
        }
    }

    #[test]
    fn c2q_rises_as_setup_shrinks() {
        let (b, tech) = bench();
        let pts = c2q_vs_setup(&b, &tech, &[150.0, 40.0, 15.0]).unwrap();
        let d150 = pts[0].c2q.expect("150 ps setup captures");
        // Find the last surviving point; its c2q must exceed the nominal.
        let worst = pts
            .iter()
            .rev()
            .find_map(|p| p.c2q)
            .expect("some point captures");
        assert!(
            worst >= d150,
            "c2q must not improve as setup shrinks: {worst} vs {d150}"
        );
    }

    #[test]
    fn characterization_triple_is_consistent() {
        let (b, tech) = bench();
        let t = characterize_ff(&b, &tech, 1.10).unwrap();
        assert!(t.c2q_nominal.value() > 0.0);
        // Min setup/hold land inside the bisection window, not at its ends.
        assert!(t.setup.value() < 190.0 && t.setup.value() > -20.0);
        assert!(t.hold.value() < 290.0 && t.hold.value() > -20.0);
        // And the characterized point indeed meets the pushout.
        let d = c2q_at(&b, &tech, t.setup, Ps::new(300.0)).unwrap().unwrap();
        assert!(d <= t.c2q_nominal * 1.11);
    }
}
