//! The `tcdiff` CLI: compare two run artifacts / `BENCH_*.json`
//! sidecars, or validate a Chrome trace export.
//!
//! ```text
//! tcdiff <baseline.json> <candidate.json> [--tol 0.25] [--mem-tol 0.5]
//!        [--timing-strict] [--mem-strict] [--verbose]
//! tcdiff --check-trace <trace.json> [--min-threads N]
//! ```
//!
//! Exit codes: `0` — documents agree (timing within tolerance or
//! informational); `1` — regression (fingerprint/exact mismatch, or
//! out-of-tolerance timing under `--timing-strict`); `2` — usage, I/O,
//! parse, or schema-version error.

use std::process::ExitCode;

use tc_obs::JsonValue;
use tcdiff::{check_schema, check_trace, diff, DiffOptions};

fn usage() -> &'static str {
    "usage: tcdiff <baseline.json> <candidate.json> [--tol FRACTION] [--mem-tol FRACTION]\n\
     \x20      [--timing-strict] [--mem-strict] [--verbose]\n\
     \x20      tcdiff --check-trace <trace.json> [--min-threads N]\n\
     \n\
     Compares two run artifacts or BENCH_*.json sidecars field by field.\n\
     Fingerprint/result fields must match exactly; wall-clock fields\n\
     (*_ms/*_us/*_ns/wall*/speedup*/elapsed*/idle*) are tolerance-gated\n\
     (default 25% relative); allocator fields (*_bytes/*_allocs/*_frees)\n\
     gate under --mem-tol (default 50%, never bit-exact). Both classes\n\
     are informational unless --timing-strict; --mem-strict gates the\n\
     memory class alone, keeping wall clock informational.\n\
     --check-trace validates a Chrome trace_event export instead:\n\
     JSON parse, per-thread monotonic timestamps, balanced B/E events\n\
     (M/thread_name metadata records accepted)."
}

fn fail(msg: &str) -> ExitCode {
    eprintln!("tcdiff: {msg}");
    ExitCode::from(2)
}

fn read(path: &str) -> Result<String, String> {
    std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") || args.is_empty() {
        println!("{}", usage());
        return ExitCode::from(if args.is_empty() { 2 } else { 0 });
    }

    if args[0] == "--check-trace" {
        let Some(path) = args.get(1) else {
            return fail(usage());
        };
        let mut min_threads = 1usize;
        let mut i = 2;
        while i < args.len() {
            match args[i].as_str() {
                "--min-threads" => {
                    let Some(n) = args.get(i + 1).and_then(|v| v.parse().ok()) else {
                        return fail("--min-threads needs an integer");
                    };
                    min_threads = n;
                    i += 2;
                }
                other => return fail(&format!("unknown flag `{other}`\n{}", usage())),
            }
        }
        let text = match read(path) {
            Ok(t) => t,
            Err(e) => return fail(&e),
        };
        return match check_trace(&text, min_threads) {
            Ok(c) => {
                println!(
                    "{path}: valid Chrome trace — {} events on {} thread(s), max depth {}, {} dropped",
                    c.events, c.threads, c.max_depth, c.dropped
                );
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("tcdiff: {path}: {e}");
                ExitCode::from(1)
            }
        };
    }

    let mut paths = Vec::new();
    let mut opts = DiffOptions::default();
    let mut verbose = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--tol" => {
                let Some(t) = args.get(i + 1).and_then(|v| v.parse::<f64>().ok()) else {
                    return fail("--tol needs a fraction, e.g. --tol 0.25");
                };
                if t.is_nan() || t < 0.0 {
                    return fail("--tol must be >= 0");
                }
                opts.tol = t;
                i += 2;
            }
            "--mem-tol" => {
                let Some(t) = args.get(i + 1).and_then(|v| v.parse::<f64>().ok()) else {
                    return fail("--mem-tol needs a fraction, e.g. --mem-tol 0.5");
                };
                if t.is_nan() || t < 0.0 {
                    return fail("--mem-tol must be >= 0");
                }
                opts.mem_tol = t;
                i += 2;
            }
            "--timing-strict" => {
                opts.timing_informational = false;
                i += 1;
            }
            "--mem-strict" => {
                opts.mem_strict = true;
                i += 1;
            }
            "--timing-informational" => {
                opts.timing_informational = true;
                i += 1;
            }
            "--verbose" => {
                verbose = true;
                i += 1;
            }
            other if other.starts_with("--") => {
                return fail(&format!("unknown flag `{other}`\n{}", usage()))
            }
            path => {
                paths.push(path.to_string());
                i += 1;
            }
        }
    }
    if paths.len() != 2 {
        return fail(usage());
    }

    let (ta, tb) = match (read(&paths[0]), read(&paths[1])) {
        (Ok(a), Ok(b)) => (a, b),
        (Err(e), _) | (_, Err(e)) => return fail(&e),
    };
    let a = match JsonValue::parse(&ta) {
        Ok(v) => v,
        Err(e) => return fail(&format!("{}: {e}", paths[0])),
    };
    let b = match JsonValue::parse(&tb) {
        Ok(v) => v,
        Err(e) => return fail(&format!("{}: {e}", paths[1])),
    };
    if let Err((va, vb)) = check_schema(&a, &b) {
        return fail(&format!(
            "schema_version mismatch: baseline {va} vs candidate {vb}"
        ));
    }

    let report = diff(&a, &b, &opts);
    print!("{}", report.render(verbose));
    if report.ok() {
        println!("PASS: {} vs {}", paths[0], paths[1]);
        ExitCode::SUCCESS
    } else {
        println!("FAIL: {} vs {}", paths[0], paths[1]);
        ExitCode::from(1)
    }
}
