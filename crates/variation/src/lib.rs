#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! # tc-variation — Monte Carlo variation analysis
//!
//! The statistical backbone of the paper's modeling arguments:
//!
//! * [`mc`] — seeded Monte Carlo over path delay with skew-normal local
//!   variation, reproducing the asymmetric ("setup long tail")
//!   distribution of **Fig 7**, plus whole-netlist BEOL Monte Carlo
//!   driving `tc-sta` with per-layer samples.
//! * [`models`] — the §3.1 accuracy ladder: predicted +3σ/−3σ path delay
//!   under flat OCV, AOCV, POCV and LVF, compared against Monte Carlo
//!   ground truth (LVF's per-(slew,load) sigmas and split late/early
//!   values make it the most accurate — the paper's conclusion).
//! * [`tbc`] — Tightened BEOL Corners (**Fig 8**, ref \[2\]): the
//!   pessimism metric `α = 3σ / Δd(corner)`, corner-dominance scatter,
//!   and threshold-based selection of paths that can sign off at
//!   tightened corners.
//!
//! # Examples
//!
//! ```
//! use tc_variation::mc::{PathModel, StageModel};
//!
//! let path = PathModel::uniform(12, 20.0, 0.05, 3.0);
//! let samples = path.monte_carlo(5_000, 42);
//! let t = tc_core::stats::tail_sigmas(&samples);
//! assert!(t.late > t.early); // the setup long tail
//! ```

pub mod mc;
pub mod models;
pub mod tbc;

pub use mc::{PathModel, StageModel};
pub use models::{model_accuracy, AccuracyRow};
pub use tbc::{alpha_for_path, PathBeolProfile, TbcStudy};
