//! Library cells: pins, timing arcs, power and area.

use tc_core::lut::Lut2;
use tc_core::units::{Ff, Ps};
use tc_device::VtClass;

use crate::flop::FlopTiming;
use crate::nldm::CellTemplate;
use crate::variation::{LvfTable, PocvSigma};

/// Broad functional class of a cell.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CellKind {
    /// Combinational gate (including buffers/inverters).
    Comb,
    /// Edge-triggered flip-flop.
    Flop,
}

/// One input→output timing arc with its NLDM tables and optional LVF
/// sigma tables.
#[derive(Clone, Debug)]
pub struct TimingArc {
    /// Input pin name ("A", "B", … or "CK" for a flop's c2q arc).
    pub input: String,
    /// Arc delay table: rows = input slew (ps), cols = load (fF).
    pub delay: Lut2,
    /// Output slew table on the same axes.
    pub out_slew: Lut2,
    /// LVF sigma tables, if the library carries them.
    pub lvf: Option<LvfTable>,
}

impl TimingArc {
    /// Arc delay at an operating point.
    pub fn delay_at(&self, slew_ps: f64, load_ff: f64) -> Ps {
        Ps::new(self.delay.eval(slew_ps, load_ff))
    }

    /// Output slew at an operating point.
    pub fn out_slew_at(&self, slew_ps: f64, load_ff: f64) -> Ps {
        Ps::new(self.out_slew.eval(slew_ps, load_ff))
    }
}

/// A library cell (a "master"): one drive/Vt variant of a template.
#[derive(Clone, Debug)]
pub struct LibCell {
    /// Full library name, e.g. `NAND2_X2_LVT`.
    pub name: String,
    /// The underlying topology template.
    pub template: &'static CellTemplate,
    /// Functional class.
    pub kind: CellKind,
    /// Threshold flavour.
    pub vt: VtClass,
    /// Drive strength multiplier (the `X` number).
    pub drive: f64,
    /// Capacitance presented by each input pin.
    pub input_cap: Ff,
    /// Footprint in placement sites.
    pub area_sites: f64,
    /// Static leakage power at the library corner, µW.
    pub leakage_uw: f64,
    /// Energy per output switch at the library corner, fJ per fF of load
    /// plus the internal term, as `(per_ff, internal)`.
    pub switch_energy_fj: (f64, f64),
    /// Timing arcs: one per input pin for combinational cells; the CK→Q
    /// arc for flops.
    pub arcs: Vec<TimingArc>,
    /// Sequential constraint data (flops only).
    pub flop: Option<FlopTiming>,
    /// POCV per-cell sigma.
    pub pocv: PocvSigma,
}

impl LibCell {
    /// The arc driven from the given input pin.
    pub fn arc_from(&self, pin: &str) -> Option<&TimingArc> {
        self.arcs.iter().find(|a| a.input == pin)
    }

    /// Worst (slowest) arc delay across all inputs at an operating point.
    pub fn worst_delay(&self, slew_ps: f64, load_ff: f64) -> Ps {
        self.arcs
            .iter()
            .map(|a| a.delay_at(slew_ps, load_ff))
            .fold(Ps::ZERO, Ps::max)
    }

    /// Input pin names for this cell ("A", "B", … / "D", "CK").
    pub fn input_pins(&self) -> Vec<&'static str> {
        match self.kind {
            CellKind::Flop => vec!["D", "CK"],
            CellKind::Comb => {
                const NAMES: [&str; 4] = ["A", "B", "C", "D"];
                NAMES[..self.template.inputs].to_vec()
            }
        }
    }

    /// Dynamic energy of one output switch into `load_ff`, in fJ.
    pub fn switch_energy(&self, load_ff: f64) -> f64 {
        self.switch_energy_fj.0 * load_ff + self.switch_energy_fj.1
    }

    /// `true` if this cell is a buffer or inverter (usable for buffering
    /// fixes in the closure loop).
    pub fn is_buffer_like(&self) -> bool {
        matches!(self.template.name, "BUF" | "INV")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corner::PvtCorner;
    use crate::library::{LibConfig, Library};

    fn lib() -> Library {
        Library::generate(&LibConfig::default(), &PvtCorner::typical())
    }

    #[test]
    fn arc_lookup_by_pin() {
        let lib = lib();
        let nand = lib.cell_named("NAND2_X1_SVT").unwrap();
        assert!(nand.arc_from("A").is_some());
        assert!(nand.arc_from("B").is_some());
        assert!(nand.arc_from("Z").is_none());
        assert_eq!(nand.input_pins(), vec!["A", "B"]);
    }

    #[test]
    fn flop_pins_and_arcs() {
        let lib = lib();
        let dff = lib.cell_named("DFF_X1_SVT").unwrap();
        assert_eq!(dff.kind, CellKind::Flop);
        assert_eq!(dff.input_pins(), vec!["D", "CK"]);
        assert!(dff.arc_from("CK").is_some(), "flop carries a c2q arc");
        assert!(dff.flop.is_some());
    }

    #[test]
    fn worst_delay_covers_all_arcs() {
        let lib = lib();
        let aoi = lib.cell_named("AOI21_X1_SVT").unwrap();
        let w = aoi.worst_delay(20.0, 4.0);
        for a in &aoi.arcs {
            assert!(a.delay_at(20.0, 4.0) <= w);
        }
    }

    #[test]
    fn switch_energy_grows_with_load() {
        let lib = lib();
        let inv = lib.cell_named("INV_X1_SVT").unwrap();
        assert!(inv.switch_energy(10.0) > inv.switch_energy(1.0));
        assert!(inv.switch_energy(0.0) > 0.0, "internal energy nonzero");
    }

    #[test]
    fn buffer_detection() {
        let lib = lib();
        assert!(lib.cell_named("BUF_X2_SVT").unwrap().is_buffer_like());
        assert!(!lib.cell_named("NOR2_X1_SVT").unwrap().is_buffer_like());
    }
}
