//! The `tc_lint` CLI: static design-rule analysis over a structural-
//! Verilog design and its side files, without running STA.
//!
//! ```text
//! tc_lint --verilog design.v [--spef design.spef] [--liberty lib.lib]
//!         [--journal eco.tcj] [--waivers baseline.tcw]
//!         [--clock-period PS] [--no-clock] [--json] [--quiet]
//! tc_lint --rules
//! ```
//!
//! Exit codes follow the `tcdiff` gate contract: `0` — clean (no
//! unwaived findings); `1` — findings remain after waivers; `2` —
//! usage, I/O, or parse error with nothing actionable to report.
//! When the source scan already explains why a parse failed (a
//! multi-driven or undriven net), the findings are the diagnosis and
//! the exit is `1`, not `2`.

use std::process::ExitCode;

use tc_interconnect::{parse_spef, BeolStack};
use tc_liberty::{LibConfig, Library, PvtCorner};
use tc_lint::{apply_waivers, decode_waivers, render_text, run_lint, LintContext, Severity, RULES};
use tc_netlist::{decode_journal, parse_verilog};
use tc_obs::JsonValue;
use tc_par::Pool;
use tc_sta::constraints::Constraints;

fn usage() -> &'static str {
    "usage: tc_lint --verilog design.v [--spef design.spef] [--liberty lib.lib]\n\
     \x20      [--journal eco.tcj] [--waivers baseline.tcw]\n\
     \x20      [--clock-period PS] [--no-clock] [--json] [--quiet]\n\
     \x20      tc_lint --rules\n\
     \n\
     Static design-rule analysis: connectivity, clocking, SPEF/netlist\n\
     cross-checks, Liberty table sanity, ECO-journal liveness. Runs no\n\
     timing. Exit 0 = clean, 1 = unwaived findings, 2 = usage/IO error.\n\
     --no-clock skips the constraint rules; --clock-period sets the\n\
     single-clock period used for them (default 500 ps). --rules prints\n\
     the rule catalog."
}

fn fail(msg: &str) -> ExitCode {
    eprintln!("tc_lint: {msg}");
    ExitCode::from(2)
}

fn read(path: &str) -> Result<String, String> {
    std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))
}

/// Trailing path component, used as the findings' source label.
fn label(path: &str) -> &str {
    path.rsplit('/').next().unwrap_or(path)
}

struct Args {
    verilog: Option<String>,
    spef: Option<String>,
    liberty: Option<String>,
    journal: Option<String>,
    waivers: Option<String>,
    clock_period: f64,
    no_clock: bool,
    json: bool,
    quiet: bool,
}

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut args = Args {
        verilog: None,
        spef: None,
        liberty: None,
        journal: None,
        waivers: None,
        clock_period: 500.0,
        no_clock: false,
        json: false,
        quiet: false,
    };
    fn path_arg(argv: &[String], i: usize) -> Result<String, String> {
        argv.get(i + 1)
            .cloned()
            .ok_or_else(|| format!("{} needs a path", argv[i]))
    }
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--verilog" => {
                args.verilog = Some(path_arg(argv, i)?);
                i += 2;
            }
            "--spef" => {
                args.spef = Some(path_arg(argv, i)?);
                i += 2;
            }
            "--liberty" => {
                args.liberty = Some(path_arg(argv, i)?);
                i += 2;
            }
            "--journal" => {
                args.journal = Some(path_arg(argv, i)?);
                i += 2;
            }
            "--waivers" => {
                args.waivers = Some(path_arg(argv, i)?);
                i += 2;
            }
            "--clock-period" => {
                args.clock_period = argv
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .filter(|p: &f64| *p > 0.0)
                    .ok_or_else(|| "--clock-period needs a positive number of ps".to_string())?;
                i += 2;
            }
            "--no-clock" => {
                args.no_clock = true;
                i += 1;
            }
            "--json" => {
                args.json = true;
                i += 1;
            }
            "--quiet" => {
                args.quiet = true;
                i += 1;
            }
            other => return Err(format!("unknown flag `{other}`\n{}", usage())),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.is_empty() || argv.iter().any(|a| a == "--help" || a == "-h") {
        println!("{}", usage());
        return ExitCode::from(if argv.is_empty() { 2 } else { 0 });
    }
    if argv.iter().any(|a| a == "--rules") {
        for r in RULES {
            println!("{} {:7} {}", r.code, r.severity.label(), r.title);
        }
        return ExitCode::SUCCESS;
    }

    let args = match parse_args(&argv) {
        Ok(a) => a,
        Err(e) => return fail(&e),
    };
    let Some(vpath) = args.verilog.as_deref() else {
        return fail(&format!("--verilog is required\n{}", usage()));
    };
    let vtext = match read(vpath) {
        Ok(t) => t,
        Err(e) => return fail(&e),
    };

    let lib = Library::generate(&LibConfig::default(), &PvtCorner::typical());

    // The source scan runs before the parse: if the parse then fails
    // because of a defect the scan already explains, the findings are
    // the report and the exit is 1.
    let source_findings = tc_lint::lint_verilog_source(&vtext, label(vpath));
    let netlist = match parse_verilog(&vtext, &lib) {
        Ok(nl) => nl,
        Err(e) => {
            if source_findings.is_empty() {
                return fail(&format!("{vpath}: {e}"));
            }
            eprintln!("tc_lint: note: {vpath} does not parse ({e}); reporting the scan findings");
            return report(source_findings, &args);
        }
    };

    let spef = match args.spef.as_deref() {
        None => None,
        Some(p) => match read(p)
            .and_then(|t| parse_spef(&t, &BeolStack::n20()).map_err(|e| format!("{p}: {e}")))
        {
            Ok(s) => Some(s),
            Err(e) => return fail(&e),
        },
    };
    let liberty = match args.liberty.as_deref() {
        None => None,
        Some(p) => match read(p) {
            Ok(t) => Some((t, label(p).to_string())),
            Err(e) => return fail(&e),
        },
    };
    let journal = match args.journal.as_deref() {
        None => None,
        Some(p) => {
            match read(p).and_then(|t| decode_journal(&t).map_err(|e| format!("{p}: {e}"))) {
                Ok(j) => Some(j),
                Err(e) => return fail(&e),
            }
        }
    };
    let constraints = (!args.no_clock).then(|| Constraints::single_clock(args.clock_period));

    let mut ctx = LintContext::new(&netlist, &lib);
    ctx.verilog = Some((&vtext, label(vpath)));
    ctx.constraints = constraints.as_ref();
    ctx.spef = spef.as_deref();
    ctx.liberty = liberty.as_ref().map(|(t, l)| (t.as_str(), l.as_str()));
    ctx.journal = journal.as_deref();

    // `run_lint` re-runs the source pass; feed it through the engine so
    // ordering and telemetry stay uniform, not the pre-scan copy.
    let findings = run_lint(&Pool::from_env(), &ctx);
    report(findings, &args)
}

/// Applies waivers, prints the report, and maps findings to the exit
/// code.
fn report(findings: Vec<tc_lint::Diagnostic>, args: &Args) -> ExitCode {
    let waivers = match args.waivers.as_deref() {
        None => Vec::new(),
        Some(p) => {
            match read(p).and_then(|t| decode_waivers(&t).map_err(|e| format!("{p}: {e}"))) {
                Ok(w) => w,
                Err(e) => return fail(&e),
            }
        }
    };
    let outcome = apply_waivers(findings, &waivers);

    if args.json {
        let json = JsonValue::obj([
            ("active", tc_lint::render_json(&outcome.active)),
            (
                "waived",
                JsonValue::Arr(outcome.waived.iter().map(|(d, _)| d.to_json()).collect()),
            ),
            (
                "unused_waivers",
                JsonValue::Arr(
                    outcome
                        .unused
                        .iter()
                        .map(|&i| JsonValue::Num(i as f64))
                        .collect(),
                ),
            ),
        ]);
        println!("{}", json.render());
    } else if !args.quiet {
        print!("{}", render_text(&outcome.active));
        let errors = outcome
            .active
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .count();
        let warnings = outcome.active.len() - errors;
        println!(
            "tc_lint: {} error(s), {} warning(s), {} waived, {} stale waiver(s)",
            errors,
            warnings,
            outcome.waived.len(),
            outcome.unused.len()
        );
    }
    if outcome.active.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
