// Clean admission-control corpus: every net driven exactly once and
// observed, one clock, registered feedback only.
module small (clk, a, b, y, q);
  input clk;
  input a;
  input b;
  output y;
  output q;
  wire n1;
  wire d1;
  wire q1;

  NAND2_X1_SVT g1 (.A(a), .B(b), .Y(n1));
  INV_X1_SVT g2 (.A(n1), .Y(d1));
  DFF_X1_SVT r1 (.D(d1), .CK(clk), .Y(q1));
  BUF_X1_SVT g3 (.A(q1), .Y(q));
  NOR2_X1_SVT g4 (.A(q1), .B(a), .Y(y));
endmodule
