//! Variation-model accuracy comparison (paper §3.1).
//!
//! Given a path, each modeling standard predicts the +3σ (late) path
//! delay differently:
//!
//! * **flat OCV** — `1.08 × Σ nominal` regardless of structure;
//! * **AOCV** — `derate(depth) × Σ nominal`, structure-aware but
//!   "one derate per depth" and relative to nominal;
//! * **POCV** — `Σ nominal + 3·√(Σ (σ_cell·d)²)`, per-cell sigma;
//! * **LVF** — like POCV but with per-stage (slew, load)-resolved sigmas
//!   and separate late/early values.
//!
//! Monte Carlo over the same path is the ground truth. The experiment
//! regenerates the paper's argument that LVF tracks MC better than the
//! relative-margin OCV formats.

use tc_core::stats::quantile;
use tc_liberty::{AocvTable, PocvSigma};

use crate::mc::PathModel;

/// Predicted and true +3σ/−3σ path delays under each standard.
#[derive(Clone, Debug)]
pub struct AccuracyRow {
    /// Number of stages in the path.
    pub stages: usize,
    /// Nominal path delay, ps.
    pub nominal: f64,
    /// Monte Carlo +3σ (99.865 %) delay — the ground truth.
    pub mc_late: f64,
    /// Monte Carlo −3σ (0.135 %) delay.
    pub mc_early: f64,
    /// Flat-OCV prediction of the late delay.
    pub flat: f64,
    /// AOCV prediction.
    pub aocv: f64,
    /// POCV prediction.
    pub pocv: f64,
    /// LVF prediction (split sigmas), late side.
    pub lvf_late: f64,
    /// LVF prediction, early side.
    pub lvf_early: f64,
}

impl AccuracyRow {
    /// Relative error of each model vs MC late truth, in percent:
    /// `(flat, aocv, pocv, lvf)`.
    pub fn errors_pct(&self) -> (f64, f64, f64, f64) {
        let e = |m: f64| 100.0 * (m - self.mc_late) / self.mc_late;
        (e(self.flat), e(self.aocv), e(self.pocv), e(self.lvf_late))
    }
}

/// Runs the accuracy comparison for one path.
///
/// `lvf_sigma_scale` models LVF's per-point characterization fidelity:
/// its sigmas match the true per-stage sigmas exactly (scale 1.0), while
/// POCV uses the single library-wide number in `pocv`.
pub fn model_accuracy(
    path: &PathModel,
    aocv: &AocvTable,
    pocv: &PocvSigma,
    samples: usize,
    seed: u64,
) -> AccuracyRow {
    let nominal = path.nominal();
    let mc = path.monte_carlo(samples, seed);
    let mc_late = quantile(&mc, 0.99865);
    let mc_early = quantile(&mc, 0.00135);

    let flat = 1.08 * nominal;
    let aocv_pred = aocv.late_derate(path.stages.len(), 0.0) * nominal;

    let pocv_var: f64 = path
        .stages
        .iter()
        .map(|s| {
            let sig = pocv.late * s.nominal;
            sig * sig
        })
        .sum();
    let pocv_pred = nominal + 3.0 * pocv_var.sqrt();

    // LVF knows each stage's true sigma and the late/early split. The
    // skew-normal late tail is wider than 1σ·3 by the tail ratio; LVF
    // captures that through its separately characterized late sigma.
    let (lvf_late_var, lvf_early_var) = path.stages.iter().fold((0.0, 0.0), |(l, e), s| {
        // Per-stage split sigmas measured from the stage's own
        // distribution (what an LVF characterization run does).
        let one = PathModel { stages: vec![*s] };
        let t = one.tail_sigmas(4_000, seed ^ 0x5f5f);
        (l + t.late * t.late, e + t.early * t.early)
    });
    let lvf_late = nominal + 3.0 * lvf_late_var.sqrt();
    let lvf_early = nominal - 3.0 * lvf_early_var.sqrt();

    AccuracyRow {
        stages: path.stages.len(),
        nominal,
        mc_late,
        mc_early,
        flat,
        aocv: aocv_pred,
        pocv: pocv_pred,
        lvf_late,
        lvf_early,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (AocvTable, PocvSigma) {
        (AocvTable::from_stage_sigma(0.05), PocvSigma::standard())
    }

    #[test]
    fn lvf_tracks_mc_best_on_skewed_paths() {
        let (aocv, pocv) = setup();
        let path = PathModel::uniform(16, 20.0, 0.05, 4.0);
        let row = model_accuracy(&path, &aocv, &pocv, 60_000, 9);
        let (e_flat, e_aocv, e_pocv, e_lvf) = row.errors_pct();
        assert!(
            e_lvf.abs() < e_flat.abs(),
            "LVF ({e_lvf}%) must beat flat ({e_flat}%)"
        );
        assert!(
            e_lvf.abs() < e_pocv.abs() + 0.5,
            "LVF ({e_lvf}%) must be at least as good as POCV ({e_pocv}%)"
        );
        let _ = e_aocv;
        assert!(e_lvf.abs() < 2.0, "LVF within 2% of MC, got {e_lvf}%");
    }

    #[test]
    fn flat_ocv_overmargins_deep_paths() {
        let (aocv, pocv) = setup();
        let deep = PathModel::uniform(32, 20.0, 0.05, 2.0);
        let row = model_accuracy(&deep, &aocv, &pocv, 40_000, 10);
        // Statistical averaging: true 3σ excess on 32 stages is ~8%/√32;
        // flat 8% is several times too much.
        assert!(
            row.flat > row.mc_late,
            "flat must overmargin: {} vs {}",
            row.flat,
            row.mc_late
        );
        // AOCV narrows that gap.
        assert!((row.aocv - row.mc_late).abs() < (row.flat - row.mc_late).abs());
    }

    #[test]
    fn early_side_is_captured_by_lvf() {
        let (aocv, pocv) = setup();
        let path = PathModel::uniform(12, 20.0, 0.06, 4.0);
        let row = model_accuracy(&path, &aocv, &pocv, 60_000, 11);
        let err = 100.0 * (row.lvf_early - row.mc_early) / row.mc_early;
        assert!(err.abs() < 2.5, "LVF early within 2.5%, got {err}%");
        // Asymmetry: late excess exceeds early deficit.
        assert!(
            row.mc_late - row.nominal > row.nominal - row.mc_early,
            "setup long tail in ground truth"
        );
    }
}
