//! Randomized cross-crate invariants (formerly proptest; now driven by
//! the in-tree deterministic RNG so offline builds need no external
//! dependencies).
//!
//! These encode the structural guarantees DESIGN.md calls out: PBA never
//! more pessimistic than GBA, slack moving 1:1 with the clock period,
//! ECO edits preserving netlist validity, deterministic generation, and
//! monotone responses to load/length.

use tc_core::ids::NetId;
use tc_core::rng::Rng;
use tc_core::units::{Ff, Kohm};
use timing_closure::interconnect::beol::BeolStack;
use timing_closure::interconnect::rctree::RcTree;
use timing_closure::liberty::{AocvTable, DerateModel, LibConfig, Library, PvtCorner};
use timing_closure::netlist::gen::{generate, BenchProfile};
use timing_closure::sta::pba::pba_worst_endpoints;
use timing_closure::sta::{Constraints, Sta};

fn env() -> (Library, BeolStack) {
    (
        Library::generate(&LibConfig::default(), &PvtCorner::typical()),
        BeolStack::n20(),
    )
}

/// Cases per randomized invariant (proptest ran 8).
const CASES: u64 = 8;

#[test]
fn pba_never_below_gba() {
    let (lib, stack) = env();
    let mut rng = Rng::seed_from(0x1a01);
    for _ in 0..CASES {
        let seed = rng.next_u64() % 500;
        let depth_sigma = rng.uniform_in(0.02, 0.08);
        let nl = generate(&lib, BenchProfile::tiny(), seed).unwrap();
        let cons = Constraints::single_clock(900.0)
            .with_derate(DerateModel::Aocv(AocvTable::from_stage_sigma(depth_sigma)));
        let sta = Sta::new(&nl, &lib, &stack, &cons);
        for r in pba_worst_endpoints(&sta, 8).unwrap() {
            assert!(
                r.pba_slack.value() >= r.gba_slack.value() - 0.5,
                "pba {} < gba {} (seed {seed})",
                r.pba_slack,
                r.gba_slack
            );
        }
    }
}

#[test]
fn slack_shifts_one_to_one_with_period() {
    let (lib, stack) = env();
    let mut rng = Rng::seed_from(0x1a02);
    for _ in 0..CASES {
        let seed = rng.next_u64() % 500;
        let delta = rng.uniform_in(10.0, 800.0);
        let nl = generate(&lib, BenchProfile::tiny(), seed).unwrap();
        let base = Constraints::single_clock(1_000.0);
        let wide = Constraints::single_clock(1_000.0 + delta);
        let w0 = Sta::new(&nl, &lib, &stack, &base).run().unwrap().wns();
        let w1 = Sta::new(&nl, &lib, &stack, &wide).run().unwrap().wns();
        assert!(((w1 - w0).value() - delta).abs() < 1e-6);
    }
}

#[test]
fn generation_is_reproducible() {
    let (lib, _) = env();
    let mut rng = Rng::seed_from(0x1a03);
    for _ in 0..CASES {
        let seed = rng.next_u64() % 1000;
        let a = generate(&lib, BenchProfile::tiny(), seed).unwrap();
        let b = generate(&lib, BenchProfile::tiny(), seed).unwrap();
        assert_eq!(a.cell_count(), b.cell_count());
        for (ca, cb) in a.cells().zip(b.cells()) {
            assert_eq!(ca.master, cb.master);
            assert_eq!(&ca.inputs, &cb.inputs);
        }
    }
}

#[test]
fn wire_stretch_never_improves_wns() {
    let (lib, stack) = env();
    let mut rng = Rng::seed_from(0x1a04);
    for _ in 0..CASES {
        let seed = rng.next_u64() % 300;
        let stretch = rng.uniform_in(1.1, 6.0);
        let mut nl = generate(&lib, BenchProfile::tiny(), seed).unwrap();
        let cons = Constraints::single_clock(1_000.0);
        let before = Sta::new(&nl, &lib, &stack, &cons).run().unwrap().wns();
        let lengths: Vec<f64> = nl.nets().map(|n| n.wire_length_um).collect();
        for (i, len) in lengths.into_iter().enumerate() {
            nl.set_wire_length(NetId::new(i), len * stretch);
        }
        let after = Sta::new(&nl, &lib, &stack, &cons).run().unwrap().wns();
        assert!(after <= before + tc_core::units::Ps::new(1e-6));
    }
}

#[test]
fn elmore_monotone_under_added_cap() {
    let mut rng = Rng::seed_from(0x1a05);
    for _ in 0..64 {
        let (r1, r2) = (rng.uniform_in(0.1, 5.0), rng.uniform_in(0.1, 5.0));
        let (c1, c2) = (rng.uniform_in(0.5, 10.0), rng.uniform_in(0.5, 10.0));
        let extra = rng.uniform_in(0.1, 20.0);
        let mut t = RcTree::new(Ff::new(0.2));
        let a = t.add_node(0, Kohm::new(r1), Ff::new(c1));
        let b = t.add_node(a, Kohm::new(r2), Ff::new(c2));
        let before = t.elmore(b).unwrap();
        t.add_cap(a, Ff::new(extra));
        let after = t.elmore(b).unwrap();
        assert!(after > before);
        // D2M stays below Elmore.
        assert!(t.d2m(b).unwrap() <= after);
    }
}

#[test]
fn mc_seeds_are_deterministic_and_distinct() {
    let mut rng = Rng::seed_from(0x1a06);
    for _ in 0..CASES {
        let seed = rng.next_u64() % 1000;
        let path = timing_closure::variation::mc::PathModel::uniform(8, 20.0, 0.05, 2.0);
        let a = path.monte_carlo(500, seed);
        let b = path.monte_carlo(500, seed);
        assert_eq!(&a, &b);
        let c = path.monte_carlo(500, seed ^ 0xdead_beef);
        assert_ne!(&a, &c);
    }
}

#[test]
fn eco_edits_preserve_validity_under_stress() {
    // Hammer the three ECO surfaces in interleaved order and validate.
    let (lib, stack) = env();
    let mut nl = generate(&lib, BenchProfile::tiny(), 77).unwrap();
    let cons = Constraints::single_clock(700.0);
    let mut rng = tc_core::rng::Rng::seed_from(123);
    for round in 0..6 {
        // Random master swaps.
        for _ in 0..10 {
            let cell = tc_core::ids::CellId::new(rng.below(nl.cell_count()));
            let cur = nl.cell(cell).master;
            let target = if rng.chance(0.5) {
                lib.vt_faster(cur).or_else(|| lib.vt_slower(cur))
            } else {
                lib.upsize(cur).or_else(|| lib.downsize(cur))
            };
            if let Some(m) = target {
                nl.swap_master(&lib, cell, m).unwrap();
            }
        }
        // Random NDR flips.
        for _ in 0..5 {
            let net = NetId::new(rng.below(nl.net_count()));
            nl.set_route_class(net, (round % 3) as u8);
        }
        // A buffer insertion on some multi-sink net.
        let candidate = (0..nl.net_count())
            .map(NetId::new)
            .find(|&n| nl.net(n).sinks.len() >= 2 && nl.net(n).driver.is_some());
        if let Some(net) = candidate {
            let sinks = vec![nl.net(net).sinks[0]];
            let buf = lib
                .variant("BUF", timing_closure::device::VtClass::Svt, 2.0)
                .unwrap();
            nl.insert_buffer(&lib, net, &sinks, buf).unwrap();
        }
        nl.validate(&lib).unwrap();
        // STA must still run after every round.
        Sta::new(&nl, &lib, &stack, &cons).run().unwrap();
    }
}
