//! Integration coverage for the tc-obs layer as threaded through the
//! engines: a closure run must leave behind per-iteration spans, STA
//! counters, and — via the transistor-level flip-flop characterizer —
//! solver Newton counters. Runs in its own test binary so the global
//! registry reset cannot race other tests.

use std::sync::Mutex;

use tc_core::units::Ps;
use timing_closure::closure::flow::{ClosureConfig, ClosureFlow};
use timing_closure::interconnect::beol::BeolStack;
use timing_closure::liberty::{LibConfig, Library, PvtCorner};
use timing_closure::netlist::gen::{generate, BenchProfile};
use timing_closure::sta::{Constraints, Sta};

/// The tests flip the process-global enabled flag and reset the shared
/// registry, so they must not interleave.
static OBS_LOCK: Mutex<()> = Mutex::new(());

#[test]
fn closure_run_produces_spans_and_engine_counters() {
    let _g = OBS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let lib = Library::generate(&LibConfig::default(), &PvtCorner::typical());
    let stack = BeolStack::n20();
    let mut nl = generate(&lib, BenchProfile::tiny(), 33).unwrap();

    // Constrain 40 ps beyond capability so at least one iteration runs.
    let probe = Constraints::single_clock(5_000.0);
    let wns = Sta::new(&nl, &lib, &stack, &probe)
        .run()
        .unwrap()
        .wns()
        .value();
    let cons = Constraints::single_clock(5_000.0 - wns - 40.0);

    tc_obs::enable();
    tc_obs::reset();
    let cfg = ClosureConfig {
        max_iterations: 2,
        ..Default::default()
    };
    let mut flow = ClosureFlow::new(&lib, &stack, cfg);
    let out = flow.run(&mut nl, cons).unwrap();
    let snap = tc_obs::snapshot();
    tc_obs::disable();

    assert!(!out.iterations.is_empty(), "must iterate at least once");

    // Per-iteration spans under the run span.
    let run = snap.span("closure.run").expect("closure.run span");
    assert_eq!(run.count, 1);
    let iter = snap
        .span("closure.run/closure.iteration")
        .expect("per-iteration span");
    assert!(iter.count >= out.iterations.len() as u64);
    assert!(
        iter.total_ns <= run.total_ns,
        "children cannot exceed the parent"
    );
    // STA ran nested inside the loop: the persistent timer's initial
    // full propagation under the run span, then incremental dirty-cone
    // updates under each iteration's speculative fix checks.
    let sta_full = snap
        .span("closure.run/closure.sta/sta.gba")
        .expect("initial full propagation span");
    assert!(sta_full.count >= 1);
    let sta_incr = snap
        .span("closure.run/closure.iteration/closure.sta/sta.incremental")
        .expect("nested incremental update span");
    assert!(sta_incr.count >= 1, "fix checks re-time incrementally");
    let cone = snap
        .histograms
        .iter()
        .find(|h| h.name == "sta.dirty_cone_size")
        .expect("dirty-cone histogram");
    assert!(cone.count >= sta_incr.count);
    // At least one fix pass span exists.
    assert!(
        snap.spans
            .iter()
            .any(|s| s.name().starts_with("closure.fix.")),
        "no fix-pass spans in {:?}",
        snap.spans.iter().map(|s| &s.path).collect::<Vec<_>>()
    );

    // Engine counters are live and non-zero.
    assert!(snap.counter("sta.arcs_evaluated") > 0);
    assert!(snap.counter("sta.nets_propagated") > 0);
    assert!(snap.counter("sta.arcs_recomputed") > 0, "updates did work");
    assert!(snap.counter("sta.arcs_reused") > 0, "cones stayed local");
    assert!(snap.counter("closure.edits") > 0, "fixes commit edits");

    // IterationRecord carries elapsed time and counter deltas, and the
    // deltas sum to no more than the totals.
    let mut arcs_delta = 0;
    for it in &out.iterations {
        assert!(it.elapsed_ms > 0.0);
        let engine_work = it.counter_delta("sta.arcs_recomputed")
            + it.counter_delta("sta.arcs_evaluated")
            + it.counter_delta("sta.pba.stages");
        assert!(engine_work > 0, "iteration must do engine work");
        arcs_delta += it.counter_delta("sta.arcs_recomputed");
    }
    assert!(arcs_delta <= snap.counter("sta.arcs_recomputed"));

    // The exporters accept the real snapshot.
    let text = snap.render_text();
    assert!(text.contains("closure.run"));
    assert!(text.contains("sta.arcs_evaluated"));
    let json = snap.to_json();
    assert!(json.contains("\"closure.run\""));
}

#[test]
fn transient_solver_records_newton_effort() {
    use timing_closure::device::Technology;
    use timing_closure::sim::ff_char::{c2q_at, FfBench};

    let _g = OBS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    tc_obs::enable();
    let before = tc_obs::snapshot();
    let bench = FfBench::paper_default();
    let tech = Technology::planar_28nm();
    c2q_at(&bench, &tech, Ps::new(60.0), Ps::new(200.0)).unwrap();
    let after = tc_obs::snapshot();
    tc_obs::disable();

    let deltas = after.counter_deltas(&before);
    let delta = |name: &str| {
        deltas
            .iter()
            .find(|(n, _)| n == name)
            .map_or(0, |&(_, v)| v)
    };
    let steps = delta("sim.newton.steps");
    let iters = delta("sim.newton.iters");
    assert!(steps > 0, "transient must record steps");
    assert!(iters >= steps, "every step takes at least one iteration");

    let hist = after
        .histograms
        .iter()
        .find(|h| h.name == "sim.newton.iters_per_step")
        .expect("iters-per-step histogram");
    assert!(hist.count > 0);
    assert!(hist.mean() >= 1.0);
    let span = after.span("sim.transient").expect("sim.transient span");
    assert!(span.count >= 1);
}

#[test]
fn disabled_instrumentation_records_nothing() {
    let _g = OBS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    tc_obs::disable();
    let lib = Library::generate(&LibConfig::default(), &PvtCorner::typical());
    let stack = BeolStack::n20();
    let nl = generate(&lib, BenchProfile::tiny(), 5).unwrap();
    let cons = Constraints::single_clock(900.0);
    let before = tc_obs::snapshot();
    Sta::new(&nl, &lib, &stack, &cons).run().unwrap();
    let after = tc_obs::snapshot();
    assert!(
        after.counter_deltas(&before).is_empty(),
        "disabled counters must not move"
    );
}
