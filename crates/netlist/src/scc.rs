//! Strongly-connected components of the combinational graph.
//!
//! Levelization can only report *that* unregistered feedback exists; the
//! cells actually forming the loop are what a designer (or the tc-lint
//! cycle rule) needs to fix it. This module extracts every non-trivial
//! SCC of the flop-bounded combinational graph with an iterative Tarjan
//! walk — O(cells + sinks) time, O(cells) scratch, no recursion, so it
//! is safe on the million-cell scale rungs.

use tc_core::ids::CellId;
use tc_liberty::{CellKind, Library};

use crate::graph::Netlist;

/// Sentinel for "not yet visited" in the Tarjan index column.
const UNVISITED: usize = usize::MAX;

/// Returns every non-trivial strongly-connected component of the
/// combinational graph: components with two or more cells, plus single
/// cells that drive one of their own inputs. Flops are sequential
/// boundaries — a path through a flop does not close a loop.
///
/// Each component is sorted by cell id and the components are ordered by
/// their smallest member, so output is deterministic for a given
/// netlist. An empty result means the graph levelizes.
pub fn combinational_sccs(nl: &Netlist, lib: &Library) -> Vec<Vec<CellId>> {
    let n = nl.cell_count();
    let mut is_flop = vec![false; n];
    for (i, cell) in nl.cells().enumerate() {
        is_flop[i] = lib.cell(cell.master).kind == CellKind::Flop;
    }

    let mut index = vec![UNVISITED; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    // Explicit DFS frames (cell, next sink position) instead of
    // recursion: a 200k-deep combinational chain must not overflow the
    // thread stack just to be diagnosed.
    let mut frames: Vec<(usize, usize)> = Vec::new();
    let mut next_index = 0usize;
    let mut sccs: Vec<Vec<CellId>> = Vec::new();

    for root in 0..n {
        if is_flop[root] || index[root] != UNVISITED {
            continue;
        }
        frames.push((root, 0));
        while let Some(&(v, child)) = frames.last() {
            if child == 0 && index[v] == UNVISITED {
                index[v] = next_index;
                low[v] = next_index;
                next_index += 1;
                stack.push(v);
                on_stack[v] = true;
            }
            let sinks = nl.net(nl.cell(CellId::new(v)).output).sinks;
            let mut ci = child;
            let mut descended = false;
            while ci < sinks.len() {
                let w = sinks[ci].cell.index();
                ci += 1;
                if is_flop[w] {
                    continue;
                }
                if index[w] == UNVISITED {
                    frames.last_mut().expect("frame exists").1 = ci;
                    frames.push((w, 0));
                    descended = true;
                    break;
                }
                if on_stack[w] {
                    low[v] = low[v].min(index[w]);
                }
            }
            if descended {
                continue;
            }
            frames.pop();
            if let Some(&(parent, _)) = frames.last() {
                low[parent] = low[parent].min(low[v]);
            }
            if low[v] == index[v] {
                let mut comp: Vec<CellId> = Vec::new();
                loop {
                    let w = stack.pop().expect("tarjan stack non-empty at root");
                    on_stack[w] = false;
                    comp.push(CellId::new(w));
                    if w == v {
                        break;
                    }
                }
                let self_loop = comp.len() == 1 && {
                    let c = comp[0];
                    nl.net(nl.cell(c).output).sinks.iter().any(|s| s.cell == c)
                };
                if comp.len() > 1 || self_loop {
                    comp.sort_by_key(|c| c.index());
                    sccs.push(comp);
                }
            }
        }
    }
    sccs.sort_by_key(|c| c[0].index());
    sccs
}

/// Renders one component as a bounded, human-readable cell list:
/// `3 cells: u1, u2, u3` (capped at eight names, with a `+k more`
/// suffix), so a pathological million-cell SCC cannot balloon an error
/// message.
pub fn describe_scc(nl: &Netlist, comp: &[CellId]) -> String {
    const MAX_NAMES: usize = 8;
    let names: Vec<&str> = comp
        .iter()
        .take(MAX_NAMES)
        .map(|&c| nl.cell(c).name)
        .collect();
    let mut out = format!(
        "{} cell{}: {}",
        comp.len(),
        if comp.len() == 1 { "" } else { "s" },
        names.join(", ")
    );
    if comp.len() > MAX_NAMES {
        out.push_str(&format!(" (+{} more)", comp.len() - MAX_NAMES));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::PinRef;
    use tc_device::VtClass;
    use tc_liberty::{LibConfig, PvtCorner};

    fn lib() -> Library {
        Library::generate(&LibConfig::default(), &PvtCorner::typical())
    }

    #[test]
    fn clean_designs_have_no_sccs() {
        let lib = lib();
        let nl = crate::gen::generate(&lib, crate::gen::BenchProfile::tiny(), 11).unwrap();
        assert!(combinational_sccs(&nl, &lib).is_empty());
    }

    #[test]
    fn two_cell_loop_is_found_and_named() {
        let lib = lib();
        let mut nl = Netlist::new("bad");
        let a = nl.add_input("a");
        let tmp = nl.add_input("tmp");
        let nand = lib.variant("NAND2", VtClass::Svt, 1.0).unwrap();
        let (u1, n1) = nl.add_cell("u1", &lib, nand, &[a, tmp]).unwrap();
        let (u2, n2) = nl.add_cell("u2", &lib, nand, &[n1, n1]).unwrap();
        nl.rewire_input(PinRef { cell: u1, pin: 1 }, n2);
        let sccs = combinational_sccs(&nl, &lib);
        assert_eq!(sccs.len(), 1);
        assert_eq!(sccs[0], vec![u1, u2]);
        let text = describe_scc(&nl, &sccs[0]);
        assert!(text.contains("u1") && text.contains("u2"), "{text}");
    }

    #[test]
    fn self_loop_is_a_component_of_one() {
        let lib = lib();
        let mut nl = Netlist::new("self");
        let a = nl.add_input("a");
        let nand = lib.variant("NAND2", VtClass::Svt, 1.0).unwrap();
        let (u, out) = nl.add_cell("u", &lib, nand, &[a, a]).unwrap();
        nl.rewire_input(PinRef { cell: u, pin: 1 }, out);
        let sccs = combinational_sccs(&nl, &lib);
        assert_eq!(sccs, vec![vec![u]]);
    }

    #[test]
    fn registered_feedback_is_not_a_cycle() {
        let lib = lib();
        let mut nl = Netlist::new("reg");
        let clk = nl.add_input("clk");
        let d_tmp = nl.add_input("d_tmp");
        let dff = lib.variant("DFF", VtClass::Svt, 1.0).unwrap();
        let inv = lib.variant("INV", VtClass::Svt, 1.0).unwrap();
        let (ff, q) = nl.add_cell("ff", &lib, dff, &[d_tmp, clk]).unwrap();
        let (_g, gout) = nl.add_cell("g", &lib, inv, &[q]).unwrap();
        nl.rewire_input(PinRef { cell: ff, pin: 0 }, gout);
        assert!(combinational_sccs(&nl, &lib).is_empty());
    }
}
