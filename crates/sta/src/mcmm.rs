//! Multi-corner multi-mode (MCMM) scenario management.
//!
//! The paper's §2.3 "corner super-explosion": a complex SoC must close
//! timing at the cross product of functional/test modes, PVT corners and
//! BEOL extraction corners. Each [`Scenario`] bundles one point of that
//! product; [`merge_reports`] folds per-endpoint worst slacks across all
//! of them — the number signoff actually gates on.

// Cold report-merging path: runs once per MCMM sweep over endpoint
// reports, not inside any per-arc loop.
#![allow(clippy::disallowed_types)]

use std::collections::HashMap;
use std::sync::Arc;

use tc_core::error::Result;
use tc_core::units::Ps;
use tc_interconnect::beol::{BeolCorner, BeolStack};
use tc_liberty::Library;
use tc_netlist::Netlist;

use crate::analysis::Sta;
use crate::constraints::Constraints;
use crate::report::{Endpoint, TimingReport};
use crate::timer::{Timer, TimingGraph};

/// One analysis scenario: a mode's constraints at a PVT corner (baked
/// into the library) and a BEOL extraction corner.
#[derive(Clone, Debug)]
pub struct Scenario {
    /// Scenario name, e.g. `func_SSG_0.81V_-30C_RCw`.
    pub name: String,
    /// Library characterized at this scenario's PVT corner.
    pub lib: Library,
    /// BEOL extraction corner.
    pub beol: BeolCorner,
    /// Mode constraints (period, derates, margins).
    pub constraints: Constraints,
}

impl Scenario {
    /// Runs the scenario's STA.
    ///
    /// # Errors
    ///
    /// Propagates analysis failures.
    pub fn run(&self, nl: &Netlist, stack: &BeolStack) -> Result<TimingReport> {
        Sta::new(nl, &self.lib, stack, &self.constraints)
            .with_beol_corner(self.beol)
            .run()
    }
}

/// Per-endpoint worst slack across scenarios, with attribution.
#[derive(Clone, Debug)]
pub struct MergedEndpoint {
    /// The endpoint.
    pub endpoint: Endpoint,
    /// Worst setup slack and the scenario that produced it.
    pub setup: (Ps, String),
    /// Worst hold slack and the scenario that produced it.
    pub hold: (Ps, String),
}

/// The merged signoff view across all scenarios.
#[derive(Clone, Debug)]
pub struct MergedReport {
    /// Per-endpoint worst data.
    pub endpoints: Vec<MergedEndpoint>,
}

impl MergedReport {
    /// Merged worst setup slack.
    pub fn wns(&self) -> Ps {
        self.endpoints
            .iter()
            .map(|e| e.setup.0)
            .fold(Ps::new(f64::INFINITY), Ps::min)
    }

    /// Merged worst hold slack.
    pub fn hold_wns(&self) -> Ps {
        self.endpoints
            .iter()
            .map(|e| e.hold.0)
            .fold(Ps::new(f64::INFINITY), Ps::min)
    }

    /// Count of endpoints violating in *any* scenario.
    pub fn violations(&self) -> usize {
        self.endpoints
            .iter()
            .filter(|e| e.setup.0 < Ps::ZERO || e.hold.0 < Ps::ZERO)
            .count()
    }

    /// How many endpoints each scenario dominates (is the worst for) —
    /// the data behind corner-pruning decisions: a scenario that
    /// dominates nothing is a candidate to drop (§2.3). Endpoints whose
    /// setup check was skipped in every scenario (no finite slack) carry
    /// no attribution and are not counted.
    pub fn dominance(&self) -> HashMap<String, usize> {
        let mut m = HashMap::new();
        for e in &self.endpoints {
            if e.setup.1.is_empty() {
                continue;
            }
            *m.entry(e.setup.1.clone()).or_insert(0) += 1;
        }
        m
    }
}

/// Runs every scenario and merges.
///
/// # Errors
///
/// Propagates the first failing scenario run.
pub fn run_and_merge(
    nl: &Netlist,
    stack: &BeolStack,
    scenarios: &[Scenario],
) -> Result<MergedReport> {
    let mut reports = Vec::with_capacity(scenarios.len());
    for s in scenarios {
        reports.push((s.name.clone(), s.run(nl, stack)?));
    }
    Ok(merge_reports(&reports))
}

/// Runs every scenario over one shared [`TimingGraph`]: the design's
/// connectivity does not vary across corners, so the levelization and
/// sink-index map are derived once instead of once per corner — the
/// fix for the corner super-explosion's *analysis* cost (§2.3). Each
/// corner runs under a `corner.<name>` tracing span.
///
/// # Errors
///
/// Propagates the first failing scenario run.
pub fn run_scenarios_shared(
    nl: &Netlist,
    stack: &BeolStack,
    scenarios: &[Scenario],
) -> Result<Vec<(String, TimingReport)>> {
    run_scenarios_shared_on(tc_par::Pool::from_env(), nl, stack, scenarios)
}

/// [`run_scenarios_shared`] on an explicit worker pool: corners are
/// independent given the shared structure, so each runs as one pool
/// task. Results come back in scenario order regardless of completion
/// order, and the first failing corner (in scenario order) wins error
/// reporting — identical behavior to the sequential loop.
///
/// # Errors
///
/// Propagates the first failing scenario run.
pub fn run_scenarios_shared_on(
    pool: tc_par::Pool,
    nl: &Netlist,
    stack: &BeolStack,
    scenarios: &[Scenario],
) -> Result<Vec<(String, TimingReport)>> {
    let Some(first) = scenarios.first() else {
        return Ok(Vec::new());
    };
    // Levelization depends only on which masters are flops, which is
    // identical across PVT-recharacterized libraries of one design.
    let graph = Arc::new(TimingGraph::build(nl, &first.lib)?);
    pool.scope_map(scenarios, |_, s| {
        let _span = tc_obs::span(&format!("corner.{}", s.name));
        let timer = Timer::with_structure(
            nl,
            &s.lib,
            stack,
            s.constraints.clone(),
            s.beol,
            Arc::clone(&graph),
        )?;
        Ok((s.name.clone(), timer.report(nl)))
    })
    .into_iter()
    .collect()
}

/// [`run_and_merge`] over one shared timing graph.
///
/// # Errors
///
/// Propagates the first failing scenario run.
pub fn run_and_merge_shared(
    nl: &Netlist,
    stack: &BeolStack,
    scenarios: &[Scenario],
) -> Result<MergedReport> {
    Ok(merge_reports(&run_scenarios_shared(nl, stack, scenarios)?))
}

/// A total order on endpoints (kind, then id) used as the merge-sort
/// tiebreak so equal-slack endpoints always report in the same order.
fn endpoint_key(e: &Endpoint) -> (u8, usize) {
    match e {
        Endpoint::FlopD(c) => (0, c.index()),
        Endpoint::Output(n) => (1, n.index()),
    }
}

/// Folds per-endpoint worst slacks across named reports.
///
/// Degenerate corners do not poison the merge: a report with zero
/// endpoints contributes nothing (counted on `mcmm.empty_reports`), and
/// a NaN setup or hold slack is skipped for that check (counted on
/// `mcmm.nonfinite_slacks`) rather than propagating into the merged
/// WNS/TNS. Non-NaN infinities are kept — `+inf` hold slack is the
/// legitimate "no hold check" marker at primary outputs.
pub fn merge_reports(reports: &[(String, TimingReport)]) -> MergedReport {
    let mut empty_reports = 0u64;
    let mut nonfinite = 0u64;
    let mut map: HashMap<Endpoint, MergedEndpoint> = HashMap::new();
    for (name, rep) in reports {
        if rep.endpoints.is_empty() {
            empty_reports += 1;
            continue;
        }
        for ep in &rep.endpoints {
            let entry = map.entry(ep.endpoint).or_insert_with(|| MergedEndpoint {
                endpoint: ep.endpoint,
                setup: (Ps::new(f64::INFINITY), String::new()),
                hold: (Ps::new(f64::INFINITY), String::new()),
            });
            if ep.setup_slack.value().is_nan() {
                nonfinite += 1;
            } else if ep.setup_slack < entry.setup.0 {
                entry.setup = (ep.setup_slack, name.clone());
            }
            if ep.hold_slack.value().is_nan() {
                nonfinite += 1;
            } else if ep.hold_slack < entry.hold.0 {
                entry.hold = (ep.hold_slack, name.clone());
            }
        }
    }
    if empty_reports > 0 {
        tc_obs::counter("mcmm.empty_reports").add(empty_reports);
    }
    if nonfinite > 0 {
        tc_obs::counter("mcmm.nonfinite_slacks").add(nonfinite);
    }
    let mut endpoints: Vec<MergedEndpoint> = map.into_values().collect();
    endpoints.sort_by(|a, b| {
        a.setup
            .0
            .value()
            .total_cmp(&b.setup.0.value())
            .then_with(|| endpoint_key(&a.endpoint).cmp(&endpoint_key(&b.endpoint)))
    });
    MergedReport { endpoints }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tc_liberty::{LibConfig, PvtCorner};
    use tc_netlist::gen::{generate, BenchProfile};

    #[test]
    fn merged_wns_is_worst_of_scenarios() {
        let cfg = LibConfig::default();
        let lib_typ = Library::generate(&cfg, &PvtCorner::typical());
        let nl = generate(&lib_typ, BenchProfile::tiny(), 3).unwrap();
        let stack = BeolStack::n20();

        let scenarios = vec![
            Scenario {
                name: "typ".to_string(),
                lib: lib_typ.clone(),
                beol: BeolCorner::Typical,
                constraints: Constraints::single_clock(900.0),
            },
            Scenario {
                name: "slow_rcw".to_string(),
                lib: Library::generate(&cfg, &PvtCorner::slow_cold()),
                beol: BeolCorner::RcWorst,
                constraints: Constraints::single_clock(900.0),
            },
        ];
        let merged = run_and_merge(&nl, &stack, &scenarios).unwrap();
        let typ = scenarios[0].run(&nl, &stack).unwrap();
        let slow = scenarios[1].run(&nl, &stack).unwrap();
        assert_eq!(merged.wns(), typ.wns().min(slow.wns()));
        // The slow corner should dominate setup on most endpoints.
        let dom = merged.dominance();
        assert!(dom.get("slow_rcw").copied().unwrap_or(0) > dom.get("typ").copied().unwrap_or(0));
    }

    #[test]
    fn merge_attributes_scenarios() {
        let cfg = LibConfig::default();
        let lib = Library::generate(&cfg, &PvtCorner::typical());
        let nl = generate(&lib, BenchProfile::tiny(), 3).unwrap();
        let stack = BeolStack::n20();
        let fast = Scenario {
            name: "fast".to_string(),
            lib: Library::generate(&cfg, &PvtCorner::fast_cold()),
            beol: BeolCorner::CBest,
            constraints: Constraints::single_clock(900.0),
        };
        let r = fast.run(&nl, &stack).unwrap();
        let merged = merge_reports(&[("fast".to_string(), r)]);
        assert!(merged.endpoints.iter().all(|e| e.setup.1 == "fast"));
        assert_eq!(merged.endpoints.len(), merged.endpoints.len());
        assert!(merged.violations() <= merged.endpoints.len());
    }
}

#[cfg(test)]
mod more_tests {
    use super::*;
    use tc_core::ids::CellId;
    use tc_core::units::Ps;

    fn ep(id: usize, setup: f64, hold: f64) -> crate::report::EndpointTiming {
        crate::report::EndpointTiming {
            endpoint: Endpoint::FlopD(CellId::new(id)),
            setup_slack: Ps::new(setup),
            hold_slack: Ps::new(hold),
            arrival: Ps::new(100.0),
            required: Ps::new(100.0 + setup),
            depth: 3,
            gate_ps: 80.0,
            wire_ps: 20.0,
            data_slew: 30.0,
        }
    }

    fn report(eps: Vec<crate::report::EndpointTiming>) -> TimingReport {
        TimingReport::from_endpoints(eps, Ps::new(1000.0))
    }

    #[test]
    fn merge_takes_worst_per_check_independently() {
        // Scenario A is worse for setup on ep0; B is worse for hold.
        let a = report(vec![ep(0, -30.0, 50.0)]);
        let b = report(vec![ep(0, 10.0, -5.0)]);
        let merged = merge_reports(&[("a".into(), a), ("b".into(), b)]);
        assert_eq!(merged.endpoints.len(), 1);
        let e = &merged.endpoints[0];
        assert_eq!(e.setup.0, Ps::new(-30.0));
        assert_eq!(e.setup.1, "a");
        assert_eq!(e.hold.0, Ps::new(-5.0));
        assert_eq!(e.hold.1, "b");
        assert_eq!(merged.violations(), 1);
    }

    #[test]
    fn merge_handles_disjoint_endpoint_sets() {
        // A scenario may skip endpoints (false paths, mode gating).
        let a = report(vec![ep(0, 5.0, 5.0), ep(1, -2.0, 9.0)]);
        let b = report(vec![ep(1, -8.0, 9.0), ep(2, 3.0, 3.0)]);
        let merged = merge_reports(&[("a".into(), a), ("b".into(), b)]);
        assert_eq!(merged.endpoints.len(), 3);
        assert_eq!(merged.wns(), Ps::new(-8.0));
        // Sorted worst-first.
        assert!(merged.endpoints[0].setup.0 <= merged.endpoints[1].setup.0);
    }

    #[test]
    fn degenerate_reports_do_not_poison_merge() {
        // A zero-endpoint corner and a NaN-slack corner ride along with a
        // healthy one; the merged WNS/TNS must come from the healthy one.
        let healthy = report(vec![ep(0, -3.0, 4.0)]);
        let empty = report(vec![]);
        let nan = report(vec![ep(0, f64::NAN, f64::NAN)]);
        let merged = merge_reports(&[
            ("ok".into(), healthy),
            ("empty".into(), empty),
            ("nan".into(), nan),
        ]);
        assert_eq!(merged.endpoints.len(), 1);
        assert_eq!(merged.wns(), Ps::new(-3.0));
        assert_eq!(merged.hold_wns(), Ps::new(4.0));
        assert_eq!(merged.endpoints[0].setup.1, "ok");
        assert!(!merged.dominance().contains_key("nan"));
    }

    #[test]
    fn endpoints_with_only_nan_slacks_carry_no_attribution() {
        let nan_only = report(vec![ep(7, f64::NAN, f64::NAN)]);
        let merged = merge_reports(&[("nan".into(), nan_only)]);
        assert_eq!(merged.endpoints.len(), 1);
        assert!(merged.endpoints[0].setup.1.is_empty());
        // Unattributed endpoints are excluded from dominance counts.
        assert!(merged.dominance().is_empty());
    }

    #[test]
    fn merge_order_is_deterministic_under_slack_ties() {
        // Equal slacks everywhere: order must fall back to endpoint ids,
        // not HashMap iteration order.
        let a = report(vec![ep(2, 1.0, 5.0), ep(0, 1.0, 5.0), ep(1, 1.0, 5.0)]);
        let merged = merge_reports(&[("a".into(), a)]);
        let ids: Vec<Endpoint> = merged.endpoints.iter().map(|e| e.endpoint).collect();
        assert_eq!(
            ids,
            vec![
                Endpoint::FlopD(CellId::new(0)),
                Endpoint::FlopD(CellId::new(1)),
                Endpoint::FlopD(CellId::new(2)),
            ]
        );
    }

    #[test]
    fn dominance_counts_sum_to_endpoints() {
        let a = report(vec![ep(0, -1.0, 5.0), ep(1, 2.0, 5.0)]);
        let b = report(vec![ep(0, 4.0, 5.0), ep(1, -9.0, 5.0)]);
        let merged = merge_reports(&[("a".into(), a), ("b".into(), b)]);
        let dom = merged.dominance();
        let total: usize = dom.values().sum();
        assert_eq!(total, merged.endpoints.len());
        assert_eq!(dom["a"], 1);
        assert_eq!(dom["b"], 1);
    }
}
