//! Profile construction: event timeline → per-span aggregates, lanes,
//! and the critical chain.

use std::collections::BTreeMap;
use std::sync::Arc;

use tc_obs::trace::{TraceEvent, TraceEventKind};
use tc_obs::{JsonValue, TraceSnapshot};

/// The gauge name the span layer samples at span edges when memory
/// telemetry is armed; consecutive samples bracket a span occurrence
/// and their difference is that occurrence's net allocation delta.
const HEAP_GAUGE: &str = "mem.live_bytes";

/// Per-span-name aggregate over every completed occurrence.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpanProfile {
    /// Leaf span name as recorded in the trace (not the full path).
    pub name: String,
    /// Completed occurrences (forced closes at trace end included).
    pub count: u64,
    /// Sum of occurrence durations. Recursion double-counts by design:
    /// inclusive time per *name* can exceed wall when a span nests
    /// under itself.
    pub total_ns: u64,
    /// Exclusive time: total minus time spent in child spans.
    pub self_ns: u64,
    /// Time attributed to child spans (`total_ns - self_ns`).
    pub child_ns: u64,
    /// Shortest single occurrence.
    pub min_ns: u64,
    /// Longest single occurrence.
    pub max_ns: u64,
    /// Median occurrence duration.
    pub p50_ns: u64,
    /// 90th-percentile occurrence duration.
    pub p90_ns: u64,
    /// 99th-percentile occurrence duration.
    pub p99_ns: u64,
    /// Net heap delta summed over occurrences, from the `mem.live_bytes`
    /// gauge samples at span edges; `0` when memory telemetry was off.
    pub net_bytes: i64,
}

/// One recorded thread's busy/idle split over the profile window.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Lane {
    /// Flight-recorder thread id.
    pub tid: u64,
    /// Thread name (`main`, `tc-par-0`, …) or `thread-{tid}`.
    pub name: String,
    /// Time covered by root spans on this thread.
    pub busy_ns: u64,
    /// `wall_ns - busy_ns`.
    pub idle_ns: u64,
}

/// One link of the critical chain: a span-tree node and its own
/// (per-path, exclusive) self time.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ChainLink {
    /// Leaf span name of this tree node.
    pub name: String,
    /// Exclusive time of this node *along this path* — at most the
    /// aggregate [`SpanProfile::self_ns`] of the same name.
    pub self_ns: u64,
}

/// A span profile: the trace timeline reduced to gateable aggregates.
#[derive(Clone, Debug, PartialEq)]
pub struct Profile {
    /// Free-form workload label (harness + profile rung).
    pub workload: String,
    /// Last minus first event timestamp across all threads.
    pub wall_ns: u64,
    /// Busy time of the busiest lane — the share of wall the profile
    /// can attribute to named spans on the driving thread.
    pub attributed_ns: u64,
    /// Ring-overflow drops; non-zero means self-time is truncated and
    /// the profile must not gate anything.
    pub dropped_events: u64,
    /// `End` events with no matching open frame (overflow or a span
    /// open across a [`tc_obs::reset`] epoch).
    pub unmatched_ends: u64,
    /// Frames still open at the last timestamp, closed there.
    pub open_spans: u64,
    /// Per-name aggregates, sorted by descending self time (ties by
    /// name).
    pub spans: Vec<SpanProfile>,
    /// Per-thread utilization, sorted by tid.
    pub lanes: Vec<Lane>,
    /// Heaviest root-to-leaf path through the span tree.
    pub critical_chain: Vec<ChainLink>,
    /// Sum of the chain links' self times.
    pub critical_chain_ns: u64,
}

/// One open frame during replay.
struct Frame {
    name: Arc<str>,
    start_ns: u64,
    child_ns: u64,
    node: usize,
    open_heap: Option<u64>,
}

/// Span-tree node, identity `(parent, name)`, arena-indexed. Children
/// are always created after their parent, so a reverse index scan sees
/// every child before its parent.
struct PathNode {
    name: Arc<str>,
    parent: Option<usize>,
    self_ns: u64,
    children: Vec<usize>,
}

#[derive(Default)]
struct Agg {
    count: u64,
    total_ns: u64,
    self_ns: u64,
    min_ns: u64,
    max_ns: u64,
    net_bytes: i64,
    durations: Vec<u64>,
}

fn percentile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

impl Profile {
    /// Reduces a collected [`TraceSnapshot`] to a profile. Imbalance is
    /// tolerated the same way [`TraceSnapshot::to_folded`] tolerates
    /// it: unmatched `End`s are counted and dropped, and still-open
    /// frames are closed at the last timestamp.
    pub fn from_trace(snap: &TraceSnapshot) -> Profile {
        let first_ts = snap.events.iter().map(|e| e.ts_ns).min().unwrap_or(0);
        let last_ts = snap.events.iter().map(|e| e.ts_ns).max().unwrap_or(0);
        let wall_ns = last_ts - first_ts;

        let mut nodes: Vec<PathNode> = Vec::new();
        let mut roots: BTreeMap<Arc<str>, usize> = BTreeMap::new();
        let mut aggs: BTreeMap<Arc<str>, Agg> = BTreeMap::new();
        let mut stacks: BTreeMap<u64, Vec<Frame>> = BTreeMap::new();
        let mut busy: BTreeMap<u64, u64> = BTreeMap::new();
        // A just-closed span waiting for its trailing heap sample:
        // `(name, heap at open)`. Cleared by any non-gauge event on the
        // same thread — the sample, if present, is adjacent in the ring.
        let mut pending_heap: BTreeMap<u64, (Arc<str>, u64)> = BTreeMap::new();
        let mut unmatched_ends = 0u64;
        let mut open_spans = 0u64;

        fn node_for(
            nodes: &mut Vec<PathNode>,
            roots: &mut BTreeMap<Arc<str>, usize>,
            parent: Option<usize>,
            name: &Arc<str>,
        ) -> usize {
            let found = match parent {
                Some(p) => nodes[p]
                    .children
                    .iter()
                    .copied()
                    .find(|&c| nodes[c].name == *name),
                None => roots.get(name).copied(),
            };
            if let Some(idx) = found {
                return idx;
            }
            let idx = nodes.len();
            nodes.push(PathNode {
                name: name.clone(),
                parent,
                self_ns: 0,
                children: Vec::new(),
            });
            match parent {
                Some(p) => nodes[p].children.push(idx),
                None => {
                    roots.insert(name.clone(), idx);
                }
            }
            idx
        }

        fn close(
            frame: Frame,
            end_ns: u64,
            stack: &mut [Frame],
            nodes: &mut [PathNode],
            aggs: &mut BTreeMap<Arc<str>, Agg>,
            busy_ns: &mut u64,
        ) -> Option<(Arc<str>, u64)> {
            let total = end_ns.saturating_sub(frame.start_ns);
            let exclusive = total.saturating_sub(frame.child_ns);
            nodes[frame.node].self_ns += exclusive;
            let agg = aggs.entry(frame.name.clone()).or_default();
            if agg.count == 0 {
                agg.min_ns = total;
            } else {
                agg.min_ns = agg.min_ns.min(total);
            }
            agg.count += 1;
            agg.total_ns += total;
            agg.self_ns += exclusive;
            agg.max_ns = agg.max_ns.max(total);
            agg.durations.push(total);
            if let Some(parent) = stack.last_mut() {
                parent.child_ns += total;
            } else {
                *busy_ns += total;
            }
            frame.open_heap.map(|h| (frame.name, h))
        }

        for e in &snap.events {
            let stack = stacks.entry(e.tid).or_default();
            let tid_busy = busy.entry(e.tid).or_insert(0);
            match e.kind {
                TraceEventKind::Begin => {
                    pending_heap.remove(&e.tid);
                    let parent = stack.last().map(|f| f.node);
                    let node = node_for(&mut nodes, &mut roots, parent, &e.name);
                    stack.push(Frame {
                        name: e.name.clone(),
                        start_ns: e.ts_ns,
                        child_ns: 0,
                        node,
                        open_heap: None,
                    });
                }
                TraceEventKind::End => {
                    pending_heap.remove(&e.tid);
                    if stack.iter().any(|f| f.name == e.name) {
                        // Close intermediates down to (and including)
                        // the match, like `to_folded`.
                        loop {
                            let matched = stack.last().is_some_and(|f| f.name == e.name);
                            let frame = stack.pop().expect("match guarantees a frame");
                            let heap =
                                close(frame, e.ts_ns, stack, &mut nodes, &mut aggs, tid_busy);
                            if matched {
                                if let Some(h) = heap {
                                    pending_heap.insert(e.tid, h);
                                }
                                break;
                            }
                        }
                    } else {
                        unmatched_ends += 1;
                    }
                }
                TraceEventKind::Gauge if e.name.as_ref() == HEAP_GAUGE => {
                    if let Some((name, open)) = pending_heap.remove(&e.tid) {
                        let delta = e.delta as i64 - open as i64;
                        aggs.entry(name).or_default().net_bytes += delta;
                    } else if let Some(top) = stack.last_mut() {
                        if top.open_heap.is_none() {
                            top.open_heap = Some(e.delta);
                        }
                    }
                }
                TraceEventKind::Counter | TraceEventKind::Gauge => {
                    pending_heap.remove(&e.tid);
                }
            }
        }
        for (tid, mut stack) in stacks {
            let tid_busy = busy.entry(tid).or_insert(0);
            open_spans += stack.len() as u64;
            while let Some(frame) = stack.pop() {
                close(frame, last_ts, &mut stack, &mut nodes, &mut aggs, tid_busy);
            }
        }

        let mut spans: Vec<SpanProfile> = aggs
            .into_iter()
            .map(|(name, mut a)| {
                a.durations.sort_unstable();
                SpanProfile {
                    name: name.to_string(),
                    count: a.count,
                    total_ns: a.total_ns,
                    self_ns: a.self_ns,
                    child_ns: a.total_ns - a.self_ns,
                    min_ns: a.min_ns,
                    max_ns: a.max_ns,
                    p50_ns: percentile(&a.durations, 0.50),
                    p90_ns: percentile(&a.durations, 0.90),
                    p99_ns: percentile(&a.durations, 0.99),
                    net_bytes: a.net_bytes,
                }
            })
            .collect();
        spans.sort_by(|a, b| b.self_ns.cmp(&a.self_ns).then(a.name.cmp(&b.name)));

        let mut lane_names: BTreeMap<u64, String> = snap.thread_names.iter().cloned().collect();
        for tid in busy.keys() {
            lane_names
                .entry(*tid)
                .or_insert_with(|| format!("thread-{tid}"));
        }
        let lanes: Vec<Lane> = lane_names
            .into_iter()
            .map(|(tid, name)| {
                let busy_ns = busy.get(&tid).copied().unwrap_or(0).min(wall_ns);
                Lane {
                    tid,
                    name,
                    busy_ns,
                    idle_ns: wall_ns - busy_ns,
                }
            })
            .collect();
        let attributed_ns = lanes.iter().map(|l| l.busy_ns).max().unwrap_or(0);

        // Subtree self-time sums, children before parents.
        let mut subtree = vec![0u64; nodes.len()];
        for i in (0..nodes.len()).rev() {
            subtree[i] += nodes[i].self_ns;
            if let Some(p) = nodes[i].parent {
                subtree[p] += subtree[i];
            }
        }
        let heaviest = |candidates: &[usize]| -> Option<usize> {
            candidates.iter().copied().max_by(|&a, &b| {
                subtree[a]
                    .cmp(&subtree[b])
                    .then_with(|| nodes[b].name.cmp(&nodes[a].name))
            })
        };
        let mut critical_chain = Vec::new();
        let root_ids: Vec<usize> = roots.values().copied().collect();
        let mut cursor = heaviest(&root_ids).filter(|&r| subtree[r] > 0);
        while let Some(idx) = cursor {
            critical_chain.push(ChainLink {
                name: nodes[idx].name.to_string(),
                self_ns: nodes[idx].self_ns,
            });
            cursor = heaviest(&nodes[idx].children).filter(|&c| subtree[c] > 0);
        }
        let critical_chain_ns = critical_chain.iter().map(|l| l.self_ns).sum();

        Profile {
            workload: String::new(),
            wall_ns,
            attributed_ns,
            dropped_events: snap.dropped,
            unmatched_ends,
            open_spans,
            spans,
            lanes,
            critical_chain,
            critical_chain_ns,
        }
    }

    /// Profiles the *live* flight recorder: snapshots every thread's
    /// ring (read-only) and reduces it.
    pub fn from_rings() -> Profile {
        Profile::from_trace(&tc_obs::trace_snapshot())
    }

    /// Parses a Chrome `trace_event` sidecar (the format
    /// [`TraceSnapshot::to_chrome_trace`] writes) and reduces it.
    ///
    /// # Errors
    ///
    /// Positioned messages (`trace event N: …`) for malformed events,
    /// document-level messages for a missing/foreign envelope.
    pub fn from_chrome_trace(text: &str) -> Result<Profile, String> {
        Ok(Profile::from_trace(&chrome_to_snapshot(text)?))
    }

    /// Sets the workload label (builder style).
    #[must_use]
    pub fn workload(mut self, label: impl Into<String>) -> Profile {
        self.workload = label.into();
        self
    }

    /// Realized parallelism: Σ lane busy ⁄ wall. `1.0` for an idle or
    /// empty profile.
    pub fn parallelism(&self) -> f64 {
        if self.wall_ns == 0 {
            return 1.0;
        }
        let busy: u64 = self.lanes.iter().map(|l| l.busy_ns).sum();
        busy as f64 / self.wall_ns as f64
    }

    /// Share of wall attributed to named spans on the busiest lane,
    /// in `[0, 1]`.
    pub fn coverage(&self) -> f64 {
        if self.wall_ns == 0 {
            return 1.0;
        }
        self.attributed_ns as f64 / self.wall_ns as f64
    }

    /// Aggregate for one span name, if present.
    pub fn span(&self, name: &str) -> Option<&SpanProfile> {
        self.spans.iter().find(|s| s.name == name)
    }
}

/// Parses a Chrome `trace_event` JSON document back into a
/// [`TraceSnapshot`] — the inverse of
/// [`TraceSnapshot::to_chrome_trace`]. `M`/`thread_name` metadata
/// repopulates `thread_names`, `otherData.dropped_events` repopulates
/// `dropped`, and counter events recover their per-event `delta` from
/// `args` (falling back to `value` for gauges).
///
/// # Errors
///
/// Positioned `trace event N: …` messages for malformed events.
pub fn chrome_to_snapshot(text: &str) -> Result<TraceSnapshot, String> {
    let doc = JsonValue::parse(text).map_err(|e| format!("trace parse error: {e}"))?;
    let JsonValue::Obj(top) = doc else {
        return Err("trace document is not an object".to_string());
    };
    let get = |pairs: &[(String, JsonValue)], key: &str| -> Option<JsonValue> {
        pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v.clone())
    };
    let Some(JsonValue::Arr(raw_events)) = get(&top, "traceEvents") else {
        return Err("trace document has no traceEvents array".to_string());
    };
    let mut dropped = 0u64;
    if let Some(JsonValue::Obj(other)) = get(&top, "otherData") {
        if let Some(JsonValue::Num(d)) = get(&other, "dropped_events") {
            if d.is_finite() && d >= 0.0 {
                dropped = d as u64;
            }
        }
    }
    let mut events: Vec<TraceEvent> = Vec::new();
    let mut thread_names: Vec<(u64, String)> = Vec::new();
    for (i, ev) in raw_events.iter().enumerate() {
        let JsonValue::Obj(fields) = ev else {
            return Err(format!("trace event {i}: not an object"));
        };
        let Some(JsonValue::Str(ph)) = get(fields, "ph") else {
            return Err(format!("trace event {i}: missing ph"));
        };
        let Some(JsonValue::Str(name)) = get(fields, "name") else {
            return Err(format!("trace event {i}: missing name"));
        };
        let tid = match get(fields, "tid") {
            Some(JsonValue::Num(t)) if t.is_finite() && t >= 0.0 => t as u64,
            _ => return Err(format!("trace event {i}: missing or negative tid")),
        };
        if ph == "M" {
            if name == "thread_name" {
                if let Some(JsonValue::Obj(args)) = get(fields, "args") {
                    if let Some(JsonValue::Str(tname)) = get(&args, "name") {
                        thread_names.push((tid, tname));
                    }
                }
            }
            continue;
        }
        let ts_us = match get(fields, "ts") {
            Some(JsonValue::Num(t)) if t.is_finite() && t >= 0.0 => t,
            _ => return Err(format!("trace event {i}: missing or negative ts")),
        };
        let ts_ns = (ts_us * 1e3).round() as u64;
        let (kind, delta) = match ph.as_str() {
            "B" => (TraceEventKind::Begin, 0),
            "E" => (TraceEventKind::End, 0),
            "C" => {
                let Some(JsonValue::Obj(args)) = get(fields, "args") else {
                    return Err(format!("trace event {i}: counter without args"));
                };
                // `to_chrome_trace` writes counters with a `delta` and
                // gauges with only an absolute `value`.
                match get(&args, "delta") {
                    Some(JsonValue::Num(d)) if d.is_finite() && d >= 0.0 => {
                        (TraceEventKind::Counter, d as u64)
                    }
                    Some(_) => {
                        return Err(format!("trace event {i}: non-numeric counter delta"));
                    }
                    None => match get(&args, "value") {
                        Some(JsonValue::Num(v)) if v.is_finite() && v >= 0.0 => {
                            (TraceEventKind::Gauge, v as u64)
                        }
                        _ => {
                            return Err(format!("trace event {i}: counter without value"));
                        }
                    },
                }
            }
            other => return Err(format!("trace event {i}: unknown ph \"{other}\"")),
        };
        events.push(TraceEvent {
            kind,
            name: Arc::from(name.as_str()),
            tid,
            ts_ns,
            delta,
        });
    }
    events.sort_by_key(|e| (e.tid, e.ts_ns));
    thread_names.sort_by_key(|(tid, _)| *tid);
    thread_names.dedup_by_key(|(tid, _)| *tid);
    Ok(TraceSnapshot {
        events,
        dropped,
        thread_names,
    })
}

/// Re-folds a Chrome trace sidecar to folded-stack text (the
/// `flamegraph.pl` input format), via [`chrome_to_snapshot`] and
/// [`TraceSnapshot::to_folded`].
///
/// # Errors
///
/// Same surface as [`chrome_to_snapshot`].
pub fn fold_chrome_trace(text: &str) -> Result<String, String> {
    Ok(chrome_to_snapshot(text)?.to_folded())
}
