//! tc-lint: static design-rule and invariant analysis for the timing-
//! closure workspace.
//!
//! Timing closure spends its budget where the design is *analyzable*;
//! the costliest failures are the ones STA silently absorbs — a clock
//! that never reaches a register, parasitics for last week's netlist, a
//! characterization table whose delays fall as load grows. tc-lint
//! finds those *without running timing*: every pass is a streaming
//! O(graph) walk with dense scratch, so admission control costs a tiny
//! fraction of one STA iteration even at the 200k-cell scale rung.
//!
//! # Rule catalog
//!
//! | Code | Sev | Finding |
//! |------|-----|---------|
//! | TCL0101 | E | combinational cycle (unregistered feedback) |
//! | TCL0102 | E | multi-driven net in structural Verilog |
//! | TCL0103 | E | undriven net referenced by a pin or output port |
//! | TCL0104 | W | dangling driven net (no sinks, not a primary output) |
//! | TCL0201 | E | no clocks defined: every endpoint is unconstrained |
//! | TCL0202 | E | clock has no matching source net in the design |
//! | TCL0203 | E | register clock pin not reachable from any clock source |
//! | TCL0204 | W | timing exception references a dead or non-register cell |
//! | TCL0301 | E | SPEF annotates a net absent from the netlist |
//! | TCL0302 | W | netlist net missing from the SPEF annotation |
//! | TCL0401 | E | Liberty table axis not strictly increasing |
//! | TCL0402 | W | Liberty delay/slew table non-monotone along load |
//! | TCL0501 | E | ECO journal references a dead cell, net, pin, or master |
//!
//! Codes are stable and never reused; retired rules leave holes. The
//! `tc_lint` binary exits `0` on a clean design, `1` when findings
//! remain after waivers, `2` on usage or I/O failure — the same
//! contract `tcdiff` established for CI gates.
//!
//! # Examples
//!
//! ```
//! use tc_liberty::{LibConfig, Library, PvtCorner};
//! use tc_lint::{run_lint, LintContext};
//! use tc_netlist::gen::{generate, BenchProfile};
//! use tc_par::Pool;
//!
//! let lib = Library::generate(&LibConfig::default(), &PvtCorner::typical());
//! let nl = generate(&lib, BenchProfile::c5315(), 7).unwrap();
//! let ctx = LintContext::new(&nl, &lib);
//! let findings = run_lint(&Pool::sequential(), &ctx);
//! // The generated design has unloaded gate outputs (TCL0104) and no
//! // constraints were attached, so only graph rules ran.
//! assert!(findings.iter().all(|d| d.code == "TCL0104"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod diag;
pub mod engine;
pub mod graph_rules;
pub mod liberty_check;
pub mod source;
pub mod waiver;

pub use diag::{finding, render_json, render_text, rule, Diagnostic, Rule, Severity, RULES};
pub use engine::{run_lint, LintContext};
pub use liberty_check::lint_liberty_source;
pub use source::lint_verilog_source;
pub use waiver::{
    apply_waivers, decode_waivers, render_waivers, Waiver, WaiverOutcome, WAIVER_HEADER,
};
