//! Seeded synthetic netlist generators.
//!
//! The paper's Fig 9 evaluates on ISCAS-85 c5315/c7552 plus AES and MPEG2
//! cores; those netlists (and the commercial synthesis flow producing
//! them) are not redistributable, so we generate random-logic designs
//! with matching *profiles* — gate count, register count, logic depth and
//! fan-in distribution — which is what the figure's power/area tradeoff
//! shapes actually depend on.

use tc_core::error::Result;
use tc_core::ids::{CellId, NetId};
use tc_core::rng::Rng;
use tc_device::VtClass;
use tc_liberty::Library;

use crate::graph::Netlist;

/// Size/shape profile of a synthetic benchmark.
#[derive(Clone, Debug, PartialEq)]
pub struct BenchProfile {
    /// Design name.
    pub name: &'static str,
    /// Number of combinational gates.
    pub gates: usize,
    /// Number of flops.
    pub flops: usize,
    /// Number of primary inputs.
    pub inputs: usize,
    /// Number of primary outputs.
    pub outputs: usize,
    /// Recency-bias window for input selection; smaller ⇒ deeper logic.
    pub window: usize,
}

impl BenchProfile {
    /// ISCAS-85 c5315 stand-in (~2.3 k gates, combinational with a
    /// registered boundary added).
    pub fn c5315() -> Self {
        BenchProfile {
            name: "c5315",
            gates: 2_300,
            flops: 180,
            inputs: 178,
            outputs: 123,
            window: 220,
        }
    }

    /// ISCAS-85 c7552 stand-in (~3.5 k gates).
    pub fn c7552() -> Self {
        BenchProfile {
            name: "c7552",
            gates: 3_500,
            flops: 210,
            inputs: 207,
            outputs: 108,
            window: 300,
        }
    }

    /// AES core stand-in (~12 k gates, shallow & wide).
    pub fn aes() -> Self {
        BenchProfile {
            name: "aes",
            gates: 12_000,
            flops: 530,
            inputs: 260,
            outputs: 129,
            window: 1_500,
        }
    }

    /// MPEG2 encoder stand-in (~15 k gates, deeper datapath).
    pub fn mpeg2() -> Self {
        BenchProfile {
            name: "mpeg2",
            gates: 15_000,
            flops: 900,
            inputs: 190,
            outputs: 170,
            window: 900,
        }
    }

    /// A small profile for fast unit tests.
    pub fn tiny() -> Self {
        BenchProfile {
            name: "tiny",
            gates: 120,
            flops: 16,
            inputs: 8,
            outputs: 8,
            window: 24,
        }
    }

    /// A mid-size SoC-block profile for closure-flow experiments (Fig 1).
    pub fn soc_block() -> Self {
        BenchProfile {
            name: "soc_block",
            gates: 6_000,
            flops: 450,
            inputs: 96,
            outputs: 96,
            window: 420,
        }
    }

    /// The Fig 9 benchmark set in paper order.
    pub fn fig9_set() -> [BenchProfile; 4] {
        [
            BenchProfile::c5315(),
            BenchProfile::c7552(),
            BenchProfile::aes(),
            BenchProfile::mpeg2(),
        ]
    }

    /// 50k-cell scale profile (47k gates + 3k flops). The smallest of
    /// the capacity ladder — fast enough for CI.
    pub fn scale_50k() -> Self {
        BenchProfile {
            name: "scale_50k",
            gates: 47_000,
            flops: 3_000,
            inputs: 512,
            outputs: 512,
            window: 1_500,
        }
    }

    /// 200k-cell scale profile (188k gates + 12k flops).
    pub fn scale_200k() -> Self {
        BenchProfile {
            name: "scale_200k",
            gates: 188_000,
            flops: 12_000,
            inputs: 512,
            outputs: 512,
            window: 3_000,
        }
    }

    /// Million-cell scale profile (940k gates + 60k flops) — the
    /// paper's §1.3 capacity regime. Local-only by default; see the
    /// `tbl_scale` harness.
    pub fn scale_1m() -> Self {
        BenchProfile {
            name: "scale_1m",
            gates: 940_000,
            flops: 60_000,
            inputs: 1_024,
            outputs: 1_024,
            window: 6_000,
        }
    }

    /// The capacity ladder, smallest first.
    pub fn scale_set() -> [BenchProfile; 3] {
        [
            BenchProfile::scale_50k(),
            BenchProfile::scale_200k(),
            BenchProfile::scale_1m(),
        ]
    }
}

/// Weighted gate-template mix of the generator.
const TEMPLATE_MIX: [(&str, u32); 6] = [
    ("INV", 18),
    ("BUF", 8),
    ("NAND2", 30),
    ("NOR2", 20),
    ("AOI21", 16),
    ("XOR2", 8),
];

fn pick_template(rng: &mut Rng) -> &'static str {
    let total: u32 = TEMPLATE_MIX.iter().map(|&(_, w)| w).sum();
    let mut roll = rng.below(total as usize) as u32;
    for &(name, w) in &TEMPLATE_MIX {
        if roll < w {
            return name;
        }
        roll -= w;
    }
    "NAND2"
}

/// Picks a driver signal with recency bias: recent signals are preferred,
/// which strings gates into paths of controlled depth.
fn pick_signal(rng: &mut Rng, pool: &[NetId], window: usize) -> NetId {
    let w = window.min(pool.len());
    let from_recent = rng.chance(0.75) && w > 0;
    if from_recent {
        pool[pool.len() - 1 - rng.below(w)]
    } else {
        *rng.choose(pool)
    }
}

/// Generates a seeded random-logic netlist matching the given profile.
/// The same `(profile, seed)` pair always yields the identical netlist.
///
/// # Errors
///
/// Propagates netlist construction errors (which indicate a bug in the
/// generator rather than bad input).
pub fn generate(lib: &Library, profile: BenchProfile, seed: u64) -> Result<Netlist> {
    let mut rng = Rng::seed_from(seed ^ 0x6e_6574_6c69_7374);
    let mut nl = Netlist::new(profile.name);

    let clk = nl.add_input("clk");
    let mut pool: Vec<NetId> = Vec::new();
    for i in 0..profile.inputs {
        pool.push(nl.add_input(format!("pi{i}")));
    }

    // Registers first: their Q outputs seed the signal pool. D inputs are
    // temporarily tied to a PI and rewired once the logic exists.
    let dff = lib
        .variant("DFF", VtClass::Svt, 1.0)
        .expect("library has DFF_X1_SVT");
    let mut flops = Vec::with_capacity(profile.flops);
    for i in 0..profile.flops {
        let d_placeholder = pool[rng.below(pool.len())];
        let (ff, q) = nl.add_cell(format!("ff{i}"), lib, dff, &[d_placeholder, clk])?;
        flops.push(ff);
        pool.push(q);
    }

    // Combinational cloud.
    let drives = [1.0, 1.0, 2.0, 2.0, 4.0];
    for i in 0..profile.gates {
        let tmpl = pick_template(&mut rng);
        let drive = drives[rng.below(drives.len())];
        let master = lib
            .variant(tmpl, VtClass::Svt, drive)
            .expect("library has all generator templates");
        let n_in = lib.cell(master).input_pins().len();
        let inputs: Vec<NetId> = (0..n_in)
            .map(|_| pick_signal(&mut rng, &pool, profile.window))
            .collect();
        let (_, out) = nl.add_cell(format!("g{i}"), lib, master, &inputs)?;
        pool.push(out);
    }

    // Rewire each flop's D to a signal from the most recent logic so
    // register-to-register paths traverse the cloud.
    let recent = profile.window.min(pool.len());
    for &ff in &flops {
        let d_net = pool[pool.len() - 1 - rng.below(recent)];
        nl.rewire_input(crate::graph::PinRef { cell: ff, pin: 0 }, d_net);
    }

    // Primary outputs from the deepest signals.
    for k in 0..profile.outputs.min(pool.len()) {
        let net = pool[pool.len() - 1 - k];
        nl.mark_output(net);
    }

    // Plausible wirelengths: mostly short, occasionally long (the long
    // tail is what NDR/buffering fixes exist for).
    for i in 0..nl.net_count() {
        let um = if rng.chance(0.06) {
            rng.uniform_in(150.0, 900.0)
        } else {
            rng.uniform_in(2.0, 80.0)
        };
        nl.set_wire_length(NetId::new(i), um);
    }

    // Bulk construction left doubling slack in the sink pool; rebuild
    // it tight before handing the netlist out.
    nl.compact();
    Ok(nl)
}

/// Fixed size of the old-signal reservoir in [`generate_streamed`].
const STREAM_RESERVOIR: usize = 1_024;

/// Bounded scratch for the streamed generator: a ring of the most
/// recent `window` signals (the recency-biased pick and the output/
/// rewire sources) plus a fixed reservoir sampled uniformly from every
/// signal ever pushed (the "anywhere in the pool" pick). Memory is
/// O(window + reservoir) no matter how many cells the profile asks for
/// — this is what lets `scale_1m` generate without a million-entry
/// scratch `Vec` on top of the netlist itself.
struct SignalWindow {
    ring: Vec<NetId>,
    head: usize,
    reservoir: Vec<NetId>,
    seen: usize,
}

impl SignalWindow {
    fn new(window: usize) -> Self {
        SignalWindow {
            ring: Vec::with_capacity(window.max(1)),
            head: 0,
            reservoir: Vec::with_capacity(STREAM_RESERVOIR),
            seen: 0,
        }
    }

    fn push(&mut self, net: NetId, rng: &mut Rng) {
        if self.ring.len() < self.ring.capacity() {
            self.ring.push(net);
        } else {
            self.ring[self.head] = net;
            self.head = (self.head + 1) % self.ring.len();
        }
        // Algorithm R: after n pushes each signal sits in the
        // reservoir with probability min(1, R/n).
        self.seen += 1;
        if self.reservoir.len() < STREAM_RESERVOIR {
            self.reservoir.push(net);
        } else {
            let j = rng.below(self.seen);
            if j < STREAM_RESERVOIR {
                self.reservoir[j] = net;
            }
        }
    }

    /// The signal pushed `back` steps ago (0 = most recent).
    fn recent(&self, back: usize) -> NetId {
        debug_assert!(back < self.ring.len());
        let idx = (self.head + self.ring.len() - 1 - back) % self.ring.len();
        self.ring[idx]
    }

    /// Mirrors `pick_signal`: recency-biased 75% of the time, uniform
    /// over the (sampled) history otherwise.
    fn pick(&self, rng: &mut Rng) -> NetId {
        if rng.chance(0.75) {
            self.recent(rng.below(self.ring.len()))
        } else {
            *rng.choose(&self.reservoir)
        }
    }
}

/// Streamed variant of [`generate`] for the `scale_*` profiles: same
/// shape family (recency-windowed random logic with a registered
/// boundary), but generator scratch is bounded at O(window) instead of
/// O(cells) — only the netlist being built grows with the profile.
///
/// Not output-compatible with [`generate`] (it consumes the seed
/// stream differently); committed fingerprints for the classic
/// profiles are untouched. The same `(profile, seed)` pair always
/// yields the identical netlist.
///
/// # Errors
///
/// Propagates netlist construction errors (generator bugs, not bad
/// input).
pub fn generate_streamed(lib: &Library, profile: BenchProfile, seed: u64) -> Result<Netlist> {
    let mut rng = Rng::seed_from(seed ^ 0x73_6361_6c65_6431);
    let mut nl = Netlist::new(profile.name);

    let clk = nl.add_input("clk");
    let mut window = SignalWindow::new(profile.window);
    for i in 0..profile.inputs {
        let pi = nl.add_input(format!("pi{i}"));
        window.push(pi, &mut rng);
    }

    // Registers first (cells 0..flops, a contiguous id range — the
    // rewire pass below iterates it instead of holding a Vec). D pins
    // are temporarily tied to a recent signal and rewired once the
    // cloud exists.
    let dff = lib
        .variant("DFF", VtClass::Svt, 1.0)
        .expect("library has DFF_X1_SVT");
    for i in 0..profile.flops {
        let d_placeholder = window.pick(&mut rng);
        let (ff, q) = nl.add_cell(format!("ff{i}"), lib, dff, &[d_placeholder, clk])?;
        debug_assert_eq!(ff.index(), i, "flop ids are contiguous from 0");
        window.push(q, &mut rng);
    }

    // Combinational cloud. Gate fan-in is at most 3 across the
    // template mix, so inputs live in a fixed stack array.
    let drives = [1.0, 1.0, 2.0, 2.0, 4.0];
    for i in 0..profile.gates {
        let tmpl = pick_template(&mut rng);
        let drive = drives[rng.below(drives.len())];
        let master = lib
            .variant(tmpl, VtClass::Svt, drive)
            .expect("library has all generator templates");
        let n_in = lib.cell(master).input_pins().len();
        let mut inputs = [NetId::new(0); 4];
        debug_assert!(n_in <= inputs.len());
        for slot in inputs.iter_mut().take(n_in) {
            *slot = window.pick(&mut rng);
        }
        let (_, out) = nl.add_cell(format!("g{i}"), lib, master, &inputs[..n_in])?;
        window.push(out, &mut rng);
    }

    // Rewire flop D pins into the recent end of the cloud so reg-to-reg
    // paths traverse it.
    let recent = profile.window.min(window.ring.len());
    for i in 0..profile.flops {
        let d_net = window.recent(rng.below(recent));
        nl.rewire_input(
            crate::graph::PinRef {
                cell: CellId::new(i),
                pin: 0,
            },
            d_net,
        );
    }

    // Primary outputs from the deepest signals.
    for k in 0..profile.outputs.min(window.ring.len()) {
        nl.mark_output(window.recent(k));
    }

    // Same wirelength model as the classic generator.
    for i in 0..nl.net_count() {
        let um = if rng.chance(0.06) {
            rng.uniform_in(150.0, 900.0)
        } else {
            rng.uniform_in(2.0, 80.0)
        };
        nl.set_wire_length(NetId::new(i), um);
    }

    nl.compact();
    Ok(nl)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::level::levelize;
    use tc_liberty::{LibConfig, PvtCorner};

    fn lib() -> Library {
        Library::generate(&LibConfig::default(), &PvtCorner::typical())
    }

    #[test]
    fn generator_is_deterministic() {
        let lib = lib();
        let a = generate(&lib, BenchProfile::tiny(), 7).unwrap();
        let b = generate(&lib, BenchProfile::tiny(), 7).unwrap();
        assert_eq!(a.cell_count(), b.cell_count());
        for (ca, cb) in a.cells().zip(b.cells()) {
            assert_eq!(ca.master, cb.master);
            assert_eq!(ca.inputs, cb.inputs);
        }
        let c = generate(&lib, BenchProfile::tiny(), 8).unwrap();
        let differs = a
            .cells()
            .zip(c.cells())
            .any(|(x, y)| x.master != y.master || x.inputs != y.inputs);
        assert!(differs, "different seeds should differ");
    }

    #[test]
    fn generated_netlists_are_valid_and_acyclic() {
        let lib = lib();
        for seed in [1, 2, 3] {
            let nl = generate(&lib, BenchProfile::tiny(), seed).unwrap();
            nl.validate(&lib).unwrap();
            let lv = levelize(&nl, &lib).unwrap();
            assert!(lv.max_depth() >= 3, "depth {}", lv.max_depth());
        }
    }

    #[test]
    fn profile_counts_respected() {
        let lib = lib();
        let p = BenchProfile::tiny();
        let nl = generate(&lib, p.clone(), 42).unwrap();
        assert_eq!(nl.cell_count(), p.gates + p.flops);
        assert_eq!(nl.flops(&lib).count(), p.flops);
        // clk + PIs
        assert_eq!(nl.primary_inputs().len(), p.inputs + 1);
        assert_eq!(nl.primary_outputs().count(), p.outputs);
    }

    #[test]
    fn c5315_profile_scales() {
        let lib = lib();
        let nl = generate(&lib, BenchProfile::c5315(), 42).unwrap();
        assert!(nl.cell_count() > 2_000);
        nl.validate(&lib).unwrap();
        let lv = levelize(&nl, &lib).unwrap();
        assert!(
            (8..120).contains(&lv.max_depth()),
            "plausible depth, got {}",
            lv.max_depth()
        );
    }

    #[test]
    fn streamed_generator_is_deterministic() {
        let lib = lib();
        let a = generate_streamed(&lib, BenchProfile::tiny(), 7).unwrap();
        let b = generate_streamed(&lib, BenchProfile::tiny(), 7).unwrap();
        assert_eq!(a.cell_count(), b.cell_count());
        for (ca, cb) in a.cells().zip(b.cells()) {
            assert_eq!(ca.master, cb.master);
            assert_eq!(ca.inputs, cb.inputs);
        }
        for (na, nb) in a.nets().zip(b.nets()) {
            assert_eq!(na.wire_length_um, nb.wire_length_um);
        }
        let c = generate_streamed(&lib, BenchProfile::tiny(), 8).unwrap();
        let differs = a
            .cells()
            .zip(c.cells())
            .any(|(x, y)| x.master != y.master || x.inputs != y.inputs);
        assert!(differs, "different seeds should differ");
    }

    #[test]
    fn streamed_netlists_are_valid_acyclic_and_sized() {
        let lib = lib();
        for seed in [1, 2] {
            let p = BenchProfile::tiny();
            let nl = generate_streamed(&lib, p.clone(), seed).unwrap();
            nl.validate(&lib).unwrap();
            assert_eq!(nl.cell_count(), p.gates + p.flops);
            assert_eq!(nl.flops(&lib).count(), p.flops);
            assert_eq!(nl.primary_inputs().len(), p.inputs + 1);
            assert_eq!(nl.primary_outputs().count(), p.outputs);
            let lv = levelize(&nl, &lib).unwrap();
            assert!(lv.max_depth() >= 3, "depth {}", lv.max_depth());
        }
    }

    #[test]
    fn streamed_scale_profile_builds_a_valid_50k_design() {
        let lib = lib();
        let p = BenchProfile::scale_50k();
        let nl = generate_streamed(&lib, p.clone(), 42).unwrap();
        assert_eq!(nl.cell_count(), 50_000);
        nl.validate(&lib).unwrap();
        let lv = levelize(&nl, &lib).unwrap();
        assert!(
            (10..400).contains(&lv.max_depth()),
            "plausible depth at scale, got {}",
            lv.max_depth()
        );
    }

    #[test]
    fn signal_window_ring_keeps_the_most_recent_signals() {
        let mut rng = Rng::seed_from(99);
        let mut w = SignalWindow::new(4);
        for i in 0..10 {
            w.push(NetId::new(i), &mut rng);
        }
        assert_eq!(w.ring.len(), 4, "ring is bounded at the window size");
        assert_eq!(w.recent(0), NetId::new(9));
        assert_eq!(w.recent(3), NetId::new(6));
        assert!(w.reservoir.len() <= STREAM_RESERVOIR);
        assert_eq!(w.seen, 10);
    }

    #[test]
    fn wirelengths_have_a_long_tail() {
        let lib = lib();
        let nl = generate(&lib, BenchProfile::c5315(), 42).unwrap();
        let long = nl.nets().filter(|n| n.wire_length_um > 150.0).count();
        let short = nl.nets().filter(|n| n.wire_length_um <= 80.0).count();
        assert!(long > 0 && short > 10 * long);
    }
}
