#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! # tc-sim — transient circuit simulation (the workspace's SPICE substitute)
//!
//! The paper's device-level evidence (Figures 4, 6b and 10) comes from
//! HSPICE runs on foundry models. This crate replaces that proprietary
//! stack with a small, deterministic transient simulator:
//!
//! * [`circuit`] — netlist of resistors, capacitors, piecewise-linear
//!   sources and [`tc_device`] MOSFETs.
//! * [`solver`] — backward-Euler integration with damped Newton iteration
//!   and a dense LU solve (circuits here are ≤ a few dozen nodes).
//! * [`cells`] — transistor-level standard cells: inverter, NAND2, NOR2,
//!   transmission-gate master–slave flip-flop.
//! * [`measure`] — 50%-crossing delays and 10–90% slews on waveforms.
//! * [`mis`] — the multi-input-switching study of **Fig 4**: MIS vs SIS
//!   arc delays of a NAND2 with an FO3 load, sweeping the second input's
//!   arrival offset.
//! * [`ff_char`] — flip-flop characterization by bisection: c2q-vs-setup,
//!   c2q-vs-hold and the setup/hold interdependency contour of **Fig 10**,
//!   including the industry-standard 10% c2q-pushout criterion.
//! * [`char_cell`] — NLDM-style (slew × load) delay/slew table
//!   characterization used by `tc-liberty`'s simulator-backed library.
//!
//! # Examples
//!
//! ```
//! use tc_core::units::{Celsius, Volt};
//! use tc_device::{Technology, VtClass};
//! use tc_sim::cells::inverter_chain_delay;
//!
//! let tech = Technology::planar_28nm();
//! let d = inverter_chain_delay(&tech, VtClass::Svt, Volt::new(0.9), Celsius::new(25.0))?;
//! assert!(d.value() > 0.0 && d.value() < 200.0); // a sane stage delay in ps
//! # Ok::<(), tc_core::Error>(())
//! ```

pub mod cells;
pub mod char_cell;
pub mod circuit;
pub mod ff_char;
pub mod measure;
pub mod mis;
pub mod solver;

pub use circuit::{Circuit, NodeId, Pwl};
pub use measure::{cross_time, delay_between, slew_10_90, Waveform};
pub use solver::{TranOptions, TranResult};
