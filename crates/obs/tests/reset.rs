//! `reset()` wipes the whole global registry, so it gets its own test
//! binary (process) rather than racing the in-crate unit tests.

#[test]
fn reset_clears_spans_and_zeroes_counters() {
    tc_obs::enable();
    let handle = tc_obs::counter("reset.count");
    handle.add(9);
    tc_obs::histogram("reset.hist").record(3.0);
    {
        let _s = tc_obs::span("reset.span");
    }
    assert_eq!(tc_obs::snapshot().counter("reset.count"), 9);

    tc_obs::reset();
    let snap = tc_obs::snapshot();
    assert_eq!(snap.counter("reset.count"), 0);
    assert!(snap.span("reset.span").is_none());
    let hist = snap.histograms.iter().find(|h| h.name == "reset.hist");
    assert!(hist.is_none_or(|h| h.count == 0));

    // Handles issued before the reset keep working.
    handle.add(2);
    assert_eq!(tc_obs::snapshot().counter("reset.count"), 2);
}
