//! A minimal JSON document builder — enough for exporters and figure
//! sidecars without pulling in serde.

use std::fmt::Write as _;

/// A JSON value tree. Object keys keep insertion order.
#[derive(Clone, Debug, PartialEq)]
pub enum JsonValue {
    /// `null` (also what non-finite numbers render as).
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number; non-finite values render as `null`.
    Num(f64),
    /// A string (escaped on render).
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object with ordered keys.
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// String value from anything stringy.
    pub fn str(s: impl Into<String>) -> JsonValue {
        JsonValue::Str(s.into())
    }

    /// Object from `(key, value)` pairs.
    pub fn obj<'a>(pairs: impl IntoIterator<Item = (&'a str, JsonValue)>) -> JsonValue {
        JsonValue::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Serializes to compact JSON text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::Num(x) => {
                if !x.is_finite() {
                    out.push_str("null");
                } else if *x == x.trunc() && x.abs() < 9.0e15 {
                    let _ = write!(out, "{}", *x as i64);
                } else {
                    let _ = write!(out, "{x}");
                }
            }
            JsonValue::Str(s) => {
                out.push('"');
                escape_into(s, out);
                out.push('"');
            }
            JsonValue::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            JsonValue::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('"');
                    escape_into(k, out);
                    out.push_str("\":");
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }
}

impl From<f64> for JsonValue {
    fn from(x: f64) -> Self {
        JsonValue::Num(x)
    }
}

impl From<u64> for JsonValue {
    fn from(x: u64) -> Self {
        JsonValue::Num(x as f64)
    }
}

impl From<usize> for JsonValue {
    fn from(x: usize) -> Self {
        JsonValue::Num(x as f64)
    }
}

impl From<i64> for JsonValue {
    fn from(x: i64) -> Self {
        JsonValue::Num(x as f64)
    }
}

impl From<bool> for JsonValue {
    fn from(b: bool) -> Self {
        JsonValue::Bool(b)
    }
}

impl From<&str> for JsonValue {
    fn from(s: &str) -> Self {
        JsonValue::Str(s.to_string())
    }
}

/// Escapes `s` per RFC 8259 (quotes, backslash, control characters).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    escape_into(s, &mut out);
    out
}

fn escape_into(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}
