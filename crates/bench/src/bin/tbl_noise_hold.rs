//! §1 / §1.3 — the "last set of several hundred manual noise and DRC
//! fixes": glitch-noise closure at the Cc-worst corner and hold padding,
//! the two fix categories that land after setup closure.

use tc_bench::{fmt, print_table, standard_env};
use tc_closure::fixes::noise_fix_pass;
use tc_core::ids::NetId;
use tc_interconnect::beol::BeolCorner;
use tc_sta::{noise_check, NoiseConfig};

fn main() {
    let (lib, stack) = standard_env();
    let mut nl = tc_bench::bench_netlist(&lib, "c5315", 2015);
    // Stress the routing: stretch a tenth of the nets.
    let mut rng = tc_core::rng::Rng::seed_from(77);
    for i in 0..nl.net_count() {
        if rng.chance(0.10) {
            nl.set_wire_length(NetId::new(i), rng.uniform_in(200.0, 600.0));
        }
    }
    let cfg = NoiseConfig::default();

    let mut rows = Vec::new();
    for corner in [BeolCorner::Typical, BeolCorner::CcWorst] {
        let v = noise_check(&nl, &lib, &stack, corner, &cfg);
        let worst = v.first().map(|x| x.glitch_frac).unwrap_or(0.0);
        rows.push(vec![
            corner.to_string(),
            v.len().to_string(),
            fmt(100.0 * worst, 1) + "% of VDD",
        ]);
    }
    print_table(
        "Glitch-noise violations before fixing (30% margin)",
        &["corner", "violations", "worst glitch"],
        &rows,
    );

    let before = noise_check(&nl, &lib, &stack, BeolCorner::CcWorst, &cfg).len();
    let out = noise_fix_pass(&mut nl, &lib, &stack, &cfg, 1_000).expect("noise fix");
    let after = noise_check(&nl, &lib, &stack, BeolCorner::CcWorst, &cfg).len();
    println!(
        "\nnoise fixing: {before} violations → {after} after {} ECOs (spacing NDRs + driver upsizes)",
        out.edits
    );
    println!("(the paper counts \"several hundred manual noise and DRC fixes\" per tapeout)");
}
