//! Liberty-format export and (subset) import.
//!
//! The paper's modeling-standards discussion lives entirely inside
//! `.lib` files (NLDM tables, AOCV sidecars, the LVF extension — see the
//! "Open Source Liberty" reference \[38\]). This module writes the
//! synthetic library in a Liberty-compatible subset so it can be
//! inspected or diffed like a foundry deliverable, and parses that
//! subset back for round-trip verification.
//!
//! Supported constructs: `library`, `cell` (area, leakage), `pin`
//! (direction, capacitance), `timing` groups with `cell_rise` /
//! `rise_transition` 7×7 tables (`index_1`, `index_2`, `values`), and
//! `ocv_sigma_cell_rise` tables for LVF.

use std::collections::HashMap;
use std::fmt::Write as _;

use tc_core::error::{Error, Result};
use tc_core::lut::Lut2;

use crate::library::Library;

/// Serializes a library to Liberty text.
pub fn write_liberty(lib: &Library) -> String {
    let mut out = String::new();
    let name = format!("tc_synth_{}", lib.corner.label().replace(['.', '-'], "p"));
    let _ = writeln!(out, "library ({name}) {{");
    let _ = writeln!(out, "  time_unit : \"1ps\";");
    let _ = writeln!(out, "  capacitive_load_unit (1, ff);");
    let _ = writeln!(out, "  voltage_unit : \"1V\";");
    let _ = writeln!(
        out,
        "  nom_voltage : {:.3};\n  nom_temperature : {:.1};",
        lib.corner.voltage.value(),
        lib.corner.temperature.value()
    );

    for cell in lib.cells() {
        let _ = writeln!(out, "  cell ({}) {{", cell.name);
        let _ = writeln!(out, "    area : {:.3};", cell.area_sites);
        let _ = writeln!(out, "    cell_leakage_power : {:.6};", cell.leakage_uw);
        for pin in cell.input_pins() {
            let _ = writeln!(out, "    pin ({pin}) {{");
            let _ = writeln!(out, "      direction : input;");
            let _ = writeln!(out, "      capacitance : {:.4};", cell.input_cap.value());
            let _ = writeln!(out, "    }}");
        }
        let _ = writeln!(out, "    pin (Y) {{");
        let _ = writeln!(out, "      direction : output;");
        for arc in &cell.arcs {
            let _ = writeln!(out, "      timing () {{");
            let _ = writeln!(out, "        related_pin : \"{}\";", arc.input);
            write_table(&mut out, "cell_rise", &arc.delay);
            write_table(&mut out, "rise_transition", &arc.out_slew);
            if let Some(lvf) = &arc.lvf {
                write_table(&mut out, "ocv_sigma_cell_rise", &lvf.sigma_late);
                write_table(&mut out, "ocv_sigma_cell_fall", &lvf.sigma_early);
            }
            let _ = writeln!(out, "      }}");
        }
        let _ = writeln!(out, "    }}");
        let _ = writeln!(out, "  }}");
    }
    let _ = writeln!(out, "}}");
    out
}

fn write_table(out: &mut String, kind: &str, lut: &Lut2) {
    let fmt_axis = |axis: &[f64]| {
        axis.iter()
            .map(|v| format!("{v:.4}"))
            .collect::<Vec<_>>()
            .join(", ")
    };
    let _ = writeln!(
        out,
        "        {kind} (tbl_{}x{}) {{",
        lut.row_axis().len(),
        lut.col_axis().len()
    );
    let _ = writeln!(out, "          index_1 (\"{}\");", fmt_axis(lut.row_axis()));
    let _ = writeln!(out, "          index_2 (\"{}\");", fmt_axis(lut.col_axis()));
    let rows: Vec<String> = lut
        .row_axis()
        .iter()
        .map(|&r| {
            lut.col_axis()
                .iter()
                .map(|&c| format!("{:.5}", lut.eval(r, c)))
                .collect::<Vec<_>>()
                .join(", ")
        })
        .map(|row| format!("\"{row}\""))
        .collect();
    let _ = writeln!(
        out,
        "          values ({});",
        rows.join(", \\\n                  ")
    );
    let _ = writeln!(out, "        }}");
}

/// A parsed timing table.
#[derive(Clone, Debug, PartialEq)]
pub struct ParsedTable {
    /// Table kind ("cell_rise", "ocv_sigma_cell_rise", …).
    pub kind: String,
    /// The reconstructed table.
    pub lut: Lut2,
}

/// A parsed timing arc.
#[derive(Clone, Debug, Default)]
pub struct ParsedArc {
    /// Related (input) pin.
    pub related_pin: String,
    /// Tables in the arc.
    pub tables: Vec<ParsedTable>,
}

/// A parsed cell.
#[derive(Clone, Debug, Default)]
pub struct ParsedCell {
    /// Cell name.
    pub name: String,
    /// Area attribute.
    pub area: f64,
    /// Leakage attribute.
    pub leakage: f64,
    /// Input pin capacitances.
    pub pin_caps: HashMap<String, f64>,
    /// Timing arcs.
    pub arcs: Vec<ParsedArc>,
}

/// A parsed library (the subset this module writes).
#[derive(Clone, Debug, Default)]
pub struct ParsedLibrary {
    /// Library name.
    pub name: String,
    /// Cells by name.
    pub cells: HashMap<String, ParsedCell>,
}

/// Parses the Liberty subset produced by [`write_liberty`].
///
/// # Errors
///
/// Returns [`Error::InvalidInput`] on malformed structure (unbalanced
/// braces, missing axes, ragged value grids). Every error names the line
/// the offending construct started on.
pub fn parse_liberty(text: &str) -> Result<ParsedLibrary> {
    let mut lib = ParsedLibrary::default();
    let mut cur_cell: Option<ParsedCell> = None;
    let mut cur_arc: Option<ParsedArc> = None;
    let mut cur_pin: Option<String> = None;
    let mut table_kind: Option<String> = None;
    let mut index1: Option<Vec<f64>> = None;
    let mut index2: Option<Vec<f64>> = None;
    let mut depth = 0i32;
    let mut last_line = 0usize;

    // The writer emits one construct per line except `values`, which may
    // continue with `\`-terminated lines; splice those first, remembering
    // the line each spliced statement started on.
    let mut spliced: Vec<(usize, String)> = Vec::new();
    let mut pending = String::new();
    let mut pending_line = 0usize;
    for (i, line) in text.lines().enumerate() {
        let lineno = i + 1;
        last_line = lineno;
        let trimmed = line.trim_end();
        if trimmed.ends_with('\\') {
            if pending.is_empty() {
                pending_line = lineno;
            }
            pending.push_str(trimmed.trim_end_matches('\\'));
        } else if pending.is_empty() {
            spliced.push((lineno, trimmed.to_string()));
        } else {
            pending.push_str(trimmed);
            spliced.push((pending_line, std::mem::take(&mut pending)));
        }
    }
    if !pending.is_empty() {
        // A trailing `\` with no continuation line.
        spliced.push((pending_line, pending));
    }

    let parse_quoted_axis = |line: &str, lineno: usize| -> Result<Vec<f64>> {
        let inner = line
            .split('"')
            .nth(1)
            .ok_or_else(|| Error::invalid_input(format!("line {lineno}: axis missing quotes")))?;
        inner
            .split(',')
            .map(|v| {
                let x = v.trim().parse::<f64>().map_err(|e| {
                    Error::invalid_input(format!("line {lineno}: bad axis value: {e}"))
                })?;
                if !x.is_finite() {
                    return Err(Error::invalid_input(format!(
                        "line {lineno}: axis value must be finite, got {}",
                        v.trim()
                    )));
                }
                Ok(x)
            })
            .collect()
    };

    for &(lineno, ref line) in &spliced {
        let l = line.trim();
        if l.starts_with("library (") {
            lib.name = l
                .trim_start_matches("library (")
                .split(')')
                .next()
                .unwrap_or("")
                .to_string();
            depth += 1;
        } else if l.starts_with("cell (") {
            let name = l
                .trim_start_matches("cell (")
                .split(')')
                .next()
                .unwrap_or("");
            cur_cell = Some(ParsedCell {
                name: name.to_string(),
                ..Default::default()
            });
            depth += 1;
        } else if l.starts_with("pin (") {
            cur_pin = Some(
                l.trim_start_matches("pin (")
                    .split(')')
                    .next()
                    .unwrap_or("")
                    .to_string(),
            );
            depth += 1;
        } else if l.starts_with("timing ") {
            cur_arc = Some(ParsedArc::default());
            depth += 1;
        } else if l.starts_with("related_pin") {
            if let Some(arc) = cur_arc.as_mut() {
                arc.related_pin = l.split('"').nth(1).unwrap_or("").to_string();
            }
        } else if l.starts_with("area :") {
            if let Some(c) = cur_cell.as_mut() {
                c.area = attr_value(l, lineno)?;
            }
        } else if l.starts_with("cell_leakage_power :") {
            if let Some(c) = cur_cell.as_mut() {
                c.leakage = attr_value(l, lineno)?;
            }
        } else if l.starts_with("capacitance :") {
            if let (Some(c), Some(pin)) = (cur_cell.as_mut(), cur_pin.as_ref()) {
                c.pin_caps.insert(pin.clone(), attr_value(l, lineno)?);
            }
        } else if l.starts_with("cell_rise")
            || l.starts_with("rise_transition")
            || l.starts_with("ocv_sigma_cell_rise")
            || l.starts_with("ocv_sigma_cell_fall")
        {
            table_kind = Some(l.split_whitespace().next().unwrap_or("").to_string());
            index1 = None;
            index2 = None;
            depth += 1;
        } else if l.starts_with("index_1") {
            index1 = Some(parse_quoted_axis(l, lineno)?);
        } else if l.starts_with("index_2") {
            index2 = Some(parse_quoted_axis(l, lineno)?);
        } else if l.starts_with("values (") {
            let kind = table_kind.clone().ok_or_else(|| {
                Error::invalid_input(format!("line {lineno}: values outside a table"))
            })?;
            let rows_axis = index1.clone().ok_or_else(|| {
                Error::invalid_input(format!("line {lineno}: values before index_1"))
            })?;
            let cols_axis = index2.clone().ok_or_else(|| {
                Error::invalid_input(format!("line {lineno}: values before index_2"))
            })?;
            let mut grid = Vec::new();
            for row_str in l.split('"').skip(1).step_by(2) {
                let row: Result<Vec<f64>> = row_str
                    .split(',')
                    .map(|v| {
                        v.trim().parse::<f64>().map_err(|e| {
                            Error::invalid_input(format!("line {lineno}: bad value: {e}"))
                        })
                    })
                    .collect();
                grid.push(row?);
            }
            let lut = Lut2::new(rows_axis, cols_axis, grid)
                .map_err(|e| Error::invalid_input(format!("line {lineno}: {e}")))?;
            if let Some(arc) = cur_arc.as_mut() {
                arc.tables.push(ParsedTable { kind, lut });
            }
        } else if l == "}" {
            depth -= 1;
            if depth < 0 {
                return Err(Error::invalid_input(format!(
                    "line {lineno}: unexpected closing brace"
                )));
            }
            // Close the innermost open construct.
            if table_kind.take().is_some() {
                // table closed
            } else if let Some(arc) = cur_arc.take() {
                if let Some(c) = cur_cell.as_mut() {
                    c.arcs.push(arc);
                }
            } else if cur_pin.take().is_some() {
                // pin closed
            } else if let Some(c) = cur_cell.take() {
                lib.cells.insert(c.name.clone(), c);
            }
        }
    }
    if depth != 0 {
        return Err(Error::invalid_input(format!(
            "line {last_line}: unbalanced braces: depth {depth} at end of file"
        )));
    }
    Ok(lib)
}

fn attr_value(line: &str, lineno: usize) -> Result<f64> {
    let v = line
        .split(':')
        .nth(1)
        .and_then(|v| v.trim().trim_end_matches(';').parse::<f64>().ok())
        .ok_or_else(|| {
            Error::invalid_input(format!("line {lineno}: bad attribute line: {line}"))
        })?;
    if !v.is_finite() {
        return Err(Error::invalid_input(format!(
            "line {lineno}: attribute must be finite: {line}"
        )));
    }
    Ok(v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corner::PvtCorner;
    use crate::library::{LibConfig, Library};

    fn lib() -> Library {
        // Keep the file small for the test.
        let cfg = LibConfig {
            comb_drives: vec![1.0, 2.0],
            flop_drives: vec![1.0],
            ..Default::default()
        };
        Library::generate(&cfg, &PvtCorner::typical())
    }

    #[test]
    fn writes_well_formed_liberty() {
        let text = write_liberty(&lib());
        assert!(text.starts_with("library ("));
        assert!(text.contains("cell (NAND2_X2_SVT)"));
        assert!(text.contains("ocv_sigma_cell_rise"));
        // Balanced braces.
        let open = text.matches('{').count();
        let close = text.matches('}').count();
        assert_eq!(open, close);
    }

    #[test]
    fn roundtrip_preserves_cells_and_tables() {
        let library = lib();
        let text = write_liberty(&library);
        let parsed = parse_liberty(&text).unwrap();
        assert_eq!(parsed.cells.len(), library.cells().len());

        let nand = &parsed.cells["NAND2_X1_SVT"];
        let orig = library.cell_named("NAND2_X1_SVT").unwrap();
        assert!((nand.area - orig.area_sites).abs() < 1e-3);
        assert!((nand.leakage - orig.leakage_uw).abs() < 1e-5);
        assert!((nand.pin_caps["A"] - orig.input_cap.value()).abs() < 1e-3);
        assert_eq!(nand.arcs.len(), orig.arcs.len());

        // Table values survive the round trip at print precision.
        let arc = nand.arcs.iter().find(|a| a.related_pin == "A").unwrap();
        let rise = arc.tables.iter().find(|t| t.kind == "cell_rise").unwrap();
        for &s in orig.arcs[0].delay.row_axis() {
            for &l in orig.arcs[0].delay.col_axis() {
                let want = orig.arcs[0].delay.eval(s, l);
                let got = rise.lut.eval(s, l);
                assert!(
                    (want - got).abs() < 1e-4,
                    "table mismatch at ({s},{l}): {want} vs {got}"
                );
            }
        }
    }

    #[test]
    fn parser_rejects_unbalanced_input() {
        let err = parse_liberty(
            "library (x) {
  cell (a) {
}",
        )
        .unwrap_err()
        .to_string();
        assert!(err.contains("line 3"), "no line number in: {err}");
    }

    #[test]
    fn parser_errors_carry_line_numbers() {
        let bad = "library (x) {\n  cell (a) {\n    area : potato;\n  }\n}";
        let err = parse_liberty(bad).unwrap_err().to_string();
        assert!(err.contains("line 3"), "no line number in: {err}");

        let extra = "library (x) {\n}\n}";
        let err = parse_liberty(extra).unwrap_err().to_string();
        assert!(err.contains("line 3"), "no line number in: {err}");

        let nan = "library (x) {\n  cell (a) {\n    area : NaN;\n  }\n}";
        let err = parse_liberty(nan).unwrap_err().to_string();
        assert!(err.contains("line 3") && err.contains("finite"), "{err}");
    }

    #[test]
    fn parser_rejects_values_without_axes() {
        let bad = "library (x) {
  cell (a) {
    pin (Y) {
      timing () {
        cell_rise (t) {
          values (\"1.0\");
        }
      }
    }
  }
}";
        assert!(parse_liberty(bad).is_err());
    }
}
