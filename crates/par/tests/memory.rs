//! Concurrent heap accounting: the tc-obs counting allocator must stay
//! coherent when a tc-par pool's workers allocate and free in parallel,
//! and worker threads must show up in the flight recorder under their
//! `tc-par-<i>` lane names.

use std::hint::black_box;
use std::sync::Mutex;

use tc_par::Pool;

/// The allocator's counters are process-global; run these tests one at
/// a time so their deltas don't interleave.
static MEM_LOCK: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    MEM_LOCK.lock().unwrap_or_else(|p| p.into_inner())
}

const ITEMS: usize = 64;
const BUF: usize = 64 * 1024;

#[test]
fn two_workers_account_allocations_coherently() {
    let _serial = lock();
    tc_obs::enable_memory();
    let before = tc_obs::memory_stats();
    let mark = tc_obs::heap_mark();

    let sums: Vec<u64> = Pool::new(2).scope_map(&[(); ITEMS], |i, ()| {
        // Each task allocates, touches, and drops a worker-local buffer.
        let buf = vec![(i % 251) as u8; BUF];
        black_box(buf.iter().map(|&b| u64::from(b)).sum::<u64>())
    });
    assert_eq!(sums.len(), ITEMS);

    let after = tc_obs::memory_stats();
    let delta = mark.delta();

    // Every task's buffer was counted on both sides of its life, with
    // no events lost to the concurrent updates.
    assert!(
        after.allocs >= before.allocs + ITEMS as u64,
        "at least one counted allocation per task: {} -> {}",
        before.allocs,
        after.allocs
    );
    assert!(
        after.allocated_bytes >= before.allocated_bytes + (ITEMS * BUF) as u64,
        "all task buffers were accounted"
    );
    // The buffers are dropped inside the scope: the net movement of the
    // whole parallel region is far smaller than what flowed through it.
    assert!(
        delta.net_bytes.unsigned_abs() < (ITEMS * BUF) as u64 / 2,
        "freed buffers net out, got {} net bytes",
        delta.net_bytes
    );
    // At any instant at least one buffer was live, and the monotonic
    // peak saw it.
    assert!(
        delta.peak_bytes >= BUF as u64,
        "peak growth covers a task buffer, got {}",
        delta.peak_bytes
    );
    assert!(after.peak_bytes >= after.live_bytes);
}

#[test]
fn pool_workers_are_named_lanes_in_the_trace() {
    let _serial = lock();
    tc_obs::enable_trace(tc_obs::DEFAULT_TRACE_CAPACITY);
    tc_obs::clear_trace();

    let got = Pool::new(2).scope_map(&[1u64; 16], |_, &x| {
        black_box((0..2_000u64).fold(x, |a, b| a.wrapping_mul(31).wrapping_add(b)))
    });
    assert_eq!(got.len(), 16);

    let snap = tc_obs::trace_snapshot();
    tc_obs::disable_trace();
    let lanes: Vec<&str> = snap
        .thread_names
        .iter()
        .map(|(_, name)| name.as_str())
        .filter(|n| n.starts_with("tc-par-"))
        .collect();
    // The claim cursor may let one fast worker drain the queue, but at
    // least one named worker lane must have recorded tasks.
    assert!(
        !lanes.is_empty(),
        "expected tc-par-<i> lanes in {:?}",
        snap.thread_names
    );
    assert!(
        snap.events.iter().any(|e| &*e.name == "par.task"),
        "worker tasks were traced"
    );
}
