module m (a, q);
  input a;
  output q;
  INV_X1_SVT u1 (.A(a), .Y(q));
  INV_X1_SVT u1 (.A(a), .Y(q));
endmodule
