//! The BEOL metal stack: per-layer electricals, corners, and variation.

use std::fmt;

use tc_core::rng::Rng;

/// One metal layer's nominal electricals and variation parameters.
#[derive(Clone, Debug, PartialEq)]
pub struct MetalLayer {
    /// Layer name ("M1"…"M9").
    pub name: String,
    /// Resistance per µm at the typical corner, kΩ/µm.
    pub r_per_um: f64,
    /// Ground capacitance per µm, fF/µm.
    pub cg_per_um: f64,
    /// Coupling capacitance per µm (to same-layer neighbours), fF/µm.
    pub cc_per_um: f64,
    /// `true` if the layer is double/multi-patterned (adds corner axes).
    pub multi_patterned: bool,
    /// Relative 1σ of per-layer *global* R variation.
    pub sigma_r: f64,
    /// Relative 1σ of per-layer global C variation.
    pub sigma_c: f64,
}

impl MetalLayer {
    /// RC product of 1 µm of wire (ps/µm²-ish figure of merit) at a
    /// corner — used to rank layer speed.
    pub fn unit_delay(&self, corner: BeolCorner) -> f64 {
        let f = corner.factors(self.multi_patterned);
        (self.r_per_um * f.r) * (self.cg_per_um * f.cg + self.cc_per_um * f.cc)
    }

    /// Total capacitance per µm (ground + coupling) at a corner.
    pub fn c_total_per_um(&self, corner: BeolCorner) -> f64 {
        let f = corner.factors(self.multi_patterned);
        self.cg_per_um * f.cg + self.cc_per_um * f.cc
    }

    /// Resistance per µm at a corner.
    pub fn r_at(&self, corner: BeolCorner) -> f64 {
        self.r_per_um * corner.factors(self.multi_patterned).r
    }
}

/// Conventional homogeneous BEOL corners (paper §3.2): every layer is
/// pushed to the same extreme simultaneously — the pessimism that
/// Tightened BEOL Corners recover.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum BeolCorner {
    /// Nominal extraction.
    #[default]
    Typical,
    /// Worst total capacitance.
    CWorst,
    /// Best (lowest) total capacitance.
    CBest,
    /// Worst *coupling* capacitance (noise/SI signoff).
    CcWorst,
    /// Best coupling capacitance.
    CcBest,
    /// Worst RC product (resistance-dominated paths).
    RcWorst,
    /// Best RC product.
    RcBest,
}

/// Multipliers a corner applies to a layer's electricals.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CornerFactors {
    /// Resistance multiplier.
    pub r: f64,
    /// Ground-capacitance multiplier.
    pub cg: f64,
    /// Coupling-capacitance multiplier.
    pub cc: f64,
}

impl BeolCorner {
    /// Every conventional corner, the set a flat signoff must cover —
    /// and which *doubles* per multi-patterned mask pair (§2.3).
    pub const ALL: [BeolCorner; 7] = [
        BeolCorner::Typical,
        BeolCorner::CWorst,
        BeolCorner::CBest,
        BeolCorner::CcWorst,
        BeolCorner::CcBest,
        BeolCorner::RcWorst,
        BeolCorner::RcBest,
    ];

    /// The multipliers this corner applies. Multi-patterned layers see
    /// wider spreads (mask-to-mask overlay adds variation).
    pub fn factors(self, multi_patterned: bool) -> CornerFactors {
        let w = if multi_patterned { 1.5 } else { 1.0 };
        let spread = |base: f64| 1.0 + (base - 1.0) * w;
        match self {
            BeolCorner::Typical => CornerFactors {
                r: 1.0,
                cg: 1.0,
                cc: 1.0,
            },
            BeolCorner::CWorst => CornerFactors {
                r: spread(0.94),
                cg: spread(1.12),
                cc: spread(1.12),
            },
            BeolCorner::CBest => CornerFactors {
                r: spread(1.06),
                cg: spread(0.88),
                cc: spread(0.88),
            },
            BeolCorner::CcWorst => CornerFactors {
                r: spread(0.97),
                cg: spread(1.02),
                cc: spread(1.25),
            },
            BeolCorner::CcBest => CornerFactors {
                r: spread(1.03),
                cg: spread(0.98),
                cc: spread(0.78),
            },
            BeolCorner::RcWorst => CornerFactors {
                r: spread(1.15),
                cg: spread(1.06),
                cc: spread(1.06),
            },
            BeolCorner::RcBest => CornerFactors {
                r: spread(0.86),
                cg: spread(0.94),
                cc: spread(0.94),
            },
        }
    }

    /// Short report name ("Cw", "RCw", …).
    pub fn name(self) -> &'static str {
        match self {
            BeolCorner::Typical => "typ",
            BeolCorner::CWorst => "Cw",
            BeolCorner::CBest => "Cb",
            BeolCorner::CcWorst => "Ccw",
            BeolCorner::CcBest => "Ccb",
            BeolCorner::RcWorst => "RCw",
            BeolCorner::RcBest => "RCb",
        }
    }
}

impl fmt::Display for BeolCorner {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A full metal stack.
#[derive(Clone, Debug, PartialEq)]
pub struct BeolStack {
    layers: Vec<MetalLayer>,
}

/// One Monte Carlo sample of per-layer global variation: independent
/// multiplicative factors on each layer's R and C. The *independence*
/// across layers is what makes homogeneous corners pessimistic (Fig 8).
#[derive(Clone, Debug, PartialEq)]
pub struct BeolSample {
    /// Per-layer resistance factors.
    pub r: Vec<f64>,
    /// Per-layer capacitance factors.
    pub c: Vec<f64>,
}

impl BeolStack {
    /// A 20 nm-flavoured 9-layer stack: thin double-patterned lower
    /// layers (resistive, variable), fat upper layers (fast, stable).
    pub fn n20() -> Self {
        let mk = |name: &str, r: f64, cg: f64, cc: f64, mp: bool, sr: f64, sc: f64| MetalLayer {
            name: name.to_string(),
            r_per_um: r,
            cg_per_um: cg,
            cc_per_um: cc,
            multi_patterned: mp,
            sigma_r: sr,
            sigma_c: sc,
        };
        BeolStack {
            // Per-layer sigmas are ~1/3 of the enveloping corner spread,
            // so a homogeneous corner ≈ a 3σ excursion of one layer.
            layers: vec![
                mk("M1", 0.0090, 0.080, 0.110, true, 0.070, 0.055),
                mk("M2", 0.0080, 0.085, 0.120, true, 0.070, 0.055),
                mk("M3", 0.0075, 0.085, 0.115, true, 0.060, 0.050),
                mk("M4", 0.0030, 0.095, 0.095, false, 0.045, 0.035),
                mk("M5", 0.0028, 0.095, 0.090, false, 0.045, 0.035),
                mk("M6", 0.0012, 0.110, 0.075, false, 0.035, 0.028),
                mk("M7", 0.0010, 0.115, 0.070, false, 0.035, 0.028),
                mk("M8", 0.0004, 0.130, 0.055, false, 0.025, 0.018),
                mk("M9", 0.0003, 0.130, 0.050, false, 0.025, 0.018),
            ],
        }
    }

    /// Number of layers.
    pub fn layer_count(&self) -> usize {
        self.layers.len()
    }

    /// Layer by index (0 = M1).
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn layer(&self, idx: usize) -> &MetalLayer {
        &self.layers[idx]
    }

    /// All layers.
    pub fn layers(&self) -> &[MetalLayer] {
        &self.layers
    }

    /// Draws one per-layer global-variation sample (independent truncated
    /// Gaussians per layer, ±3σ).
    pub fn sample(&self, rng: &mut Rng) -> BeolSample {
        let clamp3 = |x: f64, s: f64| (1.0 + x.clamp(-3.0, 3.0) * s).max(0.2);
        let mut r = Vec::with_capacity(self.layers.len());
        let mut c = Vec::with_capacity(self.layers.len());
        for l in &self.layers {
            r.push(clamp3(rng.gaussian(), l.sigma_r));
            c.push(clamp3(rng.gaussian(), l.sigma_c));
        }
        BeolSample { r, c }
    }

    /// Number of BEOL extraction corners a flat signoff must carry, given
    /// that every multi-patterned layer doubles the Cw/Cb axes (the
    /// "corner super-explosion" arithmetic of §2.3).
    pub fn flat_corner_count(&self) -> usize {
        let mp_layers = self.layers.iter().filter(|l| l.multi_patterned).count();
        BeolCorner::ALL.len() * (1 << mp_layers.min(4))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stack_is_ordered_fat_on_top() {
        let s = BeolStack::n20();
        assert_eq!(s.layer_count(), 9);
        assert!(s.layer(0).r_per_um > 10.0 * s.layer(8).r_per_um);
        // Unit delay improves going up the stack.
        assert!(
            s.layer(1).unit_delay(BeolCorner::Typical) > s.layer(6).unit_delay(BeolCorner::Typical)
        );
    }

    #[test]
    fn corners_order_correctly() {
        let s = BeolStack::n20();
        let l = s.layer(2);
        assert!(l.c_total_per_um(BeolCorner::CWorst) > l.c_total_per_um(BeolCorner::Typical));
        assert!(l.c_total_per_um(BeolCorner::CBest) < l.c_total_per_um(BeolCorner::Typical));
        assert!(l.r_at(BeolCorner::RcWorst) > l.r_at(BeolCorner::Typical));
        assert!(l.unit_delay(BeolCorner::RcWorst) > l.unit_delay(BeolCorner::Typical));
        // Ccw pushes coupling harder than ground cap.
        let f = BeolCorner::CcWorst.factors(false);
        assert!(f.cc > f.cg);
    }

    #[test]
    fn multipatterned_layers_spread_wider() {
        let f_mp = BeolCorner::CWorst.factors(true);
        let f_sp = BeolCorner::CWorst.factors(false);
        assert!(f_mp.cg > f_sp.cg);
    }

    #[test]
    fn samples_are_per_layer_independent() {
        let s = BeolStack::n20();
        let mut rng = Rng::seed_from(3);
        let mut m1 = Vec::new();
        let mut m8 = Vec::new();
        for _ in 0..4000 {
            let smp = s.sample(&mut rng);
            m1.push(smp.c[0]);
            m8.push(smp.c[7]);
        }
        let corr = tc_core::stats::correlation(&m1, &m8);
        assert!(corr.abs() < 0.05, "layers must vary independently: {corr}");
        // Lower layers vary more.
        let s1 = tc_core::stats::Summary::of(&m1).sigma;
        let s8 = tc_core::stats::Summary::of(&m8).sigma;
        assert!(s1 > 1.5 * s8);
    }

    #[test]
    fn corner_explosion_counts() {
        let s = BeolStack::n20();
        // 7 corners × 2^3 double-patterned lower layers = 56.
        assert_eq!(s.flat_corner_count(), 56);
    }
}
