#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! # tc-sta — static timing analysis
//!
//! The analysis engine at the center of the paper's closure loop (Fig 1):
//! every iteration of timing closure begins with an STA run, and every
//! modeling evolution the paper surveys (§1.3, §3.1) is a change to how
//! this engine derates or searches.
//!
//! * [`constraints`] — clocks, I/O delays, uncertainties, the clock-tree
//!   latency model (with common/local split for CPPR), and the derate
//!   model selection.
//! * [`analysis`] — graph-based analysis (GBA): levelized late/early
//!   arrival propagation with slews, POCV/LVF variance accumulation,
//!   setup/hold checks at flop D pins and primary outputs.
//! * [`report`] — WNS/TNS, slack histograms and the *failure breakdown*
//!   the manual-fix step of Fig 1 consumes (weak drive vs long wire vs
//!   deep path).
//! * [`pba`] — path-based analysis: worst-path extraction and exact
//!   re-evaluation (true path depth for AOCV, RSS sigma along the path),
//!   guaranteed no more pessimistic than GBA (§1.3).
//! * [`si`] — a coupling delta-delay model: aggressor coupling inflates
//!   late arrivals and deflates early ones.
//! * [`mcmm`] — multi-corner multi-mode scenario management (§2.3):
//!   run many (library corner × BEOL corner × mode) scenarios, merge
//!   worst slacks per endpoint; shared-graph runs derive the design's
//!   timing structure once across all corners.
//! * [`timer`] — the persistent incremental timer: a long-lived
//!   [`TimingGraph`](timer::TimingGraph) plus dirty-cone re-propagation
//!   driven by the netlist's ECO edit journal, with O(cone)
//!   checkpoint/rollback for speculative fixes. Bit-identical to a
//!   from-scratch run.
//!
//! # Examples
//!
//! ```
//! use tc_interconnect::BeolStack;
//! use tc_liberty::{LibConfig, Library, PvtCorner};
//! use tc_netlist::gen::{generate, BenchProfile};
//! use tc_sta::{Constraints, Sta};
//!
//! let lib = Library::generate(&LibConfig::default(), &PvtCorner::typical());
//! let nl = generate(&lib, BenchProfile::tiny(), 1)?;
//! let stack = BeolStack::n20();
//! let cons = Constraints::single_clock(1_000.0); // 1 ns
//! let report = Sta::new(&nl, &lib, &stack, &cons).run()?;
//! assert!(report.endpoints.len() > 0);
//! # Ok::<(), tc_core::Error>(())
//! ```

pub mod analysis;
pub mod constraints;
pub mod etm;
pub mod mcmm;
pub mod noise;
pub mod pba;
pub mod report;
pub mod si;
pub mod timer;

pub use analysis::Sta;
pub use constraints::{Clock, ClockTreeModel, Constraints, Exceptions};
pub use etm::Etm;
pub use mcmm::{merge_reports, Scenario};
pub use noise::{noise_check, NoiseConfig, NoiseViolation};
pub use pba::{pba_worst_endpoints, worst_paths, CriticalPath, PathStage, PbaEndpoint};
pub use report::{Endpoint, EndpointTiming, FailureClass, TimingReport};
pub use timer::{Timer, TimerCheckpoint, TimingGraph};
