#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! # tc-placement — row placement and minimum-implant-area rules
//!
//! The paper's §2.4 ("Placement-Sizing Interferences", Fig 6a): at
//! foundry 20 nm and below, implant layers that define a cell's Vt carry
//! *minimum-area* rules, so a narrow cell of one Vt sandwiched between
//! cells of another Vt creates a design-rule violation. Post-route
//! Vt-swapping — the cheapest timing fix — is therefore no longer
//! placement-independent.
//!
//! * [`rows`] — a site/row placement model with cell positions (also the
//!   geometry source for `tc-clock`'s tree construction).
//! * [`minia`] — the MinIA rule checker and the fixing heuristics of
//!   ref \[24\]: Vt-homogenization of short islands and
//!   perturbation-minimizing cell swaps, under a timing veto supplied by
//!   the caller.
//!
//! # Examples
//!
//! ```
//! use tc_liberty::{LibConfig, Library, PvtCorner};
//! use tc_netlist::gen::{generate, BenchProfile};
//! use tc_placement::rows::Placement;
//!
//! let lib = Library::generate(&LibConfig::default(), &PvtCorner::typical());
//! let nl = generate(&lib, BenchProfile::tiny(), 1)?;
//! let pl = Placement::row_fill(&nl, &lib, 64, 7);
//! assert!(pl.row_count() > 0);
//! # Ok::<(), tc_core::Error>(())
//! ```

pub mod minia;
pub mod rows;

pub use minia::{MinIaRule, MiniaFixReport};
pub use rows::{PlacedCell, Placement};
