//! Timing reports: WNS/TNS, slack histograms, and the failure breakdown
//! that drives the manual-fix step of the paper's Fig 1.

use tc_core::ids::{CellId, NetId};
use tc_core::stats::Histogram;
use tc_core::units::Ps;

/// A timing endpoint.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Endpoint {
    /// Setup/hold check at a flop's D pin.
    FlopD(CellId),
    /// Setup-style check at a primary output.
    Output(NetId),
}

/// Per-endpoint timing results.
#[derive(Clone, Debug, PartialEq)]
pub struct EndpointTiming {
    /// Which endpoint.
    pub endpoint: Endpoint,
    /// Setup (max-delay) slack.
    pub setup_slack: Ps,
    /// Hold (min-delay) slack; +∞ at outputs.
    pub hold_slack: Ps,
    /// Late data arrival.
    pub arrival: Ps,
    /// Required time used for the setup check.
    pub required: Ps,
    /// Worst-path stage count.
    pub depth: usize,
    /// Cumulative gate delay of the worst path, ps.
    pub gate_ps: f64,
    /// Cumulative wire delay of the worst path, ps.
    pub wire_ps: f64,
    /// Data slew at the endpoint, ps.
    pub data_slew: f64,
}

impl EndpointTiming {
    /// Fraction of the worst path's delay spent in wires.
    pub fn wire_fraction(&self) -> f64 {
        let total = self.gate_ps + self.wire_ps;
        if total <= 0.0 {
            0.0
        } else {
            self.wire_ps / total
        }
    }
}

/// Coarse cause classification of a setup violation — the "breakdown of
/// timing failures" step in Fig 1, which decides the fix to apply.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FailureClass {
    /// Wire-dominated path: buffer / NDR / layer-promotion territory.
    LongWire,
    /// Unusually deep path: restructure or useful-skew territory.
    DeepPath,
    /// Gate-dominated shallow path: Vt-swap / upsizing territory.
    WeakDrive,
}

/// The result of one STA run.
#[derive(Clone, Debug)]
pub struct TimingReport {
    /// Every checked endpoint.
    pub endpoints: Vec<EndpointTiming>,
    /// The clock period the run was constrained to.
    pub period: Ps,
}

impl TimingReport {
    /// Assembles a report.
    pub fn from_endpoints(endpoints: Vec<EndpointTiming>, period: Ps) -> Self {
        TimingReport { endpoints, period }
    }

    /// Worst negative (setup) slack — the headline number of every
    /// closure iteration. Positive if timing is met.
    pub fn wns(&self) -> Ps {
        self.endpoints
            .iter()
            .map(|e| e.setup_slack)
            .fold(Ps::new(f64::INFINITY), Ps::min)
    }

    /// Total negative setup slack (sum over violating endpoints).
    pub fn tns(&self) -> Ps {
        self.endpoints
            .iter()
            .filter(|e| e.setup_slack < Ps::ZERO)
            .map(|e| e.setup_slack)
            .sum()
    }

    /// Worst hold slack.
    pub fn hold_wns(&self) -> Ps {
        self.endpoints
            .iter()
            .map(|e| e.hold_slack)
            .fold(Ps::new(f64::INFINITY), Ps::min)
    }

    /// Total negative hold slack.
    pub fn hold_tns(&self) -> Ps {
        self.endpoints
            .iter()
            .filter(|e| e.hold_slack < Ps::ZERO)
            .map(|e| e.hold_slack)
            .sum()
    }

    /// Number of setup-violating endpoints.
    pub fn setup_violations(&self) -> usize {
        self.endpoints
            .iter()
            .filter(|e| e.setup_slack < Ps::ZERO)
            .count()
    }

    /// Number of hold-violating endpoints.
    pub fn hold_violations(&self) -> usize {
        self.endpoints
            .iter()
            .filter(|e| e.hold_slack < Ps::ZERO)
            .count()
    }

    /// `true` if every endpoint meets both setup and hold.
    pub fn is_clean(&self) -> bool {
        self.setup_violations() == 0 && self.hold_violations() == 0
    }

    /// The `k` worst setup endpoints, most critical first.
    pub fn worst_endpoints(&self, k: usize) -> Vec<&EndpointTiming> {
        let mut v: Vec<&EndpointTiming> = self.endpoints.iter().collect();
        v.sort_by(|a, b| a.setup_slack.value().total_cmp(&b.setup_slack.value()));
        v.truncate(k);
        v
    }

    /// Classifies a violating endpoint's dominant cause.
    pub fn classify(&self, e: &EndpointTiming) -> FailureClass {
        let max_depth = self.endpoints.iter().map(|x| x.depth).max().unwrap_or(1);
        if e.wire_fraction() > 0.45 {
            FailureClass::LongWire
        } else if e.depth * 10 >= max_depth * 8 {
            FailureClass::DeepPath
        } else {
            FailureClass::WeakDrive
        }
    }

    /// Failure breakdown: violating-endpoint count per cause class.
    pub fn failure_breakdown(&self) -> Vec<(FailureClass, usize)> {
        let mut counts = [
            (FailureClass::LongWire, 0usize),
            (FailureClass::DeepPath, 0),
            (FailureClass::WeakDrive, 0),
        ];
        for e in self.endpoints.iter().filter(|e| e.setup_slack < Ps::ZERO) {
            let c = self.classify(e);
            for entry in counts.iter_mut() {
                if entry.0 == c {
                    entry.1 += 1;
                }
            }
        }
        counts.to_vec()
    }

    /// A slack histogram over `[lo, hi]` ps with the given bin count.
    pub fn slack_histogram(&self, lo: f64, hi: f64, bins: usize) -> Histogram {
        let mut h = Histogram::new(lo, hi, bins);
        for e in &self.endpoints {
            h.add(e.setup_slack.value());
        }
        h
    }

    /// One-line summary string for logs and harness output.
    pub fn summary(&self) -> String {
        format!(
            "WNS {:.1} ps | TNS {:.1} ps | setup viol {} | hold WNS {:.1} ps | hold viol {} | endpoints {}",
            self.wns().value(),
            self.tns().value(),
            self.setup_violations(),
            self.hold_wns().value(),
            self.hold_violations(),
            self.endpoints.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ep(slack: f64, hold: f64, depth: usize, gate: f64, wire: f64) -> EndpointTiming {
        EndpointTiming {
            endpoint: Endpoint::FlopD(CellId::new(0)),
            setup_slack: Ps::new(slack),
            hold_slack: Ps::new(hold),
            arrival: Ps::new(500.0),
            required: Ps::new(500.0 + slack),
            depth,
            gate_ps: gate,
            wire_ps: wire,
            data_slew: 30.0,
        }
    }

    #[test]
    fn wns_tns_and_counts() {
        let r = TimingReport::from_endpoints(
            vec![
                ep(-50.0, 10.0, 10, 300.0, 50.0),
                ep(-10.0, -5.0, 4, 100.0, 200.0),
                ep(30.0, 20.0, 6, 200.0, 40.0),
            ],
            Ps::new(1000.0),
        );
        assert_eq!(r.wns(), Ps::new(-50.0));
        assert_eq!(r.tns(), Ps::new(-60.0));
        assert_eq!(r.setup_violations(), 2);
        assert_eq!(r.hold_violations(), 1);
        assert_eq!(r.hold_wns(), Ps::new(-5.0));
        assert!(!r.is_clean());
        let worst = r.worst_endpoints(2);
        assert_eq!(worst[0].setup_slack, Ps::new(-50.0));
        assert_eq!(worst.len(), 2);
    }

    #[test]
    fn classification_by_cause() {
        let r = TimingReport::from_endpoints(
            vec![
                ep(-50.0, 10.0, 10, 300.0, 50.0), // deep (max depth)
                ep(-10.0, 10.0, 4, 100.0, 200.0), // wire-dominated
                ep(-5.0, 10.0, 3, 200.0, 20.0),   // shallow, gate-dominated
            ],
            Ps::new(1000.0),
        );
        assert_eq!(r.classify(&r.endpoints[0]), FailureClass::DeepPath);
        assert_eq!(r.classify(&r.endpoints[1]), FailureClass::LongWire);
        assert_eq!(r.classify(&r.endpoints[2]), FailureClass::WeakDrive);
        let breakdown = r.failure_breakdown();
        let total: usize = breakdown.iter().map(|&(_, n)| n).sum();
        assert_eq!(total, 3);
    }

    #[test]
    fn clean_report() {
        let r = TimingReport::from_endpoints(vec![ep(5.0, 5.0, 3, 100.0, 10.0)], Ps::new(1000.0));
        assert!(r.is_clean());
        assert_eq!(r.tns(), Ps::ZERO);
        assert!(r.summary().contains("WNS 5.0"));
    }

    #[test]
    fn histogram_covers_endpoints() {
        let r = TimingReport::from_endpoints(
            vec![ep(-20.0, 1.0, 3, 1.0, 1.0), ep(20.0, 1.0, 3, 1.0, 1.0)],
            Ps::new(1000.0),
        );
        let h = r.slack_histogram(-50.0, 50.0, 4);
        assert_eq!(h.counts().iter().sum::<usize>(), 2);
    }
}

#[cfg(test)]
mod proptests {
    //! Randomized invariants driven by the in-tree deterministic RNG.

    use super::*;
    use tc_core::rng::Rng;

    fn random_endpoint(rng: &mut Rng) -> EndpointTiming {
        let setup = rng.uniform_in(-500.0, 500.0);
        EndpointTiming {
            endpoint: Endpoint::FlopD(CellId::new(rng.below(50))),
            setup_slack: Ps::new(setup),
            hold_slack: Ps::new(rng.uniform_in(-200.0, 500.0)),
            arrival: Ps::new(1000.0 - setup),
            required: Ps::new(1000.0),
            depth: 1 + rng.below(39),
            gate_ps: rng.uniform_in(0.0, 400.0),
            wire_ps: rng.uniform_in(0.0, 400.0),
            data_slew: 30.0,
        }
    }

    #[test]
    fn invariants_of_aggregates() {
        let mut rng = Rng::seed_from(0x4e9);
        for _ in 0..64 {
            let n = 1 + rng.below(39);
            let eps: Vec<EndpointTiming> = (0..n).map(|_| random_endpoint(&mut rng)).collect();
            let r = TimingReport::from_endpoints(eps.clone(), Ps::new(1000.0));
            // WNS is the min slack; TNS ≤ 0 and ≤ WNS when violating.
            let min = eps
                .iter()
                .map(|e| e.setup_slack)
                .fold(Ps::new(f64::INFINITY), Ps::min);
            assert_eq!(r.wns(), min);
            assert!(r.tns() <= Ps::ZERO);
            if r.wns() < Ps::ZERO {
                assert!(r.tns() <= r.wns());
                assert!(r.setup_violations() >= 1);
            } else {
                assert_eq!(r.tns(), Ps::ZERO);
                assert_eq!(r.setup_violations(), 0);
            }
            // worst_endpoints is sorted and bounded.
            let w = r.worst_endpoints(5);
            assert!(w.len() <= 5);
            for pair in w.windows(2) {
                assert!(pair[0].setup_slack <= pair[1].setup_slack);
            }
            // Breakdown covers exactly the violating endpoints.
            let total: usize = r.failure_breakdown().iter().map(|&(_, n)| n).sum();
            assert_eq!(total, r.setup_violations());
            // Histogram + outliers account for every endpoint.
            let h = r.slack_histogram(-500.0, 500.0, 10);
            assert_eq!(h.counts().iter().sum::<usize>() + h.outliers(), eps.len());
        }
    }
}
