//! **Fig 1** — the five-iteration top-level closure loop (MacDonald,
//! ref \[30\]): STA → failure breakdown → ordered manual fixes, with
//! timing improving each iteration.
//!
//! Reproduces: per-iteration WNS/TNS/violation counts and the fix mix
//! (Vt-swap first, then sizing, buffering, NDR, useful skew), plus the
//! schedule model (three-day iterations). Runs under tc-obs with the
//! flight recorder armed: the per-phase timing report is printed after
//! the table, the whole run lands in a JSON sidecar
//! (`fig01_closure_loop.json`), a schema-versioned run artifact in
//! `RUN_fig01_closure_loop.json`, the per-event trace in
//! `fig01_closure_loop.trace.json` / `.folded`, and the reduced span
//! profile in `PROF_fig01_closure_loop.json` (directory
//! `$TC_BENCH_OUT`, default `artifacts/`).

use tc_bench::{
    fmt, print_table, standard_env, write_json_sidecar, write_prof_sidecar, write_run_artifact,
    write_trace_sidecars,
};
use tc_closure::flow::{ClosureConfig, ClosureFlow};
use tc_obs::JsonValue;
use tc_sta::{Constraints, Sta};

fn main() {
    tc_obs::enable();
    tc_obs::enable_trace(tc_obs::DEFAULT_TRACE_CAPACITY);
    let (lib, stack) = standard_env();
    let mut nl = tc_bench::bench_netlist(&lib, "soc_block", 2015);

    // Constrain the block 500 ps beyond its as-generated capability —
    // enough that no single fix pass can close it, so the iterative
    // character of Fig 1 is visible.
    let probe = Constraints::single_clock(6_000.0);
    let r = Sta::new(&nl, &lib, &stack, &probe).run().expect("sta");
    let period = 6_000.0 - r.wns().value() - 500.0;
    println!(
        "design: {} cells | probe WNS at 6 ns: {:.1} ps | closure period: {:.0} ps",
        nl.cell_count(),
        r.wns().value(),
        period
    );
    let cons = Constraints::single_clock(period);

    let before = Sta::new(&nl, &lib, &stack, &cons).run().expect("sta");
    println!("entering closure: {}", before.summary());
    let breakdown = before.failure_breakdown();
    println!("failure breakdown: {breakdown:?}");

    // The probe runs above are prologue, not the loop being measured.
    tc_obs::reset();

    let config = ClosureConfig {
        budget_per_pass: 15,
        k_paths: 8,
        ..Default::default()
    };
    let mut flow = ClosureFlow::new(&lib, &stack, config);
    let out = flow.run(&mut nl, cons).expect("closure flow");

    let rows: Vec<Vec<String>> = out
        .iterations
        .iter()
        .map(|it| {
            let fixes = it
                .fixes
                .iter()
                .map(|(k, n)| format!("{}:{n}", k.label()))
                .collect::<Vec<_>>()
                .join(" ");
            vec![
                it.iteration.to_string(),
                fmt(it.wns_before.value(), 1),
                fmt(it.wns_after.value(), 1),
                fmt(it.tns_after.value(), 1),
                it.violations_after.to_string(),
                fmt(it.elapsed_ms, 0),
                it.counter_delta("sta.arcs_evaluated").to_string(),
                fixes,
            ]
        })
        .collect();
    print_table(
        "Fig 1: closure iterations",
        &[
            "iter", "WNS in", "WNS out", "TNS out", "viol", "ms", "arcs", "fixes",
        ],
        &rows,
    );
    println!(
        "\nclosed: {} | schedule: {:.0} days ({} iterations of 3 days)",
        out.closed,
        out.days,
        out.iterations.len()
    );
    println!("final: {}", out.final_report.summary());

    // Signoff cross-check: a from-scratch full STA on the pool must
    // agree with the incremental timer bit for bit. Doubles as the
    // multi-thread section of the trace when TC_PAR_THREADS > 1.
    let signoff = {
        let _span = tc_obs::span("signoff.sta");
        Sta::new(&nl, &lib, &stack, &out.constraints)
            .with_parallel(tc_par::Pool::from_env())
            .run()
            .expect("signoff sta")
    };
    assert_eq!(
        signoff.wns(),
        out.final_report.wns(),
        "parallel signoff STA disagrees with the incremental timer"
    );

    let snapshot = tc_obs::snapshot();
    println!("\n{}", snapshot.render_text());

    let iterations: Vec<JsonValue> = out
        .iterations
        .iter()
        .map(|it| {
            let deltas: Vec<(String, JsonValue)> = it
                .counter_deltas
                .iter()
                .map(|(n, v)| (n.clone(), JsonValue::from(*v)))
                .collect();
            JsonValue::obj([
                ("iteration", JsonValue::from(it.iteration)),
                ("wns_before_ps", JsonValue::from(it.wns_before.value())),
                ("wns_after_ps", JsonValue::from(it.wns_after.value())),
                ("tns_after_ps", JsonValue::from(it.tns_after.value())),
                ("violations_after", JsonValue::from(it.violations_after)),
                ("elapsed_ms", JsonValue::from(it.elapsed_ms)),
                ("counter_deltas", JsonValue::Obj(deltas)),
                (
                    "fixes",
                    JsonValue::Arr(
                        it.fixes
                            .iter()
                            .map(|(k, n)| {
                                JsonValue::obj([
                                    ("fix", JsonValue::str(k.label())),
                                    ("edits", JsonValue::from(*n)),
                                ])
                            })
                            .collect(),
                    ),
                ),
            ])
        })
        .collect();
    let doc = JsonValue::obj([
        ("figure", JsonValue::str("fig01_closure_loop")),
        ("closed", JsonValue::from(out.closed)),
        ("days", JsonValue::from(out.days)),
        ("iterations", JsonValue::Arr(iterations)),
        ("observability", snapshot.to_json_value()),
    ]);
    match write_json_sidecar("fig01_closure_loop", &doc.render()) {
        Ok(path) => println!("sidecar: {}", path.display()),
        Err(e) => eprintln!("sidecar write failed: {e}"),
    }

    let artifact = flow
        .run_artifact("fig01_closure_loop soc_block", &out)
        .extra("final_cells", JsonValue::from(nl.cell_count()));
    match write_run_artifact("fig01_closure_loop", &artifact) {
        Ok(path) => println!("run artifact: {}", path.display()),
        Err(e) => eprintln!("run artifact write failed: {e}"),
    }
    match write_trace_sidecars("fig01_closure_loop") {
        Ok(Some(path)) => println!("trace: {}", path.display()),
        Ok(None) => {}
        Err(e) => eprintln!("trace write failed: {e}"),
    }
    match write_prof_sidecar("fig01_closure_loop", "fig01_closure_loop soc_block") {
        Ok(Some(path)) => println!("profile: {}", path.display()),
        Ok(None) => {}
        Err(e) => eprintln!("profile write failed: {e}"),
    }
}
