//! Seeded synthetic netlist generators.
//!
//! The paper's Fig 9 evaluates on ISCAS-85 c5315/c7552 plus AES and MPEG2
//! cores; those netlists (and the commercial synthesis flow producing
//! them) are not redistributable, so we generate random-logic designs
//! with matching *profiles* — gate count, register count, logic depth and
//! fan-in distribution — which is what the figure's power/area tradeoff
//! shapes actually depend on.

use tc_core::error::Result;
use tc_core::ids::NetId;
use tc_core::rng::Rng;
use tc_device::VtClass;
use tc_liberty::Library;

use crate::graph::Netlist;

/// Size/shape profile of a synthetic benchmark.
#[derive(Clone, Debug, PartialEq)]
pub struct BenchProfile {
    /// Design name.
    pub name: &'static str,
    /// Number of combinational gates.
    pub gates: usize,
    /// Number of flops.
    pub flops: usize,
    /// Number of primary inputs.
    pub inputs: usize,
    /// Number of primary outputs.
    pub outputs: usize,
    /// Recency-bias window for input selection; smaller ⇒ deeper logic.
    pub window: usize,
}

impl BenchProfile {
    /// ISCAS-85 c5315 stand-in (~2.3 k gates, combinational with a
    /// registered boundary added).
    pub fn c5315() -> Self {
        BenchProfile {
            name: "c5315",
            gates: 2_300,
            flops: 180,
            inputs: 178,
            outputs: 123,
            window: 220,
        }
    }

    /// ISCAS-85 c7552 stand-in (~3.5 k gates).
    pub fn c7552() -> Self {
        BenchProfile {
            name: "c7552",
            gates: 3_500,
            flops: 210,
            inputs: 207,
            outputs: 108,
            window: 300,
        }
    }

    /// AES core stand-in (~12 k gates, shallow & wide).
    pub fn aes() -> Self {
        BenchProfile {
            name: "aes",
            gates: 12_000,
            flops: 530,
            inputs: 260,
            outputs: 129,
            window: 1_500,
        }
    }

    /// MPEG2 encoder stand-in (~15 k gates, deeper datapath).
    pub fn mpeg2() -> Self {
        BenchProfile {
            name: "mpeg2",
            gates: 15_000,
            flops: 900,
            inputs: 190,
            outputs: 170,
            window: 900,
        }
    }

    /// A small profile for fast unit tests.
    pub fn tiny() -> Self {
        BenchProfile {
            name: "tiny",
            gates: 120,
            flops: 16,
            inputs: 8,
            outputs: 8,
            window: 24,
        }
    }

    /// A mid-size SoC-block profile for closure-flow experiments (Fig 1).
    pub fn soc_block() -> Self {
        BenchProfile {
            name: "soc_block",
            gates: 6_000,
            flops: 450,
            inputs: 96,
            outputs: 96,
            window: 420,
        }
    }

    /// The Fig 9 benchmark set in paper order.
    pub fn fig9_set() -> [BenchProfile; 4] {
        [
            BenchProfile::c5315(),
            BenchProfile::c7552(),
            BenchProfile::aes(),
            BenchProfile::mpeg2(),
        ]
    }
}

/// Weighted gate-template mix of the generator.
const TEMPLATE_MIX: [(&str, u32); 6] = [
    ("INV", 18),
    ("BUF", 8),
    ("NAND2", 30),
    ("NOR2", 20),
    ("AOI21", 16),
    ("XOR2", 8),
];

fn pick_template(rng: &mut Rng) -> &'static str {
    let total: u32 = TEMPLATE_MIX.iter().map(|&(_, w)| w).sum();
    let mut roll = rng.below(total as usize) as u32;
    for &(name, w) in &TEMPLATE_MIX {
        if roll < w {
            return name;
        }
        roll -= w;
    }
    "NAND2"
}

/// Picks a driver signal with recency bias: recent signals are preferred,
/// which strings gates into paths of controlled depth.
fn pick_signal(rng: &mut Rng, pool: &[NetId], window: usize) -> NetId {
    let w = window.min(pool.len());
    let from_recent = rng.chance(0.75) && w > 0;
    if from_recent {
        pool[pool.len() - 1 - rng.below(w)]
    } else {
        *rng.choose(pool)
    }
}

/// Generates a seeded random-logic netlist matching the given profile.
/// The same `(profile, seed)` pair always yields the identical netlist.
///
/// # Errors
///
/// Propagates netlist construction errors (which indicate a bug in the
/// generator rather than bad input).
pub fn generate(lib: &Library, profile: BenchProfile, seed: u64) -> Result<Netlist> {
    let mut rng = Rng::seed_from(seed ^ 0x6e_6574_6c69_7374);
    let mut nl = Netlist::new(profile.name);

    let clk = nl.add_input("clk");
    let mut pool: Vec<NetId> = Vec::new();
    for i in 0..profile.inputs {
        pool.push(nl.add_input(format!("pi{i}")));
    }

    // Registers first: their Q outputs seed the signal pool. D inputs are
    // temporarily tied to a PI and rewired once the logic exists.
    let dff = lib
        .variant("DFF", VtClass::Svt, 1.0)
        .expect("library has DFF_X1_SVT");
    let mut flops = Vec::with_capacity(profile.flops);
    for i in 0..profile.flops {
        let d_placeholder = pool[rng.below(pool.len())];
        let (ff, q) = nl.add_cell(format!("ff{i}"), lib, dff, &[d_placeholder, clk])?;
        flops.push(ff);
        pool.push(q);
    }

    // Combinational cloud.
    let drives = [1.0, 1.0, 2.0, 2.0, 4.0];
    for i in 0..profile.gates {
        let tmpl = pick_template(&mut rng);
        let drive = drives[rng.below(drives.len())];
        let master = lib
            .variant(tmpl, VtClass::Svt, drive)
            .expect("library has all generator templates");
        let n_in = lib.cell(master).input_pins().len();
        let inputs: Vec<NetId> = (0..n_in)
            .map(|_| pick_signal(&mut rng, &pool, profile.window))
            .collect();
        let (_, out) = nl.add_cell(format!("g{i}"), lib, master, &inputs)?;
        pool.push(out);
    }

    // Rewire each flop's D to a signal from the most recent logic so
    // register-to-register paths traverse the cloud.
    let recent = profile.window.min(pool.len());
    for &ff in &flops {
        let d_net = pool[pool.len() - 1 - rng.below(recent)];
        nl.rewire_input(crate::graph::PinRef { cell: ff, pin: 0 }, d_net);
    }

    // Primary outputs from the deepest signals.
    for k in 0..profile.outputs.min(pool.len()) {
        let net = pool[pool.len() - 1 - k];
        nl.mark_output(net);
    }

    // Plausible wirelengths: mostly short, occasionally long (the long
    // tail is what NDR/buffering fixes exist for).
    for i in 0..nl.net_count() {
        let um = if rng.chance(0.06) {
            rng.uniform_in(150.0, 900.0)
        } else {
            rng.uniform_in(2.0, 80.0)
        };
        nl.set_wire_length(NetId::new(i), um);
    }

    Ok(nl)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::level::levelize;
    use tc_liberty::{LibConfig, PvtCorner};

    fn lib() -> Library {
        Library::generate(&LibConfig::default(), &PvtCorner::typical())
    }

    #[test]
    fn generator_is_deterministic() {
        let lib = lib();
        let a = generate(&lib, BenchProfile::tiny(), 7).unwrap();
        let b = generate(&lib, BenchProfile::tiny(), 7).unwrap();
        assert_eq!(a.cell_count(), b.cell_count());
        for (ca, cb) in a.cells().iter().zip(b.cells()) {
            assert_eq!(ca.master, cb.master);
            assert_eq!(ca.inputs, cb.inputs);
        }
        let c = generate(&lib, BenchProfile::tiny(), 8).unwrap();
        let differs = a
            .cells()
            .iter()
            .zip(c.cells())
            .any(|(x, y)| x.master != y.master || x.inputs != y.inputs);
        assert!(differs, "different seeds should differ");
    }

    #[test]
    fn generated_netlists_are_valid_and_acyclic() {
        let lib = lib();
        for seed in [1, 2, 3] {
            let nl = generate(&lib, BenchProfile::tiny(), seed).unwrap();
            nl.validate(&lib).unwrap();
            let lv = levelize(&nl, &lib).unwrap();
            assert!(lv.max_depth() >= 3, "depth {}", lv.max_depth());
        }
    }

    #[test]
    fn profile_counts_respected() {
        let lib = lib();
        let p = BenchProfile::tiny();
        let nl = generate(&lib, p.clone(), 42).unwrap();
        assert_eq!(nl.cell_count(), p.gates + p.flops);
        assert_eq!(nl.flops(&lib).count(), p.flops);
        // clk + PIs
        assert_eq!(nl.primary_inputs().len(), p.inputs + 1);
        assert_eq!(nl.primary_outputs().count(), p.outputs);
    }

    #[test]
    fn c5315_profile_scales() {
        let lib = lib();
        let nl = generate(&lib, BenchProfile::c5315(), 42).unwrap();
        assert!(nl.cell_count() > 2_000);
        nl.validate(&lib).unwrap();
        let lv = levelize(&nl, &lib).unwrap();
        assert!(
            (8..120).contains(&lv.max_depth()),
            "plausible depth, got {}",
            lv.max_depth()
        );
    }

    #[test]
    fn wirelengths_have_a_long_tail() {
        let lib = lib();
        let nl = generate(&lib, BenchProfile::c5315(), 42).unwrap();
        let long = nl
            .nets()
            .iter()
            .filter(|n| n.wire_length_um > 150.0)
            .count();
        let short = nl
            .nets()
            .iter()
            .filter(|n| n.wire_length_um <= 80.0)
            .count();
        assert!(long > 0 && short > 10 * long);
    }
}
