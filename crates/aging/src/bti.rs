//! Bias-temperature-instability (BTI) threshold-shift model.
//!
//! Long-term DC-stress form: `ΔVt = A · exp((V−V₀)/Vα) · θ(T) · t^n`,
//! with the fractional time exponent `n ≈ 0.2` of reaction-diffusion
//! models and an exponential voltage-acceleration term — the property
//! that makes AVS compensation self-aggravating (§3.3).

use tc_core::units::{Celsius, Volt};

/// BTI model parameters.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BtiModel {
    /// Prefactor: ΔVt in volts after 1 year at `v_ref`, 105 °C.
    pub a: f64,
    /// Reference voltage of the prefactor.
    pub v_ref: Volt,
    /// Voltage-acceleration scale (V per e-fold).
    pub v_alpha: f64,
    /// Time exponent n.
    pub n: f64,
    /// Temperature activation: e-folds per 60 °C above 105 °C.
    pub t_scale: f64,
}

impl BtiModel {
    /// A 28 nm-class calibration: ~25 mV after 1 year, ~40 mV after
    /// 10 years at nominal stress.
    pub fn nominal_28nm() -> Self {
        BtiModel {
            a: 0.025,
            v_ref: Volt::new(0.9),
            // Weak enough that the AVS feedback loop (raise V → age
            // faster → raise V) converges, as production parts do.
            v_alpha: 0.25,
            n: 0.2,
            t_scale: 60.0,
        }
    }

    /// Threshold shift (V) after `years` of DC stress at supply `v` and
    /// temperature `t`.
    pub fn delta_vt(&self, years: f64, v: Volt, t: Celsius) -> f64 {
        if years <= 0.0 {
            return 0.0;
        }
        let accel_v = ((v.value() - self.v_ref.value()) / self.v_alpha).exp();
        let accel_t = ((t.value() - 105.0) / self.t_scale).exp();
        self.a * accel_v * accel_t * years.powf(self.n)
    }

    /// Incremental shift over `[t0, t1]` years at constant stress —
    /// power-law aging accumulated piecewise, which is how the AVS loop
    /// integrates a time-varying voltage schedule.
    pub fn increment(&self, t0: f64, t1: f64, v: Volt, t: Celsius) -> f64 {
        (self.delta_vt(t1, v, t) - self.delta_vt(t0, v, t)).max(0.0)
    }

    /// The stress time (years) that produces a given ΔVt at the
    /// reference conditions — used to express signoff corners as
    /// "assume N years of aging".
    pub fn years_for(&self, dvt: f64, v: Volt, t: Celsius) -> f64 {
        let accel_v = ((v.value() - self.v_ref.value()) / self.v_alpha).exp();
        let accel_t = ((t.value() - 105.0) / self.t_scale).exp();
        (dvt / (self.a * accel_v * accel_t)).powf(1.0 / self.n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m() -> BtiModel {
        BtiModel::nominal_28nm()
    }

    #[test]
    fn aging_grows_sublinearly_in_time() {
        let m = m();
        let v = Volt::new(0.9);
        let t = Celsius::new(105.0);
        let y1 = m.delta_vt(1.0, v, t);
        let y10 = m.delta_vt(10.0, v, t);
        assert!(y10 > y1);
        assert!(
            y10 < 5.0 * y1,
            "t^0.2: 10 years ≈ 1.58× of 1 year, got {}",
            y10 / y1
        );
        assert_eq!(m.delta_vt(0.0, v, t), 0.0);
    }

    #[test]
    fn voltage_accelerates_aging() {
        let m = m();
        let t = Celsius::new(105.0);
        let lo = m.delta_vt(5.0, Volt::new(0.8), t);
        let hi = m.delta_vt(5.0, Volt::new(1.0), t);
        assert!(hi > 2.0 * lo, "±100 mV ≈ e^±0.83 each way: {lo} vs {hi}");
    }

    #[test]
    fn temperature_accelerates_aging() {
        let m = m();
        let v = Volt::new(0.9);
        assert!(m.delta_vt(5.0, v, Celsius::new(125.0)) > m.delta_vt(5.0, v, Celsius::new(85.0)));
    }

    #[test]
    fn increments_sum_to_total_at_constant_stress() {
        let m = m();
        let v = Volt::new(0.9);
        let t = Celsius::new(105.0);
        let whole = m.delta_vt(8.0, v, t);
        let pieces =
            m.increment(0.0, 2.0, v, t) + m.increment(2.0, 5.0, v, t) + m.increment(5.0, 8.0, v, t);
        assert!((whole - pieces).abs() < 1e-12);
    }

    #[test]
    fn years_for_inverts_delta_vt() {
        let m = m();
        let v = Volt::new(0.9);
        let t = Celsius::new(105.0);
        let dvt = m.delta_vt(7.0, v, t);
        assert!((m.years_for(dvt, v, t) - 7.0).abs() < 1e-9);
    }
}

#[cfg(test)]
mod proptests {
    //! Randomized invariants driven by the in-tree deterministic RNG.

    use super::*;
    use tc_core::rng::Rng;

    #[test]
    fn increments_are_additive_and_nonnegative() {
        let m = BtiModel::nominal_28nm();
        let mut rng = Rng::seed_from(0xb71);
        for _ in 0..128 {
            let split = rng.uniform_in(0.01, 0.99);
            let total = rng.uniform_in(0.5, 20.0);
            let v = Volt::new(rng.uniform_in(0.7, 1.1));
            let t = Celsius::new(rng.uniform_in(25.0, 125.0));
            let mid = total * split;
            let a = m.increment(0.0, mid, v, t);
            let b = m.increment(mid, total, v, t);
            assert!(a >= 0.0 && b >= 0.0);
            assert!((a + b - m.delta_vt(total, v, t)).abs() < 1e-12);
        }
    }

    #[test]
    fn years_for_is_a_right_inverse() {
        let m = BtiModel::nominal_28nm();
        let t = Celsius::new(105.0);
        let mut rng = Rng::seed_from(0xb72);
        for _ in 0..128 {
            let years = rng.uniform_in(0.05, 30.0);
            let v = Volt::new(rng.uniform_in(0.7, 1.1));
            let dvt = m.delta_vt(years, v, t);
            assert!((m.years_for(dvt, v, t) - years).abs() < 1e-6 * years);
        }
    }
}
