//! §1.3 — graph-based vs path-based analysis: PBA recovers the
//! pessimism GBA's conservative AOCV depth bound leaves on the table, at
//! the cost of per-path re-evaluation (the turnaround/licensing tradeoff
//! the paper describes).

use std::time::Instant;

use tc_bench::{fmt, print_table, standard_env};
use tc_liberty::{AocvTable, DerateModel};
use tc_sta::pba::pba_worst_endpoints;
use tc_sta::{Constraints, Sta};

fn main() {
    let (lib, stack) = standard_env();
    let nl = tc_bench::bench_netlist(&lib, "c5315", 2015);
    // Constrain near the design's nominal capability so GBA-vs-PBA
    // decides real violations, not an absurdly overconstrained mode.
    let probe = Constraints::single_clock(5_000.0).with_derate(DerateModel::None);
    let wns = Sta::new(&nl, &lib, &stack, &probe)
        .run()
        .expect("probe")
        .wns()
        .value();
    let cons = Constraints::single_clock(5_000.0 - wns + 50.0)
        .with_derate(DerateModel::Aocv(AocvTable::from_stage_sigma(0.06)));
    let sta = Sta::new(&nl, &lib, &stack, &cons);

    let t0 = Instant::now();
    let gba = sta.run().expect("gba");
    let gba_time = t0.elapsed();

    let t0 = Instant::now();
    let results = pba_worst_endpoints(&sta, 50).expect("pba");
    let pba_time = t0.elapsed();

    let rows: Vec<Vec<String>> = results
        .iter()
        .take(12)
        .map(|r| {
            vec![
                format!("{:?}", r.endpoint),
                fmt(r.gba_slack.value(), 1),
                fmt(r.pba_slack.value(), 1),
                fmt(r.recovered().value(), 1),
                r.stages.to_string(),
            ]
        })
        .collect();
    print_table(
        "GBA vs PBA slack on the 12 worst endpoints (AOCV derates)",
        &["endpoint", "GBA slack", "PBA slack", "recovered", "stages"],
        &rows,
    );

    let total_rec: f64 = results.iter().map(|r| r.recovered().value()).sum();
    let viol_gba = results.iter().filter(|r| r.gba_slack.value() < 0.0).count();
    let viol_pba = results.iter().filter(|r| r.pba_slack.value() < 0.0).count();
    println!(
        "\nGBA: {} | endpoints analyzed by PBA: {}",
        gba.summary(),
        results.len()
    );
    println!(
        "violations among analyzed endpoints: GBA {viol_gba} → PBA {viol_pba} | total recovered {total_rec:.1} ps"
    );
    println!(
        "runtime: GBA {:.1} ms vs PBA(50 paths) {:.1} ms — the §1.3 turnaround cost",
        gba_time.as_secs_f64() * 1e3,
        pba_time.as_secs_f64() * 1e3
    );
}
