//! **Fig 6(a)** — minimum implant area (MinIA) violations and the
//! fixing heuristics of ref \[24\]: Vt-swap timing fixes drop narrow
//! implant islands into rows; the fixer homogenizes or swaps them away
//! while a timing veto protects critical cells.

use tc_bench::{fmt, print_table, standard_env};
use tc_placement::minia::{fix_violations, inject_vt_islands, violation_count, MinIaRule};
use tc_placement::rows::Placement;

fn main() {
    let (lib, _stack) = standard_env();
    let rule = MinIaRule::n20();
    println!(
        "rule: implant islands must be ≥ {} sites wide",
        rule.min_width_sites
    );

    let mut rows = Vec::new();
    for &inject in &[10usize, 40, 120, 300] {
        let mut nl = tc_bench::bench_netlist(&lib, "c5315", 2015);
        let injected = inject_vt_islands(&mut nl, &lib, inject, 9);
        let mut pl = Placement::row_fill(&nl, &lib, 200, 1);
        let before = violation_count(&pl, &nl, &lib, &rule);
        let report = fix_violations(&mut pl, &mut nl, &lib, &rule, |_, _| true);
        rows.push(vec![
            injected.to_string(),
            before.to_string(),
            report.after.to_string(),
            fmt(100.0 * report.fix_rate(), 1) + "%",
            report.vt_swaps.to_string(),
            report.moves.to_string(),
        ]);
    }
    print_table(
        "Fig 6(a): MinIA violations and fix rates (c5315 stand-in)",
        &[
            "Vt islands injected",
            "violations",
            "remaining",
            "fix rate",
            "vt swaps",
            "moves",
        ],
        &rows,
    );
    println!("\n(ref [24] reports up to 100% violation removal vs commercial P&R)");
}
