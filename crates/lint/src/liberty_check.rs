//! Liberty LUT validation: axis ordering and delay monotonicity.
//!
//! [`tc_core::lut::Lut2`] rejects non-increasing axes at construction,
//! so `parse_liberty` can only report a bad axis as an opaque parse
//! failure — and it cannot see physics violations at all, because a
//! non-monotone delay table is structurally valid. This pass scans the
//! Liberty *text* (same `\` splicing and line numbering as the real
//! parser) so both defects surface as positioned, waivable findings:
//!
//! * `TCL0401` — an `index_1`/`index_2` axis is not strictly increasing.
//! * `TCL0402` — a `cell_rise`/`rise_transition` table row decreases
//!   along the load (column) axis: gate delay and output slew grow with
//!   load in any physical characterization, so a dip is corrupt data
//!   that would silently warp every slack downstream.
//!
//! Sigma (`ocv_sigma_*`) and constraint tables are exempt from the
//! monotonicity rule — hold constraints legitimately fall with data
//! slew.

use crate::diag::{finding, Diagnostic};

/// Table kinds whose rows must be non-decreasing along the load axis.
const MONOTONE_KINDS: [&str; 2] = ["cell_rise", "rise_transition"];

/// All table kinds the Liberty writer emits (a `values` group belongs
/// to the most recent one of these).
const TABLE_KINDS: [&str; 4] = [
    "cell_rise",
    "rise_transition",
    "ocv_sigma_cell_rise",
    "ocv_sigma_cell_fall",
];

/// Scans Liberty text for axis-ordering and monotonicity defects.
/// `label` names the stream in the findings (`lib.lib`).
pub fn lint_liberty_source(text: &str, label: &str) -> Vec<Diagnostic> {
    // Splice `\`-continued lines exactly like `parse_liberty`, keeping
    // the line each spliced statement started on.
    let mut spliced: Vec<(usize, String)> = Vec::new();
    let mut pending = String::new();
    let mut pending_line = 0usize;
    for (i, line) in text.lines().enumerate() {
        let lineno = i + 1;
        let trimmed = line.trim_end();
        if trimmed.ends_with('\\') {
            if pending.is_empty() {
                pending_line = lineno;
            }
            pending.push_str(trimmed.trim_end_matches('\\'));
        } else if pending.is_empty() {
            spliced.push((lineno, trimmed.to_string()));
        } else {
            pending.push_str(trimmed);
            spliced.push((pending_line, std::mem::take(&mut pending)));
        }
    }
    if !pending.is_empty() {
        spliced.push((pending_line, pending));
    }

    let mut out = Vec::new();
    let mut cell = String::new();
    let mut related = String::new();
    let mut kind: Option<String> = None;
    let mut axes_ok = true;

    let quoted_floats = |l: &str| -> Option<Vec<f64>> {
        let inner = l.split('"').nth(1)?;
        inner
            .split(',')
            .map(|v| v.trim().parse::<f64>().ok())
            .collect()
    };

    for &(lineno, ref line) in &spliced {
        let l = line.trim();
        if let Some(rest) = l.strip_prefix("cell (") {
            cell = rest.split(')').next().unwrap_or("").to_string();
            related.clear();
        } else if l.starts_with("related_pin") {
            related = l.split('"').nth(1).unwrap_or("").to_string();
        } else if let Some(k) = TABLE_KINDS.iter().find(|k| l.starts_with(**k)) {
            kind = Some((*k).to_string());
            axes_ok = true;
        } else if l.starts_with("index_1") || l.starts_with("index_2") {
            let which = if l.starts_with("index_1") {
                "index_1"
            } else {
                "index_2"
            };
            // An unparsable axis is the parser's problem; ours is an
            // axis that parses but is not strictly increasing.
            if let Some(axis) = quoted_floats(l) {
                if let Some(i) = axis.windows(2).position(|w| w[1] <= w[0]) {
                    axes_ok = false;
                    let k = kind.as_deref().unwrap_or("?");
                    out.push(finding(
                        "TCL0401",
                        table_subject(&cell, &related, k),
                        format!(
                            "{which} not strictly increasing: {} then {} at position {}",
                            axis[i],
                            axis[i + 1],
                            i + 1
                        ),
                        label,
                        Some(lineno),
                    ));
                }
            }
        } else if l.starts_with("values (") {
            let Some(k) = kind.as_deref() else { continue };
            // Monotonicity over an unordered axis is meaningless; the
            // TCL0401 finding already covers that table.
            if !axes_ok || !MONOTONE_KINDS.contains(&k) {
                continue;
            }
            for (row_idx, row_str) in l.split('"').skip(1).step_by(2).enumerate() {
                let parsed: Option<Vec<f64>> = row_str
                    .split(',')
                    .map(|v| v.trim().parse::<f64>().ok())
                    .collect();
                let Some(row) = parsed else { continue };
                if let Some(c) = row.windows(2).position(|w| w[1] < w[0] - 1e-9) {
                    out.push(finding(
                        "TCL0402",
                        table_subject(&cell, &related, k),
                        format!(
                            "row {row_idx} decreases along the load axis at column {}: {} then {}",
                            c + 1,
                            row[c],
                            row[c + 1]
                        ),
                        label,
                        Some(lineno),
                    ));
                    break; // one finding per table is enough to act on
                }
            }
        }
    }
    out
}

/// Waiver-matchable identity of a table: `cell:related_pin:kind`.
fn table_subject(cell: &str, related: &str, kind: &str) -> String {
    let related = if related.is_empty() { "?" } else { related };
    format!("{cell}:{related}:{kind}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use tc_liberty::{LibConfig, Library, PvtCorner};

    fn table(index_2: &str, values: &str) -> String {
        format!(
            "library (t) {{\n  cell (INV_X1_SVT) {{\n    pin (Y) {{\n      timing () {{\n        related_pin : \"A\";\n        cell_rise (tbl_2x2) {{\n          index_1 (\"5.0000, 10.0000\");\n          index_2 ({index_2});\n          values ({values});\n        }}\n      }}\n    }}\n  }}\n}}\n"
        )
    }

    #[test]
    fn generated_library_is_clean() {
        let lib = Library::generate(&LibConfig::default(), &PvtCorner::typical());
        let text = tc_liberty::write_liberty(&lib);
        let diags = lint_liberty_source(&text, "gen.lib");
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn non_monotone_row_fires_0402_with_position() {
        let text = table("\"0.5000, 1.0000\"", "\"1.0, 0.5\", \"1.2, 1.4\"");
        let diags = lint_liberty_source(&text, "t.lib");
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].code, "TCL0402");
        assert_eq!(diags[0].subject, "INV_X1_SVT:A:cell_rise");
        assert_eq!(diags[0].line, Some(9));
    }

    #[test]
    fn unordered_axis_fires_0401_and_suppresses_0402() {
        let text = table("\"1.0000, 0.5000\"", "\"1.0, 0.5\", \"1.2, 1.4\"");
        let diags = lint_liberty_source(&text, "t.lib");
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].code, "TCL0401");
        assert_eq!(diags[0].line, Some(8));
    }

    #[test]
    fn sigma_tables_may_fall() {
        let text = table("\"0.5000, 1.0000\"", "\"1.0, 1.5\", \"1.2, 1.4\"")
            .replace("cell_rise (tbl_2x2)", "ocv_sigma_cell_rise (tbl_2x2)");
        let falling = text.replace("\"1.0, 1.5\"", "\"1.5, 1.0\"");
        assert!(lint_liberty_source(&falling, "t.lib").is_empty());
    }

    #[test]
    fn continued_values_lines_keep_the_start_line() {
        let text = table(
            "\"0.5000, 1.0000\"",
            "\"1.0, 0.5\", \\\n                  \"1.2, 1.4\"",
        );
        let diags = lint_liberty_source(&text, "t.lib");
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].line, Some(9));
    }
}
