//! Backward-Euler transient solver with damped Newton iteration.
//!
//! The solver targets the small transistor-level circuits built in
//! [`crate::cells`] (a few dozen nodes), so it uses a dense Jacobian with
//! Gaussian elimination. Jacobian entries are stamped per element:
//! analytic for R and C, terminal-local finite differences for MOSFETs.
//!
//! DC initialization is done by *pseudo-transient continuation*: the
//! circuit is simulated with all sources frozen at their `t = 0` values
//! for a settling window before recording starts. This is robust against
//! the weakly-driven internal nodes of latch feedback loops.

use tc_core::error::{Error, Result};
use tc_core::units::{Celsius, Volt};
use tc_device::{MosKind, Technology};

use crate::circuit::{Circuit, Element, NodeId};
use crate::measure::Waveform;

/// Transient-analysis options.
#[derive(Clone, Debug)]
pub struct TranOptions {
    /// Simulation end time in ps (recording starts at 0).
    pub t_stop: f64,
    /// Fixed timestep in ps.
    pub dt: f64,
    /// Pseudo-transient settling window before `t = 0`, in ps.
    pub settle: f64,
    /// Die temperature.
    pub temp: Celsius,
    /// Minimum grounded capacitance added to every non-source node (fF),
    /// keeping the backward-Euler system well-posed.
    pub cmin: f64,
}

impl Default for TranOptions {
    fn default() -> Self {
        TranOptions {
            t_stop: 1000.0,
            dt: 0.5,
            settle: 400.0,
            temp: Celsius::new(25.0),
            cmin: 0.01,
        }
    }
}

impl TranOptions {
    /// Options with the given stop time and defaults elsewhere.
    pub fn until(t_stop: f64) -> Self {
        TranOptions {
            t_stop,
            ..TranOptions::default()
        }
    }
}

/// Result of a transient run: sampled node voltages over time.
#[derive(Clone, Debug)]
pub struct TranResult {
    times: Vec<f64>,
    /// `volts[node][sample]`.
    volts: Vec<Vec<f64>>,
}

impl TranResult {
    /// Sample times in ps.
    pub fn times(&self) -> &[f64] {
        &self.times
    }

    /// Extracts one node's waveform.
    pub fn waveform(&self, node: NodeId) -> Waveform {
        Waveform::new(self.times.clone(), self.volts[node.index()].clone())
    }

    /// Final voltage of a node.
    pub fn final_voltage(&self, node: NodeId) -> f64 {
        *self.volts[node.index()].last().expect("non-empty result")
    }
}

/// Conductance added from every free node to ground (mA/V = mS) to keep
/// the Newton matrix non-singular when devices are deeply off.
const GMIN: f64 = 1e-7;
const NEWTON_TOL_V: f64 = 1e-7;
const NEWTON_TOL_I: f64 = 1e-8;
const MAX_NEWTON: usize = 60;
const DV_CLIP: f64 = 0.4;

struct System<'a> {
    circuit: &'a Circuit,
    tech: &'a Technology,
    temp: Celsius,
    sources: Vec<(NodeId, crate::circuit::Pwl)>,
    /// Free-node list and inverse map.
    free: Vec<usize>,
    free_index: Vec<Option<usize>>,
    cmin: f64,
}

impl<'a> System<'a> {
    fn build(circuit: &'a Circuit, tech: &'a Technology, opts: &TranOptions) -> Result<Self> {
        let n = circuit.node_count();
        let mut pinned = vec![None; n];
        let mut sources = Vec::new();
        for el in circuit.elements() {
            if let Element::Source { node, wave } = el {
                if pinned[node.index()].is_some() {
                    return Err(Error::invalid_input(format!(
                        "node {} pinned by two sources",
                        circuit.node_name(*node)
                    )));
                }
                pinned[node.index()] = Some(sources.len());
                sources.push((*node, wave.clone()));
            }
        }
        // Ground is always pinned to zero via a constant source slot.
        if pinned[0].is_none() {
            pinned[0] = Some(sources.len());
            sources.push((NodeId::GROUND, crate::circuit::Pwl::constant(Volt::ZERO)));
        }
        let mut free = Vec::new();
        let mut free_index = vec![None; n];
        for i in 0..n {
            if pinned[i].is_none() {
                free_index[i] = Some(free.len());
                free.push(i);
            }
        }
        Ok(System {
            circuit,
            tech,
            temp: opts.temp,
            sources,
            free,
            free_index,
            cmin: opts.cmin,
        })
    }

    fn apply_sources(&self, t: f64, v: &mut [f64]) {
        for (node, wave) in &self.sources {
            v[node.index()] = wave.at(t);
        }
    }

    /// MOSFET drain current with polarity resolution: returns the signed
    /// current flowing *into* the drain terminal.
    fn fet_current(&self, dev: &tc_device::MosDevice, vd: f64, vg: f64, vs: f64) -> f64 {
        match dev.kind {
            MosKind::Nmos => {
                if vd >= vs {
                    dev.drain_current(self.tech, Volt::new(vg - vs), Volt::new(vd - vs), self.temp)
                } else {
                    // Source/drain swap: conduction is symmetric.
                    -dev.drain_current(self.tech, Volt::new(vg - vd), Volt::new(vs - vd), self.temp)
                }
            }
            MosKind::Pmos => {
                if vs >= vd {
                    // Channel conducts source→drain: current *exits* the
                    // device at the drain, so the into-drain current is
                    // negative.
                    -dev.drain_current(self.tech, Volt::new(vs - vg), Volt::new(vs - vd), self.temp)
                } else {
                    dev.drain_current(self.tech, Volt::new(vd - vg), Volt::new(vd - vs), self.temp)
                }
            }
        }
    }

    /// Accumulates the residual `f[i]` = net current *leaving* each free
    /// node, and optionally the dense Jacobian `df/dv`.
    fn residual(&self, v: &[f64], v_prev: &[f64], dt: f64, f: &mut [f64], jac: Option<&mut [f64]>) {
        let nf = self.free.len();
        for x in f.iter_mut() {
            *x = 0.0;
        }
        let mut jbuf = jac;
        if let Some(j) = jbuf.as_deref_mut() {
            for x in j.iter_mut() {
                *x = 0.0;
            }
        }

        let stamp = |jac: &mut Option<&mut [f64]>, row_node: usize, col_node: usize, g: f64| {
            if let (Some(r), Some(c)) = (self.free_index[row_node], self.free_index[col_node]) {
                if let Some(j) = jac.as_deref_mut() {
                    j[r * nf + c] += g;
                }
            }
        };

        // gmin + cmin to ground on every free node.
        for (fi, &node) in self.free.iter().enumerate() {
            let g = GMIN + self.cmin / dt;
            f[fi] += GMIN * v[node] + self.cmin * (v[node] - v_prev[node]) / dt;
            stamp(&mut jbuf, node, node, g);
        }

        for el in self.circuit.elements() {
            match el {
                Element::Source { .. } => {}
                Element::Resistor { a, b, r } => {
                    let g = 1.0 / r.value();
                    let i = g * (v[a.index()] - v[b.index()]);
                    if let Some(fa) = self.free_index[a.index()] {
                        f[fa] += i;
                    }
                    if let Some(fb) = self.free_index[b.index()] {
                        f[fb] -= i;
                    }
                    stamp(&mut jbuf, a.index(), a.index(), g);
                    stamp(&mut jbuf, a.index(), b.index(), -g);
                    stamp(&mut jbuf, b.index(), b.index(), g);
                    stamp(&mut jbuf, b.index(), a.index(), -g);
                }
                Element::Capacitor { a, b, c } => {
                    let g = c.value() / dt;
                    let dv_now = v[a.index()] - v[b.index()];
                    let dv_old = v_prev[a.index()] - v_prev[b.index()];
                    let i = g * (dv_now - dv_old);
                    if let Some(fa) = self.free_index[a.index()] {
                        f[fa] += i;
                    }
                    if let Some(fb) = self.free_index[b.index()] {
                        f[fb] -= i;
                    }
                    stamp(&mut jbuf, a.index(), a.index(), g);
                    stamp(&mut jbuf, a.index(), b.index(), -g);
                    stamp(&mut jbuf, b.index(), b.index(), g);
                    stamp(&mut jbuf, b.index(), a.index(), -g);
                }
                Element::Mosfet { dev, d, g, s } => {
                    let (vd, vg, vs) = (v[d.index()], v[g.index()], v[s.index()]);
                    let i_d = self.fet_current(dev, vd, vg, vs);
                    // i_d flows from the drain node into the device and out
                    // at the source: leaving(drain) = +i_d,
                    // leaving(source) = −i_d.
                    if let Some(fd) = self.free_index[d.index()] {
                        f[fd] += i_d;
                    }
                    if let Some(fs) = self.free_index[s.index()] {
                        f[fs] -= i_d;
                    }
                    if jbuf.is_some() {
                        const H: f64 = 1e-5;
                        let di_dd = (self.fet_current(dev, vd + H, vg, vs) - i_d) / H;
                        let di_dg = (self.fet_current(dev, vd, vg + H, vs) - i_d) / H;
                        let di_ds = (self.fet_current(dev, vd, vg, vs + H) - i_d) / H;
                        // Row = drain (leaving drain = +i_d).
                        stamp(&mut jbuf, d.index(), d.index(), di_dd);
                        stamp(&mut jbuf, d.index(), g.index(), di_dg);
                        stamp(&mut jbuf, d.index(), s.index(), di_ds);
                        // Row = source (leaving source = −i_d).
                        stamp(&mut jbuf, s.index(), d.index(), -di_dd);
                        stamp(&mut jbuf, s.index(), g.index(), -di_dg);
                        stamp(&mut jbuf, s.index(), s.index(), -di_ds);
                    }
                }
            }
        }
    }

    /// One backward-Euler step with damped Newton; `v` holds the solution
    /// on exit. Returns the number of Newton iterations spent.
    fn step(&self, t_new: f64, dt: f64, v_prev: &[f64], v: &mut [f64]) -> Result<usize> {
        let nf = self.free.len();
        if nf == 0 {
            self.apply_sources(t_new, v);
            return Ok(0);
        }
        self.apply_sources(t_new, v);
        let mut f = vec![0.0; nf];
        let mut jac = vec![0.0; nf * nf];
        let mut delta = vec![0.0; nf];

        for iter in 0..MAX_NEWTON {
            self.residual(v, v_prev, dt, &mut f, Some(&mut jac));
            let max_f = f.iter().fold(0.0f64, |m, &x| m.max(x.abs()));
            // Solve J·delta = f  (so v_new = v − delta).
            let mut a = jac.clone();
            delta.copy_from_slice(&f);
            solve_dense(&mut a, &mut delta, nf)?;
            let mut max_dv = 0.0f64;
            for (fi, &node) in self.free.iter().enumerate() {
                let dv = delta[fi].clamp(-DV_CLIP, DV_CLIP);
                v[node] -= dv;
                max_dv = max_dv.max(dv.abs());
            }
            if max_dv < NEWTON_TOL_V && max_f < NEWTON_TOL_I {
                return Ok(iter + 1);
            }
        }
        Err(Error::convergence(format!(
            "newton did not converge at t = {t_new:.2} ps"
        )))
    }
}

/// Solves a dense `n×n` system in place by Gaussian elimination with
/// partial pivoting. `a` is row-major; `b` holds the RHS on entry and the
/// solution on exit.
fn solve_dense(a: &mut [f64], b: &mut [f64], n: usize) -> Result<()> {
    for col in 0..n {
        // Pivot.
        let mut piv = col;
        let mut best = a[col * n + col].abs();
        for row in col + 1..n {
            let mag = a[row * n + col].abs();
            if mag > best {
                best = mag;
                piv = row;
            }
        }
        if best < 1e-18 {
            return Err(Error::internal("singular newton matrix"));
        }
        if piv != col {
            for k in 0..n {
                a.swap(col * n + k, piv * n + k);
            }
            b.swap(col, piv);
        }
        let diag = a[col * n + col];
        for row in col + 1..n {
            let factor = a[row * n + col] / diag;
            if factor == 0.0 {
                continue;
            }
            for k in col..n {
                a[row * n + k] -= factor * a[col * n + k];
            }
            b[row] -= factor * b[col];
        }
    }
    for col in (0..n).rev() {
        let mut acc = b[col];
        for k in col + 1..n {
            acc -= a[col * n + k] * b[k];
        }
        b[col] = acc / a[col * n + col];
    }
    Ok(())
}

/// Runs a transient analysis of `circuit` under `tech` at the given
/// options.
///
/// # Errors
///
/// Returns [`Error::Convergence`] if the Newton iteration fails, or
/// [`Error::InvalidInput`] for malformed circuits (duplicate sources,
/// non-positive timestep).
pub fn transient(circuit: &Circuit, tech: &Technology, opts: &TranOptions) -> Result<TranResult> {
    if opts.dt <= 0.0 || opts.t_stop <= 0.0 {
        return Err(Error::invalid_input("dt and t_stop must be positive"));
    }
    let _span = tc_obs::span("sim.transient");
    let step_counter = tc_obs::counter("sim.newton.steps");
    let iter_counter = tc_obs::counter("sim.newton.iters");
    let iters_hist = tc_obs::histogram("sim.newton.iters_per_step");
    let sys = System::build(circuit, tech, opts)?;
    let n = circuit.node_count();
    let mut v = vec![0.0; n];
    sys.apply_sources(-opts.settle, &mut v);
    // Heuristic initial guess: free nodes at half the max source voltage.
    let vmax = sys
        .sources
        .iter()
        .map(|(_, w)| w.at(-opts.settle))
        .fold(0.0f64, f64::max);
    for &node in &sys.free {
        v[node] = 0.5 * vmax;
    }

    // Pseudo-transient settling with a coarse step, sources frozen at t≤0.
    let settle_dt = (opts.dt * 4.0).max(1.0);
    let mut v_prev = v.clone();
    let mut t = -opts.settle;
    while t < 0.0 {
        let t_next = (t + settle_dt).min(0.0);
        let iters = sys.step(t_next.min(0.0), t_next - t, &v_prev, &mut v)?;
        step_counter.incr();
        iter_counter.add(iters as u64);
        iters_hist.record(iters as f64);
        v_prev.copy_from_slice(&v);
        t = t_next;
    }

    let steps = (opts.t_stop / opts.dt).ceil() as usize;
    let mut times = Vec::with_capacity(steps + 1);
    let mut volts = vec![Vec::with_capacity(steps + 1); n];
    let record = |times: &mut Vec<f64>, volts: &mut Vec<Vec<f64>>, t: f64, v: &[f64]| {
        times.push(t);
        for (i, w) in volts.iter_mut().enumerate() {
            w.push(v[i]);
        }
    };
    record(&mut times, &mut volts, 0.0, &v);
    let mut t = 0.0;
    for _ in 0..steps {
        let t_next = t + opts.dt;
        let iters = sys.step(t_next, opts.dt, &v_prev, &mut v)?;
        step_counter.incr();
        iter_counter.add(iters as u64);
        iters_hist.record(iters as f64);
        v_prev.copy_from_slice(&v);
        t = t_next;
        record(&mut times, &mut volts, t, &v);
    }
    Ok(TranResult { times, volts })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::Pwl;
    use tc_core::units::{Ff, Kohm};

    #[test]
    fn dense_solver_solves_known_system() {
        // [2 1; 1 3] x = [5; 10] → x = [1; 3]
        let mut a = vec![2.0, 1.0, 1.0, 3.0];
        let mut b = vec![5.0, 10.0];
        solve_dense(&mut a, &mut b, 2).unwrap();
        assert!((b[0] - 1.0).abs() < 1e-12);
        assert!((b[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn dense_solver_rejects_singular() {
        let mut a = vec![1.0, 2.0, 2.0, 4.0];
        let mut b = vec![1.0, 2.0];
        assert!(solve_dense(&mut a, &mut b, 2).is_err());
    }

    #[test]
    fn rc_charging_matches_analytic_time_constant() {
        // 1 kΩ from a 1 V step source into 10 fF: tau = 10 ps.
        let tech = Technology::planar_28nm();
        let mut ckt = Circuit::new();
        let src = ckt.node("src");
        let out = ckt.node("out");
        ckt.source(src, Pwl::ramp(0.0, 0.01, Volt::new(0.0), Volt::new(1.0)));
        ckt.resistor(src, out, Kohm::new(1.0));
        ckt.cap_to_ground(out, Ff::new(10.0));
        let opts = TranOptions {
            t_stop: 60.0,
            dt: 0.05,
            settle: 50.0,
            cmin: 0.0001,
            ..Default::default()
        };
        let res = transient(&ckt, &tech, &opts).unwrap();
        let w = res.waveform(out);
        // After one tau (10 ps): 63.2%; after 3 tau: 95%.
        let v_tau = w.at(10.0);
        assert!(
            (v_tau - 0.632).abs() < 0.02,
            "v(tau) = {v_tau}, want ~0.632"
        );
        assert!(w.at(30.0) > 0.94);
        assert!(res.final_voltage(out) > 0.99);
    }

    #[test]
    fn capacitive_divider_settles() {
        // Two caps in series from a stepped source: the middle node divides.
        let tech = Technology::planar_28nm();
        let mut ckt = Circuit::new();
        let src = ckt.node("src");
        let mid = ckt.node("mid");
        ckt.source(src, Pwl::ramp(0.0, 1.0, Volt::ZERO, Volt::new(1.0)));
        ckt.capacitor(src, mid, Ff::new(3.0));
        ckt.cap_to_ground(mid, Ff::new(1.0));
        let opts = TranOptions {
            t_stop: 20.0,
            dt: 0.1,
            settle: 10.0,
            cmin: 1e-5,
            ..Default::default()
        };
        let res = transient(&ckt, &tech, &opts).unwrap();
        // Divider: 3/(3+1) = 0.75 right after the edge (gmin discharges it
        // only on far longer timescales).
        let v = res.waveform(mid).at(3.0);
        assert!((v - 0.75).abs() < 0.03, "divider voltage {v}");
    }

    #[test]
    fn rejects_bad_options_and_double_source() {
        let tech = Technology::planar_28nm();
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        ckt.source(a, Pwl::constant(Volt::new(1.0)));
        ckt.source(a, Pwl::constant(Volt::new(0.5)));
        assert!(transient(&ckt, &tech, &TranOptions::default()).is_err());

        let ckt2 = Circuit::new();
        let opts = TranOptions {
            dt: -1.0,
            ..Default::default()
        };
        assert!(transient(&ckt2, &tech, &opts).is_err());
    }
}
