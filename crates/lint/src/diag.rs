//! The diagnostic framework: stable rule codes, severities, positions,
//! and the text/JSON reporters.
//!
//! Every finding carries a stable `TCL####` code (grouped by input
//! surface: 01xx structure, 02xx constraints, 03xx parasitics, 04xx
//! library data, 05xx ECO journals), a waiver-matchable subject, and —
//! where the finding comes from a text surface — the line it was found
//! on, reusing the line numbering the workspace parsers already report.

use tc_obs::JsonValue;

/// Finding severity. Errors gate admission; warnings are hygiene
/// findings that a waiver file can accept permanently.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Suspicious but analyzable: the design can still be timed.
    Warning,
    /// The design (or its side files) would fail or mislead analysis.
    Error,
}

impl Severity {
    /// Lower-case label used by the reporters.
    pub fn label(self) -> &'static str {
        match self {
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

/// One static-analysis finding.
#[derive(Clone, Debug, PartialEq)]
pub struct Diagnostic {
    /// Stable rule code (`TCL0101`, …). Codes are never reused.
    pub code: &'static str,
    /// Severity of this finding.
    pub severity: Severity,
    /// Waiver-matchable identity: the offending cell, net, clock, table,
    /// or journal entry.
    pub subject: String,
    /// Human-readable explanation.
    pub message: String,
    /// The input surface the finding came from (`design.v`, `netlist`,
    /// `journal`, …).
    pub source: String,
    /// 1-based line in `source` for text surfaces; `None` for graph
    /// findings (the subject names the object instead).
    pub line: Option<usize>,
}

impl Diagnostic {
    /// Renders one finding as a single report line:
    /// `TCL0102 error design.v:12 n3: driven 2 times`.
    pub fn render(&self) -> String {
        let at = match self.line {
            Some(l) => format!("{}:{l}", self.source),
            None => self.source.clone(),
        };
        format!(
            "{} {} {at} {}: {}",
            self.code,
            self.severity.label(),
            self.subject,
            self.message
        )
    }

    /// The finding as a JSON object (for the `--json` reporter and for
    /// embedding in a [`tc_obs::RunArtifact`]).
    pub fn to_json(&self) -> JsonValue {
        JsonValue::obj([
            ("code", JsonValue::str(self.code)),
            ("severity", JsonValue::str(self.severity.label())),
            ("subject", JsonValue::str(self.subject.as_str())),
            ("message", JsonValue::str(self.message.as_str())),
            ("source", JsonValue::str(self.source.as_str())),
            (
                "line",
                match self.line {
                    Some(l) => JsonValue::Num(l as f64),
                    None => JsonValue::Null,
                },
            ),
        ])
    }
}

/// One catalog entry: the fixed code/severity/title triple of a rule.
#[derive(Clone, Copy, Debug)]
pub struct Rule {
    /// Stable code.
    pub code: &'static str,
    /// Severity every finding of this rule carries.
    pub severity: Severity,
    /// One-line description for `tc_lint --rules` and DESIGN.md.
    pub title: &'static str,
}

/// The full rule catalog. Codes are grouped by input surface and never
/// renumbered; retired rules leave holes.
pub const RULES: &[Rule] = &[
    Rule {
        code: "TCL0101",
        severity: Severity::Error,
        title: "combinational cycle (unregistered feedback)",
    },
    Rule {
        code: "TCL0102",
        severity: Severity::Error,
        title: "multi-driven net in structural Verilog",
    },
    Rule {
        code: "TCL0103",
        severity: Severity::Error,
        title: "undriven net referenced by a pin or output port",
    },
    Rule {
        code: "TCL0104",
        severity: Severity::Warning,
        title: "dangling driven net (no sinks, not a primary output)",
    },
    Rule {
        code: "TCL0201",
        severity: Severity::Error,
        title: "no clocks defined: every endpoint is unconstrained",
    },
    Rule {
        code: "TCL0202",
        severity: Severity::Error,
        title: "clock has no matching source net in the design",
    },
    Rule {
        code: "TCL0203",
        severity: Severity::Error,
        title: "register clock pin not reachable from any clock source",
    },
    Rule {
        code: "TCL0204",
        severity: Severity::Warning,
        title: "timing exception references a dead or non-register cell",
    },
    Rule {
        code: "TCL0301",
        severity: Severity::Error,
        title: "SPEF annotates a net that does not exist in the netlist",
    },
    Rule {
        code: "TCL0302",
        severity: Severity::Warning,
        title: "netlist net missing from the SPEF annotation",
    },
    Rule {
        code: "TCL0401",
        severity: Severity::Error,
        title: "Liberty table axis not strictly increasing",
    },
    Rule {
        code: "TCL0402",
        severity: Severity::Warning,
        title: "Liberty delay/slew table non-monotone along the load axis",
    },
    Rule {
        code: "TCL0501",
        severity: Severity::Error,
        title: "ECO journal references a dead cell, net, pin, or master",
    },
];

/// Looks up a catalog entry by code.
pub fn rule(code: &str) -> Option<&'static Rule> {
    RULES.iter().find(|r| r.code == code)
}

/// Builds a finding with the catalog severity for `code`.
///
/// # Panics
///
/// Panics if `code` is not in [`RULES`] — rule passes only emit catalog
/// codes, so an unknown code is a bug in this crate.
pub fn finding(
    code: &'static str,
    subject: impl Into<String>,
    message: impl Into<String>,
    source: impl Into<String>,
    line: Option<usize>,
) -> Diagnostic {
    let severity = rule(code)
        .unwrap_or_else(|| panic!("unknown rule code {code}"))
        .severity;
    Diagnostic {
        code,
        severity,
        subject: subject.into(),
        message: message.into(),
        source: source.into(),
        line,
    }
}

/// Renders findings as a text report, one line each, in the given order.
pub fn render_text(diags: &[Diagnostic]) -> String {
    let mut out = String::new();
    for d in diags {
        out.push_str(&d.render());
        out.push('\n');
    }
    out
}

/// Renders findings as a JSON array in the given order.
pub fn render_json(diags: &[Diagnostic]) -> JsonValue {
    JsonValue::Arr(diags.iter().map(Diagnostic::to_json).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_unique_and_well_formed() {
        for (i, r) in RULES.iter().enumerate() {
            assert!(r.code.starts_with("TCL") && r.code.len() == 7, "{}", r.code);
            assert!(r.code[3..].chars().all(|c| c.is_ascii_digit()));
            for other in &RULES[i + 1..] {
                assert_ne!(r.code, other.code);
            }
        }
    }

    #[test]
    fn render_carries_code_position_and_subject() {
        let d = finding("TCL0102", "n3", "driven 2 times", "design.v", Some(12));
        let line = d.render();
        assert!(line.contains("TCL0102"), "{line}");
        assert!(line.contains("design.v:12"), "{line}");
        assert!(line.contains("n3"), "{line}");
        assert_eq!(d.severity, Severity::Error);
    }

    #[test]
    fn json_reporter_roundtrips_through_the_obs_parser() {
        let d = finding("TCL0104", "g7", "no sinks", "netlist", None);
        let text = render_json(&[d]).render();
        let back = JsonValue::parse(&text).unwrap();
        match back {
            JsonValue::Arr(items) => assert_eq!(items.len(), 1),
            other => panic!("expected array, got {other:?}"),
        }
    }
}
