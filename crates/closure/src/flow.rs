//! The closure iteration driver — Fig 1's five-iteration loop.

use tc_core::error::Result;
use tc_core::units::Ps;
use tc_interconnect::BeolStack;
use tc_liberty::Library;
use tc_netlist::Netlist;
use tc_sta::{Constraints, Sta, Timer, TimingReport};

use crate::fixes::{
    apply_buffering, buffering_pass, ndr_pass, plan_buffering, plan_ndr, plan_sizing,
    plan_vt_swaps, sizing_pass, vt_swap_pass, FixKind, FixOutcome,
};

/// Loop configuration.
#[derive(Clone, Debug)]
pub struct ClosureConfig {
    /// Iteration cap — the schedule: "three weeks for the final pass
    /// permits five three-day repair and signoff analysis iterations".
    pub max_iterations: usize,
    /// Worst paths examined per fix pass.
    pub k_paths: usize,
    /// ECO budget per fix pass per iteration.
    pub budget_per_pass: usize,
    /// Fix ordering (ablate against [`FixKind::RECOMMENDED`]).
    pub ordering: Vec<FixKind>,
    /// Useful-skew step when that fix runs.
    pub skew_step: Ps,
    /// Days charged per iteration in the schedule model.
    pub days_per_iteration: f64,
    /// Drive the loop from the persistent incremental [`Timer`] (the
    /// default): fixes are evaluated by re-timing only their dirty cones
    /// and rejected fixes roll back in O(cone). `false` falls back to
    /// one full STA run per speculative fix — same results (the two
    /// engines are bit-identical), much more work.
    pub use_incremental: bool,
    /// Run full-STA passes with level-synchronous parallel propagation
    /// on a `TC_PAR_THREADS`-sized pool. Results are bit-identical to
    /// the sequential path (see `tc_par`); only the full-propagation
    /// flow uses it — the incremental timer's dirty-cone worklist is
    /// inherently ordered and stays sequential.
    pub parallel_sta: bool,
    /// Run the `tc-lint` static passes before the first STA iteration
    /// (the default). Error-severity findings abort the run with
    /// [`tc_core::error::Error::InvalidInput`] — a design with
    /// unregistered feedback or unclocked registers would either fail
    /// levelization anyway or silently time garbage; warnings ride
    /// along in [`ClosureOutcome::lint_findings`] and the run artifact.
    pub preflight_lint: bool,
}

impl Default for ClosureConfig {
    fn default() -> Self {
        ClosureConfig {
            max_iterations: 5,
            k_paths: 25,
            budget_per_pass: 60,
            ordering: FixKind::RECOMMENDED.to_vec(),
            skew_step: Ps::new(10.0),
            days_per_iteration: 3.0,
            use_incremental: true,
            parallel_sta: false,
            preflight_lint: true,
        }
    }
}

/// One iteration's record.
#[derive(Clone, Debug)]
pub struct IterationRecord {
    /// Iteration number, 1-based.
    pub iteration: usize,
    /// WNS entering the iteration.
    pub wns_before: Ps,
    /// WNS after the iteration's fixes.
    pub wns_after: Ps,
    /// TNS after.
    pub tns_after: Ps,
    /// Setup violations after.
    pub violations_after: usize,
    /// `(fix, edits)` applied this iteration.
    pub fixes: Vec<(FixKind, usize)>,
    /// Wall-clock time of the iteration, ms.
    pub elapsed_ms: f64,
    /// Engine counter deltas over the iteration (e.g. how many
    /// `sta.arcs_evaluated` this iteration cost), sorted by name. Empty
    /// when `tc_obs` is disabled.
    pub counter_deltas: Vec<(String, u64)>,
    /// Span wall-time growth over the iteration, `(path, ns)` sorted by
    /// path (e.g. where inside `closure.iteration` the time went —
    /// which fix pass, how much re-timing). Empty when `tc_obs` is
    /// disabled.
    pub span_ns_deltas: Vec<(String, u64)>,
}

impl IterationRecord {
    /// A named counter's delta over this iteration (0 if absent).
    pub fn counter_delta(&self, name: &str) -> u64 {
        self.counter_deltas
            .iter()
            .find(|(n, _)| n == name)
            .map_or(0, |&(_, v)| v)
    }
}

/// The full run's outcome.
#[derive(Clone, Debug)]
pub struct ClosureOutcome {
    /// Per-iteration records.
    pub iterations: Vec<IterationRecord>,
    /// Final report.
    pub final_report: TimingReport,
    /// The (possibly skew-adjusted) constraints after closure.
    pub constraints: Constraints,
    /// Whether the design closed (setup and hold clean).
    pub closed: bool,
    /// Schedule consumed, days.
    pub days: f64,
    /// Warning-severity findings from the pre-flight lint gate (empty
    /// when [`ClosureConfig::preflight_lint`] is off; error findings
    /// abort the run instead of appearing here).
    pub lint_findings: Vec<tc_lint::Diagnostic>,
}

/// The closure flow engine.
pub struct ClosureFlow<'a> {
    lib: &'a Library,
    stack: &'a BeolStack,
    config: ClosureConfig,
}

impl<'a> ClosureFlow<'a> {
    /// Creates a flow over a library/stack environment.
    pub fn new(lib: &'a Library, stack: &'a BeolStack, config: ClosureConfig) -> Self {
        ClosureFlow { lib, stack, config }
    }

    /// A full-propagation STA engine honoring [`ClosureConfig::parallel_sta`].
    fn sta<'n>(&self, nl: &'n Netlist, cons: &'n Constraints) -> Sta<'n>
    where
        'a: 'n,
    {
        let sta = Sta::new(nl, self.lib, self.stack, cons);
        if self.config.parallel_sta {
            sta.with_parallel(tc_par::Pool::from_env())
        } else {
            sta
        }
    }

    /// Runs the loop, editing `nl` (and the clock tree inside the
    /// returned constraints) in place.
    ///
    /// # Errors
    ///
    /// Propagates STA failures. With [`ClosureConfig::preflight_lint`]
    /// on, returns [`tc_core::error::Error::InvalidInput`] before any
    /// timing runs if the lint gate finds error-severity defects.
    pub fn run(&mut self, nl: &mut Netlist, cons: Constraints) -> Result<ClosureOutcome> {
        let lint_findings = if self.config.preflight_lint {
            self.preflight(nl, &cons)?
        } else {
            Vec::new()
        };
        let mut out = if self.config.use_incremental {
            self.run_incremental(nl, cons)
        } else {
            self.run_full(nl, cons)
        }?;
        out.lint_findings = lint_findings;
        Ok(out)
    }

    /// The pre-flight lint gate: runs the graph-side `tc-lint` passes
    /// (cycles, dangling nets, constraint coverage) and rejects the run
    /// on any error-severity finding, returning the warnings.
    fn preflight(&self, nl: &Netlist, cons: &Constraints) -> Result<Vec<tc_lint::Diagnostic>> {
        let _span = tc_obs::span("closure.preflight");
        let mut ctx = tc_lint::LintContext::new(nl, self.lib);
        ctx.constraints = Some(cons);
        let findings = tc_lint::run_lint(&tc_par::Pool::from_env(), &ctx);
        let (errors, warnings): (Vec<_>, Vec<_>) = findings
            .into_iter()
            .partition(|d| d.severity == tc_lint::Severity::Error);
        if let Some(first) = errors.first() {
            return Err(tc_core::error::Error::invalid_input(format!(
                "preflight lint: {} error(s), first: {}",
                errors.len(),
                first.render()
            )));
        }
        Ok(warnings)
    }

    /// The incremental loop: one persistent [`Timer`] lives across all
    /// iterations; each speculative fix is applied through the journaled
    /// ECO mutators, re-timed over its dirty cone, and — if it regressed
    /// WNS — rolled back on both the netlist and the timer in O(cone).
    fn run_incremental(&mut self, nl: &mut Netlist, cons: Constraints) -> Result<ClosureOutcome> {
        let _run_span = tc_obs::span("closure.run");
        let edits_counter = tc_obs::counter("closure.edits");
        let mut timer = {
            let _sta = tc_obs::span("closure.sta");
            Timer::new(nl, self.lib, self.stack, cons)?
        };
        let mut iterations = Vec::new();
        for it in 1..=self.config.max_iterations {
            let iter_start = std::time::Instant::now();
            let counters_before = tc_obs::is_enabled().then(tc_obs::snapshot);
            let iter_span = tc_obs::span("closure.iteration");
            let before = timer.report(nl);
            if before.is_clean() {
                break;
            }
            let wns_before = before.wns();
            let mut fixes = Vec::new();
            let mut wns_running = wns_before;
            for &kind in &self.config.ordering.clone() {
                // Incremental-timing discipline: checkpoint, apply the
                // pass, re-time the dirty cone, keep it only if WNS did
                // not regress (the ping-pong guard of §2.3).
                let nl_cp = nl.journal_len();
                let t_cp = timer.checkpoint();
                let outcome = {
                    let _fix = tc_obs::span(&format!("closure.fix.{}", kind.label()));
                    self.apply_fix_incremental(kind, nl, &mut timer)?
                };
                if outcome.edits == 0 {
                    fixes.push((kind, 0));
                    continue;
                }
                let check = {
                    let _sta = tc_obs::span("closure.sta");
                    timer.update(nl)?;
                    timer.report(nl)
                };
                if check.wns() >= wns_running {
                    wns_running = check.wns();
                    edits_counter.add(outcome.edits as u64);
                    fixes.push((kind, outcome.edits));
                } else {
                    nl.undo_to(nl_cp)?;
                    timer.rollback_to(t_cp)?;
                    fixes.push((kind, 0));
                }
            }
            let after = timer.report(nl);
            drop(iter_span);
            let (counter_deltas, span_ns_deltas) =
                counters_before.map_or_else(Default::default, |before| {
                    let now = tc_obs::snapshot();
                    (now.counter_deltas(&before), now.span_ns_deltas(&before))
                });
            iterations.push(IterationRecord {
                iteration: it,
                wns_before,
                wns_after: after.wns(),
                tns_after: after.tns(),
                violations_after: after.setup_violations(),
                fixes,
                elapsed_ms: iter_start.elapsed().as_secs_f64() * 1e3,
                counter_deltas,
                span_ns_deltas,
            });
            // Ping-pong guard: a fully unproductive iteration means the
            // remaining violations need different medicine — stop rather
            // than thrash (§2.3's "without ping-pong effects").
            if after.wns() <= wns_before + Ps::new(1e-9)
                && iterations.len() >= 2
                && fixes_were_empty(&iterations[iterations.len() - 1])
            {
                break;
            }
        }
        let final_report = timer.report(nl);
        let closed = final_report.is_clean();
        let days = iterations.len() as f64 * self.config.days_per_iteration;
        Ok(ClosureOutcome {
            iterations,
            final_report,
            constraints: timer.constraints().clone(),
            closed,
            days,
            lint_findings: Vec::new(),
        })
    }

    /// Plans a fix from the timer's cached worst paths and applies it
    /// through the journaled ECO mutators — no full STA run anywhere.
    fn apply_fix_incremental(
        &self,
        kind: FixKind,
        nl: &mut Netlist,
        timer: &mut Timer<'_>,
    ) -> Result<FixOutcome> {
        let (k, b) = (self.config.k_paths, self.config.budget_per_pass);
        match kind {
            FixKind::VtSwap => {
                let paths = timer.worst_paths(nl, k)?;
                let plan = plan_vt_swaps(nl, self.lib, &paths, b, |_| true);
                for &(cell, master) in &plan {
                    nl.swap_master(self.lib, cell, master)?;
                }
                Ok(FixOutcome { edits: plan.len() })
            }
            FixKind::Sizing => {
                let paths = timer.worst_paths(nl, k)?;
                let plan = plan_sizing(nl, self.lib, &paths, b);
                for &(cell, master) in &plan {
                    nl.swap_master(self.lib, cell, master)?;
                }
                Ok(FixOutcome { edits: plan.len() })
            }
            FixKind::Buffering => {
                let paths = timer.worst_paths(nl, k)?;
                let plan = plan_buffering(nl, &paths, b / 6);
                apply_buffering(nl, self.lib, &plan).map(|edits| FixOutcome { edits })
            }
            FixKind::Ndr => {
                let paths = timer.worst_paths(nl, k)?;
                let plan = plan_ndr(nl, &paths, b / 3);
                let edits = plan.len();
                for net in plan {
                    nl.set_route_class(net, 2);
                }
                Ok(FixOutcome { edits })
            }
            FixKind::UsefulSkew => {
                let res = tc_clock::optimize_useful_skew(
                    nl,
                    self.lib,
                    self.stack,
                    timer.constraints(),
                    b / 10,
                    self.config.skew_step,
                )?;
                let edits = res.moves.len();
                if edits > 0 {
                    // Constraint changes touch every path: the timer
                    // re-propagates fully, but stays checkpointable.
                    timer.set_constraints(nl, res.constraints)?;
                }
                Ok(FixOutcome { edits })
            }
        }
    }

    /// The legacy loop: a from-scratch STA run per speculative fix and a
    /// whole-netlist clone per rollback point.
    fn run_full(&mut self, nl: &mut Netlist, cons: Constraints) -> Result<ClosureOutcome> {
        let _run_span = tc_obs::span("closure.run");
        let edits_counter = tc_obs::counter("closure.edits");
        let mut cons = cons;
        let mut iterations = Vec::new();
        for it in 1..=self.config.max_iterations {
            let iter_start = std::time::Instant::now();
            let counters_before = tc_obs::is_enabled().then(tc_obs::snapshot);
            let iter_span = tc_obs::span("closure.iteration");
            let before = {
                let _sta = tc_obs::span("closure.sta");
                self.sta(nl, &cons).run()?
            };
            if before.is_clean() {
                break;
            }
            let wns_before = before.wns();
            let mut fixes = Vec::new();
            let mut wns_running = wns_before;
            for &kind in &self.config.ordering.clone() {
                // Incremental-timing discipline: apply the pass, verify
                // it helped, roll back otherwise (a fix that regresses
                // timing is the ping-pong effect of §2.3).
                let snapshot_nl = nl.clone();
                let snapshot_cons = cons.clone();
                let outcome = {
                    let _fix = tc_obs::span(&format!("closure.fix.{}", kind.label()));
                    self.apply_fix(kind, nl, &mut cons)?
                };
                if outcome.edits == 0 {
                    fixes.push((kind, 0));
                    continue;
                }
                let check = {
                    let _sta = tc_obs::span("closure.sta");
                    self.sta(nl, &cons).run()?
                };
                if check.wns() >= wns_running {
                    wns_running = check.wns();
                    edits_counter.add(outcome.edits as u64);
                    fixes.push((kind, outcome.edits));
                } else {
                    *nl = snapshot_nl;
                    cons = snapshot_cons;
                    fixes.push((kind, 0));
                }
            }
            let after = {
                let _sta = tc_obs::span("closure.sta");
                self.sta(nl, &cons).run()?
            };
            drop(iter_span);
            let (counter_deltas, span_ns_deltas) =
                counters_before.map_or_else(Default::default, |before| {
                    let now = tc_obs::snapshot();
                    (now.counter_deltas(&before), now.span_ns_deltas(&before))
                });
            iterations.push(IterationRecord {
                iteration: it,
                wns_before,
                wns_after: after.wns(),
                tns_after: after.tns(),
                violations_after: after.setup_violations(),
                fixes,
                elapsed_ms: iter_start.elapsed().as_secs_f64() * 1e3,
                counter_deltas,
                span_ns_deltas,
            });
            // Ping-pong guard: a fully unproductive iteration means the
            // remaining violations need different medicine — stop rather
            // than thrash (§2.3's "without ping-pong effects").
            if after.wns() <= wns_before + Ps::new(1e-9)
                && iterations.len() >= 2
                && fixes_were_empty(&iterations[iterations.len() - 1])
            {
                break;
            }
        }
        let final_report = {
            let _sta = tc_obs::span("closure.sta");
            self.sta(nl, &cons).run()?
        };
        let closed = final_report.is_clean();
        let days = iterations.len() as f64 * self.config.days_per_iteration;
        Ok(ClosureOutcome {
            iterations,
            final_report,
            constraints: cons,
            closed,
            days,
            lint_findings: Vec::new(),
        })
    }

    /// Packages a finished run as a schema-versioned [`tc_obs::RunArtifact`]:
    /// the config knobs that shaped the loop, one JSON record per
    /// iteration (WNS/TNS trajectory, fix edits, wall clock, engine
    /// counter deltas), the closure verdict, and — when `tc_obs` is
    /// enabled — the full metrics snapshot plus, with memory counting
    /// armed, the heap telemetry section. Harnesses write this next to
    /// their figure sidecars so `tcdiff` can gate any two runs.
    pub fn run_artifact(&self, workload: &str, out: &ClosureOutcome) -> tc_obs::RunArtifact {
        use tc_obs::JsonValue;
        let wall_ms: f64 = out.iterations.iter().map(|r| r.elapsed_ms).sum();
        let mut artifact = tc_obs::RunArtifact::new(workload)
            .knob("use_incremental", self.config.use_incremental)
            .knob("parallel_sta", self.config.parallel_sta)
            .knob("max_iterations", self.config.max_iterations)
            .knob("k_paths", self.config.k_paths)
            .knob("budget_per_pass", self.config.budget_per_pass)
            .wall_ms(wall_ms)
            .extra("closed", JsonValue::from(out.closed))
            .extra("days", JsonValue::from(out.days))
            .extra(
                "final_wns_ps",
                JsonValue::from(out.final_report.wns().value()),
            )
            .extra(
                "final_tns_ps",
                JsonValue::from(out.final_report.tns().value()),
            )
            .extra("lint", lint_section(&out.lint_findings));
        for rec in &out.iterations {
            let fixes = rec
                .fixes
                .iter()
                .map(|(kind, edits)| {
                    JsonValue::Obj(vec![
                        ("fix".to_string(), JsonValue::str(kind.label())),
                        ("edits".to_string(), JsonValue::from(*edits)),
                    ])
                })
                .collect();
            let counters = rec
                .counter_deltas
                .iter()
                .map(|(name, v)| (name.clone(), JsonValue::from(*v)))
                .collect();
            let span_ns = rec
                .span_ns_deltas
                .iter()
                .map(|(path, v)| (path.clone(), JsonValue::from(*v)))
                .collect();
            artifact = artifact.iteration(JsonValue::Obj(vec![
                ("iteration".to_string(), JsonValue::from(rec.iteration)),
                (
                    "wns_before_ps".to_string(),
                    JsonValue::from(rec.wns_before.value()),
                ),
                (
                    "wns_after_ps".to_string(),
                    JsonValue::from(rec.wns_after.value()),
                ),
                (
                    "tns_after_ps".to_string(),
                    JsonValue::from(rec.tns_after.value()),
                ),
                (
                    "violations_after".to_string(),
                    JsonValue::from(rec.violations_after),
                ),
                ("fixes".to_string(), JsonValue::Arr(fixes)),
                ("elapsed_ms".to_string(), JsonValue::from(rec.elapsed_ms)),
                ("counter_deltas".to_string(), JsonValue::Obj(counters)),
                ("span_ns".to_string(), JsonValue::Obj(span_ns)),
            ]));
        }
        if tc_obs::is_enabled() {
            artifact = artifact.metrics(tc_obs::snapshot());
        }
        // No-op unless the counting allocator is armed, so artifacts
        // from uninstrumented runs stay byte-stable.
        artifact.capture_memory()
    }

    fn apply_fix(
        &self,
        kind: FixKind,
        nl: &mut Netlist,
        cons: &mut Constraints,
    ) -> Result<FixOutcome> {
        let (k, b) = (self.config.k_paths, self.config.budget_per_pass);
        match kind {
            FixKind::VtSwap => vt_swap_pass(nl, self.lib, self.stack, cons, k, b, |_| true),
            FixKind::Sizing => sizing_pass(nl, self.lib, self.stack, cons, k, b),
            FixKind::Buffering => buffering_pass(nl, self.lib, self.stack, cons, k, b / 6),
            FixKind::Ndr => ndr_pass(nl, self.lib, self.stack, cons, k, b / 3),
            FixKind::UsefulSkew => {
                let res = tc_clock::optimize_useful_skew(
                    nl,
                    self.lib,
                    self.stack,
                    cons,
                    b / 10,
                    self.config.skew_step,
                )?;
                let edits = res.moves.len();
                *cons = res.constraints;
                Ok(FixOutcome { edits })
            }
        }
    }
}

fn fixes_were_empty(rec: &IterationRecord) -> bool {
    rec.fixes.iter().all(|&(_, n)| n == 0)
}

/// The artifact's `lint` section: finding counts plus the first few
/// findings verbatim (capped so a noisy design cannot bloat the
/// artifact — the full list lives in [`ClosureOutcome::lint_findings`]).
fn lint_section(findings: &[tc_lint::Diagnostic]) -> tc_obs::JsonValue {
    use tc_obs::JsonValue;
    const EMBED_CAP: usize = 20;
    JsonValue::obj([
        ("warnings", JsonValue::from(findings.len())),
        (
            "findings",
            JsonValue::Arr(
                findings
                    .iter()
                    .take(EMBED_CAP)
                    .map(tc_lint::Diagnostic::to_json)
                    .collect(),
            ),
        ),
        (
            "truncated",
            JsonValue::from(findings.len().saturating_sub(EMBED_CAP)),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use tc_liberty::{LibConfig, PvtCorner};
    use tc_netlist::gen::{generate, BenchProfile};

    fn env(margin: f64) -> (Library, BeolStack, Netlist, Constraints) {
        let lib = Library::generate(&LibConfig::default(), &PvtCorner::typical());
        let nl = generate(&lib, BenchProfile::tiny(), 33).unwrap();
        let stack = BeolStack::n20();
        let probe = Constraints::single_clock(5_000.0);
        let r = Sta::new(&nl, &lib, &stack, &probe).run().unwrap();
        let period = 5_000.0 - r.wns().value() + margin;
        (lib, stack, nl, Constraints::single_clock(period))
    }

    #[test]
    fn loop_improves_timing_iteration_over_iteration() {
        // Constrain 50 ps beyond current capability.
        let (lib, stack, mut nl, cons) = env(-50.0);
        let mut flow = ClosureFlow::new(&lib, &stack, ClosureConfig::default());
        let out = flow.run(&mut nl, cons).unwrap();
        assert!(!out.iterations.is_empty());
        let first = &out.iterations[0];
        assert!(
            first.wns_after > first.wns_before,
            "iteration 1 must improve WNS: {} → {}",
            first.wns_before,
            first.wns_after
        );
        // WNS is monotone over iterations (each records its own start).
        for w in out.iterations.windows(2) {
            assert!(w[1].wns_before >= w[0].wns_after - Ps::new(1e-6));
        }
        nl.validate(&lib).unwrap();
    }

    #[test]
    fn mild_violation_closes_within_schedule() {
        let (lib, stack, mut nl, cons) = env(-25.0);
        let mut flow = ClosureFlow::new(&lib, &stack, ClosureConfig::default());
        let out = flow.run(&mut nl, cons).unwrap();
        assert!(
            out.closed,
            "25 ps violation should close: final {}",
            out.final_report.summary()
        );
        assert!(out.days <= 15.0, "within the 5-iteration schedule");
    }

    #[test]
    fn clean_design_takes_zero_iterations() {
        let (lib, stack, mut nl, cons) = env(100.0);
        let mut flow = ClosureFlow::new(&lib, &stack, ClosureConfig::default());
        let out = flow.run(&mut nl, cons).unwrap();
        assert!(out.closed);
        assert!(out.iterations.is_empty());
        assert_eq!(out.days, 0.0);
    }

    #[test]
    fn incremental_and_full_flows_agree() {
        // The two engines share evaluation code paths, so the whole loop
        // — plans, accept/reject decisions, final WNS — must agree.
        let (lib, stack, nl, cons) = env(-40.0);
        let run = |use_incremental: bool| {
            let mut nl2 = nl.clone();
            let cfg = ClosureConfig {
                max_iterations: 2,
                use_incremental,
                ..Default::default()
            };
            let mut flow = ClosureFlow::new(&lib, &stack, cfg);
            flow.run(&mut nl2, cons.clone()).unwrap()
        };
        let inc = run(true);
        let full = run(false);
        assert_eq!(inc.final_report.wns(), full.final_report.wns());
        assert_eq!(inc.final_report.tns(), full.final_report.tns());
        assert_eq!(inc.closed, full.closed);
        for (a, b) in inc.iterations.iter().zip(&full.iterations) {
            assert_eq!(a.fixes, b.fixes, "iteration {} fix records", a.iteration);
            assert_eq!(a.wns_after, b.wns_after);
        }
    }

    #[test]
    fn rejected_fixes_roll_back_netlist_and_timer_exactly() {
        use tc_sta::Timer;
        // Evaluate-and-reject every fix kind against a *clean* design:
        // each pass plans nothing or the rejection path must restore the
        // exact pre-fix netlist + timer state (journal length, WNS/TNS).
        let (lib, stack, mut nl, cons) = env(-40.0);
        let cfg = ClosureConfig::default();
        let flow = ClosureFlow::new(&lib, &stack, cfg.clone());
        let mut timer = Timer::new(&nl, &lib, &stack, cons).unwrap();

        for &kind in &FixKind::RECOMMENDED {
            let nl_cp = nl.journal_len();
            let t_cp = timer.checkpoint();
            let cells_before = nl.cell_count();
            let report_before = timer.report(&nl);
            let states_before = timer.states().to_vec();

            let out = flow
                .apply_fix_incremental(kind, &mut nl, &mut timer)
                .unwrap();
            timer.update(&nl).unwrap();
            // Unconditionally reject, regardless of what the fix did.
            nl.undo_to(nl_cp).unwrap();
            timer.rollback_to(t_cp).unwrap();

            assert_eq!(nl.journal_len(), nl_cp, "{kind:?}: journal restored");
            assert_eq!(nl.cell_count(), cells_before, "{kind:?}: cells restored");
            assert_eq!(timer.cursor(), nl.journal_len(), "{kind:?}: cursor synced");
            assert_eq!(
                timer.states(),
                &states_before[..],
                "{kind:?}: net states restored"
            );
            let report_after = timer.report(&nl);
            assert_eq!(report_after.wns(), report_before.wns(), "{kind:?}: WNS");
            assert_eq!(report_after.tns(), report_before.tns(), "{kind:?}: TNS");
            assert_eq!(
                report_after.endpoints, report_before.endpoints,
                "{kind:?}: endpoints restored"
            );
            // The fix kinds must actually exercise the rollback path at
            // least for the edit-producing passes.
            if out.edits > 0 {
                nl.validate(&lib).unwrap();
            }
        }
    }

    #[test]
    fn preflight_gate_rejects_unclocked_design_before_any_sta() {
        let (lib, stack, mut nl, mut cons) = env(-25.0);
        cons.clocks.clear();
        let mut flow = ClosureFlow::new(&lib, &stack, ClosureConfig::default());
        let err = flow.run(&mut nl, cons).unwrap_err().to_string();
        assert!(err.contains("preflight lint"), "{err}");
        assert!(err.contains("TCL0201"), "{err}");
    }

    #[test]
    fn preflight_warnings_ride_into_outcome_and_artifact() {
        let (lib, stack, mut nl, cons) = env(100.0);
        // Generated designs carry dangling gate outputs → TCL0104
        // warnings, which must not gate but must be reported.
        let mut flow = ClosureFlow::new(&lib, &stack, ClosureConfig::default());
        let out = flow.run(&mut nl, cons.clone()).unwrap();
        assert!(out.closed);
        assert!(!out.lint_findings.is_empty());
        assert!(out
            .lint_findings
            .iter()
            .all(|d| d.severity == tc_lint::Severity::Warning));
        let text = flow.run_artifact("flow_test lint", &out).render();
        assert!(text.contains("\"lint\""), "{text}");
        assert!(text.contains("TCL0104"), "{text}");

        // And the gate can be switched off entirely.
        let cfg = ClosureConfig {
            preflight_lint: false,
            ..Default::default()
        };
        let mut flow = ClosureFlow::new(&lib, &stack, cfg);
        let out = flow.run(&mut nl, cons).unwrap();
        assert!(out.lint_findings.is_empty());
    }

    #[test]
    fn run_artifact_captures_knobs_trajectory_and_verdict() {
        let (lib, stack, mut nl, cons) = env(-40.0);
        let cfg = ClosureConfig {
            max_iterations: 2,
            ..Default::default()
        };
        let mut flow = ClosureFlow::new(&lib, &stack, cfg);
        let out = flow.run(&mut nl, cons).unwrap();
        let artifact = flow.run_artifact("flow_test tiny", &out);
        let text = artifact.render();
        let doc = tc_obs::JsonValue::parse(&text).expect("artifact renders valid JSON");
        let tc_obs::JsonValue::Obj(fields) = &doc else {
            panic!("artifact is not an object");
        };
        let get = |name: &str| fields.iter().find(|(k, _)| k == name).map(|(_, v)| v);
        assert_eq!(
            get("schema_version"),
            Some(&tc_obs::JsonValue::from(
                tc_obs::RUN_ARTIFACT_SCHEMA_VERSION
            ))
        );
        assert_eq!(
            get("kind"),
            Some(&tc_obs::JsonValue::str(tc_obs::RUN_ARTIFACT_KIND))
        );
        let Some(tc_obs::JsonValue::Obj(knobs)) = get("knobs") else {
            panic!("artifact has no knobs object");
        };
        for knob in [
            "use_incremental",
            "parallel_sta",
            "max_iterations",
            "TC_PAR_THREADS",
        ] {
            assert!(knobs.iter().any(|(k, _)| k == knob), "missing knob {knob}");
        }
        let Some(tc_obs::JsonValue::Arr(iters)) = get("iterations") else {
            panic!("artifact has no iterations array");
        };
        assert_eq!(iters.len(), out.iterations.len());
        assert_eq!(
            get("closed"),
            Some(&tc_obs::JsonValue::from(out.closed)),
            "closure verdict is recorded"
        );
        assert_eq!(
            get("final_wns_ps"),
            Some(&tc_obs::JsonValue::from(out.final_report.wns().value()))
        );
    }

    #[test]
    fn recommended_order_beats_or_matches_reversed_on_cheap_fixes() {
        // Ablation: same budget, recommended vs reversed ordering. The
        // recommended order applies cheap high-leverage fixes first, so
        // after one iteration its WNS should be at least as good.
        let (lib, stack, nl, cons) = env(-40.0);
        let run = |ordering: Vec<FixKind>| {
            let mut nl2 = nl.clone();
            let cfg = ClosureConfig {
                max_iterations: 1,
                ordering,
                ..Default::default()
            };
            let mut flow = ClosureFlow::new(&lib, &stack, cfg);
            flow.run(&mut nl2, cons.clone()).unwrap().final_report.wns()
        };
        let rec = run(FixKind::RECOMMENDED.to_vec());
        let mut reversed = FixKind::RECOMMENDED.to_vec();
        reversed.reverse();
        let rev = run(reversed);
        assert!(
            rec >= rev - Ps::new(5.0),
            "recommended {rec} vs reversed {rev}"
        );
    }
}
