//! **Fig 6(b)** — temperature inversion: simulated inverter-stage delay
//! vs supply voltage at −30 °C and 125 °C. Below the reversal point
//! `Vtr` the circuit is slower *cold*; above it, slower *hot* — so both
//! temperature corners must be signed off when the supply sits near Vtr.

use tc_bench::{fmt, print_table};
use tc_core::units::{Celsius, Volt};
use tc_device::{mosfet::temperature_reversal_point, MosDevice, MosKind, Technology, VtClass};
use tc_sim::cells::inverter_chain_delay;

fn main() {
    let tech = Technology::planar_28nm();
    let cold = Celsius::new(-30.0);
    let hot = Celsius::new(125.0);

    let mut rows = Vec::new();
    for &v in &[0.55, 0.60, 0.65, 0.70, 0.75, 0.80, 0.90, 1.00, 1.10] {
        let vdd = Volt::new(v);
        let d_cold = inverter_chain_delay(&tech, VtClass::Svt, vdd, cold).expect("sim");
        let d_hot = inverter_chain_delay(&tech, VtClass::Svt, vdd, hot).expect("sim");
        let slower = if d_cold > d_hot { "cold" } else { "hot" };
        rows.push(vec![
            fmt(v, 2),
            fmt(d_cold.value(), 2),
            fmt(d_hot.value(), 2),
            slower.to_string(),
        ]);
    }
    print_table(
        "Fig 6(b): inverter delay vs VDD (transistor-level simulation)",
        &[
            "VDD (V)",
            "delay @ -30C (ps)",
            "delay @ 125C (ps)",
            "slower corner",
        ],
        &rows,
    );

    let dev = MosDevice::new(MosKind::Nmos, VtClass::Svt, 1.0);
    if let Some(vtr) =
        temperature_reversal_point(&tech, &dev, cold, hot, Volt::new(0.45), Volt::new(1.2))
    {
        println!("\ndevice-model reversal point Vtr ≈ {:.3} V", vtr.value());
        println!("→ signoff voltages near Vtr require BOTH hot and cold corners (§2.3)");
    }
}
