//! Differential profiling: compare two span profiles name-by-name
//! under a relative tolerance, so a hot-path regression gates CI as a
//! named span with a percentage.
//!
//! Unlike `tcdiff` (which flattens documents positionally and treats
//! any `_ns` leaf as informational timing), this diff *gates* on
//! timing — that is its whole point — but only for spans that carry a
//! meaningful share of the wall clock (`min_share`), so scheduling
//! jitter on microsecond spans never fails a build. Structure (span
//! set, counts) is deterministic for same-seed runs and is compared
//! exactly by default.

use crate::fmt_ns;
use crate::profile::Profile;

/// Knobs for [`diff`].
#[derive(Clone, Debug)]
pub struct DiffOptions {
    /// Relative self-time growth beyond which a span regresses
    /// (`0.5` = +50%).
    pub tol: f64,
    /// Minimum share of wall (in either profile) a span's self time
    /// must hold before its timing is gated at all.
    pub min_share: f64,
    /// Demote count mismatches from regressions to notes (for
    /// workloads whose span counts legitimately vary run-to-run).
    pub counts_informational: bool,
}

impl Default for DiffOptions {
    fn default() -> DiffOptions {
        DiffOptions {
            tol: 0.5,
            min_share: 0.02,
            counts_informational: false,
        }
    }
}

/// What [`diff`] found: gating regressions and informational notes.
#[derive(Clone, Debug, Default)]
pub struct DiffReport {
    /// Findings that should fail a gate.
    pub regressions: Vec<String>,
    /// Non-gating observations (improvements, wall drift, heap drift).
    pub notes: Vec<String>,
}

impl DiffReport {
    /// No gating findings.
    pub fn is_clean(&self) -> bool {
        self.regressions.is_empty()
    }
}

fn share(self_ns: u64, wall_ns: u64) -> f64 {
    if wall_ns == 0 {
        0.0
    } else {
        self_ns as f64 / wall_ns as f64
    }
}

/// Compares `cand` against `base`.
///
/// Regressions: dropped events in either profile (truncated profiles
/// are not gateable), spans appearing or disappearing, count changes
/// (unless demoted), and self-time growth beyond `tol` on any span
/// whose share of wall reaches `min_share` in either profile.
/// Improvements and sub-share drift are notes.
pub fn diff(base: &Profile, cand: &Profile, opts: &DiffOptions) -> DiffReport {
    let mut report = DiffReport::default();
    for (label, p) in [("baseline", base), ("candidate", cand)] {
        if p.dropped_events > 0 {
            report.regressions.push(format!(
                "{label} profile dropped {} trace event(s) — ring overflow truncates \
                 self-time; re-record with a larger capacity",
                p.dropped_events
            ));
        }
    }
    if base.workload != cand.workload {
        report.notes.push(format!(
            "workload label differs: \"{}\" vs \"{}\"",
            base.workload, cand.workload
        ));
    }
    if base.wall_ns > 0 {
        let rel = (cand.wall_ns as f64 - base.wall_ns as f64) / base.wall_ns as f64;
        report.notes.push(format!(
            "wall {} -> {} ({:+.1}%)",
            fmt_ns(base.wall_ns),
            fmt_ns(cand.wall_ns),
            rel * 100.0
        ));
    }

    for b in &base.spans {
        let Some(c) = cand.span(&b.name) else {
            report.regressions.push(format!(
                "span {}: present in baseline, missing from candidate",
                b.name
            ));
            continue;
        };
        if b.count != c.count {
            let msg = format!("span {}: count {} -> {}", b.name, b.count, c.count);
            if opts.counts_informational {
                report.notes.push(msg);
            } else {
                report.regressions.push(msg);
            }
        }
        let sh = share(b.self_ns, base.wall_ns).max(share(c.self_ns, cand.wall_ns));
        if sh < opts.min_share {
            continue;
        }
        if b.self_ns == 0 {
            report.regressions.push(format!(
                "span {}: self 0 -> {} ({:.1}% of wall)",
                b.name,
                fmt_ns(c.self_ns),
                share(c.self_ns, cand.wall_ns) * 100.0
            ));
            continue;
        }
        let rel = (c.self_ns as f64 - b.self_ns as f64) / b.self_ns as f64;
        if rel > opts.tol {
            report.regressions.push(format!(
                "span {}: self {} -> {} ({:+.1}%, tol {:.0}%)",
                b.name,
                fmt_ns(b.self_ns),
                fmt_ns(c.self_ns),
                rel * 100.0,
                opts.tol * 100.0
            ));
        } else if rel < -opts.tol {
            report.notes.push(format!(
                "span {}: self {} -> {} ({:+.1}%) — improved",
                b.name,
                fmt_ns(b.self_ns),
                fmt_ns(c.self_ns),
                rel * 100.0
            ));
        }
        let heap_delta = (c.net_bytes - b.net_bytes).unsigned_abs();
        if heap_delta > (1 << 20) && heap_delta as i64 > b.net_bytes.abs() / 2 {
            report.notes.push(format!(
                "span {}: net heap {} -> {}",
                b.name,
                tc_obs::fmt_bytes(b.net_bytes),
                tc_obs::fmt_bytes(c.net_bytes)
            ));
        }
    }
    for c in &cand.spans {
        if base.span(&c.name).is_none() {
            report.regressions.push(format!(
                "span {}: new in candidate, absent from baseline",
                c.name
            ));
        }
    }
    report
}
