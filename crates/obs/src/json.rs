//! A minimal JSON document builder and parser — enough for exporters,
//! figure sidecars, and the `tcdiff` regression gate without pulling in
//! serde.

use std::fmt::Write as _;

/// A JSON value tree. Object keys keep insertion order.
#[derive(Clone, Debug, PartialEq)]
pub enum JsonValue {
    /// `null` (also what non-finite numbers render as).
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number; non-finite values render as `null`.
    Num(f64),
    /// A string (escaped on render).
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object with ordered keys.
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// String value from anything stringy.
    pub fn str(s: impl Into<String>) -> JsonValue {
        JsonValue::Str(s.into())
    }

    /// Object from `(key, value)` pairs.
    pub fn obj<'a>(pairs: impl IntoIterator<Item = (&'a str, JsonValue)>) -> JsonValue {
        JsonValue::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Parses a JSON document (RFC 8259). The inverse of [`render`]:
    /// object key order is preserved, all numbers become [`Num`], and
    /// trailing non-whitespace is an error.
    ///
    /// Nesting is bounded at [`MAX_DEPTH`] containers: the parser is
    /// recursive-descent, so a pathological `[[[[…` input would
    /// otherwise overflow the stack instead of returning `Err`.
    ///
    /// [`render`]: JsonValue::render
    /// [`Num`]: JsonValue::Num
    ///
    /// # Errors
    ///
    /// Returns a message with the byte offset of the first syntax error,
    /// or a depth-limit message naming [`MAX_DEPTH`] and the offending
    /// byte offset for over-nested input.
    pub fn parse(text: &str) -> Result<JsonValue, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
            depth: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing data at byte {}", p.pos));
        }
        Ok(v)
    }

    /// Serializes to compact JSON text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::Num(x) => {
                if !x.is_finite() {
                    out.push_str("null");
                } else if *x == x.trunc() && x.abs() < 9.0e15 {
                    let _ = write!(out, "{}", *x as i64);
                } else {
                    let _ = write!(out, "{x}");
                }
            }
            JsonValue::Str(s) => {
                out.push('"');
                escape_into(s, out);
                out.push('"');
            }
            JsonValue::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            JsonValue::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('"');
                    escape_into(k, out);
                    out.push_str("\":");
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }
}

impl From<f64> for JsonValue {
    fn from(x: f64) -> Self {
        JsonValue::Num(x)
    }
}

impl From<u64> for JsonValue {
    fn from(x: u64) -> Self {
        JsonValue::Num(x as f64)
    }
}

impl From<usize> for JsonValue {
    fn from(x: usize) -> Self {
        JsonValue::Num(x as f64)
    }
}

impl From<i64> for JsonValue {
    fn from(x: i64) -> Self {
        JsonValue::Num(x as f64)
    }
}

impl From<bool> for JsonValue {
    fn from(b: bool) -> Self {
        JsonValue::Bool(b)
    }
}

impl From<&str> for JsonValue {
    fn from(s: &str) -> Self {
        JsonValue::Str(s.to_string())
    }
}

/// Maximum container nesting depth [`JsonValue::parse`] accepts.
///
/// Deep enough for any artifact this workspace emits (traces nest a
/// handful of levels), small enough that the recursive parser stays
/// well inside the thread stack.
pub const MAX_DEPTH: usize = 128;

/// Recursive-descent JSON reader over the document's bytes.
struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    /// Current container nesting depth, guarded against [`MAX_DEPTH`].
    depth: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", char::from(b), self.pos))
        }
    }

    fn literal(&mut self, word: &str, v: JsonValue) -> Result<JsonValue, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected value at byte {}", self.pos)),
        }
    }

    /// Bumps the nesting depth on container entry; the guard restores it
    /// when the container method returns.
    fn enter(&mut self) -> Result<(), String> {
        if self.depth >= MAX_DEPTH {
            return Err(format!(
                "nesting deeper than {MAX_DEPTH} levels at byte {}",
                self.pos
            ));
        }
        self.depth += 1;
        Ok(())
    }

    fn array(&mut self) -> Result<JsonValue, String> {
        self.expect(b'[')?;
        self.enter()?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(JsonValue::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<JsonValue, String> {
        self.expect(b'{')?;
        self.enter()?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(JsonValue::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key_at = self.pos;
            let key = self.string()?;
            // Duplicate keys make name lookup ambiguous (first-match wins
            // while iteration sees every pair), so no consumer can treat
            // the document coherently; refuse them outright.
            if pairs.iter().any(|(k, _)| *k == key) {
                return Err(format!("duplicate key `{key}` at byte {key_at}"));
            }
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            pairs.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(JsonValue::Obj(pairs));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        while self
            .peek()
            .is_some_and(|b| matches!(b, b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| format!("invalid number at byte {start}"))?;
        let x = text
            .parse::<f64>()
            .map_err(|_| format!("invalid number `{text}` at byte {start}"))?;
        // `1e999` overflows f64 to infinity; a document can never round-
        // trip it (non-finite renders as null), so refuse it here rather
        // than leak `inf` into downstream arithmetic.
        if !x.is_finite() {
            return Err(format!("number `{text}` overflows f64 at byte {start}"));
        }
        Ok(JsonValue::Num(x))
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let start = self.pos;
        let s = self
            .bytes
            .get(start..start + 4)
            .and_then(|b| std::str::from_utf8(b).ok())
            .ok_or_else(|| format!("truncated \\u escape at byte {start}"))?;
        self.pos += 4;
        u32::from_str_radix(s, 16).map_err(|_| format!("invalid \\u escape at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let start = self.pos - 1;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => {
                    return Err(format!(
                        "unterminated string starting at byte {start} (ends at byte {})",
                        self.pos
                    ))
                }
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| format!("unterminated escape at byte {}", self.pos))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi)
                                && self.bytes[self.pos..].starts_with(b"\\u")
                            {
                                self.pos += 2;
                                let lo = self.hex4()?;
                                if (0xDC00..0xE000).contains(&lo) {
                                    0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                                } else {
                                    // High surrogate followed by a non-low
                                    // escape: the pair arithmetic would
                                    // underflow. Render the unpaired high
                                    // half as U+FFFD and keep the second
                                    // escape on its own.
                                    out.push('\u{FFFD}');
                                    lo
                                }
                            } else {
                                hi
                            };
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        }
                        other => {
                            return Err(format!(
                                "invalid escape '\\{}' at byte {}",
                                char::from(other),
                                self.pos - 1
                            ))
                        }
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (the input is &str, so
                    // boundaries are valid).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| format!("invalid utf-8 at byte {}", self.pos))?;
                    let c = rest
                        .chars()
                        .next()
                        .ok_or_else(|| format!("unterminated string at byte {}", self.pos))?;
                    if (c as u32) < 0x20 {
                        return Err(format!("raw control char at byte {}", self.pos));
                    }
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }
}

/// Escapes `s` per RFC 8259 (quotes, backslash, control characters).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    escape_into(s, &mut out);
    out
}

fn escape_into(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}
