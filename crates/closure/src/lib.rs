#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! # tc-closure — the timing-closure loop
//!
//! The paper's Figure 1 (MacDonald, ref \[30\]): iterate *STA → breakdown
//! of failures → manual repair*, applying the simplest fixes first —
//! **Vt-swap, then gate sizing, then buffer insertion, then non-default
//! routing rules, then useful skew** — until the block closes or the
//! schedule runs out (three weeks ≈ five three-day iterations).
//!
//! * [`fixes`] — the five fix transforms, each operating on the netlist
//!   ECO surface (`swap_master`, `insert_buffer`, `set_route_class`) or
//!   the clock tree, guided by the worst paths from `tc-sta`'s PBA.
//! * [`flow`] — the iteration driver with per-iteration fix budgets,
//!   convergence records, ping-pong detection, and configurable fix
//!   ordering (for the ablation comparing the paper's recommended order
//!   against alternatives).
//! * [`power`] — post-closure leakage recovery: walking high-slack cells
//!   back down the Vt ladder, optionally under a MinIA-awareness veto
//!   (the §2.4 interference).
//!
//! # Examples
//!
//! ```
//! use tc_closure::flow::{ClosureConfig, ClosureFlow};
//! use tc_interconnect::BeolStack;
//! use tc_liberty::{LibConfig, Library, PvtCorner};
//! use tc_netlist::gen::{generate, BenchProfile};
//! use tc_sta::Constraints;
//!
//! let lib = Library::generate(&LibConfig::default(), &PvtCorner::typical());
//! let mut nl = generate(&lib, BenchProfile::tiny(), 1)?;
//! let stack = BeolStack::n20();
//! let cons = Constraints::single_clock(1_500.0);
//! let mut flow = ClosureFlow::new(&lib, &stack, ClosureConfig::default());
//! let outcome = flow.run(&mut nl, cons)?;
//! assert!(outcome.closed || !outcome.iterations.is_empty());
//! # Ok::<(), tc_core::Error>(())
//! ```

pub mod fixes;
pub mod flow;
pub mod power;

pub use fixes::{hold_fix_pass, noise_fix_pass, FixKind, FixOutcome};
pub use flow::{ClosureConfig, ClosureFlow, ClosureOutcome, IterationRecord};
pub use power::recover_leakage;
