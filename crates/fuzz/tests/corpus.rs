//! Replays the committed regression corpus on every `cargo test` run.
//!
//! Each file under `crates/fuzz/corpus/<target>/` is a shrunk input that
//! once violated a fuzz invariant (panic, context-free error, round-trip
//! break). After the corresponding fix, the entry must parse cleanly or
//! fail with a positioned error — never violate again.

use std::path::PathBuf;

use tc_fuzz::{Env, TargetKind, Verdict};

#[test]
fn committed_corpus_entries_no_longer_violate() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("corpus");
    if !root.is_dir() {
        // No findings committed yet — vacuously green.
        return;
    }
    let env = Env::new();
    let mut replayed = 0usize;
    for target in TargetKind::ALL {
        let dir = root.join(target.name());
        if !dir.is_dir() {
            continue;
        }
        let mut files: Vec<PathBuf> = std::fs::read_dir(&dir)
            .unwrap_or_else(|e| panic!("read {}: {e}", dir.display()))
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.is_file())
            .collect();
        files.sort();
        for file in files {
            let input =
                std::fs::read(&file).unwrap_or_else(|e| panic!("read {}: {e}", file.display()));
            match env.check(target, &input) {
                Verdict::Accepted | Verdict::Rejected => {}
                Verdict::Violation(v) => panic!(
                    "[{}] corpus entry {} still violates: {} — {}",
                    target.name(),
                    file.display(),
                    v.kind(),
                    v.message()
                ),
            }
            replayed += 1;
        }
    }
    // Sanity: the walk actually visited the committed entries.
    assert!(replayed > 0, "corpus directory exists but holds no files");
}
