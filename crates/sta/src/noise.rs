//! Functional noise (glitch) analysis.
//!
//! Besides delta-delay, coupling injects *glitches*: an aggressor edge
//! couples charge onto a quiet victim net; if the bump exceeds the
//! receiver's noise margin it can propagate a spurious transition. The
//! paper counts "a last set of several hundred manual noise … fixes"
//! as part of every tapeout (§1) and lists noise closure among the new
//! signoff requirements (§1.3).
//!
//! The glitch model: peak ≈ VDD · Cc/(Cc+Cg+Cpin) · k_driver, where the
//! holding driver's strength (its output resistance vs the coupling
//! time constant) attenuates the bump. Victims failing the margin are
//! fixed by spacing NDRs or upsizing the holding driver.

use tc_core::ids::NetId;
use tc_interconnect::beol::{BeolCorner, BeolStack};
use tc_interconnect::estimate::{NdrClass, WireModel};
use tc_liberty::Library;
use tc_netlist::Netlist;

/// One victim net failing the noise check.
#[derive(Clone, Debug, PartialEq)]
pub struct NoiseViolation {
    /// The victim net.
    pub net: NetId,
    /// Estimated glitch peak as a fraction of VDD.
    pub glitch_frac: f64,
    /// The noise margin it exceeded (fraction of VDD).
    pub margin_frac: f64,
}

/// Noise-check configuration.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct NoiseConfig {
    /// Receiver noise margin as a fraction of VDD (typ. ~0.3 for static
    /// CMOS at nominal supply, lower at low voltage).
    pub margin_frac: f64,
    /// Attenuation exponent of driver holding strength (larger drive ⇒
    /// smaller glitch).
    pub driver_atten: f64,
}

impl Default for NoiseConfig {
    fn default() -> Self {
        NoiseConfig {
            margin_frac: 0.30,
            driver_atten: 0.55,
        }
    }
}

/// Estimates the glitch peak fraction for one net.
pub fn glitch_fraction(
    nl: &Netlist,
    lib: &Library,
    stack: &BeolStack,
    corner: BeolCorner,
    cfg: &NoiseConfig,
    net: NetId,
) -> f64 {
    let n = nl.net(net);
    if n.wire_length_um <= 1.0 {
        return 0.0;
    }
    let ndr = match n.route_class {
        0 => NdrClass::Default,
        1 => NdrClass::DoubleWidth,
        _ => NdrClass::DoubleWidthSpacing,
    };
    let wm = WireModel::from_length(n.wire_length_um).with_ndr(ndr);
    let layer = stack.layer(wm.layer);
    let f = corner.factors(layer.multi_patterned);
    let (_, fcg, fcc) = ndr.factors();
    let cc = layer.cc_per_um * f.cc * fcc * n.wire_length_um;
    let cg = layer.cg_per_um * f.cg * fcg * n.wire_length_um;
    let pin: f64 = n
        .sinks
        .iter()
        .map(|s| lib.cell(nl.cell(s.cell).master).input_cap.value())
        .sum();
    let coupling = cc / (cc + cg + pin);
    // Holding-driver attenuation: stronger drivers restore the victim
    // faster, clipping the bump.
    let drive = n
        .driver
        .map(|d| lib.cell(nl.cell(d).master).drive)
        .unwrap_or(8.0); // primary inputs are strongly driven
    coupling * (1.0 / drive).powf(cfg.driver_atten)
}

/// Runs the noise check over every net; returns violations sorted worst
/// first.
pub fn noise_check(
    nl: &Netlist,
    lib: &Library,
    stack: &BeolStack,
    corner: BeolCorner,
    cfg: &NoiseConfig,
) -> Vec<NoiseViolation> {
    let mut out: Vec<NoiseViolation> = (0..nl.net_count())
        .map(NetId::new)
        .filter_map(|net| {
            let g = glitch_fraction(nl, lib, stack, corner, cfg, net);
            (g > cfg.margin_frac).then_some(NoiseViolation {
                net,
                glitch_frac: g,
                margin_frac: cfg.margin_frac,
            })
        })
        .collect();
    out.sort_by(|a, b| b.glitch_frac.total_cmp(&a.glitch_frac));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use tc_liberty::{LibConfig, PvtCorner};
    use tc_netlist::gen::{generate, BenchProfile};

    fn env() -> (Library, BeolStack, Netlist) {
        let lib = Library::generate(&LibConfig::default(), &PvtCorner::typical());
        let nl = generate(&lib, BenchProfile::tiny(), 61).unwrap();
        (lib, BeolStack::n20(), nl)
    }

    #[test]
    fn long_weakly_driven_nets_glitch_hardest() {
        let (lib, stack, mut nl) = env();
        // Find nets driven by X1 and X4 cells; make both long.
        let x1_net = (0..nl.net_count())
            .map(NetId::new)
            .find(|&n| {
                nl.net(n)
                    .driver
                    .map(|d| lib.cell(nl.cell(d).master).drive == 1.0)
                    .unwrap_or(false)
            })
            .expect("x1-driven net exists");
        let x4_net = (0..nl.net_count())
            .map(NetId::new)
            .find(|&n| {
                nl.net(n)
                    .driver
                    .map(|d| lib.cell(nl.cell(d).master).drive == 4.0)
                    .unwrap_or(false)
            })
            .expect("x4-driven net exists");
        nl.set_wire_length(x1_net, 500.0);
        nl.set_wire_length(x4_net, 500.0);
        let cfg = NoiseConfig::default();
        let g1 = glitch_fraction(&nl, &lib, &stack, BeolCorner::Typical, &cfg, x1_net);
        let g4 = glitch_fraction(&nl, &lib, &stack, BeolCorner::Typical, &cfg, x4_net);
        assert!(g1 > g4, "weak driver must glitch harder: {g1} vs {g4}");
        assert!(g1 > 0.1);
    }

    #[test]
    fn spacing_ndr_fixes_noise() {
        let (lib, stack, mut nl) = env();
        let net = NetId::new(
            (0..nl.net_count())
                .find(|&i| nl.net(NetId::new(i)).driver.is_some())
                .unwrap(),
        );
        nl.set_wire_length(net, 700.0);
        let cfg = NoiseConfig::default();
        let before = glitch_fraction(&nl, &lib, &stack, BeolCorner::Typical, &cfg, net);
        nl.set_route_class(net, 2);
        let after = glitch_fraction(&nl, &lib, &stack, BeolCorner::Typical, &cfg, net);
        assert!(
            after < 0.7 * before,
            "spacing must cut coupling: {before} → {after}"
        );
    }

    #[test]
    fn ccworst_corner_finds_more_violations() {
        let (lib, stack, mut nl) = env();
        for i in 0..nl.net_count() {
            nl.set_wire_length(NetId::new(i), 300.0);
        }
        let cfg = NoiseConfig {
            margin_frac: 0.25,
            ..Default::default()
        };
        let typ = noise_check(&nl, &lib, &stack, BeolCorner::Typical, &cfg).len();
        let ccw = noise_check(&nl, &lib, &stack, BeolCorner::CcWorst, &cfg).len();
        assert!(
            ccw >= typ,
            "Ccw is the noise-signoff corner: {ccw} vs {typ}"
        );
        assert!(ccw > 0, "a 300 µm everything design must have noise issues");
    }

    #[test]
    fn violations_sorted_worst_first() {
        let (lib, stack, mut nl) = env();
        for i in 0..nl.net_count() {
            nl.set_wire_length(NetId::new(i), 400.0);
        }
        let v = noise_check(
            &nl,
            &lib,
            &stack,
            BeolCorner::CcWorst,
            &NoiseConfig {
                margin_frac: 0.2,
                ..Default::default()
            },
        );
        for w in v.windows(2) {
            assert!(w[0].glitch_frac >= w[1].glitch_frac);
        }
    }
}
