//! Ablation — the Fig 1 fix ordering: the paper's recommended sequence
//! (Vt-swap → sizing → buffering → NDR → useful skew) against the
//! reversed sequence and single-fix-only flows, at equal ECO budget,
//! over several seeds.

use tc_bench::{fmt, print_table, standard_env};
use tc_closure::fixes::FixKind;
use tc_closure::flow::{ClosureConfig, ClosureFlow};
use tc_sta::{Constraints, Sta};

fn main() {
    let (lib, stack) = standard_env();

    let orderings: Vec<(&str, Vec<FixKind>)> = vec![
        ("recommended", FixKind::RECOMMENDED.to_vec()),
        ("reversed", {
            let mut v = FixKind::RECOMMENDED.to_vec();
            v.reverse();
            v
        }),
        ("vt_swap_only", vec![FixKind::VtSwap]),
        ("sizing_only", vec![FixKind::Sizing]),
        ("skew_only", vec![FixKind::UsefulSkew]),
    ];

    let mut rows = Vec::new();
    for (name, ordering) in &orderings {
        let mut total_gain = 0.0;
        let mut total_leak_delta = 0.0;
        let mut closed = 0;
        let seeds = [31u64, 32, 33];
        for &seed in &seeds {
            let base = tc_bench::bench_netlist(&lib, "tiny", seed);
            let probe = Constraints::single_clock(5_000.0);
            let wns = Sta::new(&base, &lib, &stack, &probe)
                .run()
                .expect("sta")
                .wns()
                .value();
            let cons = Constraints::single_clock(5_000.0 - wns - 45.0);
            let leak_before = base.total_leakage_uw(&lib);

            let mut nl = base.clone();
            let cfg = ClosureConfig {
                max_iterations: 2,
                ordering: ordering.clone(),
                ..Default::default()
            };
            let mut flow = ClosureFlow::new(&lib, &stack, cfg);
            let out = flow.run(&mut nl, cons).expect("closure");
            let gain = out.final_report.wns().value() + 45.0; // from −45
            total_gain += gain;
            total_leak_delta += nl.total_leakage_uw(&lib) - leak_before;
            if out.closed {
                closed += 1;
            }
        }
        let n = 3.0;
        rows.push(vec![
            name.to_string(),
            fmt(total_gain / n, 1),
            format!("{closed}/3"),
            fmt(total_leak_delta / n, 2),
        ]);
    }
    print_table(
        "Fix-ordering ablation (3 seeds, 45 ps overconstraint, equal budget)",
        &[
            "ordering",
            "mean WNS gain (ps)",
            "closed",
            "mean Δleakage (µW)",
        ],
        &rows,
    );
    println!("\n→ the recommended (Vt-swap-first) order closes at zero footprint/routing");
    println!("  churn, paying in leakage; sizing-led orders pay in area and input-cap");
    println!("  churn instead; skew alone cannot close large violations. Fig 1 orders");
    println!("  fixes by *ECO disruption*, not raw WNS leverage — and §2.4's MinIA rules");
    println!("  are what later broke the 'Vt-swap is free' premise.");
}
