//! Variation-modeling standards: flat OCV, AOCV, POCV and LVF.
//!
//! The paper's §3.1 traces the industry ladder:
//!
//! 1. **Flat OCV** — one global derate factor per early/late analysis.
//! 2. **AOCV** — derate as a function of path *stage count* (and spatial
//!    extent): deeper paths statistically average out local variation, so
//!    their per-stage derate shrinks.
//! 3. **POCV** — one relative sigma per cell; per-path sigmas accumulate
//!    in root-sum-square instead of linearly.
//! 4. **LVF** — sigma per *(slew, load)* point per arc, with separate
//!    late/early values capturing the non-Gaussian path-delay asymmetry
//!    of Fig 7.
//!
//! `tc-sta` consumes these through [`DerateModel`]; `tc-variation`
//! cross-validates them against Monte Carlo.

use tc_core::error::{Error, Result};
use tc_core::lut::Lut2;

use crate::nldm::{LOAD_AXIS, SLEW_AXIS};

/// An AOCV derate table: multiplicative late/early derates indexed by
/// path depth (stage count), optionally widened by spatial distance.
#[derive(Clone, Debug, PartialEq)]
pub struct AocvTable {
    depths: Vec<usize>,
    late: Vec<f64>,
    early: Vec<f64>,
    /// Additional derate per mm of path bounding-box diagonal.
    pub distance_slope: f64,
}

impl AocvTable {
    /// Builds a table from a per-stage local sigma fraction: at depth `n`
    /// the ±3σ path derate is `1 ± 3·sigma/√n` (statistical averaging).
    pub fn from_stage_sigma(sigma: f64) -> Self {
        let depths: Vec<usize> = vec![1, 2, 3, 4, 6, 8, 12, 16, 24, 32, 48, 64];
        let late = depths
            .iter()
            .map(|&n| 1.0 + 3.0 * sigma / (n as f64).sqrt())
            .collect();
        let early = depths
            .iter()
            .map(|&n| (1.0 - 3.0 * sigma / (n as f64).sqrt()).max(0.5))
            .collect();
        AocvTable {
            depths,
            late,
            early,
            distance_slope: 0.01,
        }
    }

    fn lookup(&self, values: &[f64], depth: usize) -> f64 {
        let depth = depth.max(1);
        match self.depths.binary_search(&depth) {
            Ok(i) => values[i],
            Err(0) => values[0],
            Err(i) if i >= self.depths.len() => values[values.len() - 1],
            Err(i) => {
                let (d0, d1) = (self.depths[i - 1] as f64, self.depths[i] as f64);
                let t = (depth as f64 - d0) / (d1 - d0);
                values[i - 1] + t * (values[i] - values[i - 1])
            }
        }
    }

    /// Late (setup) derate at the given path depth and spatial extent.
    pub fn late_derate(&self, depth: usize, distance_mm: f64) -> f64 {
        self.lookup(&self.late, depth) + self.distance_slope * distance_mm
    }

    /// Early (hold) derate at the given path depth and spatial extent.
    pub fn early_derate(&self, depth: usize, distance_mm: f64) -> f64 {
        (self.lookup(&self.early, depth) - self.distance_slope * distance_mm).max(0.5)
    }
}

/// POCV: a single relative sigma per cell; the STA accumulates
/// `σ_path² = Σ σ_stage²` and margins at `mean + k·σ_path`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PocvSigma {
    /// Relative late sigma (fraction of nominal stage delay).
    pub late: f64,
    /// Relative early sigma.
    pub early: f64,
}

impl PocvSigma {
    /// A typical advanced-node local-variation figure.
    pub fn standard() -> Self {
        PocvSigma {
            late: 0.045,
            early: 0.040,
        }
    }
}

/// LVF: per-arc sigma *tables* on the NLDM (slew × load) axes, separate
/// for late and early analysis — "one number per load-slew combination
/// per cell" versus POCV's "one number per cell" (paper §3.1).
#[derive(Clone, Debug, PartialEq)]
pub struct LvfTable {
    /// Late (setup-side) absolute sigma in ps, on (slew, load) axes.
    pub sigma_late: Lut2,
    /// Early (hold-side) absolute sigma in ps.
    pub sigma_early: Lut2,
}

impl LvfTable {
    /// Builds an LVF table from a nominal delay surface: local variation
    /// is relatively larger for lightly-loaded, fast-input arcs (where
    /// the transistor's own variation dominates) and the late sigma
    /// carries the long-tail excess over the early sigma (Fig 7).
    ///
    /// # Errors
    ///
    /// Propagates table-construction failures (invalid axes) with the
    /// sigma surface named.
    pub fn from_delay_surface(delay: &Lut2, base_sigma: f64, asymmetry: f64) -> Result<Self> {
        let rel = |s: f64, l: f64, d: f64| -> f64 {
            // Relative sigma shrinks slowly with load and slew.
            let shape = 1.0 + 0.5 / (1.0 + l / 4.0) + 0.3 / (1.0 + s / 40.0);
            base_sigma * shape * d
        };
        let sigma_late = Lut2::from_fn(SLEW_AXIS.to_vec(), LOAD_AXIS.to_vec(), |s, l| {
            rel(s, l, delay.eval(s, l)) * asymmetry
        })
        .map_err(|e| Error::internal(format!("LVF late-sigma grid: {e}")))?;
        let sigma_early = Lut2::from_fn(SLEW_AXIS.to_vec(), LOAD_AXIS.to_vec(), |s, l| {
            rel(s, l, delay.eval(s, l))
        })
        .map_err(|e| Error::internal(format!("LVF early-sigma grid: {e}")))?;
        Ok(LvfTable {
            sigma_late,
            sigma_early,
        })
    }
}

/// Which variation-modeling standard an analysis run uses — the knob the
/// accuracy-comparison experiment sweeps.
#[derive(Clone, Debug, PartialEq)]
pub enum DerateModel {
    /// No derating (nominal analysis).
    None,
    /// Flat OCV: single late/early multipliers applied to every stage.
    Flat {
        /// Late multiplier (≥ 1).
        late: f64,
        /// Early multiplier (≤ 1).
        early: f64,
    },
    /// AOCV: stage-count/distance-dependent derate table.
    Aocv(AocvTable),
    /// POCV: per-cell relative sigma, RSS-accumulated, margined at k·σ.
    Pocv {
        /// Per-cell sigma.
        sigma: PocvSigma,
        /// Sigma multiplier for the slack criterion (3 = 3σ signoff).
        k: f64,
    },
    /// LVF: per-arc (slew, load) sigma tables, RSS-accumulated at k·σ.
    Lvf {
        /// Sigma multiplier.
        k: f64,
    },
}

impl DerateModel {
    /// The flat derates the 2010-era flow of Fig 1 would use.
    pub fn classic_flat() -> Self {
        DerateModel::Flat {
            late: 1.08,
            early: 0.92,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tc_core::lut::Lut2;

    #[test]
    fn aocv_derate_shrinks_with_depth() {
        let t = AocvTable::from_stage_sigma(0.05);
        assert!(t.late_derate(1, 0.0) > t.late_derate(8, 0.0));
        assert!(t.late_derate(8, 0.0) > t.late_derate(64, 0.0));
        assert!(t.late_derate(64, 0.0) > 1.0);
        // Early is the mirror image.
        assert!(t.early_derate(1, 0.0) < t.early_derate(8, 0.0));
        assert!(t.early_derate(64, 0.0) < 1.0);
    }

    #[test]
    fn aocv_interpolates_between_depths() {
        let t = AocvTable::from_stage_sigma(0.05);
        let d5 = t.late_derate(5, 0.0);
        assert!(d5 < t.late_derate(4, 0.0) && d5 > t.late_derate(6, 0.0));
        // Beyond the table: clamps.
        assert_eq!(t.late_derate(1000, 0.0), t.late_derate(64, 0.0));
    }

    #[test]
    fn aocv_distance_widens_derate() {
        let t = AocvTable::from_stage_sigma(0.05);
        assert!(t.late_derate(8, 2.0) > t.late_derate(8, 0.0));
        assert!(t.early_derate(8, 2.0) < t.early_derate(8, 0.0));
    }

    #[test]
    fn lvf_sigma_shapes() {
        let delay = Lut2::from_fn(SLEW_AXIS.to_vec(), LOAD_AXIS.to_vec(), |s, l| {
            5.0 + 0.2 * s + 1.5 * l
        })
        .unwrap();
        let lvf = LvfTable::from_delay_surface(&delay, 0.05, 1.3).unwrap();
        // Late sigma exceeds early sigma everywhere (setup long tail).
        for &s in &[10.0, 80.0] {
            for &l in &[1.0, 16.0] {
                assert!(lvf.sigma_late.eval(s, l) > lvf.sigma_early.eval(s, l));
            }
        }
        // Absolute sigma grows with delay (load), even though the
        // *relative* sigma shrinks.
        assert!(lvf.sigma_late.eval(20.0, 16.0) > lvf.sigma_late.eval(20.0, 1.0));
    }

    #[test]
    fn pocv_defaults_are_asymmetric() {
        let p = PocvSigma::standard();
        assert!(p.late > p.early);
    }
}
