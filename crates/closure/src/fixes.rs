//! The five manual-fix transforms of the paper's Fig 1, in recommended
//! order of application.

use std::collections::HashSet;

use tc_core::error::Result;
use tc_core::ids::{CellId, LibCellId, NetId};
use tc_core::units::Ps;
use tc_interconnect::BeolStack;
use tc_liberty::Library;
use tc_netlist::{Netlist, PinRef};
use tc_sta::pba::worst_paths;
use tc_sta::{Constraints, CriticalPath, Sta};

/// Which fix a transform belongs to (Fig 1's ordering).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum FixKind {
    /// Swap critical cells one Vt step faster (cheapest: no footprint or
    /// routing change — until MinIA interferes, §2.4).
    VtSwap,
    /// Upsize weak drivers of heavily loaded critical stages.
    Sizing,
    /// Insert buffers on long critical nets.
    Buffering,
    /// Apply non-default routing rules to long critical nets.
    Ndr,
    /// Adjust capture-clock latencies (useful skew).
    UsefulSkew,
}

impl FixKind {
    /// The paper's recommended ordering.
    pub const RECOMMENDED: [FixKind; 5] = [
        FixKind::VtSwap,
        FixKind::Sizing,
        FixKind::Buffering,
        FixKind::Ndr,
        FixKind::UsefulSkew,
    ];

    /// Stable snake_case label, used in reports and observability span
    /// names (`closure.fix.<label>`).
    pub fn label(self) -> &'static str {
        match self {
            FixKind::VtSwap => "vt_swap",
            FixKind::Sizing => "sizing",
            FixKind::Buffering => "buffering",
            FixKind::Ndr => "ndr",
            FixKind::UsefulSkew => "useful_skew",
        }
    }
}

/// What a fix pass did.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FixOutcome {
    /// ECO edits committed.
    pub edits: usize,
}

/// Vt-swap pass: walk the worst `k` paths, swapping their cells one Vt
/// step faster, skipping cells already at ULVT. A `veto` callback lets
/// the caller enforce MinIA awareness (return `false` to block a swap).
///
/// # Errors
///
/// Propagates STA failures.
pub fn vt_swap_pass(
    nl: &mut Netlist,
    lib: &Library,
    stack: &BeolStack,
    cons: &Constraints,
    k_paths: usize,
    budget: usize,
    veto: impl FnMut(tc_core::ids::CellId) -> bool,
) -> Result<FixOutcome> {
    let sta = Sta::new(nl, lib, stack, cons);
    let paths = worst_paths(&sta, k_paths)?;
    let plan = plan_vt_swaps(nl, lib, &paths, budget, veto);
    for &(cell, master) in &plan {
        nl.swap_master(lib, cell, master)?;
    }
    Ok(FixOutcome { edits: plan.len() })
}

/// Plans the Vt-swap pass over already-extracted worst paths — what the
/// incremental flow calls with the persistent timer's path list.
pub fn plan_vt_swaps(
    nl: &Netlist,
    lib: &Library,
    paths: &[CriticalPath],
    budget: usize,
    mut veto: impl FnMut(tc_core::ids::CellId) -> bool,
) -> Vec<(CellId, LibCellId)> {
    let mut touched = HashSet::new();
    let mut plan = Vec::new();
    'outer: for p in paths {
        if p.slack >= Ps::ZERO {
            continue;
        }
        for st in &p.stages {
            if plan.len() >= budget {
                break 'outer;
            }
            if !touched.insert(st.cell) {
                continue;
            }
            if let Some(faster) = lib.vt_faster(nl.cell(st.cell).master) {
                if veto(st.cell) {
                    plan.push((st.cell, faster));
                }
            }
        }
    }
    plan
}

/// Sizing pass: upsize the slowest stages (largest gate delay) of the
/// worst paths one drive step.
///
/// # Errors
///
/// Propagates STA failures.
pub fn sizing_pass(
    nl: &mut Netlist,
    lib: &Library,
    stack: &BeolStack,
    cons: &Constraints,
    k_paths: usize,
    budget: usize,
) -> Result<FixOutcome> {
    let sta = Sta::new(nl, lib, stack, cons);
    let paths = worst_paths(&sta, k_paths)?;
    let plan = plan_sizing(nl, lib, &paths, budget);
    for &(cell, master) in &plan {
        nl.swap_master(lib, cell, master)?;
    }
    Ok(FixOutcome { edits: plan.len() })
}

/// Plans the sizing pass over already-extracted worst paths.
pub fn plan_sizing(
    nl: &Netlist,
    lib: &Library,
    paths: &[CriticalPath],
    budget: usize,
) -> Vec<(CellId, LibCellId)> {
    let mut touched = HashSet::new();
    let mut plan = Vec::new();
    for p in paths {
        if p.slack >= Ps::ZERO {
            continue;
        }
        // Slowest stage first within each path.
        let mut stages = p.stages.clone();
        stages.sort_by(|a, b| b.gate_delay.total_cmp(&a.gate_delay));
        for st in stages.iter().take(2) {
            if plan.len() >= budget {
                break;
            }
            if !touched.insert(st.cell) {
                continue;
            }
            if let Some(bigger) = lib.upsize(nl.cell(st.cell).master) {
                plan.push((st.cell, bigger));
            }
        }
    }
    plan
}

/// Buffering pass: split the longest net of each violating path with a
/// strong buffer; both halves get half the original length.
///
/// # Errors
///
/// Propagates STA failures.
pub fn buffering_pass(
    nl: &mut Netlist,
    lib: &Library,
    stack: &BeolStack,
    cons: &Constraints,
    k_paths: usize,
    budget: usize,
) -> Result<FixOutcome> {
    let sta = Sta::new(nl, lib, stack, cons);
    let paths = worst_paths(&sta, k_paths)?;
    let plan = plan_buffering(nl, &paths, budget);
    apply_buffering(nl, lib, &plan).map(|edits| FixOutcome { edits })
}

/// Plans the buffering pass: the longest net (>120 µm) of each violating
/// path, deduplicated, up to `budget` nets.
pub fn plan_buffering(nl: &Netlist, paths: &[CriticalPath], budget: usize) -> Vec<NetId> {
    let mut plan = Vec::new();
    let mut used = HashSet::new();
    for p in paths {
        if p.slack >= Ps::ZERO || plan.len() >= budget {
            continue;
        }
        // Longest net on the path, if long enough to be worth a buffer.
        if let Some(&net) = p
            .nets
            .iter()
            .filter(|&&n| nl.net(n).wire_length_um > 120.0)
            .max_by(|&&a, &&b| {
                nl.net(a)
                    .wire_length_um
                    .total_cmp(&nl.net(b).wire_length_um)
            })
        {
            if used.insert(net) {
                plan.push(net);
            }
        }
    }
    plan
}

/// Applies a buffering plan: splits each net with a strong buffer, both
/// halves keeping half the original length. Returns the edit count (one
/// per buffered net; a plan entry contributes three journal entries).
///
/// # Errors
///
/// Propagates netlist edit failures.
pub fn apply_buffering(nl: &mut Netlist, lib: &Library, plan: &[NetId]) -> Result<usize> {
    let buf = match lib.variant("BUF", tc_device::VtClass::Svt, 4.0) {
        Some(b) => b,
        None => return Ok(0),
    };
    let mut edits = 0;
    for &net in plan {
        let len = nl.net(net).wire_length_um;
        let sinks: Vec<PinRef> = nl.net(net).sinks.to_vec();
        if sinks.is_empty() {
            continue;
        }
        let buf_id = nl.insert_buffer(lib, net, &sinks, buf)?;
        let buf_out = nl.cell(buf_id).output;
        nl.set_wire_length(net, len * 0.5);
        nl.set_wire_length(buf_out, len * 0.5);
        edits += 1;
    }
    Ok(edits)
}

/// NDR pass: promote the longest nets of violating paths to the
/// double-width/double-spacing rule.
///
/// # Errors
///
/// Propagates STA failures.
pub fn ndr_pass(
    nl: &mut Netlist,
    lib: &Library,
    stack: &BeolStack,
    cons: &Constraints,
    k_paths: usize,
    budget: usize,
) -> Result<FixOutcome> {
    let sta = Sta::new(nl, lib, stack, cons);
    let paths = worst_paths(&sta, k_paths)?;
    let plan = plan_ndr(nl, &paths, budget);
    let edits = plan.len();
    for net in plan {
        nl.set_route_class(net, 2);
    }
    Ok(FixOutcome { edits })
}

/// Plans the NDR pass: long (>80 µm) default-rule nets on violating
/// paths, deduplicated, up to `budget` nets.
pub fn plan_ndr(nl: &Netlist, paths: &[CriticalPath], budget: usize) -> Vec<NetId> {
    let mut plan = Vec::new();
    let mut seen = HashSet::new();
    for p in paths {
        if p.slack >= Ps::ZERO || plan.len() >= budget {
            continue;
        }
        for &net in &p.nets {
            if nl.net(net).wire_length_um > 80.0 && nl.net(net).route_class == 0 && seen.insert(net)
            {
                plan.push(net);
                if plan.len() >= budget {
                    break;
                }
            }
        }
    }
    plan
}

/// Hold-fix pass: pad hold-violating endpoints with slow delay buffers
/// on their D pins. Part of the paper's "last set of manual fixes" —
/// hold padding is done after setup closure because every pad also eats
/// setup slack.
///
/// # Errors
///
/// Propagates STA failures.
pub fn hold_fix_pass(
    nl: &mut Netlist,
    lib: &Library,
    stack: &BeolStack,
    cons: &Constraints,
    budget: usize,
) -> Result<FixOutcome> {
    // The slowest single-input cell available: an HVT X1 buffer.
    let Some(pad) = lib
        .variant("BUF", tc_device::VtClass::Hvt, 1.0)
        .or_else(|| lib.variant("BUF", tc_device::VtClass::Svt, 1.0))
    else {
        return Ok(FixOutcome::default());
    };
    let mut edits = 0;
    // Iterate: each pass pads every currently-violating endpoint once.
    for _round in 0..4 {
        if edits >= budget {
            break;
        }
        let report = Sta::new(nl, lib, stack, cons).run()?;
        let violating: Vec<tc_core::ids::CellId> = report
            .endpoints
            .iter()
            .filter(|e| e.hold_slack < Ps::ZERO)
            .filter_map(|e| match e.endpoint {
                tc_sta::Endpoint::FlopD(f) => Some(f),
                _ => None,
            })
            .collect();
        if violating.is_empty() {
            break;
        }
        for flop in violating {
            if edits >= budget {
                break;
            }
            let d_net = nl.cell(flop).inputs[0];
            let sink = PinRef { cell: flop, pin: 0 };
            let buf = nl.insert_buffer(lib, d_net, &[sink], pad)?;
            // The pad sits next to the flop: negligible new wire.
            let buf_out = nl.cell(buf).output;
            nl.set_wire_length(buf_out, 2.0);
            edits += 1;
        }
    }
    Ok(FixOutcome { edits })
}

/// Noise-fix pass: apply spacing NDRs to the worst glitch victims, and
/// upsize their holding drivers if the NDR alone is not enough (§1.3
/// noise closure).
///
/// # Errors
///
/// Propagates STA failures (none expected from the check itself).
pub fn noise_fix_pass(
    nl: &mut Netlist,
    lib: &Library,
    stack: &BeolStack,
    cfg: &tc_sta::NoiseConfig,
    budget: usize,
) -> Result<FixOutcome> {
    use tc_interconnect::beol::BeolCorner;
    let mut edits = 0;
    for _round in 0..3 {
        if edits >= budget {
            break;
        }
        let violations = tc_sta::noise_check(nl, lib, stack, BeolCorner::CcWorst, cfg);
        if violations.is_empty() {
            break;
        }
        for v in violations {
            if edits >= budget {
                break;
            }
            let net = v.net;
            if nl.net(net).route_class < 2 {
                nl.set_route_class(net, 2);
                edits += 1;
            } else if let Some(driver) = nl.net(net).driver {
                if let Some(bigger) = lib.upsize(nl.cell(driver).master) {
                    nl.swap_master(lib, driver, bigger)?;
                    edits += 1;
                }
            }
        }
    }
    Ok(FixOutcome { edits })
}

#[cfg(test)]
mod tests {
    use super::*;
    use tc_liberty::{LibConfig, PvtCorner};
    use tc_netlist::gen::{generate, BenchProfile};

    fn env() -> (Library, BeolStack, Netlist, Constraints) {
        let lib = Library::generate(&LibConfig::default(), &PvtCorner::typical());
        let nl = generate(&lib, BenchProfile::tiny(), 21).unwrap();
        let stack = BeolStack::n20();
        // A period that violates meaningfully.
        let probe = Constraints::single_clock(5_000.0);
        let r = Sta::new(&nl, &lib, &stack, &probe).run().unwrap();
        let period = 5_000.0 - r.wns().value() - 60.0;
        (lib, stack, nl, Constraints::single_clock(period))
    }

    fn wns(nl: &Netlist, lib: &Library, stack: &BeolStack, cons: &Constraints) -> f64 {
        Sta::new(nl, lib, stack, cons).run().unwrap().wns().value()
    }

    #[test]
    fn vt_swap_improves_wns() {
        let (lib, stack, mut nl, cons) = env();
        let before = wns(&nl, &lib, &stack, &cons);
        let out = vt_swap_pass(&mut nl, &lib, &stack, &cons, 10, 50, |_| true).unwrap();
        assert!(out.edits > 0);
        let after = wns(&nl, &lib, &stack, &cons);
        assert!(after > before, "vt swap: {before} → {after}");
        nl.validate(&lib).unwrap();
    }

    #[test]
    fn veto_blocks_vt_swaps() {
        let (lib, stack, mut nl, cons) = env();
        let out = vt_swap_pass(&mut nl, &lib, &stack, &cons, 10, 50, |_| false).unwrap();
        assert_eq!(out.edits, 0);
    }

    #[test]
    fn sizing_improves_wns() {
        let (lib, stack, mut nl, cons) = env();
        let before = wns(&nl, &lib, &stack, &cons);
        let out = sizing_pass(&mut nl, &lib, &stack, &cons, 10, 30).unwrap();
        assert!(out.edits > 0);
        let after = wns(&nl, &lib, &stack, &cons);
        assert!(after > before, "sizing: {before} → {after}");
    }

    #[test]
    fn buffering_splits_long_nets() {
        // Engineered case: a weak X1 inverter driving a huge net between
        // two flops — the textbook buffering target.
        let lib = Library::generate(&LibConfig::default(), &PvtCorner::typical());
        let stack = BeolStack::n20();
        let mut nl = Netlist::new("longnet");
        let clk = nl.add_input("clk");
        let d = nl.add_input("d");
        let dff = lib.variant("DFF", tc_device::VtClass::Svt, 1.0).unwrap();
        let inv = lib.variant("INV", tc_device::VtClass::Svt, 1.0).unwrap();
        let (_, q) = nl.add_cell("ff0", &lib, dff, &[d, clk]).unwrap();
        let (_, long) = nl.add_cell("drv", &lib, inv, &[q]).unwrap();
        let (_, o2) = nl.add_cell("rcv", &lib, inv, &[long]).unwrap();
        let (_, _q1) = nl.add_cell("ff1", &lib, dff, &[o2, clk]).unwrap();
        nl.set_wire_length(long, 900.0);

        let probe = Constraints::single_clock(5_000.0);
        let r = Sta::new(&nl, &lib, &stack, &probe).run().unwrap();
        let cons = Constraints::single_clock(5_000.0 - r.wns().value() - 30.0);
        let before = wns(&nl, &lib, &stack, &cons);
        let cells_before = nl.cell_count();
        let out = buffering_pass(&mut nl, &lib, &stack, &cons, 5, 5).unwrap();
        assert!(out.edits > 0);
        assert!(nl.cell_count() > cells_before);
        let after = wns(&nl, &lib, &stack, &cons);
        assert!(after > before, "buffering: {before} → {after}");
        nl.validate(&lib).unwrap();
    }

    #[test]
    fn ndr_pass_reclasses_long_nets() {
        let (lib, stack, mut nl, cons) = env();
        let sta = Sta::new(&nl, &lib, &stack, &cons);
        let paths = worst_paths(&sta, 3).unwrap();
        for p in &paths {
            for &net in &p.nets {
                nl.set_wire_length(net, 300.0);
            }
        }
        let before = wns(&nl, &lib, &stack, &cons);
        let out = ndr_pass(&mut nl, &lib, &stack, &cons, 5, 10).unwrap();
        assert!(out.edits > 0);
        let after = wns(&nl, &lib, &stack, &cons);
        assert!(after > before, "ndr: {before} → {after}");
    }
}

#[cfg(test)]
mod hold_noise_tests {
    use super::*;
    use tc_core::ids::NetId;
    use tc_core::units::Ps;
    use tc_liberty::{LibConfig, PvtCorner};
    use tc_netlist::gen::{generate, BenchProfile};

    #[test]
    fn hold_fix_pads_violating_endpoints() {
        let lib = Library::generate(&LibConfig::default(), &PvtCorner::typical());
        let stack = BeolStack::n20();
        // A direct flop→flop connection with heavy capture-clock skew:
        // the textbook hold violation.
        let mut nl = Netlist::new("holdcase");
        let clk = nl.add_input("clk");
        let d = nl.add_input("d");
        let dff = lib.variant("DFF", tc_device::VtClass::Svt, 1.0).unwrap();
        let (_ff0, q) = nl.add_cell("ff0", &lib, dff, &[d, clk]).unwrap();
        let (ff1, _q1) = nl.add_cell("ff1", &lib, dff, &[q, clk]).unwrap();
        for i in 0..nl.net_count() {
            nl.set_wire_length(NetId::new(i), 4.0);
        }
        let mut cons = Constraints::single_clock(2_000.0);
        cons.clock_tree.skew_by(ff1, Ps::new(-60.0)); // capture clock early
                                                      // Negative leaf latency means the *launch* side is late relative
                                                      // to capture; flip sign to make capture late instead.
        cons.clock_tree.skew_by(ff1, Ps::new(120.0)); // net +60 ps late capture

        let before = Sta::new(&nl, &lib, &stack, &cons).run().unwrap();
        assert!(
            before.hold_wns().value() < 0.0,
            "setup of the experiment must violate hold: {}",
            before.summary()
        );
        let out = hold_fix_pass(&mut nl, &lib, &stack, &cons, 10).unwrap();
        assert!(out.edits > 0);
        let after = Sta::new(&nl, &lib, &stack, &cons).run().unwrap();
        assert!(
            after.hold_wns() > before.hold_wns(),
            "padding must improve hold: {} → {}",
            before.hold_wns(),
            after.hold_wns()
        );
        nl.validate(&lib).unwrap();
    }

    #[test]
    fn noise_fix_clears_glitch_violations() {
        let lib = Library::generate(&LibConfig::default(), &PvtCorner::typical());
        let stack = BeolStack::n20();
        let mut nl = generate(&lib, BenchProfile::tiny(), 71).unwrap();
        for i in 0..nl.net_count() {
            nl.set_wire_length(NetId::new(i), 350.0);
        }
        let cfg = tc_sta::NoiseConfig {
            margin_frac: 0.25,
            ..Default::default()
        };
        let before = tc_sta::noise_check(
            &nl,
            &lib,
            &stack,
            tc_interconnect::beol::BeolCorner::CcWorst,
            &cfg,
        )
        .len();
        assert!(before > 0, "setup must create noise violations");
        let out = noise_fix_pass(&mut nl, &lib, &stack, &cfg, 500).unwrap();
        assert!(out.edits > 0);
        let after = tc_sta::noise_check(
            &nl,
            &lib,
            &stack,
            tc_interconnect::beol::BeolCorner::CcWorst,
            &cfg,
        )
        .len();
        assert!(
            after < before / 2,
            "noise fixes must clear most violations: {before} → {after}"
        );
        nl.validate(&lib).unwrap();
    }
}
