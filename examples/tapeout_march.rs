//! The tapeout march: the paper's §1 description of final closure —
//! months of implementation compressed into the full fix sequence on one
//! block. Setup closure (Fig 1's loop), then the "last set of manual
//! fixes": glitch-noise ECOs, hold padding, minimum-implant-area
//! cleanup, and finally leakage recovery before the masks go out.
//!
//! ```sh
//! cargo run --release --example tapeout_march
//! ```

use tc_core::ids::NetId;
use timing_closure::closure::fixes::{hold_fix_pass, noise_fix_pass};
use timing_closure::closure::flow::{ClosureConfig, ClosureFlow};
use timing_closure::closure::power::recover_leakage;
use timing_closure::interconnect::beol::{BeolCorner, BeolStack};
use timing_closure::liberty::{LibConfig, Library, PvtCorner};
use timing_closure::netlist::gen::{generate, BenchProfile};
use timing_closure::placement::minia::{fix_violations, violation_count, MinIaRule};
use timing_closure::placement::rows::Placement;
use timing_closure::sta::{noise_check, Constraints, NoiseConfig, Sta};

fn main() -> Result<(), tc_core::Error> {
    let lib = Library::generate(&LibConfig::default(), &PvtCorner::typical());
    let stack = BeolStack::n20();
    let mut nl = generate(&lib, BenchProfile::c5315(), 2015)?;
    println!(
        "block `{}`: {} cells | area {:.0} sites | leakage {:.1} µW",
        nl.name,
        nl.cell_count(),
        nl.total_area(&lib),
        nl.total_leakage_uw(&lib)
    );

    // ---- 1. Setup closure (Fig 1) ----
    let probe = Constraints::single_clock(5_000.0);
    let wns = Sta::new(&nl, &lib, &stack, &probe).run()?.wns().value();
    let cons = Constraints::single_clock(5_000.0 - wns - 120.0);
    println!(
        "\n[1] setup closure at {:.0} ps (120 ps overconstrained)…",
        5_000.0 - wns - 120.0
    );
    let mut flow = ClosureFlow::new(&lib, &stack, ClosureConfig::default());
    let out = flow.run(&mut nl, cons)?;
    let cons = out.constraints;
    for it in &out.iterations {
        println!(
            "    iter {}: WNS {:.1} → {:.1} ps",
            it.iteration,
            it.wns_before.value(),
            it.wns_after.value()
        );
    }
    println!("    closed: {} in {:.0} days", out.closed, out.days);

    // ---- 2. Noise closure ----
    let noise_cfg = NoiseConfig::default();
    let before = noise_check(&nl, &lib, &stack, BeolCorner::CcWorst, &noise_cfg).len();
    let fixed = noise_fix_pass(&mut nl, &lib, &stack, &noise_cfg, 2_000)?;
    let after = noise_check(&nl, &lib, &stack, BeolCorner::CcWorst, &noise_cfg).len();
    println!(
        "\n[2] noise closure @ Ccw: {before} glitch violations → {after} ({} ECOs)",
        fixed.edits
    );

    // ---- 3. Hold padding ----
    let r = Sta::new(&nl, &lib, &stack, &cons).run()?;
    println!(
        "\n[3] hold: WNS {:.1} ps, {} violations",
        r.hold_wns().value(),
        r.hold_violations()
    );
    if r.hold_violations() > 0 {
        let pads = hold_fix_pass(&mut nl, &lib, &stack, &cons, 200)?;
        let r2 = Sta::new(&nl, &lib, &stack, &cons).run()?;
        println!(
            "    padded {} endpoints → hold WNS {:.1} ps",
            pads.edits,
            r2.hold_wns().value()
        );
    } else {
        println!("    clean — no pads needed");
    }

    // ---- 4. MinIA cleanup (the Vt-swaps of step 1 made islands) ----
    let mut pl = Placement::row_fill(&nl, &lib, 400, 7);
    let rule = MinIaRule::n20();
    let minia_before = violation_count(&pl, &nl, &lib, &rule);
    let report = fix_violations(&mut pl, &mut nl, &lib, &rule, |_, _| true);
    println!(
        "\n[4] MinIA: {minia_before} implant violations → {} ({} swaps, {} moves)",
        report.after, report.vt_swaps, report.moves
    );

    // ---- 5. Leakage recovery ----
    let rec = recover_leakage(&mut nl, &lib, &stack, &cons, 40, |_| true)?;
    println!(
        "\n[5] leakage recovery: {:.1} µW → {:.1} µW ({:.1}% saved, {} downswaps)",
        rec.leakage_before_uw,
        rec.leakage_after_uw,
        100.0 * rec.saving(),
        rec.swaps
    );

    // ---- Final signoff ----
    let final_report = Sta::new(&nl, &lib, &stack, &cons).run()?;
    let ndr_nets = (0..nl.net_count())
        .filter(|&i| nl.net(NetId::new(i)).route_class > 0)
        .count();
    println!("\n=== signoff ===");
    println!("    {}", final_report.summary());
    println!(
        "    area {:.0} sites | leakage {:.1} µW | {} nets on NDRs | tapeout: {}",
        nl.total_area(&lib),
        nl.total_leakage_uw(&lib),
        ndr_nets,
        if final_report.is_clean() {
            "GO"
        } else {
            "NO-GO"
        }
    );
    nl.validate(&lib)?;
    Ok(())
}
