//! Interchange formats: write the synthetic library as Liberty and a
//! design as structural Verilog, read both back, and verify the round
//! trip — the handoff artifacts a real flow would exchange.
//!
//! ```sh
//! cargo run --release --example interchange
//! ```

use timing_closure::liberty::{parse_liberty, write_liberty, LibConfig, Library, PvtCorner};
use timing_closure::netlist::gen::{generate, BenchProfile};
use timing_closure::netlist::{parse_verilog, write_verilog};

fn main() -> Result<(), tc_core::Error> {
    // A compact library keeps the .lib readable.
    let cfg = LibConfig {
        comb_drives: vec![1.0, 2.0, 4.0],
        flop_drives: vec![1.0],
        ..Default::default()
    };
    let lib = Library::generate(&cfg, &PvtCorner::typical());

    // --- Liberty ---
    let lib_text = write_liberty(&lib);
    println!(
        "wrote {} cells as Liberty: {} lines, {} KiB",
        lib.cells().len(),
        lib_text.lines().count(),
        lib_text.len() / 1024
    );
    let parsed = parse_liberty(&lib_text)?;
    println!(
        "parsed back: {} cells | NAND2_X1_SVT area {:.1}, A-pin cap {:.2} fF",
        parsed.cells.len(),
        parsed.cells["NAND2_X1_SVT"].area,
        parsed.cells["NAND2_X1_SVT"].pin_caps["A"]
    );

    // Show a fragment of what a downstream tool would see.
    println!("\n--- .lib fragment ---");
    for line in lib_text.lines().skip(5).take(12) {
        println!("{line}");
    }

    // --- Verilog ---
    let nl = generate(&lib, BenchProfile::tiny(), 2026)?;
    let v_text = write_verilog(&nl, &lib);
    println!(
        "\nwrote `{}` as structural Verilog: {} instances, {} lines",
        nl.name,
        nl.cell_count(),
        v_text.lines().count()
    );
    let back = parse_verilog(&v_text, &lib)?;
    back.validate(&lib)?;
    println!(
        "parsed back: {} instances, {} outputs — validation clean",
        back.cell_count(),
        back.primary_outputs().count()
    );
    assert_eq!(back.cell_count(), nl.cell_count());

    println!("\n--- .v fragment ---");
    for line in v_text.lines().take(8) {
        println!("{line}");
    }
    Ok(())
}
