//! Memory telemetry: a counting `#[global_allocator]` wrapper and
//! kernel-reported high-water-mark sampling.
//!
//! The paper's §1.3 point is that timing closure died by *runtime and
//! capacity* — analysis cost explodes with design size and scenario
//! count — and a million-cell timing graph is exactly the workload
//! where heap, not wall clock, becomes the binding constraint. This
//! module makes memory a first-class observable next to spans:
//!
//! * [`CountingAlloc`] wraps [`System`] and, when counting is enabled
//!   ([`enable_memory`]), tracks total allocations/frees, bytes
//!   allocated/freed, the resulting live-byte balance, and a
//!   **monotonic peak** of that balance. While disabled every
//!   allocation pays one relaxed atomic load and an untaken branch —
//!   the same "off by default" contract as the rest of `tc-obs` (the
//!   `engines` bench keeps the overhead measurable).
//! * [`heap_mark`] / [`HeapMark::delta`] give scoped attribution:
//!   [`crate::span`] captures a mark on open and records the net live
//!   bytes and peak growth on close, next to the span's duration.
//! * [`vm_hwm_bytes`] / [`vm_rss_bytes`] sample the kernel's view
//!   (`/proc/self/status` `VmHWM:` / `VmRSS:` on Linux) behind a
//!   portable fallback that returns `None` elsewhere — the allocator
//!   counts what *we* allocated since enable; the kernel counts the
//!   whole process including pre-enable heap, stacks and code.
//!
//! Accounting notes:
//!
//! * Counting starts at [`enable_memory`]; allocations made before it
//!   are invisible, so a post-enable free of a pre-enable block can
//!   drive the live balance negative. The balance is kept signed and
//!   clamped to zero on read — `peak_bytes` is therefore a peak of
//!   *tracked* live bytes, a lower bound on the true heap.
//! * Counters are process-cumulative and survive [`crate::reset`]
//!   (like `obs.trace.dropped`): the peak is monotonic by contract.
//! * Updates are relaxed atomics. Under concurrent allocation the peak
//!   may miss a transient maximum by the bytes in flight on other
//!   threads; it never exceeds the true maximum.

// The one unsafe surface of the workspace: implementing `GlobalAlloc`
// requires it. Everything inside is delegation to `System` plus relaxed
// atomic bookkeeping (which must not allocate — it would recurse).
#![allow(unsafe_code)]

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};

static MEM_ENABLED: AtomicBool = AtomicBool::new(false);
static ALLOCS: AtomicU64 = AtomicU64::new(0);
static FREES: AtomicU64 = AtomicU64::new(0);
static ALLOCATED_BYTES: AtomicU64 = AtomicU64::new(0);
static FREED_BYTES: AtomicU64 = AtomicU64::new(0);
/// Signed live balance: frees of pre-enable blocks may undershoot zero.
static LIVE_BYTES: AtomicI64 = AtomicI64::new(0);
/// Monotonic high-water mark of `LIVE_BYTES` (clamped at zero).
static PEAK_BYTES: AtomicU64 = AtomicU64::new(0);

/// Turns heap counting on. Until this is called every allocation is a
/// single relaxed load plus an untaken branch.
pub fn enable_memory() {
    MEM_ENABLED.store(true, Ordering::Relaxed);
}

/// Turns heap counting off. Totals are kept (they are cumulative for
/// the process); live/peak stop moving.
pub fn disable_memory() {
    MEM_ENABLED.store(false, Ordering::Relaxed);
}

/// Whether heap counting is currently on.
#[inline]
pub fn memory_enabled() -> bool {
    MEM_ENABLED.load(Ordering::Relaxed)
}

#[inline]
fn on_alloc(size: usize) {
    ALLOCS.fetch_add(1, Ordering::Relaxed);
    ALLOCATED_BYTES.fetch_add(size as u64, Ordering::Relaxed);
    let live = LIVE_BYTES.fetch_add(size as i64, Ordering::Relaxed) + size as i64;
    // Common case: we are below the high-water mark, and a relaxed load
    // is far cheaper than the `fetch_max` CAS loop. Racing writers can
    // both pass the check; `fetch_max` still keeps the peak monotonic.
    if live > 0 && live as u64 > PEAK_BYTES.load(Ordering::Relaxed) {
        PEAK_BYTES.fetch_max(live as u64, Ordering::Relaxed);
    }
}

#[inline]
fn on_dealloc(size: usize) {
    FREES.fetch_add(1, Ordering::Relaxed);
    FREED_BYTES.fetch_add(size as u64, Ordering::Relaxed);
    LIVE_BYTES.fetch_sub(size as i64, Ordering::Relaxed);
}

/// The counting allocator: [`System`] plus relaxed-atomic accounting.
///
/// Installed as the workspace's `#[global_allocator]` by this crate, so
/// every binary linking `tc-obs` gets heap telemetry without per-binary
/// boilerplate. Counting is off until [`enable_memory`].
pub struct CountingAlloc;

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let ptr = System.alloc(layout);
        if !ptr.is_null() && memory_enabled() {
            on_alloc(layout.size());
        }
        ptr
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let ptr = System.alloc_zeroed(layout);
        if !ptr.is_null() && memory_enabled() {
            on_alloc(layout.size());
        }
        ptr
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
        if memory_enabled() {
            on_dealloc(layout.size());
        }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let new_ptr = System.realloc(ptr, layout, new_size);
        if !new_ptr.is_null() && memory_enabled() {
            // Account as free(old) + alloc(new): keeps alloc/free event
            // totals meaningful and the live balance exact.
            on_dealloc(layout.size());
            on_alloc(new_size);
        }
        new_ptr
    }
}

/// A point-in-time view of the allocator's counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MemStats {
    /// Allocation events since enable (reallocs count one each side).
    pub allocs: u64,
    /// Free events since enable.
    pub frees: u64,
    /// Total bytes handed out since enable.
    pub allocated_bytes: u64,
    /// Total bytes returned since enable.
    pub freed_bytes: u64,
    /// Tracked live bytes right now (clamped at zero).
    pub live_bytes: u64,
    /// Monotonic peak of tracked live bytes.
    pub peak_bytes: u64,
}

/// Reads the allocator's counters. Cheap (six relaxed loads); valid
/// whether or not counting is currently enabled.
pub fn memory_stats() -> MemStats {
    MemStats {
        allocs: ALLOCS.load(Ordering::Relaxed),
        frees: FREES.load(Ordering::Relaxed),
        allocated_bytes: ALLOCATED_BYTES.load(Ordering::Relaxed),
        freed_bytes: FREED_BYTES.load(Ordering::Relaxed),
        live_bytes: LIVE_BYTES.load(Ordering::Relaxed).max(0) as u64,
        peak_bytes: PEAK_BYTES.load(Ordering::Relaxed),
    }
}

/// Tracked live heap bytes right now (clamped at zero).
#[inline]
pub fn live_bytes() -> u64 {
    LIVE_BYTES.load(Ordering::Relaxed).max(0) as u64
}

/// Monotonic peak of tracked live heap bytes.
#[inline]
pub fn peak_bytes() -> u64 {
    PEAK_BYTES.load(Ordering::Relaxed)
}

/// A heap position captured at one instant, for scoped attribution.
///
/// [`crate::span`] captures one on open; [`delta`](HeapMark::delta) on
/// close yields the scope's net allocation and peak growth. Deltas are
/// process-wide: on a multi-threaded phase other threads' allocations
/// are attributed too (the pool workers inherit the submitting span's
/// path, so the attribution still lands on the right subtree).
#[derive(Clone, Copy, Debug)]
pub struct HeapMark {
    allocated: u64,
    freed: u64,
    peak: u64,
}

/// What a scope did to the heap, measured between two [`HeapMark`]s.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct HeapDelta {
    /// Net live-byte change (allocated − freed inside the scope;
    /// negative when the scope released more than it took).
    pub net_bytes: i64,
    /// How far the scope pushed the monotonic peak (0 if the
    /// high-water mark predates the scope).
    pub peak_bytes: u64,
}

/// Captures the current heap position.
pub fn heap_mark() -> HeapMark {
    HeapMark {
        allocated: ALLOCATED_BYTES.load(Ordering::Relaxed),
        freed: FREED_BYTES.load(Ordering::Relaxed),
        peak: PEAK_BYTES.load(Ordering::Relaxed),
    }
}

impl HeapMark {
    /// The heap change since this mark was captured.
    pub fn delta(&self) -> HeapDelta {
        let allocated = ALLOCATED_BYTES
            .load(Ordering::Relaxed)
            .wrapping_sub(self.allocated);
        let freed = FREED_BYTES.load(Ordering::Relaxed).wrapping_sub(self.freed);
        HeapDelta {
            net_bytes: allocated as i64 - freed as i64,
            peak_bytes: PEAK_BYTES.load(Ordering::Relaxed).saturating_sub(self.peak),
        }
    }
}

/// The kernel's peak resident-set size for this process, bytes
/// (`VmHWM:` in `/proc/self/status`). `None` off Linux or if the field
/// is unreadable.
pub fn vm_hwm_bytes() -> Option<u64> {
    proc_status_kb("VmHWM:").map(|kb| kb * 1024)
}

/// The kernel's current resident-set size for this process, bytes
/// (`VmRSS:` in `/proc/self/status`). `None` off Linux or if the field
/// is unreadable.
pub fn vm_rss_bytes() -> Option<u64> {
    proc_status_kb("VmRSS:").map(|kb| kb * 1024)
}

#[cfg(target_os = "linux")]
fn proc_status_kb(field: &str) -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with(field))?;
    // Format: `VmHWM:     12345 kB`.
    line[field.len()..].split_whitespace().next()?.parse().ok()
}

#[cfg(not(target_os = "linux"))]
fn proc_status_kb(_field: &str) -> Option<u64> {
    None
}
