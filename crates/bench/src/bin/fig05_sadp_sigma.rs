//! **Fig 5** — SADP (SID flavour) CD variability: the four patterning
//! solutions and their σ² formulas, plus the capacitance side-effects of
//! cut-mask restrictions (line-end extensions, floating fill) and the
//! bimodal CD distribution of LELE double patterning.

use tc_bench::{fmt, print_table};
use tc_core::rng::Rng;
use tc_core::stats::Summary;
use tc_interconnect::sadp::{BimodalCd, CutMaskEffects, PatterningSolution, SadpProcess};

fn main() {
    let p = SadpProcess::n10();
    println!(
        "process sigmas (nm): mandrel {} | spacer {} | block {} | mandrel-block overlay {}",
        p.sigma_mandrel, p.sigma_spacer, p.sigma_block, p.sigma_mandrel_block
    );
    let rows: Vec<Vec<String>> = PatterningSolution::ALL
        .iter()
        .map(|s| {
            vec![
                format!("{s:?}"),
                fmt(s.cd_variance(&p), 3),
                fmt(s.cd_sigma(&p), 3),
            ]
        })
        .collect();
    print_table(
        "Fig 5(c): CD variance per SID patterning solution",
        &["solution", "σ² (nm²)", "σ (nm)"],
        &rows,
    );

    // Fig 5(b): capacitance adders from cut-mask restrictions.
    let fx = CutMaskEffects::n10();
    let mut rng = Rng::seed_from(505);
    let samples: Vec<f64> = (0..20_000)
        .map(|_| fx.extra_cap_ff(60.0, 0.12, &mut rng))
        .collect();
    let s = Summary::of(&samples);
    println!(
        "\nFig 5(b): extra cap on a 60 µm M2 net from line-end extensions + fill:\n  mean {:.4} fF | min {:.4} fF (extensions only) | max {:.4} fF (with adjacent fill)",
        s.mean, s.min, s.max
    );

    // Bimodal LELE CD distribution (refs [9]/[14]).
    let b = BimodalCd {
        offset_nm: 1.2,
        sigma_nm: 0.5,
    };
    let mut rng = Rng::seed_from(506);
    let mixed: Vec<f64> = (0..40_000)
        .map(|i| b.sample((i % 2) as u8, &mut rng))
        .collect();
    let sm = Summary::of(&mixed);
    println!(
        "\nLELE bimodal CD: per-mask σ {:.2} nm, mask offset ±{:.2} nm → mixed σ {:.3} nm (analytic {:.3})",
        b.sigma_nm,
        b.offset_nm,
        sm.sigma,
        b.mixed_variance().sqrt()
    );
}
