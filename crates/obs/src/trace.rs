//! The flight recorder: a bounded per-thread trace-event ring under the
//! aggregate span/counter layer.
//!
//! Aggregation by path ([`crate::registry`]) answers "where did the
//! wall clock go *in total*", but the closure loop's schedule questions
//! — does the parallel corner sweep actually overlap? which iteration's
//! fix pass stalled? — need the *timeline*. When tracing is enabled
//! ([`enable_trace`]), every span open/close and counter add also
//! appends one [`TraceEvent`] (thread id, monotonic timestamp) to the
//! calling thread's ring.
//!
//! Design constraints, in order:
//!
//! * **Near-zero cost when off.** Emission starts with one relaxed
//!   atomic load; tracing off means nothing else runs. Tracing is
//!   independent of the base layer's [`crate::enable`] flag only in the
//!   sense that [`enable_trace`] turns both on.
//! * **Bounded memory.** Each thread's ring holds at most the capacity
//!   passed to [`enable_trace`]. A full ring drops the new event and
//!   increments the ring's drop count (surfaced as the
//!   `obs.trace.dropped` counter) — it never reallocates and never
//!   panics.
//! * **Per-thread, contention-free.** A thread only ever locks its own
//!   ring; the global registry of rings is locked on first use per
//!   thread and at snapshot time.
//!
//! [`trace_snapshot`] collects every thread's events (sorted by thread
//! id, then timestamp) into a [`TraceSnapshot`], which exports to the
//! Chrome `trace_event` JSON format (`chrome://tracing` / Perfetto) and
//! to folded-stack text for flamegraph tooling.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

use crate::json::JsonValue;

/// What one trace event records.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceEventKind {
    /// A span opened (Chrome `ph:"B"`).
    Begin,
    /// A span closed (Chrome `ph:"E"`).
    End,
    /// A counter moved by `delta` (Chrome `ph:"C"`).
    Counter,
    /// An absolute sample of a gauge — `delta` holds the sampled value
    /// itself, not an increment (Chrome `ph:"C"` with the value as-is).
    /// Used for memory telemetry (`mem.live_bytes` at span edges).
    Gauge,
}

/// One recorded event: span begin/end or counter delta.
#[derive(Clone, Debug)]
pub struct TraceEvent {
    /// Event kind.
    pub kind: TraceEventKind,
    /// Span name (leaf, not full path) or counter name.
    pub name: Arc<str>,
    /// Flight-recorder thread id (small dense integers assigned in
    /// first-emission order; not the OS tid).
    pub tid: u64,
    /// Nanoseconds since the recorder's epoch (first enable), from a
    /// monotonic clock.
    pub ts_ns: u64,
    /// Counter delta, or the absolute sampled value for
    /// [`TraceEventKind::Gauge`] (`0` for span events).
    pub delta: u64,
}

/// One thread's bounded event buffer.
#[derive(Debug, Default)]
pub struct TraceBuffer {
    events: Vec<TraceEvent>,
    dropped: u64,
}

impl TraceBuffer {
    fn push(&mut self, ev: TraceEvent, capacity: usize) -> bool {
        if self.events.len() >= capacity {
            self.dropped += 1;
            false
        } else {
            self.events.push(ev);
            true
        }
    }
}

/// One registered thread: `(tid, thread name, ring)`. The name is
/// captured at first emission (OS thread name, else `thread-{tid}`)
/// and surfaces as Chrome `M`/`thread_name` metadata.
type ThreadRing = (u64, String, Arc<Mutex<TraceBuffer>>);

struct TraceState {
    enabled: AtomicBool,
    capacity: AtomicUsize,
    epoch: OnceLock<Instant>,
    next_tid: AtomicU64,
    rings: Mutex<Vec<ThreadRing>>,
}

fn state() -> &'static TraceState {
    static STATE: OnceLock<TraceState> = OnceLock::new();
    STATE.get_or_init(|| TraceState {
        enabled: AtomicBool::new(false),
        capacity: AtomicUsize::new(0),
        epoch: OnceLock::new(),
        next_tid: AtomicU64::new(0),
        rings: Mutex::new(Vec::new()),
    })
}

thread_local! {
    static RING: RefCell<Option<(u64, Arc<Mutex<TraceBuffer>>)>> = const { RefCell::new(None) };
}

/// Default per-thread ring capacity (events) when none is given.
pub const DEFAULT_TRACE_CAPACITY: usize = 1 << 16;

/// Turns the flight recorder on with the given per-thread ring capacity
/// (events). Also calls [`crate::enable`] — the recorder listens to the
/// span/counter emission points, so the base layer must be live.
///
/// Calling it again updates the capacity; existing ring contents are
/// kept (rings never shrink below their current length).
pub fn enable_trace(capacity: usize) {
    let s = state();
    s.capacity.store(capacity.max(1), Ordering::Relaxed);
    let _ = s.epoch.set(Instant::now());
    s.enabled.store(true, Ordering::Relaxed);
    crate::registry::enable();
}

/// Turns the flight recorder off. Ring contents stay collectable via
/// [`trace_snapshot`] until [`clear_trace`] (or [`crate::reset`]).
pub fn disable_trace() {
    state().enabled.store(false, Ordering::Relaxed);
}

/// Whether the flight recorder is currently on.
#[inline]
pub fn trace_enabled() -> bool {
    state().enabled.load(Ordering::Relaxed)
}

/// Drains every thread's ring and forgets recorded events — drop
/// counts included, so the next [`trace_snapshot`] window starts clean
/// (per-window profiles must not inherit another window's overflow).
/// The `obs.trace.dropped` registry counter stays cumulative.
pub fn clear_trace() {
    let s = state();
    let rings = s.rings.lock().expect("obs trace rings poisoned");
    for (_, _, ring) in rings.iter() {
        let mut ring = ring.lock().expect("obs trace ring poisoned");
        ring.dropped = 0;
        ring.events.clear();
    }
}

fn now_ns() -> u64 {
    let epoch = state().epoch.get_or_init(Instant::now);
    u64::try_from(epoch.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// Appends one event to the calling thread's ring. Caller has already
/// checked [`trace_enabled`].
fn emit(kind: TraceEventKind, name: &str, delta: u64) {
    let capacity = state().capacity.load(Ordering::Relaxed);
    let ts_ns = now_ns();
    RING.with(|cell| {
        let mut cell = cell.borrow_mut();
        let (tid, ring) = cell.get_or_insert_with(|| {
            let s = state();
            let tid = s.next_tid.fetch_add(1, Ordering::Relaxed);
            let name = std::thread::current()
                .name()
                .map_or_else(|| format!("thread-{tid}"), str::to_string);
            let ring = Arc::new(Mutex::new(TraceBuffer::default()));
            s.rings
                .lock()
                .expect("obs trace rings poisoned")
                .push((tid, name, ring.clone()));
            (tid, ring)
        });
        let ev = TraceEvent {
            kind,
            name: Arc::from(name),
            tid: *tid,
            ts_ns,
            delta,
        };
        if !ring
            .lock()
            .expect("obs trace ring poisoned")
            .push(ev, capacity)
        {
            // Mirror drops into the aggregate layer so a snapshot taken
            // without the trace shows the loss too. `add_raw` bypasses
            // trace emission — re-entering the full ring here would
            // recurse.
            crate::registry::counter("obs.trace.dropped").add_raw(1);
        }
    });
}

/// Records a span-begin event (called from [`crate::span`]).
#[inline]
pub(crate) fn span_begin(name: &str) -> bool {
    if !trace_enabled() {
        return false;
    }
    emit(TraceEventKind::Begin, name, 0);
    true
}

/// Records a span-end event. Paired with a `span_begin` that returned
/// `true`, so B/E stay balanced even if tracing was toggled mid-span.
#[inline]
pub(crate) fn span_end(name: &str) {
    emit(TraceEventKind::End, name, 0);
}

/// Records a counter-delta event (called from [`crate::Counter::add`]).
#[inline]
pub(crate) fn counter_delta(name: &str, delta: u64) {
    if trace_enabled() {
        emit(TraceEventKind::Counter, name, delta);
    }
}

/// Records an absolute gauge sample (used by span open/close to plot
/// `mem.live_bytes` as a timeline track). A no-op unless the recorder
/// is enabled.
#[inline]
pub(crate) fn gauge(name: &str, value: u64) {
    if trace_enabled() {
        emit(TraceEventKind::Gauge, name, value);
    }
}

/// A trace-only scope: emits a begin event now and the matching end
/// event on drop, without touching the aggregate span registry. Worker
/// pools wrap each claimed task in one so timelines show per-task
/// parallelism without registering a span path per item.
#[must_use = "the trace scope closes when its guard drops"]
pub struct TraceScope(Option<&'static str>);

/// Opens a trace-only scope named `name`. A no-op unless the recorder
/// is enabled.
pub fn trace_scope(name: &'static str) -> TraceScope {
    if span_begin(name) {
        TraceScope(Some(name))
    } else {
        TraceScope(None)
    }
}

impl Drop for TraceScope {
    fn drop(&mut self) {
        if let Some(name) = self.0.take() {
            span_end(name);
        }
    }
}

/// Every thread's recorded events, collected at one point in time.
#[derive(Clone, Debug, Default)]
pub struct TraceSnapshot {
    /// Events sorted by `(tid, ts_ns)`.
    pub events: Vec<TraceEvent>,
    /// Events lost to full rings since the last [`clear_trace`] (or
    /// forever, if the rings were never cleared).
    pub dropped: u64,
    /// `(tid, name)` for every thread that has emitted, sorted by tid.
    pub thread_names: Vec<(u64, String)>,
}

/// Collects every thread's ring into one [`TraceSnapshot`]. Rings are
/// left intact (snapshotting is read-only).
pub fn trace_snapshot() -> TraceSnapshot {
    let s = state();
    let rings = s.rings.lock().expect("obs trace rings poisoned");
    let mut events = Vec::new();
    let mut dropped = 0u64;
    let mut thread_names = Vec::new();
    for (tid, name, ring) in rings.iter() {
        let ring = ring.lock().expect("obs trace ring poisoned");
        events.extend(ring.events.iter().cloned());
        dropped += ring.dropped;
        thread_names.push((*tid, name.clone()));
    }
    drop(rings);
    events.sort_by_key(|a| (a.tid, a.ts_ns));
    thread_names.sort_by_key(|(tid, _)| *tid);
    TraceSnapshot {
        events,
        dropped,
        thread_names,
    }
}

impl TraceSnapshot {
    /// Thread ids present, ascending.
    pub fn thread_ids(&self) -> Vec<u64> {
        let mut tids: Vec<u64> = self.events.iter().map(|e| e.tid).collect();
        tids.sort_unstable();
        tids.dedup();
        tids
    }

    /// Renders the Chrome `trace_event` JSON document: an object with a
    /// `traceEvents` array of `B`/`E`/`C` events (timestamps in µs),
    /// loadable in `chrome://tracing` or <https://ui.perfetto.dev>.
    /// The array opens with one `M`/`thread_name` metadata event per
    /// recorded thread, so viewer lanes carry real names
    /// (`tc-par-0`, …) instead of bare tids.
    ///
    /// Counter events carry a process-wide running total per counter
    /// name (computed in timestamp order), so the counter track plots
    /// the cumulative value, not the raw delta. Gauge events also
    /// render as `ph:"C"` but their value is the absolute sample.
    pub fn to_chrome_trace(&self) -> String {
        // Running totals must accumulate in time order even though
        // events are stored sorted by (tid, ts).
        let mut order: Vec<usize> = (0..self.events.len()).collect();
        order.sort_by_key(|&i| self.events[i].ts_ns);
        let mut totals: BTreeMap<&str, u64> = BTreeMap::new();
        let mut running = vec![0u64; self.events.len()];
        for &i in &order {
            let e = &self.events[i];
            if e.kind == TraceEventKind::Counter {
                let t = totals.entry(&e.name).or_insert(0);
                *t += e.delta;
                running[i] = *t;
            }
        }
        let mut trace_events: Vec<JsonValue> = self
            .thread_names
            .iter()
            .map(|(tid, name)| {
                JsonValue::obj([
                    ("name", JsonValue::str("thread_name")),
                    ("ph", JsonValue::str("M")),
                    ("ts", JsonValue::from(0u64)),
                    ("pid", JsonValue::from(1u64)),
                    ("tid", JsonValue::from(*tid)),
                    ("args", JsonValue::obj([("name", JsonValue::str(name))])),
                ])
            })
            .collect();
        trace_events.extend(self.events.iter().enumerate().map(|(i, e)| {
            let ph = match e.kind {
                TraceEventKind::Begin => "B",
                TraceEventKind::End => "E",
                TraceEventKind::Counter | TraceEventKind::Gauge => "C",
            };
            let mut fields = vec![
                ("name", JsonValue::str(e.name.as_ref())),
                ("cat", JsonValue::str("tc")),
                ("ph", JsonValue::str(ph)),
                ("ts", JsonValue::from(e.ts_ns as f64 / 1e3)),
                ("pid", JsonValue::from(1u64)),
                ("tid", JsonValue::from(e.tid)),
            ];
            match e.kind {
                TraceEventKind::Counter => {
                    fields.push((
                        "args",
                        JsonValue::obj([
                            ("value", JsonValue::from(running[i])),
                            ("delta", JsonValue::from(e.delta)),
                        ]),
                    ));
                }
                TraceEventKind::Gauge => {
                    fields.push((
                        "args",
                        JsonValue::obj([("value", JsonValue::from(e.delta))]),
                    ));
                }
                TraceEventKind::Begin | TraceEventKind::End => {}
            }
            JsonValue::obj(fields)
        }));
        JsonValue::obj([
            ("traceEvents", JsonValue::Arr(trace_events)),
            ("displayTimeUnit", JsonValue::str("ms")),
            (
                "otherData",
                JsonValue::obj([("dropped_events", JsonValue::from(self.dropped))]),
            ),
        ])
        .render()
    }

    /// Renders folded-stack text (`a;b;c <µs>` per line, sorted), the
    /// input format of Brendan Gregg's `flamegraph.pl` and compatible
    /// viewers. Values are *exclusive* microseconds: each stack is
    /// charged its own time minus its children's.
    ///
    /// Counter events are ignored; unbalanced events (from ring
    /// overflow) are tolerated — an `End` with no open frame is
    /// dropped, and frames still open at the last timestamp are closed
    /// there.
    pub fn to_folded(&self) -> String {
        #[derive(Debug)]
        struct Frame {
            name: Arc<str>,
            start_ns: u64,
            child_ns: u64,
        }
        let mut folded: BTreeMap<String, u64> = BTreeMap::new();
        let mut per_tid: BTreeMap<u64, Vec<Frame>> = BTreeMap::new();
        let last_ts = self.events.iter().map(|e| e.ts_ns).max().unwrap_or(0);
        let close = |stack: &mut Vec<Frame>, end_ns: u64, folded: &mut BTreeMap<String, u64>| {
            let frame = stack.pop().expect("caller checked non-empty");
            let total = end_ns.saturating_sub(frame.start_ns);
            let exclusive = total.saturating_sub(frame.child_ns);
            let path: String = stack
                .iter()
                .map(|f| f.name.as_ref())
                .chain(std::iter::once(frame.name.as_ref()))
                .collect::<Vec<_>>()
                .join(";");
            *folded.entry(path).or_insert(0) += exclusive;
            if let Some(parent) = stack.last_mut() {
                parent.child_ns += total;
            }
        };
        for e in &self.events {
            let stack = per_tid.entry(e.tid).or_default();
            match e.kind {
                TraceEventKind::Begin => stack.push(Frame {
                    name: e.name.clone(),
                    start_ns: e.ts_ns,
                    child_ns: 0,
                }),
                TraceEventKind::End => {
                    // Tolerate overflow-induced imbalance: drop an End
                    // with no matching open frame; otherwise close
                    // intermediates down to (and including) the match.
                    if stack.iter().any(|f| f.name == e.name) {
                        while stack.last().is_some_and(|f| f.name != e.name) {
                            close(stack, e.ts_ns, &mut folded);
                        }
                        close(stack, e.ts_ns, &mut folded);
                    }
                }
                TraceEventKind::Counter | TraceEventKind::Gauge => {}
            }
        }
        for (_, mut stack) in per_tid {
            while !stack.is_empty() {
                close(&mut stack, last_ts, &mut folded);
            }
        }
        let mut out = String::new();
        for (path, ns) in folded {
            let _ = writeln!(out, "{path} {}", ns / 1_000);
        }
        out
    }
}
