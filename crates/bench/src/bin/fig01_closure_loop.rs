//! **Fig 1** — the five-iteration top-level closure loop (MacDonald,
//! ref \[30\]): STA → failure breakdown → ordered manual fixes, with
//! timing improving each iteration.
//!
//! Reproduces: per-iteration WNS/TNS/violation counts and the fix mix
//! (Vt-swap first, then sizing, buffering, NDR, useful skew), plus the
//! schedule model (three-day iterations). Runs under tc-obs: the
//! per-phase timing report is printed after the table and the whole run
//! (iterations + observability snapshot) lands in a JSON sidecar
//! (`fig01_closure_loop.json`, directory `$TC_BENCH_OUT` or `.`).

use tc_bench::{fmt, print_table, standard_env, write_json_sidecar};
use tc_closure::flow::{ClosureConfig, ClosureFlow};
use tc_obs::JsonValue;
use tc_sta::{Constraints, Sta};

fn main() {
    tc_obs::enable();
    let (lib, stack) = standard_env();
    let mut nl = tc_bench::bench_netlist(&lib, "soc_block", 2015);

    // Constrain the block 500 ps beyond its as-generated capability —
    // enough that no single fix pass can close it, so the iterative
    // character of Fig 1 is visible.
    let probe = Constraints::single_clock(6_000.0);
    let r = Sta::new(&nl, &lib, &stack, &probe).run().expect("sta");
    let period = 6_000.0 - r.wns().value() - 500.0;
    println!(
        "design: {} cells | probe WNS at 6 ns: {:.1} ps | closure period: {:.0} ps",
        nl.cell_count(),
        r.wns().value(),
        period
    );
    let cons = Constraints::single_clock(period);

    let before = Sta::new(&nl, &lib, &stack, &cons).run().expect("sta");
    println!("entering closure: {}", before.summary());
    let breakdown = before.failure_breakdown();
    println!("failure breakdown: {breakdown:?}");

    // The probe runs above are prologue, not the loop being measured.
    tc_obs::reset();

    let config = ClosureConfig {
        budget_per_pass: 15,
        k_paths: 8,
        ..Default::default()
    };
    let mut flow = ClosureFlow::new(&lib, &stack, config);
    let out = flow.run(&mut nl, cons).expect("closure flow");

    let rows: Vec<Vec<String>> = out
        .iterations
        .iter()
        .map(|it| {
            let fixes = it
                .fixes
                .iter()
                .map(|(k, n)| format!("{}:{n}", k.label()))
                .collect::<Vec<_>>()
                .join(" ");
            vec![
                it.iteration.to_string(),
                fmt(it.wns_before.value(), 1),
                fmt(it.wns_after.value(), 1),
                fmt(it.tns_after.value(), 1),
                it.violations_after.to_string(),
                fmt(it.elapsed_ms, 0),
                it.counter_delta("sta.arcs_evaluated").to_string(),
                fixes,
            ]
        })
        .collect();
    print_table(
        "Fig 1: closure iterations",
        &[
            "iter", "WNS in", "WNS out", "TNS out", "viol", "ms", "arcs", "fixes",
        ],
        &rows,
    );
    println!(
        "\nclosed: {} | schedule: {:.0} days ({} iterations of 3 days)",
        out.closed,
        out.days,
        out.iterations.len()
    );
    println!("final: {}", out.final_report.summary());

    let snapshot = tc_obs::snapshot();
    println!("\n{}", snapshot.render_text());

    let iterations: Vec<JsonValue> = out
        .iterations
        .iter()
        .map(|it| {
            let deltas: Vec<(String, JsonValue)> = it
                .counter_deltas
                .iter()
                .map(|(n, v)| (n.clone(), JsonValue::from(*v)))
                .collect();
            JsonValue::obj([
                ("iteration", JsonValue::from(it.iteration)),
                ("wns_before_ps", JsonValue::from(it.wns_before.value())),
                ("wns_after_ps", JsonValue::from(it.wns_after.value())),
                ("tns_after_ps", JsonValue::from(it.tns_after.value())),
                ("violations_after", JsonValue::from(it.violations_after)),
                ("elapsed_ms", JsonValue::from(it.elapsed_ms)),
                ("counter_deltas", JsonValue::Obj(deltas)),
                (
                    "fixes",
                    JsonValue::Arr(
                        it.fixes
                            .iter()
                            .map(|(k, n)| {
                                JsonValue::obj([
                                    ("fix", JsonValue::str(k.label())),
                                    ("edits", JsonValue::from(*n)),
                                ])
                            })
                            .collect(),
                    ),
                ),
            ])
        })
        .collect();
    let doc = JsonValue::obj([
        ("figure", JsonValue::str("fig01_closure_loop")),
        ("closed", JsonValue::from(out.closed)),
        ("days", JsonValue::from(out.days)),
        ("iterations", JsonValue::Arr(iterations)),
        ("observability", snapshot.to_json_value()),
    ]);
    match write_json_sidecar("fig01_closure_loop", &doc.render()) {
        Ok(path) => println!("sidecar: {}", path.display()),
        Err(e) => eprintln!("sidecar write failed: {e}"),
    }
}
