#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! # tc-bench — figure-regeneration harnesses
//!
//! One binary per figure/table of the paper (see `src/bin/`), plus the
//! Criterion benchmarks in `benches/engines.rs`. This library holds the
//! shared formatting and experiment-setup helpers so every harness
//! prints consistent, diffable tables (recorded in `EXPERIMENTS.md`).

use tc_interconnect::BeolStack;
use tc_liberty::{LibConfig, Library, PvtCorner};
use tc_netlist::gen::{generate, BenchProfile};
use tc_netlist::Netlist;

/// Prints a fixed-width table: header row, rule, then rows.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line: Vec<String> = headers
        .iter()
        .zip(&widths)
        .map(|(h, w)| format!("{h:<w$}"))
        .collect();
    println!("{}", line.join(" | "));
    println!(
        "{}",
        widths
            .iter()
            .map(|w| "-".repeat(*w))
            .collect::<Vec<_>>()
            .join("-+-")
    );
    for row in rows {
        let line: Vec<String> = row
            .iter()
            .zip(&widths)
            .map(|(c, w)| format!("{c:<w$}"))
            .collect();
        println!("{}", line.join(" | "));
    }
}

/// Formats a float with the given precision.
pub fn fmt(v: f64, prec: usize) -> String {
    format!("{v:.prec$}")
}

/// The standard experiment environment: a typical-corner library and the
/// 20 nm BEOL stack.
pub fn standard_env() -> (Library, BeolStack) {
    (
        Library::generate(&LibConfig::default(), &PvtCorner::typical()),
        BeolStack::n20(),
    )
}

/// A seeded benchmark netlist by profile name.
///
/// # Panics
///
/// Panics on an unknown profile name (harness misuse).
pub fn bench_netlist(lib: &Library, profile: &str, seed: u64) -> Netlist {
    let p = match profile {
        "tiny" => BenchProfile::tiny(),
        "soc_block" => BenchProfile::soc_block(),
        "c5315" => BenchProfile::c5315(),
        "c7552" => BenchProfile::c7552(),
        "aes" => BenchProfile::aes(),
        "mpeg2" => BenchProfile::mpeg2(),
        other => panic!("unknown profile {other}"),
    };
    generate(lib, p, seed).expect("generator is total")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_and_netlists_materialize() {
        let (lib, stack) = standard_env();
        assert!(stack.layer_count() == 9);
        let nl = bench_netlist(&lib, "tiny", 1);
        assert!(nl.cell_count() > 100);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt(1.23456, 2), "1.23");
        // print_table must not panic on ragged input.
        print_table("t", &["a", "b"], &[vec!["1".into(), "2".into()]]);
    }
}
