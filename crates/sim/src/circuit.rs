//! Circuit description: nodes, passive elements, sources and MOSFETs.
//!
//! Unit system matches `tc-device`: volts, picoseconds, femtofarads,
//! kilohms, milliamps — mutually consistent so the integrator needs no
//! conversion factors.

use tc_core::error::{Error, Result};
use tc_core::units::{Ff, Kohm, Volt};
use tc_device::MosDevice;

/// Index of a circuit node. Node 0 is always ground.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub(crate) usize);

impl NodeId {
    /// The ground node.
    pub const GROUND: NodeId = NodeId(0);

    /// Dense index (0 = ground).
    pub fn index(self) -> usize {
        self.0
    }
}

/// A piecewise-linear voltage waveform: `(time_ps, volts)` breakpoints.
/// Before the first breakpoint the first value holds; after the last, the
/// last value holds.
#[derive(Clone, Debug, PartialEq)]
pub struct Pwl {
    points: Vec<(f64, f64)>,
}

impl Pwl {
    /// A constant voltage.
    pub fn constant(v: Volt) -> Self {
        Pwl {
            points: vec![(0.0, v.value())],
        }
    }

    /// A single ramp from `v0` to `v1` starting at `t0` with the given
    /// 0–100% transition time.
    pub fn ramp(t0: f64, transition_ps: f64, v0: Volt, v1: Volt) -> Self {
        Pwl {
            points: vec![(t0, v0.value()), (t0 + transition_ps.max(1e-9), v1.value())],
        }
    }

    /// A rise followed by a fall (a pulse), each edge with the given
    /// transition time. If the fall begins before the rise completes,
    /// the waveform is the physically correct *triangle* — the rising
    /// ramp cut short by the falling ramp (a runt pulse); if the fall
    /// precedes the rise entirely, the output never leaves `lo`.
    pub fn pulse(t_rise: f64, t_fall: f64, transition_ps: f64, lo: Volt, hi: Volt) -> Self {
        let tr = transition_ps.max(1e-9);
        if t_fall >= t_rise + tr {
            return Pwl {
                points: vec![
                    (t_rise, lo.value()),
                    (t_rise + tr, hi.value()),
                    (t_fall, hi.value()),
                    (t_fall + tr, lo.value()),
                ],
            };
        }
        // Overlapping ramps: D(t) = min(rise(t), fall(t)). They intersect
        // at t_peak; the peak never reaches full swing.
        let t_peak = 0.5 * (t_rise + t_fall + tr);
        if t_peak <= t_rise {
            return Pwl::constant(lo);
        }
        let frac = ((t_peak - t_rise) / tr).clamp(0.0, 1.0);
        let v_peak = lo.value() + frac * (hi.value() - lo.value());
        Pwl {
            points: vec![
                (t_rise, lo.value()),
                (t_peak, v_peak),
                (t_fall + tr, lo.value()),
            ],
        }
    }

    /// Builds from explicit breakpoints.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidInput`] if the breakpoints are empty or not
    /// sorted by time.
    pub fn from_points(points: Vec<(f64, f64)>) -> Result<Self> {
        if points.is_empty() {
            return Err(Error::invalid_input("pwl needs at least one breakpoint"));
        }
        if points.windows(2).any(|w| w[1].0 < w[0].0) {
            return Err(Error::invalid_input("pwl breakpoints must be sorted"));
        }
        Ok(Pwl { points })
    }

    /// Waveform value at time `t` (ps).
    pub fn at(&self, t: f64) -> f64 {
        let pts = &self.points;
        if t <= pts[0].0 {
            return pts[0].1;
        }
        for w in pts.windows(2) {
            let (t0, v0) = w[0];
            let (t1, v1) = w[1];
            if t <= t1 {
                if t1 - t0 <= 0.0 {
                    return v1;
                }
                return v0 + (v1 - v0) * (t - t0) / (t1 - t0);
            }
        }
        pts[pts.len() - 1].1
    }
}

/// A circuit element.
#[derive(Clone, Debug)]
pub enum Element {
    /// Linear resistor between two nodes.
    Resistor {
        /// First terminal.
        a: NodeId,
        /// Second terminal.
        b: NodeId,
        /// Resistance.
        r: Kohm,
    },
    /// Linear capacitor between two nodes.
    Capacitor {
        /// First terminal.
        a: NodeId,
        /// Second terminal.
        b: NodeId,
        /// Capacitance.
        c: Ff,
    },
    /// Ideal voltage source pinning `node` to a waveform.
    Source {
        /// The pinned node.
        node: NodeId,
        /// The driving waveform.
        wave: Pwl,
    },
    /// A MOSFET.
    Mosfet {
        /// Device parameters.
        dev: MosDevice,
        /// Drain node.
        d: NodeId,
        /// Gate node.
        g: NodeId,
        /// Source node.
        s: NodeId,
    },
}

/// A flat transistor-level circuit under construction.
#[derive(Clone, Debug, Default)]
pub struct Circuit {
    names: Vec<String>,
    pub(crate) elements: Vec<Element>,
}

impl Circuit {
    /// Creates an empty circuit containing only the ground node.
    pub fn new() -> Self {
        Circuit {
            names: vec!["gnd".to_string()],
            elements: Vec::new(),
        }
    }

    /// Adds a named node and returns its id.
    pub fn node(&mut self, name: impl Into<String>) -> NodeId {
        self.names.push(name.into());
        NodeId(self.names.len() - 1)
    }

    /// Number of nodes including ground.
    pub fn node_count(&self) -> usize {
        self.names.len()
    }

    /// Name of a node.
    pub fn node_name(&self, n: NodeId) -> &str {
        &self.names[n.0]
    }

    /// Looks a node up by name.
    pub fn find_node(&self, name: &str) -> Option<NodeId> {
        self.names.iter().position(|n| n == name).map(NodeId)
    }

    /// Adds a resistor.
    pub fn resistor(&mut self, a: NodeId, b: NodeId, r: Kohm) {
        self.elements.push(Element::Resistor { a, b, r });
    }

    /// Adds a capacitor.
    pub fn capacitor(&mut self, a: NodeId, b: NodeId, c: Ff) {
        self.elements.push(Element::Capacitor { a, b, c });
    }

    /// Adds a grounded capacitor.
    pub fn cap_to_ground(&mut self, a: NodeId, c: Ff) {
        self.capacitor(a, NodeId::GROUND, c);
    }

    /// Pins a node to an ideal source waveform.
    pub fn source(&mut self, node: NodeId, wave: Pwl) {
        self.elements.push(Element::Source { node, wave });
    }

    /// Convenience: a node pinned to a constant rail.
    pub fn rail(&mut self, name: impl Into<String>, v: Volt) -> NodeId {
        let n = self.node(name);
        self.source(n, Pwl::constant(v));
        n
    }

    /// Adds a MOSFET.
    pub fn mosfet(&mut self, dev: MosDevice, d: NodeId, g: NodeId, s: NodeId) {
        self.elements.push(Element::Mosfet { dev, d, g, s });
    }

    /// The elements added so far.
    pub fn elements(&self) -> &[Element] {
        &self.elements
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pwl_evaluation() {
        let p = Pwl::ramp(10.0, 20.0, Volt::new(0.0), Volt::new(1.0));
        assert_eq!(p.at(0.0), 0.0);
        assert_eq!(p.at(10.0), 0.0);
        assert!((p.at(20.0) - 0.5).abs() < 1e-12);
        assert_eq!(p.at(30.0), 1.0);
        assert_eq!(p.at(100.0), 1.0);
    }

    #[test]
    fn pwl_pulse_shape() {
        let p = Pwl::pulse(100.0, 300.0, 10.0, Volt::new(0.0), Volt::new(0.9));
        assert_eq!(p.at(50.0), 0.0);
        assert_eq!(p.at(200.0), 0.9);
        assert_eq!(p.at(400.0), 0.0);
    }

    #[test]
    fn pwl_rejects_unsorted() {
        assert!(Pwl::from_points(vec![(1.0, 0.0), (0.5, 1.0)]).is_err());
        assert!(Pwl::from_points(vec![]).is_err());
    }

    #[test]
    fn node_bookkeeping() {
        let mut c = Circuit::new();
        let a = c.node("a");
        let b = c.node("b");
        assert_eq!(c.node_count(), 3);
        assert_eq!(c.node_name(a), "a");
        assert_eq!(c.find_node("b"), Some(b));
        assert_eq!(c.find_node("zz"), None);
        c.resistor(a, b, Kohm::new(1.0));
        c.cap_to_ground(b, Ff::new(2.0));
        assert_eq!(c.elements().len(), 2);
    }
}

#[cfg(test)]
mod proptests {
    //! Randomized invariants driven by the in-tree deterministic RNG.

    use super::*;
    use tc_core::rng::Rng;

    #[test]
    fn pwl_pulse_is_bounded_and_returns_to_lo() {
        let mut rng = Rng::seed_from(0x9015e);
        for _ in 0..128 {
            let t_rise = rng.uniform_in(0.0, 500.0);
            let gap = rng.uniform_in(-60.0, 300.0);
            let tr = rng.uniform_in(1.0, 60.0);
            let hi = rng.uniform_in(0.5, 1.2);
            let t_fall = t_rise + gap;
            let p = Pwl::pulse(t_rise, t_fall, tr, Volt::ZERO, Volt::new(hi));
            for i in 0..200 {
                let t = -50.0 + i as f64 * 5.0;
                let v = p.at(t);
                assert!(v >= -1e-12 && v <= hi + 1e-12, "v({t}) = {v}");
            }
            // Long after both edges the pulse is back at lo.
            assert!(p.at(t_rise + gap.abs() + 10.0 * tr + 1_000.0).abs() < 1e-9);
            // Before the rise it is lo.
            assert!(p.at(t_rise - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn pwl_ramp_is_monotone() {
        let mut rng = Rng::seed_from(0x4a39);
        for _ in 0..128 {
            let t0 = rng.uniform_in(0.0, 500.0);
            let tr = rng.uniform_in(1.0, 100.0);
            let v1 = rng.uniform_in(0.2, 1.2);
            let p = Pwl::ramp(t0, tr, Volt::ZERO, Volt::new(v1));
            let mut last = -1e-9;
            for i in 0..100 {
                let t = t0 - 10.0 + i as f64 * (tr + 20.0) / 100.0;
                let v = p.at(t);
                assert!(v >= last - 1e-12);
                last = v;
            }
        }
    }
}
