//! Transistor-level standard cells for characterization testbenches.
//!
//! Each builder wires devices into an existing [`Circuit`] and returns the
//! relevant node ids. Device widths follow the usual 28 nm-ish
//! conventions: PMOS ≈ 1.8× NMOS for balanced rise/fall, series stacks
//! upsized by the stack height.

use tc_core::error::Result;
use tc_core::units::{Celsius, Ff, Ps, Volt};
use tc_device::{MosDevice, MosKind, Technology, VtClass};

use crate::circuit::{Circuit, NodeId, Pwl};
use crate::measure::{delay_between, Edge};
use crate::solver::{transient, TranOptions};

/// Relative PMOS upsizing for balanced drive.
const BETA: f64 = 1.8;

/// Builds an inverter; returns nothing beyond wiring (out is caller's).
pub fn inverter(
    ckt: &mut Circuit,
    vdd: NodeId,
    input: NodeId,
    output: NodeId,
    vt: VtClass,
    strength: f64,
) {
    let wn = strength;
    let wp = BETA * strength;
    ckt.mosfet(
        MosDevice::new(MosKind::Nmos, vt, wn),
        output,
        input,
        NodeId::GROUND,
    );
    ckt.mosfet(MosDevice::new(MosKind::Pmos, vt, wp), output, input, vdd);
    // Drain diffusion loading on the output.
    ckt.cap_to_ground(output, Ff::new(0.55 * (wn + wp) * 0.5));
}

/// Builds a 2-input NAND; inputs `a` (bottom of stack) and `b` (top).
///
/// The series NMOS stack is upsized 2× so the worst-case pull-down matches
/// an inverter of the same strength.
pub fn nand2(
    ckt: &mut Circuit,
    vdd: NodeId,
    a: NodeId,
    b: NodeId,
    output: NodeId,
    vt: VtClass,
    strength: f64,
) {
    let wn = 2.0 * strength;
    let wp = BETA * strength;
    let mid = ckt.node("nand_mid");
    // Pull-down stack: output → (gate b) → mid → (gate a) → ground.
    ckt.mosfet(MosDevice::new(MosKind::Nmos, vt, wn), output, b, mid);
    ckt.mosfet(
        MosDevice::new(MosKind::Nmos, vt, wn),
        mid,
        a,
        NodeId::GROUND,
    );
    // Parallel pull-ups.
    ckt.mosfet(MosDevice::new(MosKind::Pmos, vt, wp), output, a, vdd);
    ckt.mosfet(MosDevice::new(MosKind::Pmos, vt, wp), output, b, vdd);
    ckt.cap_to_ground(output, Ff::new(0.55 * (wn + 2.0 * wp) * 0.4));
    ckt.cap_to_ground(mid, Ff::new(0.55 * wn * 0.5));
}

/// Builds a 2-input NOR.
pub fn nor2(
    ckt: &mut Circuit,
    vdd: NodeId,
    a: NodeId,
    b: NodeId,
    output: NodeId,
    vt: VtClass,
    strength: f64,
) {
    let wn = strength;
    let wp = 2.0 * BETA * strength;
    let mid = ckt.node("nor_mid");
    // Series pull-up: vdd → (gate a) → mid → (gate b) → output.
    ckt.mosfet(MosDevice::new(MosKind::Pmos, vt, wp), mid, a, vdd);
    ckt.mosfet(MosDevice::new(MosKind::Pmos, vt, wp), output, b, mid);
    // Parallel pull-downs.
    ckt.mosfet(
        MosDevice::new(MosKind::Nmos, vt, wn),
        output,
        a,
        NodeId::GROUND,
    );
    ckt.mosfet(
        MosDevice::new(MosKind::Nmos, vt, wn),
        output,
        b,
        NodeId::GROUND,
    );
    ckt.cap_to_ground(output, Ff::new(0.55 * (2.0 * wn + wp) * 0.4));
    ckt.cap_to_ground(mid, Ff::new(0.55 * wp * 0.5));
}

/// Builds a transmission gate between `a` and `b`, conducting when
/// `ctrl` is high (`ctrl_b` must carry its complement).
pub fn transmission_gate(
    ckt: &mut Circuit,
    a: NodeId,
    b: NodeId,
    ctrl: NodeId,
    ctrl_b: NodeId,
    vt: VtClass,
    strength: f64,
) {
    ckt.mosfet(MosDevice::new(MosKind::Nmos, vt, strength), a, ctrl, b);
    ckt.mosfet(
        MosDevice::new(MosKind::Pmos, vt, BETA * strength),
        a,
        ctrl_b,
        b,
    );
}

/// Node handles of a built flip-flop.
#[derive(Clone, Copy, Debug)]
pub struct DffNodes {
    /// Data input.
    pub d: NodeId,
    /// Clock input.
    pub ck: NodeId,
    /// Data output.
    pub q: NodeId,
}

/// Builds a positive-edge-triggered transmission-gate master–slave
/// flip-flop (the classic DFF topology). `d` and `ck` must be driven by
/// the caller; `q` is the output.
pub fn dff(ckt: &mut Circuit, vdd: NodeId, vt: VtClass) -> DffNodes {
    let d = ckt.node("d");
    let ck = ckt.node("ck");
    let ckb = ckt.node("ckb");
    let cki = ckt.node("cki");
    // Local clock buffers: ckb = !ck, cki = !ckb (buffered true phase).
    inverter(ckt, vdd, ck, ckb, vt, 1.0);
    inverter(ckt, vdd, ckb, cki, vt, 1.0);

    // Master latch: transparent while ck low.
    let m1 = ckt.node("m1");
    let m2 = ckt.node("m2");
    let m3 = ckt.node("m3");
    transmission_gate(ckt, d, m1, ckb, cki, vt, 1.0);
    inverter(ckt, vdd, m1, m2, vt, 1.0);
    inverter(ckt, vdd, m2, m3, vt, 0.5);
    transmission_gate(ckt, m3, m1, cki, ckb, vt, 0.5);

    // Slave latch: transparent while ck high.
    let s1 = ckt.node("s1");
    let q = ckt.node("q");
    let s3 = ckt.node("s3");
    transmission_gate(ckt, m2, s1, cki, ckb, vt, 1.0);
    inverter(ckt, vdd, s1, q, vt, 1.5);
    inverter(ckt, vdd, q, s3, vt, 0.5);
    transmission_gate(ckt, s3, s1, ckb, cki, vt, 0.5);

    DffNodes { d, ck, q }
}

/// Measures the 50%–50% propagation delay of one inverter stage inside a
/// 3-stage chain (the middle stage sees realistic input slew and output
/// loading) — a quick end-to-end smoke of the device + solver stack.
///
/// # Errors
///
/// Propagates solver convergence failures.
pub fn inverter_chain_delay(
    tech: &Technology,
    vt: VtClass,
    vdd_v: Volt,
    temp: Celsius,
) -> Result<Ps> {
    let mut ckt = Circuit::new();
    let vdd = ckt.rail("vdd", vdd_v);
    let input = ckt.node("in");
    let n1 = ckt.node("n1");
    let n2 = ckt.node("n2");
    let n3 = ckt.node("n3");
    inverter(&mut ckt, vdd, input, n1, vt, 1.0);
    inverter(&mut ckt, vdd, n1, n2, vt, 1.0);
    inverter(&mut ckt, vdd, n2, n3, vt, 1.0);
    ckt.cap_to_ground(n3, Ff::new(2.0));
    ckt.source(input, Pwl::ramp(50.0, 20.0, Volt::ZERO, vdd_v));

    let opts = TranOptions {
        t_stop: 400.0,
        dt: 0.25,
        temp,
        ..Default::default()
    };
    let res = transient(&ckt, tech, &opts)?;
    let w_in = res.waveform(n1);
    let w_out = res.waveform(n2);
    delay_between(&w_in, Edge::Fall, &w_out, Edge::Rise, vdd_v.value(), 0.0)
        .ok_or_else(|| tc_core::Error::internal("inverter chain produced no output transition"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inverter_inverts() {
        let tech = Technology::planar_28nm();
        let vdd_v = Volt::new(0.9);
        let mut ckt = Circuit::new();
        let vdd = ckt.rail("vdd", vdd_v);
        let input = ckt.node("in");
        let out = ckt.node("out");
        inverter(&mut ckt, vdd, input, out, VtClass::Svt, 1.0);
        ckt.cap_to_ground(out, Ff::new(1.0));
        ckt.source(input, Pwl::ramp(50.0, 10.0, Volt::ZERO, vdd_v));
        let res = transient(&ckt, &tech, &TranOptions::until(300.0)).unwrap();
        let w = res.waveform(out);
        // Out starts high (input low), ends low.
        assert!(w.at(10.0) > 0.8 * vdd_v.value(), "initial {}", w.at(10.0));
        assert!(w.last() < 0.1 * vdd_v.value(), "final {}", w.last());
    }

    #[test]
    fn chain_delay_is_positive_and_sane() {
        let tech = Technology::planar_28nm();
        let d =
            inverter_chain_delay(&tech, VtClass::Svt, Volt::new(0.9), Celsius::new(25.0)).unwrap();
        assert!(d.value() > 1.0 && d.value() < 100.0, "stage delay {d}");
    }

    #[test]
    fn lower_vt_is_faster() {
        let tech = Technology::planar_28nm();
        let t = Celsius::new(25.0);
        let v = Volt::new(0.9);
        let d_lvt = inverter_chain_delay(&tech, VtClass::Lvt, v, t).unwrap();
        let d_hvt = inverter_chain_delay(&tech, VtClass::Hvt, v, t).unwrap();
        assert!(d_lvt < d_hvt, "lvt {d_lvt} must beat hvt {d_hvt}");
    }

    #[test]
    fn temperature_inversion_at_circuit_level() {
        // The device-level reversal must survive into simulated gate delay.
        let tech = Technology::planar_28nm();
        let cold = Celsius::new(-30.0);
        let hot = Celsius::new(125.0);
        // Low voltage: slower cold.
        let v = Volt::new(0.6);
        let d_cold = inverter_chain_delay(&tech, VtClass::Svt, v, cold).unwrap();
        let d_hot = inverter_chain_delay(&tech, VtClass::Svt, v, hot).unwrap();
        assert!(d_cold > d_hot, "low-V: cold {d_cold} vs hot {d_hot}");
        // High voltage: slower hot.
        let v = Volt::new(1.1);
        let d_cold = inverter_chain_delay(&tech, VtClass::Svt, v, cold).unwrap();
        let d_hot = inverter_chain_delay(&tech, VtClass::Svt, v, hot).unwrap();
        assert!(d_hot > d_cold, "high-V: cold {d_cold} vs hot {d_hot}");
    }

    #[test]
    fn nand2_truth_table_endpoints() {
        let tech = Technology::planar_28nm();
        let vdd_v = Volt::new(0.9);
        // b held high, a ramps high → output falls (NAND(1,1)=0).
        let mut ckt = Circuit::new();
        let vdd = ckt.rail("vdd", vdd_v);
        let a = ckt.node("a");
        let b = ckt.node("b");
        let out = ckt.node("out");
        nand2(&mut ckt, vdd, a, b, out, VtClass::Svt, 1.0);
        ckt.cap_to_ground(out, Ff::new(1.0));
        ckt.source(b, Pwl::constant(vdd_v));
        ckt.source(a, Pwl::ramp(50.0, 10.0, Volt::ZERO, vdd_v));
        let res = transient(&ckt, &tech, &TranOptions::until(300.0)).unwrap();
        let w = res.waveform(out);
        assert!(w.at(10.0) > 0.8 * vdd_v.value());
        assert!(w.last() < 0.1 * vdd_v.value());
    }

    #[test]
    fn dff_captures_on_rising_edge() {
        let tech = Technology::planar_28nm();
        let vdd_v = Volt::new(0.9);
        let mut ckt = Circuit::new();
        let vdd = ckt.rail("vdd", vdd_v);
        let ff = dff(&mut ckt, vdd, VtClass::Svt);
        ckt.cap_to_ground(ff.q, Ff::new(1.0));
        // D rises well before the clock edge at t=400; Q should go high
        // shortly after the edge and stay high.
        ckt.source(ff.d, Pwl::ramp(100.0, 20.0, Volt::ZERO, vdd_v));
        ckt.source(ff.ck, Pwl::pulse(400.0, 700.0, 20.0, Volt::ZERO, vdd_v));
        let opts = TranOptions {
            t_stop: 1000.0,
            dt: 0.5,
            ..Default::default()
        };
        let res = transient(&ckt, &tech, &opts).unwrap();
        let q = res.waveform(ff.q);
        assert!(
            q.at(380.0) < 0.2 * vdd_v.value(),
            "Q must stay low before the edge, got {}",
            q.at(380.0)
        );
        assert!(
            q.at(600.0) > 0.8 * vdd_v.value(),
            "Q must capture the high D, got {}",
            q.at(600.0)
        );
        // And hold it after the clock falls.
        assert!(q.last() > 0.8 * vdd_v.value());
    }
}
