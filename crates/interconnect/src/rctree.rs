//! RC trees: Elmore and D2M delay metrics, O'Brien–Savarino pi reduction.
//!
//! The paper's §3.1 traces delay calculation "back to simple lumped-C
//! models, Elmore's bound on delay in RC trees, the O'Brien–Savarino pi
//! model" — the three structures implemented here, used by `tc-sta` to
//! turn an extracted net into (driver load, per-sink wire delay).

use tc_core::error::{Error, Result};
use tc_core::units::{Ff, Kohm, Ps};

/// An RC tree rooted at the driver output.
///
/// Node 0 is the root; every other node has a parent, a resistance to its
/// parent, and a grounded capacitance.
#[derive(Clone, Debug, PartialEq)]
pub struct RcTree {
    parent: Vec<usize>,
    r_up: Vec<Kohm>,
    cap: Vec<Ff>,
}

impl Default for RcTree {
    /// An empty tree (lone zero-cap root) — the seed for arena reuse via
    /// [`RcTree::reset`].
    fn default() -> Self {
        RcTree::new(Ff::ZERO)
    }
}

impl RcTree {
    /// Creates a tree with just the root (node 0) holding `c_root`.
    pub fn new(c_root: Ff) -> Self {
        RcTree {
            parent: vec![0],
            r_up: vec![Kohm::ZERO],
            cap: vec![c_root],
        }
    }

    /// Resets the tree to a lone root holding `c_root`, keeping the
    /// node buffers allocated — the arena path for per-net extraction,
    /// where one tree is rebuilt for every net of the design.
    pub fn reset(&mut self, c_root: Ff) {
        self.parent.clear();
        self.r_up.clear();
        self.cap.clear();
        self.parent.push(0);
        self.r_up.push(Kohm::ZERO);
        self.cap.push(c_root);
    }

    /// Adds a node hanging off `parent` through `r`, holding `c`;
    /// returns its index.
    ///
    /// # Panics
    ///
    /// Panics if `parent` does not exist yet.
    pub fn add_node(&mut self, parent: usize, r: Kohm, c: Ff) -> usize {
        assert!(parent < self.parent.len(), "parent {parent} out of range");
        self.parent.push(parent);
        self.r_up.push(r);
        self.cap.push(c);
        self.parent.len() - 1
    }

    /// Adds extra capacitance at a node (pin cap, fill cap, …).
    pub fn add_cap(&mut self, node: usize, c: Ff) {
        self.cap[node] += c;
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// `true` if only the root exists.
    pub fn is_empty(&self) -> bool {
        self.parent.len() <= 1
    }

    /// Total tree capacitance.
    pub fn total_cap(&self) -> Ff {
        self.cap.iter().copied().sum()
    }

    fn path_to_root(&self, mut node: usize) -> Vec<usize> {
        let mut path = vec![node];
        while node != 0 {
            node = self.parent[node];
            path.push(node);
        }
        path
    }

    /// Fills `r_to[i]` with the resistance from the root to node `i`
    /// (same accumulation order as the one-shot [`RcTree::elmore`], so
    /// the values are bit-identical). Fill once per tree, then evaluate
    /// many sinks with [`RcTree::elmore_with`].
    pub(crate) fn fill_r_to(&self, r_to: &mut Vec<f64>) {
        r_to.clear();
        r_to.resize(self.len(), 0.0);
        for i in 1..self.len() {
            r_to[i] = r_to[self.parent[i]] + self.r_up[i].value();
        }
    }

    /// Elmore delay at `sink` using a prefilled `r_to` (from
    /// [`RcTree::fill_r_to`] on *this* tree) and a reusable mark buffer —
    /// the allocation-free path. Identical floating-point evaluation
    /// order to [`RcTree::elmore`].
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidInput`] if `sink` is out of range.
    pub(crate) fn elmore_with(
        &self,
        sink: usize,
        r_to: &[f64],
        on_sink_path: &mut Vec<bool>,
    ) -> Result<Ps> {
        if sink >= self.len() {
            return Err(Error::invalid_input(format!("sink {sink} out of range")));
        }
        // Shared resistance = r_to[lowest common ancestor]; compute by
        // marking the sink's root path.
        on_sink_path.clear();
        on_sink_path.resize(self.len(), false);
        let mut n = sink;
        on_sink_path[n] = true;
        while n != 0 {
            n = self.parent[n];
            on_sink_path[n] = true;
        }
        let mut total = 0.0;
        for k in 0..self.len() {
            // Walk up from k to the first node on the sink path: that is
            // the LCA; shared R = r_to[lca].
            let mut n = k;
            while !on_sink_path[n] {
                n = self.parent[n];
            }
            total += self.cap[k].value() * r_to[n];
        }
        Ok(Ps::new(total))
    }

    /// Elmore delay from the root to `sink`:
    /// `Σ_k C_k · R(path(root→sink) ∩ path(root→k))`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidInput`] if `sink` is out of range.
    pub fn elmore(&self, sink: usize) -> Result<Ps> {
        let mut r_to = Vec::new();
        self.fill_r_to(&mut r_to);
        self.elmore_with(sink, &r_to, &mut Vec::new())
    }

    /// First two moments `(m1, m2)` of the impulse response at `sink`
    /// (m1 = Elmore).
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidInput`] if `sink` is out of range.
    pub fn moments(&self, sink: usize) -> Result<(f64, f64)> {
        let m1 = self.elmore(sink)?.value();
        // m2 via the standard recursive moment computation: m2_k uses the
        // m1-weighted capacitances.
        let mut r_to: Vec<f64> = vec![0.0; self.len()];
        for i in 1..self.len() {
            r_to[i] = r_to[self.parent[i]] + self.r_up[i].value();
        }
        let mut elmore_all: Vec<f64> = vec![0.0; self.len()];
        for (k, e) in elmore_all.iter_mut().enumerate() {
            *e = self.elmore(k)?.value();
        }
        let mut on_sink_path = vec![false; self.len()];
        for &n in &self.path_to_root(sink) {
            on_sink_path[n] = true;
        }
        let mut m2 = 0.0;
        for (k, &elm) in elmore_all.iter().enumerate() {
            let mut n = k;
            while !on_sink_path[n] {
                n = self.parent[n];
            }
            m2 += self.cap[k].value() * r_to[n] * elm;
        }
        Ok((m1, m2))
    }

    /// D2M delay metric: `ln2 · m1² / √m2` — tighter than Elmore for
    /// resistive nets while never exceeding it.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidInput`] if `sink` is out of range.
    pub fn d2m(&self, sink: usize) -> Result<Ps> {
        let (m1, m2) = self.moments(sink)?;
        if m2 <= 0.0 {
            return Ok(Ps::ZERO);
        }
        Ok(Ps::new(std::f64::consts::LN_2 * m1 * m1 / m2.sqrt()))
    }

    /// O'Brien–Savarino pi-model reduction seen from the root:
    /// `(c_near, r, c_far)` chosen to match the first three input
    /// admittance moments.
    pub fn pi_model(&self) -> (Ff, Kohm, Ff) {
        // Admittance moments at the root: y1 = ΣC, y2 = −Σ C_k·R_k,
        // y3 = Σ_k C_k · Σ_j C_j R_shared(k,j) R_… — use the standard
        // downstream-cap recursion instead.
        let n = self.len();
        let mut children: Vec<Vec<usize>> = vec![Vec::new(); n];
        for i in 1..n {
            children[self.parent[i]].push(i);
        }
        // Post-order accumulation of (y1, y2, y3) at each node, where the
        // node's own R-up then transforms them.
        fn acc(tree: &RcTree, children: &[Vec<usize>], node: usize) -> (f64, f64, f64) {
            let mut y1 = tree.cap[node].value();
            let mut y2 = 0.0;
            let mut y3 = 0.0;
            for &ch in &children[node] {
                let (c1, c2, c3) = acc(tree, children, ch);
                let r = tree.r_up[ch].value();
                // Moment transform through a series R.
                y1 += c1;
                y2 += c2 - r * c1 * c1;
                y3 += c3 - 2.0 * r * c1 * c2 + r * r * c1 * c1 * c1;
            }
            (y1, y2, y3)
        }
        let (y1, y2, y3) = acc(self, &children, 0);
        if y2.abs() < 1e-15 {
            return (Ff::new(y1), Kohm::ZERO, Ff::ZERO);
        }
        let c_far = -(y2 * y2 / y3.max(1e-15));
        let c_far = if c_far.is_finite() && c_far > 0.0 && c_far < y1 {
            c_far
        } else {
            0.5 * y1
        };
        let r = -y2 / (c_far * c_far).max(1e-15);
        let c_near = (y1 - c_far).max(0.0);
        (Ff::new(c_near), Kohm::new(r.max(0.0)), Ff::new(c_far))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A 2-segment line: root → a (1 kΩ, 2 fF) → b (1 kΩ, 2 fF).
    fn line() -> RcTree {
        let mut t = RcTree::new(Ff::new(1.0));
        let a = t.add_node(0, Kohm::new(1.0), Ff::new(2.0));
        let _b = t.add_node(a, Kohm::new(1.0), Ff::new(2.0));
        t
    }

    #[test]
    fn elmore_of_line_matches_hand_calc() {
        let t = line();
        // Sink b: R1·(C_a + C_b) + R2·C_b = 1·4 + 1·2 = 6 ps.
        assert!((t.elmore(2).unwrap().value() - 6.0).abs() < 1e-12);
        // Sink a: R1·(C_a + C_b) = 4 ps.
        assert!((t.elmore(1).unwrap().value() - 4.0).abs() < 1e-12);
        // Root: zero.
        assert_eq!(t.elmore(0).unwrap(), Ps::ZERO);
    }

    #[test]
    fn elmore_of_branch() {
        // root → a; a → b and a → c (a "Y").
        let mut t = RcTree::new(Ff::ZERO);
        let a = t.add_node(0, Kohm::new(2.0), Ff::new(1.0));
        let b = t.add_node(a, Kohm::new(1.0), Ff::new(3.0));
        let c = t.add_node(a, Kohm::new(4.0), Ff::new(1.0));
        // To b: R_a·(C_a+C_b+C_c) + R_b·C_b = 2·5 + 1·3 = 13.
        assert!((t.elmore(b).unwrap().value() - 13.0).abs() < 1e-12);
        // To c: 2·5 + 4·1 = 14.
        assert!((t.elmore(c).unwrap().value() - 14.0).abs() < 1e-12);
    }

    #[test]
    fn d2m_is_tighter_than_elmore() {
        let t = line();
        let e = t.elmore(2).unwrap();
        let d = t.d2m(2).unwrap();
        assert!(d <= e, "D2M {d} must not exceed Elmore {e}");
        assert!(d.value() > 0.3 * e.value(), "but not absurdly small");
    }

    #[test]
    fn pi_model_conserves_capacitance() {
        let t = line();
        let (c_near, r, c_far) = t.pi_model();
        assert!((c_near.value() + c_far.value() - t.total_cap().value()).abs() < 1e-9);
        assert!(r.value() > 0.0);
    }

    #[test]
    fn out_of_range_sink_errors() {
        let t = line();
        assert!(t.elmore(99).is_err());
        assert!(t.d2m(99).is_err());
    }

    #[test]
    fn added_cap_increases_delay() {
        let mut t = line();
        let base = t.elmore(2).unwrap();
        t.add_cap(2, Ff::new(5.0));
        assert!(t.elmore(2).unwrap() > base);
    }
}

#[cfg(test)]
mod proptests {
    //! Randomized invariants driven by the in-tree deterministic RNG.

    use super::*;
    use tc_core::rng::Rng;

    /// Brute-force Elmore: for each sink, sum over all caps of the shared
    /// path resistance, computed by explicit path-set intersection.
    fn elmore_brute(tree: &RcTree, sink: usize) -> f64 {
        let n = tree.len();
        let path_of = |mut node: usize| -> Vec<usize> {
            let mut p = vec![node];
            while node != 0 {
                node = tree.parent[node];
                p.push(node);
            }
            p
        };
        let sink_path = path_of(sink);
        let mut total = 0.0;
        for k in 0..n {
            let k_path = path_of(k);
            // Shared resistance: edges on both root-paths.
            let mut shared_r = 0.0;
            for &node in &k_path {
                if node != 0 && sink_path.contains(&node) {
                    shared_r += tree.r_up[node].value();
                }
            }
            total += tree.cap[k].value() * shared_r;
        }
        total
    }

    fn random_tree(seed: u64, n: usize) -> RcTree {
        let mut rng = Rng::seed_from(seed);
        let mut t = RcTree::new(Ff::new(rng.uniform_in(0.1, 3.0)));
        for i in 1..n {
            let parent = rng.below(i);
            t.add_node(
                parent,
                Kohm::new(rng.uniform_in(0.05, 4.0)),
                Ff::new(rng.uniform_in(0.1, 6.0)),
            );
        }
        t
    }

    #[test]
    fn elmore_matches_brute_force() {
        for seed in 0..64 {
            let n = 2 + (seed as usize % 12);
            let t = random_tree(seed, n);
            for sink in 0..t.len() {
                let fast = t.elmore(sink).unwrap().value();
                let brute = elmore_brute(&t, sink);
                assert!(
                    (fast - brute).abs() < 1e-9 * (1.0 + brute.abs()),
                    "sink {sink}: {fast} vs {brute}"
                );
            }
        }
    }

    #[test]
    fn d2m_bounded_by_elmore_on_random_trees() {
        for seed in 100..164 {
            let n = 2 + (seed as usize % 12);
            let t = random_tree(seed, n);
            for sink in 1..t.len() {
                let e = t.elmore(sink).unwrap().value();
                let d = t.d2m(sink).unwrap().value();
                assert!(d <= e + 1e-9, "sink {sink}: d2m {d} > elmore {e}");
                assert!(d >= 0.0);
            }
        }
    }

    #[test]
    fn pi_model_conserves_total_cap() {
        for seed in 200..264 {
            let n = 2 + (seed as usize % 12);
            let t = random_tree(seed, n);
            let (c_near, r, c_far) = t.pi_model();
            assert!((c_near.value() + c_far.value() - t.total_cap().value()).abs() < 1e-6);
            assert!(r.value() >= 0.0);
        }
    }
}
