//! Useful-skew optimization: greedy, STA-in-the-loop leaf-latency
//! adjustment.
//!
//! Delaying a capture flop's clock buys its incoming (setup-critical)
//! path time at the expense of paths it launches — "borrowing" slack
//! across register boundaries. This is the last fix in the classic
//! ordering of Fig 1 and a key lever in the MCMM skew-variation work of
//! ref \[10\]. The implementation is deliberately conservative: one move
//! at a time, kept only if the design's WNS improves, so it can never
//! regress timing (ping-pong protection, §2.3).

use tc_core::error::Result;
use tc_core::units::Ps;
use tc_interconnect::BeolStack;
use tc_liberty::Library;
use tc_netlist::Netlist;
use tc_sta::{Constraints, Endpoint, Sta};

/// Outcome of the optimization.
#[derive(Clone, Debug)]
pub struct UsefulSkewResult {
    /// WNS before any move.
    pub wns_before: Ps,
    /// WNS after the accepted moves.
    pub wns_after: Ps,
    /// Accepted (flop, delta) moves.
    pub moves: Vec<(tc_core::ids::CellId, Ps)>,
    /// The adjusted constraint set (clock tree updated).
    pub constraints: Constraints,
}

/// Greedily skews the capture clocks of the worst setup endpoints.
///
/// Each trial delays the worst violating endpoint's flop clock by
/// `step`; the move is kept only if WNS improves and no hold violation
/// is created.
///
/// # Errors
///
/// Propagates STA failures.
pub fn optimize_useful_skew(
    nl: &Netlist,
    lib: &Library,
    stack: &BeolStack,
    cons: &Constraints,
    max_moves: usize,
    step: Ps,
) -> Result<UsefulSkewResult> {
    let mut cons = cons.clone();
    let base = Sta::new(nl, lib, stack, &cons).run()?;
    let wns_before = base.wns();
    let mut cur_wns = wns_before;
    let hold_floor = base.hold_wns();
    let mut moves = Vec::new();
    // Plateau handling: many endpoints often sit within a step of the
    // WNS. A single move then fixes one endpoint without moving the
    // design WNS; keep working the plateau (accept WNS-neutral moves
    // that improve their own endpoint) but never touch the same flop
    // twice without global progress.
    let mut tried: std::collections::HashSet<tc_core::ids::CellId> =
        std::collections::HashSet::new();

    for _ in 0..max_moves {
        let report = Sta::new(nl, lib, stack, &cons).run()?;
        if report.wns() >= Ps::ZERO {
            break;
        }
        // The worst endpoint whose flop we have not yet tried this
        // plateau.
        let Some((flop, own_slack)) = report
            .worst_endpoints(report.endpoints.len())
            .iter()
            .find_map(|e| match e.endpoint {
                Endpoint::FlopD(f) if !tried.contains(&f) => Some((f, e.setup_slack)),
                _ => None,
            })
        else {
            break;
        };
        tried.insert(flop);
        let mut trial = cons.clone();
        trial.clock_tree.skew_by(flop, step);
        let after = Sta::new(nl, lib, stack, &trial).run()?;
        let own_after = after
            .endpoints
            .iter()
            .find(|e| e.endpoint == Endpoint::FlopD(flop))
            .map(|e| e.setup_slack)
            .unwrap_or(own_slack);
        let no_regress = after.wns() >= cur_wns - Ps::new(1e-9);
        let hold_safe = after.hold_wns() >= hold_floor.min(Ps::ZERO);
        if no_regress && hold_safe && own_after > own_slack {
            if after.wns() > cur_wns + Ps::new(1e-9) {
                // Global progress: the plateau moved; retry everyone.
                tried.clear();
            }
            cur_wns = after.wns();
            cons = trial;
            moves.push((flop, step));
        }
    }

    Ok(UsefulSkewResult {
        wns_before,
        wns_after: cur_wns,
        moves,
        constraints: cons,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use tc_core::ids::NetId;
    use tc_device::VtClass;
    use tc_liberty::{LibConfig, PvtCorner};

    /// A 2-stage pipeline with an unbalanced middle: ff0 → 6 gates → ff1
    /// → 1 gate → ff2. Skewing ff1 later borrows time for the long first
    /// stage from the short second stage.
    fn unbalanced(lib: &Library) -> Netlist {
        let mut nl = Netlist::new("unbalanced");
        let clk = nl.add_input("clk");
        let d0 = nl.add_input("d0");
        let dff = lib.variant("DFF", VtClass::Svt, 1.0).unwrap();
        let inv = lib.variant("INV", VtClass::Svt, 1.0).unwrap();
        let (_, q0) = nl.add_cell("ff0", lib, dff, &[d0, clk]).unwrap();
        let mut net = q0;
        for i in 0..6 {
            let (_, o) = nl.add_cell(format!("a{i}"), lib, inv, &[net]).unwrap();
            net = o;
        }
        let (_, q1) = nl.add_cell("ff1", lib, dff, &[net, clk]).unwrap();
        let (_, o) = nl.add_cell("b0", lib, inv, &[q1]).unwrap();
        let (_, _q2) = nl.add_cell("ff2", lib, dff, &[o, clk]).unwrap();
        for i in 0..nl.net_count() {
            nl.set_wire_length(NetId::new(i), 8.0);
        }
        nl
    }

    #[test]
    fn skew_borrows_slack_across_the_boundary() {
        let lib = Library::generate(&LibConfig::default(), &PvtCorner::typical());
        let nl = unbalanced(&lib);
        let stack = BeolStack::n20();
        // Pick a period that makes the long stage violate by ~15 ps:
        // measure slack at a relaxed period, then shave it off.
        let probe = Constraints::single_clock(600.0);
        let r = Sta::new(&nl, &lib, &stack, &probe).run().unwrap();
        let period = 600.0 - r.wns().value() - 15.0;
        assert!(period > 0.0, "probe period underflow");
        let cons = Constraints::single_clock(period);
        let res = optimize_useful_skew(&nl, &lib, &stack, &cons, 8, Ps::new(8.0)).unwrap();
        assert!(
            res.wns_after > res.wns_before,
            "useful skew must improve WNS: {} → {}",
            res.wns_before,
            res.wns_after
        );
        assert!(!res.moves.is_empty());
    }

    #[test]
    fn no_moves_when_timing_is_clean() {
        let lib = Library::generate(&LibConfig::default(), &PvtCorner::typical());
        let nl = unbalanced(&lib);
        let stack = BeolStack::n20();
        let cons = Constraints::single_clock(2_000.0);
        let res = optimize_useful_skew(&nl, &lib, &stack, &cons, 5, Ps::new(8.0)).unwrap();
        // Clean timing: the greedy loop may take zero or a few no-harm
        // moves but must never regress.
        assert!(res.wns_after >= res.wns_before);
    }
}
