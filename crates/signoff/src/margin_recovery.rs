//! Margin recovery with flexible flip-flop timing — ref \[23\] (§3.4).
//!
//! Conventional signoff charges every flop its fixed characterized
//! (setup, c2q) pair. But the two trade off smoothly
//! ([`tc_liberty::InterdepModel`]): letting a setup-critical *incoming*
//! path squeeze the setup window pushes the flop's c2q out, spending
//! slack on the *outgoing* path. When the outgoing path has slack to
//! spare, the exchange is free margin. The paper reports worst-slack
//! gains up to ~130 ps at 65 nm from a sequential optimization of this
//! tradeoff; this module implements that optimization on a population of
//! flop boundaries.

use tc_core::units::Ps;
use tc_liberty::InterdepModel;

/// One flop with its incoming and outgoing worst slacks, as conventional
/// (fixed-timing) STA reported them.
#[derive(Clone, Debug)]
pub struct FlopBoundary {
    /// Flop label (diagnostics).
    pub name: String,
    /// Worst setup slack of paths *ending* at this flop, ps.
    pub slack_in: Ps,
    /// Worst setup slack of paths *launched* by this flop, ps.
    pub slack_out: Ps,
    /// The flop's interdependent timing surface.
    pub interdep: InterdepModel,
    /// The conventional characterization pushout (e.g. 1.10).
    pub char_pushout: f64,
}

/// Result of optimizing one boundary.
#[derive(Clone, Debug)]
pub struct BoundaryResult {
    /// Setup-window reduction applied (ps of setup requirement given
    /// back to the incoming path).
    pub setup_credit: Ps,
    /// c2q pushout charged to the outgoing path, ps.
    pub c2q_cost: Ps,
    /// min(slack_in, slack_out) before.
    pub before: Ps,
    /// min(slack_in, slack_out) after.
    pub after: Ps,
}

/// Whole-design recovery summary.
#[derive(Clone, Debug)]
pub struct RecoveryResult {
    /// Per-boundary outcomes.
    pub boundaries: Vec<BoundaryResult>,
    /// Design worst slack before.
    pub wns_before: Ps,
    /// Design worst slack after.
    pub wns_after: Ps,
}

impl RecoveryResult {
    /// Worst-slack improvement.
    pub fn gain(&self) -> Ps {
        self.wns_after - self.wns_before
    }
}

/// Optimizes one boundary: sweep the setup squeeze `δ`, charging the
/// exact c2q pushout from the surface, and keep the `δ` maximizing the
/// boundary's min slack.
fn optimize_boundary(b: &FlopBoundary) -> BoundaryResult {
    let s_char = b.interdep.setup_at_pushout(b.char_pushout);
    let c2q_char = b.interdep.c2q_at(s_char, Ps::new(500.0)).value();
    let before = b.slack_in.min(b.slack_out);

    let mut best = BoundaryResult {
        setup_credit: Ps::ZERO,
        c2q_cost: Ps::ZERO,
        before,
        after: before,
    };
    // Sweep the squeeze in 1 ps steps; the exponential c2q wall bounds
    // the useful range well inside 100 ps.
    for step in 1..=100 {
        let delta = step as f64;
        let s_new = s_char - Ps::new(delta);
        let c2q_new = b.interdep.c2q_at(s_new, Ps::new(500.0)).value();
        let cost = c2q_new - c2q_char;
        // Incoming path gains the setup reduction; outgoing path pays
        // the c2q pushout.
        let slack_in = b.slack_in + Ps::new(delta);
        let slack_out = b.slack_out - Ps::new(cost);
        let after = slack_in.min(slack_out);
        if after > best.after {
            best = BoundaryResult {
                setup_credit: Ps::new(delta),
                c2q_cost: Ps::new(cost),
                before,
                after,
            };
        }
    }
    best
}

/// Runs recovery over a population of boundaries (each flop optimized
/// independently, as in the sequential per-corner pass of \[23\]).
pub fn recover_margin(boundaries: &[FlopBoundary]) -> RecoveryResult {
    let results: Vec<BoundaryResult> = boundaries.iter().map(optimize_boundary).collect();
    let wns_before = results
        .iter()
        .map(|r| r.before)
        .fold(Ps::new(f64::INFINITY), Ps::min);
    let wns_after = results
        .iter()
        .map(|r| r.after)
        .fold(Ps::new(f64::INFINITY), Ps::min);
    RecoveryResult {
        boundaries: results,
        wns_before,
        wns_after,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn boundary(slack_in: f64, slack_out: f64) -> FlopBoundary {
        FlopBoundary {
            name: "ff".into(),
            slack_in: Ps::new(slack_in),
            slack_out: Ps::new(slack_out),
            interdep: InterdepModel::typical_65nm(),
            char_pushout: 1.10,
        }
    }

    #[test]
    fn recovery_moves_slack_from_rich_to_poor() {
        // Incoming path violates by 30 ps; outgoing has 120 ps to spare.
        let r = recover_margin(&[boundary(-30.0, 120.0)]);
        assert!(
            r.gain().value() > 15.0,
            "should recover much of the violation: {}",
            r.gain()
        );
        let b = &r.boundaries[0];
        assert!(b.setup_credit > Ps::ZERO);
        assert!(b.c2q_cost > Ps::ZERO);
        // The outgoing path never becomes the new WNS below the gain.
        assert!(b.after > b.before);
    }

    #[test]
    fn no_recovery_when_outgoing_is_also_critical() {
        let r = recover_margin(&[boundary(-30.0, -25.0)]);
        assert!(
            r.gain().value() < 6.0,
            "both sides critical ⇒ little to trade: {}",
            r.gain()
        );
    }

    #[test]
    fn no_change_when_timing_is_comfortable() {
        let r = recover_margin(&[boundary(80.0, 90.0)]);
        // Optimizer may still balance, but WNS gain is bounded by the
        // c2q exchange rate and never negative.
        assert!(r.gain().value() >= 0.0);
        assert_eq!(r.wns_before, Ps::new(80.0));
    }

    #[test]
    fn population_wns_is_gated_by_worst_boundary() {
        let r = recover_margin(&[
            boundary(-30.0, 120.0),
            boundary(-80.0, -10.0), // hard case: little room
            boundary(10.0, 40.0),
        ]);
        assert_eq!(r.boundaries.len(), 3);
        assert!(r.wns_after >= r.wns_before);
        assert!(r.wns_after.value() < 0.0, "hard boundary still gates");
    }

    #[test]
    fn paper_scale_gain_is_reachable() {
        // A strongly unbalanced boundary population (the 65 nm case of
        // [23]) recovers on the order of tens of ps up to ~130 ps.
        let mut interdep = InterdepModel::typical_65nm();
        interdep.tau_s = 30.0; // shallow wall: generous trade region
        let b = FlopBoundary {
            name: "deep".into(),
            slack_in: Ps::new(-130.0),
            slack_out: Ps::new(400.0),
            interdep,
            char_pushout: 1.10,
        };
        let r = recover_margin(&[b]);
        assert!(
            r.gain().value() >= 35.0,
            "large unbalanced boundary: {}",
            r.gain()
        );
    }
}
