//! Hierarchical wall-clock spans.
//!
//! A span is opened with [`span`] and closed when the returned guard
//! drops. Nesting is tracked per thread: a span opened while another is
//! live on the same thread aggregates under the parent's path, joined
//! with `/` — e.g. `closure.iteration/sta.gba`. Timing uses
//! [`Instant`], so it is monotonic and immune to wall-clock steps.

use std::cell::RefCell;
use std::time::Instant;

use crate::registry::{is_enabled, record_span};

thread_local! {
    static SPAN_STACK: RefCell<Vec<String>> = const { RefCell::new(Vec::new()) };
}

struct ActiveSpan {
    path: String,
    start: Instant,
}

/// RAII guard for an open span; records elapsed time on drop.
///
/// While instrumentation is disabled this is an empty struct and the
/// drop is a no-op.
#[must_use = "a span measures the scope of its guard — bind it with `let _span = ...`"]
pub struct SpanGuard(Option<ActiveSpan>);

impl SpanGuard {
    /// The full `/`-joined path this guard records under, if live.
    pub fn path(&self) -> Option<&str> {
        self.0.as_ref().map(|a| a.path.as_str())
    }
}

/// Opens a span named `name` under the current thread's innermost open
/// span (if any).
pub fn span(name: &str) -> SpanGuard {
    if !is_enabled() {
        return SpanGuard(None);
    }
    let path = SPAN_STACK.with(|stack| {
        let mut stack = stack.borrow_mut();
        let path = match stack.last() {
            Some(parent) => format!("{parent}/{name}"),
            None => name.to_string(),
        };
        stack.push(path.clone());
        path
    });
    SpanGuard(Some(ActiveSpan {
        path,
        start: Instant::now(),
    }))
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(active) = self.0.take() {
            let elapsed = active.start.elapsed();
            SPAN_STACK.with(|stack| {
                let mut stack = stack.borrow_mut();
                // Guards normally drop LIFO; tolerate out-of-order drops
                // (e.g. guards stored in structs) by removing by value.
                if stack.last() == Some(&active.path) {
                    stack.pop();
                } else if let Some(pos) = stack.iter().rposition(|p| p == &active.path) {
                    stack.remove(pos);
                }
            });
            record_span(&active.path, elapsed);
        }
    }
}
