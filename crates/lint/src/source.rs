//! Structural-Verilog source scan: connectivity rules the netlist data
//! structure cannot even represent.
//!
//! The SoA [`tc_netlist::Netlist`] mints a fresh output net per cell and
//! validates single drivers, so a multi-driven or undriven net can never
//! exist *after* ingest — `parse_verilog` rejects such files outright
//! with a bare "duplicate net" / "not found" error. Admission control
//! wants more than rejection: this pass scans the source text itself,
//! statement by statement (same `;`-splitting and line accounting as the
//! real parser), and reports *positioned* findings naming every driver
//! of the offending net, before any parse is attempted.
//!
//! The scan is master-agnostic: it follows the workspace convention that
//! `.Y(net)` is the (single) output connection of an instance and every
//! other connection is an input. It never allocates more than the
//! per-net connection table — O(nets + connections) for any input size.

use std::collections::HashMap;

use crate::diag::{finding, Diagnostic};

/// Everything the scan learned about one net name.
#[derive(Default)]
struct NetUse {
    /// Line of the `input` declaration, if any.
    declared_input: Option<usize>,
    /// Line of the `output` declaration, if any.
    declared_output: Option<usize>,
    /// Output-pin connections: `(instance name, line)`.
    drivers: Vec<(String, usize)>,
    /// Line of the first input-pin reference, and total count.
    first_sink: Option<usize>,
    sink_count: usize,
}

/// Scans structural-Verilog text for connectivity defects.
///
/// Emits `TCL0102` for every net with more than one driver (two `.Y`
/// connections, or a `.Y` onto a declared `input`), positioned at the
/// extra driver, and `TCL0103` for every net that is referenced by an
/// input pin or `output` declaration but never driven, positioned at the
/// first reference. `label` names the stream in the findings
/// (`design.v`).
pub fn lint_verilog_source(text: &str, label: &str) -> Vec<Diagnostic> {
    let mut order: Vec<String> = Vec::new();
    let mut uses: HashMap<String, usize> = HashMap::new();
    let mut slots: Vec<NetUse> = Vec::new();
    let mut slot = |name: &str, order: &mut Vec<String>, slots: &mut Vec<NetUse>| -> usize {
        if let Some(&i) = uses.get(name) {
            return i;
        }
        let i = slots.len();
        uses.insert(name.to_string(), i);
        order.push(name.to_string());
        slots.push(NetUse::default());
        i
    };

    // Statement accumulation mirrors `parse_verilog_from`: strip `//`
    // comments, join continuation lines, split on `;`, and remember the
    // line each statement began on.
    let mut buf = String::new();
    let mut stmt_line = 1usize;
    let mut statements: Vec<(usize, String)> = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let lineno = i + 1;
        let code = raw.split("//").next().unwrap_or("").trim_end();
        if buf.is_empty() {
            stmt_line = lineno;
        } else {
            buf.push(' ');
        }
        buf.push_str(code);
        while let Some(pos) = buf.find(';') {
            statements.push((stmt_line, buf[..pos].to_string()));
            buf.drain(..=pos);
            stmt_line = lineno;
        }
    }
    if !buf.trim().is_empty() {
        statements.push((stmt_line, std::mem::take(&mut buf)));
    }

    for (line, stmt) in &statements {
        let line = *line;
        let stmt = stmt.trim();
        if stmt.is_empty() || stmt == "endmodule" || stmt.starts_with("module ") {
            continue;
        }
        if let Some(rest) = stmt.strip_prefix("input ") {
            for n in rest.split(',') {
                let n = n.trim();
                if !n.is_empty() {
                    let s = slot(n, &mut order, &mut slots);
                    slots[s].declared_input.get_or_insert(line);
                }
            }
        } else if let Some(rest) = stmt.strip_prefix("output ") {
            for n in rest.split(',') {
                let n = n.trim();
                if !n.is_empty() {
                    let s = slot(n, &mut order, &mut slots);
                    slots[s].declared_output.get_or_insert(line);
                }
            }
        } else if stmt.strip_prefix("wire ").is_some() {
            // Wires are implied by drivers; the declaration adds nothing.
        } else if let Some(open) = stmt.find('(') {
            // Instance: `MASTER name (.PIN(net), ...)`.
            let inst = stmt[..open]
                .split_whitespace()
                .nth(1)
                .unwrap_or("?")
                .to_string();
            let close = match stmt.rfind(')') {
                Some(c) if c > open => c,
                _ => stmt.len(),
            };
            for conn in stmt[open + 1..close].split(',') {
                let conn = conn.trim().trim_start_matches('.');
                let Some((pin, net)) = conn.split_once('(') else {
                    continue; // malformed connection: the parser's problem
                };
                let net = net.trim_end_matches(')').trim();
                if net.is_empty() {
                    continue;
                }
                let s = slot(net, &mut order, &mut slots);
                if pin.trim() == "Y" {
                    slots[s].drivers.push((inst.clone(), line));
                } else {
                    slots[s].first_sink.get_or_insert(line);
                    slots[s].sink_count += 1;
                }
            }
        }
    }

    let mut out = Vec::new();
    for name in &order {
        let u = &slots[uses[name]];
        let from_input = usize::from(u.declared_input.is_some());
        if u.drivers.len() + from_input > 1 {
            // Position at the first *extra* driver; name them all.
            let extra = &u.drivers[usize::from(from_input == 0)];
            let mut who: Vec<String> = u
                .drivers
                .iter()
                .map(|(i, l)| format!("{i}.Y (line {l})"))
                .collect();
            if from_input == 1 {
                who.insert(
                    0,
                    format!("input declaration (line {})", u.declared_input.unwrap_or(0)),
                );
            }
            out.push(finding(
                "TCL0102",
                name.as_str(),
                format!("net has {} drivers: {}", who.len(), who.join(", ")),
                label,
                Some(extra.1),
            ));
        } else if u.drivers.is_empty() && u.declared_input.is_none() {
            let referenced = u.sink_count > 0 || u.declared_output.is_some();
            if referenced {
                let line = u.first_sink.or(u.declared_output);
                let what = if u.sink_count > 0 {
                    format!("referenced by {} input pin(s)", u.sink_count)
                } else {
                    "declared as an output port".to_string()
                };
                out.push(finding(
                    "TCL0103",
                    name.as_str(),
                    format!("net is never driven but {what}"),
                    label,
                    line,
                ));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const CLEAN: &str = "module t (a, y);\n  input a;\n  output y;\n\n  INV_X1_SVT u1 (.A(a), .Y(n1));\n  INV_X1_SVT u2 (.A(n1), .Y(y));\nendmodule\n";

    #[test]
    fn clean_text_scans_clean() {
        assert!(lint_verilog_source(CLEAN, "t.v").is_empty());
    }

    #[test]
    fn double_driver_is_positioned_at_the_extra_driver() {
        let text = CLEAN.replace("endmodule", "  INV_X1_SVT u3 (.A(a), .Y(n1));\nendmodule");
        let diags = lint_verilog_source(&text, "t.v");
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].code, "TCL0102");
        assert_eq!(diags[0].subject, "n1");
        assert_eq!(diags[0].line, Some(7));
        assert!(diags[0].message.contains("u1.Y"), "{}", diags[0].message);
        assert!(diags[0].message.contains("u3.Y"), "{}", diags[0].message);
    }

    #[test]
    fn driving_a_primary_input_is_multi_driver() {
        let text = CLEAN.replace(".Y(n1)", ".Y(a)").replace(".A(n1)", ".A(a)");
        let diags = lint_verilog_source(&text, "t.v");
        assert!(
            diags
                .iter()
                .any(|d| d.code == "TCL0102" && d.subject == "a"),
            "{diags:?}"
        );
    }

    #[test]
    fn undriven_reference_is_flagged_at_first_use() {
        let text = CLEAN.replace("  INV_X1_SVT u1 (.A(a), .Y(n1));\n", "");
        let diags = lint_verilog_source(&text, "t.v");
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].code, "TCL0103");
        assert_eq!(diags[0].subject, "n1");
        assert_eq!(diags[0].line, Some(5));
    }

    #[test]
    fn undriven_output_port_is_flagged() {
        let text = "module t (a, y);\n  input a;\n  output y;\n  INV_X1_SVT u1 (.A(a), .Y(n1));\nendmodule\n";
        let diags = lint_verilog_source(text, "t.v");
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].code, "TCL0103");
        assert_eq!(diags[0].subject, "y");
    }

    #[test]
    fn statements_spanning_lines_keep_their_start_line() {
        let text = "module t (a, y);\n  input a;\n  output y;\n  INV_X1_SVT u1\n    (.A(a),\n     .Y(y));\n  INV_X1_SVT u2 (.A(q), .Y(n2));\n  INV_X1_SVT u3 (.A(n2), .Y(n3));\nendmodule\n";
        let diags = lint_verilog_source(text, "t.v");
        // q undriven (line 7); n3 is driven-but-unloaded, which is the
        // graph pass's business, not the scan's.
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].subject, "q");
        assert_eq!(diags[0].line, Some(7));
    }
}
