//! §2.3 — gate-wire balance across supply voltage: gate delay collapses
//! with rising VDD while wire delay barely moves (the paper quotes
//! ~−50% gate vs ~−2% wire from 0.7 V to 1.2 V at 20 nm), so different
//! paths go critical at different corners and BEOL-corner dominance
//! flips between Cw (gate-dominated) and RCw (wire-dominated).

use tc_bench::{fmt, print_table};
use tc_core::units::{Celsius, Ff, Volt};
use tc_device::{MosDevice, MosKind, Technology, VtClass};
use tc_interconnect::beol::{BeolCorner, BeolStack};
use tc_interconnect::estimate::WireModel;

fn main() {
    let tech = Technology::finfet_16nm();
    let stack = BeolStack::n20();
    let temp = Celsius::new(25.0);
    let dev = MosDevice::new(MosKind::Nmos, VtClass::Svt, 1.0);

    // A 100 µm M3-class wire, per the paper's example.
    let wire = WireModel {
        length_um: 100.0,
        layer: 2,
        ndr: Default::default(),
    };
    let caps = [Ff::new(2.0)];
    let w_t = wire
        .timing(&stack, BeolCorner::Typical, None, &caps)
        .expect("wire timing");
    let wire_delay = w_t.sink_delays[0].value();

    let gate_delay = |v: f64| {
        let vdd = Volt::new(v);
        // Stage delay ∝ R_eff · C_load.
        dev.eff_resistance(&tech, vdd, temp).value() * 6.0
    };
    let g07 = gate_delay(0.7);
    let rows: Vec<Vec<String>> = [0.7, 0.8, 0.9, 1.0, 1.1, 1.2]
        .iter()
        .map(|&v| {
            let g = gate_delay(v);
            // Wire RC is voltage-independent (the ~2% the paper cites is
            // driver-resistance share; pure wire delay is flat).
            vec![
                fmt(v, 1),
                fmt(g, 2),
                fmt(100.0 * (g / g07 - 1.0), 1) + "%",
                fmt(wire_delay, 2),
                "0.0%".to_string(),
                fmt(g / (g + wire_delay), 2),
            ]
        })
        .collect();
    print_table(
        "Gate vs wire delay across supply voltage (100 µm M3 wire)",
        &[
            "VDD (V)",
            "gate (ps)",
            "Δgate vs 0.7V",
            "wire (ps)",
            "Δwire",
            "gate share",
        ],
        &rows,
    );
    println!("\n→ low V: paths gate-dominated (Cw BEOL corner dominates);");
    println!("  high V: wire share grows (RCw dominates). Corner pruning is hard (§2.3).");
}
