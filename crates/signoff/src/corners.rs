//! Corner enumeration and the "corner super-explosion" (§2.3).

use tc_core::error::Result;
use tc_interconnect::beol::{BeolCorner, BeolStack};
use tc_liberty::{ProcessCorner, PvtCorner};
use tc_netlist::Netlist;
use tc_sta::mcmm::{merge_reports, MergedReport, Scenario};

/// A functional or test mode.
#[derive(Clone, Debug, PartialEq)]
pub struct Mode {
    /// Mode name ("func", "scan_shift", "bist", "overdrive"…).
    pub name: String,
    /// Clock period of the mode, ps.
    pub period_ps: f64,
    /// Test modes get relaxed signoff but still need corners.
    pub is_test: bool,
}

impl Mode {
    /// A functional mode.
    pub fn functional(name: impl Into<String>, period_ps: f64) -> Self {
        Mode {
            name: name.into(),
            period_ps,
            is_test: false,
        }
    }

    /// A test mode.
    pub fn test(name: impl Into<String>, period_ps: f64) -> Self {
        Mode {
            name: name.into(),
            period_ps,
            is_test: true,
        }
    }
}

/// The cross product a full signoff must cover.
#[derive(Clone, Debug)]
pub struct CornerSpace {
    /// Functional/test modes.
    pub modes: Vec<Mode>,
    /// FEOL PVT corners.
    pub pvt: Vec<PvtCorner>,
    /// BEOL extraction corners.
    pub beol: Vec<BeolCorner>,
    /// Aging assumptions analyzed (fresh / end-of-life …).
    pub aging_points: usize,
    /// Independently-scalable voltage domains; asynchronous interfaces
    /// force cross-domain analyses growing with the pair count.
    pub voltage_domains: usize,
}

/// One enumerated analysis view.
#[derive(Clone, Debug, PartialEq)]
pub struct CornerPoint {
    /// Name, e.g. `func@SSG_0.81V_-30C@RCw`.
    pub name: String,
    /// Mode index.
    pub mode: usize,
    /// PVT corner.
    pub pvt: PvtCorner,
    /// BEOL corner.
    pub beol: BeolCorner,
}

impl CornerSpace {
    /// A 65 nm-era space: one mode pair, 3 PVTs, 3 BEOLs, no aging
    /// views, one domain — the "old game".
    pub fn n65_classic() -> Self {
        CornerSpace {
            modes: vec![
                Mode::functional("func", 1_250.0),
                Mode::test("scan", 5_000.0),
            ],
            pvt: vec![
                PvtCorner::typical(),
                PvtCorner::slow_cold(),
                PvtCorner::fast_cold(),
            ],
            beol: vec![BeolCorner::Typical, BeolCorner::CWorst, BeolCorner::CBest],
            aging_points: 1,
            voltage_domains: 1,
        }
    }

    /// A 16 nm SoC space: overdrive/underdrive modes, temperature
    /// inversion forcing hot+cold at low V, cross-corners for clocks,
    /// all seven BEOL corners, aging views, many domains.
    pub fn n16_soc() -> Self {
        use tc_core::units::{Celsius, Volt};
        let mut pvt = Vec::new();
        for &p in &[
            ProcessCorner::Ssg,
            ProcessCorner::Ffg,
            ProcessCorner::Tt,
            ProcessCorner::Sf,
            ProcessCorner::Fs,
        ] {
            for &v in &[0.72, 0.80, 0.90, 1.05] {
                for &t in &[-40.0, 25.0, 125.0] {
                    pvt.push(PvtCorner {
                        process: p,
                        voltage: Volt::new(v),
                        temperature: Celsius::new(t),
                    });
                }
            }
        }
        CornerSpace {
            modes: vec![
                Mode::functional("func_nominal", 800.0),
                Mode::functional("func_overdrive", 600.0),
                Mode::functional("func_underdrive", 1_600.0),
                Mode::test("scan_shift", 5_000.0),
                Mode::test("scan_atspeed", 800.0),
                Mode::test("bist", 1_000.0),
            ],
            pvt,
            beol: BeolCorner::ALL.to_vec(),
            aging_points: 2,
            voltage_domains: 8,
        }
    }

    /// Total analysis views before any pruning. Cross-domain interfaces
    /// add one view per ordered domain pair on top of the base product.
    pub fn count(&self) -> usize {
        let base = self.modes.len() * self.pvt.len() * self.beol.len() * self.aging_points;
        let cross = self.voltage_domains * self.voltage_domains.saturating_sub(1);
        base + cross * self.modes.iter().filter(|m| !m.is_test).count()
    }

    /// Enumerates the base product (without cross-domain views).
    pub fn enumerate(&self) -> Vec<CornerPoint> {
        let mut out = Vec::with_capacity(self.count());
        for (mi, m) in self.modes.iter().enumerate() {
            for &pvt in &self.pvt {
                for &beol in &self.beol {
                    out.push(CornerPoint {
                        name: format!("{}@{}@{}", m.name, pvt.label(), beol),
                        mode: mi,
                        pvt,
                        beol,
                    });
                }
            }
        }
        out
    }
}

/// Runs a full scenario set and merges the reports, with per-corner
/// observability: the whole sweep runs under a `signoff.corners` span,
/// each scenario under a `corner.<name>` child span, and the
/// `signoff.corners` counter tallies scenarios analyzed — the raw data
/// behind "how much of signoff is corner runtime" (§2.3).
///
/// All corners share one timing-graph structure (levelization and
/// sink-index maps are corner-invariant), so the per-corner cost is pure
/// propagation — see `tc_sta::mcmm::run_scenarios_shared`.
///
/// # Errors
///
/// Propagates the first failing scenario run.
pub fn run_corner_set(
    nl: &Netlist,
    stack: &BeolStack,
    scenarios: &[Scenario],
) -> Result<MergedReport> {
    run_corner_set_on(tc_par::Pool::from_env(), nl, stack, scenarios)
}

/// [`run_corner_set`] on an explicit worker pool (tests pin the worker
/// count this way instead of mutating `TC_PAR_THREADS`). Per-corner
/// `corner.<name>` spans keep their `signoff.corners` parent even when
/// the corner runs on a pool worker.
///
/// # Errors
///
/// Propagates the first failing scenario run.
pub fn run_corner_set_on(
    pool: tc_par::Pool,
    nl: &Netlist,
    stack: &BeolStack,
    scenarios: &[Scenario],
) -> Result<MergedReport> {
    let _span = tc_obs::span("signoff.corners");
    let reports = tc_sta::mcmm::run_scenarios_shared_on(pool, nl, stack, scenarios)?;
    tc_obs::counter("signoff.corners").add(scenarios.len() as u64);
    Ok(merge_reports(&reports))
}

/// Scenario pruning by dominance: keep only scenarios that are the worst
/// setup or hold corner for at least `min_endpoints` endpoints in a
/// merged MCMM report (a never-dominant corner adds runtime, not
/// coverage — §2.3's "pruning of corners is difficult" becomes a data
/// question).
pub fn prune_by_dominance(merged: &MergedReport, min_endpoints: usize) -> Vec<String> {
    use std::collections::HashMap;
    let mut wins: HashMap<&str, usize> = HashMap::new();
    for e in &merged.endpoints {
        // Endpoints with an unbounded check (e.g. hold at outputs) carry
        // no attribution; skip the empty name.
        if !e.setup.1.is_empty() {
            *wins.entry(e.setup.1.as_str()).or_insert(0) += 1;
        }
        if !e.hold.1.is_empty() {
            *wins.entry(e.hold.1.as_str()).or_insert(0) += 1;
        }
    }
    let mut keep: Vec<String> = wins
        .into_iter()
        .filter(|&(_, n)| n >= min_endpoints)
        .map(|(k, _)| k.to_string())
        .collect();
    keep.sort();
    keep
}

#[cfg(test)]
mod tests {
    use super::*;
    use tc_interconnect::BeolStack;
    use tc_liberty::{LibConfig, Library};
    use tc_netlist::gen::{generate, BenchProfile};
    use tc_sta::mcmm::{run_and_merge, Scenario};
    use tc_sta::Constraints;

    #[test]
    fn corner_counts_explode_across_nodes() {
        let old = CornerSpace::n65_classic();
        let new = CornerSpace::n16_soc();
        assert!(old.count() < 25, "65 nm: {}", old.count());
        assert!(
            new.count() > 40 * old.count(),
            "16 nm must explode: {} vs {}",
            new.count(),
            old.count()
        );
    }

    #[test]
    fn enumeration_matches_base_product() {
        let s = CornerSpace::n65_classic();
        let pts = s.enumerate();
        assert_eq!(pts.len(), 2 * 3 * 3);
        assert!(pts[0].name.contains('@'));
        // Names are unique.
        let mut names: Vec<&str> = pts.iter().map(|p| p.name.as_str()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), pts.len());
    }

    #[test]
    fn run_corner_set_merges_and_records_per_corner_spans() {
        let cfg = LibConfig::default();
        let lib_typ = Library::generate(&cfg, &PvtCorner::typical());
        let nl = generate(&lib_typ, BenchProfile::tiny(), 8).unwrap();
        let stack = BeolStack::n20();
        let scenarios = vec![
            Scenario {
                name: "typ".into(),
                lib: lib_typ.clone(),
                beol: BeolCorner::Typical,
                constraints: Constraints::single_clock(900.0),
            },
            Scenario {
                name: "slow".into(),
                lib: Library::generate(&cfg, &PvtCorner::slow_cold()),
                beol: BeolCorner::RcWorst,
                constraints: Constraints::single_clock(900.0),
            },
        ];
        tc_obs::enable();
        let merged = run_corner_set(&nl, &stack, &scenarios).unwrap();
        let expected = run_and_merge(&nl, &stack, &scenarios).unwrap();
        assert_eq!(merged.wns(), expected.wns());

        // Other tests in this process may record concurrently, so assert
        // presence and lower bounds rather than exact totals.
        let snap = tc_obs::snapshot();
        assert!(snap.counter("signoff.corners") >= scenarios.len() as u64);
        assert!(snap.span("signoff.corners").is_some());
        for name in ["typ", "slow"] {
            let path = format!("signoff.corners/corner.{name}");
            let s = snap.span(&path).unwrap_or_else(|| panic!("missing {path}"));
            assert!(s.count >= 1);
        }
    }

    #[test]
    fn degenerate_corner_does_not_poison_merged_wns() {
        use tc_core::ids::NetId;

        let cfg = LibConfig::default();
        let lib = Library::generate(&cfg, &PvtCorner::typical());
        // A design with no primary outputs: false-pathing every flop
        // leaves a corner with zero endpoints.
        let mut nl = tc_netlist::Netlist::new("no_po");
        let clk = nl.add_input("clk");
        let d0 = nl.add_input("d0");
        let dff = lib.variant("DFF", tc_device::VtClass::Svt, 1.0).unwrap();
        let inv = lib.variant("INV", tc_device::VtClass::Svt, 2.0).unwrap();
        let (_, q) = nl.add_cell("ff0", &lib, dff, &[d0, clk]).unwrap();
        let (_, x) = nl.add_cell("i0", &lib, inv, &[q]).unwrap();
        let (_, _q1) = nl.add_cell("ff1", &lib, dff, &[x, clk]).unwrap();
        for i in 0..nl.net_count() {
            nl.set_wire_length(NetId::new(i), 10.0);
        }

        let mut waived = Constraints::single_clock(900.0);
        for fid in nl.flops(&lib) {
            waived.exceptions.false_path_to(fid);
        }
        let scenarios = vec![
            Scenario {
                name: "ok".into(),
                lib: lib.clone(),
                beol: BeolCorner::Typical,
                constraints: Constraints::single_clock(900.0),
            },
            Scenario {
                name: "degenerate".into(),
                lib: lib.clone(),
                beol: BeolCorner::Typical,
                constraints: waived,
            },
        ];
        tc_obs::enable();
        let before = tc_obs::snapshot().counter("mcmm.empty_reports");
        let merged = run_corner_set(&nl, &BeolStack::n20(), &scenarios).unwrap();
        // The healthy corner's slacks survive untouched; the degenerate
        // corner contributes nothing and is counted, not propagated.
        assert!(merged.wns().value().is_finite());
        assert!(merged.endpoints.iter().all(|e| e.setup.1 == "ok"));
        assert!(tc_obs::snapshot().counter("mcmm.empty_reports") > before);
    }

    #[test]
    fn dominance_pruning_drops_covered_corners() {
        let cfg = LibConfig::default();
        let lib_typ = Library::generate(&cfg, &PvtCorner::typical());
        let nl = generate(&lib_typ, BenchProfile::tiny(), 6).unwrap();
        let stack = BeolStack::n20();
        let scenarios = vec![
            Scenario {
                name: "slow".into(),
                lib: Library::generate(&cfg, &PvtCorner::slow_cold()),
                beol: BeolCorner::RcWorst,
                constraints: Constraints::single_clock(900.0),
            },
            Scenario {
                name: "typ".into(),
                lib: lib_typ.clone(),
                beol: BeolCorner::Typical,
                constraints: Constraints::single_clock(900.0),
            },
            Scenario {
                name: "fast".into(),
                lib: Library::generate(&cfg, &PvtCorner::fast_cold()),
                beol: BeolCorner::CBest,
                constraints: Constraints::single_clock(900.0),
            },
        ];
        let merged = run_and_merge(&nl, &stack, &scenarios).unwrap();
        let kept = prune_by_dominance(&merged, 3);
        // The slow corner must survive (it dominates setup), and the
        // typical corner should be pruned (dominated on both checks).
        assert!(kept.contains(&"slow".to_string()));
        assert!(!kept.contains(&"typ".to_string()), "kept: {kept:?}");
    }
}
