//! The lint engine: a rule registry driven in parallel over a
//! [`LintContext`], with deterministic output ordering and `lint.*`
//! telemetry.
//!
//! Each rule is a pure function of the context; rules never see each
//! other's findings, so [`tc_par::Pool::scope_map`] can run them
//! concurrently and the engine flattens results in fixed rule-registry
//! order — the report is byte-identical at any thread count.

use tc_interconnect::spef::NetParasitics;
use tc_liberty::Library;
use tc_netlist::{JournalCmd, Netlist};
use tc_obs as obs;
use tc_par::Pool;
use tc_sta::constraints::Constraints;

use crate::diag::Diagnostic;
use crate::{graph_rules, liberty_check, source};

/// Everything a lint run may look at. Optional surfaces simply skip the
/// rules that need them; the netlist+library pair is the only required
/// input.
pub struct LintContext<'a> {
    /// The design under analysis.
    pub netlist: &'a Netlist,
    /// The library its masters resolve against.
    pub library: &'a Library,
    /// Timing constraints; `None` skips the 02xx rules entirely
    /// (distinct from "constraints present but empty", which is the
    /// `TCL0201` finding).
    pub constraints: Option<&'a Constraints>,
    /// Parsed SPEF annotation; `None` skips the 03xx cross-check.
    pub spef: Option<&'a [NetParasitics]>,
    /// Raw structural-Verilog text and its label, for the source rules
    /// the built netlist cannot express.
    pub verilog: Option<(&'a str, &'a str)>,
    /// Raw Liberty text and its label, for the 04xx table rules.
    pub liberty: Option<(&'a str, &'a str)>,
    /// Decoded ECO journal; `None` skips `TCL0501`.
    pub journal: Option<&'a [JournalCmd]>,
}

impl<'a> LintContext<'a> {
    /// A context with only the required design inputs; attach optional
    /// surfaces by assigning the public fields.
    pub fn new(netlist: &'a Netlist, library: &'a Library) -> Self {
        LintContext {
            netlist,
            library,
            constraints: None,
            spef: None,
            verilog: None,
            liberty: None,
            journal: None,
        }
    }
}

/// One registered pass: a telemetry name plus the function that runs it.
struct Pass {
    /// Span leaf name (`lint.rule.<name>`).
    name: &'static str,
    run: fn(&LintContext<'_>) -> Vec<Diagnostic>,
}

/// Fixed pass registry. Output order of [`run_lint`] follows this
/// order, regardless of which pass finishes first.
const PASSES: &[Pass] = &[
    Pass {
        name: "source",
        run: |ctx| match ctx.verilog {
            Some((text, label)) => source::lint_verilog_source(text, label),
            None => Vec::new(),
        },
    },
    Pass {
        name: "cycles",
        run: |ctx| graph_rules::check_cycles(ctx.netlist, ctx.library),
    },
    Pass {
        name: "dangling",
        run: |ctx| graph_rules::check_dangling(ctx.netlist),
    },
    Pass {
        name: "constraints",
        run: |ctx| match ctx.constraints {
            Some(cons) => graph_rules::check_constraints(ctx.netlist, ctx.library, cons),
            None => Vec::new(),
        },
    },
    Pass {
        name: "spef",
        run: |ctx| match ctx.spef {
            Some(spef) => graph_rules::check_spef(ctx.netlist, spef),
            None => Vec::new(),
        },
    },
    Pass {
        name: "liberty",
        run: |ctx| match ctx.liberty {
            Some((text, label)) => liberty_check::lint_liberty_source(text, label),
            None => Vec::new(),
        },
    },
    Pass {
        name: "journal",
        run: |ctx| match ctx.journal {
            Some(cmds) => graph_rules::check_journal(ctx.netlist, ctx.library, cmds),
            None => Vec::new(),
        },
    },
];

/// Runs every registered pass over `ctx` on `pool` and returns the
/// findings in registry order (and, within a pass, in that pass's own
/// deterministic order).
///
/// Telemetry (when [`tc_obs::enable`] is armed): the whole run under a
/// `lint.run` span, each pass under `lint.rule.<name>`, and counters
/// `lint.findings` / `lint.errors` / `lint.warnings`.
pub fn run_lint(pool: &Pool, ctx: &LintContext<'_>) -> Vec<Diagnostic> {
    let _run = obs::span("lint.run");
    let per_pass: Vec<Vec<Diagnostic>> = pool.scope_map(PASSES, |_, pass| {
        let _s = obs::span(&format!("lint.rule.{}", pass.name));
        (pass.run)(ctx)
    });
    let mut out: Vec<Diagnostic> = per_pass.into_iter().flatten().collect();
    // Pass order is already deterministic; keep it, but make the
    // invariant explicit for any future pass that interleaves surfaces.
    let mut errors = 0u64;
    let mut warnings = 0u64;
    for d in &out {
        match d.severity {
            crate::diag::Severity::Error => errors += 1,
            crate::diag::Severity::Warning => warnings += 1,
        }
    }
    obs::counter("lint.findings").add(out.len() as u64);
    obs::counter("lint.errors").add(errors);
    obs::counter("lint.warnings").add(warnings);
    out.shrink_to_fit();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use tc_core::ids::NetId;
    use tc_liberty::{LibConfig, PvtCorner};
    use tc_netlist::gen::{generate, BenchProfile};

    fn lib() -> Library {
        Library::generate(&LibConfig::default(), &PvtCorner::typical())
    }

    /// Generated designs legitimately leave some gate outputs unloaded;
    /// mark them as observed so "clean" means clean.
    fn tie_off(nl: &mut Netlist) {
        let dangling: Vec<NetId> = nl
            .nets()
            .enumerate()
            .filter(|(_, n)| n.driver.is_some() && n.sinks.is_empty() && !n.is_output)
            .map(|(i, _)| NetId::new(i))
            .collect();
        for n in dangling {
            nl.mark_output(n);
        }
    }

    #[test]
    fn clean_generated_design_lints_clean() {
        let lib = lib();
        let mut nl = generate(&lib, BenchProfile::c5315(), 7).unwrap();
        tie_off(&mut nl);
        let cons = Constraints::single_clock(500.0);
        let mut ctx = LintContext::new(&nl, &lib);
        ctx.constraints = Some(&cons);
        let diags = run_lint(&Pool::sequential(), &ctx);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn results_are_identical_across_thread_counts() {
        let lib = lib();
        let nl = generate(&lib, BenchProfile::c5315(), 7).unwrap();
        let mut cons = Constraints::single_clock(500.0);
        cons.clocks.clear();
        let mut ctx = LintContext::new(&nl, &lib);
        ctx.constraints = Some(&cons);
        let seq = run_lint(&Pool::sequential(), &ctx);
        let par = run_lint(&Pool::new(4), &ctx);
        assert_eq!(seq, par);
        assert!(seq.iter().any(|d| d.code == "TCL0201"));
    }

    #[test]
    fn telemetry_counts_findings_by_severity() {
        obs::enable();
        let lib = lib();
        let nl = generate(&lib, BenchProfile::c5315(), 7).unwrap();
        let mut cons = Constraints::single_clock(500.0);
        cons.clocks.clear();
        let mut ctx = LintContext::new(&nl, &lib);
        ctx.constraints = Some(&cons);
        let before = obs::snapshot().counter("lint.errors");
        let diags = run_lint(&Pool::sequential(), &ctx);
        let snap = obs::snapshot();
        let errors = diags
            .iter()
            .filter(|d| d.severity == crate::diag::Severity::Error)
            .count() as u64;
        assert!(errors >= 1);
        assert_eq!(snap.counter("lint.errors") - before, errors);
        assert!(snap.span("lint.run").is_some());
    }
}
