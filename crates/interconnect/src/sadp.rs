//! Self-aligned double patterning (SADP) variability — the paper's
//! **Figure 5** (§2.2).
//!
//! In SID ("spacer is dielectric") SADP, a wire's two edges may each be
//! defined by a mandrel edge, a spacer edge, or a block-mask edge. Which
//! combination a wire gets depends on its track assignment, and each
//! combination has a different critical-dimension variance — Fig 5(c)'s
//! four formulas, implemented verbatim in
//! [`PatterningSolution::cd_variance`]. Cut-mask restrictions additionally
//! force line-end extensions and floating fill wires (Fig 5(b)), modeled
//! here as capacitance adders.

use tc_core::rng::Rng;

/// Process sigmas of the SADP flow's primitive patterning steps, in nm.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SadpProcess {
    /// Mandrel CD sigma σM.
    pub sigma_mandrel: f64,
    /// Spacer thickness sigma σS.
    pub sigma_spacer: f64,
    /// Block (cut) mask CD sigma σB.
    pub sigma_block: f64,
    /// Mandrel-to-block overlay sigma σM−B.
    pub sigma_mandrel_block: f64,
}

impl SadpProcess {
    /// A 10 nm-node-flavoured calibration.
    pub fn n10() -> Self {
        SadpProcess {
            sigma_mandrel: 1.0,
            sigma_spacer: 0.6,
            sigma_block: 1.4,
            sigma_mandrel_block: 1.2,
        }
    }
}

/// The four SID-SADP patterning solutions of Fig 5(c).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum PatterningSolution {
    /// (i) Both line edges defined by mandrel edges: σ² = σ²M.
    MandrelMandrel,
    /// (ii) Both edges defined by spacer edges: σ² = σ²M + 2σ²S.
    SpacerSpacer,
    /// (iii) One mandrel edge, one block edge:
    /// σ² = (0.5σM)² + σ²M−B + (0.5σB)².
    MandrelBlock,
    /// (iv) One spacer edge, one block edge:
    /// σ² = (0.5σM)² + σ²S + σ²M−B + (0.5σB)².
    SpacerBlock,
}

impl PatterningSolution {
    /// All four solutions in Fig 5(c) order.
    pub const ALL: [PatterningSolution; 4] = [
        PatterningSolution::MandrelMandrel,
        PatterningSolution::SpacerSpacer,
        PatterningSolution::MandrelBlock,
        PatterningSolution::SpacerBlock,
    ];

    /// CD variance σ² in nm², per the paper's formulas.
    pub fn cd_variance(self, p: &SadpProcess) -> f64 {
        let m2 = p.sigma_mandrel * p.sigma_mandrel;
        let s2 = p.sigma_spacer * p.sigma_spacer;
        let b2 = p.sigma_block * p.sigma_block;
        let mb2 = p.sigma_mandrel_block * p.sigma_mandrel_block;
        match self {
            PatterningSolution::MandrelMandrel => m2,
            PatterningSolution::SpacerSpacer => m2 + 2.0 * s2,
            PatterningSolution::MandrelBlock => 0.25 * m2 + mb2 + 0.25 * b2,
            PatterningSolution::SpacerBlock => 0.25 * m2 + s2 + mb2 + 0.25 * b2,
        }
    }

    /// CD sigma in nm.
    pub fn cd_sigma(self, p: &SadpProcess) -> f64 {
        self.cd_variance(p).sqrt()
    }

    /// The solution a wire on the given routing track receives in a
    /// regular SID scheme: mandrel tracks alternate with gap tracks; line
    /// ends (signalled by `cut_adjacent`) involve the block mask.
    pub fn for_track(track: usize, cut_adjacent: bool) -> Self {
        match (track.is_multiple_of(2), cut_adjacent) {
            (true, false) => PatterningSolution::MandrelMandrel,
            (false, false) => PatterningSolution::SpacerSpacer,
            (true, true) => PatterningSolution::MandrelBlock,
            (false, true) => PatterningSolution::SpacerBlock,
        }
    }
}

/// Capacitance side-effects of cut-mask restrictions (Fig 5(b)).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CutMaskEffects {
    /// Line-end extension length forced by rectangular cut shapes, nm.
    pub line_end_extension_nm: f64,
    /// Probability that a floating fill wire lands adjacent to a given
    /// net segment.
    pub fill_adjacency_prob: f64,
    /// Effective coupling-capacitance increase from an adjacent floating
    /// fill wire (fraction of nominal cc).
    pub fill_coupling_factor: f64,
}

impl CutMaskEffects {
    /// A 10 nm-flavoured calibration.
    pub fn n10() -> Self {
        CutMaskEffects {
            line_end_extension_nm: 24.0,
            fill_adjacency_prob: 0.35,
            fill_coupling_factor: 0.18,
        }
    }

    /// Extra capacitance (fF) a net of `length_um` on a layer with
    /// `cc_per_um` picks up from line-end extensions and (stochastically)
    /// floating fill.
    pub fn extra_cap_ff(&self, length_um: f64, cc_per_um: f64, rng: &mut Rng) -> f64 {
        // Two line ends per net.
        let ends = 2.0 * (self.line_end_extension_nm / 1000.0) * cc_per_um * 2.0;
        let fill = if rng.chance(self.fill_adjacency_prob) {
            self.fill_coupling_factor * cc_per_um * length_um
        } else {
            0.0
        };
        ends + fill
    }
}

/// Bimodal CD distribution of LELE (litho-etch-litho-etch) double
/// patterning: the two mask populations sit at ±`offset` around nominal,
/// each with its own sigma — the bimodal distribution of refs \[9\]/\[14\].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BimodalCd {
    /// Half-distance between the two mask populations' means, nm.
    pub offset_nm: f64,
    /// Within-population sigma, nm.
    pub sigma_nm: f64,
}

impl BimodalCd {
    /// Samples a CD deviation (nm) for a wire on mask `color` (0 or 1).
    pub fn sample(&self, color: u8, rng: &mut Rng) -> f64 {
        let mean = if color == 0 {
            self.offset_nm
        } else {
            -self.offset_nm
        };
        rng.normal(mean, self.sigma_nm)
    }

    /// Population variance of the full (mixed) distribution:
    /// `σ² + offset²`.
    pub fn mixed_variance(&self) -> f64 {
        self.sigma_nm * self.sigma_nm + self.offset_nm * self.offset_nm
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tc_core::stats::Summary;

    #[test]
    fn variance_formulas_match_fig5() {
        let p = SadpProcess {
            sigma_mandrel: 2.0,
            sigma_spacer: 1.0,
            sigma_block: 2.0,
            sigma_mandrel_block: 1.5,
        };
        assert!((PatterningSolution::MandrelMandrel.cd_variance(&p) - 4.0).abs() < 1e-12);
        assert!((PatterningSolution::SpacerSpacer.cd_variance(&p) - 6.0).abs() < 1e-12);
        // (0.5·2)² + 1.5² + (0.5·2)² = 1 + 2.25 + 1 = 4.25
        assert!((PatterningSolution::MandrelBlock.cd_variance(&p) - 4.25).abs() < 1e-12);
        // + σS² = 5.25
        assert!((PatterningSolution::SpacerBlock.cd_variance(&p) - 5.25).abs() < 1e-12);
    }

    #[test]
    fn block_mask_solutions_are_noisier() {
        let p = SadpProcess::n10();
        assert!(
            PatterningSolution::SpacerBlock.cd_sigma(&p)
                > PatterningSolution::SpacerSpacer.cd_sigma(&p)
        );
        assert!(
            PatterningSolution::MandrelBlock.cd_sigma(&p)
                > PatterningSolution::MandrelMandrel.cd_sigma(&p)
        );
    }

    #[test]
    #[allow(clippy::disallowed_types)] // cold test path: set cardinality check
    fn track_assignment_covers_all_solutions() {
        use std::collections::HashSet;
        let mut seen = HashSet::new();
        for track in 0..4 {
            for cut in [false, true] {
                seen.insert(PatterningSolution::for_track(track, cut));
            }
        }
        assert_eq!(seen.len(), 4);
    }

    #[test]
    fn cut_mask_effects_add_cap() {
        let fx = CutMaskEffects::n10();
        let mut rng = Rng::seed_from(9);
        let samples: Vec<f64> = (0..2000)
            .map(|_| fx.extra_cap_ff(50.0, 0.12, &mut rng))
            .collect();
        let s = Summary::of(&samples);
        assert!(s.min > 0.0, "line-end extension always adds cap");
        assert!(s.max > s.min * 10.0, "fill adds a stochastic component");
    }

    #[test]
    fn bimodal_distribution_is_bimodal() {
        let b = BimodalCd {
            offset_nm: 1.5,
            sigma_nm: 0.5,
        };
        let mut rng = Rng::seed_from(10);
        let mixed: Vec<f64> = (0..20_000)
            .map(|i| b.sample((i % 2) as u8, &mut rng))
            .collect();
        let s = Summary::of(&mixed);
        // Mixed sigma matches sqrt(σ² + offset²).
        assert!((s.sigma - b.mixed_variance().sqrt()).abs() < 0.05);
        // Each mode is clearly offset.
        let mode0: Vec<f64> = (0..5_000).map(|_| b.sample(0, &mut rng)).collect();
        assert!((Summary::of(&mode0).mean - 1.5).abs() < 0.05);
    }
}
