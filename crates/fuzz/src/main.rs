//! `tc_fuzz` — seeded mutation-fuzz campaigns over every ingest surface.
//!
//! ```text
//! tc_fuzz [--seed 1,2,3] [--iters N] [--target spef|verilog|liberty|json|journal|tcdiff|waiver|prof|all]
//!         [--corpus-out DIR] [--verbose]
//! tc_fuzz --replay PATH [--target T]
//! ```
//!
//! Campaign mode mutates writer-generated corpora and drives the chosen
//! parsers; every violation (panic, context-free error, round-trip
//! break) is deduplicated, shrunk, and — with `--corpus-out` — written
//! to `DIR/<target>/` as a regression corpus entry. Exit code 1 means
//! findings, 0 means a clean run, 2 means usage error.
//!
//! Replay mode re-runs one file (or every file under a directory, with
//! the target inferred from the containing directory's name) and prints
//! the verdict; violating inputs are re-shrunk and printed.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use tc_fuzz::{run, shrink, Env, FuzzConfig, TargetKind, Verdict};

fn usage() -> ExitCode {
    eprintln!(
        "usage: tc_fuzz [--seed S1,S2,..] [--iters N] [--target NAME|all] \
         [--corpus-out DIR] [--verbose]\n       tc_fuzz --replay PATH [--target NAME]"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let mut seeds: Vec<u64> = vec![1];
    let mut iters: u64 = 1000;
    let mut targets: Vec<TargetKind> = TargetKind::ALL.to_vec();
    let mut corpus_out: Option<PathBuf> = None;
    let mut replay: Option<PathBuf> = None;
    let mut verbose = false;

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let need_value = |i: usize| -> Option<&String> { args.get(i + 1) };
        match args[i].as_str() {
            "--seed" => {
                let Some(v) = need_value(i) else {
                    return usage();
                };
                match v.split(',').map(|s| s.trim().parse::<u64>()).collect() {
                    Ok(s) => seeds = s,
                    Err(_) => return usage(),
                }
                i += 2;
            }
            "--iters" => {
                let Some(v) = need_value(i) else {
                    return usage();
                };
                match v.parse() {
                    Ok(n) => iters = n,
                    Err(_) => return usage(),
                }
                i += 2;
            }
            "--target" => {
                let Some(v) = need_value(i) else {
                    return usage();
                };
                if v == "all" {
                    targets = TargetKind::ALL.to_vec();
                } else {
                    match TargetKind::from_name(v) {
                        Some(t) => targets = vec![t],
                        None => return usage(),
                    }
                }
                i += 2;
            }
            "--corpus-out" => {
                let Some(v) = need_value(i) else {
                    return usage();
                };
                corpus_out = Some(PathBuf::from(v));
                i += 2;
            }
            "--replay" => {
                let Some(v) = need_value(i) else {
                    return usage();
                };
                replay = Some(PathBuf::from(v));
                i += 2;
            }
            "--verbose" => {
                verbose = true;
                i += 1;
            }
            _ => return usage(),
        }
    }

    // Parsers under fuzz panic on purpose; keep the default hook from
    // spraying a backtrace per caught panic.
    std::panic::set_hook(Box::new(|_| {}));

    let env = Env::new();
    if let Some(path) = replay {
        return replay_mode(&env, &path, targets);
    }

    let cfg = FuzzConfig {
        seeds,
        iters,
        targets,
        verbose,
    };
    let findings = run(&env, &cfg);
    for f in &findings {
        println!(
            "[{}] seed {} iter {}: {} — {}",
            f.target.name(),
            f.seed,
            f.iter,
            f.violation.kind(),
            f.violation.message()
        );
        println!("  shrunk input ({} bytes):", f.input.len());
        println!("  {:?}", String::from_utf8_lossy(&f.input));
        if let Some(dir) = &corpus_out {
            let tdir = dir.join(f.target.name());
            if let Err(e) = std::fs::create_dir_all(&tdir) {
                eprintln!("cannot create {}: {e}", tdir.display());
                continue;
            }
            let file = tdir.join(format!(
                "{}-s{}-i{}.bin",
                f.violation.kind(),
                f.seed,
                f.iter
            ));
            match std::fs::write(&file, &f.input) {
                Ok(()) => println!("  wrote {}", file.display()),
                Err(e) => eprintln!("cannot write {}: {e}", file.display()),
            }
        }
    }
    let iters_total = cfg.iters * cfg.seeds.len() as u64 * cfg.targets.len() as u64;
    println!(
        "tc_fuzz: {} iterations across {} target(s), {} finding(s)",
        iters_total,
        cfg.targets.len(),
        findings.len()
    );
    if findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn replay_mode(env: &Env, path: &Path, targets: Vec<TargetKind>) -> ExitCode {
    let mut files: Vec<(TargetKind, PathBuf)> = Vec::new();
    if path.is_dir() {
        if let Err(e) = collect_dir(path, &targets, &mut files) {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    } else {
        let target = infer_target(path).or(if targets.len() == 1 {
            Some(targets[0])
        } else {
            None
        });
        let Some(target) = target else {
            eprintln!("cannot infer target for {}; pass --target", path.display());
            return ExitCode::from(2);
        };
        files.push((target, path.to_path_buf()));
    }

    let mut violations = 0usize;
    for (target, file) in files {
        let input = match std::fs::read(&file) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("cannot read {}: {e}", file.display());
                return ExitCode::from(2);
            }
        };
        match env.check(target, &input) {
            Verdict::Accepted => println!("[{}] {}: accepted", target.name(), file.display()),
            Verdict::Rejected => {
                println!(
                    "[{}] {}: rejected (positioned)",
                    target.name(),
                    file.display()
                )
            }
            Verdict::Violation(v) => {
                violations += 1;
                let shrunk = shrink(env, target, &input);
                println!(
                    "[{}] {}: VIOLATION {} — {}",
                    target.name(),
                    file.display(),
                    v.kind(),
                    v.message()
                );
                println!(
                    "  shrunk ({} bytes): {:?}",
                    shrunk.len(),
                    String::from_utf8_lossy(&shrunk)
                );
            }
        }
    }
    if violations == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// `corpus/<target>/entry` layout: the parent directory names the target.
fn infer_target(file: &Path) -> Option<TargetKind> {
    file.parent()
        .and_then(|d| d.file_name())
        .and_then(|n| n.to_str())
        .and_then(TargetKind::from_name)
}

fn collect_dir(
    dir: &Path,
    allowed: &[TargetKind],
    out: &mut Vec<(TargetKind, PathBuf)>,
) -> Result<(), String> {
    let entries =
        std::fs::read_dir(dir).map_err(|e| format!("cannot read {}: {e}", dir.display()))?;
    let mut paths: Vec<PathBuf> = entries.filter_map(|e| e.ok().map(|e| e.path())).collect();
    paths.sort();
    for p in paths {
        if p.is_dir() {
            collect_dir(&p, allowed, out)?;
        } else if let Some(t) = infer_target(&p) {
            if allowed.contains(&t) {
                out.push((t, p));
            }
        }
    }
    Ok(())
}
