//! Determinism contract of `tc-par`: every parallelized engine —
//! the MCMM scenario sweep, level-synchronous GBA propagation, and the
//! Monte Carlo samplers — must produce results that are **bit-identical**
//! at every worker count. The worker count may change wall-clock, never
//! bytes. These tests sweep seeded workloads across {1, 2, 4, 8} workers
//! and compare full `f64` bit patterns against the sequential reference.

use timing_closure::core::ids::NetId;
use timing_closure::interconnect::beol::{BeolCorner, BeolStack};
use timing_closure::liberty::{LibConfig, Library, PvtCorner};
use timing_closure::netlist::gen::{generate, BenchProfile};
use timing_closure::par::Pool;
use timing_closure::sta::mcmm::{run_scenarios_shared_on, Scenario};
use timing_closure::sta::{Constraints, Sta};
use timing_closure::variation::mc::{beol_monte_carlo_wns_on, PathModel};

const WORKER_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn scenarios(cfg: &LibConfig) -> Vec<Scenario> {
    [
        ("typ", PvtCorner::typical(), BeolCorner::Typical),
        ("slow_rcw", PvtCorner::slow_cold(), BeolCorner::RcWorst),
        ("slow_hot", PvtCorner::slow_hot(), BeolCorner::CWorst),
        ("fast_cb", PvtCorner::fast_cold(), BeolCorner::CBest),
    ]
    .into_iter()
    .map(|(name, pvt, beol)| Scenario {
        name: name.to_string(),
        lib: Library::generate(cfg, &pvt),
        beol,
        constraints: Constraints::single_clock(900.0),
    })
    .collect()
}

/// Collapses a report list into the exact bit pattern of every slack —
/// two runs are equal iff their fingerprints are.
fn fingerprint(reports: &[(String, timing_closure::sta::TimingReport)]) -> Vec<(String, Vec<u64>)> {
    reports
        .iter()
        .map(|(name, r)| {
            let bits = r
                .endpoints
                .iter()
                .flat_map(|e| {
                    [
                        e.setup_slack.value().to_bits(),
                        e.hold_slack.value().to_bits(),
                        e.arrival.value().to_bits(),
                        e.data_slew.to_bits(),
                    ]
                })
                .collect();
            (name.clone(), bits)
        })
        .collect()
}

#[test]
fn scenario_sweep_is_bit_identical_at_any_worker_count() {
    let cfg = LibConfig::default();
    let lib = Library::generate(&cfg, &PvtCorner::typical());
    let stack = BeolStack::n20();
    let scenarios = scenarios(&cfg);
    for seed in [3, 17] {
        let nl = generate(&lib, BenchProfile::tiny(), seed).unwrap();
        let reference = fingerprint(
            &run_scenarios_shared_on(Pool::sequential(), &nl, &stack, &scenarios).unwrap(),
        );
        assert!(!reference.is_empty());
        for workers in WORKER_COUNTS {
            let got = fingerprint(
                &run_scenarios_shared_on(Pool::new(workers), &nl, &stack, &scenarios).unwrap(),
            );
            assert_eq!(got, reference, "sweep diverged at {workers} workers");
        }
    }
}

#[test]
fn parallel_gba_matches_sequential_bit_for_bit() {
    let lib = Library::generate(&LibConfig::default(), &PvtCorner::typical());
    let stack = BeolStack::n20();
    let cons = Constraints::single_clock(900.0);
    for (profile, seed) in [(BenchProfile::soc_block(), 5), (BenchProfile::c5315(), 11)] {
        let mut nl = generate(&lib, profile, seed).unwrap();
        for i in 0..nl.net_count() {
            nl.set_wire_length(NetId::new(i), 15.0 + (i % 40) as f64);
        }
        let sequential = Sta::new(&nl, &lib, &stack, &cons);
        let (ref_state, ref_wires) = sequential.propagate().unwrap();
        let ref_report = sequential.run().unwrap();
        for workers in WORKER_COUNTS {
            let par = Sta::new(&nl, &lib, &stack, &cons).with_parallel(Pool::new(workers));
            let (state, wires) = par.propagate().unwrap();
            assert_eq!(state, ref_state, "net states diverged at {workers} workers");
            assert_eq!(
                wires, ref_wires,
                "wire timings diverged at {workers} workers"
            );
            let report = par.run().unwrap();
            assert_eq!(
                report.endpoints, ref_report.endpoints,
                "endpoints diverged at {workers} workers"
            );
        }
    }
}

#[test]
fn path_monte_carlo_is_bit_identical_at_any_worker_count() {
    let path = PathModel::uniform(12, 20.0, 0.06, 3.0);
    // Cover a non-multiple of the internal chunk size and a tiny run.
    for (n, seed) in [(10_000, 42), (300, 7), (1, 9)] {
        let reference = path.monte_carlo_on(Pool::sequential(), n, seed);
        let ref_bits: Vec<u64> = reference.iter().map(|x| x.to_bits()).collect();
        for workers in WORKER_COUNTS {
            let got = path.monte_carlo_on(Pool::new(workers), n, seed);
            let bits: Vec<u64> = got.iter().map(|x| x.to_bits()).collect();
            assert_eq!(bits, ref_bits, "MC diverged at {workers} workers (n={n})");
        }
    }
}

#[test]
fn beol_monte_carlo_is_bit_identical_at_any_worker_count() {
    let lib = Library::generate(&LibConfig::default(), &PvtCorner::typical());
    let mut nl = generate(&lib, BenchProfile::tiny(), 4).unwrap();
    for i in 0..nl.net_count() {
        nl.set_wire_length(NetId::new(i), 120.0);
    }
    let stack = BeolStack::n20();
    let cons = Constraints::single_clock(1_200.0);
    let reference =
        beol_monte_carlo_wns_on(Pool::sequential(), &nl, &lib, &stack, &cons, 12, 7).unwrap();
    let ref_bits: Vec<u64> = reference.iter().map(|p| p.value().to_bits()).collect();
    for workers in WORKER_COUNTS {
        let got =
            beol_monte_carlo_wns_on(Pool::new(workers), &nl, &lib, &stack, &cons, 12, 7).unwrap();
        let bits: Vec<u64> = got.iter().map(|p| p.value().to_bits()).collect();
        assert_eq!(bits, ref_bits, "BEOL MC diverged at {workers} workers");
    }
}
