//! Minimum implant area (MinIA) rule checking and fixing — the paper's
//! **Fig 6a** and ref \[24\].
//!
//! An *implant island* is a maximal run of abutting same-Vt cells in a
//! row. The rule requires every island to be at least `min_width_sites`
//! wide. A narrow island (e.g. a single LVT cell dropped in by a
//! Vt-swap timing fix and sandwiched between SVT neighbours) violates
//! the rule, forcing an ECO — the "placement-sizing interference" that
//! weakens the classic fix ordering of Fig 1.
//!
//! Fixing heuristics, in cost order (after \[24\]):
//! 1. **Vt-homogenize**: swap the island's cells to the neighbouring Vt
//!    if the caller's timing veto allows it;
//! 2. **Same-width swap**: exchange an island cell with a same-width,
//!    same-Vt-as-neighbours cell elsewhere in the row, so islands merge,
//!    minimizing placement perturbation.

use tc_core::ids::{CellId, LibCellId};
use tc_device::VtClass;
use tc_liberty::Library;
use tc_netlist::Netlist;

use crate::rows::Placement;

/// The MinIA design rule.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MinIaRule {
    /// Minimum implant-island width in sites.
    pub min_width_sites: usize,
}

impl MinIaRule {
    /// A 20 nm-flavoured rule: islands narrower than 6 sites violate.
    pub fn n20() -> Self {
        MinIaRule { min_width_sites: 6 }
    }
}

/// One implant island: a maximal same-Vt run in a row.
#[derive(Clone, Debug, PartialEq)]
pub struct Island {
    /// Row index.
    pub row: usize,
    /// Index range `[start, end)` into the row's cell list.
    pub start: usize,
    /// Exclusive end index.
    pub end: usize,
    /// The island's Vt class.
    pub vt: VtClass,
    /// Total width in sites.
    pub width_sites: usize,
}

/// Finds all implant islands of a placement.
pub fn islands(pl: &Placement, nl: &Netlist, lib: &Library) -> Vec<Island> {
    let mut out = Vec::new();
    for r in 0..pl.row_count() {
        let row = pl.row(r);
        let mut i = 0;
        while i < row.len() {
            let vt = lib.cell(nl.cell(row[i].cell).master).vt;
            let mut j = i;
            let mut width = 0;
            while j < row.len() && lib.cell(nl.cell(row[j].cell).master).vt == vt {
                // Abutment required for a contiguous island.
                if j > i && row[j].x_site != row[j - 1].x_site + row[j - 1].width_sites {
                    break;
                }
                width += row[j].width_sites;
                j += 1;
            }
            out.push(Island {
                row: r,
                start: i,
                end: j,
                vt,
                width_sites: width,
            });
            i = j;
        }
    }
    out
}

/// Counts MinIA violations.
pub fn violation_count(pl: &Placement, nl: &Netlist, lib: &Library, rule: &MinIaRule) -> usize {
    islands(pl, nl, lib)
        .iter()
        .filter(|i| i.width_sites < rule.min_width_sites)
        .count()
}

/// Outcome of a fixing pass.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct MiniaFixReport {
    /// Violations before fixing.
    pub before: usize,
    /// Violations after fixing.
    pub after: usize,
    /// Cells whose Vt was homogenized (master swapped).
    pub vt_swaps: usize,
    /// Same-row cell swaps performed.
    pub moves: usize,
}

impl MiniaFixReport {
    /// Fraction of violations removed.
    pub fn fix_rate(&self) -> f64 {
        if self.before == 0 {
            1.0
        } else {
            1.0 - self.after as f64 / self.before as f64
        }
    }
}

/// Fixes MinIA violations. `timing_ok(cell, new_master)` is the timing
/// veto: it must return `true` for a Vt change to be committed (the
/// caller typically checks the cell's slack margin).
pub fn fix_violations(
    pl: &mut Placement,
    nl: &mut Netlist,
    lib: &Library,
    rule: &MinIaRule,
    mut timing_ok: impl FnMut(CellId, LibCellId) -> bool,
) -> MiniaFixReport {
    let before = violation_count(pl, nl, lib, rule);
    let mut vt_swaps = 0;
    let mut moves = 0;

    // Pass 1: Vt-homogenize narrow islands into a neighbour's Vt.
    loop {
        let all = islands(pl, nl, lib);
        let viol = all
            .iter()
            .find(|i| i.width_sites < rule.min_width_sites)
            .cloned();
        let Some(isl) = viol else { break };
        let row_cells = pl.row(isl.row).to_vec();
        // Candidate target Vt: the wider neighbouring island's Vt.
        let left_vt =
            (isl.start > 0).then(|| lib.cell(nl.cell(row_cells[isl.start - 1].cell).master).vt);
        let right_vt = (isl.end < row_cells.len())
            .then(|| lib.cell(nl.cell(row_cells[isl.end].cell).master).vt);
        let targets: Vec<VtClass> = [left_vt, right_vt].into_iter().flatten().collect();

        let mut fixed = false;
        for target in targets {
            // Every island cell must have a same-template variant at the
            // target Vt, and all swaps must pass the timing veto.
            let mut swaps = Vec::new();
            let mut ok = true;
            for pc in &row_cells[isl.start..isl.end] {
                let master = nl.cell(pc.cell).master;
                let c = lib.cell(master);
                match lib.variant(c.template.name, target, c.drive) {
                    Some(v) if timing_ok(pc.cell, v) => swaps.push((pc.cell, v)),
                    _ => {
                        ok = false;
                        break;
                    }
                }
            }
            if ok {
                for (cell, master) in swaps {
                    nl.swap_master(lib, cell, master)
                        .expect("same-template swap keeps arity");
                    vt_swaps += 1;
                }
                fixed = true;
                break;
            }
        }

        if !fixed {
            // Pass 2 fallback for this island: try to swap one island
            // cell with a same-width cell of the neighbour Vt from
            // elsewhere in the row (merging islands).
            let mut done = false;
            'search: for k in isl.start..isl.end {
                for m in 0..row_cells.len() {
                    if m >= isl.start && m < isl.end {
                        continue;
                    }
                    let other_vt = lib.cell(nl.cell(row_cells[m].cell).master).vt;
                    if other_vt == isl.vt {
                        continue;
                    }
                    if row_cells[m].width_sites == row_cells[k].width_sites
                        && pl.swap_in_row(isl.row, k, m)
                    {
                        moves += 1;
                        done = true;
                        break 'search;
                    }
                }
            }
            if !done {
                // Unfixable with these heuristics; leave it and stop to
                // avoid an infinite loop (remaining count reported).
                break;
            }
        }
    }

    let after = violation_count(pl, nl, lib, rule);
    MiniaFixReport {
        before,
        after,
        vt_swaps,
        moves,
    }
}

/// Injects MinIA-style violations for experiments: randomly swaps
/// `count` isolated cells to a different Vt (the paper's scenario where
/// post-route Vt-swap fixes create narrow islands). Returns how many
/// swaps were applied.
pub fn inject_vt_islands(nl: &mut Netlist, lib: &Library, count: usize, seed: u64) -> usize {
    let mut rng = tc_core::rng::Rng::seed_from(seed ^ 0x696e_6a65_6374);
    let n = nl.cell_count();
    let mut injected = 0;
    for _ in 0..count * 4 {
        if injected >= count {
            break;
        }
        let cell = CellId::new(rng.below(n));
        let master = nl.cell(cell).master;
        let c = lib.cell(master);
        let target = if rng.chance(0.5) {
            c.vt.faster()
        } else {
            c.vt.slower()
        };
        if let Some(vt) = target {
            if let Some(v) = lib.variant(c.template.name, vt, c.drive) {
                nl.swap_master(lib, cell, v).expect("same template");
                injected += 1;
            }
        }
    }
    injected
}

#[cfg(test)]
mod tests {
    use super::*;
    use tc_liberty::{LibConfig, PvtCorner};
    use tc_netlist::gen::{generate, BenchProfile};

    fn setup() -> (Library, Netlist) {
        let lib = Library::generate(&LibConfig::default(), &PvtCorner::typical());
        let nl = generate(&lib, BenchProfile::tiny(), 3).unwrap();
        (lib, nl)
    }

    #[test]
    fn uniform_vt_placement_has_no_violations_after_homogenize() {
        // Generator emits all-SVT designs: every island is as wide as its
        // row run, so violations only appear at row remainders.
        let (lib, nl) = setup();
        let pl = Placement::row_fill(&nl, &lib, 64, 1);
        let isl = islands(&pl, &nl, &lib);
        // All islands are SVT.
        assert!(isl.iter().all(|i| i.vt == VtClass::Svt));
    }

    #[test]
    fn injected_islands_create_violations_and_fixer_removes_them() {
        let (lib, mut nl) = setup();
        let injected = inject_vt_islands(&mut nl, &lib, 20, 9);
        assert!(injected >= 15);
        let mut pl = Placement::row_fill(&nl, &lib, 64, 1);
        let rule = MinIaRule::n20();
        let before = violation_count(&pl, &nl, &lib, &rule);
        assert!(before > 0, "injection must create violations");

        let report = fix_violations(&mut pl, &mut nl, &lib, &rule, |_, _| true);
        assert_eq!(report.before, before);
        assert!(
            report.after < report.before / 4,
            "fixer must remove most violations: {} → {}",
            report.before,
            report.after
        );
        assert!(report.vt_swaps + report.moves > 0);
        nl.validate(&lib).unwrap();
    }

    #[test]
    fn timing_veto_blocks_fixes() {
        let (lib, mut nl) = setup();
        inject_vt_islands(&mut nl, &lib, 20, 9);
        let mut pl = Placement::row_fill(&nl, &lib, 64, 1);
        let rule = MinIaRule::n20();
        // Veto everything: only placement moves are available.
        let report = fix_violations(&mut pl, &mut nl, &lib, &rule, |_, _| false);
        assert_eq!(report.vt_swaps, 0);
        assert!(report.after >= report.before.saturating_sub(report.moves));
    }

    #[test]
    fn fix_rate_metric() {
        let r = MiniaFixReport {
            before: 10,
            after: 1,
            vt_swaps: 9,
            moves: 0,
        };
        assert!((r.fix_rate() - 0.9).abs() < 1e-12);
        let clean = MiniaFixReport::default();
        assert_eq!(clean.fix_rate(), 1.0);
    }
}
