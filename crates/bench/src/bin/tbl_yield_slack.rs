//! Footnote 7 (Lutkemeyer) — "new game, old goalposts": STA still gates
//! on absolute slack, but the honest metric is parametric yield. Two
//! views of the same design: the slack histogram the PD team watches,
//! and the yield the product actually ships with.

use tc_bench::{fmt, print_table, standard_env};
use tc_core::units::Ps;
use tc_signoff::margins::{SignoffStrategy, YieldModel};
use tc_sta::{Constraints, Sta};

fn main() {
    let (lib, stack) = standard_env();
    let nl = tc_bench::bench_netlist(&lib, "c5315", 2015);

    // Period sweep: watch WNS cross zero while yield degrades smoothly.
    let probe = Constraints::single_clock(5_000.0);
    let base = Sta::new(&nl, &lib, &stack, &probe).run().expect("sta");
    let crit = 5_000.0 - base.wns().value();
    let ymodel = YieldModel { sigma_ps: 25.0 };

    let mut rows = Vec::new();
    for margin in [120.0, 80.0, 40.0, 20.0, 0.0, -20.0, -40.0] {
        let cons = Constraints::single_clock(crit + margin);
        let r = Sta::new(&nl, &lib, &stack, &cons).run().expect("sta");
        rows.push(vec![
            fmt(crit + margin, 0),
            fmt(r.wns().value(), 1),
            r.setup_violations().to_string(),
            fmt(100.0 * ymodel.chip_yield(&r), 2) + "%",
        ]);
    }
    print_table(
        "Slack goalpost vs yield goalpost (σ = 25 ps per endpoint)",
        &["period (ps)", "WNS (ps)", "violations", "parametric yield"],
        &rows,
    );
    println!("\n→ WNS = 0 is a cliff for the slack goalpost but a ~50% coin-flip per");
    println!("  critical endpoint for yield; 'sigmas are unstable' (footnote 7).");

    // The AVS signoff-strategy comparison of §1.3.
    let gain = SignoffStrategy::avs_gain_pct(Ps::new(1_000.0), 1.25, Ps::new(50.0), 20.0);
    println!(
        "\nsignoff-at-typical + AVS vs worst-case signoff: +{gain:.1}% path budget\n(25% corner inflation, 50 ps flat margin, 20% AVS headroom)"
    );
}
