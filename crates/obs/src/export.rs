//! Snapshot types and exporters: a human-readable flame-style text
//! report, and machine-readable JSON / JSONL.

use crate::json::JsonValue;
use crate::metrics::{bucket_range, HistData, BUCKETS};

/// Aggregated timing for one span path.
#[derive(Clone, Debug)]
pub struct SpanSnapshot {
    /// `/`-joined hierarchy path, e.g. `closure.iteration/sta.gba`.
    pub path: String,
    /// Number of times the span closed.
    pub count: u64,
    /// Total wall-clock nanoseconds across occurrences.
    pub total_ns: u64,
    /// Fastest single occurrence, ns.
    pub min_ns: u64,
    /// Slowest single occurrence, ns.
    pub max_ns: u64,
    /// Summed net heap bytes across occurrences (0 unless memory
    /// counting was on — see [`crate::enable_memory`]).
    pub net_bytes: i64,
    /// Largest single-occurrence growth of the monotonic heap peak.
    pub peak_bytes: u64,
}

impl SpanSnapshot {
    /// Nesting depth (0 = root span).
    pub fn depth(&self) -> usize {
        self.path.matches('/').count()
    }

    /// The span's own name (last path segment).
    pub fn name(&self) -> &str {
        self.path.rsplit('/').next().unwrap_or(&self.path)
    }

    /// The parent path, if nested.
    pub fn parent(&self) -> Option<&str> {
        self.path.rsplit_once('/').map(|(p, _)| p)
    }

    /// Total milliseconds.
    pub fn total_ms(&self) -> f64 {
        self.total_ns as f64 / 1e6
    }

    /// Mean microseconds per occurrence.
    pub fn mean_us(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total_ns as f64 / self.count as f64 / 1e3
        }
    }
}

/// Renders a byte count as a compact human string (`1.5 MB`, `-320 B`).
pub fn fmt_bytes(bytes: i64) -> String {
    let sign = if bytes < 0 { "-" } else { "" };
    let b = bytes.unsigned_abs() as f64;
    if b >= 1e9 {
        format!("{sign}{:.2} GB", b / 1e9)
    } else if b >= 1e6 {
        format!("{sign}{:.2} MB", b / 1e6)
    } else if b >= 1e3 {
        format!("{sign}{:.1} kB", b / 1e3)
    } else {
        format!("{sign}{b:.0} B")
    }
}

/// One histogram's aggregate view.
#[derive(Clone, Debug)]
pub struct HistogramSnapshot {
    /// Histogram name.
    pub name: String,
    /// Sample count.
    pub count: u64,
    /// Sum of samples.
    pub sum: f64,
    /// Smallest sample (∞ when empty).
    pub min: f64,
    /// Largest sample (−∞ when empty).
    pub max: f64,
    /// Non-empty `(lo, hi, count)` log₂ buckets.
    pub buckets: Vec<(f64, f64, u64)>,
}

impl HistogramSnapshot {
    pub(crate) fn from_data(name: String, d: &HistData) -> Self {
        let mut buckets = Vec::new();
        for i in 0..BUCKETS {
            if d.buckets[i] > 0 {
                let (lo, hi) = bucket_range(i);
                buckets.push((lo, hi, d.buckets[i]));
            }
        }
        HistogramSnapshot {
            name,
            count: d.count,
            sum: d.sum,
            min: d.min,
            max: d.max,
            buckets,
        }
    }

    /// Mean sample value (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Estimated `q`-quantile (`0.0..=1.0`) by linear interpolation
    /// inside the log₂ bucket holding the target rank, clamped to the
    /// exact observed `[min, max]`. Returns 0 when empty.
    ///
    /// Bucket resolution bounds the error: within a bucket the samples
    /// are assumed uniform, so the estimate is exact at bucket edges
    /// and at worst off by one bucket width.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        let target = q * self.count as f64;
        let mut cum = 0.0;
        for &(lo, hi, n) in &self.buckets {
            let next = cum + n as f64;
            if next >= target {
                let frac = if n == 0 {
                    0.0
                } else {
                    ((target - cum) / n as f64).clamp(0.0, 1.0)
                };
                let est = lo + (hi - lo) * frac;
                return est.clamp(self.min, self.max);
            }
            cum = next;
        }
        self.max
    }

    /// Median estimate (see [`quantile`](Self::quantile)).
    pub fn p50(&self) -> f64 {
        self.quantile(0.50)
    }

    /// 90th-percentile estimate.
    pub fn p90(&self) -> f64 {
        self.quantile(0.90)
    }

    /// 99th-percentile estimate.
    pub fn p99(&self) -> f64 {
        self.quantile(0.99)
    }
}

/// A consistent point-in-time view of all recorded metrics.
#[derive(Clone, Debug, Default)]
pub struct Snapshot {
    /// Span stats sorted by path.
    pub spans: Vec<SpanSnapshot>,
    /// `(name, value)` counters sorted by name.
    pub counters: Vec<(String, u64)>,
    /// Histogram aggregates sorted by name.
    pub histograms: Vec<HistogramSnapshot>,
}

impl Snapshot {
    /// Value of the named counter (0 if never registered).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map_or(0, |&(_, v)| v)
    }

    /// The span aggregated at exactly `path`.
    pub fn span(&self, path: &str) -> Option<&SpanSnapshot> {
        self.spans.iter().find(|s| s.path == path)
    }

    /// Spans whose own name (last segment) equals `name`, at any depth.
    pub fn spans_named<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a SpanSnapshot> {
        self.spans.iter().filter(move |s| s.name() == name)
    }

    /// Per-counter increase since `earlier` (saturating; counters absent
    /// earlier count from zero). Unchanged counters are omitted.
    pub fn counter_deltas(&self, earlier: &Snapshot) -> Vec<(String, u64)> {
        self.counters
            .iter()
            .filter_map(|(name, now)| {
                let before = earlier.counter(name);
                let d = now.saturating_sub(before);
                (d > 0).then(|| (name.clone(), d))
            })
            .collect()
    }

    /// Per-span-path increase of total wall time since `earlier`
    /// (saturating; spans absent earlier count from zero). Unchanged
    /// spans are omitted. The span analogue of [`counter_deltas`] —
    /// used by the closure loop to attribute each iteration's wall
    /// clock to the spans that consumed it.
    ///
    /// [`counter_deltas`]: Snapshot::counter_deltas
    pub fn span_ns_deltas(&self, earlier: &Snapshot) -> Vec<(String, u64)> {
        self.spans
            .iter()
            .filter_map(|s| {
                let before = earlier.span(&s.path).map_or(0, |p| p.total_ns);
                let d = s.total_ns.saturating_sub(before);
                (d > 0).then(|| (s.path.clone(), d))
            })
            .collect()
    }

    /// Renders the flame-style text report: spans indented by nesting
    /// depth with count/total/mean and percent-of-parent, then counters,
    /// then histograms. A non-zero `obs.trace.dropped` counter (ring
    /// overflow) opens the report with an explicit warning: any profile
    /// derived from that trace is truncated.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let dropped = self.counter("obs.trace.dropped");
        if dropped > 0 {
            out.push_str(&format!(
                "WARNING: {dropped} trace event(s) dropped to ring overflow — flight-recorder \
                 output is truncated; raise the enable_trace capacity\n"
            ));
        }
        if !self.spans.is_empty() {
            out.push_str("spans (wall clock)\n");
            for s in &self.spans {
                let pct = s
                    .parent()
                    .and_then(|p| self.span(p))
                    .filter(|p| p.total_ns > 0)
                    .map(|p| 100.0 * s.total_ns as f64 / p.total_ns as f64);
                let indent = "  ".repeat(s.depth());
                let bar = match pct {
                    Some(p) => format!(" {:>5.1}% of parent", p),
                    None => String::new(),
                };
                let heap = if s.net_bytes != 0 || s.peak_bytes != 0 {
                    format!(
                        "  heap net {} peak +{}",
                        fmt_bytes(s.net_bytes),
                        fmt_bytes(s.peak_bytes as i64)
                    )
                } else {
                    String::new()
                };
                out.push_str(&format!(
                    "  {indent}{:<width$} {:>7}x {:>10.3} ms  mean {:>9.1} us{bar}{heap}\n",
                    s.name(),
                    s.count,
                    s.total_ms(),
                    s.mean_us(),
                    width = 28usize.saturating_sub(indent.len()),
                ));
            }
        }
        if !self.counters.is_empty() {
            out.push_str("counters\n");
            for (name, v) in &self.counters {
                out.push_str(&format!("  {name:<34} {v}\n"));
            }
        }
        if !self.histograms.is_empty() {
            out.push_str("histograms\n");
            for h in &self.histograms {
                out.push_str(&format!(
                    "  {:<34} n={} mean={:.2} min={:.2} p50={:.2} p90={:.2} p99={:.2} max={:.2}\n",
                    h.name,
                    h.count,
                    h.mean(),
                    h.min,
                    h.p50(),
                    h.p90(),
                    h.p99(),
                    h.max
                ));
                for &(lo, hi, n) in &h.buckets {
                    out.push_str(&format!("    [{lo:>8.0}, {hi:>8.0})  {n}\n"));
                }
            }
        }
        if out.is_empty() {
            out.push_str("(no metrics recorded — is tc_obs::enable() on?)\n");
        }
        out
    }

    /// The snapshot as one [`JsonValue`] object (embeddable in larger
    /// documents, e.g. a figure harness's JSON sidecar).
    pub fn to_json_value(&self) -> JsonValue {
        let spans = self
            .spans
            .iter()
            .map(|s| {
                JsonValue::obj([
                    ("path", JsonValue::str(&s.path)),
                    ("count", JsonValue::from(s.count)),
                    ("total_ns", JsonValue::from(s.total_ns)),
                    ("min_ns", JsonValue::from(s.min_ns)),
                    ("max_ns", JsonValue::from(s.max_ns)),
                    ("net_bytes", JsonValue::from(s.net_bytes)),
                    ("peak_bytes", JsonValue::from(s.peak_bytes)),
                ])
            })
            .collect();
        let counters = self
            .counters
            .iter()
            .map(|(k, v)| (k.clone(), JsonValue::from(*v)))
            .collect::<Vec<_>>();
        let hists = self
            .histograms
            .iter()
            .map(|h| {
                let buckets = h
                    .buckets
                    .iter()
                    .map(|&(lo, hi, n)| {
                        JsonValue::Arr(vec![
                            JsonValue::from(lo),
                            JsonValue::from(hi),
                            JsonValue::from(n),
                        ])
                    })
                    .collect();
                JsonValue::obj([
                    ("name", JsonValue::str(&h.name)),
                    ("count", JsonValue::from(h.count)),
                    ("sum", JsonValue::from(h.sum)),
                    ("min", JsonValue::from(h.min)),
                    ("p50", JsonValue::from(h.p50())),
                    ("p90", JsonValue::from(h.p90())),
                    ("p99", JsonValue::from(h.p99())),
                    ("max", JsonValue::from(h.max)),
                    ("buckets", JsonValue::Arr(buckets)),
                ])
            })
            .collect();
        JsonValue::obj([
            ("spans", JsonValue::Arr(spans)),
            ("counters", JsonValue::Obj(counters)),
            ("histograms", JsonValue::Arr(hists)),
        ])
    }

    /// Single-document JSON.
    pub fn to_json(&self) -> String {
        self.to_json_value().render()
    }

    /// JSON Lines: one `{"type": ...}` record per span, counter, and
    /// histogram — the `BENCH_*.json`-style trajectory format.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for s in &self.spans {
            out.push_str(
                &JsonValue::obj([
                    ("type", JsonValue::str("span")),
                    ("path", JsonValue::str(&s.path)),
                    ("count", JsonValue::from(s.count)),
                    ("total_ns", JsonValue::from(s.total_ns)),
                    ("min_ns", JsonValue::from(s.min_ns)),
                    ("max_ns", JsonValue::from(s.max_ns)),
                    ("net_bytes", JsonValue::from(s.net_bytes)),
                    ("peak_bytes", JsonValue::from(s.peak_bytes)),
                ])
                .render(),
            );
            out.push('\n');
        }
        for (name, v) in &self.counters {
            out.push_str(
                &JsonValue::obj([
                    ("type", JsonValue::str("counter")),
                    ("name", JsonValue::str(name)),
                    ("value", JsonValue::from(*v)),
                ])
                .render(),
            );
            out.push('\n');
        }
        for h in &self.histograms {
            out.push_str(
                &JsonValue::obj([
                    ("type", JsonValue::str("histogram")),
                    ("name", JsonValue::str(&h.name)),
                    ("count", JsonValue::from(h.count)),
                    ("sum", JsonValue::from(h.sum)),
                    ("min", JsonValue::from(h.min)),
                    ("p50", JsonValue::from(h.p50())),
                    ("p90", JsonValue::from(h.p90())),
                    ("p99", JsonValue::from(h.p99())),
                    ("max", JsonValue::from(h.max)),
                ])
                .render(),
            );
            out.push('\n');
        }
        out
    }
}
