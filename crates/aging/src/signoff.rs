//! Aging-aware signoff corner selection — the paper's **Fig 9** (ref \[1\]).
//!
//! The designer must pick an *assumed* aging corner at signoff: the
//! design is sized so it still meets frequency at nominal voltage after
//! that much ΔVt. Sweeping the assumption produces the area/power
//! tradeoff of Fig 9:
//!
//! * **Underestimate** (corner 1): small area, but AVS must ride the
//!   supply up early and hard — lifetime-average power balloons (and the
//!   rail may top out).
//! * **Overestimate** (corner 7): power at the left of the curve but
//!   permanent area cost from pessimistic upsizing (which itself adds
//!   capacitance and leakage).

use tc_core::units::Volt;

use crate::avs::{simulate_lifetime, AvsSystem};

/// Diminishing-returns exponent of sizing: speedup `s` costs area
/// `s^SIZING_AREA_EXP`.
const SIZING_AREA_EXP: f64 = 1.7;
/// Fraction of dynamic power that scales with the upsized cells (the
/// rest is wire/clock capacitance).
const DYN_AREA_COUPLING: f64 = 0.55;

/// One point of the Fig 9 sweep.
#[derive(Clone, Debug)]
pub struct SignoffOutcome {
    /// The assumed aging corner, as equivalent stress years.
    pub assumed_years: f64,
    /// Die area relative to the true-lifetime corner, percent.
    pub area_pct: f64,
    /// Lifetime-average power relative to the true-lifetime corner,
    /// percent.
    pub power_pct: f64,
    /// Supply at end of life.
    pub final_voltage: Volt,
    /// Whether the delay target held for the whole lifetime.
    pub always_met: bool,
}

/// Workload character of a benchmark: how its power splits between
/// dynamic and leakage (differs per design, which is why Fig 9 shows
/// four differently-shaped plots).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PowerProfile {
    /// Dynamic share of total power at nominal, 0–1.
    pub dynamic_share: f64,
}

/// Runs the Fig 9 sweep: for each assumed corner, size, simulate the AVS
/// lifetime, and report area/power normalized to the corner that assumes
/// the *true* lifetime.
pub fn aging_signoff_sweep(
    sys: &AvsSystem,
    profile: PowerProfile,
    assumed_corners_years: &[f64],
    lifetime_years: f64,
) -> Vec<SignoffOutcome> {
    let w_dyn = profile.dynamic_share;
    let w_leak = 1.0 - w_dyn;

    // Raw (area, power) per corner.
    let evaluate = |years: f64| -> (f64, f64, Volt, bool) {
        let dvt = sys.bti.delta_vt(years, sys.v_nominal, sys.temp);
        // Size the design so that, fully aged to the assumed corner, it
        // still meets target at nominal V: speed = delay multiplier the
        // *fresh* design must have.
        let aged_factor = sys.delay_factor(sys.v_nominal, dvt);
        let speed = 1.0 / (aged_factor * (1.0 + sys.guardband));
        let speedup = 1.0 / speed; // ≥ 1
        let area = speedup.powf(SIZING_AREA_EXP);
        // Upsizing adds switching capacitance and leakage.
        let p_scale_dyn = 1.0 + DYN_AREA_COUPLING * (area - 1.0);
        let p_scale_leak = area;

        let trace = simulate_lifetime(sys, speed, lifetime_years, 40);
        let p = trace.average_power(sys, w_dyn * p_scale_dyn, w_leak * p_scale_leak);
        (area, p, trace.final_voltage(), trace.always_met)
    };

    let (a_ref, p_ref, _, _) = evaluate(lifetime_years);
    assumed_corners_years
        .iter()
        .map(|&y| {
            let (a, p, v_end, met) = evaluate(y);
            SignoffOutcome {
                assumed_years: y,
                area_pct: 100.0 * a / a_ref,
                power_pct: 100.0 * p / p_ref,
                final_voltage: v_end,
                always_met: met,
            }
        })
        .collect()
}

/// The seven aging corners of Fig 9, as assumed stress years (corner 1 =
/// no aging margin, corner 7 = heavy overestimate of a 10-year life).
pub fn fig9_corners() -> [f64; 7] {
    [0.0, 0.5, 2.0, 5.0, 10.0, 20.0, 40.0]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sweep(dynamic_share: f64) -> Vec<SignoffOutcome> {
        aging_signoff_sweep(
            &AvsSystem::nominal_28nm(),
            PowerProfile { dynamic_share },
            &fig9_corners(),
            10.0,
        )
    }

    #[test]
    fn area_monotone_in_assumed_corner() {
        let s = sweep(0.7);
        for w in s.windows(2) {
            assert!(
                w[1].area_pct >= w[0].area_pct,
                "more assumed aging ⇒ more area"
            );
        }
        // True corner normalizes to 100%.
        let truth = s.iter().find(|o| o.assumed_years == 10.0).unwrap();
        assert!((truth.area_pct - 100.0).abs() < 1e-9);
        assert!((truth.power_pct - 100.0).abs() < 1e-9);
    }

    #[test]
    fn underestimating_costs_lifetime_power() {
        let s = sweep(0.7);
        let none = &s[0]; // no aging margin at signoff
        assert!(
            none.power_pct > 100.0,
            "corner 1 rides the rail up: {}%",
            none.power_pct
        );
        assert!(none.area_pct < 100.0, "but is smaller");
        assert!(none.final_voltage > AvsSystem::nominal_28nm().v_min);
    }

    #[test]
    fn overestimating_costs_area() {
        let s = sweep(0.7);
        let over = s.last().unwrap();
        assert!(over.area_pct > 100.0, "corner 7 oversizes");
    }

    #[test]
    fn leaky_designs_punish_oversizing_harder() {
        // With a large leakage share, oversizing (more leaking width)
        // shows up in lifetime power: the power penalty of corner 7
        // relative to truth is worse for the leaky profile.
        let dyn_heavy = sweep(0.85);
        let leaky = sweep(0.45);
        let over_dyn = dyn_heavy.last().unwrap().power_pct;
        let over_leak = leaky.last().unwrap().power_pct;
        assert!(
            over_leak > over_dyn,
            "leaky {over_leak}% vs dynamic-heavy {over_dyn}%"
        );
    }

    #[test]
    fn tradeoff_curve_has_a_knee() {
        // Somewhere between the extremes, both area and power are within
        // a few percent of the truth corner — the paper's point that the
        // corner choice matters and has an interior optimum.
        let s = sweep(0.7);
        let good = s
            .iter()
            .filter(|o| o.area_pct < 105.0 && o.power_pct < 105.0)
            .count();
        assert!(good >= 2, "an interior region must be near-optimal");
    }
}
