//! Timing constraints: clocks, I/O delays, clock-tree latencies, derates.

// Cold configuration path: constraint sets are built once per scenario
// and looked up per endpoint, never inside the propagation loop.
#![allow(clippy::disallowed_types)]

use std::collections::{HashMap, HashSet};

use tc_core::ids::CellId;
use tc_core::units::Ps;
use tc_liberty::DerateModel;

/// A clock definition.
#[derive(Clone, Debug, PartialEq)]
pub struct Clock {
    /// Clock name.
    pub name: String,
    /// Period.
    pub period: Ps,
    /// Setup uncertainty (jitter + margin — the "flat margin" of §1.3).
    pub uncertainty: Ps,
    /// Hold uncertainty.
    pub hold_uncertainty: Ps,
    /// Latency from the clock source to the tree root.
    pub source_latency: Ps,
}

impl Clock {
    /// A clock with the given period and default margins.
    pub fn new(name: impl Into<String>, period: Ps) -> Self {
        Clock {
            name: name.into(),
            period,
            uncertainty: Ps::new(20.0),
            hold_uncertainty: Ps::new(10.0),
            source_latency: Ps::new(50.0),
        }
    }
}

/// Clock-tree latency model with the common/leaf split that CPPR
/// exploits: `arrival(sink) = source_latency + common + leaf(sink)`.
/// Only the *leaf* segment is subject to on-chip-variation derating; the
/// common segment is shared by launch and capture and cancels.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ClockTreeModel {
    /// Latency of the shared trunk (source to first branch).
    pub common: Ps,
    /// Default leaf latency for flops not in `leaf`.
    pub default_leaf: Ps,
    /// Per-flop leaf latency (insertion delay past the trunk); also the
    /// lever useful-skew optimization adjusts.
    pub leaf: HashMap<CellId, Ps>,
    /// Clock slew at the flop CK pins, ps.
    pub clock_slew: f64,
}

impl ClockTreeModel {
    /// An ideal clock network (zero latency everywhere).
    pub fn ideal() -> Self {
        ClockTreeModel {
            common: Ps::ZERO,
            default_leaf: Ps::ZERO,
            leaf: HashMap::new(),
            clock_slew: 25.0,
        }
    }

    /// Leaf latency of a flop.
    pub fn leaf_of(&self, flop: CellId) -> Ps {
        self.leaf.get(&flop).copied().unwrap_or(self.default_leaf)
    }

    /// Adjusts one flop's leaf latency by `delta` (useful skew).
    pub fn skew_by(&mut self, flop: CellId, delta: Ps) {
        let cur = self.leaf_of(flop);
        self.leaf.insert(flop, cur + delta);
    }
}

/// The full constraint set for one analysis mode.
#[derive(Clone, Debug)]
pub struct Constraints {
    /// Clocks (index 0 is the default clock for all flops).
    pub clocks: Vec<Clock>,
    /// Clock network latencies.
    pub clock_tree: ClockTreeModel,
    /// Arrival time of primary inputs relative to the clock edge.
    pub input_delay: Ps,
    /// Required margin at primary outputs.
    pub output_delay: Ps,
    /// Transition time assumed at primary inputs, ps.
    pub input_slew: f64,
    /// Variation-derate model in force.
    pub derate: DerateModel,
    /// Flat wire derates `(late, early)` applied to net delays when the
    /// cell derate is flat/AOCV; POCV/LVF instead accumulate wire sigma.
    pub wire_derate: (f64, f64),
    /// Whether clock-path-pessimism removal is applied (disable to
    /// measure the pessimism CPPR recovers).
    pub cppr: bool,
    /// Whether coupling (SI) delta delays are added.
    pub si_enabled: bool,
    /// Timing exceptions (the SDC `set_false_path` / `set_multicycle_path`
    /// layer — "constraints evolution" is one of §4 Comment 3's schedule
    /// risks).
    pub exceptions: Exceptions,
}

/// Endpoint-scoped timing exceptions.
///
/// Real SDC scopes exceptions by through-points as well; endpoint scope
/// covers the dominant uses (configuration registers, quasi-static CDC
/// endpoints, deliberately slow datapaths).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Exceptions {
    /// Flops whose D-pin setup/hold checks are waived entirely.
    pub false_path_endpoints: HashSet<CellId>,
    /// Flops whose setup check gets `n` clock periods instead of one
    /// (`n ≥ 1`); hold stays single-cycle per standard SDC semantics.
    pub multicycle_endpoints: HashMap<CellId, u32>,
}

impl Exceptions {
    /// Declares a false path to a flop endpoint.
    pub fn false_path_to(&mut self, flop: CellId) {
        self.false_path_endpoints.insert(flop);
    }

    /// Declares an `n`-cycle setup path to a flop endpoint.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn multicycle_to(&mut self, flop: CellId, n: u32) {
        assert!(n >= 1, "multicycle multiplier must be ≥ 1");
        self.multicycle_endpoints.insert(flop, n);
    }

    /// The setup-period multiplier for an endpoint (1 when unconstrained).
    pub fn setup_cycles(&self, flop: CellId) -> u32 {
        self.multicycle_endpoints.get(&flop).copied().unwrap_or(1)
    }

    /// `true` if the endpoint's checks are waived.
    pub fn is_false_path(&self, flop: CellId) -> bool {
        self.false_path_endpoints.contains(&flop)
    }
}

impl Constraints {
    /// Single-clock constraints at the given period (ps) with classic
    /// flat derates — the 2010-era baseline setup.
    pub fn single_clock(period_ps: f64) -> Self {
        Constraints {
            clocks: vec![Clock::new("clk", Ps::new(period_ps))],
            clock_tree: ClockTreeModel::ideal(),
            input_delay: Ps::new(100.0),
            output_delay: Ps::new(100.0),
            input_slew: 30.0,
            derate: DerateModel::classic_flat(),
            wire_derate: (1.05, 0.95),
            cppr: true,
            si_enabled: false,
            exceptions: Exceptions::default(),
        }
    }

    /// Returns a copy using a different derate model.
    pub fn with_derate(mut self, derate: DerateModel) -> Self {
        self.derate = derate;
        self
    }

    /// Returns a copy at a different period.
    pub fn with_period(mut self, period_ps: f64) -> Self {
        self.clocks[0].period = Ps::new(period_ps);
        self
    }

    /// The clock governing all flops (multi-clock designs index
    /// explicitly; the default clock is index 0).
    pub fn default_clock(&self) -> &Clock {
        &self.clocks[0]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let c = Constraints::single_clock(800.0);
        assert_eq!(c.default_clock().period, Ps::new(800.0));
        assert!(c.cppr);
        assert!(!c.si_enabled);
        assert!(matches!(c.derate, DerateModel::Flat { .. }));
    }

    #[test]
    fn builder_style_modifiers() {
        let c = Constraints::single_clock(800.0)
            .with_period(500.0)
            .with_derate(DerateModel::None);
        assert_eq!(c.default_clock().period, Ps::new(500.0));
        assert_eq!(c.derate, DerateModel::None);
    }

    #[test]
    fn clock_tree_skew_adjustment() {
        let mut t = ClockTreeModel::ideal();
        let f = CellId::new(3);
        assert_eq!(t.leaf_of(f), Ps::ZERO);
        t.skew_by(f, Ps::new(15.0));
        t.skew_by(f, Ps::new(-5.0));
        assert_eq!(t.leaf_of(f), Ps::new(10.0));
        // Other flops unaffected.
        assert_eq!(t.leaf_of(CellId::new(4)), Ps::ZERO);
    }
}
