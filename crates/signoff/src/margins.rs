//! Signoff strategies and the yield-vs-slack goalpost.
//!
//! §1.3: AVS "enables setup timing to be closed at typical corners",
//! replacing worst-case-everything with typical-plus-flat-margin.
//! Lutkemeyer's footnote 7: the *goalposts* are still absolute slack,
//! although the honest metric is parametric yield — implemented here so
//! the two views can be compared on the same report.

use tc_core::stats::normal_cdf;
use tc_core::units::Ps;
use tc_sta::TimingReport;

/// How setup signoff is margined.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum SignoffStrategy {
    /// Close timing at the worst PVT/BEOL corner with a flat margin on
    /// top (the classic recipe).
    WorstCasePlusMargin {
        /// Flat margin, ps.
        margin: Ps,
    },
    /// Close setup at the *typical* corner with a flat margin, relying
    /// on AVS to absorb slow silicon and aging (§1.3).
    TypicalPlusAvs {
        /// Flat margin, ps.
        margin: Ps,
        /// Voltage headroom the AVS loop can deploy, as an equivalent
        /// delay credit in percent.
        avs_headroom_pct: f64,
    },
}

impl SignoffStrategy {
    /// The effective maximum data-path delay (ps) that signs off at a
    /// given clock period, for a path whose worst-corner delay is
    /// `worst_over_typical` times its typical delay.
    pub fn max_path_delay(&self, period: Ps, worst_over_typical: f64) -> Ps {
        match *self {
            SignoffStrategy::WorstCasePlusMargin { margin } => {
                // The path must fit at the worst corner: budget shrinks
                // by the corner inflation.
                Ps::new((period - margin).value() / worst_over_typical)
            }
            SignoffStrategy::TypicalPlusAvs {
                margin,
                avs_headroom_pct,
            } => {
                // Slow silicon is pulled back by raising V: the check is
                // at typical, provided AVS headroom covers the corner
                // inflation beyond the margin.
                let credit = 1.0 + avs_headroom_pct / 100.0;
                let residual = (worst_over_typical / credit).max(1.0);
                Ps::new((period - margin).value() / residual)
            }
        }
    }

    /// The achievable clock frequency gain of AVS signoff over worst-case
    /// signoff for the same path, in percent.
    pub fn avs_gain_pct(period: Ps, worst_over_typical: f64, margin: Ps, headroom: f64) -> f64 {
        let wc = SignoffStrategy::WorstCasePlusMargin { margin }
            .max_path_delay(period, worst_over_typical);
        let avs = SignoffStrategy::TypicalPlusAvs {
            margin,
            avs_headroom_pct: headroom,
        }
        .max_path_delay(period, worst_over_typical);
        100.0 * (avs.value() / wc.value() - 1.0)
    }
}

/// Parametric-yield model: each endpoint passes with probability
/// `Φ(slack / σ)`; chip yield is the product over endpoints
/// (independent-path approximation).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct YieldModel {
    /// Per-endpoint slack sigma, ps.
    pub sigma_ps: f64,
}

impl YieldModel {
    /// Chip-level timing yield of a report.
    pub fn chip_yield(&self, report: &TimingReport) -> f64 {
        report
            .endpoints
            .iter()
            .map(|e| normal_cdf(e.setup_slack.value() / self.sigma_ps))
            .product()
    }

    /// Yield as a function of an added flat guardband: shifting every
    /// slack by `guardband` (the "cost of guardband" view, ref \[15\]).
    pub fn yield_vs_guardband(&self, report: &TimingReport, guardbands: &[f64]) -> Vec<(f64, f64)> {
        guardbands
            .iter()
            .map(|&g| {
                let y: f64 = report
                    .endpoints
                    .iter()
                    .map(|e| normal_cdf((e.setup_slack.value() - g) / self.sigma_ps))
                    .product();
                (g, y)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tc_core::ids::CellId;
    use tc_sta::{Endpoint, EndpointTiming};

    fn report(slacks: &[f64]) -> TimingReport {
        let eps = slacks
            .iter()
            .map(|&s| EndpointTiming {
                endpoint: Endpoint::FlopD(CellId::new(0)),
                setup_slack: Ps::new(s),
                hold_slack: Ps::new(100.0),
                arrival: Ps::new(500.0),
                required: Ps::new(500.0 + s),
                depth: 5,
                gate_ps: 400.0,
                wire_ps: 100.0,
                data_slew: 30.0,
            })
            .collect();
        TimingReport::from_endpoints(eps, Ps::new(1000.0))
    }

    #[test]
    fn avs_signoff_buys_path_budget() {
        let period = Ps::new(1000.0);
        let gain = SignoffStrategy::avs_gain_pct(period, 1.25, Ps::new(50.0), 20.0);
        assert!(
            gain > 10.0,
            "AVS should recover much of the 25% corner inflation: {gain}%"
        );
        // Without headroom there is no gain.
        let none = SignoffStrategy::avs_gain_pct(period, 1.25, Ps::new(50.0), 0.0);
        assert!(none.abs() < 1e-9);
    }

    #[test]
    fn headroom_beyond_corner_inflation_saturates() {
        let s = SignoffStrategy::TypicalPlusAvs {
            margin: Ps::new(50.0),
            avs_headroom_pct: 60.0,
        };
        // Residual clamps at 1.0: signoff is truly at typical.
        let budget = s.max_path_delay(Ps::new(1000.0), 1.25);
        assert_eq!(budget, Ps::new(950.0));
    }

    #[test]
    fn yield_tracks_slack() {
        let y = YieldModel { sigma_ps: 20.0 };
        let healthy = y.chip_yield(&report(&[60.0, 80.0, 100.0]));
        let marginal = y.chip_yield(&report(&[0.0, 80.0, 100.0]));
        let failing = y.chip_yield(&report(&[-40.0, 80.0, 100.0]));
        assert!(healthy > 0.99);
        assert!((marginal - 0.5).abs() < 0.02, "zero slack ⇒ coin flip");
        assert!(failing < 0.05);
    }

    #[test]
    fn same_wns_different_yield() {
        // Lutkemeyer's point: two designs with identical WNS can have
        // very different yield — slack goalposts miss this.
        let y = YieldModel { sigma_ps: 20.0 };
        let one_bad = report(&[-10.0, 200.0, 200.0, 200.0]);
        let many_bad = report(&[-10.0, -10.0, -10.0, -10.0]);
        assert_eq!(one_bad.wns(), many_bad.wns());
        assert!(y.chip_yield(&one_bad) > 2.0 * y.chip_yield(&many_bad));
    }

    #[test]
    fn guardband_sweep_is_monotone() {
        let y = YieldModel { sigma_ps: 20.0 };
        let r = report(&[30.0, 50.0, 80.0]);
        let curve = y.yield_vs_guardband(&r, &[0.0, 20.0, 40.0, 60.0]);
        for w in curve.windows(2) {
            assert!(w[1].1 <= w[0].1, "more guardband ⇒ less yield margin");
        }
    }
}
