//! `reset()` wipes the whole global registry, so it gets its own test
//! binary (process) rather than racing the in-crate unit tests. The
//! tests here still share that global state with each other, so they
//! serialize on a lock.

use std::sync::Mutex;

static RESET_LOCK: Mutex<()> = Mutex::new(());

#[test]
fn reset_clears_spans_and_zeroes_counters() {
    let _guard = RESET_LOCK.lock().unwrap();
    tc_obs::enable();
    let handle = tc_obs::counter("reset.count");
    handle.add(9);
    tc_obs::histogram("reset.hist").record(3.0);
    {
        let _s = tc_obs::span("reset.span");
    }
    assert_eq!(tc_obs::snapshot().counter("reset.count"), 9);

    tc_obs::reset();
    let snap = tc_obs::snapshot();
    assert_eq!(snap.counter("reset.count"), 0);
    assert!(snap.span("reset.span").is_none());
    let hist = snap.histograms.iter().find(|h| h.name == "reset.hist");
    assert!(hist.is_none_or(|h| h.count == 0));

    // Handles issued before the reset keep working.
    handle.add(2);
    assert_eq!(tc_obs::snapshot().counter("reset.count"), 2);
}

#[test]
fn reset_under_an_open_span_neither_corrupts_the_stack_nor_records_garbage() {
    let _guard = RESET_LOCK.lock().unwrap();
    tc_obs::enable();

    // A span open across the reset: its guard must not deposit a
    // pre-reset duration into the fresh registry when it drops.
    let stale = tc_obs::span("reset.stale_outer");
    {
        let _inner = tc_obs::span("reset.stale_inner");
        tc_obs::reset();
    } // inner drops post-reset: stale epoch, must not record
    drop(stale);

    let snap = tc_obs::snapshot();
    assert!(
        snap.span("reset.stale_outer").is_none(),
        "span opened before reset() leaked into the fresh registry"
    );
    assert!(snap
        .spans
        .iter()
        .all(|s| !s.path.contains("reset.stale_inner")));

    // The thread-local stack is still consistent: fresh spans open at
    // the root and record exactly once.
    {
        let _s = tc_obs::span("reset.fresh");
    }
    let snap = tc_obs::snapshot();
    let fresh = snap.span("reset.fresh").expect("fresh span records");
    assert_eq!(fresh.count, 1);
    assert!(
        snap.span("reset.stale_outer/reset.fresh").is_none(),
        "stale parent still on the span stack after reset()"
    );
}
