#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! # tc-bench — figure-regeneration harnesses
//!
//! One binary per figure/table of the paper (see `src/bin/`), plus the
//! std-only benchmarks in `benches/engines.rs`. This library holds the
//! shared formatting, timing, and experiment-setup helpers so every
//! harness prints consistent, diffable tables (recorded in
//! `EXPERIMENTS.md`) and can emit machine-readable JSON sidecars.

use std::hint::black_box;
use std::path::PathBuf;
use std::time::Instant;

use tc_interconnect::BeolStack;
use tc_liberty::{LibConfig, Library, PvtCorner};
use tc_netlist::gen::{generate, generate_streamed, BenchProfile};
use tc_netlist::Netlist;

/// Prints a fixed-width table: header row, rule, then rows.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line: Vec<String> = headers
        .iter()
        .zip(&widths)
        .map(|(h, w)| format!("{h:<w$}"))
        .collect();
    println!("{}", line.join(" | "));
    println!(
        "{}",
        widths
            .iter()
            .map(|w| "-".repeat(*w))
            .collect::<Vec<_>>()
            .join("-+-")
    );
    for row in rows {
        let line: Vec<String> = row
            .iter()
            .zip(&widths)
            .map(|(c, w)| format!("{c:<w$}"))
            .collect();
        println!("{}", line.join(" | "));
    }
}

/// Formats a float with the given precision.
pub fn fmt(v: f64, prec: usize) -> String {
    format!("{v:.prec$}")
}

/// The standard experiment environment: a typical-corner library and the
/// 20 nm BEOL stack.
pub fn standard_env() -> (Library, BeolStack) {
    (
        Library::generate(&LibConfig::default(), &PvtCorner::typical()),
        BeolStack::n20(),
    )
}

/// A seeded benchmark netlist by profile name. The `scale_*` profiles
/// go through the bounded-scratch streamed generator; everything else
/// uses the classic generator (whose output committed fingerprints
/// depend on).
///
/// # Panics
///
/// Panics on an unknown profile name (harness misuse).
pub fn bench_netlist(lib: &Library, profile: &str, seed: u64) -> Netlist {
    let p = match profile {
        "tiny" => BenchProfile::tiny(),
        "soc_block" => BenchProfile::soc_block(),
        "c5315" => BenchProfile::c5315(),
        "c7552" => BenchProfile::c7552(),
        "aes" => BenchProfile::aes(),
        "mpeg2" => BenchProfile::mpeg2(),
        "scale_50k" | "50k" => {
            return generate_streamed(lib, BenchProfile::scale_50k(), seed)
                .expect("generator is total")
        }
        "scale_200k" | "200k" => {
            return generate_streamed(lib, BenchProfile::scale_200k(), seed)
                .expect("generator is total")
        }
        "scale_1m" | "1m" => {
            return generate_streamed(lib, BenchProfile::scale_1m(), seed)
                .expect("generator is total")
        }
        other => panic!("unknown profile {other}"),
    };
    generate(lib, p, seed).expect("generator is total")
}

/// One measured benchmark.
#[derive(Clone, Debug)]
pub struct BenchResult {
    /// Benchmark name.
    pub name: String,
    /// Timed iterations.
    pub iters: u32,
    /// Mean nanoseconds per iteration.
    pub mean_ns: f64,
    /// Fastest iteration, ns.
    pub min_ns: f64,
    /// Slowest iteration, ns.
    pub max_ns: f64,
}

impl BenchResult {
    /// `name  mean ±(min..max)` formatted for the report table.
    pub fn row(&self) -> Vec<String> {
        let scale = |ns: f64| {
            if ns >= 1e6 {
                format!("{:.2} ms", ns / 1e6)
            } else {
                format!("{:.1} us", ns / 1e3)
            }
        };
        vec![
            self.name.clone(),
            self.iters.to_string(),
            scale(self.mean_ns),
            scale(self.min_ns),
            scale(self.max_ns),
        ]
    }
}

/// Minimum timed iterations per benchmark.
const BENCH_MIN_ITERS: u32 = 5;
/// Iteration cap per benchmark.
const BENCH_MAX_ITERS: u32 = 200;
/// Wall-clock budget per benchmark, seconds.
const BENCH_BUDGET_S: f64 = 0.8;

/// Times `routine` (std-only stand-in for Criterion, which the offline
/// build cannot fetch): one warmup call, then iterations until the time
/// budget or cap is hit.
pub fn bench<R>(name: &str, mut routine: impl FnMut() -> R) -> BenchResult {
    bench_with_setup(name, || (), |()| routine())
}

/// Like [`bench`] but re-runs `setup` (untimed) before every timed
/// iteration — for routines that consume or mutate their input.
pub fn bench_with_setup<T, R>(
    name: &str,
    mut setup: impl FnMut() -> T,
    mut routine: impl FnMut(T) -> R,
) -> BenchResult {
    black_box(routine(setup())); // warmup
    let mut iters = 0u32;
    let mut total_ns = 0.0f64;
    let mut min_ns = f64::INFINITY;
    let mut max_ns = 0.0f64;
    let started = Instant::now();
    while iters < BENCH_MIN_ITERS
        || (iters < BENCH_MAX_ITERS && started.elapsed().as_secs_f64() < BENCH_BUDGET_S)
    {
        let input = setup();
        let t0 = Instant::now();
        black_box(routine(input));
        let ns = t0.elapsed().as_nanos() as f64;
        total_ns += ns;
        min_ns = min_ns.min(ns);
        max_ns = max_ns.max(ns);
        iters += 1;
    }
    BenchResult {
        name: name.to_string(),
        iters,
        mean_ns: total_ns / iters as f64,
        min_ns,
        max_ns,
    }
}

/// The directory generated sidecars land in: `$TC_BENCH_OUT`, default
/// `artifacts/`. Harness output never scatters at the repo root —
/// committed baselines are *copied* to their gated locations, the
/// artifacts directory itself is gitignored.
pub fn out_dir() -> PathBuf {
    std::env::var_os("TC_BENCH_OUT").map_or_else(|| PathBuf::from("artifacts"), PathBuf::from)
}

/// Writes a figure harness's JSON sidecar next to the human-readable
/// table: `<name>.json` in [`out_dir`].
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn write_json_sidecar(name: &str, json: &str) -> std::io::Result<PathBuf> {
    let dir = out_dir();
    std::fs::create_dir_all(&dir)?;
    let path = dir.join(format!("{name}.json"));
    std::fs::write(&path, json)?;
    Ok(path)
}

/// Writes the current flight-recorder contents as two sidecars next to
/// the figure output: `<name>.trace.json` (Chrome `trace_event` — load
/// in `chrome://tracing` or Perfetto) and `<name>.folded` (folded
/// stacks for `flamegraph.pl`). No-op returning `None` when tracing is
/// off or nothing was recorded.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn write_trace_sidecars(name: &str) -> std::io::Result<Option<PathBuf>> {
    let snap = tc_obs::trace_snapshot();
    if snap.events.is_empty() {
        return Ok(None);
    }
    let dir = out_dir();
    std::fs::create_dir_all(&dir)?;
    let trace = dir.join(format!("{name}.trace.json"));
    std::fs::write(&trace, snap.to_chrome_trace())?;
    std::fs::write(dir.join(format!("{name}.folded")), snap.to_folded())?;
    Ok(Some(trace))
}

/// Reduces the current flight-recorder contents to a span profile and
/// writes it as `PROF_<name>.json` in [`out_dir`], for `tc_prof`
/// reporting and differential gating. No-op returning `None` when
/// tracing is off or nothing was recorded.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn write_prof_sidecar(name: &str, workload: &str) -> std::io::Result<Option<PathBuf>> {
    let snap = tc_obs::trace_snapshot();
    if snap.events.is_empty() {
        return Ok(None);
    }
    let profile = tc_prof::Profile::from_trace(&snap).workload(workload);
    if profile.dropped_events > 0 {
        eprintln!(
            "warning: PROF_{name}: {} trace event(s) dropped to ring overflow — profile is \
             truncated and will not pass a tc_prof gate",
            profile.dropped_events
        );
    }
    write_json_sidecar(&format!("PROF_{name}"), &profile.render_json()).map(Some)
}

/// Writes a [`tc_obs::RunArtifact`] as `RUN_<name>.json` in
/// [`out_dir`], for `tcdiff` gating.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn write_run_artifact(name: &str, artifact: &tc_obs::RunArtifact) -> std::io::Result<PathBuf> {
    write_json_sidecar(&format!("RUN_{name}"), &artifact.render())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_and_netlists_materialize() {
        let (lib, stack) = standard_env();
        assert!(stack.layer_count() == 9);
        let nl = bench_netlist(&lib, "tiny", 1);
        assert!(nl.cell_count() > 100);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt(1.23456, 2), "1.23");
        // print_table must not panic on ragged input.
        print_table("t", &["a", "b"], &[vec!["1".into(), "2".into()]]);
    }

    #[test]
    fn bench_runner_measures_and_bounds_iterations() {
        let r = bench("noop", || 1 + 1);
        assert!(r.iters >= 5);
        assert!(r.min_ns <= r.mean_ns && r.mean_ns <= r.max_ns);
        let mut setups = 0;
        let r2 = bench_with_setup("setup", || setups += 1, |()| ());
        assert!(setups as u32 >= r2.iters, "setup runs every iteration");
        assert_eq!(r2.row().len(), 5);
    }

    #[test]
    fn sidecar_lands_in_tc_bench_out() {
        let dir = std::env::temp_dir().join("tc_bench_sidecar_test");
        std::env::set_var("TC_BENCH_OUT", &dir);
        let path = write_json_sidecar("probe", "{\"ok\":true}").unwrap();
        std::env::remove_var("TC_BENCH_OUT");
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "{\"ok\":true}");
        let _ = std::fs::remove_file(&path);
    }
}
