//! Equivalence property test for the incremental timing engine.
//!
//! The contract of `tc_sta::Timer` is *bit-identity*: after any journaled
//! ECO sequence, `Timer::update` must leave the cached net states, wire
//! timings, and endpoint reports exactly equal — every `f64` bit — to a
//! from-scratch `Sta` run on the edited netlist. This test drives that
//! contract with seeded random edit sequences (master swaps up/down the
//! size and Vt ladders, wirelength and route-class changes, buffer
//! insertions, pin rewires) on three benchmark profiles, interleaving
//! checkpoint/rollback cycles so the undo log is exercised under the same
//! randomness.

use timing_closure::core::ids::{CellId, NetId};
use timing_closure::core::rng::Rng;
use timing_closure::device::VtClass;
use timing_closure::interconnect::beol::BeolStack;
use timing_closure::liberty::{CellKind, LibConfig, Library, PvtCorner};
use timing_closure::netlist::gen::{generate, BenchProfile};
use timing_closure::netlist::{Netlist, PinRef};
use timing_closure::sta::{Constraints, Sta, Timer};

/// Asserts the timer's cached world is bit-identical to a fresh full STA.
fn assert_matches_full(timer: &Timer<'_>, nl: &Netlist, lib: &Library, stack: &BeolStack) {
    let sta = Sta::new(nl, lib, stack, timer.constraints());
    let (state, wires) = sta.propagate().unwrap();
    assert_eq!(
        timer.states(),
        &state[..],
        "net states diverged from full STA"
    );
    assert_eq!(timer.wires(), &wires, "wire timings diverged from full STA");
    let fresh = sta.run().unwrap();
    let incr = timer.report(nl);
    assert_eq!(incr.endpoints, fresh.endpoints, "endpoint reports diverged");
    assert_eq!(incr.wns(), fresh.wns());
    assert_eq!(incr.tns(), fresh.tns());
}

/// Nets that can always absorb a rewired sink without creating a
/// combinational cycle: primary inputs and flop-driven nets.
fn acyclic_safe_nets(nl: &Netlist, lib: &Library) -> Vec<NetId> {
    let mut safe: Vec<NetId> = nl.primary_inputs().to_vec();
    for (i, net) in nl.nets().enumerate() {
        if let Some(driver) = net.driver {
            if lib.cell(nl.cell(driver).master).kind == CellKind::Flop {
                safe.push(NetId::new(i));
            }
        }
    }
    safe
}

/// Applies one random journaled ECO edit. Returns `false` if the drawn
/// edit was inapplicable (e.g. no sized-up variant exists) so the caller
/// can redraw.
fn random_edit(rng: &mut Rng, nl: &mut Netlist, lib: &Library) -> bool {
    match rng.below(6) {
        0 => {
            // Wirelength change on a random net.
            let net = NetId::new(rng.below(nl.net_count()));
            nl.set_wire_length(net, rng.uniform_in(5.0, 400.0));
            true
        }
        1 => {
            // Route-class (NDR) change.
            let net = NetId::new(rng.below(nl.net_count()));
            nl.set_route_class(net, rng.below(3) as u8);
            true
        }
        2 | 3 => {
            // Master swap along a random ladder direction.
            let cell = CellId::new(rng.below(nl.cell_count()));
            let cur = nl.cell(cell).master;
            let alt = match rng.below(4) {
                0 => lib.vt_faster(cur),
                1 => lib.vt_slower(cur),
                2 => lib.upsize(cur),
                _ => lib.downsize(cur),
            };
            match alt {
                Some(m) => {
                    nl.swap_master(lib, cell, m).unwrap();
                    true
                }
                None => false,
            }
        }
        4 => {
            // Buffer a random subset of a driven net's sinks.
            let Some(buf) = lib.variant("BUF", VtClass::Svt, 2.0) else {
                return false;
            };
            let candidates: Vec<NetId> = (0..nl.net_count())
                .map(NetId::new)
                .filter(|&n| nl.net(n).driver.is_some() && !nl.net(n).sinks.is_empty())
                .collect();
            if candidates.is_empty() {
                return false;
            }
            let net = *rng.choose(&candidates);
            let sinks = nl.net(net).sinks.to_vec();
            let mut moved: Vec<PinRef> =
                sinks.iter().copied().filter(|_| rng.chance(0.5)).collect();
            if moved.is_empty() {
                moved.push(sinks[0]);
            }
            nl.insert_buffer(lib, net, &moved, buf).unwrap();
            true
        }
        _ => {
            // Rewire a random sink onto a cycle-safe net.
            let safe = acyclic_safe_nets(nl, lib);
            let candidates: Vec<PinRef> = nl.nets().flat_map(|n| n.sinks.iter().copied()).collect();
            if safe.is_empty() || candidates.is_empty() {
                return false;
            }
            let sink = *rng.choose(&candidates);
            let target = *rng.choose(&safe);
            nl.rewire_input(sink, target);
            true
        }
    }
}

/// Draws edits until one applies (bounded redraws keep the stream moving).
fn apply_edit(rng: &mut Rng, nl: &mut Netlist, lib: &Library) {
    for _ in 0..32 {
        if random_edit(rng, nl, lib) {
            return;
        }
    }
    panic!("no applicable ECO edit after 32 draws");
}

fn run_sequence(profile: BenchProfile, gen_seed: u64, edit_seed: u64, edits: usize) {
    let lib = Library::generate(&LibConfig::default(), &PvtCorner::typical());
    let stack = BeolStack::n20();
    let mut nl = generate(&lib, profile, gen_seed).unwrap();
    let mut rng = Rng::seed_from(edit_seed);
    let cons = Constraints::single_clock(1_100.0);
    let mut timer = Timer::new(&nl, &lib, &stack, cons).unwrap();
    assert_matches_full(&timer, &nl, &lib, &stack);

    for i in 0..edits {
        apply_edit(&mut rng, &mut nl, &lib);
        timer.update(&nl).unwrap();
        assert_matches_full(&timer, &nl, &lib, &stack);

        // Every few edits, speculate a couple of extra edits behind a
        // checkpoint and reject them, verifying the rollback restores the
        // exact pre-speculation world.
        if i % 5 == 4 {
            let states_before = timer.states().to_vec();
            let wires_before = timer.wires().clone();
            let report_before = timer.report(&nl);
            let nl_cp = nl.journal_len();
            let t_cp = timer.checkpoint();
            apply_edit(&mut rng, &mut nl, &lib);
            apply_edit(&mut rng, &mut nl, &lib);
            timer.update(&nl).unwrap();
            nl.undo_to(nl_cp).unwrap();
            timer.rollback_to(t_cp).unwrap();
            assert_eq!(
                timer.states(),
                &states_before[..],
                "rollback lost net state"
            );
            assert_eq!(timer.wires(), &wires_before, "rollback lost wire state");
            assert_eq!(
                timer.report(&nl).endpoints,
                report_before.endpoints,
                "rollback lost endpoints"
            );
            assert_matches_full(&timer, &nl, &lib, &stack);
        }
    }
}

#[test]
fn incremental_matches_full_on_tiny_random_ecos() {
    run_sequence(BenchProfile::tiny(), 17, 0xDAC_2015, 25);
}

#[test]
fn incremental_matches_full_on_c5315_random_ecos() {
    run_sequence(BenchProfile::c5315(), 21, 0xC5315, 12);
}

#[test]
fn incremental_matches_full_on_c7552_random_ecos() {
    run_sequence(BenchProfile::c7552(), 23, 0xC7552, 10);
}
