//! Byte-stability goldens for the SoA netlist refactor.
//!
//! The flat data plane (CSR input columns, pooled sink lists, interned
//! names) must be an *invisible* change: the same generator seed, ECO
//! script and journal replay must emit byte-for-byte the Verilog the
//! pre-refactor AoS netlist emitted. The constants below (lengths and
//! FNV-1a hashes) and `golden/c5315_seed2015.v` were captured from the
//! last pre-refactor build; any drift here means the storage change
//! leaked into observable behavior.

use tc_core::ids::{CellId, NetId};
use tc_core::rng::Rng;
use tc_liberty::{CellKind, LibConfig, Library, PvtCorner};
use tc_netlist::gen::{generate, generate_streamed, BenchProfile};
use tc_netlist::{parse_verilog_from, write_verilog, Netlist};

const C5315_LEN: usize = 205_685;
const C5315_HASH: u64 = 0xbb28_7a68_3c1a_7303;
const C5315_ECO_LEN: usize = 205_782;
const C5315_ECO_HASH: u64 = 0x64ae_c0b0_da19_3ac2;
const SCALE50K_LEN: usize = 4_364_444;
const SCALE50K_HASH: u64 = 0x8398_f602_99a0_2d5a;

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn lib() -> Library {
    Library::generate(&LibConfig::default(), &PvtCorner::typical())
}

/// Panics with the first differing line instead of dumping megabytes.
fn assert_same_text(a: &str, b: &str, what: &str) {
    if a == b {
        return;
    }
    for (i, (la, lb)) in a.lines().zip(b.lines()).enumerate() {
        assert_eq!(la, lb, "{what}: first divergence at line {i}");
    }
    panic!("{what}: lengths differ ({} vs {})", a.len(), b.len());
}

/// The deterministic mixed ECO script the golden constants were captured
/// with: wirelength scaling, NDR promotion, Vt swaps on combinational
/// cells, and buffer insertions on long multi-sink nets.
fn apply_eco_script(nl: &mut Netlist, lib: &Library, edits: usize) {
    let mut rng = Rng::seed_from(2015);
    let mut applied = 0usize;
    while applied < edits {
        match rng.below(4) {
            0 => {
                let net = NetId::new(rng.below(nl.net_count()));
                let cur = nl.net(net).wire_length_um;
                nl.set_wire_length(net, (cur * rng.uniform_in(0.6, 1.4)).max(1.0));
                applied += 1;
            }
            1 => {
                let net = NetId::new(rng.below(nl.net_count()));
                nl.set_route_class(net, 1 + rng.below(2) as u8);
                applied += 1;
            }
            2 => {
                let cell = CellId::new(rng.below(nl.cell_count()));
                if lib.cell(nl.cell(cell).master).kind == CellKind::Flop {
                    continue;
                }
                let Some(faster) = lib.vt_faster(nl.cell(cell).master) else {
                    continue;
                };
                nl.swap_master(lib, cell, faster).expect("swap");
                applied += 1;
            }
            _ => {
                let net = NetId::new(rng.below(nl.net_count()));
                let n = nl.net(net);
                if n.driver.is_none() || n.sinks.len() < 2 || n.wire_length_um < 60.0 {
                    continue;
                }
                let Some(buf) = lib.variant("BUF", tc_device::VtClass::Svt, 4.0) else {
                    continue;
                };
                let moved: Vec<_> = n.sinks[..n.sinks.len() / 2].to_vec();
                let half = n.wire_length_um / 2.0;
                nl.insert_buffer(lib, net, &moved, buf).expect("buffer");
                nl.set_wire_length(net, half);
                applied += 1;
            }
        }
    }
}

#[test]
fn c5315_generation_matches_pre_refactor_golden() {
    let lib = lib();
    let nl = generate(&lib, BenchProfile::c5315(), 2015).unwrap();
    let v = write_verilog(&nl, &lib);
    let golden = include_str!("golden/c5315_seed2015.v");
    assert_same_text(&v, golden, "c5315 seed-2015 Verilog vs committed golden");
    assert_eq!(v.len(), C5315_LEN);
    assert_eq!(fnv1a(v.as_bytes()), C5315_HASH);
}

#[test]
fn c5315_eco_script_and_journal_undo_are_byte_stable() {
    let lib = lib();
    let mut nl = generate(&lib, BenchProfile::c5315(), 2015).unwrap();
    let v0 = write_verilog(&nl, &lib);

    // Generation itself journals its construction edits, so the undo
    // target is the post-generation cursor, not zero.
    let t0 = nl.journal_len();
    apply_eco_script(&mut nl, &lib, 12);
    let v_eco = write_verilog(&nl, &lib);
    assert_eq!(v_eco.len(), C5315_ECO_LEN);
    assert_eq!(fnv1a(v_eco.as_bytes()), C5315_ECO_HASH);

    nl.undo_to(t0).unwrap();
    let v_undone = write_verilog(&nl, &lib);
    assert_same_text(&v_undone, &v0, "journal undo round-trip");
}

#[test]
fn c5315_verilog_parse_roundtrip_is_byte_stable() {
    let lib = lib();
    let golden = include_str!("golden/c5315_seed2015.v");
    // Tiny buffer capacity forces statements to span refills, exercising
    // the streaming accumulation path.
    let reader = std::io::BufReader::with_capacity(23, golden.as_bytes());
    let parsed = parse_verilog_from(reader, &lib).unwrap();
    let v = write_verilog(&parsed, &lib);
    assert_same_text(&v, golden, "parse→write round-trip");
}

#[test]
fn scale_50k_streamed_generation_matches_pre_refactor_hash() {
    let lib = lib();
    let nl = generate_streamed(&lib, BenchProfile::scale_50k(), 2015).unwrap();
    let v = write_verilog(&nl, &lib);
    assert_eq!(v.len(), SCALE50K_LEN);
    assert_eq!(fnv1a(v.as_bytes()), SCALE50K_HASH);
}
