//! tc-prof: trace analytics over the flight recorder.
//!
//! The recorder ([`tc_obs::trace`]) answers "what happened when"; this
//! crate answers "where did the wall clock go, and did it move since
//! the last commit". It consumes either the live per-thread rings
//! ([`Profile::from_rings`]) or an exported Chrome trace sidecar
//! ([`Profile::from_chrome_trace`]) and reduces the event timeline to a
//! **span profile**:
//!
//! * per-span-name aggregates — count, total/self/child wall time,
//!   occurrence-duration p50/p90/p99, and net allocation deltas
//!   reconstructed from the `mem.live_bytes` gauge samples the span
//!   layer emits at span edges;
//! * per-thread **lane utilization** — busy/idle per recorded thread
//!   (`main`, `tc-par-0`, …), with realized parallelism Σbusy ⁄ wall;
//! * the **critical chain** — the root-to-leaf path through the span
//!   tree with the greatest self-time underneath it, the
//!   program-execution analogue of a timing graph's critical path.
//!
//! Profiles serialize to a schema-versioned `PROF_*.json` sidecar
//! ([`Profile::render_json`] / [`Profile::parse`], kind
//! [`PROF_KIND`]) that the benchmark harnesses emit next to their
//! `BENCH_*`/`RUN_*` documents, and [`diff`](diff::diff) compares two
//! profiles span-by-span under a relative tolerance so CI can gate a
//! committed baseline: a hot-path regression surfaces as a *named span
//! with a percentage*, not a silent wall-clock drift.
//!
//! Self-time accounting mirrors [`TraceSnapshot::to_folded`]'s
//! tolerance for imbalance: an `End` with no open matching frame is
//! counted in [`Profile::unmatched_ends`] and dropped, and frames still
//! open at the last timestamp are closed there and counted in
//! [`Profile::open_spans`]. A non-zero [`Profile::dropped_events`]
//! (ring overflow) is a **hard finding** — truncated rings skew
//! self-time, so `tc_prof report` and `tc_prof diff` refuse to treat
//! such a profile as gateable.
//!
//! [`TraceSnapshot::to_folded`]: tc_obs::TraceSnapshot::to_folded

pub mod codec;
pub mod diff;
pub mod profile;

pub use diff::{diff, DiffOptions, DiffReport};
pub use profile::{ChainLink, Lane, Profile, SpanProfile};

/// Schema version stamped into every `PROF_*.json` document.
pub const PROF_SCHEMA_VERSION: u64 = 1;

/// The `kind` discriminator stamped into every `PROF_*.json` document.
pub const PROF_KIND: &str = "tc.profile";

/// Human-readable duration: picks s/ms/µs/ns by magnitude.
pub fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.1}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.1}µs", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}
