//! The `tc_prof` CLI: span profiles and differential profiling gates
//! over flight-recorder output.
//!
//! ```text
//! tc_prof report <trace.json | PROF_*.json> [--json] [--top N]
//! tc_prof diff <baseline PROF.json> <candidate PROF.json>
//!         [--tol FRACTION] [--min-share FRACTION] [--counts-informational]
//! tc_prof fold <trace.json>
//! ```
//!
//! Exit codes (the tcdiff contract): `0` — clean; `1` — finding
//! (dropped trace events under `report`, a regression under `diff`);
//! `2` — usage, I/O, parse, or schema error.

use std::process::ExitCode;

use tc_prof::profile::fold_chrome_trace;
use tc_prof::{diff, DiffOptions, Profile, PROF_KIND};

fn usage() -> &'static str {
    "usage: tc_prof report <trace.json | PROF_*.json> [--json] [--top N] [--workload LABEL]\n\
     \x20      tc_prof diff <baseline.json> <candidate.json> [--tol FRACTION]\n\
     \x20              [--min-share FRACTION] [--counts-informational]\n\
     \x20      tc_prof fold <trace.json>\n\
     \n\
     report — reduce a Chrome trace sidecar (or re-render an existing\n\
     PROF_*.json) to a span profile: per-span count/total/self/child,\n\
     p50/p90/p99, net heap, lane utilization, critical chain. Dropped\n\
     trace events are a hard finding (exit 1): ring overflow truncates\n\
     self-time. --json emits the schema-versioned PROF document.\n\
     diff — compare two PROF documents span-by-span: structure and\n\
     counts exactly, self time under --tol (default 50%) for spans\n\
     holding at least --min-share of wall (default 2%). Exit 1 on any\n\
     regression.\n\
     fold — re-fold a Chrome trace to flamegraph.pl input."
}

fn fail(msg: &str) -> ExitCode {
    eprintln!("tc_prof: {msg}");
    ExitCode::from(2)
}

fn read(path: &str) -> Result<String, String> {
    std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))
}

/// A PROF document starts with the profile kind marker; anything else
/// is treated as a Chrome trace.
fn load_profile(path: &str, text: &str) -> Result<Profile, String> {
    if text.contains(PROF_KIND) {
        Profile::parse(text).map_err(|e| format!("{path}: {e}"))
    } else {
        Profile::from_chrome_trace(text).map_err(|e| format!("{path}: {e}"))
    }
}

fn cmd_report(args: &[String]) -> ExitCode {
    let Some(path) = args.first() else {
        return fail(usage());
    };
    let mut json = false;
    let mut top = 20usize;
    let mut workload: Option<String> = None;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--json" => {
                json = true;
                i += 1;
            }
            "--top" => {
                let Some(n) = args.get(i + 1).and_then(|v| v.parse().ok()) else {
                    return fail("--top needs an integer");
                };
                top = n;
                i += 2;
            }
            "--workload" => {
                let Some(label) = args.get(i + 1) else {
                    return fail("--workload needs a label");
                };
                workload = Some(label.clone());
                i += 2;
            }
            other => return fail(&format!("unknown flag `{other}`\n{}", usage())),
        }
    }
    let text = match read(path) {
        Ok(t) => t,
        Err(e) => return fail(&e),
    };
    let mut profile = match load_profile(path, &text) {
        Ok(p) => p,
        Err(e) => return fail(&e),
    };
    if let Some(label) = workload {
        profile = profile.workload(label);
    }
    if json {
        println!("{}", profile.render_json());
    } else {
        print!("{}", profile.render_text(top));
    }
    if profile.dropped_events > 0 {
        eprintln!(
            "tc_prof: {path}: {} dropped trace event(s) — profile is truncated",
            profile.dropped_events
        );
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}

fn cmd_diff(args: &[String]) -> ExitCode {
    let mut paths = Vec::new();
    let mut opts = DiffOptions::default();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--tol" => {
                let Some(t) = args.get(i + 1).and_then(|v| v.parse::<f64>().ok()) else {
                    return fail("--tol needs a fraction, e.g. --tol 0.5");
                };
                if t.is_nan() || t < 0.0 {
                    return fail("--tol must be >= 0");
                }
                opts.tol = t;
                i += 2;
            }
            "--min-share" => {
                let Some(t) = args.get(i + 1).and_then(|v| v.parse::<f64>().ok()) else {
                    return fail("--min-share needs a fraction, e.g. --min-share 0.02");
                };
                if t.is_nan() || t < 0.0 {
                    return fail("--min-share must be >= 0");
                }
                opts.min_share = t;
                i += 2;
            }
            "--counts-informational" => {
                opts.counts_informational = true;
                i += 1;
            }
            other if other.starts_with("--") => {
                return fail(&format!("unknown flag `{other}`\n{}", usage()))
            }
            path => {
                paths.push(path.to_string());
                i += 1;
            }
        }
    }
    if paths.len() != 2 {
        return fail(usage());
    }
    let (ta, tb) = match (read(&paths[0]), read(&paths[1])) {
        (Ok(a), Ok(b)) => (a, b),
        (Err(e), _) | (_, Err(e)) => return fail(&e),
    };
    let base = match Profile::parse(&ta) {
        Ok(p) => p,
        Err(e) => return fail(&format!("{}: {e}", paths[0])),
    };
    let cand = match Profile::parse(&tb) {
        Ok(p) => p,
        Err(e) => return fail(&format!("{}: {e}", paths[1])),
    };
    let report = diff(&base, &cand, &opts);
    for note in &report.notes {
        println!("note: {note}");
    }
    for r in &report.regressions {
        println!("REGRESSION: {r}");
    }
    if report.is_clean() {
        println!("PASS: {} vs {}", paths[0], paths[1]);
        ExitCode::SUCCESS
    } else {
        println!("FAIL: {} vs {}", paths[0], paths[1]);
        ExitCode::from(1)
    }
}

fn cmd_fold(args: &[String]) -> ExitCode {
    let [path] = args else {
        return fail(usage());
    };
    let text = match read(path) {
        Ok(t) => t,
        Err(e) => return fail(&e),
    };
    match fold_chrome_trace(&text) {
        Ok(folded) => {
            print!("{folded}");
            ExitCode::SUCCESS
        }
        Err(e) => fail(&format!("{path}: {e}")),
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") || args.is_empty() {
        println!("{}", usage());
        return ExitCode::from(if args.is_empty() { 2 } else { 0 });
    }
    match args[0].as_str() {
        "report" => cmd_report(&args[1..]),
        "diff" => cmd_diff(&args[1..]),
        "fold" => cmd_fold(&args[1..]),
        other => fail(&format!("unknown command `{other}`\n{}", usage())),
    }
}
