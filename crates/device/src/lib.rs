#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! # tc-device — compact transistor models
//!
//! This crate is the workspace's stand-in for foundry SPICE models. It
//! implements the **alpha-power-law MOSFET** (Sakurai–Newton) with
//! temperature-dependent threshold voltage and mobility, which is enough
//! to reproduce every device-level behaviour the paper leans on:
//!
//! * **Temperature inversion** (paper §2.3, Fig 6b): at supply voltages
//!   below the reversal point `Vtr` the threshold-voltage term dominates
//!   and circuits are *slower cold*; above `Vtr` mobility degradation
//!   dominates and circuits are *slower hot*.
//! * **Multi-Vt libraries** ([`VtClass`]): ULVT/LVT/SVT/HVT devices trade
//!   speed against exponentially increasing leakage, the knob behind the
//!   Vt-swap fix of the closure loop (Fig 1) and the MinIA interference of
//!   §2.4.
//! * **BTI aging** hook: a [`MosDevice`] carries a threshold shift
//!   `delta_vt` that `tc-aging` populates from its BTI model (§3.3).
//! * **Voltage scaling**: drive current collapses as VDD approaches Vt,
//!   reproducing the wide-voltage-range behaviour (0.46–1.25 V) that
//!   drives corner explosion (§2.3).
//!
//! # Examples
//!
//! ```
//! use tc_core::units::{Celsius, Volt};
//! use tc_device::{MosDevice, MosKind, Technology, VtClass};
//!
//! let tech = Technology::planar_28nm();
//! let nmos = MosDevice::new(MosKind::Nmos, VtClass::Svt, 1.0);
//! // Saturation current rises with gate drive.
//! let lo = nmos.drain_current(&tech, Volt::new(0.6), Volt::new(0.9), Celsius::new(25.0));
//! let hi = nmos.drain_current(&tech, Volt::new(0.9), Volt::new(0.9), Celsius::new(25.0));
//! assert!(hi > lo);
//! ```

pub mod mosfet;
pub mod vt;

pub use mosfet::{MosDevice, MosKind, Technology};
pub use vt::VtClass;
