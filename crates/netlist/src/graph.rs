//! The netlist graph and its ECO edit operations.

use std::collections::HashMap;

use tc_core::error::{Error, Result};
use tc_core::ids::{CellId, LibCellId, NetId};
use tc_liberty::{CellKind, Library};

use crate::journal::NetlistEdit;

/// A (cell, input-pin-index) sink reference.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct PinRef {
    /// The sink cell.
    pub cell: CellId,
    /// Index into the cell's input pin list.
    pub pin: usize,
}

/// One cell instance.
#[derive(Clone, Debug, PartialEq)]
pub struct Cell {
    /// Instance name.
    pub name: String,
    /// The library master this instance is bound to.
    pub master: LibCellId,
    /// Input nets, in the master's pin order (`D`, `CK` for flops).
    pub inputs: Vec<NetId>,
    /// The output net.
    pub output: NetId,
}

/// One net.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Net {
    /// Net name.
    pub name: String,
    /// Driving cell; `None` for primary inputs.
    pub driver: Option<CellId>,
    /// Sink pins.
    pub sinks: Vec<PinRef>,
    /// `true` if the net is a primary output.
    pub is_output: bool,
    /// Estimated routed wirelength in µm (annotated by placement).
    pub wire_length_um: f64,
    /// Routing-rule class: 0 = default, 1 = double-width NDR,
    /// 2 = double-width/double-spacing NDR (set by closure fixes and
    /// interpreted by `tc-interconnect`).
    pub route_class: u8,
}

/// A gate-level netlist bound to a [`Library`]'s master ids.
///
/// Invariants (checked by [`Netlist::validate`]):
/// * every net has exactly one driver (a cell or a primary input);
/// * every cell's input count matches its master's pin count;
/// * flop `CK` pins connect to a clock net.
#[derive(Clone, Debug, Default)]
pub struct Netlist {
    /// Design name.
    pub name: String,
    cells: Vec<Cell>,
    nets: Vec<Net>,
    inputs: Vec<NetId>,
    by_cell_name: HashMap<String, CellId>,
    journal: Vec<NetlistEdit>,
}

impl Netlist {
    /// Creates an empty netlist.
    pub fn new(name: impl Into<String>) -> Self {
        Netlist {
            name: name.into(),
            ..Default::default()
        }
    }

    /// Adds a primary input and returns its net.
    pub fn add_input(&mut self, name: impl Into<String>) -> NetId {
        let id = NetId::new(self.nets.len());
        self.nets.push(Net {
            name: name.into(),
            ..Default::default()
        });
        self.inputs.push(id);
        id
    }

    /// Adds a cell instance driving a fresh net; returns `(cell, output)`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidInput`] if the input count does not match
    /// the master's pin count, or the instance name is already taken.
    pub fn add_cell(
        &mut self,
        name: impl Into<String>,
        lib: &Library,
        master: LibCellId,
        inputs: &[NetId],
    ) -> Result<(CellId, NetId)> {
        let name = name.into();
        let want = lib.cell(master).input_pins().len();
        if inputs.len() != want {
            return Err(Error::invalid_input(format!(
                "cell {name}: master {} wants {want} inputs, got {}",
                lib.cell(master).name,
                inputs.len()
            )));
        }
        if self.by_cell_name.contains_key(&name) {
            return Err(Error::invalid_input(format!(
                "duplicate instance name {name}"
            )));
        }
        let cell_id = CellId::new(self.cells.len());
        let out = NetId::new(self.nets.len());
        self.nets.push(Net {
            name: format!("{name}_out"),
            driver: Some(cell_id),
            ..Default::default()
        });
        for (pin, &net) in inputs.iter().enumerate() {
            self.nets[net.index()]
                .sinks
                .push(PinRef { cell: cell_id, pin });
        }
        self.by_cell_name.insert(name.clone(), cell_id);
        self.cells.push(Cell {
            name,
            master,
            inputs: inputs.to_vec(),
            output: out,
        });
        Ok((cell_id, out))
    }

    /// Marks a net as a primary output.
    pub fn mark_output(&mut self, net: NetId) {
        self.nets[net.index()].is_output = true;
    }

    /// Number of cell instances.
    pub fn cell_count(&self) -> usize {
        self.cells.len()
    }

    /// Number of nets.
    pub fn net_count(&self) -> usize {
        self.nets.len()
    }

    /// All cells, indexable by [`CellId`].
    pub fn cells(&self) -> &[Cell] {
        &self.cells
    }

    /// All nets, indexable by [`NetId`].
    pub fn nets(&self) -> &[Net] {
        &self.nets
    }

    /// One cell.
    pub fn cell(&self, id: CellId) -> &Cell {
        &self.cells[id.index()]
    }

    /// One net.
    pub fn net(&self, id: NetId) -> &Net {
        &self.nets[id.index()]
    }

    /// Primary input nets.
    pub fn primary_inputs(&self) -> &[NetId] {
        &self.inputs
    }

    /// Primary output nets.
    pub fn primary_outputs(&self) -> impl Iterator<Item = NetId> + '_ {
        self.nets
            .iter()
            .enumerate()
            .filter(|(_, n)| n.is_output)
            .map(|(i, _)| NetId::new(i))
    }

    /// Looks up a cell by instance name.
    pub fn cell_named(&self, name: &str) -> Option<CellId> {
        self.by_cell_name.get(name).copied()
    }

    /// Ids of all flop instances.
    pub fn flops<'a>(&'a self, lib: &'a Library) -> impl Iterator<Item = CellId> + 'a {
        self.cells
            .iter()
            .enumerate()
            .filter(move |(_, c)| lib.cell(c.master).kind == CellKind::Flop)
            .map(|(i, _)| CellId::new(i))
    }

    /// Annotates a net's estimated wirelength (journaled: closure fixes
    /// re-annotate split nets, and the incremental timer must see it).
    pub fn set_wire_length(&mut self, net: NetId, um: f64) {
        let old_um = self.nets[net.index()].wire_length_um;
        self.nets[net.index()].wire_length_um = um;
        self.journal.push(NetlistEdit::SetWireLength {
            net,
            old_um,
            new_um: um,
        });
    }

    /// **ECO: routing rule.** Sets a net's route class (NDR application).
    pub fn set_route_class(&mut self, net: NetId, class: u8) {
        let old_class = self.nets[net.index()].route_class;
        self.nets[net.index()].route_class = class;
        self.journal.push(NetlistEdit::SetRouteClass {
            net,
            old_class,
            new_class: class,
        });
    }

    /// **ECO: master swap.** Rebinds a cell to a different master with the
    /// same pin interface (Vt-swap or resize).
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidInput`] if the new master's pin count
    /// differs.
    pub fn swap_master(
        &mut self,
        lib: &Library,
        cell: CellId,
        new_master: LibCellId,
    ) -> Result<()> {
        let want = self.cells[cell.index()].inputs.len();
        let got = lib.cell(new_master).input_pins().len();
        if want != got {
            return Err(Error::invalid_input(format!(
                "swap on {}: pin count {got} != {want}",
                self.cells[cell.index()].name
            )));
        }
        let old_master = self.cells[cell.index()].master;
        self.cells[cell.index()].master = new_master;
        self.journal.push(NetlistEdit::SwapMaster {
            cell,
            old_master,
            new_master,
        });
        Ok(())
    }

    /// **ECO: buffer insertion.** Splits `net`, inserting a buffer that
    /// drives the given subset of its sinks (the classic long-net /
    /// weak-driver fix of Fig 1). Returns the new buffer's cell id.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidInput`] if any requested sink is not on the
    /// net, or the buffer master is not single-input.
    pub fn insert_buffer(
        &mut self,
        lib: &Library,
        net: NetId,
        moved_sinks: &[PinRef],
        buf_master: LibCellId,
    ) -> Result<CellId> {
        if lib.cell(buf_master).input_pins().len() != 1 {
            return Err(Error::invalid_input("buffer master must be single-input"));
        }
        for s in moved_sinks {
            if !self.nets[net.index()].sinks.contains(s) {
                return Err(Error::invalid_input(format!(
                    "sink {:?} not on net {}",
                    s,
                    self.nets[net.index()].name
                )));
            }
        }
        let buf_name = format!("eco_buf_{}", self.cells.len());
        let (buf_id, buf_out) = self.add_cell(buf_name, lib, buf_master, &[net])?;
        // Record each moved sink's original position so undo can restore
        // the exact sink order (per-sink wire delays align with it).
        let moved_with_index: Vec<(PinRef, usize)> = self.nets[net.index()]
            .sinks
            .iter()
            .enumerate()
            .filter(|(_, s)| moved_sinks.contains(s))
            .map(|(i, &s)| (s, i))
            .collect();
        // Detach the moved sinks from the original net and re-home them.
        self.nets[net.index()]
            .sinks
            .retain(|s| !moved_sinks.contains(s));
        for &s in moved_sinks {
            self.cells[s.cell.index()].inputs[s.pin] = buf_out;
            self.nets[buf_out.index()].sinks.push(s);
        }
        self.journal.push(NetlistEdit::InsertBuffer {
            buffer: buf_id,
            buffer_out: buf_out,
            src_net: net,
            moved_sinks: moved_with_index,
        });
        Ok(buf_id)
    }

    /// **ECO: rewire.** Moves one input pin of a cell onto a different
    /// net, maintaining both nets' sink lists.
    pub fn rewire_input(&mut self, sink: PinRef, new_net: NetId) {
        let old = self.cells[sink.cell.index()].inputs[sink.pin];
        let old_index = self.nets[old.index()]
            .sinks
            .iter()
            .position(|s| *s == sink)
            .expect("sink must be on its recorded net");
        self.nets[old.index()].sinks.retain(|s| *s != sink);
        self.cells[sink.cell.index()].inputs[sink.pin] = new_net;
        self.nets[new_net.index()].sinks.push(sink);
        self.journal.push(NetlistEdit::RewireInput {
            sink,
            old_net: old,
            new_net,
            old_index,
        });
    }

    /// The full edit journal (construction edits excluded — see
    /// [`NetlistEdit`]).
    pub fn journal(&self) -> &[NetlistEdit] {
        &self.journal
    }

    /// The current journal length — the checkpoint token for
    /// [`Netlist::undo_to`] and the incremental timer's cursor.
    pub fn journal_len(&self) -> usize {
        self.journal.len()
    }

    /// Rolls the netlist back to a checkpoint taken with
    /// [`Netlist::journal_len`], applying the inverse of every journaled
    /// edit since, newest first, and truncating the journal. Cost is
    /// O(edits undone), not O(design).
    ///
    /// Identifiers remain stable: undoing a buffer insertion removes the
    /// *last* cell and net, so every id allocated before the checkpoint
    /// still names the same object.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidInput`] if `checkpoint` is beyond the
    /// journal, and [`Error::Internal`] if un-journaled structural
    /// mutations (direct `add_cell` calls) interleaved with the edits
    /// being undone.
    pub fn undo_to(&mut self, checkpoint: usize) -> Result<()> {
        if checkpoint > self.journal.len() {
            return Err(Error::invalid_input(format!(
                "undo checkpoint {checkpoint} beyond journal length {}",
                self.journal.len()
            )));
        }
        while self.journal.len() > checkpoint {
            let edit = self.journal.pop().expect("length checked");
            match edit {
                NetlistEdit::SwapMaster {
                    cell, old_master, ..
                } => {
                    self.cells[cell.index()].master = old_master;
                }
                NetlistEdit::SetWireLength { net, old_um, .. } => {
                    self.nets[net.index()].wire_length_um = old_um;
                }
                NetlistEdit::SetRouteClass { net, old_class, .. } => {
                    self.nets[net.index()].route_class = old_class;
                }
                NetlistEdit::RewireInput {
                    sink,
                    old_net,
                    new_net,
                    old_index,
                } => {
                    self.nets[new_net.index()].sinks.retain(|s| *s != sink);
                    self.cells[sink.cell.index()].inputs[sink.pin] = old_net;
                    self.nets[old_net.index()].sinks.insert(old_index, sink);
                }
                NetlistEdit::InsertBuffer {
                    buffer,
                    buffer_out,
                    src_net,
                    moved_sinks,
                } => {
                    if buffer.index() + 1 != self.cells.len()
                        || buffer_out.index() + 1 != self.nets.len()
                    {
                        return Err(Error::internal(
                            "undo of buffer insertion: cells/nets were added \
                             outside the journal since the edit",
                        ));
                    }
                    // Detach the buffer from the split net, restore the
                    // moved sinks at their original positions (ascending
                    // order keeps later indices valid), and drop the
                    // appended cell + net.
                    let tap = PinRef {
                        cell: buffer,
                        pin: 0,
                    };
                    self.nets[src_net.index()].sinks.retain(|s| *s != tap);
                    for &(s, i) in &moved_sinks {
                        self.cells[s.cell.index()].inputs[s.pin] = src_net;
                        self.nets[src_net.index()].sinks.insert(i, s);
                    }
                    let cell = self.cells.pop().expect("buffer cell present");
                    self.by_cell_name.remove(&cell.name);
                    self.nets.pop();
                }
            }
        }
        Ok(())
    }

    /// Total placement-site area of the design.
    pub fn total_area(&self, lib: &Library) -> f64 {
        self.cells
            .iter()
            .map(|c| lib.cell(c.master).area_sites)
            .sum()
    }

    /// Total leakage power in µW at the library's corner.
    pub fn total_leakage_uw(&self, lib: &Library) -> f64 {
        self.cells
            .iter()
            .map(|c| lib.cell(c.master).leakage_uw)
            .sum()
    }

    /// Checks the structural invariants.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Internal`] describing the first violation found.
    pub fn validate(&self, lib: &Library) -> Result<()> {
        for (i, net) in self.nets.iter().enumerate() {
            let id = NetId::new(i);
            let is_pi = self.inputs.contains(&id);
            if net.driver.is_none() && !is_pi {
                return Err(Error::internal(format!("net {} undriven", net.name)));
            }
            if net.driver.is_some() && is_pi {
                return Err(Error::internal(format!(
                    "net {} both driven and a primary input",
                    net.name
                )));
            }
            for s in &net.sinks {
                if self.cells[s.cell.index()].inputs[s.pin] != id {
                    return Err(Error::internal(format!(
                        "net {}: sink {:?} does not point back",
                        net.name, s
                    )));
                }
            }
        }
        for (i, cell) in self.cells.iter().enumerate() {
            if cell.inputs.len() != lib.cell(cell.master).input_pins().len() {
                return Err(Error::internal(format!("cell {} pin mismatch", cell.name)));
            }
            let out = &self.nets[cell.output.index()];
            if out.driver != Some(CellId::new(i)) {
                return Err(Error::internal(format!(
                    "cell {} output net driver mismatch",
                    cell.name
                )));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tc_device::VtClass;
    use tc_liberty::{LibConfig, PvtCorner};

    fn lib() -> Library {
        Library::generate(&LibConfig::default(), &PvtCorner::typical())
    }

    fn tiny(lib: &Library) -> Netlist {
        // a, b → NAND2 → INV → out
        let mut nl = Netlist::new("tiny");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let nand = lib.variant("NAND2", VtClass::Svt, 1.0).unwrap();
        let inv = lib.variant("INV", VtClass::Svt, 1.0).unwrap();
        let (_, n1) = nl.add_cell("u1", lib, nand, &[a, b]).unwrap();
        let (_, n2) = nl.add_cell("u2", lib, inv, &[n1]).unwrap();
        nl.mark_output(n2);
        nl
    }

    #[test]
    fn build_and_validate() {
        let lib = lib();
        let nl = tiny(&lib);
        assert_eq!(nl.cell_count(), 2);
        assert_eq!(nl.net_count(), 4);
        nl.validate(&lib).unwrap();
        assert_eq!(nl.primary_outputs().count(), 1);
        assert!(nl.cell_named("u1").is_some());
    }

    #[test]
    fn rejects_pin_mismatch_and_duplicates() {
        let lib = lib();
        let mut nl = Netlist::new("bad");
        let a = nl.add_input("a");
        let nand = lib.variant("NAND2", VtClass::Svt, 1.0).unwrap();
        assert!(nl.add_cell("u1", &lib, nand, &[a]).is_err());
        let inv = lib.variant("INV", VtClass::Svt, 1.0).unwrap();
        nl.add_cell("u1", &lib, inv, &[a]).unwrap();
        assert!(nl.add_cell("u1", &lib, inv, &[a]).is_err());
    }

    #[test]
    fn swap_master_eco() {
        let lib = lib();
        let mut nl = tiny(&lib);
        let u1 = nl.cell_named("u1").unwrap();
        let lvt = lib.variant("NAND2", VtClass::Lvt, 1.0).unwrap();
        nl.swap_master(&lib, u1, lvt).unwrap();
        assert_eq!(nl.cell(u1).master, lvt);
        nl.validate(&lib).unwrap();
        // Swapping to a mismatched-arity master fails.
        let inv = lib.variant("INV", VtClass::Svt, 1.0).unwrap();
        assert!(nl.swap_master(&lib, u1, inv).is_err());
    }

    #[test]
    fn buffer_insertion_eco() {
        let lib = lib();
        let mut nl = tiny(&lib);
        let u2 = nl.cell_named("u2").unwrap();
        let n1 = nl.cell(nl.cell_named("u1").unwrap()).output;
        let sink = PinRef { cell: u2, pin: 0 };
        let buf = lib.variant("BUF", VtClass::Svt, 2.0).unwrap();
        let buf_id = nl.insert_buffer(&lib, n1, &[sink], buf).unwrap();
        nl.validate(&lib).unwrap();
        // Original net now drives only the buffer.
        assert_eq!(nl.net(n1).sinks.len(), 1);
        assert_eq!(nl.net(n1).sinks[0].cell, buf_id);
        // u2 is fed by the buffer's output.
        assert_eq!(nl.cell(u2).inputs[0], nl.cell(buf_id).output);
    }

    #[test]
    fn area_and_leakage_aggregate() {
        let lib = lib();
        let nl = tiny(&lib);
        assert!(nl.total_area(&lib) > 0.0);
        assert!(nl.total_leakage_uw(&lib) > 0.0);
    }

    /// Structural snapshot for undo round-trip checks: everything an
    /// undo must restore bit-identically.
    fn snapshot(nl: &Netlist) -> (Vec<Cell>, Vec<Net>, usize) {
        (nl.cells().to_vec(), nl.nets().to_vec(), nl.journal_len())
    }

    #[test]
    fn journal_records_eco_edits() {
        let lib = lib();
        let mut nl = tiny(&lib);
        assert_eq!(nl.journal_len(), 0, "construction is not journaled");
        let u1 = nl.cell_named("u1").unwrap();
        let n1 = nl.cell(u1).output;
        let lvt = lib.variant("NAND2", VtClass::Lvt, 1.0).unwrap();
        nl.swap_master(&lib, u1, lvt).unwrap();
        nl.set_wire_length(n1, 33.0);
        nl.set_route_class(n1, 2);
        assert_eq!(nl.journal_len(), 3);
        assert!(matches!(
            nl.journal()[0],
            NetlistEdit::SwapMaster { cell, .. } if cell == u1
        ));
        assert!(!nl.journal()[1].is_structural());
        // Failed edits are not journaled.
        let inv = lib.variant("INV", VtClass::Svt, 1.0).unwrap();
        assert!(nl.swap_master(&lib, u1, inv).is_err());
        assert_eq!(nl.journal_len(), 3);
    }

    #[test]
    fn undo_restores_value_edits() {
        let lib = lib();
        let mut nl = tiny(&lib);
        let u1 = nl.cell_named("u1").unwrap();
        let n1 = nl.cell(u1).output;
        let before = snapshot(&nl);
        let lvt = lib.variant("NAND2", VtClass::Lvt, 1.0).unwrap();
        nl.swap_master(&lib, u1, lvt).unwrap();
        nl.set_wire_length(n1, 33.0);
        nl.set_route_class(n1, 2);
        nl.undo_to(before.2).unwrap();
        assert_eq!(snapshot(&nl), before);
        nl.validate(&lib).unwrap();
    }

    #[test]
    fn undo_restores_buffer_insertion() {
        let lib = lib();
        let mut nl = tiny(&lib);
        let u2 = nl.cell_named("u2").unwrap();
        let n1 = nl.cell(nl.cell_named("u1").unwrap()).output;
        let before = snapshot(&nl);
        let buf = lib.variant("BUF", VtClass::Svt, 2.0).unwrap();
        nl.insert_buffer(&lib, n1, &[PinRef { cell: u2, pin: 0 }], buf)
            .unwrap();
        assert_eq!(nl.journal_len(), 1);
        assert!(nl.journal()[0].is_structural());
        nl.undo_to(before.2).unwrap();
        assert_eq!(snapshot(&nl), before);
        assert!(nl.cell_named("u2").is_some());
        nl.validate(&lib).unwrap();
        // The buffer's name is free again.
        let redo = nl.insert_buffer(&lib, n1, &[PinRef { cell: u2, pin: 0 }], buf);
        assert!(redo.is_ok());
    }

    #[test]
    fn undo_restores_rewire_and_sink_order() {
        let lib = lib();
        // a → INV u1; a → INV u2; b → NAND(u1.out, u2.out) — then rewire
        // u2's input from a to b and undo.
        let mut nl = Netlist::new("rewire");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let inv = lib.variant("INV", VtClass::Svt, 1.0).unwrap();
        let nand = lib.variant("NAND2", VtClass::Svt, 1.0).unwrap();
        let (u1, o1) = nl.add_cell("u1", &lib, inv, &[a]).unwrap();
        let (u2, o2) = nl.add_cell("u2", &lib, inv, &[a]).unwrap();
        let (_, o3) = nl.add_cell("u3", &lib, nand, &[o1, o2]).unwrap();
        nl.mark_output(o3);
        let _ = u1;
        let before = snapshot(&nl);
        nl.rewire_input(PinRef { cell: u2, pin: 0 }, b);
        assert_eq!(nl.cell(u2).inputs[0], b);
        nl.undo_to(before.2).unwrap();
        assert_eq!(snapshot(&nl), before);
        nl.validate(&lib).unwrap();
    }

    #[test]
    fn undo_interleaved_sequence_lifo() {
        let lib = lib();
        let mut nl = tiny(&lib);
        let u1 = nl.cell_named("u1").unwrap();
        let u2 = nl.cell_named("u2").unwrap();
        let n1 = nl.cell(u1).output;
        let before = snapshot(&nl);
        let lvt = lib.variant("NAND2", VtClass::Lvt, 1.0).unwrap();
        let buf = lib.variant("BUF", VtClass::Svt, 2.0).unwrap();
        nl.swap_master(&lib, u1, lvt).unwrap();
        nl.insert_buffer(&lib, n1, &[PinRef { cell: u2, pin: 0 }], buf)
            .unwrap();
        nl.set_wire_length(n1, 12.5);
        let mid = nl.journal_len();
        let mid_snap = snapshot(&nl);
        nl.insert_buffer(
            &lib,
            n1,
            &[nl.net(n1).sinks[0]],
            lib.variant("BUF", VtClass::Svt, 1.0).unwrap(),
        )
        .unwrap();
        nl.set_route_class(n1, 3);
        // Partial undo back to the mid checkpoint…
        nl.undo_to(mid).unwrap();
        assert_eq!(snapshot(&nl), mid_snap);
        // …then all the way back to time zero.
        nl.undo_to(before.2).unwrap();
        assert_eq!(snapshot(&nl), before);
        nl.validate(&lib).unwrap();
    }

    #[test]
    fn undo_rejects_bad_checkpoint() {
        let lib = lib();
        let mut nl = tiny(&lib);
        assert!(nl.undo_to(5).is_err());
        assert!(nl.undo_to(0).is_ok());
    }
}
