//! Sequential timing: setup/hold constraint tables, c2q arcs, and the
//! interdependent setup–hold–c2q surface of the paper's **Figure 10**.
//!
//! Conventional Liberty models freeze (setup, hold, c2q) at values
//! characterized with a 10% c2q-pushout criterion, discarding the region
//! where the three trade off smoothly. [`InterdepModel`] keeps that
//! region as an analytic surface (calibratable against the `tc-sim`
//! bisection characterization), enabling the margin-recovery optimization
//! of ref \[23\] implemented in `tc-signoff`.

use tc_core::lut::Lut2;
use tc_core::units::Ps;

/// Analytic interdependent setup–hold–c2q surface:
///
/// ```text
/// c2q(s, h) = c2q0 · (1 + a_s·exp(−(s − s0)/τ_s) + a_h·exp(−(h − h0)/τ_h))
/// ```
///
/// c2q degrades exponentially as the data-to-clock gap `s` (setup side)
/// or clock-to-data-change gap `h` (hold side) shrinks toward the
/// characterization walls `s0`/`h0` — the shape measured from the
/// transistor-level DFF in `tc_sim::ff_char`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct InterdepModel {
    /// Unconstrained clock-to-q delay, ps.
    pub c2q0: f64,
    /// Setup-side pushout amplitude (relative).
    pub a_s: f64,
    /// Setup-side decay constant, ps.
    pub tau_s: f64,
    /// Setup-side wall position, ps.
    pub s0: f64,
    /// Hold-side pushout amplitude (relative).
    pub a_h: f64,
    /// Hold-side decay constant, ps.
    pub tau_h: f64,
    /// Hold-side wall position, ps.
    pub h0: f64,
}

impl InterdepModel {
    /// A 65 nm-flavoured calibration (c2q ≈ 90 ps), matching the scale of
    /// the paper's Fig 10 DFQDX plots.
    pub fn typical_65nm() -> Self {
        InterdepModel {
            c2q0: 90.0,
            a_s: 1.0,
            tau_s: 12.0,
            s0: 20.0,
            a_h: 0.6,
            tau_h: 10.0,
            h0: 5.0,
        }
    }

    /// c2q delay at a (setup, hold) operating point.
    pub fn c2q_at(&self, setup: Ps, hold: Ps) -> Ps {
        let push_s = self.a_s * (-(setup.value() - self.s0) / self.tau_s).exp();
        let push_h = self.a_h * (-(hold.value() - self.h0) / self.tau_h).exp();
        Ps::new(self.c2q0 * (1.0 + push_s + push_h))
    }

    /// The minimum setup such that, with the hold side relaxed,
    /// `c2q ≤ pushout · c2q0` — the conventional characterization point.
    pub fn setup_at_pushout(&self, pushout: f64) -> Ps {
        // a_s·exp(−(s−s0)/τ) = pushout − 1  (hold term ≈ 0 when relaxed)
        let excess = (pushout - 1.0).max(1e-9);
        Ps::new(self.s0 + self.tau_s * (self.a_s / excess).ln())
    }

    /// The minimum hold at pushout with the setup side relaxed.
    pub fn hold_at_pushout(&self, pushout: f64) -> Ps {
        let excess = (pushout - 1.0).max(1e-9);
        Ps::new(self.h0 + self.tau_h * (self.a_h / excess).ln())
    }

    /// For a given setup, the minimum hold keeping `c2q ≤ pushout·c2q0`;
    /// `None` if the setup side alone already exceeds the budget (the
    /// contour's vertical asymptote in Fig 10's third panel).
    pub fn min_hold_for(&self, setup: Ps, pushout: f64) -> Option<Ps> {
        let budget = pushout - 1.0;
        let push_s = self.a_s * (-(setup.value() - self.s0) / self.tau_s).exp();
        let remain = budget - push_s;
        if remain <= 0.0 {
            return None;
        }
        Some(Ps::new(self.h0 + self.tau_h * (self.a_h / remain).ln()))
    }

    /// Samples the setup–hold tradeoff contour at the given pushout.
    pub fn contour(&self, pushout: f64, setups: &[f64]) -> Vec<(Ps, Ps)> {
        setups
            .iter()
            .filter_map(|&s| {
                self.min_hold_for(Ps::new(s), pushout)
                    .map(|h| (Ps::new(s), h))
            })
            .collect()
    }
}

/// Sequential constraint data attached to a flop cell.
#[derive(Clone, Debug)]
pub struct FlopTiming {
    /// Setup constraint table: rows = data slew (ps), cols = clock slew.
    pub setup: Lut2,
    /// Hold constraint table on the same axes.
    pub hold: Lut2,
    /// Interdependent surface for margin recovery.
    pub interdep: InterdepModel,
}

impl FlopTiming {
    /// Setup requirement at an operating point.
    pub fn setup_at(&self, data_slew: f64, clk_slew: f64) -> Ps {
        Ps::new(self.setup.eval(data_slew, clk_slew))
    }

    /// Hold requirement at an operating point.
    pub fn hold_at(&self, data_slew: f64, clk_slew: f64) -> Ps {
        Ps::new(self.hold.eval(data_slew, clk_slew))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn c2q_degrades_toward_walls() {
        let m = InterdepModel::typical_65nm();
        let relaxed = m.c2q_at(Ps::new(120.0), Ps::new(120.0));
        let squeezed_s = m.c2q_at(Ps::new(25.0), Ps::new(120.0));
        let squeezed_h = m.c2q_at(Ps::new(120.0), Ps::new(8.0));
        assert!((relaxed.value() - m.c2q0).abs() < 1.0, "relaxed ≈ c2q0");
        assert!(squeezed_s > relaxed * 1.2);
        assert!(squeezed_h > relaxed * 1.1);
    }

    #[test]
    fn pushout_points_invert_the_surface() {
        let m = InterdepModel::typical_65nm();
        let s = m.setup_at_pushout(1.10);
        // At the characterized setup, the pushout is exactly 10% (hold
        // relaxed).
        let c2q = m.c2q_at(s, Ps::new(500.0));
        assert!((c2q.value() / m.c2q0 - 1.10).abs() < 0.005, "c2q {c2q}");
        let h = m.hold_at_pushout(1.10);
        let c2q = m.c2q_at(Ps::new(500.0), h);
        assert!((c2q.value() / m.c2q0 - 1.10).abs() < 0.005);
    }

    #[test]
    fn contour_trades_setup_against_hold() {
        let m = InterdepModel::typical_65nm();
        let pts = m.contour(1.10, &[52.0, 60.0, 80.0, 120.0]);
        assert!(pts.len() >= 3);
        // Smaller setup ⇒ larger required hold.
        for w in pts.windows(2) {
            assert!(w[0].1 >= w[1].1, "contour must be non-increasing");
        }
        // Each contour point indeed meets the pushout budget.
        for &(s, h) in &pts {
            let c2q = m.c2q_at(s, h);
            assert!(c2q.value() / m.c2q0 <= 1.105, "({s}, {h}) → {c2q}");
        }
    }

    #[test]
    fn contour_has_vertical_asymptote() {
        let m = InterdepModel::typical_65nm();
        // Very tight setup eats the whole pushout budget; no hold works.
        assert!(m.min_hold_for(Ps::new(15.0), 1.10).is_none());
        assert!(m.min_hold_for(Ps::new(80.0), 1.10).is_some());
    }
}
