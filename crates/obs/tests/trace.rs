//! Flight-recorder integration tests. Tracing state is global (like
//! the registry), so this gets its own test binary and the tests
//! serialize on a lock.

use std::sync::Mutex;

use tc_obs::{JsonValue, TraceEventKind};

static TRACE_LOCK: Mutex<()> = Mutex::new(());

/// The `traceEvents` array of a parsed Chrome trace document.
fn trace_events(doc: &JsonValue) -> Vec<JsonValue> {
    let JsonValue::Obj(pairs) = doc else {
        panic!("trace document is not an object");
    };
    match pairs.iter().find(|(k, _)| k == "traceEvents") {
        Some((_, JsonValue::Arr(items))) => items.clone(),
        other => panic!("no traceEvents array: {other:?}"),
    }
}

fn num_field(ev: &JsonValue, name: &str) -> f64 {
    let JsonValue::Obj(pairs) = ev else {
        panic!("event is not an object");
    };
    match pairs.iter().find(|(k, _)| k == name) {
        Some((_, JsonValue::Num(x))) => *x,
        other => panic!("event field {name}: {other:?}"),
    }
}

fn str_field(ev: &JsonValue, name: &str) -> String {
    let JsonValue::Obj(pairs) = ev else {
        panic!("event is not an object");
    };
    match pairs.iter().find(|(k, _)| k == name) {
        Some((_, JsonValue::Str(s))) => s.clone(),
        other => panic!("event field {name}: {other:?}"),
    }
}

#[test]
fn concurrent_threads_produce_a_valid_balanced_chrome_trace() {
    let _guard = TRACE_LOCK.lock().unwrap();
    tc_obs::clear_trace();
    tc_obs::enable_trace(tc_obs::DEFAULT_TRACE_CAPACITY);

    std::thread::scope(|s| {
        for _ in 0..4 {
            s.spawn(|| {
                for _ in 0..25 {
                    let _outer = tc_obs::span("trc.outer");
                    let _inner = tc_obs::span("trc.inner");
                    tc_obs::counter("trc.work").add(2);
                }
            });
        }
    });

    let snap = tc_obs::trace_snapshot();
    assert!(snap.thread_ids().len() >= 4, "one ring per worker thread");
    assert_eq!(snap.dropped, 0, "capacity was ample");

    // Per-thread timestamps are monotonic in the snapshot's sort order.
    for pair in snap.events.windows(2) {
        if pair[0].tid == pair[1].tid {
            assert!(pair[0].ts_ns <= pair[1].ts_ns);
        }
    }

    // The export is real JSON with balanced B/E per thread, plus one
    // M/thread_name metadata event per recorded thread up front.
    let text = snap.to_chrome_trace();
    let doc = JsonValue::parse(&text).expect("chrome trace parses");
    let events = trace_events(&doc);
    assert_eq!(
        events.len(),
        snap.events.len() + snap.thread_names.len(),
        "every event plus one thread_name metadata record per thread"
    );
    let meta_count = events
        .iter()
        .filter(|ev| str_field(ev, "ph") == "M")
        .inspect(|ev| assert_eq!(str_field(ev, "name"), "thread_name"))
        .count();
    assert_eq!(meta_count, snap.thread_names.len());
    let mut depth = std::collections::BTreeMap::new();
    let mut last_ts = std::collections::BTreeMap::new();
    for ev in &events {
        let ph = str_field(ev, "ph");
        if ph == "M" {
            continue;
        }
        let tid = num_field(ev, "tid") as u64;
        let ts = num_field(ev, "ts");
        if let Some(&prev) = last_ts.get(&tid) {
            assert!(ts >= prev, "ts regressed on tid {tid}");
        }
        last_ts.insert(tid, ts);
        let d = depth.entry(tid).or_insert(0i64);
        match ph.as_str() {
            "B" => *d += 1,
            "E" => {
                *d -= 1;
                assert!(*d >= 0, "unmatched E on tid {tid}");
            }
            "C" => {}
            other => panic!("unexpected ph {other}"),
        }
    }
    assert!(depth.values().all(|&d| d == 0), "unbalanced B/E: {depth:?}");

    // Counter events carried their deltas; the folded export has the
    // nested path with exclusive time.
    assert!(snap
        .events
        .iter()
        .any(|e| e.kind == TraceEventKind::Counter && &*e.name == "trc.work" && e.delta == 2));
    let folded = snap.to_folded();
    assert!(
        folded
            .lines()
            .any(|l| l.starts_with("trc.outer;trc.inner ")),
        "folded stacks carry the nesting: {folded}"
    );

    tc_obs::disable_trace();
    tc_obs::clear_trace();
}

#[test]
fn ring_overflow_counts_drops_without_panicking() {
    let _guard = TRACE_LOCK.lock().unwrap();
    tc_obs::clear_trace();
    let before = tc_obs::snapshot().counter("obs.trace.dropped");
    tc_obs::enable_trace(8); // tiny ring: most events must drop

    for _ in 0..1000 {
        let _s = tc_obs::span("trc.overflow");
        tc_obs::counter("trc.overflow_count").add(1);
    }

    let snap = tc_obs::trace_snapshot();
    let events_per_ring = snap
        .events
        .iter()
        .filter(|e| e.tid == snap.events[0].tid)
        .count();
    assert!(events_per_ring <= 8, "ring respects its capacity");
    assert!(snap.dropped > 0, "drops are counted in the snapshot");
    let after = tc_obs::snapshot().counter("obs.trace.dropped");
    assert!(
        after > before,
        "obs.trace.dropped counter advanced: {before} -> {after}"
    );

    // The truncated trace still exports parseable JSON (balance is
    // forgiven when dropped_events > 0).
    let doc = JsonValue::parse(&snap.to_chrome_trace()).expect("overflowed trace still parses");
    let JsonValue::Obj(pairs) = &doc else {
        panic!("not an object")
    };
    assert!(pairs.iter().any(|(k, _)| k == "otherData"));

    tc_obs::disable_trace();
    tc_obs::clear_trace();
}

#[test]
fn overflow_warning_opens_the_text_report() {
    let _guard = TRACE_LOCK.lock().unwrap();
    tc_obs::enable();
    tc_obs::clear_trace();
    tc_obs::enable_trace(4);
    for _ in 0..200 {
        let _s = tc_obs::span("trc.warn_overflow");
    }
    assert!(tc_obs::trace_snapshot().dropped > 0, "overflow happened");

    // The metrics report must lead with the truncation warning: any
    // profile derived from this trace is lying about self-time.
    let text = tc_obs::snapshot().render_text();
    assert!(text.starts_with("WARNING:"), "{text}");
    assert!(text.contains("ring overflow"), "{text}");

    tc_obs::disable_trace();
    tc_obs::clear_trace();
}

#[test]
fn span_ns_deltas_report_growth_and_omit_unchanged_spans() {
    let _guard = TRACE_LOCK.lock().unwrap();
    tc_obs::enable();
    {
        let _s = tc_obs::span("trc.delta_done");
    }
    let before = tc_obs::snapshot();
    {
        let _s = tc_obs::span("trc.delta_work");
        std::thread::sleep(std::time::Duration::from_millis(2));
    }
    let after = tc_obs::snapshot();
    let deltas = after.span_ns_deltas(&before);
    let grown = deltas
        .iter()
        .find(|(path, _)| path == "trc.delta_work")
        .expect("worked span appears in the deltas");
    assert!(grown.1 > 0);
    assert!(
        deltas.iter().all(|(path, _)| path != "trc.delta_done"),
        "untouched spans are omitted: {deltas:?}"
    );
}

#[test]
fn disabled_tracing_emits_nothing() {
    let _guard = TRACE_LOCK.lock().unwrap();
    tc_obs::disable_trace();
    tc_obs::clear_trace();
    {
        let _s = tc_obs::span("trc.dark");
        let _t = tc_obs::trace_scope("trc.dark_task");
        tc_obs::counter("trc.dark_count").add(1);
    }
    assert!(tc_obs::trace_snapshot().events.is_empty());
}
