//! Wirelength-based net models: layer assignment, non-default rules, and
//! the (driver load, per-sink wire delay) interface consumed by `tc-sta`.

use tc_core::error::Result;
use tc_core::units::{Ff, Kohm, Ps};

use crate::beol::{BeolCorner, BeolSample, BeolStack};
use crate::rctree::RcTree;

/// Routing rule class for a net. Non-default rules (NDRs) are one of the
/// classic manual timing fixes of the paper's Fig 1: wider/spaced wiring
/// trades track resources for lower R (and lower coupling).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum NdrClass {
    /// Minimum-width, minimum-spacing default rule.
    #[default]
    Default,
    /// Double width: ~half the resistance, slightly more ground cap.
    DoubleWidth,
    /// Double width + double spacing: half R and much less coupling.
    DoubleWidthSpacing,
}

impl NdrClass {
    /// `(r_factor, cg_factor, cc_factor)` relative to the default rule.
    pub fn factors(self) -> (f64, f64, f64) {
        match self {
            NdrClass::Default => (1.0, 1.0, 1.0),
            NdrClass::DoubleWidth => (0.52, 1.18, 1.05),
            NdrClass::DoubleWidthSpacing => (0.52, 1.22, 0.55),
        }
    }

    /// Routing-resource cost multiplier (tracks consumed).
    pub fn track_cost(self) -> f64 {
        match self {
            NdrClass::Default => 1.0,
            NdrClass::DoubleWidth => 2.0,
            NdrClass::DoubleWidthSpacing => 4.0,
        }
    }
}

/// Per-sink timing of an estimated net.
#[derive(Clone, Debug, PartialEq)]
pub struct WireTiming {
    /// Effective capacitive load presented to the driver (total wire +
    /// pin capacitance — the value looked up in the driver's NLDM table).
    pub driver_load: Ff,
    /// Additional wire delay from driver output to each sink, in the
    /// order the sink caps were supplied.
    pub sink_delays: Vec<Ps>,
    /// Total wire resistance (diagnostics / NDR decisions).
    pub r_total: Kohm,
}

/// Reusable buffers for wire-timing extraction: the RC tree plus the
/// Elmore evaluation scratch. One instance serves any number of
/// [`WireModel::timing_into`] calls — full-design extraction performs
/// zero per-net allocations once the buffers are warm.
#[derive(Clone, Debug, Default)]
pub struct WireScratch {
    tree: RcTree,
    r_to: Vec<f64>,
    marks: Vec<bool>,
}

/// A net reduced to (length, layer, rule); the estimation model of a
/// placed-but-unrouted flow.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct WireModel {
    /// Routed length in µm.
    pub length_um: f64,
    /// Stack layer index the router would choose.
    pub layer: usize,
    /// Routing rule.
    pub ndr: NdrClass,
}

impl WireModel {
    /// Estimates a net: layer chosen by length (short nets stay on thin
    /// local metal, long nets are promoted to fat upper layers).
    pub fn from_length(length_um: f64) -> Self {
        let layer = if length_um < 50.0 {
            1 // M2
        } else if length_um < 200.0 {
            3 // M4
        } else {
            5 // M6
        };
        WireModel {
            length_um,
            layer,
            ndr: NdrClass::Default,
        }
    }

    /// Returns the same net with a different rule applied (the NDR fix).
    pub fn with_ndr(mut self, ndr: NdrClass) -> Self {
        self.ndr = ndr;
        self
    }

    /// Returns the same net promoted one layer pair up (fixes long nets).
    pub fn promoted(mut self, stack: &BeolStack) -> Self {
        self.layer = (self.layer + 2).min(stack.layer_count() - 1);
        self
    }

    /// Rebuilds the RC tree into `tree`: the wire is a 4-segment ladder
    /// with sinks attached round-robin along it. Sink `i` lands on node
    /// `SEGS` when `i == 0` (the far end), otherwise on node
    /// `1 + SEGS/2 + (i % (SEGS/2)).min(SEGS-1-SEGS/2)` — the lookup
    /// `timing_into` repeats for the delay readout.
    fn build_tree_into(
        &self,
        stack: &BeolStack,
        corner: BeolCorner,
        sample: Option<&BeolSample>,
        sink_caps: &[Ff],
        tree: &mut RcTree,
    ) {
        let layer = stack.layer(self.layer);
        let (fr, fcg, fcc) = self.ndr.factors();
        let cf = corner.factors(layer.multi_patterned);
        let (sr, sc) = match sample {
            Some(s) => (s.r[self.layer], s.c[self.layer]),
            None => (1.0, 1.0),
        };
        let r_per_um = layer.r_per_um * fr * cf.r * sr;
        let c_per_um = (layer.cg_per_um * fcg * cf.cg + layer.cc_per_um * fcc * cf.cc) * sc;

        const SEGS: usize = 4;
        let seg_len = self.length_um / SEGS as f64;
        tree.reset(Ff::new(0.5 * c_per_um * seg_len));
        let mut prev = 0;
        for _ in 0..SEGS {
            prev = tree.add_node(
                prev,
                Kohm::new(r_per_um * seg_len),
                Ff::new(c_per_um * seg_len),
            );
        }
        for (i, &cap) in sink_caps.iter().enumerate() {
            // Farthest sink last: spread sinks over the back half.
            // Ladder nodes are 1..=SEGS in creation order.
            let node = 1 + SEGS / 2 + (i % (SEGS / 2)).min(SEGS - 1 - SEGS / 2);
            let node = if i == 0 { SEGS } else { node };
            tree.add_cap(node, cap);
        }
    }

    /// Computes the driver load and per-sink Elmore delays into
    /// caller-owned buffers: delays are *appended* to `out_delays` (one
    /// per entry of `sink_caps`, in order) and `scratch` is reused across
    /// calls, so steady-state extraction allocates nothing. Returns
    /// `(driver_load, r_total)`. Results are bit-identical to
    /// [`WireModel::timing`].
    ///
    /// # Errors
    ///
    /// Propagates RC-tree errors (which indicate an internal bug).
    pub fn timing_into(
        &self,
        stack: &BeolStack,
        corner: BeolCorner,
        sample: Option<&BeolSample>,
        sink_caps: &[Ff],
        scratch: &mut WireScratch,
        out_delays: &mut Vec<Ps>,
    ) -> Result<(Ff, Kohm)> {
        self.build_tree_into(stack, corner, sample, sink_caps, &mut scratch.tree);
        let layer = stack.layer(self.layer);
        let (fr, _, _) = self.ndr.factors();
        let cf = corner.factors(layer.multi_patterned);
        let sr = sample.map_or(1.0, |s| s.r[self.layer]);
        let r_total = Kohm::new(layer.r_per_um * fr * cf.r * sr * self.length_um);

        // Sinks were attached to interior nodes; their delays are the
        // Elmore delays at those nodes. Recompute attachment for lookup.
        const SEGS: usize = 4;
        scratch.tree.fill_r_to(&mut scratch.r_to);
        out_delays.reserve(sink_caps.len());
        for i in 0..sink_caps.len() {
            let node = if i == 0 {
                SEGS
            } else {
                1 + SEGS / 2 + (i % (SEGS / 2)).min(SEGS - 1 - SEGS / 2)
            };
            out_delays.push(
                scratch
                    .tree
                    .elmore_with(node, &scratch.r_to, &mut scratch.marks)?,
            );
        }
        Ok((scratch.tree.total_cap(), r_total))
    }

    /// Computes the driver load and per-sink Elmore delays (allocating
    /// convenience wrapper around [`WireModel::timing_into`]).
    ///
    /// # Errors
    ///
    /// Propagates RC-tree errors (which indicate an internal bug).
    pub fn timing(
        &self,
        stack: &BeolStack,
        corner: BeolCorner,
        sample: Option<&BeolSample>,
        sink_caps: &[Ff],
    ) -> Result<WireTiming> {
        let mut scratch = WireScratch::default();
        let mut sink_delays = Vec::new();
        let (driver_load, r_total) = self.timing_into(
            stack,
            corner,
            sample,
            sink_caps,
            &mut scratch,
            &mut sink_delays,
        )?;
        Ok(WireTiming {
            driver_load,
            sink_delays,
            r_total,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stack() -> BeolStack {
        BeolStack::n20()
    }

    #[test]
    fn layer_assignment_by_length() {
        assert_eq!(WireModel::from_length(10.0).layer, 1);
        assert_eq!(WireModel::from_length(100.0).layer, 3);
        assert_eq!(WireModel::from_length(500.0).layer, 5);
    }

    #[test]
    fn longer_nets_are_slower() {
        let s = stack();
        let caps = [Ff::new(2.0)];
        let short = WireModel::from_length(20.0)
            .timing(&s, BeolCorner::Typical, None, &caps)
            .unwrap();
        let long = WireModel::from_length(400.0)
            .timing(&s, BeolCorner::Typical, None, &caps)
            .unwrap();
        assert!(long.sink_delays[0] > short.sink_delays[0]);
        assert!(long.driver_load > short.driver_load);
    }

    #[test]
    fn ndr_cuts_wire_delay() {
        let s = stack();
        let caps = [Ff::new(2.0)];
        let wm = WireModel {
            length_um: 300.0,
            layer: 3,
            ndr: NdrClass::Default,
        };
        let base = wm.timing(&s, BeolCorner::Typical, None, &caps).unwrap();
        let ndr = wm
            .with_ndr(NdrClass::DoubleWidthSpacing)
            .timing(&s, BeolCorner::Typical, None, &caps)
            .unwrap();
        assert!(
            ndr.sink_delays[0].value() < 0.8 * base.sink_delays[0].value(),
            "NDR {} vs default {}",
            ndr.sink_delays[0],
            base.sink_delays[0]
        );
        assert!(NdrClass::DoubleWidthSpacing.track_cost() > 1.0);
    }

    #[test]
    fn layer_promotion_helps_long_nets() {
        let s = stack();
        let caps = [Ff::new(2.0)];
        let wm = WireModel {
            length_um: 600.0,
            layer: 3,
            ndr: NdrClass::Default,
        };
        let base = wm.timing(&s, BeolCorner::Typical, None, &caps).unwrap();
        let promoted = wm
            .promoted(&s)
            .timing(&s, BeolCorner::Typical, None, &caps)
            .unwrap();
        assert!(promoted.sink_delays[0] < base.sink_delays[0]);
    }

    #[test]
    fn corners_move_wire_timing() {
        let s = stack();
        let caps = [Ff::new(2.0)];
        let wm = WireModel::from_length(300.0);
        let typ = wm.timing(&s, BeolCorner::Typical, None, &caps).unwrap();
        let cw = wm.timing(&s, BeolCorner::CWorst, None, &caps).unwrap();
        let rcw = wm.timing(&s, BeolCorner::RcWorst, None, &caps).unwrap();
        assert!(cw.driver_load > typ.driver_load);
        assert!(rcw.sink_delays[0] > typ.sink_delays[0]);
    }

    #[test]
    fn samples_perturb_timing() {
        let s = stack();
        let caps = [Ff::new(2.0)];
        let wm = WireModel::from_length(150.0);
        let mut rng = tc_core::rng::Rng::seed_from(4);
        let base = wm
            .timing(&s, BeolCorner::Typical, None, &caps)
            .unwrap()
            .sink_delays[0];
        let mut distinct = 0;
        for _ in 0..10 {
            let smp = s.sample(&mut rng);
            let d = wm
                .timing(&s, BeolCorner::Typical, Some(&smp), &caps)
                .unwrap()
                .sink_delays[0];
            if (d.value() - base.value()).abs() > 1e-9 {
                distinct += 1;
            }
        }
        assert!(distinct >= 9, "samples must perturb delay");
    }

    #[test]
    fn timing_into_is_bit_identical_to_timing_across_reuse() {
        // The arena path must produce the exact bytes of the allocating
        // path, including when the scratch is reused across nets of
        // different shapes (buffer contents must never leak between
        // calls).
        let s = stack();
        let mut scratch = WireScratch::default();
        let mut rng = tc_core::rng::Rng::seed_from(9);
        let mut delays = Vec::new();
        for i in 0..50 {
            let n_sinks = 1 + rng.below(6);
            let caps: Vec<Ff> = (0..n_sinks)
                .map(|_| Ff::new(rng.uniform_in(0.5, 4.0)))
                .collect();
            let wm = WireModel::from_length(rng.uniform_in(5.0, 700.0)).with_ndr(match i % 3 {
                0 => NdrClass::Default,
                1 => NdrClass::DoubleWidth,
                _ => NdrClass::DoubleWidthSpacing,
            });
            let want = wm.timing(&s, BeolCorner::Typical, None, &caps).unwrap();
            delays.clear();
            let (load, r_total) = wm
                .timing_into(
                    &s,
                    BeolCorner::Typical,
                    None,
                    &caps,
                    &mut scratch,
                    &mut delays,
                )
                .unwrap();
            assert_eq!(load, want.driver_load, "net {i}");
            assert_eq!(r_total, want.r_total, "net {i}");
            assert_eq!(delays, want.sink_delays, "net {i}");
        }
    }

    #[test]
    fn multi_sink_nets_report_all_delays() {
        let s = stack();
        let caps = [Ff::new(2.0), Ff::new(1.0), Ff::new(3.0)];
        let t = WireModel::from_length(100.0)
            .timing(&s, BeolCorner::Typical, None, &caps)
            .unwrap();
        assert_eq!(t.sink_delays.len(), 3);
        for d in &t.sink_delays {
            assert!(d.value() > 0.0);
        }
    }
}
