//! Allocator-call probe: counting-allocator allocations per full GBA
//! STA run on c5315, after a warmup run. The flat data plane (pooled
//! sink-delay spans, reusable wire/RC-tree scratch) keeps this in the
//! low thousands; a per-net `Vec` rebuild regression pushes it back
//! toward ~60k. Companion to the `TC_BENCH_MAX_MEM_OVERHEAD_PCT` gate
//! in the engines bench.
//!
//! ```text
//! cargo run --release -p tc-bench --example alloc_probe
//! ```
use tc_bench::{bench_netlist, standard_env};
use tc_sta::{Constraints, Sta};

fn main() {
    tc_obs::enable();
    tc_obs::enable_memory();
    let (lib, stack) = standard_env();
    let nl = bench_netlist(&lib, "c5315", 1);
    let cons = Constraints::single_clock(900.0);
    let sta = Sta::new(&nl, &lib, &stack, &cons);
    sta.run().expect("warmup");
    let a0 = tc_obs::memory_stats().allocs;
    for _ in 0..10 {
        sta.run().expect("sta");
    }
    let a1 = tc_obs::memory_stats().allocs;
    println!("allocs_per_gba_run_c5315 = {}", (a1 - a0) / 10);
}
