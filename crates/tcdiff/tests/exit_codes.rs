//! End-to-end exit-code contract for the `tcdiff` binary, exercised
//! against the committed `BENCH_*.json` sidecars: self-compare must be
//! clean (exit 0), a perturbed fingerprint must gate (exit 1), and
//! broken input must be a usage error (exit 2).

use std::path::PathBuf;
use std::process::{Command, Output};

fn bench_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join(name)
}

fn run(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_tcdiff"))
        .args(args)
        .output()
        .expect("spawn tcdiff")
}

fn tmp_file(name: &str, contents: &str) -> PathBuf {
    let path = std::env::temp_dir().join(format!("tcdiff_test_{}_{name}", std::process::id()));
    std::fs::write(&path, contents).expect("write temp fixture");
    path
}

#[test]
fn self_compare_of_committed_bench_passes() {
    for bench in ["BENCH_parallel_corners.json", "BENCH_incremental_sta.json"] {
        let p = bench_path(bench);
        let p = p.to_str().unwrap();
        let out = run(&[p, p]);
        assert!(
            out.status.success(),
            "{bench} vs itself should exit 0; stdout:\n{}\nstderr:\n{}",
            String::from_utf8_lossy(&out.stdout),
            String::from_utf8_lossy(&out.stderr)
        );
        let stdout = String::from_utf8_lossy(&out.stdout);
        assert!(stdout.contains("PASS"), "stdout reports PASS: {stdout}");
    }
}

#[test]
fn perturbed_fingerprint_fails_the_gate() {
    let baseline = bench_path("BENCH_parallel_corners.json");
    let text = std::fs::read_to_string(&baseline).expect("read committed bench");
    assert!(
        text.contains("9dd7ec524030f9c4"),
        "committed bench carries the merged fingerprint this test perturbs"
    );
    let perturbed = text.replace("9dd7ec524030f9c4", "0000000000000000");
    let candidate = tmp_file("perturbed.json", &perturbed);

    let out = run(&[
        baseline.to_str().unwrap(),
        candidate.to_str().unwrap(),
        "--timing-informational",
    ]);
    assert_eq!(
        out.status.code(),
        Some(1),
        "fingerprint mismatch must exit 1; stdout:\n{}",
        String::from_utf8_lossy(&out.stdout)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("FAIL"), "stdout reports FAIL: {stdout}");
    assert!(
        stdout.contains("merged_fingerprint"),
        "delta table names the offending field: {stdout}"
    );
    std::fs::remove_file(candidate).ok();
}

#[test]
fn timing_drift_is_informational_by_default_and_gated_when_strict() {
    let a = tmp_file("timing_a.json", r#"{"fp":"same","wall_ms":100.0}"#);
    let b = tmp_file("timing_b.json", r#"{"fp":"same","wall_ms":300.0}"#);
    let (pa, pb) = (a.to_str().unwrap(), b.to_str().unwrap());

    let out = run(&[pa, pb]);
    assert!(out.status.success(), "timing drift alone passes by default");

    let out = run(&[pa, pb, "--timing-strict"]);
    assert_eq!(out.status.code(), Some(1), "3x drift fails --timing-strict");

    let out = run(&[pa, pb, "--timing-strict", "--tol", "5.0"]);
    assert!(out.status.success(), "generous tolerance admits the drift");

    std::fs::remove_file(a).ok();
    std::fs::remove_file(b).ok();
}

#[test]
fn memory_fields_gate_under_mem_tol_not_exactly() {
    let a = tmp_file(
        "mem_a.json",
        r#"{"fp":"same","memory":{"peak_heap_bytes":1000000,"total_allocs":500}}"#,
    );
    let b = tmp_file(
        "mem_b.json",
        r#"{"fp":"same","memory":{"peak_heap_bytes":1400000,"total_allocs":650}}"#,
    );
    let (pa, pb) = (a.to_str().unwrap(), b.to_str().unwrap());

    // 40% peak growth: inside the default mem tolerance (50%) even
    // under --timing-strict, although the timing tolerance (25%) would
    // have failed it — bytes fields are never compared bit-exactly.
    let out = run(&[pa, pb, "--timing-strict"]);
    assert!(
        out.status.success(),
        "memory wiggle inside --mem-tol passes strict; stdout:\n{}",
        String::from_utf8_lossy(&out.stdout)
    );

    let out = run(&[pa, pb, "--timing-strict", "--mem-tol", "0.1"]);
    assert_eq!(
        out.status.code(),
        Some(1),
        "tight --mem-tol gates the same wiggle"
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("memory") && stdout.contains("peak_heap_bytes"),
        "delta table names the memory field and class: {stdout}"
    );

    let out = run(&[pa, pb, "--mem-tol", "0.1"]);
    assert!(
        out.status.success(),
        "informational default downgrades memory drift too"
    );

    std::fs::remove_file(a).ok();
    std::fs::remove_file(b).ok();
}

#[test]
fn pre_memory_schema_artifacts_are_refused() {
    // A v1 artifact (before the memory section) against a current v2
    // one must be refused outright — exit 2, not a field-level diff.
    let v1 = tmp_file(
        "run_v1.json",
        r#"{"schema_version":1,"kind":"tc.run_artifact","workload":"w","wall_ms":1.0}"#,
    );
    let v2 = tmp_file(
        "run_v2.json",
        r#"{"schema_version":2,"kind":"tc.run_artifact","workload":"w","wall_ms":1.0,
            "memory":{"peak_heap_bytes":1}}"#,
    );
    let out = run(&[v1.to_str().unwrap(), v2.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(2), "schema bump refuses cleanly");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("schema_version mismatch"),
        "refusal names the cause: {stderr}"
    );
    std::fs::remove_file(v1).ok();
    std::fs::remove_file(v2).ok();
}

#[test]
fn bad_inputs_are_usage_errors() {
    let out = run(&[]);
    assert_eq!(out.status.code(), Some(2), "no args is a usage error");

    let out = run(&["/nonexistent/a.json", "/nonexistent/b.json"]);
    assert_eq!(out.status.code(), Some(2), "missing files are I/O errors");

    let garbage = tmp_file("garbage.json", "not json at all");
    let p = garbage.to_str().unwrap();
    let out = run(&[p, p]);
    assert_eq!(out.status.code(), Some(2), "unparseable input exits 2");
    std::fs::remove_file(garbage).ok();

    let v1 = tmp_file("schema_v1.json", r#"{"schema_version":1,"x":1}"#);
    let v2 = tmp_file("schema_v2.json", r#"{"schema_version":2,"x":1}"#);
    let out = run(&[v1.to_str().unwrap(), v2.to_str().unwrap()]);
    assert_eq!(
        out.status.code(),
        Some(2),
        "schema mismatch refuses to diff"
    );
    std::fs::remove_file(v1).ok();
    std::fs::remove_file(v2).ok();
}

#[test]
fn check_trace_mode_validates_and_gates() {
    let good = tmp_file(
        "trace_good.json",
        r#"{"traceEvents":[
            {"name":"a","ph":"B","ts":1.0,"pid":1,"tid":0},
            {"name":"a","ph":"E","ts":2.0,"pid":1,"tid":0},
            {"name":"b","ph":"B","ts":1.0,"pid":1,"tid":1},
            {"name":"b","ph":"E","ts":3.0,"pid":1,"tid":1}
        ],"otherData":{"dropped_events":0}}"#,
    );
    let p = good.to_str().unwrap();
    let out = run(&["--check-trace", p, "--min-threads", "2"]);
    assert!(
        out.status.success(),
        "balanced two-thread trace passes; stderr:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );

    let out = run(&["--check-trace", p, "--min-threads", "3"]);
    assert_eq!(out.status.code(), Some(1), "thread floor gates");
    std::fs::remove_file(good).ok();

    let bad = tmp_file(
        "trace_bad.json",
        r#"{"traceEvents":[{"name":"a","ph":"E","ts":1.0,"pid":1,"tid":0}]}"#,
    );
    let out = run(&["--check-trace", bad.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(1), "unmatched E gates");
    std::fs::remove_file(bad).ok();

    // thread_name metadata records pass validation untouched.
    let with_meta = tmp_file(
        "trace_meta.json",
        r#"{"traceEvents":[
            {"name":"thread_name","ph":"M","ts":0,"pid":1,"tid":0,"args":{"name":"tc-par-0"}},
            {"name":"a","ph":"B","ts":1.0,"pid":1,"tid":0},
            {"name":"a","ph":"E","ts":2.0,"pid":1,"tid":0}
        ],"otherData":{"dropped_events":0}}"#,
    );
    let out = run(&["--check-trace", with_meta.to_str().unwrap()]);
    assert!(
        out.status.success(),
        "metadata events accepted; stderr:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    std::fs::remove_file(with_meta).ok();
}
