//! Quickstart with observability: the same signoff flow as
//! `quickstart`, run under the tc-obs tracing/metrics layer.
//!
//! ```sh
//! cargo run --release --example quickstart_observed
//! ```
//!
//! `tc_obs::enable()` turns the instrumentation on (it is off — and
//! near-free — by default); after the flow finishes, the snapshot
//! renders a flame-style per-phase timing report plus the engine
//! counters: how many timing arcs every STA propagation evaluated, how
//! many ECO edits each closure iteration committed, and where the wall
//! clock actually went. `tc_obs::enable_trace()` additionally arms the
//! flight recorder, and the run ends by writing the per-event trace to
//! `artifacts/quickstart.trace.json` (directory override:
//! `$TC_BENCH_OUT`) — load it in `chrome://tracing` or Perfetto, or
//! reduce it with `tc_prof report artifacts/quickstart.trace.json`.

use timing_closure::closure::flow::ClosureConfig;
use timing_closure::sta::{Constraints, Sta};
use timing_closure::SignoffFlow;

fn main() -> Result<(), tc_core::Error> {
    // Everything recorded from here on shows up in the final report.
    tc_obs::enable();

    let mut flow = SignoffFlow::demo_block(7);
    println!(
        "design `{}`: {} cells, {} nets",
        flow.netlist.name,
        flow.netlist.cell_count(),
        flow.netlist.net_count(),
    );

    // Probe the natural speed, then overconstrain by 40 ps.
    let probe = Constraints::single_clock(5_000.0);
    let report = Sta::new(&flow.netlist, &flow.lib, &flow.stack, &probe).run()?;
    let target = 5_000.0 - report.wns().value() - 40.0;
    println!("running closure at {target:.0} ps (40 ps overconstrained)…");

    // Drop the probe's metrics so the report covers only the flow, then
    // arm the flight recorder for the flow itself.
    tc_obs::reset();
    tc_obs::enable_trace(tc_obs::DEFAULT_TRACE_CAPACITY);
    flow.config = ClosureConfig::default();
    let outcome = flow.run(target)?;
    println!(
        "closed: {} in {} iteration(s) | final: {}\n",
        outcome.closed,
        outcome.iterations,
        outcome.final_report.summary()
    );

    // The per-phase timing report: spans indented by nesting, with
    // counts, totals, and percent-of-parent, then counters/histograms.
    let snapshot = tc_obs::snapshot();
    println!("{}", snapshot.render_text());

    // The same data is available programmatically… (`spans_named`
    // yields every node with that leaf name, wherever it nests.)
    let (gba_runs, gba_ns) = snapshot
        .spans_named("sta.gba")
        .fold((0, 0), |(n, ns), s| (n + s.count, ns + s.total_ns));
    if gba_runs > 0 {
        println!(
            "one number to watch: {} GBA propagations at {:.1} us mean",
            gba_runs,
            gba_ns as f64 / gba_runs as f64 / 1e3
        );
    }
    println!(
        "arcs evaluated across the whole flow: {}",
        snapshot.counter("sta.arcs_evaluated")
    );
    // …and as machine-readable JSON (`snapshot.to_json()` / JSONL).
    println!("json export: {} bytes", snapshot.to_json().len());

    // The flight recorder's per-event view of the same run, as a Chrome
    // `trace_event` file under the artifacts directory (kept out of the
    // repo root; `tc_prof report` consumes the same file).
    let trace = tc_obs::trace_snapshot();
    let dir = std::env::var_os("TC_BENCH_OUT")
        .map_or_else(|| std::path::PathBuf::from("artifacts"), Into::into);
    std::fs::create_dir_all(&dir)
        .map_err(|e| tc_core::Error::internal(format!("artifacts dir failed: {e}")))?;
    let path = dir.join("quickstart.trace.json");
    std::fs::write(&path, trace.to_chrome_trace())
        .map_err(|e| tc_core::Error::internal(format!("trace write failed: {e}")))?;
    println!(
        "trace: {} ({} events on {} thread(s)) — open in chrome://tracing",
        path.display(),
        trace.events.len(),
        trace.thread_ids().len()
    );
    Ok(())
}
