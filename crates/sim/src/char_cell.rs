//! NLDM-style cell characterization: delay/slew tables over a
//! (input slew × output load) grid, measured on the transistor-level
//! cells of [`crate::cells`].
//!
//! This is the simulator-backed path of the library flow: `tc-liberty`
//! normally builds its tables from closed-form models (fast), but can be
//! cross-checked against these measured tables — mirroring the paper's
//! model-hardware-correlation theme (§4, Comment 2).

use tc_core::error::{Error, Result};
use tc_core::lut::Lut2;
use tc_core::units::{Celsius, Ff, Volt};
use tc_device::{Technology, VtClass};

use crate::cells::{inverter, nand2};
use crate::circuit::{Circuit, NodeId, Pwl};
use crate::measure::{delay_between, slew_10_90, Edge};
use crate::solver::{transient, TranOptions};

/// Which cell template to characterize.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CellKind {
    /// Single inverter.
    Inv,
    /// 2-input NAND, arc from input A with B sensitized high.
    Nand2,
}

/// Characterization conditions.
#[derive(Clone, Debug)]
pub struct CharConditions {
    /// Supply voltage.
    pub vdd: Volt,
    /// Die temperature.
    pub temp: Celsius,
    /// Threshold flavour.
    pub vt: VtClass,
    /// Drive strength multiplier.
    pub strength: f64,
}

impl CharConditions {
    /// Nominal 28 nm conditions.
    pub fn nominal_28nm() -> Self {
        CharConditions {
            vdd: Volt::new(0.9),
            temp: Celsius::new(25.0),
            vt: VtClass::Svt,
            strength: 1.0,
        }
    }
}

/// A measured rise/fall delay & output-slew point.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ArcSample {
    /// 50–50 arc delay, ps.
    pub delay: f64,
    /// Output 10–90 transition (full-swing equivalent), ps.
    pub out_slew: f64,
}

fn build_cell(kind: CellKind, cond: &CharConditions, ckt: &mut Circuit) -> (NodeId, NodeId) {
    let vdd = ckt.rail("vdd", cond.vdd);
    let input = ckt.node("in");
    let out = ckt.node("out");
    match kind {
        CellKind::Inv => inverter(ckt, vdd, input, out, cond.vt, cond.strength),
        CellKind::Nand2 => {
            let b = ckt.rail("b", cond.vdd);
            nand2(ckt, vdd, input, b, out, cond.vt, cond.strength);
        }
    }
    (input, out)
}

/// Measures one (slew, load) point for the given input edge.
///
/// # Errors
///
/// Propagates simulator failures; errors if the output never switches.
pub fn measure_arc(
    kind: CellKind,
    cond: &CharConditions,
    input_slew: f64,
    load: Ff,
    in_edge: Edge,
) -> Result<ArcSample> {
    let tech = Technology::planar_28nm();
    let mut ckt = Circuit::new();
    let (input, out) = build_cell(kind, cond, &mut ckt);
    ckt.cap_to_ground(out, load);

    let (v0, v1, out_edge) = match in_edge {
        Edge::Rise => (Volt::ZERO, cond.vdd, Edge::Fall),
        _ => (cond.vdd, Volt::ZERO, Edge::Rise),
    };
    ckt.source(input, Pwl::ramp(80.0, input_slew, v0, v1));
    let opts = TranOptions {
        t_stop: 500.0,
        dt: 0.25,
        temp: cond.temp,
        ..Default::default()
    };
    let res = transient(&ckt, &tech, &opts)?;
    let w_in = res.waveform(input);
    let w_out = res.waveform(out);
    let delay = delay_between(&w_in, in_edge, &w_out, out_edge, cond.vdd.value(), 0.0)
        .ok_or_else(|| Error::internal("arc did not switch"))?;
    let out_slew = slew_10_90(&w_out, out_edge, cond.vdd.value(), 0.0)
        .ok_or_else(|| Error::internal("output slew unmeasurable"))?;
    Ok(ArcSample {
        delay: delay.value(),
        out_slew: out_slew.value(),
    })
}

/// A characterized NLDM table pair (delay and output slew) for one arc
/// direction.
#[derive(Clone, Debug)]
pub struct CharTable {
    /// Arc delay table: rows = input slew (ps), cols = load (fF).
    pub delay: Lut2,
    /// Output slew table on the same axes.
    pub out_slew: Lut2,
}

/// Characterizes a full (slew × load) grid for the given input edge.
///
/// # Errors
///
/// Propagates simulator failures or invalid axes.
pub fn characterize(
    kind: CellKind,
    cond: &CharConditions,
    slews: &[f64],
    loads: &[f64],
    in_edge: Edge,
) -> Result<CharTable> {
    let mut delay_grid = Vec::with_capacity(slews.len());
    let mut slew_grid = Vec::with_capacity(slews.len());
    for &s in slews {
        let mut drow = Vec::with_capacity(loads.len());
        let mut srow = Vec::with_capacity(loads.len());
        for &l in loads {
            let sample = measure_arc(kind, cond, s, Ff::new(l), in_edge)?;
            drow.push(sample.delay);
            srow.push(sample.out_slew);
        }
        delay_grid.push(drow);
        slew_grid.push(srow);
    }
    Ok(CharTable {
        delay: Lut2::new(slews.to_vec(), loads.to_vec(), delay_grid)?,
        out_slew: Lut2::new(slews.to_vec(), loads.to_vec(), slew_grid)?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delay_monotone_in_load() {
        let cond = CharConditions::nominal_28nm();
        let light = measure_arc(CellKind::Inv, &cond, 20.0, Ff::new(1.0), Edge::Rise).unwrap();
        let heavy = measure_arc(CellKind::Inv, &cond, 20.0, Ff::new(8.0), Edge::Rise).unwrap();
        assert!(
            heavy.delay > light.delay,
            "{} !> {}",
            heavy.delay,
            light.delay
        );
        assert!(heavy.out_slew > light.out_slew);
    }

    #[test]
    fn delay_grows_with_input_slew() {
        let cond = CharConditions::nominal_28nm();
        let fast = measure_arc(CellKind::Inv, &cond, 10.0, Ff::new(4.0), Edge::Rise).unwrap();
        let slow = measure_arc(CellKind::Inv, &cond, 60.0, Ff::new(4.0), Edge::Rise).unwrap();
        assert!(slow.delay > fast.delay);
    }

    #[test]
    fn stronger_cell_is_faster() {
        let mut cond = CharConditions::nominal_28nm();
        let weak = measure_arc(CellKind::Inv, &cond, 20.0, Ff::new(6.0), Edge::Rise).unwrap();
        cond.strength = 2.0;
        let strong = measure_arc(CellKind::Inv, &cond, 20.0, Ff::new(6.0), Edge::Rise).unwrap();
        assert!(strong.delay < weak.delay);
    }

    #[test]
    fn characterized_grid_interpolates_sanely() {
        let cond = CharConditions::nominal_28nm();
        let tbl =
            characterize(CellKind::Inv, &cond, &[10.0, 40.0], &[1.0, 6.0], Edge::Rise).unwrap();
        let mid = tbl.delay.eval(25.0, 3.5);
        let lo = tbl.delay.eval(10.0, 1.0);
        let hi = tbl.delay.eval(40.0, 6.0);
        assert!(lo < mid && mid < hi, "{lo} < {mid} < {hi}");
    }

    #[test]
    fn nand2_arc_measures() {
        let cond = CharConditions::nominal_28nm();
        let s = measure_arc(CellKind::Nand2, &cond, 20.0, Ff::new(3.0), Edge::Rise).unwrap();
        assert!(s.delay > 0.0 && s.delay < 150.0);
    }
}
