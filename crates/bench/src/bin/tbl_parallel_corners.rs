//! **Parallel corner-sweep table** — the wall-clock side of the corner
//! super-explosion (§2.3). The views in a modern signoff are mutually
//! independent, so the sweep should scale with worker count — *without*
//! changing a single byte of the merged report.
//!
//! This harness runs an 8-corner MCMM sweep over the Fig 1 workload
//! (`soc_block`, constrained 500 ps beyond natural Fmax) at
//! {1, 2, 4, 8} pool workers, asserts the merged report is
//! bit-identical at every width, and records the wall clock per width.
//! Results land in a `BENCH_parallel_corners.json` sidecar, a
//! `RUN_tbl_parallel_corners.json` run artifact, and — with the flight
//! recorder armed — `tbl_parallel_corners.trace.json` / `.folded`
//! trace exports plus the `PROF_tbl_parallel_corners.json` span
//! profile with per-worker lane utilization (directory
//! `$TC_BENCH_OUT`, default `artifacts/`).
//!
//! Speedup is only meaningful when the host exposes real parallelism;
//! the sidecar records `host_threads` so a single-core CI runner's
//! numbers are not mistaken for a scaling result. The ≥3x-at-8-workers
//! assertion is therefore gated on `host_threads >= 8`.

use std::time::Instant;

use tc_bench::{
    fmt, print_table, standard_env, write_json_sidecar, write_prof_sidecar, write_run_artifact,
    write_trace_sidecars,
};
use tc_interconnect::beol::BeolCorner;
use tc_liberty::{LibConfig, Library, PvtCorner};
use tc_obs::JsonValue;
use tc_par::Pool;
use tc_signoff::corners::{run_corner_set, run_corner_set_on};
use tc_sta::mcmm::{MergedReport, Scenario};
use tc_sta::{Constraints, Sta};

const WORKER_COUNTS: [usize; 4] = [1, 2, 4, 8];
/// Timed repetitions per worker count; best-of is reported.
const REPS: usize = 3;

/// The exact bit pattern of everything the merged report says: slacks
/// and attributions, in order. Two sweeps agree iff these are equal.
fn fingerprint(merged: &MergedReport) -> Vec<(u64, String, u64, String)> {
    merged
        .endpoints
        .iter()
        .map(|e| {
            (
                e.setup.0.value().to_bits(),
                e.setup.1.clone(),
                e.hold.0.value().to_bits(),
                e.hold.1.clone(),
            )
        })
        .collect()
}

/// FNV-1a over the fingerprint — one stable number that CI can diff
/// across `TC_PAR_THREADS` values.
fn fingerprint_hash(fp: &[(u64, String, u64, String)]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    for (setup, sname, hold, hname) in fp {
        eat(&setup.to_le_bytes());
        eat(sname.as_bytes());
        eat(&hold.to_le_bytes());
        eat(hname.as_bytes());
    }
    h
}

fn scenarios(period_ps: f64) -> Vec<Scenario> {
    let cfg = LibConfig::default();
    let mk = |name: &str, pvt: PvtCorner, beol: BeolCorner| Scenario {
        name: name.to_string(),
        lib: Library::generate(&cfg, &pvt),
        beol,
        constraints: Constraints::single_clock(period_ps),
    };
    vec![
        mk("typ_typ", PvtCorner::typical(), BeolCorner::Typical),
        mk("slow_cold_RCw", PvtCorner::slow_cold(), BeolCorner::RcWorst),
        mk("slow_cold_Cw", PvtCorner::slow_cold(), BeolCorner::CWorst),
        mk("slow_hot_RCw", PvtCorner::slow_hot(), BeolCorner::RcWorst),
        mk("slow_hot_Cw", PvtCorner::slow_hot(), BeolCorner::CWorst),
        mk("fast_cold_Cb", PvtCorner::fast_cold(), BeolCorner::CBest),
        mk("fast_cold_RCb", PvtCorner::fast_cold(), BeolCorner::RcBest),
        mk("typ_CcW", PvtCorner::typical(), BeolCorner::CcWorst),
    ]
}

fn main() {
    let run_start = Instant::now();
    tc_obs::enable();
    tc_obs::enable_trace(tc_obs::DEFAULT_TRACE_CAPACITY);
    let (lib, stack) = standard_env();
    let nl = tc_bench::bench_netlist(&lib, "soc_block", 2015);

    // The Fig 1 constraint: 500 ps beyond the as-generated capability.
    let probe = Constraints::single_clock(6_000.0);
    let r = Sta::new(&nl, &lib, &stack, &probe).run().expect("sta");
    let period = 6_000.0 - r.wns().value() - 500.0;
    let scenarios = scenarios(period);
    let host_threads = std::thread::available_parallelism().map_or(1, usize::from);
    println!(
        "design: {} cells, {} nets | {} corners at {:.0} ps | host threads: {}",
        nl.cell_count(),
        nl.net_count(),
        scenarios.len(),
        period,
        host_threads
    );

    let mut reference: Option<Vec<(u64, String, u64, String)>> = None;
    let mut wall_ms = Vec::new();
    for workers in WORKER_COUNTS {
        let mut best_ns = f64::INFINITY;
        for _ in 0..REPS {
            let t0 = Instant::now();
            let merged = run_corner_set_on(Pool::new(workers), &nl, &stack, &scenarios)
                .expect("corner sweep");
            best_ns = best_ns.min(t0.elapsed().as_nanos() as f64);
            let fp = fingerprint(&merged);
            match &reference {
                None => reference = Some(fp),
                Some(r) => assert_eq!(*r, fp, "merged report diverged at {workers} workers"),
            }
        }
        wall_ms.push(best_ns / 1e6);
    }

    let rows: Vec<Vec<String>> = WORKER_COUNTS
        .iter()
        .zip(&wall_ms)
        .map(|(&w, &ms)| {
            vec![
                w.to_string(),
                fmt(ms, 1),
                fmt(wall_ms[0] / ms, 2),
                "yes".to_string(),
            ]
        })
        .collect();
    print_table(
        "parallel corner sweep: 8 corners, soc_block (Fig 1 workload)",
        &["workers", "wall ms", "speedup", "bit-identical"],
        &rows,
    );

    // The env-knob entry point (`TC_PAR_THREADS`) must agree with every
    // pinned pool width; its fingerprint hash goes into the sidecar so a
    // CI job can diff two runs at different env values.
    let reference = reference.expect("at least one sweep ran");
    let env_merged = run_corner_set(&nl, &stack, &scenarios).expect("corner sweep (env pool)");
    assert_eq!(
        fingerprint(&env_merged),
        reference,
        "TC_PAR_THREADS pool diverged from pinned pools"
    );
    let hash = fingerprint_hash(&reference);
    println!("\nmerged-report fingerprint: {hash:016x} (invariant across worker counts)");

    let speedup_at_8 = wall_ms[0] / wall_ms[wall_ms.len() - 1];
    if host_threads >= 8 {
        assert!(
            speedup_at_8 >= 3.0,
            "8-worker sweep must be >=3x faster on a >=8-thread host, got {speedup_at_8:.2}x"
        );
    } else {
        println!(
            "\nhost exposes {host_threads} thread(s): speedup ({speedup_at_8:.2}x at 8 workers) \
             reflects scheduling overhead, not scaling; only bit-identity is asserted here"
        );
    }

    let grid: Vec<JsonValue> = WORKER_COUNTS
        .iter()
        .zip(&wall_ms)
        .map(|(&w, &ms)| {
            JsonValue::obj([
                ("workers", JsonValue::from(w)),
                ("wall_ms", JsonValue::from(ms)),
                ("speedup_vs_1", JsonValue::from(wall_ms[0] / ms)),
            ])
        })
        .collect();
    let doc = JsonValue::obj([
        ("table", JsonValue::str("parallel_corners")),
        (
            "workload",
            JsonValue::str("soc_block 8-corner MCMM (Fig 1)"),
        ),
        ("cells", JsonValue::from(nl.cell_count())),
        ("nets", JsonValue::from(nl.net_count())),
        ("corners", JsonValue::from(scenarios.len())),
        ("period_ps", JsonValue::from(period)),
        ("host_threads", JsonValue::from(host_threads)),
        ("reps", JsonValue::from(REPS)),
        ("bit_identical_across_worker_counts", JsonValue::Bool(true)),
        ("merged_fingerprint", JsonValue::str(format!("{hash:016x}"))),
        ("grid", JsonValue::Arr(grid)),
    ]);
    match write_json_sidecar("BENCH_parallel_corners", &doc.render()) {
        Ok(path) => println!("sidecar: {}", path.display()),
        Err(e) => eprintln!("sidecar write failed: {e}"),
    }

    let mut artifact = tc_obs::RunArtifact::new("tbl_parallel_corners soc_block 8-corner MCMM")
        .knob("reps", REPS)
        .wall_ms(run_start.elapsed().as_secs_f64() * 1e3)
        .extra("merged_fingerprint", JsonValue::str(format!("{hash:016x}")))
        .extra("corners", JsonValue::from(scenarios.len()))
        .extra("period_ps", JsonValue::from(period))
        .metrics(tc_obs::snapshot());
    for (&w, &ms) in WORKER_COUNTS.iter().zip(&wall_ms) {
        artifact = artifact.iteration(JsonValue::obj([
            ("workers", JsonValue::from(w)),
            ("wall_ms", JsonValue::from(ms)),
            ("speedup_vs_1", JsonValue::from(wall_ms[0] / ms)),
        ]));
    }
    match write_run_artifact("tbl_parallel_corners", &artifact) {
        Ok(path) => println!("run artifact: {}", path.display()),
        Err(e) => eprintln!("run artifact write failed: {e}"),
    }
    match write_trace_sidecars("tbl_parallel_corners") {
        Ok(Some(path)) => println!("trace: {}", path.display()),
        Ok(None) => {}
        Err(e) => eprintln!("trace write failed: {e}"),
    }
    match write_prof_sidecar(
        "tbl_parallel_corners",
        "tbl_parallel_corners soc_block 8-corner",
    ) {
        Ok(Some(path)) => println!("profile: {}", path.display()),
        Ok(None) => {}
        Err(e) => eprintln!("profile write failed: {e}"),
    }
}
