//! The [`Library`] container and the synthetic library generator.
//!
//! A [`Library`] is characterized *at one PVT corner* — multi-corner
//! analysis (MCMM, §2.3) holds one library per corner, which is exactly
//! why the paper's "corner super-explosion" translates into library-count
//! and signoff-runtime explosions (§4, Futures (4)(iv)).

use std::collections::HashMap;

use tc_core::error::{Error, Result};
use tc_core::ids::LibCellId;
use tc_core::lut::Lut2;
use tc_core::units::Ff;
use tc_device::{MosDevice, MosKind, Technology, VtClass};

use crate::cell::{CellKind, LibCell, TimingArc};
use crate::corner::PvtCorner;
use crate::flop::{FlopTiming, InterdepModel};
use crate::nldm::{drive_model, CellTemplate};
use crate::variation::{LvfTable, PocvSigma};

/// Library-generation configuration.
#[derive(Clone, Debug)]
pub struct LibConfig {
    /// Device technology.
    pub tech: Technology,
    /// Vt flavours to emit.
    pub vts: Vec<VtClass>,
    /// Drive strengths for combinational cells.
    pub comb_drives: Vec<f64>,
    /// Drive strengths for flops.
    pub flop_drives: Vec<f64>,
    /// Whether to attach LVF sigma tables.
    pub with_lvf: bool,
    /// Base relative local-variation sigma used for POCV/LVF.
    pub local_sigma: f64,
    /// Late/early sigma asymmetry (>1 = setup long tail, Fig 7).
    pub sigma_asymmetry: f64,
    /// Uniform BTI threshold shift baked into the characterization (V);
    /// `tc-aging` regenerates libraries with nonzero values.
    pub aging_delta_vt: f64,
}

impl Default for LibConfig {
    fn default() -> Self {
        LibConfig {
            tech: Technology::planar_28nm(),
            vts: VtClass::ALL.to_vec(),
            comb_drives: vec![1.0, 2.0, 4.0, 8.0],
            flop_drives: vec![1.0, 2.0],
            with_lvf: true,
            local_sigma: 0.045,
            sigma_asymmetry: 1.3,
            aging_delta_vt: 0.0,
        }
    }
}

/// A characterized cell library at one PVT corner.
#[derive(Clone, Debug)]
pub struct Library {
    /// The corner this library was characterized at.
    pub corner: PvtCorner,
    /// The device technology behind it.
    pub tech: Technology,
    cells: Vec<LibCell>,
    by_name: HashMap<String, LibCellId>,
}

impl Library {
    /// Generates a synthetic library at the given corner.
    ///
    /// Characterization is infallible for the built-in templates (every
    /// table is sampled on the static NLDM axes); this is
    /// [`try_generate`](Self::try_generate) with that invariant asserted
    /// once, here, instead of at dozens of interior call sites.
    pub fn generate(config: &LibConfig, corner: &PvtCorner) -> Library {
        Library::try_generate(config, corner).expect("static NLDM axes characterize cleanly")
    }

    /// Generates a synthetic library, surfacing characterization
    /// failures as errors instead of panics.
    ///
    /// # Errors
    ///
    /// Propagates the first table-construction failure, naming the cell
    /// being characterized.
    pub fn try_generate(config: &LibConfig, corner: &PvtCorner) -> Result<Library> {
        let mut cells = Vec::new();

        // Aging slows every cell by the idsat ratio fresh/aged at the
        // corner voltage (the AVS experiments re-generate libraries with
        // different assumed ΔVt).
        let aging_factor = if config.aging_delta_vt > 0.0 {
            let fresh = MosDevice::new(MosKind::Nmos, VtClass::Svt, 1.0);
            let aged = fresh.aged(config.aging_delta_vt);
            fresh.idsat(&config.tech, corner.voltage, corner.temperature)
                / aged.idsat(&config.tech, corner.voltage, corner.temperature)
        } else {
            1.0
        };

        for template in &CellTemplate::COMB {
            for &vt in &config.vts {
                for &drive in &config.comb_drives {
                    cells.push(build_comb_cell(
                        config,
                        corner,
                        template,
                        vt,
                        drive,
                        aging_factor,
                    )?);
                }
            }
        }
        for &vt in &config.vts {
            for &drive in &config.flop_drives {
                cells.push(build_flop_cell(config, corner, vt, drive, aging_factor)?);
            }
        }

        let by_name = cells
            .iter()
            .enumerate()
            .map(|(i, c)| (c.name.clone(), LibCellId::new(i)))
            .collect();
        Ok(Library {
            corner: *corner,
            tech: config.tech.clone(),
            cells,
            by_name,
        })
    }

    /// All cells.
    pub fn cells(&self) -> &[LibCell] {
        &self.cells
    }

    /// Cell by id.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range (ids are only minted by this
    /// library).
    pub fn cell(&self, id: LibCellId) -> &LibCell {
        &self.cells[id.index()]
    }

    /// Cell id by exact name.
    pub fn id_of(&self, name: &str) -> Option<LibCellId> {
        self.by_name.get(name).copied()
    }

    /// Cell by exact name.
    pub fn cell_named(&self, name: &str) -> Option<&LibCell> {
        self.id_of(name).map(|id| self.cell(id))
    }

    /// The specific (template, vt, drive) variant, if it exists.
    pub fn variant(&self, template: &str, vt: VtClass, drive: f64) -> Option<LibCellId> {
        self.id_of(&cell_name(template, vt, drive))
    }

    /// All drive/Vt variants of a template.
    pub fn variants_of<'a>(&'a self, template: &'a str) -> impl Iterator<Item = LibCellId> + 'a {
        self.cells
            .iter()
            .enumerate()
            .filter(move |(_, c)| c.template.name == template)
            .map(|(i, _)| LibCellId::new(i))
    }

    /// Same cell, one Vt step faster, if the library has it.
    pub fn vt_faster(&self, id: LibCellId) -> Option<LibCellId> {
        let c = self.cell(id);
        c.vt.faster()
            .and_then(|vt| self.variant(c.template.name, vt, c.drive))
    }

    /// Same cell, one Vt step slower (power recovery), if available.
    pub fn vt_slower(&self, id: LibCellId) -> Option<LibCellId> {
        let c = self.cell(id);
        c.vt.slower()
            .and_then(|vt| self.variant(c.template.name, vt, c.drive))
    }

    /// Same cell, next drive strength up, if available.
    pub fn upsize(&self, id: LibCellId) -> Option<LibCellId> {
        let c = self.cell(id);
        let mut drives: Vec<f64> = self
            .variants_of(c.template.name)
            .map(|i| self.cell(i).drive)
            .collect();
        drives.sort_by(|a, b| a.total_cmp(b));
        drives.dedup();
        let next = drives.into_iter().find(|&d| d > c.drive)?;
        self.variant(c.template.name, c.vt, next)
    }

    /// Same cell, next drive strength down, if available.
    pub fn downsize(&self, id: LibCellId) -> Option<LibCellId> {
        let c = self.cell(id);
        let mut drives: Vec<f64> = self
            .variants_of(c.template.name)
            .map(|i| self.cell(i).drive)
            .collect();
        drives.sort_by(|a, b| b.total_cmp(a));
        drives.dedup();
        let next = drives.into_iter().find(|&d| d < c.drive)?;
        self.variant(c.template.name, c.vt, next)
    }
}

/// Canonical cell name: `TEMPLATE_X<drive>_<VT>`.
pub fn cell_name(template: &str, vt: VtClass, drive: f64) -> String {
    format!(
        "{template}_X{}_{}",
        drive as u32,
        vt.suffix().to_uppercase()
    )
}

fn leakage_uw(
    config: &LibConfig,
    corner: &PvtCorner,
    template: &CellTemplate,
    vt: VtClass,
    drive: f64,
) -> f64 {
    // Half the devices leak at a time, crudely.
    let width = template.unit_width_um * drive * 0.5;
    let i_off = config.tech.ioff_per_um
        * width
        * vt.leakage_factor()
        * corner.process.leakage_factor()
        * (((corner.temperature.value() - 25.0) / 45.0).exp());
    // mA·V = mW → µW.
    i_off * corner.voltage.value() * 1000.0
}

fn switch_energy(corner: &PvtCorner, c_par: Ff) -> (f64, f64) {
    // E = ½·C·V²; fF·V² = fJ.
    let v2 = corner.voltage.value() * corner.voltage.value();
    (0.5 * v2, 0.5 * v2 * c_par.value())
}

fn build_comb_cell(
    config: &LibConfig,
    corner: &PvtCorner,
    template: &'static CellTemplate,
    vt: VtClass,
    drive: f64,
    aging_factor: f64,
) -> Result<LibCell> {
    let name = cell_name(template.name, vt, drive);
    let in_cell = |e: Error| Error::internal(format!("characterizing {name}: {e}"));
    let model = drive_model(&config.tech, template, vt, drive, corner);
    let base_delay = model
        .delay_table()
        .map_err(in_cell)?
        .map(|d| d * aging_factor);
    let base_slew = model
        .slew_table()
        .map_err(in_cell)?
        .map(|s| s * aging_factor);

    let mut arcs = Vec::with_capacity(template.inputs);
    for i in 0..template.inputs {
        // Later inputs of a stack are slightly slower (the `B` input of
        // a NAND2 drives the top of the series stack).
        let skew = 1.0 + 0.06 * i as f64;
        let delay = base_delay.map(|d| d * skew);
        let lvf = match config.with_lvf {
            true => Some(
                LvfTable::from_delay_surface(&delay, config.local_sigma, config.sigma_asymmetry)
                    .map_err(in_cell)?,
            ),
            false => None,
        };
        arcs.push(TimingArc {
            input: ["A", "B", "C", "D"][i].to_string(),
            delay,
            out_slew: base_slew.clone(),
            lvf,
        });
    }

    Ok(LibCell {
        name,
        template,
        kind: CellKind::Comb,
        vt,
        drive,
        input_cap: model.c_in,
        area_sites: template.area_sites * (1.0 + 0.35 * (drive - 1.0)),
        leakage_uw: leakage_uw(config, corner, template, vt, drive),
        switch_energy_fj: switch_energy(corner, model.c_par),
        arcs,
        flop: None,
        pocv: PocvSigma {
            late: config.local_sigma * config.sigma_asymmetry,
            early: config.local_sigma,
        },
    })
}

fn build_flop_cell(
    config: &LibConfig,
    corner: &PvtCorner,
    vt: VtClass,
    drive: f64,
    aging_factor: f64,
) -> Result<LibCell> {
    let template = &CellTemplate::DFF;
    let name = cell_name("DFF", vt, drive);
    let in_cell = |e: Error| Error::internal(format!("characterizing {name}: {e}"));
    let model = drive_model(&config.tech, template, vt, drive, corner);
    let c2q_delay = model
        .delay_table()
        .map_err(in_cell)?
        .map(|d| (d + 25.0) * aging_factor);
    let c2q_slew = model
        .slew_table()
        .map_err(in_cell)?
        .map(|s| s * aging_factor);
    let lvf = match config.with_lvf {
        true => Some(
            LvfTable::from_delay_surface(&c2q_delay, config.local_sigma, config.sigma_asymmetry)
                .map_err(in_cell)?,
        ),
        false => None,
    };

    // Constraint tables vs (data slew, clock slew); they scale with the
    // same corner factor as delay (slower silicon needs more setup).
    let k = corner.delay_factor(&config.tech, vt) * aging_factor;
    let axes: Vec<f64> = vec![5.0, 10.0, 20.0, 40.0, 80.0, 160.0, 320.0];
    let setup = Lut2::from_fn(axes.clone(), axes.clone(), |ds, cs| {
        (18.0 + 0.35 * ds + 0.10 * cs) * k
    })
    .map_err(|e| Error::internal(format!("characterizing {name}: setup grid: {e}")))?;
    let hold = Lut2::from_fn(axes.clone(), axes.clone(), |ds, cs| {
        (4.0 - 0.10 * ds + 0.22 * cs) * k
    })
    .map_err(|e| Error::internal(format!("characterizing {name}: hold grid: {e}")))?;

    let interdep = InterdepModel {
        c2q0: c2q_delay.eval(20.0, 4.0),
        tau_s: 12.0 * k,
        s0: 16.0 * k,
        tau_h: 10.0 * k,
        h0: 3.0 * k,
        ..InterdepModel::typical_65nm()
    };

    Ok(LibCell {
        name,
        template,
        kind: CellKind::Flop,
        vt,
        drive,
        input_cap: model.c_in,
        area_sites: template.area_sites * (1.0 + 0.35 * (drive - 1.0)),
        leakage_uw: leakage_uw(config, corner, template, vt, drive),
        switch_energy_fj: switch_energy(corner, model.c_par),
        arcs: vec![TimingArc {
            input: "CK".to_string(),
            delay: c2q_delay,
            out_slew: c2q_slew,
            lvf,
        }],
        flop: Some(FlopTiming {
            setup,
            hold,
            interdep,
        }),
        pocv: PocvSigma {
            late: config.local_sigma * config.sigma_asymmetry,
            early: config.local_sigma,
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_full_variant_matrix() {
        let lib = Library::generate(&LibConfig::default(), &PvtCorner::typical());
        // 6 comb templates × 4 vts × 4 drives + DFF × 4 vts × 2 drives.
        assert_eq!(lib.cells().len(), 6 * 4 * 4 + 4 * 2);
        assert!(lib.cell_named("INV_X8_ULVT").is_some());
        assert!(lib.cell_named("DFF_X2_HVT").is_some());
        assert!(lib.cell_named("INV_X3_SVT").is_none());
    }

    #[test]
    fn try_generate_matches_generate() {
        let cfg = LibConfig::default();
        let corner = PvtCorner::typical();
        let fallible = Library::try_generate(&cfg, &corner).unwrap();
        let infallible = Library::generate(&cfg, &corner);
        assert_eq!(fallible.cells().len(), infallible.cells().len());
        for (a, b) in fallible.cells().iter().zip(infallible.cells()) {
            assert_eq!(a.name, b.name);
        }
    }

    #[test]
    fn vt_swap_and_sizing_navigation() {
        let lib = Library::generate(&LibConfig::default(), &PvtCorner::typical());
        let id = lib.variant("NAND2", VtClass::Svt, 2.0).unwrap();
        let faster = lib.vt_faster(id).unwrap();
        assert_eq!(lib.cell(faster).vt, VtClass::Lvt);
        let up = lib.upsize(id).unwrap();
        assert!((lib.cell(up).drive - 4.0).abs() < 1e-9);
        let down = lib.downsize(id).unwrap();
        assert!((lib.cell(down).drive - 1.0).abs() < 1e-9);
        // Ends of the ladders.
        let x8 = lib.variant("NAND2", VtClass::Svt, 8.0).unwrap();
        assert!(lib.upsize(x8).is_none());
        let ulvt = lib.variant("NAND2", VtClass::Ulvt, 2.0).unwrap();
        assert!(lib.vt_faster(ulvt).is_none());
    }

    #[test]
    fn faster_variants_really_are_faster() {
        let lib = Library::generate(&LibConfig::default(), &PvtCorner::typical());
        let svt = lib.cell_named("INV_X2_SVT").unwrap();
        let lvt = lib.cell_named("INV_X2_LVT").unwrap();
        assert!(lvt.arcs[0].delay_at(20.0, 4.0) < svt.arcs[0].delay_at(20.0, 4.0));
        assert!(lvt.leakage_uw > svt.leakage_uw);
    }

    #[test]
    fn slow_corner_library_is_slower() {
        let cfg = LibConfig::default();
        let typ = Library::generate(&cfg, &PvtCorner::typical());
        let slow = Library::generate(&cfg, &PvtCorner::slow_cold());
        let d_t = typ.cell_named("NAND2_X1_SVT").unwrap().arcs[0].delay_at(20.0, 4.0);
        let d_s = slow.cell_named("NAND2_X1_SVT").unwrap().arcs[0].delay_at(20.0, 4.0);
        assert!(d_s > d_t * 1.2, "slow {d_s} vs typical {d_t}");
    }

    #[test]
    fn aged_library_is_slower() {
        let mut cfg = LibConfig::default();
        let fresh = Library::generate(&cfg, &PvtCorner::typical());
        cfg.aging_delta_vt = 0.04;
        let aged = Library::generate(&cfg, &PvtCorner::typical());
        let d_f = fresh.cell_named("INV_X1_SVT").unwrap().arcs[0].delay_at(20.0, 4.0);
        let d_a = aged.cell_named("INV_X1_SVT").unwrap().arcs[0].delay_at(20.0, 4.0);
        assert!(d_a > d_f * 1.02, "aged {d_a} vs fresh {d_f}");
        // Aged flop also needs more setup.
        let s_f = fresh
            .cell_named("DFF_X1_SVT")
            .unwrap()
            .flop
            .as_ref()
            .unwrap()
            .setup_at(20.0, 20.0);
        let s_a = aged
            .cell_named("DFF_X1_SVT")
            .unwrap()
            .flop
            .as_ref()
            .unwrap()
            .setup_at(20.0, 20.0);
        assert!(s_a > s_f);
    }

    #[test]
    fn second_nand_input_is_slower() {
        let lib = Library::generate(&LibConfig::default(), &PvtCorner::typical());
        let nand = lib.cell_named("NAND2_X1_SVT").unwrap();
        let a = nand.arc_from("A").unwrap().delay_at(20.0, 4.0);
        let b = nand.arc_from("B").unwrap().delay_at(20.0, 4.0);
        assert!(b > a);
    }

    #[test]
    fn lvf_tables_attached_when_requested() {
        let mut cfg = LibConfig::default();
        let lib = Library::generate(&cfg, &PvtCorner::typical());
        assert!(lib.cells()[0].arcs[0].lvf.is_some());
        cfg.with_lvf = false;
        let lib = Library::generate(&cfg, &PvtCorner::typical());
        assert!(lib.cells()[0].arcs[0].lvf.is_none());
    }
}
