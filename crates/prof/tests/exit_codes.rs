//! The `tc_prof` binary's exit-code contract, locked end to end:
//! 0 clean, 1 finding (dropped events / diff regression), 2 usage or
//! parse error. Fixtures are built from synthetic snapshots so the
//! expected verdicts are exact.

use std::path::PathBuf;
use std::process::{Command, Output};
use std::sync::Arc;

use tc_obs::trace::{TraceEvent, TraceEventKind};
use tc_obs::TraceSnapshot;
use tc_prof::Profile;

fn run(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_tc_prof"))
        .args(args)
        .output()
        .expect("spawn tc_prof")
}

fn code(out: &Output) -> i32 {
    out.status.code().expect("exit code")
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

fn fixture_dir() -> PathBuf {
    let dir = std::env::temp_dir().join(format!("tc_prof_exit_codes_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("fixture dir");
    dir
}

fn write(name: &str, text: &str) -> String {
    let path = fixture_dir().join(name);
    std::fs::write(&path, text).expect("write fixture");
    path.to_string_lossy().into_owned()
}

fn one_span_snapshot(end_ns: u64, dropped: u64) -> TraceSnapshot {
    let ev = |kind, ts_ns| TraceEvent {
        kind,
        name: Arc::from("sta"),
        tid: 0,
        ts_ns,
        delta: 0,
    };
    TraceSnapshot {
        events: vec![
            ev(TraceEventKind::Begin, 0),
            ev(TraceEventKind::End, end_ns),
        ],
        dropped,
        thread_names: vec![(0, "main".to_string())],
    }
}

fn prof_json(end_ns: u64, dropped: u64) -> String {
    Profile::from_trace(&one_span_snapshot(end_ns, dropped))
        .workload("exit-code fixture")
        .render_json()
}

#[test]
fn report_is_clean_on_a_good_profile_and_trace() {
    let prof = write("good.json", &prof_json(1_000, 0));
    let out = run(&["report", &prof]);
    assert_eq!(code(&out), 0, "{out:?}");
    assert!(stdout(&out).contains("sta"));

    let trace = write(
        "good.trace.json",
        &one_span_snapshot(1_000, 0).to_chrome_trace(),
    );
    let out = run(&["report", &trace, "--json"]);
    assert_eq!(code(&out), 0, "{out:?}");
    assert!(stdout(&out).contains("tc.profile"));
}

#[test]
fn report_exits_one_on_dropped_events() {
    let trace = write(
        "dropped.trace.json",
        &one_span_snapshot(1_000, 9).to_chrome_trace(),
    );
    let out = run(&["report", &trace]);
    assert_eq!(code(&out), 1, "{out:?}");
    assert!(String::from_utf8_lossy(&out.stderr).contains("dropped"));
}

#[test]
fn diff_passes_identical_and_fails_a_slowed_span() {
    let base = write("base.json", &prof_json(1_000, 0));
    let same = write("same.json", &prof_json(1_000, 0));
    let out = run(&["diff", &base, &same]);
    assert_eq!(code(&out), 0, "{out:?}");
    assert!(stdout(&out).contains("PASS"));

    let slowed = write("slowed.json", &prof_json(2_000, 0));
    let out = run(&["diff", &base, &slowed]);
    assert_eq!(code(&out), 1, "{out:?}");
    let text = stdout(&out);
    assert!(text.contains("REGRESSION"), "{text}");
    assert!(text.contains("FAIL"), "{text}");

    // A wide-open tolerance forgives the timing but not structure.
    let out = run(&["diff", &base, &slowed, "--tol", "5.0"]);
    assert_eq!(code(&out), 0, "{out:?}");
}

#[test]
fn fold_reproduces_folded_stacks_from_a_trace() {
    let trace = write(
        "fold.trace.json",
        &one_span_snapshot(1_000, 0).to_chrome_trace(),
    );
    let out = run(&["fold", &trace]);
    assert_eq!(code(&out), 0, "{out:?}");
    assert!(stdout(&out).starts_with("sta "));
}

#[test]
fn usage_parse_and_io_errors_exit_two() {
    assert_eq!(code(&run(&[])), 2);
    assert_eq!(code(&run(&["frobnicate"])), 2);
    assert_eq!(code(&run(&["report"])), 2);
    assert_eq!(code(&run(&["report", "/nonexistent/PROF.json"])), 2);
    assert_eq!(code(&run(&["diff", "/nonexistent/a.json"])), 2);
    let garbage = write("garbage.json", "this is not json");
    assert_eq!(code(&run(&["report", &garbage])), 2);
    let bad = write("bad.json", r#"{"kind":"tc.profile","schema_version":1}"#);
    assert_eq!(code(&run(&["report", &bad])), 2);
    // --help is informational (exit 0), bare invocation is misuse.
    assert_eq!(code(&run(&["--help"])), 0);
}
