//! **Fig 4** — multi-input switching (MIS) vs single-input switching
//! (SIS) arc delays of a NAND2 with an FO3 load, at nominal VDD and 80%
//! of nominal, for rising and falling inputs.
//!
//! Paper's observation to reproduce: with *falling* inputs (output
//! rising through the parallel PMOS pair) the MIS delay can drop to
//! ~50% of SIS or below — critical for hold signoff — while with
//! *rising* inputs (series NMOS stack) MIS is >~10% slower than SIS.

use tc_bench::{fmt, print_table};
use tc_core::units::Volt;
use tc_device::Technology;
use tc_sim::mis::{run_mis_study, InputDir, MisStudy};

fn main() {
    let tech = Technology::planar_28nm();
    let nominal = 0.9;
    let mut rows = Vec::new();
    for &vdd_frac in &[1.0, 0.8] {
        let vdd = Volt::new(nominal * vdd_frac);
        let study = MisStudy::paper_default(vdd);
        for dir in [InputDir::Falling, InputDir::Rising] {
            let r = run_mis_study(&tech, &study, dir).expect("mis study");
            rows.push(vec![
                format!("{:.2} V", vdd.value()),
                format!("{dir:?}"),
                fmt(r.sis_delay.value(), 2),
                fmt(r.mis_delay.value(), 2),
                fmt(100.0 * r.ratio(), 1) + "%",
                fmt(r.worst_offset, 0),
            ]);
        }
    }
    print_table(
        "Fig 4: NAND2 + FO3, MIS vs SIS arc delay",
        &[
            "VDD",
            "input dir",
            "SIS (ps)",
            "MIS (ps)",
            "MIS/SIS",
            "offset (ps)",
        ],
        &rows,
    );

    // The full offset sweep at nominal VDD, falling inputs (the plotted
    // curve of Fig 4(b)).
    let study = MisStudy::paper_default(Volt::new(nominal));
    let r = run_mis_study(&tech, &study, InputDir::Falling).expect("mis study");
    let sweep: Vec<Vec<String>> = study
        .offsets
        .iter()
        .zip(&r.sweep)
        .map(|(o, d)| vec![fmt(*o, 0), fmt(d.value(), 2)])
        .collect();
    print_table(
        "Fig 4(b): arc delay vs IN1 arrival offset (falling, 0.90 V)",
        &["offset (ps)", "arc delay (ps)"],
        &sweep,
    );
}
