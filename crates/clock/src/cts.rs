//! Clock-tree synthesis by recursive geometric bisection.
//!
//! Flops are clustered by position; each bisection level adds a buffer
//! stage; each leaf cluster adds local wire latency proportional to the
//! sink's distance from the cluster center. The result is the
//! common/leaf latency split `tc-sta`'s CPPR modeling expects.

use std::collections::HashMap;

use tc_core::ids::CellId;
use tc_core::units::Ps;
use tc_liberty::{Library, PvtCorner};
use tc_netlist::Netlist;
use tc_placement::rows::Placement;

/// Delay of one clock-buffer level at the typical corner, ps.
const BUFFER_LEVEL_PS: f64 = 18.0;
/// Wire latency per µm of leaf routing, ps.
const LEAF_WIRE_PS_PER_UM: f64 = 0.30;

/// A synthesized clock tree: per-sink insertion delays split into a
/// common trunk and per-leaf remainders.
#[derive(Clone, Debug)]
pub struct ClockTree {
    /// Latency shared by all sinks (trunk buffers).
    pub common: Ps,
    /// Per-flop leaf latency beyond the trunk.
    pub leaf: HashMap<CellId, Ps>,
    /// Number of buffer levels.
    pub levels: usize,
}

impl ClockTree {
    /// Synthesizes a tree over the placed flops, bisecting until
    /// clusters hold at most `max_cluster` sinks.
    pub fn synthesize(
        nl: &Netlist,
        lib: &Library,
        pl: &Placement,
        max_cluster: usize,
    ) -> ClockTree {
        let flops: Vec<CellId> = nl.flops(lib).collect();
        if flops.is_empty() {
            return ClockTree {
                common: Ps::ZERO,
                leaf: HashMap::new(),
                levels: 0,
            };
        }
        // Levels needed to reach the cluster size.
        let mut levels = 0usize;
        let mut n = flops.len();
        while n > max_cluster.max(1) {
            n = n.div_ceil(2);
            levels += 1;
        }
        let common = Ps::new(BUFFER_LEVEL_PS * levels as f64 + 25.0);

        // Recursive bisection to form clusters.
        let mut clusters: Vec<Vec<CellId>> = vec![flops];
        for _ in 0..levels {
            let mut next = Vec::new();
            for cluster in clusters {
                if cluster.len() <= max_cluster {
                    next.push(cluster);
                    continue;
                }
                // Split along the wider dimension by median.
                let mut pts: Vec<(CellId, f64, f64)> = cluster
                    .iter()
                    .map(|&c| {
                        let (x, y) = pl.position(c);
                        (c, x.value(), y.value())
                    })
                    .collect();
                let (min_x, max_x) = pts
                    .iter()
                    .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), p| {
                        (lo.min(p.1), hi.max(p.1))
                    });
                let (min_y, max_y) = pts
                    .iter()
                    .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), p| {
                        (lo.min(p.2), hi.max(p.2))
                    });
                if max_x - min_x >= max_y - min_y {
                    pts.sort_by(|a, b| a.1.total_cmp(&b.1));
                } else {
                    pts.sort_by(|a, b| a.2.total_cmp(&b.2));
                }
                let mid = pts.len() / 2;
                next.push(pts[..mid].iter().map(|p| p.0).collect());
                next.push(pts[mid..].iter().map(|p| p.0).collect());
            }
            clusters = next;
        }

        // Leaf latency: local buffer + wire from cluster center.
        let mut leaf = HashMap::new();
        for cluster in &clusters {
            let (mut cx, mut cy) = (0.0, 0.0);
            for &c in cluster {
                let (x, y) = pl.position(c);
                cx += x.value();
                cy += y.value();
            }
            cx /= cluster.len() as f64;
            cy /= cluster.len() as f64;
            for &c in cluster {
                let (x, y) = pl.position(c);
                let dist = (x.value() - cx).abs() + (y.value() - cy).abs();
                leaf.insert(c, Ps::new(BUFFER_LEVEL_PS + LEAF_WIRE_PS_PER_UM * dist));
            }
        }
        ClockTree {
            common,
            leaf,
            levels,
        }
    }

    /// Global skew: max − min sink latency.
    pub fn skew(&self) -> Ps {
        let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
        for l in self.leaf.values() {
            lo = lo.min(l.value());
            hi = hi.max(l.value());
        }
        if self.leaf.is_empty() {
            Ps::ZERO
        } else {
            Ps::new(hi - lo)
        }
    }

    /// Total insertion delay to a sink.
    pub fn insertion_delay(&self, flop: CellId) -> Ps {
        self.common + self.leaf.get(&flop).copied().unwrap_or(Ps::ZERO)
    }

    /// Converts to the latency model `tc-sta` consumes.
    pub fn to_model(&self, clock_slew: f64) -> tc_sta::ClockTreeModel {
        tc_sta::ClockTreeModel {
            common: self.common,
            default_leaf: Ps::ZERO,
            leaf: self.leaf.clone(),
            clock_slew,
        }
    }

    /// Skew of the same tree re-evaluated at another PVT corner: all
    /// buffer latencies scale by the corner's delay factor, so skew
    /// scales too — but *differently-structured* leaves scale uniformly
    /// here; the per-corner skew table quantifies the MCMM-CTS burden.
    pub fn skew_at_corner(&self, lib: &Library, corner: &PvtCorner) -> Ps {
        let f = corner.delay_factor(&lib.tech, tc_device::VtClass::Svt);
        self.skew() * f
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tc_liberty::LibConfig;
    use tc_netlist::gen::{generate, BenchProfile};

    fn setup() -> (Library, Netlist, Placement) {
        let lib = Library::generate(&LibConfig::default(), &PvtCorner::typical());
        let nl = generate(&lib, BenchProfile::tiny(), 3).unwrap();
        let pl = Placement::row_fill(&nl, &lib, 64, 7);
        (lib, nl, pl)
    }

    #[test]
    fn every_flop_gets_a_latency() {
        let (lib, nl, pl) = setup();
        let tree = ClockTree::synthesize(&nl, &lib, &pl, 4);
        assert_eq!(tree.leaf.len(), nl.flops(&lib).count());
        for &c in tree.leaf.keys() {
            assert!(tree.insertion_delay(c) > tree.common);
        }
    }

    #[test]
    fn smaller_clusters_mean_more_levels_and_deeper_trees() {
        let (lib, nl, pl) = setup();
        let coarse = ClockTree::synthesize(&nl, &lib, &pl, 16);
        let fine = ClockTree::synthesize(&nl, &lib, &pl, 2);
        assert!(fine.levels > coarse.levels);
        assert!(fine.common > coarse.common);
        // Finer clustering shortens leaf wires, cutting skew.
        assert!(fine.skew() <= coarse.skew());
    }

    #[test]
    fn skew_scales_with_corner() {
        let (lib, nl, pl) = setup();
        let tree = ClockTree::synthesize(&nl, &lib, &pl, 8);
        let typ = tree.skew_at_corner(&lib, &PvtCorner::typical());
        let slow = tree.skew_at_corner(&lib, &PvtCorner::slow_cold());
        assert!(slow > typ, "slow corner inflates skew: {slow} vs {typ}");
    }

    #[test]
    fn empty_design_yields_empty_tree() {
        let lib = Library::generate(&LibConfig::default(), &PvtCorner::typical());
        let nl = Netlist::new("empty");
        let pl = Placement::row_fill(&nl, &lib, 64, 1);
        let tree = ClockTree::synthesize(&nl, &lib, &pl, 8);
        assert_eq!(tree.skew(), Ps::ZERO);
        assert_eq!(tree.levels, 0);
    }
}
