//! The ECO edit journal: a typed log of every netlist mutation.
//!
//! Incremental timing (the `Timer` in `tc-sta`) consumes this journal to
//! find the dirty cones an edit invalidated, instead of re-timing the
//! whole design. The journal also powers O(edits) rollback
//! ([`Netlist::undo_to`]): each entry records enough of the *prior*
//! state (old master, old wirelength, original sink positions) that the
//! inverse can be applied exactly, restoring bit-identical structure.
//!
//! Identifiers are stable across edits: cells and nets are only ever
//! appended (buffer insertion appends one cell and one net), so a
//! `CellId`/`NetId` captured before an edit sequence still names the
//! same object afterwards — and after an undo.
//!
//! [`Netlist::undo_to`]: crate::Netlist::undo_to

use tc_core::ids::{CellId, LibCellId, NetId};

use crate::graph::PinRef;

/// One journaled netlist edit.
///
/// Every ECO mutator on [`Netlist`](crate::Netlist) appends exactly one
/// entry. Construction-time calls (`add_cell`, `add_input`,
/// `mark_output`) are *not* journaled: the journal describes the delta
/// against the built design, and [`Netlist::journal_len`] taken after
/// construction is the natural "time zero" checkpoint.
///
/// [`Netlist::journal_len`]: crate::Netlist::journal_len
#[derive(Clone, Debug, PartialEq)]
pub enum NetlistEdit {
    /// `swap_master`: Vt-swap or resize — arc tables and pin caps change,
    /// structure does not.
    SwapMaster {
        /// The rebound cell.
        cell: CellId,
        /// Master before the swap.
        old_master: LibCellId,
        /// Master after the swap.
        new_master: LibCellId,
    },
    /// `set_wire_length`: a net's estimated routed length changed.
    SetWireLength {
        /// The annotated net.
        net: NetId,
        /// Length before, µm.
        old_um: f64,
        /// Length after, µm.
        new_um: f64,
    },
    /// `set_route_class`: a net's non-default routing rule changed.
    SetRouteClass {
        /// The reclassed net.
        net: NetId,
        /// Route class before.
        old_class: u8,
        /// Route class after.
        new_class: u8,
    },
    /// `insert_buffer`: one cell and one net were appended; the moved
    /// sinks now hang off the buffer's output net.
    InsertBuffer {
        /// The new buffer cell (always the last cell at insertion time).
        buffer: CellId,
        /// The buffer's output net (always the last net at insertion time).
        buffer_out: NetId,
        /// The net that was split (the buffer's input).
        src_net: NetId,
        /// The re-homed sinks with their original positions in
        /// `src_net`'s sink list, ascending — what `undo_to` needs to
        /// restore the exact sink order (per-sink wire delays align with
        /// that order).
        moved_sinks: Vec<(PinRef, usize)>,
    },
    /// `rewire_input`: one sink pin moved between nets.
    RewireInput {
        /// The moved sink.
        sink: PinRef,
        /// Net it was detached from.
        old_net: NetId,
        /// Net it now loads.
        new_net: NetId,
        /// The sink's original position in `old_net`'s sink list.
        old_index: usize,
    },
}

impl NetlistEdit {
    /// `true` for edits that change graph structure (cell/net counts or
    /// connectivity), forcing the incremental timer to re-derive its
    /// topological order; value-only edits (swap, wirelength, NDR) reuse
    /// the existing order.
    pub fn is_structural(&self) -> bool {
        matches!(
            self,
            NetlistEdit::InsertBuffer { .. } | NetlistEdit::RewireInput { .. }
        )
    }
}
