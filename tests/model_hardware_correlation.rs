//! Model-hardware correlation: the library's closed-form NLDM tables
//! (the "model") against the transistor-level simulator (our "silicon").
//!
//! The paper's §4: "as margin becomes scarcer, analysis accuracy and
//! model-hardware correlation gain importance" and "model-hardware
//! correlation is progressively weakening". These tests quantify our
//! stack's own correlation — trend agreement between `tc-liberty` and
//! `tc-sim` — the way a foundry test-chip program would.

use tc_core::stats::correlation;
use tc_core::units::Ff;
use timing_closure::liberty::{LibConfig, Library, PvtCorner};
use timing_closure::sim::char_cell::{measure_arc, CellKind, CharConditions};
use timing_closure::sim::measure::Edge;

/// The library's INV delay trend across load must correlate with the
/// simulated transistor-level trend (r > 0.97), even though absolute
/// values differ (different characterization conditions).
#[test]
fn inverter_delay_trend_correlates_across_load() {
    let lib = Library::generate(&LibConfig::default(), &PvtCorner::typical());
    let inv = lib.cell_named("INV_X1_SVT").unwrap();
    let cond = CharConditions::nominal_28nm();

    let loads = [1.0, 2.0, 4.0, 8.0, 12.0];
    let model: Vec<f64> = loads
        .iter()
        .map(|&l| inv.arcs[0].delay_at(20.0, l).value())
        .collect();
    let silicon: Vec<f64> = loads
        .iter()
        .map(|&l| {
            measure_arc(CellKind::Inv, &cond, 20.0, Ff::new(l), Edge::Rise)
                .unwrap()
                .delay
        })
        .collect();
    let r = correlation(&model, &silicon);
    assert!(
        r > 0.97,
        "load-trend correlation r = {r}\nmodel {model:?}\nsilicon {silicon:?}"
    );
}

/// Same for the input-slew trend.
#[test]
fn inverter_delay_trend_correlates_across_slew() {
    let lib = Library::generate(&LibConfig::default(), &PvtCorner::typical());
    let inv = lib.cell_named("INV_X1_SVT").unwrap();
    let cond = CharConditions::nominal_28nm();

    let slews = [10.0, 20.0, 40.0, 80.0];
    let model: Vec<f64> = slews
        .iter()
        .map(|&s| inv.arcs[0].delay_at(s, 4.0).value())
        .collect();
    let silicon: Vec<f64> = slews
        .iter()
        .map(|&s| {
            measure_arc(CellKind::Inv, &cond, s, Ff::new(4.0), Edge::Rise)
                .unwrap()
                .delay
        })
        .collect();
    let r = correlation(&model, &silicon);
    assert!(r > 0.95, "slew-trend correlation r = {r}");
}

/// The drive-strength ladder must order identically in model and
/// silicon: X2 faster than X1, X4 faster than X2, at a common load.
#[test]
fn drive_ladder_orders_identically() {
    let lib = Library::generate(&LibConfig::default(), &PvtCorner::typical());
    let mut cond = CharConditions::nominal_28nm();

    let mut model = Vec::new();
    let mut silicon = Vec::new();
    for drive in [1.0, 2.0, 4.0] {
        let name = format!("INV_X{}_SVT", drive as u32);
        let cell = lib.cell_named(&name).unwrap();
        model.push(cell.arcs[0].delay_at(20.0, 8.0).value());
        cond.strength = drive;
        silicon.push(
            measure_arc(CellKind::Inv, &cond, 20.0, Ff::new(8.0), Edge::Rise)
                .unwrap()
                .delay,
        );
    }
    for w in model.windows(2) {
        assert!(w[1] < w[0], "model ladder must descend: {model:?}");
    }
    for w in silicon.windows(2) {
        assert!(w[1] < w[0], "silicon ladder must descend: {silicon:?}");
    }
}

/// NAND2 vs INV: the model's logical-effort penalty must appear in
/// silicon too. The comparison uses the *rising-output* arc (falling
/// input): the NAND2's pull-up is a single PMOS driving a larger
/// diffusion load, so it is strictly slower than the inverter — whereas
/// its 2×-upsized pull-down stack can actually beat the inverter's
/// pull-down, which is exactly why logical effort charges NAND inputs
/// in *capacitance*, not resistance.
#[test]
fn topology_penalty_correlates() {
    let lib = Library::generate(&LibConfig::default(), &PvtCorner::typical());
    let cond = CharConditions::nominal_28nm();

    let inv_model = lib.cell_named("INV_X1_SVT").unwrap().arcs[0]
        .delay_at(20.0, 4.0)
        .value();
    let nand_model = lib.cell_named("NAND2_X1_SVT").unwrap().arcs[0]
        .delay_at(20.0, 4.0)
        .value();
    assert!(nand_model > inv_model, "model parasitic penalty");
    // And the input-capacitance penalty (the real LE cost):
    let inv_cin = lib.cell_named("INV_X1_SVT").unwrap().input_cap;
    let nand_cin = lib.cell_named("NAND2_X1_SVT").unwrap().input_cap;
    assert!(nand_cin.value() > 1.25 * inv_cin.value());

    let inv_si = measure_arc(CellKind::Inv, &cond, 20.0, Ff::new(4.0), Edge::Fall)
        .unwrap()
        .delay;
    let nand_si = measure_arc(CellKind::Nand2, &cond, 20.0, Ff::new(4.0), Edge::Fall)
        .unwrap()
        .delay;
    assert!(
        nand_si > inv_si,
        "silicon rising-output penalty: nand {nand_si} vs inv {inv_si}"
    );
}
