//! The fuzz loop: seeded campaign driver, violation dedup, and greedy
//! ddmin-style shrinking.

use std::collections::HashSet;

use tc_core::rng::Rng;

use crate::mutate::mutate;
use crate::target::{Env, TargetKind, Verdict, Violation};

/// Campaign configuration (mirrors the `tc_fuzz` CLI).
#[derive(Clone, Debug)]
pub struct FuzzConfig {
    /// Base seeds; each (seed, target) pair is an independent stream.
    pub seeds: Vec<u64>,
    /// Iterations per (seed, target) pair.
    pub iters: u64,
    /// Targets to drive.
    pub targets: Vec<TargetKind>,
    /// Print per-finding detail while running.
    pub verbose: bool,
}

impl Default for FuzzConfig {
    fn default() -> Self {
        FuzzConfig {
            seeds: vec![1],
            iters: 1000,
            targets: TargetKind::ALL.to_vec(),
            verbose: false,
        }
    }
}

/// One deduplicated, shrunk violation.
#[derive(Clone, Debug)]
pub struct Finding {
    /// Target that broke.
    pub target: TargetKind,
    /// Seed of the stream that found it.
    pub seed: u64,
    /// Iteration within the stream.
    pub iter: u64,
    /// The shrunk offending input.
    pub input: Vec<u8>,
    /// What broke.
    pub violation: Violation,
}

/// Accepted mutants feed back into the pool up to this size — enough
/// diversity to walk away from the seeds, bounded so the pool cannot
/// drown in near-duplicates.
const POOL_CAP: usize = 64;

/// Findings kept per target; further duplicates of the same signature
/// are counted but not re-shrunk.
const FINDINGS_CAP: usize = 12;

/// Runs a fuzz campaign. Deterministic: the same `cfg` against the same
/// code yields the same findings in the same order.
pub fn run(env: &Env, cfg: &FuzzConfig) -> Vec<Finding> {
    let mut findings = Vec::new();
    for &target in &cfg.targets {
        let corpus = env.corpus(target);
        let mut seen: HashSet<String> = HashSet::new();
        for &seed in &cfg.seeds {
            let mut rng = Rng::stream_from(seed, target as u64 + 1);
            let mut pool = corpus.clone();
            for iter in 0..cfg.iters {
                let mut input = pool[rng.below(pool.len())].clone();
                mutate(&mut rng, &pool, &mut input);
                match env.check(target, &input) {
                    Verdict::Accepted => {
                        if pool.len() < POOL_CAP {
                            pool.push(input);
                        }
                    }
                    Verdict::Rejected => {}
                    Verdict::Violation(v) => {
                        let key = signature(&v);
                        if seen.len() >= FINDINGS_CAP || !seen.insert(key) {
                            continue;
                        }
                        let shrunk = shrink(env, target, &input);
                        if cfg.verbose {
                            eprintln!(
                                "[{}] seed {seed} iter {iter}: {} — {}",
                                target.name(),
                                v.kind(),
                                v.message()
                            );
                        }
                        findings.push(Finding {
                            target,
                            seed,
                            iter,
                            input: shrunk,
                            violation: v,
                        });
                    }
                }
            }
        }
    }
    findings
}

/// Dedup signature: violation kind plus a message prefix (offsets and
/// payload fragments vary per input; the leading words identify the bug).
fn signature(v: &Violation) -> String {
    let msg: String = v.message().chars().take(48).collect();
    format!("{}:{}", v.kind(), msg)
}

/// Greedy ddmin-style shrink: first drop whole lines, then byte chunks,
/// preserving the violation *kind*. Bounded predicate budget keeps the
/// worst case around a few hundred parser invocations.
pub fn shrink(env: &Env, target: TargetKind, input: &[u8]) -> Vec<u8> {
    let want_kind = match env.check(target, input) {
        Verdict::Violation(v) => v.kind(),
        _ => return input.to_vec(),
    };
    let mut budget = 400usize;
    let still_fails = |candidate: &[u8], budget: &mut usize| -> bool {
        if *budget == 0 {
            return false;
        }
        *budget -= 1;
        matches!(env.check(target, candidate),
                 Verdict::Violation(v) if v.kind() == want_kind)
    };

    let mut cur = input.to_vec();
    // Pass 1: remove lines (most corpus formats are line-oriented).
    loop {
        let lines: Vec<&[u8]> = split_keep_newlines(&cur);
        if lines.len() <= 1 {
            break;
        }
        let mut removed_any = false;
        let mut i = 0;
        while i < lines_count(&cur) {
            let lines: Vec<&[u8]> = split_keep_newlines(&cur);
            if lines.len() <= 1 {
                break;
            }
            let candidate: Vec<u8> = lines
                .iter()
                .enumerate()
                .filter(|(j, _)| *j != i)
                .flat_map(|(_, l)| l.iter().copied())
                .collect();
            if still_fails(&candidate, &mut budget) {
                cur = candidate;
                removed_any = true;
                // Same index now names the next line.
            } else {
                i += 1;
            }
        }
        if !removed_any || budget == 0 {
            break;
        }
    }
    // Pass 2: halve-and-conquer byte chunks.
    let mut chunk = (cur.len() / 2).max(1);
    while chunk >= 1 && budget > 0 && !cur.is_empty() {
        let mut start = 0;
        let mut removed_any = false;
        while start < cur.len() {
            let end = (start + chunk).min(cur.len());
            let mut candidate = Vec::with_capacity(cur.len() - (end - start));
            candidate.extend_from_slice(&cur[..start]);
            candidate.extend_from_slice(&cur[end..]);
            if !candidate.is_empty() && still_fails(&candidate, &mut budget) {
                cur = candidate;
                removed_any = true;
            } else {
                start = end;
            }
            if budget == 0 {
                break;
            }
        }
        if chunk == 1 && !removed_any {
            break;
        }
        chunk = (chunk / 2).max(1);
        if !removed_any && chunk == 1 && cur.len() > 4096 {
            break;
        }
    }
    cur
}

fn split_keep_newlines(bytes: &[u8]) -> Vec<&[u8]> {
    let mut out = Vec::new();
    let mut start = 0;
    for (i, &b) in bytes.iter().enumerate() {
        if b == b'\n' {
            out.push(&bytes[start..=i]);
            start = i + 1;
        }
    }
    if start < bytes.len() {
        out.push(&bytes[start..]);
    }
    out
}

fn lines_count(bytes: &[u8]) -> usize {
    split_keep_newlines(bytes).len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn campaign_is_deterministic() {
        let env = Env::new();
        let cfg = FuzzConfig {
            seeds: vec![11],
            iters: 60,
            targets: vec![TargetKind::Json],
            verbose: false,
        };
        let a = run(&env, &cfg);
        let b = run(&env, &cfg);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.input, y.input);
            assert_eq!(x.iter, y.iter);
        }
    }
}
