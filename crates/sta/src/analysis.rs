//! Graph-based timing analysis (GBA).
//!
//! Late/early arrivals with slews are propagated through the levelized
//! netlist; POCV/LVF variance is accumulated per stage and slacks are
//! margined at `mean ± k·σ` ("slacks now reported at a confidence tail of
//! the slack distribution", §1.3 footnote). AOCV in GBA uses the
//! conservative depth bound of 1 stage — the pessimism PBA then recovers.

use tc_core::error::{Error, Result};
use tc_core::ids::{CellId, NetId};
use tc_core::units::{Ff, Ps};
use tc_interconnect::beol::{BeolCorner, BeolSample, BeolStack};
use tc_interconnect::estimate::{NdrClass, WireModel, WireScratch};
use tc_liberty::{CellKind, DerateModel, Library, TimingArc};
use tc_netlist::Netlist;

use crate::constraints::Constraints;
use crate::report::{Endpoint, EndpointTiming, TimingReport};
use crate::si::coupling_delta;
use crate::timer::TimingGraph;

/// One propagated arrival bound (late or early).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Arr {
    /// Mean arrival, ps.
    pub t: f64,
    /// Accumulated delay variance, ps².
    pub var: f64,
    /// Transition time at this point, ps.
    pub slew: f64,
    /// Stage count from the launch point.
    pub depth: usize,
    /// Cumulative gate delay along the winning path, ps.
    pub gate_ps: f64,
    /// Cumulative wire delay along the winning path, ps.
    pub wire_ps: f64,
}

impl Arr {
    fn late_criterion(&self, k: f64) -> f64 {
        self.t + k * self.var.sqrt()
    }

    fn early_criterion(&self, k: f64) -> f64 {
        self.t - k * self.var.sqrt()
    }
}

/// Per-net propagation state.
///
/// Full propagation and the incremental [`Timer`](crate::Timer) write
/// these through the *same* per-cell evaluation code path, which is what
/// makes incremental results bit-identical to a from-scratch run.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct NetState {
    /// Late (max-delay) arrival bound at the net.
    pub late: Arr,
    /// Early (min-delay) arrival bound at the net.
    pub early: Arr,
    /// `(driver input pin index)` that produced the late arrival — the
    /// breadcrumb PBA backtracking follows.
    pub late_pred_pin: Option<usize>,
    /// Whether any arrival reached this net.
    pub reached: bool,
}

/// The STA engine, borrowing the design and its environment.
#[derive(Clone, Debug)]
pub struct Sta<'a> {
    pub(crate) nl: &'a Netlist,
    pub(crate) lib: &'a Library,
    pub(crate) stack: &'a BeolStack,
    pub(crate) cons: &'a Constraints,
    pub(crate) beol_corner: BeolCorner,
    pub(crate) beol_sample: Option<&'a BeolSample>,
    /// Level-synchronous parallel propagation pool; `None` (the
    /// default) keeps GBA on the sequential reference path. The
    /// incremental [`Timer`](crate::Timer) never sets this — dirty-cone
    /// worklists are inherently ordered.
    pub(crate) par: Option<tc_par::Pool>,
}

/// Ranks smaller than this run inline even when a parallel pool is
/// configured: spawning a scope costs more than evaluating a handful of
/// cells.
const PAR_RANK_MIN: usize = 64;

/// Per-task net count for parallel wire-timing extraction (one atomic
/// claim per chunk, not per net).
const PAR_WIRE_CHUNK: usize = 256;

/// Wire timing cached per net. Plain-old-data: the per-sink delays live
/// in the owning [`WireTable`]'s shared pool, addressed by `(start, len)`
/// — one flat `Vec<Ps>` for the whole design instead of one heap
/// allocation per net.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct NetWire {
    /// Total load seen by the driver, fF.
    pub driver_load: Ff,
    /// SI delta delay (ps) added late / subtracted early when enabled.
    pub si_delta: f64,
    /// Start of this net's sink-delay span in the pool.
    pub(crate) start: u32,
    /// Sink count (span length).
    pub(crate) len: u32,
}

/// Per-net wire timings for a whole design: dense entries indexed by net
/// id plus one pooled sink-delay arena.
///
/// The pool is **append-only**: recomputing a net writes a fresh span and
/// repoints the entry, leaving the old span in place. That is what makes
/// the incremental timer's undo log sound — a popped [`NetWire`] entry
/// still addresses valid bytes. The retired spans are reclaimed only when
/// the table is rebuilt from scratch (a full propagation), mirroring how
/// the timer's own undo log grows until a fresh build.
#[derive(Clone, Debug, Default)]
pub struct WireTable {
    entries: Vec<NetWire>,
    pool: Vec<Ps>,
}

impl WireTable {
    /// Number of nets covered.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when no nets are covered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The POD entry of one net.
    pub fn entry(&self, net: usize) -> NetWire {
        self.entries[net]
    }

    /// Driver load of one net, fF.
    pub fn driver_load(&self, net: usize) -> Ff {
        self.entries[net].driver_load
    }

    /// SI delta delay of one net, ps.
    pub fn si_delta(&self, net: usize) -> f64 {
        self.entries[net].si_delta
    }

    /// Per-sink wire delays of one net, aligned with its sink list.
    pub fn delays(&self, net: usize) -> &[Ps] {
        let e = self.entries[net];
        &self.pool[e.start as usize..e.start as usize + e.len as usize]
    }

    /// Wire delay to one sink of one net.
    pub fn delay(&self, net: usize, sink: usize) -> Ps {
        self.delays(net)[sink]
    }

    /// Grows the entry vector to `n` nets (new entries empty) after a
    /// structural edit appended nets.
    pub(crate) fn resize(&mut self, n: usize) {
        self.entries.resize(n, NetWire::default());
    }

    /// Shrinks the entry vector back to `n` nets (rollback of a
    /// structural edit); pooled spans are untouched, so surviving
    /// entries stay valid.
    pub(crate) fn truncate(&mut self, n: usize) {
        self.entries.truncate(n);
    }

    /// Direct pool access for appending a candidate span (the timer's
    /// incremental recompute path).
    pub(crate) fn pool_mut(&mut self) -> &mut Vec<Ps> {
        &mut self.pool
    }

    /// Current pool length — the `start` of the next appended span.
    pub(crate) fn pool_len(&self) -> usize {
        self.pool.len()
    }

    /// Pool slice by raw span (candidate spans not yet installed in an
    /// entry).
    pub(crate) fn pool_slice(&self, start: usize, len: usize) -> &[Ps] {
        &self.pool[start..start + len]
    }

    /// Drops pool bytes past `len` (a rejected candidate span).
    pub(crate) fn pool_truncate(&mut self, len: usize) {
        self.pool.truncate(len);
    }

    /// Installs `entry` for `net`, returning the previous entry (whose
    /// span remains valid in the pool for undo).
    pub(crate) fn install(&mut self, net: usize, entry: NetWire) -> NetWire {
        std::mem::replace(&mut self.entries[net], entry)
    }

    /// Restores a previously popped entry (rollback).
    pub(crate) fn restore(&mut self, net: usize, entry: NetWire) {
        self.entries[net] = entry;
    }

    /// Heap bytes held by the table (entries + pool), for memory
    /// accounting.
    pub fn heap_bytes(&self) -> usize {
        self.entries.capacity() * std::mem::size_of::<NetWire>()
            + self.pool.capacity() * std::mem::size_of::<Ps>()
    }
}

/// Content equality: two tables agree when every net has the same load,
/// SI delta and delay values — regardless of where the spans sit in
/// their pools.
impl PartialEq for WireTable {
    fn eq(&self, other: &Self) -> bool {
        self.entries.len() == other.entries.len()
            && (0..self.entries.len()).all(|n| {
                let (a, b) = (self.entries[n], other.entries[n]);
                a.driver_load == b.driver_load
                    && a.si_delta == b.si_delta
                    && self.delays(n) == other.delays(n)
            })
    }
}

/// Reusable scratch for wire-timing evaluation: the interconnect arena
/// plus the per-net sink-cap staging buffer. One instance serves a whole
/// propagation (or a whole incremental-update batch) with no per-net
/// allocations.
#[derive(Clone, Debug, Default)]
pub struct WireEvalScratch {
    sink_caps: Vec<Ff>,
    wire: WireScratch,
}

impl<'a> Sta<'a> {
    /// Creates an analysis over a netlist at the library's PVT corner and
    /// the typical BEOL corner.
    pub fn new(
        nl: &'a Netlist,
        lib: &'a Library,
        stack: &'a BeolStack,
        cons: &'a Constraints,
    ) -> Self {
        Sta {
            nl,
            lib,
            stack,
            cons,
            beol_corner: BeolCorner::Typical,
            beol_sample: None,
            par: None,
        }
    }

    /// Selects a BEOL extraction corner.
    pub fn with_beol_corner(mut self, corner: BeolCorner) -> Self {
        self.beol_corner = corner;
        self
    }

    /// Applies a Monte Carlo per-layer BEOL variation sample.
    pub fn with_beol_sample(mut self, sample: &'a BeolSample) -> Self {
        self.beol_sample = Some(sample);
        self
    }

    /// Enables level-synchronous parallel propagation on the given
    /// pool: cells within one levelization rank are evaluated
    /// concurrently, ranks form barriers, and per-rank results are
    /// applied in order — bit-identical to the sequential path at any
    /// worker count (see `tc_par`'s determinism contract).
    pub fn with_parallel(mut self, pool: tc_par::Pool) -> Self {
        self.par = Some(pool);
        self
    }

    pub(crate) fn k_sigma(&self) -> f64 {
        match &self.cons.derate {
            DerateModel::Pocv { k, .. } | DerateModel::Lvf { k } => *k,
            _ => 0.0,
        }
    }

    /// Late-stage delay and added variance for one arc evaluation.
    /// `depth` is the path depth used for AOCV (GBA passes 1, PBA the
    /// true count).
    pub(crate) fn stage_late(
        &self,
        cell: CellId,
        arc: &TimingArc,
        slew: f64,
        load: f64,
        depth: usize,
    ) -> (f64, f64) {
        let raw = arc.delay.eval(slew, load);
        match &self.cons.derate {
            DerateModel::None => (raw, 0.0),
            DerateModel::Flat { late, .. } => (raw * late, 0.0),
            DerateModel::Aocv(t) => (raw * t.late_derate(depth, 0.0), 0.0),
            DerateModel::Pocv { sigma, .. } => {
                let s = sigma.late * raw;
                (raw, s * s)
            }
            DerateModel::Lvf { .. } => {
                let s = match &arc.lvf {
                    Some(l) => l.sigma_late.eval(slew, load),
                    None => self.lib.cell(self.nl.cell(cell).master).pocv.late * raw,
                };
                (raw, s * s)
            }
        }
    }

    /// Early-stage delay and variance for one arc evaluation.
    pub(crate) fn stage_early(
        &self,
        cell: CellId,
        arc: &TimingArc,
        slew: f64,
        load: f64,
        depth: usize,
    ) -> (f64, f64) {
        let raw = arc.delay.eval(slew, load);
        match &self.cons.derate {
            DerateModel::None => (raw, 0.0),
            DerateModel::Flat { early, .. } => (raw * early, 0.0),
            DerateModel::Aocv(t) => (raw * t.early_derate(depth, 0.0), 0.0),
            DerateModel::Pocv { sigma, .. } => {
                let s = sigma.early * raw;
                (raw, s * s)
            }
            DerateModel::Lvf { .. } => {
                let s = match &arc.lvf {
                    Some(l) => l.sigma_early.eval(slew, load),
                    None => self.lib.cell(self.nl.cell(cell).master).pocv.early * raw,
                };
                (raw, s * s)
            }
        }
    }

    /// Wire delay derates: `(late_ps, late_var, early_ps, early_var)`.
    pub(crate) fn wire_terms(&self, wire: Ps) -> (f64, f64, f64, f64) {
        let w = wire.value();
        match &self.cons.derate {
            DerateModel::Pocv { .. } | DerateModel::Lvf { .. } => {
                let s = 0.05 * w;
                (w, s * s, w, s * s)
            }
            _ => (
                w * self.cons.wire_derate.0,
                0.0,
                w * self.cons.wire_derate.1,
                0.0,
            ),
        }
    }

    /// Computes one net's wire timing (load, sink delays, SI delta),
    /// appending the per-sink delays to `pool` and returning the entry
    /// that addresses them. The single code path shared by full runs and
    /// incremental updates; with a warm `scratch` it allocates nothing
    /// beyond pool growth.
    pub(crate) fn net_wire_entry(
        &self,
        net: NetId,
        scratch: &mut WireEvalScratch,
        pool: &mut Vec<Ps>,
    ) -> Result<NetWire> {
        let n = self.nl.net(net);
        scratch.sink_caps.clear();
        for s in n.sinks {
            scratch
                .sink_caps
                .push(self.lib.cell(self.nl.cell(s.cell).master).input_cap);
        }
        let ndr = match n.route_class {
            0 => NdrClass::Default,
            1 => NdrClass::DoubleWidth,
            _ => NdrClass::DoubleWidthSpacing,
        };
        let wm = WireModel::from_length(n.wire_length_um.max(1.0)).with_ndr(ndr);
        let start = pool.len();
        let (driver_load, _r_total) = wm.timing_into(
            self.stack,
            self.beol_corner,
            self.beol_sample,
            &scratch.sink_caps,
            &mut scratch.wire,
            pool,
        )?;
        let si_delta = if self.cons.si_enabled {
            let layer = self.stack.layer(wm.layer);
            coupling_delta(layer, self.beol_corner, ndr, &pool[start..])
        } else {
            0.0
        };
        Ok(NetWire {
            driver_load,
            si_delta,
            start: start as u32,
            len: (pool.len() - start) as u32,
        })
    }

    /// Computes per-net wire timings (loads, sink delays, SI deltas)
    /// into a fresh [`WireTable`]. With a parallel pool the nets are
    /// extracted in fixed chunks and reassembled in net order (each
    /// net's timing depends only on that net, so any schedule produces
    /// identical bytes).
    pub(crate) fn wire_timings(&self) -> Result<WireTable> {
        let n = self.nl.net_count();
        let mut table = WireTable::default();
        if let Some(pool) = self.par.filter(|p| p.workers() > 1) {
            let chunks = pool.chunked_map(n, PAR_WIRE_CHUNK, |_, r| {
                let mut scratch = WireEvalScratch::default();
                let mut entries = Vec::with_capacity(r.len());
                let mut local_pool = Vec::new();
                for i in r {
                    entries.push(self.net_wire_entry(
                        NetId::new(i),
                        &mut scratch,
                        &mut local_pool,
                    )?);
                }
                Ok((entries, local_pool))
            });
            table.entries.reserve(n);
            for c in chunks {
                let (entries, local_pool): (Vec<NetWire>, Vec<Ps>) = c?;
                let base = table.pool.len() as u32;
                table.entries.extend(entries.into_iter().map(|mut e| {
                    e.start += base;
                    e
                }));
                table.pool.extend_from_slice(&local_pool);
            }
            return Ok(table);
        }
        let mut scratch = WireEvalScratch::default();
        table.entries.reserve(n);
        for i in 0..n {
            let e = self.net_wire_entry(NetId::new(i), &mut scratch, &mut table.pool)?;
            table.entries.push(e);
        }
        Ok(table)
    }

    /// Launch/capture clock components for a flop:
    /// `(late_arrival, early_arrival)` at its CK pin. The common segment
    /// (source latency + trunk) is not derated when CPPR is on.
    pub(crate) fn clock_arrivals(&self, flop: CellId) -> (f64, f64) {
        let clk = self.cons.default_clock();
        let common = clk.source_latency.value() + self.cons.clock_tree.common.value();
        let leaf = self.cons.clock_tree.leaf_of(flop).value();
        let (dl, de) = match &self.cons.derate {
            DerateModel::Flat { late, early } => (*late, *early),
            DerateModel::Aocv(t) => (t.late_derate(4, 0.0), t.early_derate(4, 0.0)),
            // POCV/LVF margin clock paths with a light flat derate (the
            // variance bookkeeping lives on the data path).
            DerateModel::Pocv { .. } | DerateModel::Lvf { .. } => (1.03, 0.97),
            DerateModel::None => (1.0, 1.0),
        };
        if self.cons.cppr {
            (common + leaf * dl, common + leaf * de)
        } else {
            ((common + leaf) * dl, (common + leaf) * de)
        }
    }

    /// Seeds primary-input arrivals. Clock roots are excluded from data
    /// propagation.
    pub(crate) fn seed_primary_inputs(&self, state: &mut [NetState]) {
        let clock_names: Vec<&str> = self.cons.clocks.iter().map(|c| c.name.as_str()).collect();
        for &pi in self.nl.primary_inputs() {
            let net = self.nl.net(pi);
            if clock_names.contains(&net.name) {
                continue;
            }
            let base = Arr {
                t: self.cons.input_delay.value(),
                var: 0.0,
                slew: self.cons.input_slew,
                depth: 0,
                gate_ps: 0.0,
                wire_ps: 0.0,
            };
            state[pi.index()] = NetState {
                late: base,
                early: base,
                late_pred_pin: None,
                reached: true,
            };
        }
    }

    /// Evaluates one cell's output-net state from its inputs' current
    /// states — the single evaluation code path shared by full
    /// propagation and the incremental worklist (bit-identity between
    /// the two engines follows from this sharing). Returns the new state
    /// (default/unreached if no arrival reaches the cell) and the arc
    /// count evaluated.
    pub(crate) fn eval_cell(
        &self,
        cid: CellId,
        graph: &TimingGraph,
        wires: &WireTable,
        state: &[NetState],
    ) -> Result<(NetState, u64)> {
        let cell = self.nl.cell(cid);
        let master = self.lib.cell(cell.master);
        let out = cell.output;
        let load = wires.driver_load(out.index()).value();
        let k = self.k_sigma();

        if master.kind == CellKind::Flop {
            // Q launches from the clock.
            let (ck_late, ck_early) = self.clock_arrivals(cid);
            let arc = master
                .arc_from("CK")
                .ok_or_else(|| Error::internal("flop without CK arc"))?;
            let cs = self.cons.clock_tree.clock_slew;
            let (dl, vl) = self.stage_late(cid, arc, cs, load, 1);
            let (de, ve) = self.stage_early(cid, arc, cs, load, 1);
            let slew = arc.out_slew.eval(cs, load);
            return Ok((
                NetState {
                    late: Arr {
                        t: ck_late + dl,
                        var: vl,
                        slew,
                        depth: 1,
                        gate_ps: dl,
                        wire_ps: 0.0,
                    },
                    early: Arr {
                        t: ck_early + de,
                        var: ve,
                        slew,
                        depth: 1,
                        gate_ps: de,
                        wire_ps: 0.0,
                    },
                    late_pred_pin: None,
                    reached: true,
                },
                1,
            ));
        }

        // Combinational: evaluate every input arc.
        let mut arcs_evaluated = 0u64;
        let mut best_late: Option<(Arr, usize)> = None;
        let mut best_early: Option<Arr> = None;
        for (pin, &in_net) in cell.inputs.iter().enumerate() {
            let ns = state[in_net.index()];
            if !ns.reached {
                continue;
            }
            let si = graph.sink_pos(self.nl, cid, pin);
            let wire = wires.delay(in_net.index(), si);
            let si_delta = wires.si_delta(in_net.index());
            let (wl, wvl, we, wve) = self.wire_terms(wire);
            let pin_name = master.input_pins()[pin];
            let arc = master
                .arc_from(pin_name)
                .ok_or_else(|| Error::internal("missing arc"))?;
            arcs_evaluated += 1;

            let pin_slew_late = ns.late.slew + 0.25 * wire.value();
            let (dl, vl) = self.stage_late(cid, arc, pin_slew_late, load, 1);
            let cand_late = Arr {
                t: ns.late.t + wl + si_delta + dl,
                var: ns.late.var + wvl + vl,
                slew: arc.out_slew.eval(pin_slew_late, load),
                depth: ns.late.depth + 1,
                gate_ps: ns.late.gate_ps + dl,
                wire_ps: ns.late.wire_ps + wl + si_delta,
            };
            let better = match &best_late {
                None => true,
                Some((b, _)) => cand_late.late_criterion(k) > b.late_criterion(k),
            };
            if better {
                best_late = Some((cand_late, pin));
            }

            let pin_slew_early = ns.early.slew + 0.25 * wire.value();
            let (de, ve) = self.stage_early(cid, arc, pin_slew_early, load, 1);
            let cand_early = Arr {
                t: ns.early.t + we - si_delta + de,
                var: ns.early.var + wve + ve,
                slew: arc.out_slew.eval(pin_slew_early, load),
                depth: ns.early.depth + 1,
                gate_ps: ns.early.gate_ps + de,
                wire_ps: ns.early.wire_ps + we - si_delta,
            };
            let better = match &best_early {
                None => true,
                Some(b) => cand_early.early_criterion(k) < b.early_criterion(k),
            };
            if better {
                best_early = Some(cand_early);
            }
        }
        let ns = match (best_late, best_early) {
            (Some((late, pin)), Some(early)) => NetState {
                late,
                early,
                late_pred_pin: Some(pin),
                reached: true,
            },
            _ => NetState::default(),
        };
        Ok((ns, arcs_evaluated))
    }

    /// Runs graph-based analysis, returning per-net states plus wire
    /// timings (the raw material for reports and PBA).
    ///
    /// # Errors
    ///
    /// Propagates levelization failures (combinational loops) and
    /// interconnect estimation errors.
    pub fn propagate(&self) -> Result<(Vec<NetState>, WireTable)> {
        let graph = TimingGraph::build(self.nl, self.lib)?;
        self.propagate_with(&graph)
    }

    /// Runs graph-based analysis over a prebuilt [`TimingGraph`] (the
    /// persistent timer and shared-structure MCMM runs skip the
    /// per-call rebuild).
    pub(crate) fn propagate_with(&self, graph: &TimingGraph) -> Result<(Vec<NetState>, WireTable)> {
        let _span = tc_obs::span("sta.gba");
        // Accumulated locally and flushed once: one atomic add per
        // propagation, not per arc.
        let mut arcs_evaluated = 0u64;
        let mut nets_propagated = 0u64;
        let wires = self.wire_timings()?;
        let mut state = vec![NetState::default(); self.nl.net_count()];
        self.seed_primary_inputs(&mut state);

        match self.par.filter(|p| p.workers() > 1) {
            Some(pool) => {
                // Level-synchronous parallel propagation: cells within a
                // levelization rank are mutually independent (an arc a→b
                // forces depth(b) > depth(a)), so each rank's evaluations
                // read only lower-rank state. Results are applied in
                // rank-internal index order, making the written bytes
                // identical to the sequential path at any worker count.
                for rank in &graph.ranks {
                    let cells = &graph.order[rank.clone()];
                    if cells.len() < PAR_RANK_MIN {
                        for &cid in cells {
                            let (ns, arcs) = self.eval_cell(cid, graph, &wires, &state)?;
                            arcs_evaluated += arcs;
                            if ns.reached {
                                nets_propagated += 1;
                                state[self.nl.cell(cid).output.index()] = ns;
                            }
                        }
                        continue;
                    }
                    let results =
                        pool.scope_map(cells, |_, &cid| self.eval_cell(cid, graph, &wires, &state));
                    for (i, res) in results.into_iter().enumerate() {
                        let (ns, arcs) = res?;
                        arcs_evaluated += arcs;
                        if ns.reached {
                            nets_propagated += 1;
                            state[self.nl.cell(cells[i]).output.index()] = ns;
                        }
                    }
                }
            }
            None => {
                for &cid in &graph.order {
                    let (ns, arcs) = self.eval_cell(cid, graph, &wires, &state)?;
                    arcs_evaluated += arcs;
                    if ns.reached {
                        nets_propagated += 1;
                        state[self.nl.cell(cid).output.index()] = ns;
                    }
                }
            }
        }
        tc_obs::counter("sta.arcs_evaluated").add(arcs_evaluated);
        tc_obs::counter("sta.nets_propagated").add(nets_propagated);
        Ok((state, wires))
    }

    /// Computes the setup/hold check at one flop's D pin from propagated
    /// states — shared by full report assembly and incremental endpoint
    /// refresh. `None` for false-path flops and unreached D pins.
    pub(crate) fn flop_endpoint(
        &self,
        fid: CellId,
        state: &[NetState],
        wires: &WireTable,
    ) -> Result<Option<EndpointTiming>> {
        if self.cons.exceptions.is_false_path(fid) {
            return Ok(None); // set_false_path: checks waived
        }
        let k = self.k_sigma();
        let clk = self.cons.default_clock();
        let period = clk.period.value();
        let cell = self.nl.cell(fid);
        let master = self.lib.cell(cell.master);
        let flop_t = master.flop.as_ref().expect("flop has constraint data");
        let d_net = cell.inputs[0];
        let ns = state[d_net.index()];
        if !ns.reached {
            return Ok(None);
        }
        let si = self
            .nl
            .net(d_net)
            .sinks
            .iter()
            .position(|s| s.cell == fid && s.pin == 0)
            .ok_or_else(|| Error::internal("flop D not a sink of its net"))?;
        let wire = wires.delay(d_net.index(), si);
        let si_delta = wires.si_delta(d_net.index());
        let (wl, wvl, we, wve) = self.wire_terms(wire);

        let data_late = Arr {
            t: ns.late.t + wl + si_delta,
            var: ns.late.var + wvl,
            wire_ps: ns.late.wire_ps + wl + si_delta,
            ..ns.late
        };
        let data_early = Arr {
            t: ns.early.t + we - si_delta,
            var: ns.early.var + wve,
            wire_ps: ns.early.wire_ps + we - si_delta,
            ..ns.early
        };
        let data_slew = ns.late.slew + 0.25 * wire.value();
        let cs = self.cons.clock_tree.clock_slew;
        let setup_req = flop_t.setup_at(data_slew, cs).value();
        let hold_req = flop_t.hold_at(data_slew, cs).value();
        let (ck_late, ck_early) = self.clock_arrivals(fid);

        // set_multicycle_path: the capture edge moves out by n−1
        // periods for setup; hold stays single-cycle (SDC default).
        let cycles = self.cons.exceptions.setup_cycles(fid) as f64;
        let setup_slack = (cycles * period + ck_early)
            - clk.uncertainty.value()
            - setup_req
            - data_late.late_criterion(k);
        let hold_slack =
            data_early.early_criterion(k) - ck_late - hold_req - clk.hold_uncertainty.value();

        Ok(Some(EndpointTiming {
            endpoint: Endpoint::FlopD(fid),
            setup_slack: Ps::new(setup_slack),
            hold_slack: Ps::new(hold_slack),
            arrival: Ps::new(data_late.t),
            required: Ps::new(cycles * period + ck_early - clk.uncertainty.value() - setup_req),
            depth: data_late.depth,
            gate_ps: data_late.gate_ps,
            wire_ps: data_late.wire_ps,
            data_slew,
        }))
    }

    /// Computes the setup-style check at a primary output; `None` if no
    /// arrival reaches it.
    pub(crate) fn po_endpoint(&self, po: NetId, state: &[NetState]) -> Option<EndpointTiming> {
        let ns = state[po.index()];
        if !ns.reached {
            return None;
        }
        let k = self.k_sigma();
        let period = self.cons.default_clock().period.value();
        let required = period - self.cons.output_delay.value();
        let setup_slack = required - ns.late.late_criterion(k);
        Some(EndpointTiming {
            endpoint: Endpoint::Output(po),
            setup_slack: Ps::new(setup_slack),
            hold_slack: Ps::new(f64::INFINITY),
            arrival: Ps::new(ns.late.t),
            required: Ps::new(required),
            depth: ns.late.depth,
            gate_ps: ns.late.gate_ps,
            wire_ps: ns.late.wire_ps,
            data_slew: ns.late.slew,
        })
    }

    /// Assembles the timing report from propagated states: flop D
    /// endpoints in cell-id order, then primary outputs in net-id order
    /// (the incremental timer reproduces this exact order).
    pub(crate) fn report_from(
        &self,
        state: &[NetState],
        wires: &WireTable,
    ) -> Result<TimingReport> {
        let mut endpoints = Vec::new();
        for fid in self.nl.flops(self.lib) {
            if let Some(ep) = self.flop_endpoint(fid, state, wires)? {
                endpoints.push(ep);
            }
        }
        for po in self.nl.primary_outputs() {
            if let Some(ep) = self.po_endpoint(po, state) {
                endpoints.push(ep);
            }
        }
        Ok(TimingReport::from_endpoints(
            endpoints,
            self.cons.default_clock().period,
        ))
    }

    /// Runs the full analysis and builds the timing report.
    ///
    /// # Errors
    ///
    /// Propagates levelization failures (combinational loops) and
    /// interconnect estimation errors.
    pub fn run(&self) -> Result<TimingReport> {
        let (state, wires) = self.propagate()?;
        self.report_from(&state, &wires)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tc_core::ids::NetId;
    use tc_device::VtClass;
    use tc_liberty::{LibConfig, PvtCorner};
    use tc_netlist::gen::{generate, BenchProfile};

    fn env() -> (Library, BeolStack) {
        (
            Library::generate(&LibConfig::default(), &PvtCorner::typical()),
            BeolStack::n20(),
        )
    }

    /// flop → 4 inverters → flop, hand-checkable.
    fn reg2reg(lib: &Library) -> Netlist {
        let mut nl = Netlist::new("reg2reg");
        let clk = nl.add_input("clk");
        let d0 = nl.add_input("d0");
        let dff = lib.variant("DFF", VtClass::Svt, 1.0).unwrap();
        let inv = lib.variant("INV", VtClass::Svt, 2.0).unwrap();
        let (_, q) = nl.add_cell("ff0", lib, dff, &[d0, clk]).unwrap();
        let mut net = q;
        for i in 0..4 {
            let (_, out) = nl.add_cell(format!("i{i}"), lib, inv, &[net]).unwrap();
            net = out;
        }
        let (_, q1) = nl.add_cell("ff1", lib, dff, &[net, clk]).unwrap();
        nl.mark_output(q1);
        for i in 0..nl.net_count() {
            nl.set_wire_length(NetId::new(i), 10.0);
        }
        nl
    }

    #[test]
    fn reg2reg_slack_tracks_period() {
        let (lib, stack) = env();
        let nl = reg2reg(&lib);
        let fast = Constraints::single_clock(2_000.0);
        let slow = Constraints::single_clock(200.0);
        let r_fast = Sta::new(&nl, &lib, &stack, &fast).run().unwrap();
        let r_slow = Sta::new(&nl, &lib, &stack, &slow).run().unwrap();
        assert!(r_fast.wns() > r_slow.wns());
        // Period delta flows 1:1 into slack.
        let d = r_fast.wns().value() - r_slow.wns().value();
        assert!((d - 1_800.0).abs() < 1.0, "slack delta {d}");
        // Relaxed clock meets timing.
        assert!(r_fast.wns().value() > 0.0);
    }

    #[test]
    fn arrival_equals_clock_plus_c2q_plus_stages() {
        let (lib, stack) = env();
        let nl = reg2reg(&lib);
        let cons = Constraints::single_clock(1_000.0).with_derate(DerateModel::None);
        let r = Sta::new(&nl, &lib, &stack, &cons).run().unwrap();
        let ff1 = nl.cell_named("ff1").unwrap();
        let ep = r
            .endpoints
            .iter()
            .find(|e| e.endpoint == Endpoint::FlopD(ff1))
            .unwrap();
        // 1 c2q + 4 inverters.
        assert_eq!(ep.depth, 5);
        assert!(ep.arrival.value() > 50.0, "arrival {}", ep.arrival);
        assert!(
            (ep.gate_ps + ep.wire_ps - (ep.arrival.value() - 50.0)).abs() < 1e-6,
            "breakdown must sum to arrival minus clock source latency"
        );
    }

    #[test]
    fn derate_models_order_pessimism() {
        let (lib, stack) = env();
        let nl = generate(&lib, BenchProfile::tiny(), 5).unwrap();
        let base = Constraints::single_clock(1_000.0);
        let wns = |derate: DerateModel| {
            let cons = base.clone().with_derate(derate);
            Sta::new(&nl, &lib, &stack, &cons)
                .run()
                .unwrap()
                .wns()
                .value()
        };
        let none = wns(DerateModel::None);
        let flat = wns(DerateModel::classic_flat());
        assert!(flat < none, "flat derate must eat slack: {flat} vs {none}");
        let lvf = wns(DerateModel::Lvf { k: 3.0 });
        assert!(lvf < none, "3σ LVF must eat slack");
    }

    #[test]
    fn longer_wires_reduce_slack() {
        let (lib, stack) = env();
        let mut nl = reg2reg(&lib);
        let cons = Constraints::single_clock(1_000.0);
        let base = Sta::new(&nl, &lib, &stack, &cons).run().unwrap().wns();
        for i in 0..nl.net_count() {
            nl.set_wire_length(NetId::new(i), 400.0);
        }
        let long = Sta::new(&nl, &lib, &stack, &cons).run().unwrap().wns();
        assert!(long < base);
    }

    #[test]
    fn cppr_recovers_pessimism() {
        let (lib, stack) = env();
        let nl = reg2reg(&lib);
        let mut cons = Constraints::single_clock(600.0);
        cons.clock_tree.common = Ps::new(300.0);
        cons.clock_tree.default_leaf = Ps::new(60.0);
        let with = Sta::new(&nl, &lib, &stack, &cons).run().unwrap().wns();
        cons.cppr = false;
        let without = Sta::new(&nl, &lib, &stack, &cons).run().unwrap().wns();
        assert!(
            with > without,
            "CPPR must improve slack: {with} vs {without}"
        );
    }

    #[test]
    fn si_eats_setup_slack() {
        let (lib, stack) = env();
        let nl = generate(&lib, BenchProfile::tiny(), 5).unwrap();
        let mut cons = Constraints::single_clock(1_000.0);
        let base = Sta::new(&nl, &lib, &stack, &cons).run().unwrap().wns();
        cons.si_enabled = true;
        let si = Sta::new(&nl, &lib, &stack, &cons).run().unwrap().wns();
        assert!(si < base, "SI must eat slack: {si} vs {base}");
    }

    #[test]
    fn beol_corner_moves_timing() {
        let (lib, stack) = env();
        let mut nl = generate(&lib, BenchProfile::tiny(), 5).unwrap();
        // Exaggerate wires so the BEOL matters.
        for i in 0..nl.net_count() {
            nl.set_wire_length(NetId::new(i), 150.0);
        }
        let cons = Constraints::single_clock(1_500.0);
        let typ = Sta::new(&nl, &lib, &stack, &cons).run().unwrap().wns();
        let rcw = Sta::new(&nl, &lib, &stack, &cons)
            .with_beol_corner(BeolCorner::RcWorst)
            .run()
            .unwrap()
            .wns();
        assert!(rcw < typ);
    }

    #[test]
    fn false_path_waives_and_multicycle_relaxes() {
        let (lib, stack) = env();
        let nl = reg2reg(&lib);
        let ff1 = nl.cell_named("ff1").unwrap();
        // A period that violates.
        let probe = Constraints::single_clock(5_000.0);
        let wns = Sta::new(&nl, &lib, &stack, &probe)
            .run()
            .unwrap()
            .wns()
            .value();
        let mut cons = Constraints::single_clock(5_000.0 - wns - 50.0);
        let base = Sta::new(&nl, &lib, &stack, &cons).run().unwrap();
        assert!(base.wns().value() < 0.0);

        // Multicycle: 2 cycles adds exactly one period of slack at ff1.
        cons.exceptions.multicycle_to(ff1, 2);
        let mc = Sta::new(&nl, &lib, &stack, &cons).run().unwrap();
        let ep_base = base
            .endpoints
            .iter()
            .find(|e| e.endpoint == Endpoint::FlopD(ff1))
            .unwrap();
        let ep_mc = mc
            .endpoints
            .iter()
            .find(|e| e.endpoint == Endpoint::FlopD(ff1))
            .unwrap();
        let delta = ep_mc.setup_slack.value() - ep_base.setup_slack.value();
        assert!(
            (delta - cons.default_clock().period.value()).abs() < 1e-6,
            "multicycle slack delta {delta}"
        );
        // Hold is unchanged (SDC default).
        assert_eq!(ep_mc.hold_slack, ep_base.hold_slack);

        // False path: the endpoint disappears from the report.
        cons.exceptions.false_path_to(ff1);
        let fp = Sta::new(&nl, &lib, &stack, &cons).run().unwrap();
        assert!(fp
            .endpoints
            .iter()
            .all(|e| e.endpoint != Endpoint::FlopD(ff1)));
        assert!(fp.endpoints.len() == mc.endpoints.len() - 1);
    }

    #[test]
    fn hold_slack_present_and_generally_positive_with_ideal_clock() {
        let (lib, stack) = env();
        let nl = generate(&lib, BenchProfile::tiny(), 5).unwrap();
        let cons = Constraints::single_clock(1_000.0);
        let r = Sta::new(&nl, &lib, &stack, &cons).run().unwrap();
        // With an ideal clock (zero skew), most paths hold comfortably.
        let holds: Vec<f64> = r
            .endpoints
            .iter()
            .filter(|e| matches!(e.endpoint, Endpoint::FlopD(_)))
            .map(|e| e.hold_slack.value())
            .collect();
        assert!(!holds.is_empty());
        let ok = holds.iter().filter(|&&h| h > 0.0).count();
        assert!(
            ok * 10 >= holds.len() * 9,
            "{ok}/{} hold-clean",
            holds.len()
        );
    }
}
